# Reproduction targets for "A Web-Services Architecture for Efficient XML
# Data Exchange" (ICDE 2004). See DESIGN.md and EXPERIMENTS.md.

GO ?= go

.PHONY: all build test vet check soak bench bench-smoke bench-json experiments experiments-quick examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The merge gate: vet, build, and the full suite under the race detector
# (the streaming executor is concurrency-heavy). CI runs the same script.
check:
	./scripts/check.sh

# Fault-injection soak: the reliable-exchange e2e under the race detector,
# repeated over a widened fixed seed matrix (deterministic — FaultyLink
# derives every fault from the seed). Part of the merge gate.
SOAK_SEEDS ?= 1,7,12,17,18,25
soak:
	XDX_FAULT_SEEDS=$(SOAK_SEEDS) $(GO) test -race -count=1 \
		-run 'TestReliableExchange' ./internal/registry/

# One testing.B benchmark per table and figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Fast benchmark smoke: a fixed 100 iterations per benchmark, just enough
# to catch benchmarks that stopped compiling or started failing. Part of
# the merge gate; not for performance numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=100x ./...

# Snapshot the benchmark set (shipment-format ablations, Figure 9 end to
# end, streaming-codec allocations, parallel-codec worker sweep, xdxload
# traffic run) into BENCH_$(BENCH_N).json; `BENCH_N=7 make bench-json`
# starts the next snapshot.
bench-json:
	./scripts/bench_snapshot.sh

# Regenerate every table and figure at the paper's document sizes.
experiments:
	$(GO) run ./cmd/xdxbench -all

experiments-quick:
	$(GO) run ./cmd/xdxbench -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/telecom
	$(GO) run ./examples/auction
	$(GO) run ./examples/negotiation

# The artifacts requested for the reproduction record.
test_output.txt:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench_output.txt:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt
