package xdx

// Ablation benchmarks for the design choices DESIGN.md calls out:
//   - sequential vs parallel program execution (§5.2's unexploited
//     opportunity);
//   - combine-ordering strategy (canonical vs greedy vs exhaustive);
//   - shipment format (tagged XML with join keys vs sorted feeds);
//   - placement algorithm (greedy vs exhaustive) at growing fragment
//     counts.

import (
	"fmt"
	"testing"

	"xdx/internal/core"
	"xdx/internal/netsim"
	"xdx/internal/sim"
	"xdx/internal/wire"
	"xdx/internal/xmark"
)

func ablationSetup(b *testing.B) (*core.Mapping, map[string]*core.Instance) {
	b.Helper()
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 200_000, Seed: 3})
	src := core.MostFragmented(sch)
	tgt := core.LeastFragmented(sch)
	m, err := core.NewMapping(src, tgt)
	if err != nil {
		b.Fatal(err)
	}
	sources, err := core.FromDocument(src, doc)
	if err != nil {
		b.Fatal(err)
	}
	return m, sources
}

func freshSources(b *testing.B, m *core.Mapping, seed int64) map[string]*core.Instance {
	b.Helper()
	doc := xmark.Generate(xmark.Config{TargetBytes: 200_000, Seed: seed})
	sources, err := core.FromDocument(m.Source, doc)
	if err != nil {
		b.Fatal(err)
	}
	return sources
}

func BenchmarkAblation_ExecuteSequential(b *testing.B) {
	m, _ := ablationSetup(b)
	g, err := core.CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src := freshSources(b, m, 3)
		b.StartTimer()
		if _, err := core.Execute(g, m.Source.Schema, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ExecuteParallel(b *testing.B) {
	m, _ := ablationSetup(b)
	g, err := core.CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src := freshSources(b, m, 3)
		b.StartTimer()
		if _, err := core.ExecuteParallel(g, m.Source.Schema, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_OrderingCanonical(b *testing.B) {
	m, _ := ablationSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CanonicalProgram(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_OrderingGreedy(b *testing.B) {
	m, _ := ablationSetup(b)
	scn := sim.New(sim.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyProgram(m, scn.Provider); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShipCodec serializes the same auction shipment under one codec and
// layout, reporting the wire size alongside throughput so the four codecs
// can be read as one size/speed table (EXPERIMENTS.md "wire formats").
func benchShipCodec(b *testing.B, layout *core.Fragmentation, codec wire.Codec) {
	b.Helper()
	sch := layout.Schema
	doc := xmark.Generate(xmark.Config{TargetBytes: 200_000, Seed: 3})
	sources, err := core.FromDocument(layout, doc)
	if err != nil {
		b.Fatal(err)
	}
	out := map[string]*core.Instance{}
	for name, in := range sources {
		out["0:"+name] = in
	}
	var wireBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink netsim.Discard
		if err := wire.StreamShipmentCodec(&sink, out, sch, codec); err != nil {
			b.Fatal(err)
		}
		wireBytes = sink.N
		b.SetBytes(wireBytes)
	}
	b.ReportMetric(float64(wireBytes), "wire-bytes/op")
}

// benchShipLayouts runs one codec over both reference layouts: MF (many
// small flat fragments — the feed codec's home turf) and LF (few deep
// fragments, where feeds fall back to XML and only bin keeps winning).
func benchShipLayouts(b *testing.B, codec wire.Codec) {
	sch := xmark.Schema()
	b.Run("MF", func(b *testing.B) { benchShipCodec(b, core.MostFragmented(sch), codec) })
	b.Run("LF", func(b *testing.B) { benchShipCodec(b, core.LeastFragmented(sch), codec) })
}

func BenchmarkAblation_ShipFormatXML(b *testing.B) {
	benchShipLayouts(b, wire.Codec{Kind: wire.CodecXML})
}

func BenchmarkAblation_ShipFormatFeed(b *testing.B) {
	benchShipLayouts(b, wire.Codec{Kind: wire.CodecFeed})
}

func BenchmarkAblation_ShipFormatBin(b *testing.B) {
	benchShipLayouts(b, wire.Codec{Kind: wire.CodecBin})
}

func BenchmarkAblation_ShipFormatBinFlate(b *testing.B) {
	benchShipLayouts(b, wire.Codec{Kind: wire.CodecBin, Flate: true})
}

func benchPlacement(b *testing.B, frags int, exhaustive bool) {
	scn := sim.New(sim.Config{Depth: 2, Fanout: 4, FragsPerSide: frags, Seed: 1})
	m, err := core.NewMapping(scn.Source, scn.Target)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if exhaustive {
			if _, _, err := core.MinMaxPlacement(g, scn.Model); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := core.GreedyPlacement(g, scn.Model); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblation_Placement(b *testing.B) {
	for _, frags := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("greedy-%dfrags", frags), func(b *testing.B) { benchPlacement(b, frags, false) })
		b.Run(fmt.Sprintf("exhaustive-%dfrags", frags), func(b *testing.B) { benchPlacement(b, frags, true) })
	}
}
