package xdx

// Ablation benchmarks for the design choices DESIGN.md calls out:
//   - sequential vs parallel program execution (§5.2's unexploited
//     opportunity);
//   - combine-ordering strategy (canonical vs greedy vs exhaustive);
//   - shipment format (tagged XML with join keys vs sorted feeds);
//   - placement algorithm (greedy vs exhaustive) at growing fragment
//     counts.

import (
	"fmt"
	"testing"

	"xdx/internal/core"
	"xdx/internal/netsim"
	"xdx/internal/sim"
	"xdx/internal/wire"
	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

func ablationSetup(b *testing.B) (*core.Mapping, map[string]*core.Instance) {
	b.Helper()
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 200_000, Seed: 3})
	src := core.MostFragmented(sch)
	tgt := core.LeastFragmented(sch)
	m, err := core.NewMapping(src, tgt)
	if err != nil {
		b.Fatal(err)
	}
	sources, err := core.FromDocument(src, doc)
	if err != nil {
		b.Fatal(err)
	}
	return m, sources
}

func freshSources(b *testing.B, m *core.Mapping, seed int64) map[string]*core.Instance {
	b.Helper()
	doc := xmark.Generate(xmark.Config{TargetBytes: 200_000, Seed: seed})
	sources, err := core.FromDocument(m.Source, doc)
	if err != nil {
		b.Fatal(err)
	}
	return sources
}

func BenchmarkAblation_ExecuteSequential(b *testing.B) {
	m, _ := ablationSetup(b)
	g, err := core.CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src := freshSources(b, m, 3)
		b.StartTimer()
		if _, err := core.Execute(g, m.Source.Schema, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ExecuteParallel(b *testing.B) {
	m, _ := ablationSetup(b)
	g, err := core.CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src := freshSources(b, m, 3)
		b.StartTimer()
		if _, err := core.ExecuteParallel(g, m.Source.Schema, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_OrderingCanonical(b *testing.B) {
	m, _ := ablationSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CanonicalProgram(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_OrderingGreedy(b *testing.B) {
	m, _ := ablationSetup(b)
	scn := sim.New(sim.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyProgram(m, scn.Provider); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ShipFormatXML(b *testing.B) {
	_, sources := ablationSetup(b)
	out := map[string]*core.Instance{}
	for name, in := range sources {
		out["0:"+name] = in
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := wire.EncodeShipment(out)
		b.SetBytes(xmltree.SizeWith(x, xmltree.WriteOptions{EmitAllIDs: true}))
	}
}

func BenchmarkAblation_ShipFormatFeed(b *testing.B) {
	m, sources := ablationSetup(b)
	sch := m.Source.Schema
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink netsim.Discard
		for _, in := range sources {
			if err := wire.WriteFeed(&sink, in, sch); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(sink.N)
	}
}

func benchPlacement(b *testing.B, frags int, exhaustive bool) {
	scn := sim.New(sim.Config{Depth: 2, Fanout: 4, FragsPerSide: frags, Seed: 1})
	m, err := core.NewMapping(scn.Source, scn.Target)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if exhaustive {
			if _, _, err := core.MinMaxPlacement(g, scn.Model); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := core.GreedyPlacement(g, scn.Model); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblation_Placement(b *testing.B) {
	for _, frags := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("greedy-%dfrags", frags), func(b *testing.B) { benchPlacement(b, frags, false) })
		b.Run(fmt.Sprintf("exhaustive-%dfrags", frags), func(b *testing.B) { benchPlacement(b, frags, true) })
	}
}
