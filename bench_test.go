package xdx

// One testing.B benchmark per table and figure of the paper's evaluation
// (§5). Benchmarks run on reduced document sizes so `go test -bench=.`
// completes quickly; cmd/xdxbench regenerates the tables at the paper's
// full 2.5/12.5/25 MB sizes.

import (
	"bytes"
	"fmt"
	"testing"

	"xdx/internal/bench"
	"xdx/internal/core"
	"xdx/internal/publish"
	"xdx/internal/relstore"
	"xdx/internal/shred"
	"xdx/internal/sim"
	"xdx/internal/wire"
	"xdx/internal/xmark"
)

const benchDocBytes = 250_000

func benchLayout(b *testing.B, name string) *core.Fragmentation {
	b.Helper()
	sch := xmark.Schema()
	switch name {
	case "MF":
		return core.MostFragmented(sch)
	case "LF":
		return core.LeastFragmented(sch)
	}
	b.Fatalf("unknown layout %q", name)
	return nil
}

func benchStore(b *testing.B, layout *core.Fragmentation) *relstore.Store {
	b.Helper()
	doc := xmark.Generate(xmark.Config{TargetBytes: benchDocBytes, Seed: 1})
	st, err := relstore.NewStore(layout)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.LoadDocument(doc); err != nil {
		b.Fatal(err)
	}
	return st
}

// benchStep1 measures Table 1's Step 1: executing the optimized exchange's
// source-side queries.
func benchStep1(b *testing.B, srcName, tgtName string) {
	sch := xmark.Schema()
	layouts := map[string]*core.Fragmentation{
		"MF": core.MostFragmented(sch),
		"LF": core.LeastFragmented(sch),
	}
	src := layouts[srcName]
	tgt := layouts[tgtName]
	st := benchStore(b, src)
	m, err := core.NewMapping(src, tgt)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	a := core.NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == core.OpWrite {
			a[op.ID] = core.LocTarget
		} else {
			a[op.ID] = core.LocSource
		}
	}
	scan := func(f *core.Fragment) (*core.Instance, error) {
		for _, lf := range src.Fragments {
			if lf.SameElems(f) {
				in, err := st.ScanFragment(lf.Name)
				if err != nil {
					return nil, err
				}
				return &core.Instance{Frag: f, Records: in.Records}, nil
			}
		}
		return nil, fmt.Errorf("no fragment %q", f.Name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ExecuteSlice(g, sch, a, core.LocSource, core.SliceIO{Scan: scan}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_MFtoMF(b *testing.B) { benchStep1(b, "MF", "MF") }
func BenchmarkTable1_MFtoLF(b *testing.B) { benchStep1(b, "MF", "LF") }
func BenchmarkTable1_LFtoMF(b *testing.B) { benchStep1(b, "LF", "MF") }
func BenchmarkTable1_LFtoLF(b *testing.B) { benchStep1(b, "LF", "LF") }

// Table 2, first value: publishing the full document at the source.
func benchPublish(b *testing.B, srcName string) {
	st := benchStore(b, benchLayout(b, srcName))
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := publish.Publish(st, &buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkTable2_Publish_MF(b *testing.B) { benchPublish(b, "MF") }
func BenchmarkTable2_Publish_LF(b *testing.B) { benchPublish(b, "LF") }

// Table 2, second value: parsing and shredding the document at the target.
func benchShred(b *testing.B, tgtName string) {
	st := benchStore(b, benchLayout(b, "MF"))
	var buf bytes.Buffer
	if _, err := publish.Publish(st, &buf); err != nil {
		b.Fatal(err)
	}
	tgt := benchLayout(b, tgtName)
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shred.Shred(bytes.NewReader(buf.Bytes()), tgt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_Shred_MF(b *testing.B) { benchShred(b, "MF") }
func BenchmarkTable2_Shred_LF(b *testing.B) { benchShred(b, "LF") }

// Table 3: sizing the shipped fragments (sorted-feed format).
func benchShipBytes(b *testing.B, layoutName string) {
	layout := benchLayout(b, layoutName)
	st := benchStore(b, layout)
	m, err := core.NewMapping(layout, layout)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	a := core.NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == core.OpWrite {
			a[op.ID] = core.LocTarget
		} else {
			a[op.ID] = core.LocSource
		}
	}
	scan := func(f *core.Fragment) (*core.Instance, error) {
		in, err := st.ScanFragment(f.Name)
		if err != nil {
			return nil, err
		}
		return &core.Instance{Frag: f, Records: in.Records}, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := core.ExecuteSlice(g, layout.Schema, a, core.LocSource, core.SliceIO{Scan: scan})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(wire.ShipmentFeedBytes(out))
	}
}

func BenchmarkTable3_ShipFeed_MF(b *testing.B) { benchShipBytes(b, "MF") }
func BenchmarkTable3_ShipFeed_LF(b *testing.B) { benchShipBytes(b, "LF") }

// Table 4: loading and indexing the target database.
func benchLoadIndex(b *testing.B, tgtName string, index bool) {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: benchDocBytes, Seed: 1})
	tgt := benchLayout(b, tgtName)
	insts, err := core.FromDocument(tgt, doc)
	if err != nil {
		b.Fatal(err)
	}
	_ = sch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := relstore.NewStore(tgt)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range tgt.Fragments {
			if err := st.Load(insts[f.Name]); err != nil {
				b.Fatal(err)
			}
		}
		if index {
			if err := st.BuildIndexes(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable4_Load_MF(b *testing.B)      { benchLoadIndex(b, "MF", false) }
func BenchmarkTable4_Load_LF(b *testing.B)      { benchLoadIndex(b, "LF", false) }
func BenchmarkTable4_LoadIndex_MF(b *testing.B) { benchLoadIndex(b, "MF", true) }
func BenchmarkTable4_LoadIndex_LF(b *testing.B) { benchLoadIndex(b, "LF", true) }

// Figure 9: end-to-end transfer, optimized exchange vs publish&map.
func BenchmarkFigure9_EndToEnd(b *testing.B) {
	opts := bench.Options{Sizes: []int64{100_000}, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Measure(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 10 and 11: the simulator comparison.
func benchFigureSim(b *testing.B, targetSpeed float64) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(sim.Config{Seed: int64(i), TargetSpeed: targetSpeed})
		if _, err := s.CompareWithPublish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10_EqualSystems(b *testing.B) { benchFigureSim(b, 1) }
func BenchmarkFigure11_FastTarget(b *testing.B)   { benchFigureSim(b, 10) }

// Table 5 and the §5.4.2 runtime comparison: exhaustive vs greedy
// optimization on the 31-node DTD.
func table5Mapping(b *testing.B, seed int64) (*core.Mapping, *core.Model) {
	b.Helper()
	scn := sim.New(sim.Config{Depth: 2, Fanout: 5, FragsPerSide: 6, SourceSpeed: 5, TargetSpeed: 1, Seed: seed})
	m, err := core.NewMapping(scn.Source, scn.Target)
	if err != nil {
		b.Fatal(err)
	}
	return m, scn.Model
}

func BenchmarkTable5_OptimizerExhaustive(b *testing.B) {
	m, model := table5Mapping(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimal(m, model, core.GenOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5_OptimizerGreedy(b *testing.B) {
	m, model := table5Mapping(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Greedy(m, model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5_FullRow(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{Depth: 2, Fanout: 5, FragsPerSide: 6, SourceSpeed: 5, TargetSpeed: 1, Seed: int64(i)}
		if _, err := sim.EvaluateGreedy(cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}
