// Command xdxbench regenerates the paper's evaluation (§5): Tables 1–5 and
// Figures 9–11. Real-measurement experiments (Tables 1–4, Figure 9) run the
// relational stores, publisher, shredder and modeled WAN link; simulator
// experiments (Figures 10–11, Table 5) run the §5.4 simulator.
//
// Usage:
//
//	xdxbench -all            # everything at paper sizes (2.5/12.5/25 MB)
//	xdxbench -all -quick     # everything at reduced sizes
//	xdxbench -table 1        # a single table (1-5)
//	xdxbench -figure 9       # a single figure (9-11)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"xdx/internal/bench"
	"xdx/internal/core"
	"xdx/internal/xmark"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-5)")
	figure := flag.Int("figure", 0, "regenerate one figure (9-11)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	quick := flag.Bool("quick", false, "use reduced document sizes and fewer simulator runs")
	seed := flag.Int64("seed", 1, "workload seed")
	recommend := flag.Bool("recommend", false, "run the fragmentation-recommendation extension (§7 future work)")
	plan := flag.String("plan", "", "print the auction-schema exchange program for SRC:TGT (layouts MF or LF)")
	dot := flag.Bool("dot", false, "with -plan, emit Graphviz dot instead of text")
	csvDir := flag.String("csv", "", "also write each table/figure as CSV into this directory")
	flag.Parse()

	if *plan != "" {
		if err := printPlan(os.Stdout, *plan, *dot); err != nil {
			fatal(err)
		}
		return
	}
	if !*all && *table == 0 && *figure == 0 && !*recommend {
		flag.Usage()
		os.Exit(2)
	}
	opts := bench.Options{Seed: *seed}
	runs := 10
	simSeeds := 10
	if *quick {
		opts.Sizes = []int64{100_000, 500_000, 1_000_000}
		runs = 3
		simSeeds = 3
	}

	needReal := *all || (*table >= 1 && *table <= 4) || *figure == 9
	var res *bench.Results
	if needReal {
		fmt.Fprintln(os.Stderr, "measuring real exchange experiments (this generates and processes the documents)...")
		var err error
		res, err = bench.Measure(opts)
		if err != nil {
			fatal(err)
		}
	}
	emit := func(id string, t *bench.Table, err error) {
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if *all || *table == 1 {
		emit("table1", bench.Table1(res), nil)
	}
	if *all || *table == 2 {
		emit("table2", bench.Table2(res), nil)
	}
	if *all || *table == 3 {
		emit("table3", bench.Table3(res), nil)
	}
	if *all || *table == 4 {
		emit("table4", bench.Table4(res), nil)
	}
	if *all || *figure == 9 {
		emit("figure9", bench.Figure9(res), nil)
	}
	if *all || *figure == 10 {
		t, err := bench.Figure10(simSeeds)
		emit("figure10", t, err)
	}
	if *all || *figure == 11 {
		t, err := bench.Figure11(simSeeds)
		emit("figure11", t, err)
	}
	if *all || *table == 5 {
		fmt.Fprintln(os.Stderr, "running Table 5 (exhaustive optimizer; this is the slow one)...")
		t, err := bench.Table5(runs)
		emit("table5", t, err)
	}
	if *all || *recommend {
		t, err := bench.Recommend(*seed)
		emit("recommend", t, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xdxbench:", err)
	os.Exit(1)
}

// printPlan builds and prints the optimized exchange program for an
// auction-schema scenario like "MF:LF".
func printPlan(w io.Writer, spec string, dot bool) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 2 {
		return fmt.Errorf("plan spec %q must be SRC:TGT, e.g. MF:LF", spec)
	}
	sch := xmark.Schema()
	layouts := map[string]*core.Fragmentation{
		"MF": core.MostFragmented(sch),
		"LF": core.LeastFragmented(sch),
	}
	src, ok := layouts[parts[0]]
	if !ok {
		return fmt.Errorf("unknown layout %q", parts[0])
	}
	tgt, ok := layouts[parts[1]]
	if !ok {
		return fmt.Errorf("unknown layout %q", parts[1])
	}
	m, err := core.NewMapping(src, tgt)
	if err != nil {
		return err
	}
	doc := xmark.Generate(xmark.Config{TargetBytes: 100_000, Seed: 1})
	card, bytes := xmark.Stats(doc)
	p := &core.StatsProvider{
		Card: card, Bytes: bytes,
		Unit:        core.DefaultUnitCosts(),
		SourceSpeed: 1, TargetSpeed: 1, TargetCombines: true,
	}
	res, err := core.Greedy(m, core.NewModel(p))
	if err != nil {
		return err
	}
	if dot {
		fmt.Fprint(w, res.Program.DOT(res.Assign))
		return nil
	}
	fmt.Fprintf(w, "%s -> %s exchange program (greedy, estimated cost %.0f):\n", parts[0], parts[1], res.Cost)
	for _, op := range res.Program.Ops {
		fmt.Fprintf(w, "  @%s %s\n", res.Assign[op.ID], op)
	}
	return nil
}
