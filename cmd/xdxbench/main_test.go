package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestPrintPlanText(t *testing.T) {
	var buf bytes.Buffer
	if err := printPlan(&buf, "MF:LF", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MF -> LF exchange program", "@S Scan(", "@T Write(", "Combine("} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintPlanDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := printPlan(&buf, "LF:MF", true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph program") {
		t.Errorf("dot output wrong prefix:\n%.100s", out)
	}
	if !strings.Contains(out, "Split(") {
		t.Errorf("LF->MF plan should contain splits")
	}
}

func TestPrintPlanErrors(t *testing.T) {
	var buf bytes.Buffer
	for _, spec := range []string{"MF", "MF:XX", "XX:LF", "a:b:c"} {
		if err := printPlan(&buf, spec, false); err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
}
