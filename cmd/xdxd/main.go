// Command xdxd runs the discovery agency (Figure 2) as a standalone SOAP
// daemon. Systems register WSDL documents carrying the fragmentation
// extension with <Register>, inspect generated programs with <Plan>, and
// trigger end-to-end exchanges with <Exchange>.
//
// Usage:
//
//	xdxd -listen :8080 [-bandwidth 160000] [-reliable [-chunk 64]]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"xdx/internal/netsim"
	"xdx/internal/obs"
	"xdx/internal/registry"
	"xdx/internal/reliable"
	"xdx/internal/wire"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	bandwidth := flag.Float64("bandwidth", 0, "modeled source->target bandwidth in bytes/sec (0 = unlimited)")
	latency := flag.Duration("latency", 0, "modeled link latency")
	state := flag.String("state", "", "directory for persisted registrations (survives restarts)")
	streamed := flag.Bool("streamed", false, "drive exchanges over the zero-materialization wire path")
	codec := flag.String("codec", "", "default shipment codec: xml, feed, bin, or bin+flate")
	reliab := flag.Bool("reliable", false, "retry, resume, and circuit-break exchanges (implies the streamed wire path)")
	retryAttempts := flag.Int("retry-attempts", 0, "max attempts per call (0 = default 4)")
	retryBudget := flag.Int("retry-budget", 0, "total retries allowed per exchange (0 = default 16)")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "per-attempt SOAP call timeout (0 = client default)")
	chunkSize := flag.Int("chunk", 0, "records per resumable shipment chunk (0 = default 64)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive failures before an endpoint's circuit opens (0 = default 5)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open circuit fails fast (0 = default 1s)")
	retrySeed := flag.Int64("retry-seed", 0, "seed for backoff jitter and session IDs (reproducible runs)")
	codecWorkers := flag.Int("codec-workers", 0, "chunk codec pool size per shipment (0 = one per CPU, 1 = serial)")
	exchangeWorkers := flag.Int("exchange-workers", 0, "concurrent exchange pool size (0 = 8 per GOMAXPROCS, negative = no pool: serial legacy driving)")
	exchangeQueue := flag.Int("exchange-queue", 0, "bounded exchange FIFO depth; submissions beyond it are shed with a 503 fault (0 = 2x workers)")
	tenantInflight := flag.Int("tenant-inflight", 0, "max queued+running exchanges per tenant before shedding (0 = unlimited)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant exchange admission rate per second, token-bucket (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant token-bucket burst capacity (0 = ceil(rate))")
	planCache := flag.Bool("plan-cache", true, "cache derived plan templates per fragmentation pair, invalidated on re-registration")
	delta := flag.Bool("delta", false, "ship repeat exchanges as deltas against the target's retained base (requires -reliable)")
	filter := flag.String("filter", "", "source-side pushdown filter, e.g. '/Customer/CustName=\"Ann\"' (per-request filter attr overrides)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty = off)")
	verbose := flag.Bool("v", false, "log exchange activity (retries, breaker transitions, outcomes) to stderr")
	flag.Parse()

	link := netsim.Link{BytesPerSecond: *bandwidth, Latency: *latency}
	agency := registry.New()
	if *state != "" {
		restored, err := registry.LoadAgency(*state)
		if err != nil {
			log.Fatal("xdxd: ", err)
		}
		agency = restored
		agency.SetAutoSave(*state)
		log.Printf("xdxd: restored %d services from %s", len(agency.Services()), *state)
	}
	agency.SetPlanCache(*planCache)
	svc := registry.NewService(agency, link)
	svc.Streamed = *streamed
	svc.ParallelChunks = *codecWorkers
	if *exchangeWorkers >= 0 {
		sched := registry.NewScheduler(registry.SchedulerConfig{
			Workers:        *exchangeWorkers,
			QueueDepth:     *exchangeQueue,
			TenantInFlight: *tenantInflight,
			TenantRate:     *tenantRate,
			TenantBurst:    *tenantBurst,
		})
		svc.Sched = sched
		log.Printf("xdxd: exchange pool %d workers, queue %d", sched.Workers(), sched.QueueDepth())
	}
	if *codec != "" {
		if _, err := wire.ParseCodec(*codec); err != nil {
			log.Fatal("xdxd: ", err)
		}
		svc.Codec = *codec
		log.Printf("xdxd: default shipment codec %s", *codec)
	}
	if *reliab {
		cfg := &reliable.Config{
			Policy: reliable.Policy{
				MaxAttempts:    *retryAttempts,
				Budget:         *retryBudget,
				AttemptTimeout: *attemptTimeout,
			},
			Breaker: reliable.BreakerConfig{
				FailureThreshold: *breakerFailures,
				Cooldown:         *breakerCooldown,
			},
			ChunkSize: *chunkSize,
			Seed:      *retrySeed,
		}
		// One breaker set for the daemon's lifetime, so endpoint health
		// carries across exchanges instead of resetting per request.
		cfg.Breakers = reliable.NewBreakerSet(cfg.Breaker)
		svc.Reliability = cfg
		log.Printf("xdxd: reliable exchanges on (chunk=%d)", cfg.ChunkSize)
	}
	if *delta {
		if !*reliab {
			log.Fatal("xdxd: -delta requires -reliable")
		}
		svc.Delta = true
		log.Printf("xdxd: delta exchanges on")
	}
	if *filter != "" {
		svc.Filter = *filter
		log.Printf("xdxd: pushdown filter %s", *filter)
	}

	var logger obs.Logger
	if *verbose {
		logger = obs.NewTextLogger(os.Stderr, obs.LevelDebug)
	}
	var metrics *obs.Registry
	if *metricsAddr != "" {
		metrics = obs.NewRegistry()
		ops := &http.Server{Addr: *metricsAddr, Handler: obs.Mux(metrics), ReadHeaderTimeout: 10 * time.Second}
		go func() { log.Fatal("xdxd: metrics: ", ops.ListenAndServe()) }()
		log.Printf("xdxd: metrics on %s (/metrics, /healthz)", *metricsAddr)
	}
	if logger != nil || metrics != nil {
		svc.SetObs(logger, metrics)
	}

	mux := http.NewServeMux()
	mux.Handle("/soap", svc.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "xdx discovery agency\nservices: %v\nlink: %s\n", agency.Services(), link)
	})
	srv := &http.Server{Addr: *listen, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	log.Printf("xdxd: discovery agency listening on %s (SOAP at /soap, %s)", *listen, link)
	log.Fatal(srv.ListenAndServe())
}
