// Command xdxd runs the discovery agency (Figure 2) as a standalone SOAP
// daemon. Systems register WSDL documents carrying the fragmentation
// extension with <Register>, inspect generated programs with <Plan>, and
// trigger end-to-end exchanges with <Exchange>.
//
// Usage:
//
//	xdxd -listen :8080 [-bandwidth 160000]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"xdx/internal/netsim"
	"xdx/internal/registry"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	bandwidth := flag.Float64("bandwidth", 0, "modeled source->target bandwidth in bytes/sec (0 = unlimited)")
	latency := flag.Duration("latency", 0, "modeled link latency")
	state := flag.String("state", "", "directory for persisted registrations (survives restarts)")
	flag.Parse()

	link := netsim.Link{BytesPerSecond: *bandwidth, Latency: *latency}
	agency := registry.New()
	if *state != "" {
		restored, err := registry.LoadAgency(*state)
		if err != nil {
			log.Fatal("xdxd: ", err)
		}
		agency = restored
		agency.SetAutoSave(*state)
		log.Printf("xdxd: restored %d services from %s", len(agency.Services()), *state)
	}
	svc := registry.NewService(agency, link)

	mux := http.NewServeMux()
	mux.Handle("/soap", svc.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "xdx discovery agency\nservices: %v\nlink: %s\n", agency.Services(), link)
	})
	srv := &http.Server{Addr: *listen, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	log.Printf("xdxd: discovery agency listening on %s (SOAP at /soap, %s)", *listen, link)
	log.Fatal(srv.ListenAndServe())
}
