// Command xdxendpoint hosts one system of a data exchange: a relational
// store laid out per a fragmentation of the auction schema, served over
// SOAP. Point two of these (a loaded source and an empty target) at an
// xdxd agency to run a distributed exchange.
//
// Usage:
//
//	xdxendpoint -listen :9001 -layout LF -data auction.xml   # source
//	xdxendpoint -listen :9002 -layout MF                     # empty target
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"xdx/internal/core"
	"xdx/internal/durable"
	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/obs"
	"xdx/internal/relstore"
	"xdx/internal/wsdlx"
	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

func main() {
	listen := flag.String("listen", ":9001", "listen address")
	layoutName := flag.String("layout", "LF", "fragmentation layout: MF or LF")
	data := flag.String("data", "", "XML document to load (empty = start empty)")
	name := flag.String("name", "endpoint", "endpoint name")
	speed := flag.Float64("speed", 1, "relative processing speed reported to cost probes")
	dumb := flag.Bool("dumb", false, "refuse to run Combine (dumb client)")
	codecs := flag.String("codecs", "", "comma-separated shipment codecs this endpoint answers in (empty = all: bin+flate,bin,feed,xml)")
	faultSeed := flag.Int64("fault-seed", 0, "seed for injected faults (reproducible chaos runs)")
	faultDrop := flag.Float64("fault-drop", 0, "probability a request is aborted before any response")
	faultTruncate := flag.Float64("fault-truncate", 0, "probability a response is cut mid-stream")
	faultStall := flag.Float64("fault-stall", 0, "probability a response stalls once before continuing")
	fault5xx := flag.Float64("fault-5xx", 0, "probability a request is answered with a plain 503")
	faultMaxTruncate := flag.Int("fault-max-truncate", 0, "max bytes before a truncation cut (0 = default 4096)")
	codecWorkers := flag.Int("codec-workers", 0, "chunk codec pool size per shipment (0 = one per CPU, 1 = serial)")
	noDelta := flag.Bool("no-delta", false, "retain no delta bases: DeltaStatus always answers cold, so agencies ship full snapshots")
	walDir := flag.String("wal-dir", "", "directory for the session write-ahead log; on start, journaled sessions are recovered so interrupted exchanges resume (empty = memory-only)")
	fsyncPolicy := flag.String("fsync", "always", "WAL sync policy: always (sync per commit), batch (group commit: coalesced syncs, always-equivalent acks), interval (background), or off")
	snapshotEvery := flag.Int("snapshot-every", 256, "WAL appends between snapshot+compact cycles (0 = never compact)")
	batchBytes := flag.Int("batch-bytes", 0, "fsync=batch: max coalesced bytes per commit group (0 = 1MiB)")
	batchFrames := flag.Int("batch-frames", 0, "fsync=batch: max frames per commit group (0 = 256)")
	batchHold := flag.Duration("batch-hold", 0, "fsync=batch: max time a lone appender waits for a group (0 = fsync interval/10)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty = off)")
	verbose := flag.Bool("v", false, "log request and execution activity to stderr")
	flag.Parse()

	sch := xmark.Schema()
	var layout *core.Fragmentation
	switch *layoutName {
	case "MF":
		layout = core.MostFragmented(sch)
	case "LF":
		layout = core.LeastFragmented(sch)
	default:
		log.Fatalf("xdxendpoint: unknown layout %q (want MF or LF)", *layoutName)
	}
	store, err := relstore.NewStore(layout)
	if err != nil {
		log.Fatal("xdxendpoint: ", err)
	}
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			log.Fatal("xdxendpoint: ", err)
		}
		doc, err := xmltree.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal("xdxendpoint: parse data: ", err)
		}
		core.AssignIDs(doc)
		if err := store.LoadDocument(doc); err != nil {
			log.Fatal("xdxendpoint: load: ", err)
		}
		log.Printf("xdxendpoint: loaded %d rows from %s", store.Rows(), *data)
	}
	defs := &wsdlx.Definitions{
		Name:            "Auction",
		TargetNamespace: "http://auction.wsdl",
		ServiceName:     "AuctionService",
		PortName:        "AuctionPort",
		Address:         "http://" + *listen + "/soap",
		Schema:          sch,
		Fragmentations:  []*core.Fragmentation{layout},
	}
	ep := endpoint.New(*name, &endpoint.RelBackend{Store: store, Speed: *speed, CanCombine: !*dumb}, defs)
	ep.SetCodecWorkers(*codecWorkers)
	if *noDelta {
		ep.SetDeltaRetention(false)
	}
	if *codecs != "" {
		names := strings.Split(*codecs, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		if err := ep.SetSupportedCodecs(names...); err != nil {
			log.Fatal("xdxendpoint: ", err)
		}
		log.Printf("xdxendpoint: answering in codecs %v", names)
	}
	var logger obs.Logger
	if *verbose {
		logger = obs.NewTextLogger(os.Stderr, obs.LevelDebug)
	}
	var metrics *obs.Registry
	if *metricsAddr != "" {
		metrics = obs.NewRegistry()
		ops := &http.Server{Addr: *metricsAddr, Handler: obs.Mux(metrics), ReadHeaderTimeout: 10 * time.Second}
		go func() { log.Fatal("xdxendpoint: metrics: ", ops.ListenAndServe()) }()
		log.Printf("xdxendpoint: metrics on %s (/metrics, /healthz)", *metricsAddr)
	}
	if logger != nil || metrics != nil {
		ep.SetObs(logger, metrics)
	}

	if *walDir != "" {
		policy, err := durable.ParseFsync(*fsyncPolicy)
		if err != nil {
			log.Fatal("xdxendpoint: ", err)
		}
		journal, err := durable.OpenJournal(*walDir, durable.Options{
			Fsync:          policy,
			SnapshotEvery:  *snapshotEvery,
			MaxBatchBytes:  *batchBytes,
			MaxBatchFrames: *batchFrames,
			MaxBatchHold:   *batchHold,
			Log:            logger,
			Met:            metrics,
		})
		if err != nil {
			log.Fatal("xdxendpoint: ", err)
		}
		defer journal.Close()
		restored := ep.SetJournal(journal)
		st := journal.RecoveryStats()
		log.Printf("xdxendpoint: wal %s (fsync=%s): recovered %d sessions, %d records in %s",
			*walDir, policy, restored, st.Records, st.Elapsed.Round(time.Microsecond))
	}

	// Collect abandoned resumable sessions in the background; the
	// opportunistic sweep only runs when new sessions arrive, which a
	// quiet endpoint may never see again.
	stopSweep := ep.Sessions().StartSweeper(0)
	defer stopSweep()

	soapH := http.Handler(ep.Handler())
	faults := netsim.Faults{
		Seed:         *faultSeed,
		DropProb:     *faultDrop,
		TruncateProb: *faultTruncate,
		StallProb:    *faultStall,
		HTTP5xxProb:  *fault5xx,
		MaxTruncate:  *faultMaxTruncate,
	}
	if faults.DropProb > 0 || faults.TruncateProb > 0 || faults.StallProb > 0 || faults.HTTP5xxProb > 0 {
		fl := netsim.NewFaultyLink(netsim.Loopback(), faults)
		if metrics != nil {
			fl.OnFault = func(kind string) { metrics.Counter("netsim.faults." + kind).Inc() }
		}
		soapH = fl.Middleware(soapH)
		log.Printf("xdxendpoint: injecting %s", faults)
	}

	mux := http.NewServeMux()
	mux.Handle("/soap", soapH)
	mux.HandleFunc("/wsdl", func(w http.ResponseWriter, r *http.Request) {
		data, err := defs.Marshal()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/xml")
		w.Write(data)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "xdx endpoint %s\nlayout: %s (%d fragments)\nrows: %d\n",
			*name, layout.Name, layout.Len(), store.Rows())
	})
	srv := &http.Server{Addr: *listen, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	log.Printf("xdxendpoint: %s serving layout %s on %s (SOAP at /soap, WSDL at /wsdl)", *name, layout.Name, *listen)
	log.Fatal(srv.ListenAndServe())
}
