// Command xdxgen generates XMark-like auction documents conforming to the
// Figure 7 DTD subset, sized by bytes — the workload generator of the
// paper's experiments.
//
// Usage:
//
//	xdxgen -size 25000000 -seed 1 -out auction.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

func main() {
	size := flag.Int64("size", 2_500_000, "approximate document size in bytes")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	ids := flag.Bool("ids", false, "emit ID/PARENT attributes on every element")
	flag.Parse()

	doc := xmark.Generate(xmark.Config{TargetBytes: *size, Seed: *seed})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xdxgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := xmltree.Write(w, doc, xmltree.WriteOptions{EmitAllIDs: *ids}); err != nil {
		fmt.Fprintln(os.Stderr, "xdxgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(w)
}
