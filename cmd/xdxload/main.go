// Command xdxload is the agency's traffic harness: it stands up N
// simulated tenants (each a relational source/target endpoint pair with
// generated CustomerInfo data), registers them all with one in-process
// discovery agency, and drives M concurrent exchanges at the agency's SOAP
// Exchange operation — the full production stack, loopback HTTP included.
//
// Two drive modes bracket the control plane's worth:
//
//   - serial: the pre-scheduler agency — exchanges one at a time, plan
//     re-derived (mapping + stats probes + optimizer) on every call;
//   - concurrent: the scheduler's worker pool with the plan-derivation
//     cache on, the configured concurrency submitting together.
//
// Per-call network latency is injected in front of every endpoint (and
// the agency itself) so the loopback run has the wait profile of a real
// deployment; the value is recorded in the report. The report (JSON)
// carries throughput, p50/p99 latency, failure/shed counts, plan-cache
// hit rate, and the speedup of concurrent over serial.
//
// Usage:
//
//	xdxload [-tenants 4] [-concurrency 32] [-ops 256] [-net-latency 5ms]
//	        [-mode both|serial|concurrent] [-check] [-min-speedup 0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xdx/internal/core"
	"xdx/internal/durable"
	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/registry"
	"xdx/internal/reliable"
	"xdx/internal/relstore"
	"xdx/internal/soap"
	"xdx/internal/telgen"
	"xdx/internal/wsdlx"
	"xdx/internal/xmltree"
)

func main() {
	tenants := flag.Int("tenants", 4, "simulated tenant services (one source/target endpoint pair each)")
	concurrency := flag.Int("concurrency", 32, "concurrent exchange submissions in the concurrent mode")
	ops := flag.Int("ops", 256, "exchanges per drive mode")
	customers := flag.Int("customers", 8, "generated customers per tenant source store")
	netLatency := flag.Duration("net-latency", 5*time.Millisecond, "injected per-call network latency in front of every endpoint")
	workers := flag.Int("workers", 0, "scheduler pool size (0 = 8 per GOMAXPROCS)")
	queue := flag.Int("queue", 0, "scheduler queue depth (0 = 2x workers)")
	tenantInflight := flag.Int("tenant-inflight", 0, "per-tenant in-flight budget (0 = unlimited)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate per second (0 = unlimited)")
	codec := flag.String("codec", "", "shipment codec for exchanges (xml, feed, bin, bin+flate)")
	streamed := flag.Bool("streamed", false, "drive exchanges over the streaming wire path")
	delta := flag.Bool("delta", false, "drive repeat exchanges in delta mode (implies the reliable session path)")
	fsync := flag.String("fsync", "", "make every exchange a durable reliable session: journal each tenant target under this WAL fsync policy (always, batch, interval, off; empty = memory-only, no sessions)")
	mode := flag.String("mode", "both", "serial, concurrent, or both")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	check := flag.Bool("check", false, "exit nonzero unless every driven mode had nonzero throughput and zero failures")
	minSpeedup := flag.Float64("min-speedup", 0, "with -check and -mode both: minimum concurrent/serial throughput ratio")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *mode != "both" && *mode != "serial" && *mode != "concurrent" {
		log.Fatalf("xdxload: bad -mode %q", *mode)
	}

	w := newWorld(*tenants, *customers, *netLatency, *codec, *streamed, *fsync, *delta, logf)
	defer w.close()

	// Default the queue to hold the full offered concurrency: the harness
	// is a closed-loop generator, so a queue sized below (concurrency -
	// workers) would shed its own load and corrupt the numbers. Shedding
	// behavior is exercised deliberately with -tenant-inflight/-tenant-rate.
	queueDepth := *queue
	if queueDepth == 0 {
		queueDepth = registry.SchedulerConfig{Workers: *workers}.DefaultWorkers() * 2
		if queueDepth < *concurrency {
			queueDepth = *concurrency
		}
	}
	sched := registry.NewScheduler(registry.SchedulerConfig{
		Workers:        *workers,
		QueueDepth:     queueDepth,
		TenantInFlight: *tenantInflight,
		TenantRate:     *tenantRate,
	})
	defer sched.Close()

	rep := &report{
		Tenants:          *tenants,
		Concurrency:      *concurrency,
		OpsPerMode:       *ops,
		CustomersPerDoc:  *customers,
		NetLatencyMillis: float64(*netLatency) / float64(time.Millisecond),
		Workers:          sched.Workers(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		Codec:            *codec,
		Streamed:         *streamed,
		Fsync:            *fsync,
	}

	if *mode == "both" || *mode == "serial" {
		// The pre-scheduler agency: no pool, no plan cache, one at a time.
		w.agency.SetPlanCache(false)
		url, stop := w.serveService(nil)
		logf("xdxload: serial baseline: %d ops one at a time", *ops)
		s := drive(url, w.services, *ops, 1)
		stop()
		rep.Serial = &s
		logf("xdxload: serial: %.1f exchanges/s, p50 %.1fms p99 %.1fms, %d failed",
			s.ThroughputPerSec, s.P50Millis, s.P99Millis, s.Failed)
	}

	if *mode == "both" || *mode == "concurrent" {
		w.agency.SetPlanCache(true)
		h0, m0, _, _ := w.agency.PlanCacheStats()
		url, stop := w.serveService(sched)
		logf("xdxload: concurrent: %d ops at concurrency %d over %d workers",
			*ops, *concurrency, sched.Workers())
		c := drive(url, w.services, *ops, *concurrency)
		stop()
		h1, m1, _, size := w.agency.PlanCacheStats()
		rep.Concurrent = &c
		rep.PlanCache = &cacheStats{Hits: h1 - h0, Misses: m1 - m0, Size: size}
		if n := rep.PlanCache.Hits + rep.PlanCache.Misses; n > 0 {
			rep.PlanCache.HitRate = float64(rep.PlanCache.Hits) / float64(n)
		}
		logf("xdxload: concurrent: %.1f exchanges/s, p50 %.1fms p99 %.1fms, %d failed, cache hit rate %.3f",
			c.ThroughputPerSec, c.P50Millis, c.P99Millis, c.Failed, rep.PlanCache.HitRate)
	}

	if rep.Serial != nil && rep.Concurrent != nil && rep.Serial.ThroughputPerSec > 0 {
		rep.SpeedupX = rep.Concurrent.ThroughputPerSec / rep.Serial.ThroughputPerSec
		logf("xdxload: speedup %.2fx", rep.SpeedupX)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal("xdxload: ", err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal("xdxload: ", err)
		}
	} else {
		os.Stdout.Write(enc)
	}

	if *check {
		fail := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "xdxload: CHECK FAILED: "+format+"\n", args...)
			os.Exit(1)
		}
		for name, m := range map[string]*modeStats{"serial": rep.Serial, "concurrent": rep.Concurrent} {
			if m == nil {
				continue
			}
			if m.ThroughputPerSec <= 0 {
				fail("%s throughput is zero", name)
			}
			if m.Failed > 0 {
				fail("%s had %d failed exchanges", name, m.Failed)
			}
		}
		if *minSpeedup > 0 && rep.Serial != nil && rep.Concurrent != nil && rep.SpeedupX < *minSpeedup {
			fail("speedup %.2fx below required %.2fx", rep.SpeedupX, *minSpeedup)
		}
	}
}

// report is the harness's JSON output.
type report struct {
	Tenants          int         `json:"tenants"`
	Concurrency      int         `json:"concurrency"`
	OpsPerMode       int         `json:"ops_per_mode"`
	CustomersPerDoc  int         `json:"customers_per_tenant"`
	NetLatencyMillis float64     `json:"net_latency_ms"`
	Workers          int         `json:"workers"`
	GOMAXPROCS       int         `json:"gomaxprocs"`
	NumCPU           int         `json:"num_cpu"`
	Codec            string      `json:"codec,omitempty"`
	Streamed         bool        `json:"streamed"`
	Fsync            string      `json:"fsync,omitempty"`
	Serial           *modeStats  `json:"serial,omitempty"`
	Concurrent       *modeStats  `json:"concurrent,omitempty"`
	SpeedupX         float64     `json:"speedup_x,omitempty"`
	PlanCache        *cacheStats `json:"plan_cache,omitempty"`
}

// modeStats reduces one drive mode. Throughput and the latency
// percentiles cover completed exchanges only — shed submissions answer in
// microseconds and would otherwise flatter both numbers.
type modeStats struct {
	Ops              int     `json:"ops"`
	Completed        int     `json:"completed"`
	Failed           int64   `json:"failed"`
	Shed             int64   `json:"shed"`
	WallMillis       float64 `json:"wall_ms"`
	ThroughputPerSec float64 `json:"throughput_per_s"`
	MeanMillis       float64 `json:"mean_ms"`
	P50Millis        float64 `json:"p50_ms"`
	P99Millis        float64 `json:"p99_ms"`
}

type cacheStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Size    int     `json:"size"`
	HitRate float64 `json:"hit_rate"`
}

// world is the simulated deployment: one agency, N tenants' endpoint
// pairs, every HTTP hop behind the injected latency.
type world struct {
	agency      *registry.Agency
	link        netsim.Link
	services    []string
	latency     time.Duration
	codec       string
	streamed    bool
	delta       bool
	reliability *reliable.Config
	stops       []func()
}

func newWorld(tenants, customers int, latency time.Duration, codec string, streamed bool, fsync string, delta bool, logf func(string, ...any)) *world {
	w := &world{agency: registry.New(), latency: latency, codec: codec, streamed: streamed, delta: delta, link: netsim.Loopback()}
	var fsyncPol durable.FsyncPolicy
	if fsync != "" {
		var err error
		if fsyncPol, err = durable.ParseFsync(fsync); err != nil {
			log.Fatal("xdxload: ", err)
		}
		// Durable drive: every exchange becomes a resumable chunked
		// session, and every tenant target journals its chunk commits —
		// many concurrent sessions sharing one WAL per tenant, which is
		// the workload group commit amortizes.
		w.reliability = &reliable.Config{
			Seed:      1,
			ChunkSize: 8,
			Policy: reliable.Policy{
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				MaxDelay:    4 * time.Millisecond,
				Budget:      64,
			},
		}
	}
	if delta && w.reliability == nil {
		// Delta exchanges ride the reliable session path; without a
		// journal the sessions are memory-only.
		w.reliability = &reliable.Config{
			Seed:      1,
			ChunkSize: 8,
			Policy: reliable.Policy{
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				MaxDelay:    4 * time.Millisecond,
				Budget:      64,
			},
		}
	}
	sch := telgen.Schema()
	sFr, err := core.PaperSFragmentation(sch)
	if err != nil {
		log.Fatal("xdxload: ", err)
	}
	tFr, err := core.PaperTFragmentation(sch)
	if err != nil {
		log.Fatal("xdxload: ", err)
	}
	for i := 0; i < tenants; i++ {
		svc := fmt.Sprintf("tenant-%03d", i)
		srcStore, err := relstore.NewStore(sFr)
		if err != nil {
			log.Fatal("xdxload: ", err)
		}
		for _, doc := range telgen.Customers(telgen.Config{Customers: customers, Seed: int64(i + 1)}) {
			if err := srcStore.LoadDocument(doc); err != nil {
				log.Fatal("xdxload: ", err)
			}
		}
		tgtStore, err := relstore.NewStore(tFr)
		if err != nil {
			log.Fatal("xdxload: ", err)
		}
		srcURL := w.serve(endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil).Handler())
		tgtEP := endpoint.New("T", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil)
		if fsync != "" {
			walDir, err := os.MkdirTemp("", "xdxload-wal-*")
			if err != nil {
				log.Fatal("xdxload: ", err)
			}
			j, err := durable.OpenJournal(walDir, durable.Options{Fsync: fsyncPol, SnapshotEvery: 256})
			if err != nil {
				log.Fatal("xdxload: ", err)
			}
			tgtEP.SetJournal(j)
			w.stops = append(w.stops, func() {
				j.Close()
				os.RemoveAll(walDir)
			})
		}
		tgtURL := w.serve(tgtEP.Handler())
		if err := w.agency.Register(svc, registry.RoleSource, wsdlFor(sch, sFr, srcURL), srcURL); err != nil {
			log.Fatal("xdxload: ", err)
		}
		if err := w.agency.Register(svc, registry.RoleTarget, wsdlFor(sch, tFr, tgtURL), tgtURL); err != nil {
			log.Fatal("xdxload: ", err)
		}
		w.services = append(w.services, svc)
	}
	logf("xdxload: %d tenants registered (%d customers each, +%s per call)", tenants, customers, latency)
	return w
}

// serve exposes a handler on a loopback listener behind the injected
// latency and returns its URL.
func (w *world) serve(h http.Handler) string {
	if w.latency > 0 {
		inner := h
		lat := w.latency
		h = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			time.Sleep(lat)
			inner.ServeHTTP(rw, r)
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal("xdxload: ", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	w.stops = append(w.stops, func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// serveService exposes the agency's SOAP service (with or without the
// scheduler) and returns its URL plus a stop function.
func (w *world) serveService(sched *registry.Scheduler) (string, func()) {
	svc := registry.NewService(w.agency, w.link)
	svc.Codec = w.codec
	svc.Streamed = w.streamed
	svc.Reliability = w.reliability
	svc.Delta = w.delta
	svc.Sched = sched
	url := w.serve(svc.Handler())
	stop := w.stops[len(w.stops)-1]
	return url, stop
}

func (w *world) close() {
	for _, stop := range w.stops {
		stop()
	}
}

func wsdlFor(sch interface{ Len() int }, fr *core.Fragmentation, addr string) []byte {
	d := &wsdlx.Definitions{
		Name:            "CustomerInfo",
		TargetNamespace: "http://customers.wsdl",
		ServiceName:     "CustomerInfoService",
		PortName:        "CustomerInfoPort",
		Address:         addr,
		Schema:          fr.Schema,
		Fragmentations:  []*core.Fragmentation{fr},
	}
	data, err := d.Marshal()
	if err != nil {
		log.Fatal("xdxload: ", err)
	}
	return data
}

// drive fires ops Exchange calls at the agency, round-robin across the
// tenant services, from `conc` submitter goroutines, and reduces the
// per-op latencies into modeStats.
func drive(agURL string, services []string, ops, conc int) modeStats {
	var mu sync.Mutex
	var lat []float64
	var failed, shed atomic.Int64
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &soap.Client{URL: agURL}
			var mine []float64
			for {
				i := int(next.Add(1)) - 1
				if i >= ops {
					break
				}
				req := &xmltree.Node{Name: "Exchange"}
				req.SetAttr("service", services[i%len(services)])
				t0 := time.Now()
				_, err := client.Call("Exchange", req)
				switch {
				case err == nil:
					mine = append(mine, float64(time.Since(t0))/float64(time.Millisecond))
				case soap.IsOverloaded(err):
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
			mu.Lock()
			lat = append(lat, mine...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Float64s(lat)
	sum := 0.0
	for _, v := range lat {
		sum += v
	}
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	st := modeStats{
		Ops:              ops,
		Completed:        len(lat),
		Failed:           failed.Load(),
		Shed:             shed.Load(),
		WallMillis:       float64(wall) / float64(time.Millisecond),
		ThroughputPerSec: float64(len(lat)) / wall.Seconds(),
		P50Millis:        pct(0.50),
		P99Millis:        pct(0.99),
	}
	if len(lat) > 0 {
		st.MeanMillis = sum / float64(len(lat))
	}
	return st
}
