package xdx_test

import (
	"fmt"
	"log"
	"strings"

	"xdx"
)

// Example reproduces the paper's §1.1 negotiation in miniature: the source
// offers the S-fragmentation, the target wants the T-fragmentation, and
// the optimizer derives the Figure 5 exchange program.
func Example() {
	sch, err := xdx.ParseDTD(`
		<!ELEMENT Customer (CustName, Order*)>
		<!ELEMENT Order (Service)>
		<!ELEMENT Service (ServiceName, Line*)>
		<!ELEMENT Line (TelNo, Switch, Feature*)>
		<!ELEMENT Switch (SwitchID)>
		<!ELEMENT Feature (FeatureID)>
	`)
	if err != nil {
		log.Fatal(err)
	}
	source, _ := xdx.FromPartition(sch, "S", [][]string{
		{"Customer", "CustName"}, {"Order"}, {"Service", "ServiceName"},
		{"Line", "TelNo", "Feature", "FeatureID"}, {"Switch", "SwitchID"},
	})
	target, _ := xdx.FromPartition(sch, "T", [][]string{
		{"Customer", "CustName"}, {"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"}, {"Feature", "FeatureID"},
	})
	mapping, err := xdx.NewMapping(source, target)
	if err != nil {
		log.Fatal(err)
	}
	g, err := xdx.CanonicalProgram(mapping)
	if err != nil {
		log.Fatal(err)
	}
	st := g.OpStats()
	fmt.Printf("scans=%d combines=%d splits=%d writes=%d\n", st.Scans, st.Combines, st.Splits, st.Writes)
	// Output:
	// scans=5 combines=2 splits=1 writes=4
}

// ExampleExecute moves one document through a generated program and
// reassembles it at the target.
func ExampleExecute() {
	sch, _ := xdx.ParseDTD(`<!ELEMENT a (b, c*)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>`)
	src := xdx.MostFragmented(sch)
	tgt := xdx.Trivial(sch)
	m, _ := xdx.NewMapping(src, tgt)
	g, _ := xdx.CanonicalProgram(m)

	doc, _ := xdx.ParseDocument(strings.NewReader(`<a><b>hi</b><c>1</c><c>2</c></a>`))
	xdx.AssignIDs(doc)
	sources, _ := xdx.FromDocument(src, doc)
	res, err := xdx.Execute(g, sch, sources)
	if err != nil {
		log.Fatal(err)
	}
	back, _ := xdx.Document(tgt, res.Written)
	var b strings.Builder
	xdx.WriteDocument(&b, back)
	fmt.Println(b.String())
	// Output:
	// <a><b>hi</b><c>1</c><c>2</c></a>
}

// ExampleLeastFragmented shows the paper's LF layout for the auction DTD:
// exactly three fragments.
func ExampleLeastFragmented() {
	sch, _ := xdx.ParseDTD(`
		<!ELEMENT site (regions, categories)>
		<!ELEMENT regions (africa)>
		<!ELEMENT africa (item*)>
		<!ELEMENT item (iname)>
		<!ELEMENT iname (#PCDATA)>
		<!ELEMENT categories (category+)>
		<!ELEMENT category (cname)>
		<!ELEMENT cname (#PCDATA)>
	`)
	for _, f := range xdx.LeastFragmented(sch).Fragments {
		fmt.Println(f.Root)
	}
	// Output:
	// site
	// item
	// category
}
