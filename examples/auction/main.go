// Auction: the paper's §5 workload — an XMark-like auction document moved
// from a Most-Fragmented relational source to a Least-Fragmented relational
// target over live SOAP endpoints, comparing the optimized exchange with
// publish&map on the same data.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"xdx"
	"xdx/internal/core"
	"xdx/internal/endpoint"
	"xdx/internal/publish"
	"xdx/internal/relstore"
	"xdx/internal/shred"
	"xdx/internal/wsdlx"
	"xdx/internal/xmark"
)

func main() {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 500_000, Seed: 42})
	mf := core.MostFragmented(sch)
	lf := core.LeastFragmented(sch)

	// ---- Optimized data exchange over SOAP.
	srcStore, err := relstore.NewStore(mf)
	check(err)
	check(srcStore.LoadDocument(doc))
	tgtStore, err := relstore.NewStore(lf)
	check(err)

	srcURL := serve(endpoint.New("source-MF", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil).Handler())
	tgtURL := serve(endpoint.New("target-LF", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil).Handler())

	agency := xdx.NewAgency()
	check(agency.Register("AuctionService", xdx.RoleSource, wsdlDoc(sch, mf, srcURL), srcURL))
	check(agency.Register("AuctionService", xdx.RoleTarget, wsdlDoc(sch, lf, tgtURL), tgtURL))

	plan, err := agency.Plan("AuctionService", xdx.PlanOptions{Algorithm: xdx.AlgGreedy})
	check(err)
	st := plan.Program.OpStats()
	fmt.Printf("MF -> LF exchange program: %d scans, %d combines, %d splits, %d writes (planned in %v)\n",
		st.Scans, st.Combines, st.Splits, st.Writes, plan.PlanTime)

	report, err := agency.Execute("AuctionService", plan, xdx.Loopback())
	check(err)
	deTotal := report.SourceTime + report.TargetTime + report.WriteTime + report.IndexTime
	fmt.Printf("optimized exchange:  shipped %8d bytes, processing %v\n", report.ShipBytes, deTotal)

	// ---- Publish&map baseline on the same data.
	pmStart := time.Now()
	var buf bytes.Buffer
	pres, err := publish.Publish(srcStore, &buf)
	check(err)
	insts, err := shred.Shred(&buf, lf)
	check(err)
	pmStore, err := relstore.NewStore(lf)
	check(err)
	for _, f := range lf.Fragments {
		check(pmStore.Load(insts[f.Name]))
	}
	check(pmStore.BuildIndexes())
	fmt.Printf("publish&map:         shipped %8d bytes, processing %v (publish %v + map %v)\n",
		pres.Bytes, time.Since(pmStart), pres.QueryTime+pres.TagTime, time.Since(pmStart)-pres.QueryTime-pres.TagTime)

	// ---- The two targets hold identical data.
	a, b := snapshot(tgtStore), snapshot(pmStore)
	if a == b {
		fmt.Println("verified: optimized exchange and publish&map produced identical target databases")
	} else {
		log.Fatalf("target databases differ!\nDE: %s\nPM: %s", a, b)
	}
}

func snapshot(st *relstore.Store) string {
	insts := map[string]*core.Instance{}
	for _, f := range st.Layout.Fragments {
		in, err := st.ScanFragment(f.Name)
		check(err)
		insts[f.Name] = in
	}
	doc, err := core.Document(st.Layout, insts)
	check(err)
	var buf bytes.Buffer
	check(xdx.WriteDocument(&buf, doc))
	return buf.String()
}

func wsdlDoc(sch *xdx.Schema, fr *core.Fragmentation, addr string) []byte {
	d := &wsdlx.Definitions{
		Name: "Auction", TargetNamespace: "http://auction.wsdl",
		ServiceName: "AuctionService", PortName: "AuctionPort", Address: addr,
		Schema: sch, Fragmentations: []*core.Fragmentation{fr},
	}
	data, err := d.Marshal()
	check(err)
	return data
}

func serve(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, h)
	return "http://" + ln.Addr().String()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
