// Negotiation: WSDL fragmentation registration through the agency's own
// SOAP interface — the full Figure 2 deployment with the middle-ware as a
// remote service.
//
// Two endpoints publish WSDL documents extended with <fragmentation>
// declarations; the agency is driven purely through SOAP (<Register>,
// <Plan>, <Exchange>), mirroring how third-party systems would negotiate an
// exchange without linking this library.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"xdx"
	"xdx/internal/core"
	"xdx/internal/endpoint"
	"xdx/internal/relstore"
	"xdx/internal/soap"
	"xdx/internal/wsdlx"
	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

func main() {
	sch := xmark.Schema()
	lf := core.LeastFragmented(sch)
	mf := core.MostFragmented(sch)
	doc := xmark.Generate(xmark.Config{TargetBytes: 120_000, Seed: 7})

	srcStore, err := relstore.NewStore(lf)
	check(err)
	check(srcStore.LoadDocument(doc))
	tgtStore, err := relstore.NewStore(mf)
	check(err)

	srcURL := serve(endpoint.New("src", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil).Handler())
	tgtURL := serve(endpoint.New("tgt", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil).Handler())

	// The agency itself runs as a SOAP service.
	agencyURL := serve(xdx.NewAgencyService(xdx.NewAgency(), xdx.Loopback()).Handler())
	client := &soap.Client{URL: agencyURL}

	// Step 1 (Figure 2): register fragmentations via SOAP.
	for _, reg := range []struct {
		role string
		fr   *core.Fragmentation
		url  string
	}{
		{"source", lf, srcURL},
		{"target", mf, tgtURL},
	} {
		req := &xmltree.Node{Name: "Register"}
		req.SetAttr("service", "AuctionService")
		req.SetAttr("role", reg.role)
		req.SetAttr("url", reg.url)
		defs := &wsdlx.Definitions{
			Name: "Auction", TargetNamespace: "http://auction.wsdl",
			ServiceName: "AuctionService", PortName: "p", Address: reg.url,
			Schema: sch, Fragmentations: []*core.Fragmentation{reg.fr},
		}
		data, err := defs.Marshal()
		check(err)
		wsdlTree, err := xmltree.Parse(strings.NewReader(string(data)))
		check(err)
		req.AddKid(wsdlTree)
		resp, err := client.Call("Register", req)
		check(err)
		fmt.Printf("registered %s (%s): %s fragments=%d\n", reg.role, reg.url, reg.fr.Name, reg.fr.Len())
		_ = resp
	}

	// Step 2+3: ask the agency for a plan and inspect the negotiated
	// program.
	planReq := &xmltree.Node{Name: "Plan"}
	planReq.SetAttr("service", "AuctionService")
	planReq.SetAttr("algorithm", "greedy")
	planResp, err := client.Call("Plan", planReq)
	check(err)
	cost, _ := planResp.Attr("estimatedCost")
	ms, _ := planResp.Attr("planMillis")
	fmt.Printf("\nagency planned the LF -> MF transfer: estimated cost %s (in %s ms)\n", cost, ms)
	for _, k := range planResp.Kids {
		if k.Name != "program" {
			continue
		}
		for _, section := range k.Kids {
			if section.Name != "ops" {
				continue
			}
			fmt.Printf("program has %d operations:\n", len(section.Kids))
			for _, op := range section.Kids {
				kind, _ := op.Attr("kind")
				out, _ := op.Attr("out")
				loc, _ := op.Attr("loc")
				fmt.Printf("  %-8s @ %s  %s\n", kind, loc, truncate(out, 60))
			}
		}
	}

	// Step 4: run the exchange through the agency.
	exReq := &xmltree.Node{Name: "Exchange"}
	exReq.SetAttr("service", "AuctionService")
	exResp, err := client.Call("Exchange", exReq)
	check(err)
	bytesShipped, _ := exResp.Attr("shipBytes")
	fmt.Printf("\nexchange complete: %s bytes shipped; target now holds %d rows in %d tables\n",
		bytesShipped, tgtStore.Rows(), len(tgtStore.Tables()))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func serve(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, h)
	return "http://" + ln.Addr().String()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
