// Quickstart: the smallest end-to-end fragmented exchange, entirely
// in-process through the public API.
//
// A source system stores customer data in the paper's relational schema S;
// a target expects the T-fragmentation. We derive the mapping, let the
// optimizer build and place a data-transfer program, execute it, and show
// that the target receives exactly the source's document.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"xdx"
)

const customerXML = `<Customer><CustName>Ann</CustName>` +
	`<Order><Service><ServiceName>local</ServiceName>` +
	`<Line><TelNo>555-0001</TelNo><Switch><SwitchID>sw1</SwitchID></Switch>` +
	`<Feature><FeatureID>callerID</FeatureID></Feature></Line>` +
	`</Service></Order></Customer>`

func main() {
	// 1. The agreed XML Schema (Figure 1 of the paper).
	sch, err := xdx.ParseDTD(`
		<!ELEMENT Customer (CustName, Order*)>
		<!ELEMENT Order (Service)>
		<!ELEMENT Service (ServiceName, Line*)>
		<!ELEMENT Line (TelNo, Switch, Feature*)>
		<!ELEMENT Switch (SwitchID)>
		<!ELEMENT Feature (FeatureID)>
	`)
	check(err)

	// 2. The two systems' fragmentations: S mirrors the relational source,
	// T the provisioning target (§1.1).
	source, err := xdx.FromPartition(sch, "S-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName"},
		{"Line", "TelNo", "Feature", "FeatureID"},
		{"Switch", "SwitchID"},
	})
	check(err)
	target, err := xdx.FromPartition(sch, "T-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
	check(err)

	// 3. Derive the mapping and optimize a data-transfer program.
	mapping, err := xdx.NewMapping(source, target)
	check(err)
	stats := &xdx.StatsProvider{
		Card:  map[string]float64{},
		Bytes: map[string]float64{},
	}
	for _, e := range sch.Names() {
		stats.Card[e], stats.Bytes[e] = 10, 20
	}
	stats.Unit.Scan, stats.Unit.Combine, stats.Unit.Split, stats.Unit.Write = 1, 4, 1.5, 1
	stats.SourceSpeed, stats.TargetSpeed, stats.TargetCombines = 1, 1, true
	result, err := xdx.Optimal(mapping, xdx.NewModel(stats), xdx.GenOptions{})
	check(err)

	fmt.Println("Optimized data-transfer program (Figure 5 of the paper):")
	fmt.Print(result.Program)
	fmt.Printf("estimated cost: %.0f\n\n", result.Cost)
	for _, op := range result.Program.Ops {
		fmt.Printf("  %-55s @ %s\n", op, result.Assign[op.ID])
	}

	// 4. Execute it over real data.
	doc, err := xdx.ParseDocument(strings.NewReader(customerXML))
	check(err)
	xdx.AssignIDs(doc)
	sources, err := xdx.FromDocument(source, doc)
	check(err)
	exec, err := xdx.Execute(result.Program, sch, sources)
	check(err)

	fmt.Printf("\nTarget received %d fragment instances:\n", len(exec.Written))
	for name, in := range exec.Written {
		fmt.Printf("  %-35s %d records\n", name, in.Rows())
	}
	fmt.Println("\nPer-operation breakdown:")
	fmt.Print(xdx.SummarizeTraces(exec.Traces))

	// 5. Prove the document survived the fragmented transfer.
	back, err := xdx.Document(target, exec.Written)
	check(err)
	fmt.Println("\nReassembled at target:")
	check(xdx.WriteDocument(os.Stdout, back))
	fmt.Println()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
