// Recommend: the paper's §7 future work — "derive the best fragmentation
// for a system based on its internal indices and data structures" — as a
// working feature.
//
// A target system is about to join an exchange with an MF-fragmented
// auction source. We let the library recommend the target's fragmentation
// under the same cost model the optimizer uses, compare it with the
// canonical layouts, and render the winning plan as Graphviz dot.
package main

import (
	"fmt"
	"log"
	"os"

	"xdx"
	"xdx/internal/xmark"
)

func main() {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 150_000, Seed: 11})
	card, bytes := xmark.Stats(doc)
	stats := &xdx.StatsProvider{
		Card: card, Bytes: bytes,
		SourceSpeed: 1, TargetSpeed: 1, TargetCombines: true,
	}
	stats.Unit.Scan, stats.Unit.Combine, stats.Unit.Split, stats.Unit.Write = 1, 4, 1.5, 1
	model := xdx.NewModel(stats)

	// The source is fixed: the paper's Most-Fragmented relational layout.
	src := xdx.MostFragmented(sch)

	fmt.Println("Baseline target layouts (greedy exchange cost from an MF source):")
	for _, tgt := range []*xdx.Fragmentation{xdx.Trivial(sch), xdx.LeastFragmented(sch), xdx.MostFragmented(sch)} {
		m, err := xdx.NewMapping(src, tgt)
		check(err)
		res, err := xdx.Greedy(m, model)
		check(err)
		fmt.Printf("  %-10s %2d fragments   cost %12.0f\n", tgt.Name, tgt.Len(), res.Cost)
	}

	rec, err := xdx.RecommendTarget(src, model, xdx.RecommendOptions{Candidates: 25, Seed: 11})
	check(err)
	fmt.Printf("\nRecommended: %d fragments, cost %.0f (%d layouts evaluated)\n",
		rec.Fragmentation.Len(), rec.Cost, rec.Evaluated)
	for _, f := range rec.Fragmentation.Fragments {
		fmt.Printf("  fragment rooted at %-16s (%d elements)\n", f.Root, f.Size())
	}

	// Show the plan the recommendation produces, as Graphviz dot.
	m, err := xdx.NewMapping(src, rec.Fragmentation)
	check(err)
	res, err := xdx.Greedy(m, model)
	check(err)
	st := res.Program.OpStats()
	fmt.Printf("\nWinning program: %d scans, %d combines, %d splits, %d writes\n",
		st.Scans, st.Combines, st.Splits, st.Writes)
	if err := os.WriteFile("recommended_plan.dot", []byte(res.Program.DOT(res.Assign)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan written to recommended_plan.dot (render with: dot -Tsvg recommended_plan.dot)")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
