// Telecom: the paper's §1.1 motivating scenario over live SOAP endpoints.
//
// A sales-and-ordering system stores customer orders relationally (schema
// S); a provisioning system consumes them into an LDAP directory (schema
// T). The directory is a dumb client — it cannot combine fragments — so
// the optimizer places every combine at the source. The exchange runs over
// real HTTP with the discovery agency in the middle.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"xdx"
)

const customerXML = `<Customer><CustName>Ann</CustName>` +
	`<Order><Service><ServiceName>local</ServiceName>` +
	`<Line><TelNo>555-0001</TelNo><Switch><SwitchID>sw1</SwitchID></Switch>` +
	`<Feature><FeatureID>callerID</FeatureID></Feature>` +
	`<Feature><FeatureID>voicemail</FeatureID></Feature></Line>` +
	`<Line><TelNo>555-0002</TelNo><Switch><SwitchID>sw2</SwitchID></Switch></Line>` +
	`</Service></Order>` +
	`<Order><Service><ServiceName>long-distance</ServiceName>` +
	`<Line><TelNo>555-0003</TelNo><Switch><SwitchID>sw1</SwitchID></Switch>` +
	`<Feature><FeatureID>callerID</FeatureID></Feature></Line>` +
	`</Service></Order></Customer>`

func main() {
	sch, err := xdx.ParseDTD(`
		<!ELEMENT Customer (CustName, Order*)>
		<!ELEMENT Order (Service)>
		<!ELEMENT Service (ServiceName, Line*)>
		<!ELEMENT Line (TelNo, Switch, Feature*)>
		<!ELEMENT Switch (SwitchID)>
		<!ELEMENT Feature (FeatureID)>
	`)
	check(err)
	sFrag, err := xdx.FromPartition(sch, "S-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName"},
		{"Line", "TelNo", "Feature", "FeatureID"}, // the denormalized LINE_FEATURE relation
		{"Switch", "SwitchID"},
	})
	check(err)
	tFrag, err := xdx.FromPartition(sch, "T-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
	check(err)

	// Source: relational store loaded with customer data.
	srcStore, err := xdx.NewRelStore(sFrag)
	check(err)
	doc, err := xdx.ParseDocument(strings.NewReader(customerXML))
	check(err)
	xdx.AssignIDs(doc)
	check(srcStore.LoadDocument(doc))

	// Target: LDAP directory (a consumer that cannot combine).
	dirStore := xdx.NewLDAPStore(tFrag)

	srcURL := serve(xdx.NewEndpoint("sales", &xdx.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil).Handler())
	tgtURL := serve(xdx.NewEndpoint("provisioning", &xdx.LDAPBackend{Store: dirStore, Speed: 1}, nil).Handler())
	fmt.Printf("sales endpoint:        %s\nprovisioning endpoint: %s\n\n", srcURL, tgtURL)

	// Register both parties at the discovery agency with WSDL documents
	// carrying the fragmentation extension.
	agency := xdx.NewAgency()
	check(agency.Register("CustomerInfoService", xdx.RoleSource, wsdlDoc(sch, sFrag, srcURL), srcURL))
	check(agency.Register("CustomerInfoService", xdx.RoleTarget, wsdlDoc(sch, tFrag, tgtURL), tgtURL))

	plan, err := agency.Plan("CustomerInfoService", xdx.PlanOptions{Algorithm: xdx.AlgOptimal})
	check(err)
	fmt.Println("Agency-generated program:")
	for _, op := range plan.Program.Ops {
		fmt.Printf("  %-55s @ %s\n", op, plan.Assign[op.ID])
	}

	report, err := agency.Execute("CustomerInfoService", plan, xdx.Loopback())
	check(err)
	fmt.Printf("\nExchange done: %d bytes shipped, source %.2fms, write %.2fms\n",
		report.ShipBytes, report.SourceTime.Seconds()*1000, report.WriteTime.Seconds()*1000)

	fmt.Println("\nProvisioning directory contents:")
	for _, class := range dirStore.Dir.Classes() {
		for _, e := range dirStore.Dir.Search("", class) {
			fmt.Printf("  dn=%-12s objectclass=%-10s %v\n", e.DN, e.Class, e.Attrs)
		}
	}
}

func wsdlDoc(sch *xdx.Schema, fr *xdx.Fragmentation, addr string) []byte {
	d := &xdx.Definitions{
		Name:            "CustomerInfo",
		TargetNamespace: "http://customers.wsdl",
		Documentation:   "Provides customer information",
		ServiceName:     "CustomerInfoService",
		PortName:        "CustomerInfoPort",
		Address:         addr,
		Schema:          sch,
		Fragmentations:  []*xdx.Fragmentation{fr},
	}
	data, err := d.Marshal()
	check(err)
	return data
}

// serve starts an HTTP server on an ephemeral localhost port.
func serve(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, h)
	return "http://" + ln.Addr().String()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
