package xdx

// Executor comparison on the XMark most-fragmented -> least-fragmented
// mapping: the reference sequential executor, the per-op-goroutine parallel
// executor, and the pipelined streaming executor. The pipelined run is
// where the incremental join index and copy-on-write views pay off: every
// Combine in the chain probes a persistent index instead of re-walking the
// accumulated merged instance.

import (
	"testing"

	"xdx/internal/core"
	"xdx/internal/schema"
)

func benchExec(b *testing.B, exec func(*core.Graph, *schema.Schema, map[string]*core.Instance) (*core.ExecResult, error)) {
	m, _ := ablationSetup(b)
	g, err := core.CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src := freshSources(b, m, 3)
		b.StartTimer()
		if _, err := exec(g, m.Source.Schema, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecSequential(b *testing.B) { benchExec(b, core.Execute) }
func BenchmarkExecParallel(b *testing.B)   { benchExec(b, core.ExecuteParallel) }
func BenchmarkExecPipelined(b *testing.B)  { benchExec(b, core.ExecutePipelined) }
