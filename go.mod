module xdx

go 1.22
