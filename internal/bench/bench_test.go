package bench

import (
	"fmt"
	"strings"
	"testing"
)

// quickOpts keeps test documents small; the full sizes run in cmd/xdxbench.
// The zero Link requests the calibrated proportional link. Small documents
// mean sub-millisecond phases, so the shape assertions take the best of
// several timing repetitions to survive scheduler noise.
func quickOpts() Options {
	return Options{Sizes: []int64{60_000, 150_000}, Seed: 1, Repeat: 5}
}

func measureOnce(t *testing.T) *Results {
	t.Helper()
	res, err := Measure(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMeasureShapes(t *testing.T) {
	res := measureOnce(t)
	for _, size := range res.Options.Sizes {
		// Table 1 shape: LF->LF cheapest of the four scenarios.
		lflf := res.Step1[key{"LF->LF", size}]
		mflf := res.Step1[key{"MF->LF", size}]
		if lflf <= 0 || mflf <= 0 {
			t.Fatalf("step1 missing for size %d", size)
		}
		if lflf > mflf {
			t.Errorf("size %d: LF->LF (%v) should be cheaper than MF->LF (%v)", size, lflf, mflf)
		}
		// Table 2 shape: publishing from LF is cheaper than from MF.
		if res.PublishTime[key{"LF", size}] > res.PublishTime[key{"MF", size}] {
			t.Errorf("size %d: publish from LF (%v) should be cheaper than from MF (%v)",
				size, res.PublishTime[key{"LF", size}], res.PublishTime[key{"MF", size}])
		}
		// Table 3 shape: the LF target ships least; the MF target ships
		// every element as a keyed record, so it may exceed the plain
		// document slightly (the paper's feeds were leaner) but not by
		// much.
		if res.ShipBytesDE[key{"LF", size}] > res.DocBytes[key{"doc", size}] {
			t.Errorf("size %d: DE->LF ships %d > document %d", size,
				res.ShipBytesDE[key{"LF", size}], res.DocBytes[key{"doc", size}])
		}
		if res.ShipBytesDE[key{"LF", size}] > res.ShipBytesDE[key{"MF", size}] {
			t.Errorf("size %d: LF target should ship less than MF target", size)
		}
		if float64(res.ShipBytesDE[key{"MF", size}]) > 1.4*float64(res.DocBytes[key{"doc", size}]) {
			t.Errorf("size %d: DE->MF ships %d, far above document %d", size,
				res.ShipBytesDE[key{"MF", size}], res.DocBytes[key{"doc", size}])
		}
		// Table 4 shape: MF load+index costs more than LF.
		mfCost := res.LoadTime[key{"MF", size}] + res.IndexTime[key{"MF", size}]
		lfCost := res.LoadTime[key{"LF", size}] + res.IndexTime[key{"LF", size}]
		if mfCost < lfCost {
			t.Errorf("size %d: MF target load+index (%v) below LF (%v)", size, mfCost, lfCost)
		}
	}
	// Larger documents take longer.
	small, large := res.Options.Sizes[0], res.Options.Sizes[1]
	if res.Step1[key{"MF->LF", large}] < res.Step1[key{"MF->LF", small}] {
		t.Errorf("step1 did not grow with document size")
	}
}

func TestEndToEndSavingBand(t *testing.T) {
	// Figure 9's headline: DE saves end-to-end in every scenario. The
	// paper band is 23–43% on its hardware; with the modeled link the
	// communication term dominates similarly, so require a positive saving
	// and an upper sanity bound.
	res := measureOnce(t)
	size := res.Options.Sizes[len(res.Options.Sizes)-1]
	for _, scen := range Scenarios {
		s := Saving(res, scen, size)
		if s <= 0 {
			t.Errorf("%s: DE saving %.2f not positive", scen, s)
		}
		if s > 0.9 {
			t.Errorf("%s: DE saving %.2f implausibly large", scen, s)
		}
	}
}

func TestTableRendering(t *testing.T) {
	res := measureOnce(t)
	for name, tab := range map[string]*Table{
		"t1": Table1(res),
		"t2": Table2(res),
		"t3": Table3(res),
		"t4": Table4(res),
		"f9": Figure9(res),
	} {
		out := tab.String()
		if len(out) < 50 {
			t.Errorf("%s: output too short:\n%s", name, out)
		}
		if !strings.Contains(out, "0.") && !strings.Contains(out, "1.") {
			t.Errorf("%s: no numbers rendered:\n%s", name, out)
		}
	}
	t2 := Table2(res).String()
	if !strings.Contains(t2, "+") {
		t.Errorf("table 2 should render value pairs:\n%s", t2)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", `has,comma`}, {"2", `has"quote`}},
		Notes:  []string{"a note"},
	}
	out := tab.CSV()
	want := "a,b\n1,\"has,comma\"\n2,\"has\"\"quote\"\n# a note\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestFigure10And11(t *testing.T) {
	f10, err := Figure10(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Rows) != 2 {
		t.Fatalf("figure 10 rows = %d", len(f10.Rows))
	}
	// Publish total is normalized to 1.
	if f10.Rows[1][3] != "1.000" {
		t.Errorf("publish total = %s, want 1.000", f10.Rows[1][3])
	}
	f11, err := Figure11(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11.Notes) == 0 || !strings.Contains(f11.Notes[0], "reduction") {
		t.Errorf("figure 11 notes missing reduction: %v", f11.Notes)
	}
}

func TestRecommendExtension(t *testing.T) {
	tab, err := Recommend(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("recommend rows = %d, want 4", len(tab.Rows))
	}
	// The recommended layout must be at least as cheap as every baseline.
	parse := func(s string) float64 {
		var f float64
		if _, err := fmt.Sscanf(s, "%f", &f); err != nil {
			t.Fatalf("bad cost %q", s)
		}
		return f
	}
	recCost := parse(tab.Rows[3][2])
	for i := 0; i < 3; i++ {
		if recCost > parse(tab.Rows[i][2])+1e-9 {
			t.Errorf("recommended cost %v worse than %s", recCost, tab.Rows[i][0])
		}
	}
}

func TestTable5(t *testing.T) {
	tab, err := Table5(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("table 5 rows = %d, want 5", len(tab.Rows))
	}
	if tab.Rows[0][0] != "5/1" || tab.Rows[4][0] != "1/5" {
		t.Errorf("speed ratios wrong: %v", tab.Rows)
	}
}
