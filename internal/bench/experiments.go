package bench

import (
	"fmt"
	"time"

	"xdx/internal/core"
	"xdx/internal/sim"
	"xdx/internal/xmark"
)

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

func sizeLabel(n int64) string { return fmt.Sprintf("%.1fMB", float64(n)/1e6) }

// Table1 renders Table 1: times to execute queries (Step 1) in the
// optimized data exchange.
func Table1(res *Results) *Table {
	t := &Table{
		Title:  "Table 1. Times (secs) to execute queries (Step 1) in Optimized Data Exchange",
		Header: append([]string{"Document Size:"}, sizeLabels(res)...),
	}
	for _, scen := range Scenarios {
		row := []string{scen}
		for _, size := range res.Options.Sizes {
			row = append(row, secs(res.Step1[key{scen, size}]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "expected shape: LF->LF cheapest (no combines), MF->LF most expensive (most combines)")
	return t
}

// Table2 renders Table 2: publish (first value) and map/shred (second
// value) times.
func Table2(res *Results) *Table {
	t := &Table{
		Title:  "Table 2. Times (secs) for Publish (first value/Step 1) & Map (second value/Step 4)",
		Header: append([]string{"Document Size:"}, sizeLabels(res)...),
	}
	for _, scen := range Scenarios {
		srcName, tgtName := scen[:2], scen[4:]
		row := []string{scen}
		for _, size := range res.Options.Sizes {
			row = append(row, fmt.Sprintf("%s+%s",
				secs(res.PublishTime[key{srcName, size}]),
				secs(res.ShredTime[key{tgtName, size}])))
		}
		t.AddRow(row...)
	}
	for _, size := range res.Options.Sizes {
		t.Notes = append(t.Notes, fmt.Sprintf("parse time for %s document: %s secs (included in shred)",
			sizeLabel(size), secs(res.ParseTime[key{"doc", size}])))
	}
	t.Notes = append(t.Notes, "expected shape: shredding dominates publishing when the source is LF (bottom rows)")
	return t
}

// Table3 renders Table 3: communication times over the modeled link.
func Table3(res *Results) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table 3. Communication Times (secs) over %s", res.Options.Link),
		Header: append([]string{"Strategy"}, sizeLabels(res)...),
	}
	for _, tgt := range []string{"MF", "LF"} {
		row := []string{fmt.Sprintf("Optimized Data Exchange (Target is %s)", tgt)}
		for _, size := range res.Options.Sizes {
			row = append(row, secs(res.CommDE(tgt, size)))
		}
		t.AddRow(row...)
	}
	row := []string{"Publish&Map"}
	for _, size := range res.Options.Sizes {
		row = append(row, secs(res.CommPM(size)))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes, "expected shape: DE ships less than P&M; the LF target ships the least")
	return t
}

// Table4 renders Table 4: load and index-build times at the target.
func Table4(res *Results) *Table {
	t := &Table{
		Title:  "Table 4. Times (secs) to load target db (first value) and create indices (second value)",
		Header: append([]string{"Target"}, sizeLabels(res)...),
	}
	for _, tgt := range []string{"MF", "LF"} {
		row := []string{tgt}
		for _, size := range res.Options.Sizes {
			row = append(row, fmt.Sprintf("%s+%s",
				secs(res.LoadTime[key{tgt, size}]),
				secs(res.IndexTime[key{tgt, size}])))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "expected shape: MF (many tables) costs more than LF on both steps")
	return t
}

// Figure9 renders Figure 9: the end-to-end component breakdown for the
// largest document, optimized data exchange (DE) vs publish&map (PM) per
// scenario, plus the overall DE saving.
func Figure9(res *Results) *Table {
	size := res.Options.Sizes[len(res.Options.Sizes)-1]
	t := &Table{
		Title:  fmt.Sprintf("Figure 9. Times (secs) for end-to-end transfer of the %s document", sizeLabel(size)),
		Header: []string{"Setup", "Processing@S", "Communication", "Shredding", "Load", "Index", "Total"},
	}
	for _, scen := range Scenarios {
		srcName, tgtName := scen[:2], scen[4:]
		de := []time.Duration{
			res.Step1[key{scen, size}],
			res.CommDE(tgtName, size),
			0,
			res.LoadTime[key{tgtName, size}],
			res.IndexTime[key{tgtName, size}],
		}
		pm := []time.Duration{
			res.PublishTime[key{srcName, size}],
			res.CommPM(size),
			res.ShredTime[key{tgtName, size}],
			res.LoadTime[key{tgtName, size}],
			res.IndexTime[key{tgtName, size}],
		}
		deTotal, pmTotal := sum(de), sum(pm)
		t.AddRow(scen+" DE", secs(de[0]), secs(de[1]), secs(de[2]), secs(de[3]), secs(de[4]), secs(deTotal))
		t.AddRow(scen+" PM", secs(pm[0]), secs(pm[1]), secs(pm[2]), secs(pm[3]), secs(pm[4]), secs(pmTotal))
		saving := 0.0
		if pmTotal > 0 {
			saving = 1 - deTotal.Seconds()/pmTotal.Seconds()
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: DE saves %.0f%% end-to-end", scen, saving*100))
	}
	t.Notes = append(t.Notes, "paper band: DE saves between 23% and 43% end-to-end")
	return t
}

func sum(ds []time.Duration) time.Duration {
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s
}

// Saving computes the Figure 9 end-to-end DE saving for one scenario.
func Saving(res *Results, scen string, size int64) float64 {
	srcName, tgtName := scen[:2], scen[4:]
	de := res.Step1[key{scen, size}] + res.CommDE(tgtName, size) +
		res.LoadTime[key{tgtName, size}] + res.IndexTime[key{tgtName, size}]
	pm := res.PublishTime[key{srcName, size}] + res.CommPM(size) +
		res.ShredTime[key{tgtName, size}] +
		res.LoadTime[key{tgtName, size}] + res.IndexTime[key{tgtName, size}]
	if pm == 0 {
		return 0
	}
	return 1 - de.Seconds()/pm.Seconds()
}

// Figure10 renders the §5.4.1 simulator comparison for equal systems.
func Figure10(seeds int) (*Table, error) {
	return figureSim("Figure 10. Optimized Data Exchange versus Publishing, similar source and target systems", sim.Config{}, seeds)
}

// Figure11 renders the §5.4.1 comparison with a 10x faster target.
func Figure11(seeds int) (*Table, error) {
	return figureSim("Figure 11. Optimized Data Exchange versus Publishing for fast (x10) target", sim.Config{TargetSpeed: 10}, seeds)
}

func figureSim(title string, cfg sim.Config, seeds int) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"Strategy", "Computation", "Communication", "Total (rel.)"},
	}
	var ex, exComm, pub, pubComm, reduction float64
	combinesAtTarget, combinesTotal := 0, 0
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = int64(s)
		cmp, err := sim.New(c).CompareWithPublish()
		if err != nil {
			return nil, err
		}
		ex += cmp.Exchange.Computation
		exComm += cmp.Exchange.Communication
		pub += cmp.Publish.Computation
		pubComm += cmp.Publish.Communication
		reduction += cmp.Reduction
		combinesAtTarget += cmp.CombinesAtTarget
		combinesTotal += cmp.CombinesTotal
	}
	pubTotal := pub + pubComm
	rel := func(v float64) string { return fmt.Sprintf("%.3f", v/pubTotal) }
	t.AddRow("Data Exchange", rel(ex), rel(exComm), rel(ex+exComm))
	t.AddRow("Publish", rel(pub), rel(pubComm), rel(pub+pubComm))
	t.Notes = append(t.Notes,
		fmt.Sprintf("average cost reduction: %.0f%% (paper: ~65%% equal systems, ~85%% fast target)", reduction/float64(seeds)*100),
		fmt.Sprintf("combines placed at target: %d of %d", combinesAtTarget, combinesTotal))
	return t, nil
}

// Table5 renders the §5.4.2 greedy evaluation across the paper's five
// relative speeds.
func Table5(runs int) (*Table, error) {
	t := &Table{
		Title:  "Table 5. Ratios of cost of greedy and worst-case programs over the cost of optimal one",
		Header: []string{"Relative speed (source/target)", "Worst/Optimal", "Greedy/Optimal", "Optimal time", "Greedy time"},
	}
	speeds := [][2]float64{{5, 1}, {2, 1}, {1, 1}, {1, 2}, {1, 5}}
	for _, sp := range speeds {
		cfg := sim.Config{Depth: 2, Fanout: 5, FragsPerSide: 6, SourceSpeed: sp[0], TargetSpeed: sp[1]}
		ev, err := sim.EvaluateGreedy(cfg, runs)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%g/%g", sp[0], sp[1]),
			fmt.Sprintf("%.4f", ev.WorstOverOptimal),
			fmt.Sprintf("%.4f", ev.GreedyOverOptimal),
			ev.OptimalTime.String(),
			ev.GreedyTime.String(),
		)
	}
	t.Notes = append(t.Notes,
		"paper shape: greedy within ~1% of optimal everywhere; worst-case window widens at skewed speeds (up to ~1.94x)",
		"the exhaustive optimizer is orders of magnitude slower than greedy (paper: 80.9s vs milliseconds)")
	return t, nil
}

// Recommend runs the §7 future-work extension: derive the best
// fragmentation for the target given a fixed source, on the auction schema
// with simulated statistics, and compare it with the canonical layouts.
func Recommend(seed int64) (*Table, error) {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 200_000, Seed: seed})
	card, bytes := xmark.Stats(doc)
	p := &core.StatsProvider{
		Card: card, Bytes: bytes,
		Unit:        core.DefaultUnitCosts(),
		SourceSpeed: 1, TargetSpeed: 1, TargetCombines: true,
	}
	model := core.NewModel(p)
	src := core.MostFragmented(sch)
	t := &Table{
		Title:  "Extension (§7 future work): recommended target fragmentation for an MF source",
		Header: []string{"Target layout", "Fragments", "Greedy exchange cost"},
	}
	costOf := func(tgt *core.Fragmentation) (float64, error) {
		m, err := core.NewMapping(src, tgt)
		if err != nil {
			return 0, err
		}
		res, err := core.Greedy(m, model)
		if err != nil {
			return 0, err
		}
		return res.Cost, nil
	}
	for _, tgt := range []*core.Fragmentation{core.Trivial(sch), core.LeastFragmented(sch), core.MostFragmented(sch)} {
		c, err := costOf(tgt)
		if err != nil {
			return nil, err
		}
		t.AddRow(tgt.Name, fmt.Sprintf("%d", tgt.Len()), fmt.Sprintf("%.0f", c))
	}
	rec, err := core.RecommendTarget(src, model, core.RecommendOptions{Candidates: 20, Seed: seed})
	if err != nil {
		return nil, err
	}
	t.AddRow("recommended", fmt.Sprintf("%d", rec.Fragmentation.Len()), fmt.Sprintf("%.0f", rec.Cost))
	t.Notes = append(t.Notes,
		fmt.Sprintf("search evaluated %d candidate layouts (sampling + cut-toggle hill climbing)", rec.Evaluated),
		"expected: the recommended layout costs no more than any canonical layout")
	return t, nil
}

func sizeLabels(res *Results) []string {
	var out []string
	for _, s := range res.Options.Sizes {
		out = append(out, sizeLabel(s))
	}
	return out
}
