package bench

import (
	"bytes"
	"fmt"
	"time"

	"xdx/internal/core"
	"xdx/internal/netsim"
	"xdx/internal/publish"
	"xdx/internal/relstore"
	"xdx/internal/shred"
	"xdx/internal/wire"
	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

// Options tune the real-measurement experiments.
type Options struct {
	// Sizes are the document sizes in bytes; the paper uses 2.5, 12.5 and
	// 25 MB. Defaults to those three.
	Sizes []int64
	// Seed drives document generation.
	Seed int64
	// Link models the WAN between the systems. The zero value asks Measure
	// to calibrate a link that preserves the paper's communication-to-
	// processing proportion on this machine (their 25 MB transfer took
	// ~1.8x their MF publish time); the in-memory store is orders of
	// magnitude faster than their MySQL setup, so a fixed 160 KB/s link
	// would otherwise drown every processing effect.
	Link netsim.Link
	// Repeat measures every timed phase this many times and keeps the
	// minimum (0 = once). The phases are sub-millisecond on small
	// documents, where a single scheduler hiccup can invert the MF/LF
	// orderings the paper's tables rest on; the minimum is the standard
	// noise-robust estimator for shape assertions. Defaults to once so
	// end-to-end benchmarks keep their cost.
	Repeat int
}

func (o Options) withDefaults() Options {
	if len(o.Sizes) == 0 {
		o.Sizes = []int64{2_500_000, 12_500_000, 25_000_000}
	}
	if o.Repeat < 1 {
		o.Repeat = 1
	}
	return o
}

// commToPublishRatio is the paper's observed proportion between shipping
// the full document and publishing it from the MF layout (Table 3's
// 158.65s over Table 2's 87.32s).
const commToPublishRatio = 1.8

// Scenario names in paper order.
var Scenarios = []string{"MF->MF", "MF->LF", "LF->MF", "LF->LF"}

type key struct {
	scen string // scenario or layout name
	size int64
}

// Results holds every raw measurement the §5.1–§5.3 tables are built from.
type Results struct {
	Options Options

	// Step1 is the optimized-DE source query time per scenario and size
	// (Table 1).
	Step1 map[key]time.Duration
	// PublishTime and ShredTime per source/target layout ("MF"/"LF") and
	// size (Table 2). ParseTime is included in ShredTime and also reported
	// separately, as in the paper's §5.3 discussion.
	PublishTime map[key]time.Duration
	ShredTime   map[key]time.Duration
	ParseTime   map[key]time.Duration
	// ShipBytesDE is the shipped fragment volume per *target* layout and
	// size; DocBytes the published document size (Table 3).
	ShipBytesDE map[key]int64
	DocBytes    map[key]int64
	// LoadTime and IndexTime per target layout and size (Table 4).
	LoadTime  map[key]time.Duration
	IndexTime map[key]time.Duration
}

// CommDE returns the modeled communication time for the optimized exchange
// with the given target layout.
func (r *Results) CommDE(layout string, size int64) time.Duration {
	return r.Options.Link.TransferTime(r.ShipBytesDE[key{layout, size}])
}

// CommPM returns the modeled communication time for publish&map.
func (r *Results) CommPM(size int64) time.Duration {
	return r.Options.Link.TransferTime(r.DocBytes[key{"doc", size}])
}

// Measure runs all real experiments once and returns the raw numbers.
//
// Substitutions relative to the paper (see DESIGN.md): MySQL is replaced
// by the in-memory relational store, the Internet link by a calibrated
// bandwidth model, and expat by the streaming shredder over encoding/xml.
func Measure(opts Options) (*Results, error) {
	opts = opts.withDefaults()
	res := &Results{
		Options:     opts,
		Step1:       map[key]time.Duration{},
		PublishTime: map[key]time.Duration{},
		ShredTime:   map[key]time.Duration{},
		ParseTime:   map[key]time.Duration{},
		ShipBytesDE: map[key]int64{},
		DocBytes:    map[key]int64{},
		LoadTime:    map[key]time.Duration{},
		IndexTime:   map[key]time.Duration{},
	}
	sch := xmark.Schema()
	layouts := map[string]*core.Fragmentation{
		"MF": core.MostFragmented(sch),
		"LF": core.LeastFragmented(sch),
	}
	if res.Options.Link == (netsim.Link{}) {
		link, err := calibrateLink(opts, layouts["MF"])
		if err != nil {
			return nil, err
		}
		res.Options.Link = link
	}
	for _, size := range opts.Sizes {
		doc := xmark.Generate(xmark.Config{TargetBytes: size, Seed: opts.Seed})
		// Source stores for MF and LF, loaded with the same document.
		stores := map[string]*relstore.Store{}
		for name, layout := range layouts {
			st, err := relstore.NewStore(layout)
			if err != nil {
				return nil, err
			}
			if err := st.LoadDocument(doc); err != nil {
				return nil, err
			}
			stores[name] = st
		}
		// ---- Optimized data exchange, Step 1 (Table 1) and shipped bytes
		// (Table 3). All operations except Writes run at the source, which
		// is what Cost_Based_Optim chose for similar machines (§5.3).
		for _, scen := range Scenarios {
			srcName, tgtName := scen[:2], scen[4:]
			m, err := core.NewMapping(layouts[srcName], layouts[tgtName])
			if err != nil {
				return nil, err
			}
			g, err := core.CanonicalProgram(m)
			if err != nil {
				return nil, err
			}
			a := allAtSource(g)
			var outbound map[string]*core.Instance
			var step1 time.Duration
			for r := 0; r < opts.Repeat; r++ {
				start := time.Now()
				outbound, _, err = core.ExecuteSlice(g, sch, a, core.LocSource, core.SliceIO{
					Scan: func(f *core.Fragment) (*core.Instance, error) {
						return scanByElems(stores[srcName], f)
					},
				})
				if err != nil {
					return nil, fmt.Errorf("bench: %s: %w", scen, err)
				}
				if d := time.Since(start); r == 0 || d < step1 {
					step1 = d
				}
			}
			res.Step1[key{scen, size}] = step1
			// Shipped bytes depend only on the target layout; record once
			// per target. Fragments travel as sorted feeds ([5, 6]), which
			// is what Table 3 measures.
			if srcName == tgtName {
				res.ShipBytesDE[key{tgtName, size}] = wire.ShipmentFeedBytes(outbound)
			}
		}
		// ---- Publish&map: publish (Table 2, first value), document size
		// (Table 3), shred (Table 2, second value), load and index
		// (Table 4).
		var docBuf bytes.Buffer
		for _, srcName := range []string{"MF", "LF"} {
			var pubTime time.Duration
			for r := 0; r < opts.Repeat; r++ {
				docBuf.Reset()
				pres, err := publish.Publish(stores[srcName], &docBuf)
				if err != nil {
					return nil, err
				}
				if d := pres.QueryTime + pres.TagTime; r == 0 || d < pubTime {
					pubTime = d
				}
				res.DocBytes[key{"doc", size}] = pres.Bytes
			}
			res.PublishTime[key{srcName, size}] = pubTime
		}
		// Parse-only time, reported separately in §5.3.
		var parseTime time.Duration
		for r := 0; r < opts.Repeat; r++ {
			pStart := time.Now()
			if err := xmltree.Scan(bytes.NewReader(docBuf.Bytes()), xmltree.FuncHandler{}); err != nil {
				return nil, err
			}
			if d := time.Since(pStart); r == 0 || d < parseTime {
				parseTime = d
			}
		}
		res.ParseTime[key{"doc", size}] = parseTime
		for _, tgtName := range []string{"MF", "LF"} {
			var shredTime, loadTime, indexTime time.Duration
			for r := 0; r < opts.Repeat; r++ {
				// Full shred (parse + stack + cut).
				sStart := time.Now()
				insts, err := shred.Shred(bytes.NewReader(docBuf.Bytes()), layouts[tgtName])
				if err != nil {
					return nil, err
				}
				if d := time.Since(sStart); r == 0 || d < shredTime {
					shredTime = d
				}
				// Load + index an empty target store (Table 4). Each
				// repetition starts from its own empty store so load and
				// index always do full work.
				tgtStore, err := relstore.NewStore(layouts[tgtName])
				if err != nil {
					return nil, err
				}
				lStart := time.Now()
				for _, f := range layouts[tgtName].Fragments {
					if err := tgtStore.Load(insts[f.Name]); err != nil {
						return nil, err
					}
				}
				if d := time.Since(lStart); r == 0 || d < loadTime {
					loadTime = d
				}
				iStart := time.Now()
				if err := tgtStore.BuildIndexes(); err != nil {
					return nil, err
				}
				if d := time.Since(iStart); r == 0 || d < indexTime {
					indexTime = d
				}
			}
			res.ShredTime[key{tgtName, size}] = shredTime
			res.LoadTime[key{tgtName, size}] = loadTime
			res.IndexTime[key{tgtName, size}] = indexTime
		}
	}
	return res, nil
}

// calibrateLink measures an MF publish of the largest document and sizes
// the link so that shipping the document costs commToPublishRatio times
// publishing it, preserving the paper's balance between communication and
// processing on much faster hardware.
func calibrateLink(opts Options, mf *core.Fragmentation) (netsim.Link, error) {
	size := opts.Sizes[len(opts.Sizes)-1]
	doc := xmark.Generate(xmark.Config{TargetBytes: size, Seed: opts.Seed})
	st, err := relstore.NewStore(mf)
	if err != nil {
		return netsim.Link{}, err
	}
	if err := st.LoadDocument(doc); err != nil {
		return netsim.Link{}, err
	}
	var sink netsim.Discard
	pres, err := publish.Publish(st, &sink)
	if err != nil {
		return netsim.Link{}, err
	}
	pubSecs := (pres.QueryTime + pres.TagTime).Seconds()
	if pubSecs <= 0 {
		pubSecs = 0.001
	}
	return netsim.Link{BytesPerSecond: float64(pres.Bytes) / (commToPublishRatio * pubSecs)}, nil
}

func allAtSource(g *core.Graph) core.Assignment {
	a := core.NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == core.OpWrite {
			a[op.ID] = core.LocTarget
		} else {
			a[op.ID] = core.LocSource
		}
	}
	return a
}

func scanByElems(st *relstore.Store, f *core.Fragment) (*core.Instance, error) {
	for _, lf := range st.Layout.Fragments {
		if lf.SameElems(f) {
			in, err := st.ScanFragment(lf.Name)
			if err != nil {
				return nil, err
			}
			return &core.Instance{Frag: f, Records: in.Records}, nil
		}
	}
	return nil, fmt.Errorf("bench: no layout fragment matching %q", f.Name)
}
