// Package bench regenerates every table and figure of the paper's
// evaluation (§5): the real-measurement experiments of §5.1–§5.3 (Tables
// 1–4, Figure 9) over the relational stores, shredder and modeled WAN link,
// and the simulator experiments of §5.4 (Figures 10–11, Table 5).
package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	// Title is the paper's table/figure caption.
	Title string
	// Header holds the column names.
	Header []string
	// Rows holds the data cells.
	Rows [][]string
	// Notes are appended explanations (substitutions, caveats).
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// CSV renders the table as comma-separated values (header first, notes as
// trailing comment lines), for plotting outside this repository.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
