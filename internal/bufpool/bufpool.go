// Package bufpool is the shared pooled-buffer layer of the wire path.
// Every shipment — XML, feed, or binary — funnels through a buffered
// writer, every binary chunk through a scratch buffer and a DEFLATE
// stream, and every streamed SOAP call through a request buffer; all of
// those are steady-state hot-path allocations, so the pools live here,
// once, instead of being re-grown per package.
package bufpool

import (
	"bufio"
	"bytes"
	"compress/flate"
	"io"
	"sync"
)

// writerSize is the buffered-writer capacity. 32 KiB comfortably holds a
// shipment chunk's framing plus several records between flushes.
const writerSize = 32 << 10

// maxRetainedBuffer caps the scratch buffers the pool keeps. A pathological
// chunk can grow a buffer to many megabytes; returning that to the pool
// would pin the high-water mark forever.
const maxRetainedBuffer = 1 << 20

var writers = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, writerSize) },
}

// Writer returns a pooled buffered writer reset onto w.
func Writer(w io.Writer) *bufio.Writer {
	bw := writers.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// PutWriter returns a buffered writer to the pool. The caller must have
// flushed (or abandoned) it; the writer is detached from its sink so the
// pool never retains a reference into a finished request.
func PutWriter(bw *bufio.Writer) {
	bw.Reset(io.Discard)
	writers.Put(bw)
}

var buffers = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// Buffer returns an empty pooled scratch buffer.
func Buffer() *bytes.Buffer {
	b := buffers.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// PutBuffer returns a scratch buffer to the pool, dropping oversized ones.
func PutBuffer(b *bytes.Buffer) {
	if b.Cap() > maxRetainedBuffer {
		return
	}
	buffers.Put(b)
}

// Binary chunks compress independently (the framing restarts at chunk
// boundaries so torn-chunk recovery keeps working), which means one flate
// stream per chunk — pooled, because flate.Writer alone is ~600 KiB of
// window state.
var flateWriters = sync.Pool{
	New: func() any {
		// BestSpeed: the codec already removed the redundancy tags carry;
		// flate mops up text repetition, where higher levels buy little at
		// several times the CPU on this hot path.
		fw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return fw
	},
}

// FlateWriter returns a pooled DEFLATE writer reset onto w.
func FlateWriter(w io.Writer) *flate.Writer {
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(w)
	return fw
}

// PutFlateWriter returns a DEFLATE writer to the pool after the caller
// closed it.
func PutFlateWriter(fw *flate.Writer) {
	fw.Reset(io.Discard)
	flateWriters.Put(fw)
}

var flateReaders = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

// emptySource is the parking source for pooled flate readers; it is never
// read from (Reset replaces it before any Read), only referenced.
var emptySource = bytes.NewReader(nil)

// FlateReader returns a pooled DEFLATE reader reset onto r.
func FlateReader(r io.Reader) io.ReadCloser {
	fr := flateReaders.Get().(io.ReadCloser)
	fr.(flate.Resetter).Reset(r, nil)
	return fr
}

// PutFlateReader returns a DEFLATE reader to the pool, detached from its
// source first — like PutWriter, the pool must never retain a reference
// into a finished request's payload buffer.
func PutFlateReader(fr io.ReadCloser) {
	fr.(flate.Resetter).Reset(emptySource, nil)
	flateReaders.Put(fr)
}
