package core

import (
	"fmt"
	"math"
	"strings"
)

// CostProvider supplies the two estimate functions of §4.1:
// comp_cost(OP, location) and the size() function behind comm_cost. The
// middle-ware obtains these by probing the systems involved in the
// exchange; simulators and endpoints provide their own implementations.
type CostProvider interface {
	// CompCost estimates the cost of executing an operation of the given
	// kind at loc, with the given input fragments producing output. A
	// system that cannot (or will not) run an operation — e.g. a dumb
	// client that cannot Combine — reports +Inf.
	CompCost(kind OpKind, inputs []*Fragment, output *Fragment, loc Location) float64
	// ShipBytes estimates the serialized size of an instance of f, the
	// size(OP1.out) term of comm_cost.
	ShipBytes(f *Fragment) float64
}

// Model is the execution-cost model of §4.1 (formula 1): the weighted sum
// of per-operation computation costs and per-cross-edge communication
// costs.
type Model struct {
	// WComp and WComm weight computation and communication cost.
	WComp, WComm float64
	// Provider supplies the estimates.
	Provider CostProvider
}

// NewModel returns a model with unit weights.
func NewModel(p CostProvider) *Model { return &Model{WComp: 1, WComm: 1, Provider: p} }

// OpCost returns the weighted computation cost of op at loc within g.
func (m *Model) OpCost(g *Graph, op *Op, loc Location) float64 {
	ins := g.In(op)
	inputs := make([]*Fragment, len(ins))
	for i, e := range ins {
		inputs[i] = e.Frag
	}
	return m.WComp * m.Provider.CompCost(op.Kind, inputs, op.Out, loc)
}

// EdgeCost returns the weighted communication cost of e under a: the
// shipped size if e is a cross-edge, zero otherwise.
func (m *Model) EdgeCost(e *Edge, a Assignment) float64 {
	if a[e.From.ID] == LocSource && a[e.To.ID] == LocTarget {
		return m.WComm * m.Provider.ShipBytes(e.Frag)
	}
	return 0
}

// Cost evaluates formula (1) for a complete assignment.
func (m *Model) Cost(g *Graph, a Assignment) (float64, error) {
	if len(a) != len(g.Ops) {
		return 0, fmt.Errorf("core: assignment covers %d ops, graph has %d", len(a), len(g.Ops))
	}
	if !a.Complete() {
		return 0, fmt.Errorf("core: assignment incomplete")
	}
	if !a.Monotone(g) {
		return 0, fmt.Errorf("core: assignment ships data target to source")
	}
	total := 0.0
	for _, op := range g.Ops {
		total += m.OpCost(g, op, a[op.ID])
	}
	for _, e := range g.Edges {
		total += m.EdgeCost(e, a)
	}
	return total, nil
}

// Split of cost into its two components, for the stacked bars of Figures
// 10 and 11.
type CostBreakdown struct {
	Computation   float64
	Communication float64
}

// Breakdown evaluates the two components of formula (1) separately.
func (m *Model) Breakdown(g *Graph, a Assignment) (CostBreakdown, error) {
	var b CostBreakdown
	if _, err := m.Cost(g, a); err != nil {
		return b, err
	}
	for _, op := range g.Ops {
		b.Computation += m.OpCost(g, op, a[op.ID])
	}
	for _, e := range g.Edges {
		b.Communication += m.EdgeCost(e, a)
	}
	return b, nil
}

// Explain renders the cost model's view of a placed program: one line per
// operation with its location and computation cost, one line per
// cross-edge with its communication cost, and the weighted total —
// formula (1) made legible.
func (m *Model) Explain(g *Graph, a Assignment) (string, error) {
	total, err := m.Cost(g, a)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, op := range g.Ops {
		fmt.Fprintf(&b, "@%s %-55s comp=%.1f\n", a[op.ID], op.String(), m.OpCost(g, op, a[op.ID]))
	}
	for _, e := range g.Edges {
		if c := m.EdgeCost(e, a); c > 0 {
			fmt.Fprintf(&b, "ship %-54s comm=%.1f\n", e.Frag.Name, c)
		}
	}
	fmt.Fprintf(&b, "total=%.1f (w_comp=%g, w_comm=%g)\n", total, m.WComp, m.WComm)
	return b.String(), nil
}

// UnitCosts are per-byte work factors for the four primitive operations.
// Combines (joins) are the most expensive operation when building XML from
// stored data (§1.1), which the defaults reflect.
type UnitCosts struct {
	Scan, Combine, Split, Write float64
}

// DefaultUnitCosts mirror the relative operation costs observed in the
// paper's real measurements: joins dominate, scans and splits are cheap.
func DefaultUnitCosts() UnitCosts {
	return UnitCosts{Scan: 1, Combine: 4, Split: 1.5, Write: 1}
}

// StatsProvider is a CostProvider driven by per-element cardinality and
// size statistics plus per-system speed factors. It backs both the
// simulator (§5.4) and the endpoint cost interfaces.
type StatsProvider struct {
	// Card is the number of instances of each element; Bytes the average
	// serialized size of one instance (tags plus text).
	Card, Bytes map[string]float64
	// Unit holds per-operation work factors.
	Unit UnitCosts
	// SourceSpeed and TargetSpeed divide work to give cost; a target ten
	// times faster than the source (Figure 11) has TargetSpeed = 10,
	// SourceSpeed = 1.
	SourceSpeed, TargetSpeed float64
	// TargetCombines reports whether the target can run Combine at all; a
	// "dumb client" (§4.1) cannot, making the cost infinite there.
	TargetCombines bool
	// ShipCodec names the shipment encoding the exchange will travel under
	// ("", "xml", "feed", "bin", "bin+flate"). Communication cost is
	// charged on wire bytes, not tree bytes, so ShipBytes scales FragBytes
	// by the codec's compression ratio.
	ShipCodec string
	// ShipRatio holds measured wire/tree size ratios per fragment name,
	// calibrated by the endpoint encoding a sample of each layout fragment
	// under ShipCodec during stats collection.
	ShipRatio map[string]float64
	// ShipRatioDefault is the ratio for fragments without a measurement —
	// the derived fragments the optimizer invents (combine outputs, split
	// parts), which calibration never saw. Zero falls back to the codec's
	// nominal ratio.
	ShipRatioDefault float64
}

// FragBytes estimates the serialized size of one full instance of f.
func (p *StatsProvider) FragBytes(f *Fragment) float64 {
	total := 0.0
	for e := range f.Elems {
		total += p.Card[e] * p.Bytes[e]
	}
	return total
}

// ShipBytes implements CostProvider: the estimated wire size of one
// instance of f under the exchange's shipment codec. Unlike FragBytes —
// which stays the tree-size term computation cost is charged on — this is
// the size() of comm_cost, so it reflects what actually crosses the link:
// the measured per-fragment compression ratio when calibration saw the
// fragment, the calibration-wide default otherwise, and the codec's
// nominal ratio when no calibration ran at all. With no codec configured
// the ratio is 1 and wire size equals tree size, the pre-codec behavior.
func (p *StatsProvider) ShipBytes(f *Fragment) float64 {
	return p.FragBytes(f) * p.shipRatio(f)
}

func (p *StatsProvider) shipRatio(f *Fragment) float64 {
	if r, ok := p.ShipRatio[f.Name]; ok && r > 0 {
		return r
	}
	if p.ShipRatioDefault > 0 {
		return p.ShipRatioDefault
	}
	return DefaultShipRatio(p.ShipCodec)
}

// DefaultShipRatio is the nominal wire/tree size ratio of a codec, used
// when no measured calibration is available. The numbers are conservative
// midpoints of what the ablation benchmarks measure on the XMark layouts;
// measured ratios always win.
func DefaultShipRatio(codec string) float64 {
	switch codec {
	case "feed":
		return 0.75
	case "bin":
		return 0.55
	case "bin+flate":
		return 0.3
	}
	return 1
}

// CompCost implements CostProvider.
func (p *StatsProvider) CompCost(kind OpKind, inputs []*Fragment, output *Fragment, loc Location) float64 {
	speed := p.SourceSpeed
	if loc == LocTarget {
		speed = p.TargetSpeed
		if kind == OpCombine && !p.TargetCombines {
			return math.Inf(1)
		}
	}
	if speed <= 0 {
		return math.Inf(1)
	}
	var work float64
	switch kind {
	case OpScan:
		work = p.Unit.Scan * p.FragBytes(output)
	case OpCombine:
		for _, in := range inputs {
			work += p.FragBytes(in)
		}
		work *= p.Unit.Combine
	case OpSplit:
		work = p.Unit.Split * p.FragBytes(output) // output == split input fragment
	case OpWrite:
		work = p.Unit.Write * p.FragBytes(output)
	}
	return work / speed
}

// UniformStats builds flat statistics: every element has the given
// cardinality scaled by 1 for non-repeated and fanout for repeated
// elements would require schema knowledge, so this simply assigns card and
// bytes uniformly. The simulator refines this per schema.
func UniformStats(elems []string, card, bytes float64) (map[string]float64, map[string]float64) {
	c := make(map[string]float64, len(elems))
	b := make(map[string]float64, len(elems))
	for _, e := range elems {
		c[e] = card
		b[e] = bytes
	}
	return c, b
}
