package core

import (
	"math/rand"
	"testing"

	"xdx/internal/schema"
)

// Program equivalence: every combine ordering the generator enumerates for
// a mapping must deliver identical target instances — orderings may differ
// in cost but never in semantics (§4: "There is often more than one
// program that can be used to express a data transfer for a given
// mapping").
func TestEnumeratedProgramsAreEquivalent(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 3)
		src := Random(sch, rng, rng.Intn(5)+2)
		tgt := Random(sch, rng, rng.Intn(5)+2)
		m, err := NewMapping(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		progs, err := GeneratePrograms(m, GenOptions{MaxPrograms: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		doc := randomDoc(sch, rng, 3)
		var ref *ExecResult
		for i, g := range progs {
			srcs, err := FromDocument(src, doc)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Execute(g, sch, srcs)
			if err != nil {
				t.Fatalf("seed %d program %d: %v", seed, i, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !EqualWritten(ref, res) {
				t.Errorf("seed %d: program %d wrote different data than program 0:\n%s", seed, i, g)
			}
		}
	}
}

// Placement equivalence: the same program executed under different monotone
// placements (via slices plus shipment) must deliver what the single-
// process executor delivers.
func TestSlicedExecutionMatchesLocal(t *testing.T) {
	sch := customerSchema()
	src := sFragmentation(t, sch)
	tgt := tFragmentation(t, sch)
	m, _ := NewMapping(src, tgt)
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	model := modelFor(sch, 1, 4) // fast target pulls some ops over
	best, worst, err := MinMaxPlacement(g, model)
	if err != nil {
		t.Fatal(err)
	}
	local, err := Execute(g, sch, mustSources(t, src))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Assignment{best.Assign, worst.Assign} {
		srcs := mustSources(t, src)
		scan := func(f *Fragment) (*Instance, error) {
			for _, in := range srcs {
				if in.Frag.SameElems(f) {
					return &Instance{Frag: f, Records: in.Records}, nil
				}
			}
			t.Fatalf("no source %q", f.Name)
			return nil, nil
		}
		outbound, _, err := ExecuteSlice(g, sch, a, LocSource, SliceIO{Scan: scan})
		if err != nil {
			t.Fatal(err)
		}
		written := map[string]*Instance{}
		_, _, err = ExecuteSlice(g, sch, a, LocTarget, SliceIO{
			Inbound: outbound,
			Write: func(in *Instance) error {
				written[in.Frag.Name] = in
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res := &ExecResult{Written: written}
		if !EqualWritten(local, res) {
			t.Errorf("sliced execution differs from local under placement %v", a)
		}
	}
}

func mustSources(t *testing.T, fr *Fragmentation) map[string]*Instance {
	t.Helper()
	srcs, err := FromDocument(fr, customerDoc())
	if err != nil {
		t.Fatal(err)
	}
	return srcs
}

// Cost sanity: for every enumerated program, the optimal placement's cost
// is a lower bound on any other placement the search visits.
func TestOptimalIsLowerBound(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	progs, err := GeneratePrograms(m, GenOptions{MaxPrograms: 4})
	if err != nil {
		t.Fatal(err)
	}
	model := modelFor(sch, 2, 3)
	for i, g := range progs {
		best, worst, err := MinMaxPlacement(g, model)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := GreedyPlacement(g, model)
		if err != nil {
			t.Fatal(err)
		}
		if gr.Cost < best.Cost-1e-9 || gr.Cost > worst.Cost+1e-9 {
			t.Errorf("program %d: greedy %v outside [best %v, worst %v]", i, gr.Cost, best.Cost, worst.Cost)
		}
	}
}
