package core

import (
	"fmt"
	"strings"
	"time"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// OpTrace records the execution of one operation, for the measurement
// harness.
type OpTrace struct {
	Op       *Op
	Duration time.Duration
	// OutRows is the number of records produced (summed over parts for a
	// Split).
	OutRows int
}

// ExecResult is the outcome of running a data-transfer program.
type ExecResult struct {
	// Written maps target fragment name to the instance delivered to its
	// Write operation.
	Written map[string]*Instance
	// Traces holds one entry per executed operation, in execution order.
	Traces []OpTrace
}

// Execute runs a data-transfer program over in-memory instances: Scans pull
// from sources (keyed by fragment name), Combines and Splits transform, and
// Writes collect their inputs. Placement is ignored — this is the reference
// single-process executor; the endpoint runtime executes per-system slices
// of a program and ships cross-edge fragments.
func Execute(g *Graph, sch *schema.Schema, sources map[string]*Instance) (*ExecResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	res := &ExecResult{Written: make(map[string]*Instance)}
	// outputs[opID][fragName] holds produced instances.
	outputs := make([]map[string]*Instance, len(g.Ops))
	counts := consumerCounts(g)
	input := func(op *Op, e *Edge) (*Instance, error) {
		m := outputs[e.From.ID]
		if m == nil {
			return nil, fmt.Errorf("core: exec: op %s consumed before %s produced", op, e.From)
		}
		in := m[e.Frag.Name]
		if in == nil {
			return nil, fmt.Errorf("core: exec: producer %s has no output %q", e.From, e.Frag.Name)
		}
		// Combine mutates its first input; hand out a copy-on-write view
		// when the producer output has more than one consumer.
		if counts[e.From.ID][e.Frag] > 1 {
			in = in.Share()
		}
		return in, nil
	}
	for _, op := range g.Topo() {
		start := time.Now()
		out := make(map[string]*Instance, 1)
		rows := 0
		switch op.Kind {
		case OpScan:
			src := sources[op.Out.Name]
			if src == nil {
				return nil, fmt.Errorf("core: exec: no source instance for %q", op.Out.Name)
			}
			inst := &Instance{Frag: op.Out, Records: src.Records}
			out[op.Out.Name] = inst
			rows = inst.Rows()
		case OpCombine:
			ins := g.In(op)
			a, err := input(op, ins[0])
			if err != nil {
				return nil, err
			}
			b, err := input(op, ins[1])
			if err != nil {
				return nil, err
			}
			// Edge order is parent-first by construction; decide the
			// direction structurally before mutating anything.
			if !combinableFrags(sch, a.Frag, b.Frag) {
				a, b = b, a
			}
			merged, err := Combine(sch, a, b)
			if err != nil {
				return nil, fmt.Errorf("core: exec: %s: %w", op, err)
			}
			// The combine's planned output fragment is authoritative.
			merged.Frag = op.Out
			out[op.Out.Name] = merged
			rows = merged.Rows()
		case OpSplit:
			in, err := input(op, g.In(op)[0])
			if err != nil {
				return nil, err
			}
			parts, err := Split(sch, in, op.Parts)
			if err != nil {
				return nil, fmt.Errorf("core: exec: %s: %w", op, err)
			}
			for _, p := range parts {
				out[p.Frag.Name] = p
				rows += p.Rows()
			}
		case OpWrite:
			in, err := input(op, g.In(op)[0])
			if err != nil {
				return nil, err
			}
			inst := &Instance{Frag: op.Out, Records: in.Records}
			res.Written[op.Out.Name] = inst
			rows = inst.Rows()
		}
		outputs[op.ID] = out
		res.Traces = append(res.Traces, OpTrace{Op: op, Duration: time.Since(start), OutRows: rows})
	}
	return res, nil
}

// SummarizeTraces renders per-operation execution times as an aligned
// text table, for operators inspecting where an exchange spent its time.
func SummarizeTraces(traces []OpTrace) string {
	var b strings.Builder
	var total time.Duration
	for _, tr := range traces {
		total += tr.Duration
	}
	fmt.Fprintf(&b, "%-9s %-10s %8s %9s  %s\n", "location", "kind", "rows", "time", "fragment")
	for _, tr := range traces {
		share := 0.0
		if total > 0 {
			share = float64(tr.Duration) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-9s %-10s %8d %8.2fms  %s (%.0f%%)\n",
			"", tr.Op.Kind, tr.OutRows, float64(tr.Duration)/float64(time.Millisecond), tr.Op.Out.Name, share)
	}
	fmt.Fprintf(&b, "total %.2fms over %d operations\n", float64(total)/float64(time.Millisecond), len(traces))
	return b.String()
}

// SliceIO connects a per-system program slice to its environment.
type SliceIO struct {
	// Scan supplies the instance of a fragment for Scan operations (source
	// side only; Scans are pinned to the source).
	Scan func(f *Fragment) (*Instance, error)
	// Write consumes the instance delivered to a Write operation (target
	// side only).
	Write func(in *Instance) error
	// Inbound holds instances received from the other system, keyed by
	// EdgeKey of their cross-edge.
	Inbound map[string]*Instance
	// Emit, when set, receives outbound cross-edge records as their
	// producers finish batches, instead of accumulating them in the
	// executor's returned map — the hook the streaming wire path plugs a
	// shipment writer into. Records flow in several calls per key (one per
	// batch); a key that produced nothing is flushed once with nil records
	// at the end of the run, so the receiver still learns of the empty
	// instance. Calls are serialized by the executor. Only the pipelined
	// slice executor honors Emit; ExecuteSlice ignores it.
	Emit func(key string, frag *Fragment, recs []*xmltree.Node) error
}

// EdgeKey identifies a cross-edge shipment: the producing op and the
// fragment flowing.
func EdgeKey(e *Edge) string { return fmt.Sprintf("%d:%s", e.From.ID, e.Frag.Name) }

// ExecuteSlice runs the operations of g assigned to loc under a, in
// topological order. It returns the instances that must be shipped to the
// other system (outputs of cross-edges, keyed by EdgeKey) and per-op
// traces. The same program can thus be executed half at the source and
// half at the target, with the outbound map of the source becoming the
// Inbound map of the target.
func ExecuteSlice(g *Graph, sch *schema.Schema, a Assignment, loc Location, io SliceIO) (map[string]*Instance, []OpTrace, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if len(a) != len(g.Ops) || !a.Complete() {
		return nil, nil, fmt.Errorf("core: slice: incomplete assignment")
	}
	if !a.Monotone(g) {
		return nil, nil, fmt.Errorf("core: slice: assignment ships data target to source")
	}
	outputs := make([]map[string]*Instance, len(g.Ops))
	outbound := make(map[string]*Instance)
	var traces []OpTrace
	counts := consumerCounts(g)
	// Several local edges may share one inbound shipment (same producer and
	// fragment); hand out copy-on-write views so the consumers stay isolated.
	inboundCount := make(map[string]int)
	for _, op := range g.Ops {
		for _, e := range g.Out(op) {
			if a[e.From.ID] != loc && a[e.To.ID] == loc {
				inboundCount[EdgeKey(e)]++
			}
		}
	}
	input := func(op *Op, e *Edge) (*Instance, error) {
		if a[e.From.ID] != loc {
			in := io.Inbound[EdgeKey(e)]
			if in == nil {
				return nil, fmt.Errorf("core: slice: op %s misses inbound %s", op, EdgeKey(e))
			}
			if inboundCount[EdgeKey(e)] > 1 {
				in = in.Share()
			}
			return in, nil
		}
		m := outputs[e.From.ID]
		if m == nil || m[e.Frag.Name] == nil {
			return nil, fmt.Errorf("core: slice: op %s consumed before %s produced", op, e.From)
		}
		in := m[e.Frag.Name]
		// The count includes cross edges, so an output that is also shipped
		// is never mutated by a local consumer before serialization.
		if counts[e.From.ID][e.Frag] > 1 {
			in = in.Share()
		}
		return in, nil
	}
	for _, op := range g.Topo() {
		if a[op.ID] != loc {
			continue
		}
		start := time.Now()
		out := make(map[string]*Instance, 1)
		rows := 0
		switch op.Kind {
		case OpScan:
			if io.Scan == nil {
				return nil, nil, fmt.Errorf("core: slice: Scan %s with no scan function", op)
			}
			inst, err := io.Scan(op.Out)
			if err != nil {
				return nil, nil, err
			}
			inst = &Instance{Frag: op.Out, Records: inst.Records}
			out[op.Out.Name] = inst
			rows = inst.Rows()
		case OpCombine:
			ins := g.In(op)
			x, err := input(op, ins[0])
			if err != nil {
				return nil, nil, err
			}
			y, err := input(op, ins[1])
			if err != nil {
				return nil, nil, err
			}
			if !combinableFrags(sch, x.Frag, y.Frag) {
				x, y = y, x
			}
			merged, err := Combine(sch, x, y)
			if err != nil {
				return nil, nil, fmt.Errorf("core: slice: %s: %w", op, err)
			}
			merged.Frag = op.Out
			out[op.Out.Name] = merged
			rows = merged.Rows()
		case OpSplit:
			in, err := input(op, g.In(op)[0])
			if err != nil {
				return nil, nil, err
			}
			parts, err := Split(sch, in, op.Parts)
			if err != nil {
				return nil, nil, fmt.Errorf("core: slice: %s: %w", op, err)
			}
			for _, p := range parts {
				out[p.Frag.Name] = p
				rows += p.Rows()
			}
		case OpWrite:
			in, err := input(op, g.In(op)[0])
			if err != nil {
				return nil, nil, err
			}
			if io.Write == nil {
				return nil, nil, fmt.Errorf("core: slice: Write %s with no write function", op)
			}
			if err := io.Write(&Instance{Frag: op.Out, Records: in.Records}); err != nil {
				return nil, nil, err
			}
			rows = len(in.Records)
		}
		outputs[op.ID] = out
		traces = append(traces, OpTrace{Op: op, Duration: time.Since(start), OutRows: rows})
		// Publish cross-edge outputs.
		for _, e := range g.Out(op) {
			if a[e.To.ID] != loc {
				inst := out[e.Frag.Name]
				if inst != nil {
					outbound[EdgeKey(e)] = inst
				}
			}
		}
	}
	return outbound, traces, nil
}

// combinableFrags reports whether Combine(a, b) is structurally legal:
// every possible parent of b's root lies inside a.
func combinableFrags(sch *schema.Schema, a, b *Fragment) bool {
	parents := sch.Parents(b.Root)
	if len(parents) == 0 {
		return false
	}
	for _, p := range parents {
		if !a.Elems[p] {
			return false
		}
	}
	return true
}

// consumerCounts precomputes, for every op, how many edges consume each of
// its output fragments. Executors consult it per input instead of rescanning
// the producer's out-edges per consumption. Edge fragments are the
// producer's own Fragment pointers (Graph.Validate enforces identity), so
// the map is keyed by pointer.
func consumerCounts(g *Graph) []map[*Fragment]int {
	counts := make([]map[*Fragment]int, len(g.Ops))
	for _, op := range g.Ops {
		for _, e := range g.Out(op) {
			if counts[op.ID] == nil {
				counts[op.ID] = make(map[*Fragment]int)
			}
			counts[op.ID][e.Frag]++
		}
	}
	return counts
}
