package core

import (
	"math/rand"
	"strings"
	"testing"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

func TestFilterSourcesByCustomer(t *testing.T) {
	// Two customers; the service argument keeps only "Ann" (§3.2).
	sch := customerSchema()
	fr := sFragmentation(t, sch)
	ann := customerDoc()
	bobDoc := customerDoc()
	bob := bobDoc.Find("CustName")
	bob.Text = "Bob"
	// Build per-fragment sources holding both customers.
	srcA, _ := FromDocument(fr, ann)
	srcB, _ := FromDocument(fr, bobDoc)
	// Re-id Bob's records so IDs do not collide.
	reID(bobDoc, "b")
	srcB, _ = FromDocument(fr, bobDoc)
	merged := map[string]*Instance{}
	for name, in := range srcA {
		merged[name] = &Instance{Frag: in.Frag, Records: append(append([]*xmltree.Node{}, in.Records...), srcB[name].Records...)}
	}
	kept, err := FilterSources(fr, merged, func(rec *xmltree.Node) bool {
		n := rec.Find("CustName")
		return n != nil && n.Text == "Ann"
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range kept {
		if in.Rows() != srcA[name].Rows() {
			t.Errorf("fragment %q kept %d rows, want %d", name, in.Rows(), srcA[name].Rows())
		}
	}
	// The filtered sources still execute and reassemble to Ann's document.
	m, _ := NewMapping(fr, tFragmentation(t, sch))
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(g, sch, kept)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Document(m.Target, res.Written)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Find("CustName").Text; got != "Ann" {
		t.Errorf("filtered exchange delivered %q", got)
	}
}

func reID(doc *xmltree.Node, prefix string) {
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		if n.ID != "" {
			n.ID = prefix + n.ID
		}
		if n.Parent != "" {
			n.Parent = prefix + n.Parent
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(doc)
}

func TestFilterSourcesNilPredicateKeepsAll(t *testing.T) {
	sch := customerSchema()
	fr := sFragmentation(t, sch)
	src, _ := FromDocument(fr, customerDoc())
	kept, err := FilterSources(fr, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range kept {
		if in.Rows() != src[name].Rows() {
			t.Errorf("fragment %q lost rows with nil predicate", name)
		}
	}
}

func TestFilterSourcesMissingFragment(t *testing.T) {
	sch := customerSchema()
	fr := sFragmentation(t, sch)
	if _, err := FilterSources(fr, map[string]*Instance{}, nil); err == nil {
		t.Error("missing sources must fail")
	}
}

func TestSelectivityAndScale(t *testing.T) {
	if Selectivity(1, 4) != 0.25 || Selectivity(5, 4) != 1 || Selectivity(1, 0) != 1 {
		t.Error("Selectivity wrong")
	}
	p := testProvider(customerSchema(), 1, 1)
	scaled := p.Scale(0.5)
	if scaled.Card["Customer"] != p.Card["Customer"]/2 {
		t.Errorf("Scale wrong: %v vs %v", scaled.Card["Customer"], p.Card["Customer"])
	}
	if p.Card["Customer"] == scaled.Card["Customer"] {
		t.Error("Scale mutated the original")
	}
}

func TestRecommendTargetPrefersAlignedLayout(t *testing.T) {
	// With the source fixed, a recommended target should cost no more than
	// the canonical layouts, and an identical layout should be near the
	// floor (pure Scan->Write, no combines or splits).
	sch := customerSchema()
	src := sFragmentation(t, sch)
	model := modelFor(sch, 1, 1)
	rec, err := RecommendTarget(src, model, RecommendOptions{Candidates: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Evaluated < 13 {
		t.Errorf("evaluated only %d candidates", rec.Evaluated)
	}
	identCost, err := exchangeCost(src, src, model)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cost > identCost+1e-9 {
		t.Errorf("recommended cost %.1f worse than the identical layout %.1f", rec.Cost, identCost)
	}
	// And strictly better than the worst canonical baseline.
	trivCost, _ := exchangeCost(src, Trivial(sch), model)
	if rec.Cost > trivCost {
		t.Errorf("recommendation %.1f no better than trivial %.1f", rec.Cost, trivCost)
	}
}

func TestRecommendSourceRuns(t *testing.T) {
	sch := schema.Balanced(2, 3)
	rng := rand.New(rand.NewSource(4))
	tgt := Random(sch, rng, 5)
	model := modelFor(sch, 1, 1)
	rec, err := RecommendSource(tgt, model, RecommendOptions{Candidates: 5, Seed: 2, MaxClimbSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fragmentation == nil || rec.Cost <= 0 {
		t.Fatalf("bad recommendation: %+v", rec)
	}
	// The result must be a valid fragmentation.
	if _, err := NewFragmentation(sch, "check", rec.Fragmentation.Fragments); err != nil {
		t.Errorf("recommended fragmentation invalid: %v", err)
	}
}

func TestFromCutsMatchesRandom(t *testing.T) {
	sch := schema.Auction()
	rng := rand.New(rand.NewSource(9))
	fr := Random(sch, rng, 6)
	cuts := cutsOf(sch, fr)
	back, err := fromCuts(sch, cuts)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != fr.Len() {
		t.Fatalf("fromCuts(cutsOf(fr)) has %d fragments, want %d", back.Len(), fr.Len())
	}
	for _, f := range fr.Fragments {
		g := back.FragmentOf(f.Root)
		if g == nil || !g.SameElems(f) {
			t.Errorf("fragment rooted at %q changed", f.Root)
		}
	}
}

func TestExecuteParallelMatchesSequential(t *testing.T) {
	sch := customerSchema()
	src := sFragmentation(t, sch)
	tgt := tFragmentation(t, sch)
	m, _ := NewMapping(src, tgt)
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	seqSrc, _ := FromDocument(src, customerDoc())
	seq, err := Execute(g, sch, seqSrc)
	if err != nil {
		t.Fatal(err)
	}
	parSrc, _ := FromDocument(src, customerDoc())
	par, err := ExecuteParallel(g, sch, parSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWritten(seq, par) {
		t.Error("parallel execution produced different results")
	}
	if len(par.Traces) != len(g.Ops) {
		t.Errorf("parallel traced %d ops, want %d", len(par.Traces), len(g.Ops))
	}
}

func TestExecuteParallelRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 3)
		src := Random(sch, rng, rng.Intn(6)+1)
		tgt := Random(sch, rng, rng.Intn(6)+1)
		m, err := NewMapping(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		g, err := CanonicalProgram(m)
		if err != nil {
			t.Fatal(err)
		}
		doc := randomDoc(sch, rng, 3)
		s1, _ := FromDocument(src, doc)
		seq, err := Execute(g, sch, s1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s2, _ := FromDocument(src, doc)
		par, err := ExecuteParallel(g, sch, s2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !EqualWritten(seq, par) {
			t.Errorf("seed %d: results differ", seed)
		}
	}
}

func TestSummarizeTraces(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, _ := CanonicalProgram(m)
	srcs, _ := FromDocument(m.Source, customerDoc())
	res, err := Execute(g, sch, srcs)
	if err != nil {
		t.Fatal(err)
	}
	out := SummarizeTraces(res.Traces)
	for _, want := range []string{"Scan", "Combine", "Split", "Write", "total", "operations"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != len(g.Ops)+2 {
		t.Errorf("summary has %d lines, want %d", got, len(g.Ops)+2)
	}
}

func TestExecuteParallelErrors(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, _ := CanonicalProgram(m)
	_, err := ExecuteParallel(g, sch, map[string]*Instance{})
	if err == nil {
		t.Fatal("missing sources must fail")
	}
	if !strings.Contains(err.Error(), "no source instance") {
		t.Errorf("unexpected error: %v", err)
	}
}
