package core

import (
	"fmt"

	"xdx/internal/xmltree"
)

// FilterSources restricts per-fragment source instances to the records
// reachable from the root-fragment records accepted by keep. This models
// the paper's service arguments (§3.2): "If the Web service takes arguments
// as input, we assume the source system will filter the data accordingly
// and provide us with the relevant pieces" — e.g. CustomerInfoService
// subsetting customers by state. Descendant fragments are trimmed
// consistently so no combine can encounter an orphan.
//
// The sources map is keyed by fragment name as produced by FromDocument or
// a store scan; the returned map has the same keys with filtered (shared,
// not copied) records.
func FilterSources(fr *Fragmentation, sources map[string]*Instance, keep func(rec *xmltree.Node) bool) (map[string]*Instance, error) {
	if len(fr.Fragments) == 0 {
		return nil, fmt.Errorf("core: empty fragmentation")
	}
	out := make(map[string]*Instance, len(sources))
	keepIDs := make(map[string]bool)
	admit := func(rec *xmltree.Node) {
		var walk func(n *xmltree.Node)
		walk = func(n *xmltree.Node) {
			if n.ID != "" {
				keepIDs[n.ID] = true
			}
			for _, k := range n.Kids {
				walk(k)
			}
		}
		walk(rec)
	}
	// The root fragment is filtered by the predicate; every other fragment
	// keeps exactly the records whose parent instance survived. Fragments
	// are visited in pre-order of their roots, which guarantees parents are
	// decided first.
	for i, f := range fr.Fragments {
		in := sources[f.Name]
		if in == nil {
			return nil, fmt.Errorf("core: filter: missing source instance for %q", f.Name)
		}
		kept := &Instance{Frag: in.Frag}
		for _, rec := range in.Records {
			ok := false
			if i == 0 {
				ok = keep == nil || keep(rec)
			} else {
				ok = keepIDs[rec.Parent]
			}
			if ok {
				kept.Records = append(kept.Records, rec)
				admit(rec)
			}
		}
		out[f.Name] = kept
	}
	return out, nil
}

// Selectivity estimates the fraction of records a filtered exchange ships,
// given kept and total root-fragment record counts; it scales the cost
// model's cardinalities, reflecting §4.1's note that the selectivity of
// the combines affects the amount of data being shipped.
func Selectivity(kept, total int) float64 {
	if total <= 0 {
		return 1
	}
	s := float64(kept) / float64(total)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Scale returns a copy of the provider with all cardinalities multiplied
// by the selectivity factor.
func (p *StatsProvider) Scale(selectivity float64) *StatsProvider {
	cp := *p
	cp.Card = make(map[string]float64, len(p.Card))
	for e, c := range p.Card {
		cp.Card[e] = c * selectivity
	}
	return &cp
}
