package core

import (
	"fmt"
	"math/rand"
	"testing"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// customerSchema returns the CustomerInfo schema of §1.1.
func customerSchema() *schema.Schema { return schema.CustomerInfo() }

// tFragmentation is the paper's T-fragmentation (§3.1): Customer,
// Order_Service, Line_Switch, Feature.
func tFragmentation(t *testing.T, sch *schema.Schema) *Fragmentation {
	t.Helper()
	fr, err := FromPartition(sch, "T-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
	if err != nil {
		t.Fatalf("T-fragmentation: %v", err)
	}
	return fr
}

// sFragmentation mirrors the relational schema S of §1.1: CUSTOMER, ORDER,
// SERVICE, LINE_FEATURE, SWITCH.
func sFragmentation(t *testing.T, sch *schema.Schema) *Fragmentation {
	t.Helper()
	fr, err := FromPartition(sch, "S-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName"},
		{"Line", "TelNo", "Feature", "FeatureID"},
		{"Switch", "SwitchID"},
	})
	if err != nil {
		t.Fatalf("S-fragmentation: %v", err)
	}
	return fr
}

// customerDoc builds a small CustomerInfo document with IDs assigned.
func customerDoc() *xmltree.Node {
	leaf := func(name, text string) *xmltree.Node { return &xmltree.Node{Name: name, Text: text} }
	line := func(tel, sw string, feats ...string) *xmltree.Node {
		l := &xmltree.Node{Name: "Line"}
		l.AddKid(leaf("TelNo", tel))
		s := &xmltree.Node{Name: "Switch"}
		s.AddKid(leaf("SwitchID", sw))
		l.AddKid(s)
		for _, f := range feats {
			fn := &xmltree.Node{Name: "Feature"}
			fn.AddKid(leaf("FeatureID", f))
			l.AddKid(fn)
		}
		return l
	}
	order := func(svc string, lines ...*xmltree.Node) *xmltree.Node {
		o := &xmltree.Node{Name: "Order"}
		s := &xmltree.Node{Name: "Service"}
		s.AddKid(leaf("ServiceName", svc))
		for _, l := range lines {
			s.AddKid(l)
		}
		o.AddKid(s)
		return o
	}
	doc := &xmltree.Node{Name: "Customer"}
	doc.AddKid(leaf("CustName", "Ann"))
	doc.AddKid(order("local", line("555-0001", "sw1", "callerID", "voicemail"), line("555-0002", "sw2")))
	doc.AddKid(order("long-distance", line("555-0003", "sw1", "callerID")))
	AssignIDs(doc)
	return doc
}

// randomDoc generates a random document conforming to sch, with up to
// maxRep repetitions of repeated elements, IDs assigned.
func randomDoc(sch *schema.Schema, rng *rand.Rand, maxRep int) *xmltree.Node {
	var build func(n *schema.Node) *xmltree.Node
	build = func(n *schema.Node) *xmltree.Node {
		e := &xmltree.Node{Name: n.Name}
		if n.IsLeaf() {
			e.Text = fmt.Sprintf("v%d", rng.Intn(1000))
		}
		for _, c := range n.Children {
			reps := 1
			if c.Repeated {
				reps = 1 + rng.Intn(maxRep)
			}
			for i := 0; i < reps; i++ {
				e.AddKid(build(c))
			}
		}
		return e
	}
	doc := build(sch.Root())
	AssignIDs(doc)
	return doc
}

// testProvider builds a StatsProvider with uniform stats over sch.
func testProvider(sch *schema.Schema, srcSpeed, tgtSpeed float64) *StatsProvider {
	card, bytes := UniformStats(sch.Names(), 10, 20)
	return &StatsProvider{
		Card: card, Bytes: bytes,
		Unit:        DefaultUnitCosts(),
		SourceSpeed: srcSpeed, TargetSpeed: tgtSpeed,
		TargetCombines: true,
	}
}
