// Package core implements the paper's primary contribution (§3–§4): XML
// Schema fragments and fragmentations, mappings between fragmentations, the
// four primitive operations (Scan, Combine, Split, Write), data-transfer
// program DAGs, the cost model, and the exhaustive (Cost_Based_Optim) and
// greedy optimizers for combine ordering and distributed placement.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"xdx/internal/schema"
)

// Fragment is a connected region of an XML Schema tree (Definition 3.1):
// a root element plus a set of elements each reachable from the root
// through parent/child edges inside the set. Its instances carry ID and
// PARENT attributes on their root elements.
type Fragment struct {
	// Name identifies the fragment, e.g. "Order_Service".
	Name string
	// Root is the fragment's root element name.
	Root string
	// Elems is the set of schema element names the fragment covers,
	// including Root.
	Elems map[string]bool
}

// NewFragment validates that elems forms a connected region of sch rooted
// at the shallowest element and returns the fragment. If name is empty a
// name is derived from the member elements.
func NewFragment(sch *schema.Schema, name string, elems []string) (*Fragment, error) {
	if len(elems) == 0 {
		return nil, fmt.Errorf("core: fragment with no elements")
	}
	set := make(map[string]bool, len(elems))
	for _, e := range elems {
		if sch.ByName(e) == nil {
			return nil, fmt.Errorf("core: fragment references unknown element %q", e)
		}
		set[e] = true
	}
	root, err := fragmentRoot(sch, set)
	if err != nil {
		return nil, err
	}
	f := &Fragment{Name: name, Root: root, Elems: set}
	if f.Name == "" {
		f.Name = DeriveName(sch, set)
	}
	return f, nil
}

// fragmentRoot finds the unique element of set having no parent inside set,
// and verifies every other member has at least one parent inside set
// (connectedness).
func fragmentRoot(sch *schema.Schema, set map[string]bool) (string, error) {
	var root string
	for e := range set {
		hasParentInside := false
		for _, p := range sch.Parents(e) {
			if set[p] {
				hasParentInside = true
				break
			}
		}
		if !hasParentInside {
			if root != "" {
				return "", fmt.Errorf("core: fragment is disconnected: both %q and %q are roots", root, e)
			}
			root = e
		}
	}
	if root == "" {
		return "", fmt.Errorf("core: fragment has no root (cycle through extra parents?)")
	}
	// Connectedness: everything must be reachable from root within the set.
	reached := map[string]bool{root: true}
	queue := []string{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range sch.AllChildren(cur) {
			if set[c] && !reached[c] {
				reached[c] = true
				queue = append(queue, c)
			}
		}
	}
	if len(reached) != len(set) {
		return "", fmt.Errorf("core: fragment rooted at %q is disconnected", root)
	}
	return root, nil
}

// DeriveName builds a deterministic fragment name from an element set: the
// members in schema pre-order joined by underscores, in the style of the
// paper's ORDER_SERVICE and ITEM_LOCATION_... names.
func DeriveName(sch *schema.Schema, set map[string]bool) string {
	var parts []string
	for _, n := range sch.Names() {
		if set[n] {
			parts = append(parts, n)
		}
	}
	return strings.Join(parts, "_")
}

// Contains reports whether the fragment covers element e.
func (f *Fragment) Contains(e string) bool { return f.Elems[e] }

// Size returns the number of elements the fragment covers.
func (f *Fragment) Size() int { return len(f.Elems) }

// SameElems reports whether two fragments cover exactly the same elements.
func (f *Fragment) SameElems(g *Fragment) bool {
	if len(f.Elems) != len(g.Elems) {
		return false
	}
	for e := range f.Elems {
		if !g.Elems[e] {
			return false
		}
	}
	return true
}

// ElemList returns the covered elements sorted lexicographically.
func (f *Fragment) ElemList() []string {
	out := make([]string, 0, len(f.Elems))
	for e := range f.Elems {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

func (f *Fragment) String() string { return f.Name }

// Fragmentation is a set of fragments of one XML Schema (Definition 3.3).
type Fragmentation struct {
	// Name labels the fragmentation (e.g. "MF", "LF", "T-fragmentation").
	Name string
	// Schema is the fragmented XML Schema.
	Schema *schema.Schema
	// Fragments lists the member fragments in schema pre-order of their
	// roots.
	Fragments []*Fragment

	byElem map[string]*Fragment
}

// NewFragmentation validates frags against Definition 3.4 — every schema
// element defined exactly once, and (for multi-fragment sets) every
// fragment adjacent to a parent or child fragment — and returns the indexed
// fragmentation.
func NewFragmentation(sch *schema.Schema, name string, frags []*Fragment) (*Fragmentation, error) {
	fr := &Fragmentation{Name: name, Schema: sch, byElem: make(map[string]*Fragment)}
	for _, f := range frags {
		for e := range f.Elems {
			if prev := fr.byElem[e]; prev != nil {
				return nil, fmt.Errorf("core: fragmentation %q: element %q defined in both %q and %q", name, e, prev.Name, f.Name)
			}
			fr.byElem[e] = f
		}
	}
	for _, e := range sch.Names() {
		if fr.byElem[e] == nil {
			return nil, fmt.Errorf("core: fragmentation %q: element %q not covered", name, e)
		}
	}
	// Adjacency (Definition 3.4 (ii)).
	if len(frags) > 1 {
		for _, f := range frags {
			if !fr.hasNeighbor(f, frags) {
				return nil, fmt.Errorf("core: fragmentation %q: fragment %q has no parent or child fragment", name, f.Name)
			}
		}
	}
	// Multi-parent elements (e.g. XMark's item under six regions) must be
	// fragment roots unless every one of their parents lives in the same
	// fragment; otherwise splitting a document would produce fragment
	// instances with mixed record roots.
	for _, e := range sch.Names() {
		parents := sch.Parents(e)
		if len(parents) < 2 {
			continue
		}
		f := fr.byElem[e]
		if f.Root == e {
			continue
		}
		for _, p := range parents {
			if !f.Elems[p] {
				return nil, fmt.Errorf("core: fragmentation %q: multi-parent element %q is interior to %q but parent %q is outside", name, e, f.Name, p)
			}
		}
	}
	// Order fragments by pre-order of root for determinism.
	order := make(map[string]int)
	for i, n := range sch.Names() {
		order[n] = i
	}
	sorted := make([]*Fragment, len(frags))
	copy(sorted, frags)
	sort.SliceStable(sorted, func(i, j int) bool { return order[sorted[i].Root] < order[sorted[j].Root] })
	fr.Fragments = sorted
	return fr, nil
}

func (fr *Fragmentation) hasNeighbor(f *Fragment, frags []*Fragment) bool {
	for _, g := range frags {
		if g == f {
			continue
		}
		if fr.isParentOf(f, g) || fr.isParentOf(g, f) {
			return true
		}
	}
	return false
}

// isParentOf reports whether a is a parent fragment of b: some schema
// parent of b's root lies inside a.
func (fr *Fragmentation) isParentOf(a, b *Fragment) bool {
	for _, p := range fr.Schema.Parents(b.Root) {
		if a.Elems[p] {
			return true
		}
	}
	return false
}

// FragmentOf returns the fragment defining element e, or nil.
func (fr *Fragmentation) FragmentOf(e string) *Fragment { return fr.byElem[e] }

// ByName returns the named fragment, or nil.
func (fr *Fragmentation) ByName(name string) *Fragment {
	for _, f := range fr.Fragments {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Len returns the number of fragments.
func (fr *Fragmentation) Len() int { return len(fr.Fragments) }

func (fr *Fragmentation) String() string {
	var parts []string
	for _, f := range fr.Fragments {
		parts = append(parts, f.Name)
	}
	return fr.Name + "{" + strings.Join(parts, ", ") + "}"
}

// FromPartition builds a fragmentation from a partition of element names.
func FromPartition(sch *schema.Schema, name string, parts [][]string) (*Fragmentation, error) {
	var frags []*Fragment
	for _, p := range parts {
		f, err := NewFragment(sch, "", p)
		if err != nil {
			return nil, err
		}
		frags = append(frags, f)
	}
	return NewFragmentation(sch, name, frags)
}

// Trivial returns the default single-fragment fragmentation covering the
// whole schema — what a system that registers no fragmentation implicitly
// uses (publish&map, §1.1).
func Trivial(sch *schema.Schema) *Fragmentation {
	f, err := NewFragment(sch, "", sch.Names())
	if err != nil {
		panic("core: trivial fragmentation: " + err.Error())
	}
	fr, err := NewFragmentation(sch, "XMLSchema", []*Fragment{f})
	if err != nil {
		panic("core: trivial fragmentation: " + err.Error())
	}
	return fr
}

// MostFragmented returns the MF fragmentation of §5: one fragment per
// schema element.
func MostFragmented(sch *schema.Schema) *Fragmentation {
	var frags []*Fragment
	for _, n := range sch.Names() {
		f, err := NewFragment(sch, n, []string{n})
		if err != nil {
			panic("core: MF: " + err.Error())
		}
		frags = append(frags, f)
	}
	fr, err := NewFragmentation(sch, "MF", frags)
	if err != nil {
		panic("core: MF: " + err.Error())
	}
	return fr
}

// LeastFragmented returns the LF fragmentation of §5: fragments start at
// the schema root and at every repeated or multi-parent element; each
// fragment inlines all one-to-one descendants. For the paper's auction DTD
// this yields exactly three fragments.
func LeastFragmented(sch *schema.Schema) *Fragmentation {
	isStart := func(name string) bool {
		n := sch.ByName(name)
		if n.Parent() == nil {
			return true
		}
		if n.Repeated {
			return true
		}
		return len(sch.Parents(name)) > 1
	}
	groups := make(map[string][]string) // start elem -> members
	var startOf func(name string) string
	memo := make(map[string]string)
	startOf = func(name string) string {
		if s, ok := memo[name]; ok {
			return s
		}
		var s string
		if isStart(name) {
			s = name
		} else {
			s = startOf(sch.ParentOf(name))
		}
		memo[name] = s
		return s
	}
	for _, n := range sch.Names() {
		s := startOf(n)
		groups[s] = append(groups[s], n)
	}
	var frags []*Fragment
	for _, n := range sch.Names() {
		members, ok := groups[n]
		if !ok {
			continue
		}
		f, err := NewFragment(sch, "", members)
		if err != nil {
			panic("core: LF: " + err.Error())
		}
		frags = append(frags, f)
	}
	fr, err := NewFragmentation(sch, "LF", frags)
	if err != nil {
		panic("core: LF: " + err.Error())
	}
	return fr
}

// PaperSFragmentation returns the fragmentation induced by the paper's
// relational schema S (§1.1): CUSTOMER, ORDER, SERVICE, the denormalized
// LINE_FEATURE, and SWITCH. The schema must be (or mirror)
// schema.CustomerInfo.
func PaperSFragmentation(sch *schema.Schema) (*Fragmentation, error) {
	return FromPartition(sch, "S-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName"},
		{"Line", "TelNo", "Feature", "FeatureID"},
		{"Switch", "SwitchID"},
	})
}

// PaperTFragmentation returns the paper's T-fragmentation (§3.1):
// Customer, Order_Service, Line_Switch, Feature — the layout of the LDAP
// provisioning system T.
func PaperTFragmentation(sch *schema.Schema) (*Fragmentation, error) {
	return FromPartition(sch, "T-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
}

// Random returns a valid fragmentation with at least k fragments, produced
// by cutting the schema tree at randomly chosen non-root elements (§5.4's
// "randomly selected fragments"). Multi-parent elements are always cut
// (they must be fragment roots), so schemas containing them may yield more
// than k fragments. For single-parent schemas the count is exactly
// min(k, #elements).
func Random(sch *schema.Schema, rng *rand.Rand, k int) *Fragmentation {
	names := sch.Names()
	if k < 1 {
		k = 1
	}
	if k > len(names) {
		k = len(names)
	}
	cuts := map[string]bool{names[0]: true}
	for _, n := range names {
		if len(sch.Parents(n)) > 1 {
			cuts[n] = true
		}
	}
	nonRoot := names[1:]
	// Add random cut points until k fragments are reachable.
	perm := rng.Perm(len(nonRoot))
	for _, i := range perm {
		if len(cuts) >= k {
			break
		}
		cuts[nonRoot[i]] = true
	}
	groups := make(map[string][]string)
	memo := make(map[string]string)
	var startOf func(name string) string
	startOf = func(name string) string {
		if s, ok := memo[name]; ok {
			return s
		}
		var s string
		if cuts[name] {
			s = name
		} else {
			s = startOf(sch.ParentOf(name))
		}
		memo[name] = s
		return s
	}
	for _, n := range names {
		s := startOf(n)
		groups[s] = append(groups[s], n)
	}
	var parts [][]string
	for _, n := range names {
		if members, ok := groups[n]; ok {
			parts = append(parts, members)
		}
	}
	fr, err := FromPartition(sch, fmt.Sprintf("random-%d", k), parts)
	if err != nil {
		panic("core: Random: " + err.Error())
	}
	return fr
}
