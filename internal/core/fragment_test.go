package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xdx/internal/schema"
)

func TestNewFragmentValid(t *testing.T) {
	sch := customerSchema()
	f, err := NewFragment(sch, "", []string{"Order", "Service", "ServiceName"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Root != "Order" {
		t.Errorf("root = %q, want Order", f.Root)
	}
	if f.Name != "Order_Service_ServiceName" {
		t.Errorf("derived name = %q", f.Name)
	}
	if !f.Contains("Service") || f.Contains("Line") {
		t.Errorf("Contains wrong")
	}
}

func TestNewFragmentRejectsDisconnected(t *testing.T) {
	sch := customerSchema()
	if _, err := NewFragment(sch, "", []string{"Customer", "Order"}); err != nil {
		t.Errorf("Customer+Order is connected, got error %v", err)
	}
	if _, err := NewFragment(sch, "", []string{"CustName", "TelNo"}); err == nil {
		t.Error("CustName+TelNo should be rejected as disconnected")
	}
	if _, err := NewFragment(sch, "", []string{"Customer", "TelNo"}); err == nil {
		t.Error("Customer+TelNo (gap at Order/Service/Line) should be rejected")
	}
	if _, err := NewFragment(sch, "", nil); err == nil {
		t.Error("empty fragment should be rejected")
	}
	if _, err := NewFragment(sch, "", []string{"Nope"}); err == nil {
		t.Error("unknown element should be rejected")
	}
}

func TestFragmentMultiParentRegion(t *testing.T) {
	sch := schema.Auction()
	// item's primary parent is africa; a fragment holding asia+item is
	// connected through the extra-parent edge.
	f, err := NewFragment(sch, "", []string{"asia", "item", "location", "quantity", "iname", "payment", "idescription", "shipping", "mailbox"})
	if err != nil {
		t.Fatalf("asia+item fragment: %v", err)
	}
	if f.Root != "asia" {
		t.Errorf("root = %q, want asia", f.Root)
	}
}

func TestFragmentationValidity(t *testing.T) {
	sch := customerSchema()
	if _, err := FromPartition(sch, "x", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
	}); err == nil {
		t.Error("incomplete fragmentation should be rejected")
	}
	if _, err := FromPartition(sch, "x", [][]string{
		{"Customer", "CustName", "Order", "Service", "ServiceName", "Line", "TelNo", "Switch", "SwitchID", "Feature", "FeatureID"},
		{"Feature", "FeatureID"},
	}); err == nil {
		t.Error("overlapping fragmentation should be rejected")
	}
	fr := tFragmentation(t, sch)
	if fr.Len() != 4 {
		t.Errorf("T-fragmentation has %d fragments, want 4", fr.Len())
	}
	if got := fr.FragmentOf("ServiceName").Root; got != "Order" {
		t.Errorf("FragmentOf(ServiceName).Root = %q, want Order", got)
	}
	if fr.ByName(fr.Fragments[0].Name) != fr.Fragments[0] {
		t.Errorf("ByName broken")
	}
	if fr.ByName("nope") != nil {
		t.Errorf("ByName(nope) should be nil")
	}
}

func TestFragmentationOrdering(t *testing.T) {
	sch := customerSchema()
	fr := tFragmentation(t, sch)
	// Fragments must come out in pre-order of their roots:
	// Customer, Order, Line, Feature.
	roots := []string{}
	for _, f := range fr.Fragments {
		roots = append(roots, f.Root)
	}
	want := []string{"Customer", "Order", "Line", "Feature"}
	for i := range want {
		if roots[i] != want[i] {
			t.Fatalf("fragment roots = %v, want %v", roots, want)
		}
	}
}

func TestTrivialMFLF(t *testing.T) {
	sch := customerSchema()
	tr := Trivial(sch)
	if tr.Len() != 1 || tr.Fragments[0].Size() != sch.Len() {
		t.Errorf("trivial fragmentation wrong: %v", tr)
	}
	mf := MostFragmented(sch)
	if mf.Len() != sch.Len() {
		t.Errorf("MF has %d fragments, want %d", mf.Len(), sch.Len())
	}
	lf := LeastFragmented(sch)
	// Starts: Customer (root), Order (*), Line (*), Feature (*).
	if lf.Len() != 4 {
		t.Errorf("LF has %d fragments, want 4: %v", lf.Len(), lf)
	}
	if f := lf.FragmentOf("SwitchID"); f.Root != "Line" {
		t.Errorf("SwitchID should inline into Line fragment, got root %q", f.Root)
	}
}

func TestLeastFragmentedAuction(t *testing.T) {
	// The paper's LF layout for the auction DTD has exactly 3 fragments
	// (§5): the site spine, the item subtree, the category subtree.
	sch := schema.Auction()
	lf := LeastFragmented(sch)
	if lf.Len() != 3 {
		t.Fatalf("auction LF has %d fragments, want 3: %v", lf.Len(), lf)
	}
	roots := map[string]bool{}
	for _, f := range lf.Fragments {
		roots[f.Root] = true
	}
	for _, want := range []string{"site", "item", "category"} {
		if !roots[want] {
			t.Errorf("auction LF missing fragment rooted at %q", want)
		}
	}
	site := lf.FragmentOf("site")
	for _, e := range []string{"regions", "africa", "samerica", "catgraph", "people", "openauctions", "closedauctions", "categories"} {
		if !site.Contains(e) {
			t.Errorf("site fragment should inline %q", e)
		}
	}
	if site.Contains("item") || site.Contains("category") {
		t.Errorf("site fragment must not contain repeated elements")
	}
}

func TestMostFragmentedAuction(t *testing.T) {
	sch := schema.Auction()
	mf := MostFragmented(sch)
	if mf.Len() != sch.Len() {
		t.Errorf("auction MF = %d fragments, want %d", mf.Len(), sch.Len())
	}
}

func TestRandomFragmentationAlwaysValid(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 3) // 13 nodes
		k := int(kRaw%15) + 1
		fr := Random(sch, rng, k)
		wantK := k
		if wantK > sch.Len() {
			wantK = sch.Len()
		}
		if fr.Len() != wantK {
			return false
		}
		// Re-validate through the constructor.
		_, err := NewFragmentation(sch, fr.Name, fr.Fragments)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRandomFragmentationAuction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sch := schema.Auction()
	for k := 1; k <= sch.Len(); k++ {
		fr := Random(sch, rng, k)
		// item is multi-parent and always cut, so the count may exceed k
		// but never falls below min(k, 2).
		if fr.Len() < k && fr.Len() != sch.Len() {
			t.Fatalf("Random(%d) produced %d fragments", k, fr.Len())
		}
		if _, err := NewFragmentation(sch, fr.Name, fr.Fragments); err != nil {
			t.Fatalf("Random(%d) invalid: %v", k, err)
		}
	}
}

func TestSameElems(t *testing.T) {
	sch := customerSchema()
	a, _ := NewFragment(sch, "a", []string{"Order", "Service"})
	b, _ := NewFragment(sch, "b", []string{"Order", "Service"})
	c, _ := NewFragment(sch, "c", []string{"Order"})
	if !a.SameElems(b) || a.SameElems(c) {
		t.Errorf("SameElems wrong")
	}
	got := a.ElemList()
	if len(got) != 2 || got[0] != "Order" || got[1] != "Service" {
		t.Errorf("ElemList = %v", got)
	}
}
