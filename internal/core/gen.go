package core

import (
	"fmt"
	"sort"
	"strings"
)

// GenOptions bounds program enumeration (§4.2 notes exhaustive generation
// is prohibitive for large schemas; these caps keep it usable while leaving
// the enumeration exhaustive for the paper-scale inputs).
type GenOptions struct {
	// MaxTreesPerTarget caps the number of distinct combine orderings
	// enumerated per target fragment. 0 means DefaultMaxTreesPerTarget.
	MaxTreesPerTarget int
	// MaxPrograms caps the number of full programs produced from the
	// cartesian product across targets. 0 means DefaultMaxPrograms.
	MaxPrograms int
}

// Enumeration defaults.
const (
	DefaultMaxTreesPerTarget = 2000
	DefaultMaxPrograms       = 5000
)

func (o GenOptions) treesCap() int {
	if o.MaxTreesPerTarget <= 0 {
		return DefaultMaxTreesPerTarget
	}
	return o.MaxTreesPerTarget
}

func (o GenOptions) programsCap() int {
	if o.MaxPrograms <= 0 {
		return DefaultMaxPrograms
	}
	return o.MaxPrograms
}

// skeleton is the intermediate graph G1 of §4.2 in symbolic form: scans,
// splits and per-target contribution lists, before combine ordering.
type skeleton struct {
	m *Mapping
	// sources lists the source fragments in order.
	sources []*Fragment
	// pieces[s.Name] are the split outputs of source fragment s (nil when s
	// is consumed whole).
	pieces map[string][]*Fragment
	// contribs[t.Name] are the fragments contributed to target t, each
	// tagged with the source fragment producing it.
	contribs map[string][]contribution
}

type contribution struct {
	source *Fragment // the scanned source fragment
	frag   *Fragment // the contributed piece (== source when unsplit)
}

// buildSkeleton computes G0 plus the Split augmentation step of §4.2.
func buildSkeleton(m *Mapping) (*skeleton, error) {
	sk := &skeleton{
		m:        m,
		pieces:   make(map[string][]*Fragment),
		contribs: make(map[string][]contribution),
	}
	targetOf := func(f *Fragment) *Fragment {
		// All elements of a piece lie in one target fragment by
		// construction; use the root.
		return m.Target.FragmentOf(f.Root)
	}
	for _, s := range m.Source.Fragments {
		ps, err := m.Pieces(s)
		if err != nil {
			return nil, err
		}
		if len(ps) == 1 && ps[0] == s {
			t := targetOf(s)
			sk.contribs[t.Name] = append(sk.contribs[t.Name], contribution{source: s, frag: s})
		} else {
			sk.pieces[s.Name] = ps
			for _, p := range ps {
				t := targetOf(p)
				sk.contribs[t.Name] = append(sk.contribs[t.Name], contribution{source: s, frag: p})
			}
		}
		sk.sources = append(sk.sources, s)
	}
	return sk, nil
}

// mergeTree is a binary combine ordering over a target's contributions.
// A leaf holds a contribution index; an internal node is
// Combine(left, right) with right inlined into left.
type mergeTree struct {
	leaf        int // contribution index, -1 for internal nodes
	left, right *mergeTree
	frag        *Fragment // fragment produced by this subtree
}

func (t *mergeTree) signature() string {
	if t.leaf >= 0 {
		return fmt.Sprintf("p%d", t.leaf)
	}
	return "(" + t.left.signature() + "+" + t.right.signature() + ")"
}

// combinable reports whether Combine(a, b) is legal: every possible schema
// parent of b's root lies inside a (the paper's parent/child join
// condition, strengthened for multi-parent elements so no record can be
// orphaned).
func (sk *skeleton) combinable(a, b *Fragment) bool {
	parents := sk.m.Source.Schema.Parents(b.Root)
	if len(parents) == 0 {
		return false
	}
	for _, p := range parents {
		if !a.Elems[p] {
			return false
		}
	}
	return true
}

// enumerateTrees returns up to cap distinct combine orderings for the
// contributions of one target. The first returned tree is the canonical
// greedy-left ordering (combine in schema pre-order of piece roots), which
// matches the shapes drawn in Figure 8.
func (sk *skeleton) enumerateTrees(contribs []contribution, cap int) ([]*mergeTree, error) {
	n := len(contribs)
	leaves := make([]*mergeTree, n)
	for i, c := range contribs {
		leaves[i] = &mergeTree{leaf: i, frag: c.frag}
	}
	if n == 1 {
		return leaves, nil
	}
	var out []*mergeTree
	seenResult := make(map[string]bool)
	seenState := make(map[string]bool)
	var rec func(cur []*mergeTree) error
	rec = func(cur []*mergeTree) error {
		if len(out) >= cap {
			return nil
		}
		if len(cur) == 1 {
			sig := cur[0].signature()
			if !seenResult[sig] {
				seenResult[sig] = true
				out = append(out, cur[0])
			}
			return nil
		}
		sigs := make([]string, len(cur))
		for i, t := range cur {
			sigs[i] = t.signature()
		}
		sort.Strings(sigs)
		state := strings.Join(sigs, "|")
		if seenState[state] {
			return nil
		}
		seenState[state] = true
		merged := false
		for i := 0; i < len(cur) && len(out) < cap; i++ {
			for j := 0; j < len(cur) && len(out) < cap; j++ {
				if i == j {
					continue
				}
				a, b := cur[i], cur[j]
				if !sk.combinable(a.frag, b.frag) {
					continue
				}
				mergedFrag, err := mergeFragments(sk.m.Source.Schema, a.frag, b.frag)
				if err != nil {
					return err
				}
				node := &mergeTree{leaf: -1, left: a, right: b, frag: mergedFrag}
				next := make([]*mergeTree, 0, len(cur)-1)
				for k, t := range cur {
					if k != i && k != j {
						next = append(next, t)
					}
				}
				// Keep pre-order determinism: the merged node takes the
				// earlier position.
				pos := i
				if j < i {
					pos = j
				}
				next = append(next, nil)
				copy(next[pos+1:], next[pos:])
				next[pos] = node
				merged = true
				if err := rec(next); err != nil {
					return err
				}
			}
		}
		if !merged {
			return fmt.Errorf("core: contributions cannot be combined into one fragment (disconnected pieces)")
		}
		return nil
	}
	if err := rec(leaves); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no combine ordering found")
	}
	return out, nil
}

// assemble builds a concrete program Graph from the skeleton and one chosen
// combine ordering per target (keyed by target fragment name; targets with
// a single contribution need no entry).
func (sk *skeleton) assemble(trees map[string]*mergeTree) (*Graph, error) {
	g := NewGraph()
	scanOps := make(map[string]*Op, len(sk.sources))
	producer := make(map[string]producerRef) // piece name -> op and fragment
	for _, s := range sk.sources {
		scanOps[s.Name] = g.AddOp(OpScan, s)
	}
	for _, s := range sk.sources {
		ps := sk.pieces[s.Name]
		if ps == nil {
			producer[s.Name] = producerRef{op: scanOps[s.Name], frag: s}
			continue
		}
		split := g.AddOp(OpSplit, s, ps...)
		g.Connect(scanOps[s.Name], split, s)
		for _, p := range ps {
			producer[p.Name] = producerRef{op: split, frag: p}
		}
	}
	for _, t := range sk.m.Target.Fragments {
		contribs := sk.contribs[t.Name]
		var src producerRef
		if len(contribs) == 1 {
			src = producer[contribs[0].frag.Name]
		} else {
			tree := trees[t.Name]
			if tree == nil {
				return nil, fmt.Errorf("core: missing combine ordering for target %q", t.Name)
			}
			op, frag, err := sk.emitTree(g, tree, contribs, producer)
			if err != nil {
				return nil, err
			}
			src = producerRef{op: op, frag: frag}
		}
		if !src.frag.SameElems(t) {
			return nil, fmt.Errorf("core: target %q assembled from %q which does not match", t.Name, src.frag.Name)
		}
		w := g.AddOp(OpWrite, t)
		g.Connect(src.op, w, src.frag)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

type producerRef struct {
	op   *Op
	frag *Fragment
}

func (sk *skeleton) emitTree(g *Graph, t *mergeTree, contribs []contribution, producer map[string]producerRef) (*Op, *Fragment, error) {
	if t.leaf >= 0 {
		ref, ok := producer[contribs[t.leaf].frag.Name]
		if !ok {
			return nil, nil, fmt.Errorf("core: no producer for piece %q", contribs[t.leaf].frag.Name)
		}
		return ref.op, ref.frag, nil
	}
	lop, lfrag, err := sk.emitTree(g, t.left, contribs, producer)
	if err != nil {
		return nil, nil, err
	}
	rop, rfrag, err := sk.emitTree(g, t.right, contribs, producer)
	if err != nil {
		return nil, nil, err
	}
	c := g.AddOp(OpCombine, t.frag)
	g.Connect(lop, c, lfrag)
	g.Connect(rop, c, rfrag)
	return c, t.frag, nil
}

// GeneratePrograms enumerates data-transfer programs for the mapping, one
// per combination of combine orderings (§4.2), bounded by opts. The first
// program uses the canonical ordering for every target.
func GeneratePrograms(m *Mapping, opts GenOptions) ([]*Graph, error) {
	sk, err := buildSkeleton(m)
	if err != nil {
		return nil, err
	}
	type targetTrees struct {
		name  string
		trees []*mergeTree
	}
	var multi []targetTrees
	for _, t := range m.Target.Fragments {
		contribs := sk.contribs[t.Name]
		if len(contribs) <= 1 {
			continue
		}
		trees, err := sk.enumerateTrees(contribs, opts.treesCap())
		if err != nil {
			return nil, fmt.Errorf("core: target %q: %w", t.Name, err)
		}
		multi = append(multi, targetTrees{name: t.Name, trees: trees})
	}
	choice := make(map[string]*mergeTree, len(multi))
	var programs []*Graph
	var product func(i int) error
	product = func(i int) error {
		if len(programs) >= opts.programsCap() {
			return nil
		}
		if i == len(multi) {
			g, err := sk.assemble(choice)
			if err != nil {
				return err
			}
			programs = append(programs, g)
			return nil
		}
		for _, tr := range multi[i].trees {
			if len(programs) >= opts.programsCap() {
				return nil
			}
			choice[multi[i].name] = tr
			if err := product(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := product(0); err != nil {
		return nil, err
	}
	return programs, nil
}

// CanonicalProgram builds the single program using the first (pre-order,
// left-deep) combine ordering for every target — the shape of Figure 8.
func CanonicalProgram(m *Mapping) (*Graph, error) {
	sk, err := buildSkeleton(m)
	if err != nil {
		return nil, err
	}
	choice := make(map[string]*mergeTree)
	for _, t := range m.Target.Fragments {
		contribs := sk.contribs[t.Name]
		if len(contribs) <= 1 {
			continue
		}
		trees, err := sk.enumerateTrees(contribs, 1)
		if err != nil {
			return nil, fmt.Errorf("core: target %q: %w", t.Name, err)
		}
		choice[t.Name] = trees[0]
	}
	return sk.assemble(choice)
}

// GreedyProgram builds one program by adding combines cheapest-first
// (§4.3), costing each candidate as if executed at the source.
func GreedyProgram(m *Mapping, provider CostProvider) (*Graph, error) {
	sk, err := buildSkeleton(m)
	if err != nil {
		return nil, err
	}
	choice := make(map[string]*mergeTree)
	for _, t := range m.Target.Fragments {
		contribs := sk.contribs[t.Name]
		if len(contribs) <= 1 {
			continue
		}
		cur := make([]*mergeTree, len(contribs))
		for i, c := range contribs {
			cur[i] = &mergeTree{leaf: i, frag: c.frag}
		}
		for len(cur) > 1 {
			bestI, bestJ := -1, -1
			bestCost := 0.0
			for i := range cur {
				for j := range cur {
					if i == j || !sk.combinable(cur[i].frag, cur[j].frag) {
						continue
					}
					c := provider.CompCost(OpCombine, []*Fragment{cur[i].frag, cur[j].frag}, nil, LocSource)
					if bestI < 0 || c < bestCost {
						bestI, bestJ, bestCost = i, j, c
					}
				}
			}
			if bestI < 0 {
				return nil, fmt.Errorf("core: greedy: target %q contributions cannot be combined", t.Name)
			}
			mergedFrag, err := mergeFragments(m.Source.Schema, cur[bestI].frag, cur[bestJ].frag)
			if err != nil {
				return nil, err
			}
			node := &mergeTree{leaf: -1, left: cur[bestI], right: cur[bestJ], frag: mergedFrag}
			next := cur[:0:0]
			for k, tr := range cur {
				if k != bestI && k != bestJ {
					next = append(next, tr)
				}
			}
			cur = append(next, node)
		}
		choice[t.Name] = cur[0]
	}
	return sk.assemble(choice)
}
