package core

import (
	"math/rand"
	"strings"
	"testing"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

func TestMappingSToT(t *testing.T) {
	sch := customerSchema()
	src := sFragmentation(t, sch)
	tgt := tFragmentation(t, sch)
	m, err := NewMapping(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Identical() {
		t.Error("S and T fragmentations are not identical")
	}
	// Target Order_Service draws from source ORDER and SERVICE.
	var orderTarget *Fragment
	for _, f := range tgt.Fragments {
		if f.Root == "Order" {
			orderTarget = f
		}
	}
	srcs := m.Assoc[orderTarget.Name]
	if len(srcs) != 2 {
		t.Fatalf("Order_Service has %d source fragments, want 2: %v", len(srcs), srcs)
	}
}

func TestMappingIdentical(t *testing.T) {
	sch := customerSchema()
	a := tFragmentation(t, sch)
	b := tFragmentation(t, sch)
	m, err := NewMapping(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Identical() {
		t.Error("identical fragmentations not detected")
	}
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	st := g.OpStats()
	if st.Combines != 0 || st.Splits != 0 || st.Scans != 4 || st.Writes != 4 {
		t.Errorf("identical mapping should be pure Scan->Write: %+v", st)
	}
}

func TestMappingDifferentSchemas(t *testing.T) {
	a := Trivial(customerSchema())
	b := Trivial(schema.Auction())
	if _, err := NewMapping(a, b); err == nil {
		t.Error("mapping across schemas must fail")
	}
}

func TestPieces(t *testing.T) {
	sch := customerSchema()
	src := sFragmentation(t, sch)
	tgt := tFragmentation(t, sch)
	m, _ := NewMapping(src, tgt)
	// LINE_FEATURE splits into Line_TelNo (for Line_Switch) and
	// Feature_FeatureID (for Feature).
	lf := src.FragmentOf("TelNo")
	pieces, err := m.Pieces(lf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 2 {
		t.Fatalf("LINE_FEATURE pieces = %d, want 2", len(pieces))
	}
	roots := map[string]bool{}
	for _, p := range pieces {
		roots[p.Root] = true
	}
	if !roots["Line"] || !roots["Feature"] {
		t.Errorf("piece roots = %v", roots)
	}
	// CUSTOMER maps whole.
	cust := src.FragmentOf("CustName")
	pieces, err = m.Pieces(cust)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 1 || pieces[0] != cust {
		t.Errorf("CUSTOMER should map whole, got %v", pieces)
	}
}

func TestCanonicalProgramFigure5(t *testing.T) {
	// The S->T transfer of Figure 5: one split of LINE_FEATURE, one
	// combine for Order_Service, one combine for Line_Switch.
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.OpStats()
	if st.Scans != 5 || st.Writes != 4 || st.Splits != 1 || st.Combines != 2 {
		t.Errorf("Figure 5 op mix wrong: %+v\n%s", st, g)
	}
	// Customer and Feature are Scan/Split -> Write directly.
	s := g.String()
	if !strings.Contains(s, "Write(Customer_CustName)") {
		t.Errorf("missing customer write:\n%s", s)
	}
}

func TestPublishingProgramFigure3(t *testing.T) {
	// S-fragmentation -> whole schema (publishing, Figure 3): pure combines.
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), Trivial(sch))
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	st := g.OpStats()
	if st.Scans != 5 || st.Writes != 1 || st.Splits != 0 || st.Combines != 4 {
		t.Errorf("publishing op mix wrong: %+v\n%s", st, g)
	}
}

func TestLoadingProgramFigure4(t *testing.T) {
	// Whole schema -> T-fragmentation (loading, Figure 4): one scan, splits,
	// no combines.
	sch := customerSchema()
	m, _ := NewMapping(Trivial(sch), tFragmentation(t, sch))
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	st := g.OpStats()
	if st.Scans != 1 || st.Writes != 4 || st.Combines != 0 || st.Splits != 1 {
		t.Errorf("loading op mix wrong: %+v\n%s", st, g)
	}
}

func TestGenerateProgramsEnumeratesOrderings(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), Trivial(sch))
	progs, err := GeneratePrograms(m, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) < 2 {
		t.Fatalf("expected multiple combine orderings, got %d", len(progs))
	}
	// All programs must validate and have identical op mixes.
	want := progs[0].OpStats()
	for i, g := range progs {
		if err := g.Validate(); err != nil {
			t.Fatalf("program %d invalid: %v", i, err)
		}
		if g.OpStats() != want {
			t.Errorf("program %d op mix %+v != %+v", i, g.OpStats(), want)
		}
	}
	// Programs should be distinct.
	seen := map[string]bool{}
	for _, g := range progs {
		if seen[g.String()] {
			t.Errorf("duplicate program enumerated:\n%s", g)
		}
		seen[g.String()] = true
	}
}

func TestGenerateProgramsCap(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), Trivial(sch))
	progs, err := GeneratePrograms(m, GenOptions{MaxPrograms: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 3 {
		t.Errorf("cap not honored: %d programs", len(progs))
	}
}

func TestGreedyProgramValid(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, err := GreedyProgram(m, testProvider(sch, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OpStats() != (Stats{Scans: 5, Combines: 2, Splits: 1, Writes: 4}) {
		t.Errorf("greedy op mix: %+v", g.OpStats())
	}
}

func TestExecutePrograms(t *testing.T) {
	sch := customerSchema()
	src := sFragmentation(t, sch)
	tgt := tFragmentation(t, sch)
	m, _ := NewMapping(src, tgt)
	doc := customerDoc()
	sources, err := FromDocument(src, doc)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := GeneratePrograms(m, GenOptions{MaxPrograms: 10})
	if err != nil {
		t.Fatal(err)
	}
	wantInsts, _ := FromDocument(tgt, customerDoc())
	for i, g := range progs {
		// Execute needs fresh sources: combines mutate records.
		srcs, _ := FromDocument(src, customerDoc())
		res, err := Execute(g, sch, srcs)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if len(res.Written) != tgt.Len() {
			t.Fatalf("program %d wrote %d fragments, want %d", i, len(res.Written), tgt.Len())
		}
		for name, got := range res.Written {
			want := wantInsts[name]
			if want == nil {
				t.Fatalf("program %d wrote unexpected fragment %q", i, name)
			}
			if got.Rows() != want.Rows() {
				t.Errorf("program %d fragment %q: rows %d, want %d", i, name, got.Rows(), want.Rows())
			}
		}
		if len(res.Traces) != len(g.Ops) {
			t.Errorf("program %d traced %d ops, want %d", i, len(res.Traces), len(g.Ops))
		}
	}
	_ = doc
	_ = sources
}

func TestExecuteEndToEndDocumentEquality(t *testing.T) {
	// Full round trip through an executed transfer program: the document
	// reassembled from the target instances equals the original.
	sch := customerSchema()
	src := sFragmentation(t, sch)
	tgt := tFragmentation(t, sch)
	m, _ := NewMapping(src, tgt)
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	srcs, _ := FromDocument(src, customerDoc())
	res, err := Execute(g, sch, srcs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Document(tgt, res.Written)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualShape(customerDoc(), back) {
		t.Errorf("transferred document differs:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestExecuteRandomMappingsProperty(t *testing.T) {
	// Random source/target fragmentations over a balanced schema: the
	// canonical program executes and reproduces the target partition.
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 3)
		src := Random(sch, rng, rng.Intn(8)+1)
		tgt := Random(sch, rng, rng.Intn(8)+1)
		m, err := NewMapping(src, tgt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g, err := CanonicalProgram(m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		doc := randomDoc(sch, rng, 3)
		srcs, err := FromDocument(src, doc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := Execute(g, sch, srcs)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, g)
		}
		back, err := Document(tgt, res.Written)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !xmltree.EqualShape(doc, back) {
			t.Errorf("seed %d: transferred document differs", seed)
		}
	}
}
