package core

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind enumerates the four primitive operations of §3.2.
type OpKind int

// The primitive operations (Definitions 3.6–3.9).
const (
	OpScan OpKind = iota
	OpCombine
	OpSplit
	OpWrite
)

func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "Scan"
	case OpCombine:
		return "Combine"
	case OpSplit:
		return "Split"
	case OpWrite:
		return "Write"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Location says where an operation executes.
type Location int

// Operation placements. Unassigned operations are what the optimizers of
// §4.2/§4.3 decide.
const (
	LocUnassigned Location = iota
	LocSource
	LocTarget
)

func (l Location) String() string {
	switch l {
	case LocSource:
		return "S"
	case LocTarget:
		return "T"
	}
	return "?"
}

// Op is a node of a data-transfer program DAG.
type Op struct {
	// ID is the op's index within its Graph.
	ID int
	// Kind is the primitive operation.
	Kind OpKind
	// Out is the fragment the op produces: the scanned fragment for Scan,
	// the merged fragment for Combine, the input fragment for Split (whose
	// actual outputs are the fragments on its out-edges), and the written
	// fragment for Write.
	Out *Fragment
	// Parts are the output fragments of a Split, nil otherwise.
	Parts []*Fragment
}

func (o *Op) String() string {
	switch o.Kind {
	case OpSplit:
		names := make([]string, len(o.Parts))
		for i, p := range o.Parts {
			names[i] = p.Name
		}
		return fmt.Sprintf("Split(%s -> %s)", o.Out.Name, strings.Join(names, ", "))
	default:
		return fmt.Sprintf("%s(%s)", o.Kind, o.Out.Name)
	}
}

// Edge is a data-flow edge carrying a fragment between two ops. When its
// endpoints are placed at different systems it is a cross-edge and incurs
// communication cost (§4.1).
type Edge struct {
	From, To *Op
	// Frag is the fragment flowing along the edge (OP1.out in the paper's
	// comm_cost definition, restricted to the piece consumed by To).
	Frag *Fragment
}

// Graph is a data-transfer program: a DAG of primitive operations
// (Definition 3.10).
type Graph struct {
	Ops   []*Op
	Edges []*Edge

	in, out map[int][]*Edge
}

// NewGraph returns an empty program graph.
func NewGraph() *Graph {
	return &Graph{in: make(map[int][]*Edge), out: make(map[int][]*Edge)}
}

// AddOp appends an operation and assigns its ID.
func (g *Graph) AddOp(kind OpKind, out *Fragment, parts ...*Fragment) *Op {
	op := &Op{ID: len(g.Ops), Kind: kind, Out: out, Parts: parts}
	g.Ops = append(g.Ops, op)
	return op
}

// Connect adds a data-flow edge carrying frag from a to b.
func (g *Graph) Connect(a, b *Op, frag *Fragment) *Edge {
	e := &Edge{From: a, To: b, Frag: frag}
	g.Edges = append(g.Edges, e)
	g.in[b.ID] = append(g.in[b.ID], e)
	g.out[a.ID] = append(g.out[a.ID], e)
	return e
}

// In returns the edges entering op.
func (g *Graph) In(op *Op) []*Edge { return g.in[op.ID] }

// Out returns the edges leaving op.
func (g *Graph) Out(op *Op) []*Edge { return g.out[op.ID] }

// Topo returns the ops in a topological order. Ops are created
// producer-first by the program generator, so op ID order is already
// topological; this verifies it in debug builds and returns it.
func (g *Graph) Topo() []*Op {
	out := make([]*Op, len(g.Ops))
	copy(out, g.Ops)
	return out
}

// Validate checks structural invariants: acyclicity via ID ordering
// (producers must precede consumers), correct in/out degrees per op kind,
// and edge fragments consistent with their producers.
func (g *Graph) Validate() error {
	for _, e := range g.Edges {
		if e.From.ID >= e.To.ID {
			return fmt.Errorf("core: graph edge %s -> %s violates topological ID order", e.From, e.To)
		}
		switch e.From.Kind {
		case OpSplit:
			found := false
			for _, p := range e.From.Parts {
				if p == e.Frag {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("core: edge from %s carries %q which is not a split part", e.From, e.Frag.Name)
			}
		case OpWrite:
			return fmt.Errorf("core: Write %s has outgoing edge", e.From)
		default:
			if e.Frag != e.From.Out {
				return fmt.Errorf("core: edge from %s carries %q, want %q", e.From, e.Frag.Name, e.From.Out.Name)
			}
		}
	}
	for _, op := range g.Ops {
		nin, nout := len(g.in[op.ID]), len(g.out[op.ID])
		switch op.Kind {
		case OpScan:
			if nin != 0 {
				return fmt.Errorf("core: Scan %s has %d inputs", op, nin)
			}
		case OpCombine:
			if nin != 2 {
				return fmt.Errorf("core: Combine %s has %d inputs, want 2", op, nin)
			}
		case OpSplit:
			if nin != 1 {
				return fmt.Errorf("core: Split %s has %d inputs, want 1", op, nin)
			}
			if nout < 1 {
				return fmt.Errorf("core: Split %s has no outputs", op)
			}
		case OpWrite:
			if nin != 1 {
				return fmt.Errorf("core: Write %s has %d inputs, want 1", op, nin)
			}
			if nout != 0 {
				return fmt.Errorf("core: Write %s has outputs", op)
			}
		}
	}
	return nil
}

// Assignment maps each op (by ID) to a location. It is kept separate from
// the Graph so that placement search does not mutate shared programs.
type Assignment []Location

// NewAssignment returns an all-unassigned assignment for g.
func NewAssignment(g *Graph) Assignment { return make(Assignment, len(g.Ops)) }

// Clone copies the assignment.
func (a Assignment) Clone() Assignment {
	b := make(Assignment, len(a))
	copy(b, a)
	return b
}

// Monotone reports whether the assignment ships data one way only: no edge
// runs from a target-placed op to a source-placed op (§4.1 considers
// one-way data shipping).
func (a Assignment) Monotone(g *Graph) bool {
	for _, e := range g.Edges {
		if a[e.From.ID] == LocTarget && a[e.To.ID] == LocSource {
			return false
		}
	}
	return true
}

// Complete reports whether every op has a location.
func (a Assignment) Complete() bool {
	for _, l := range a {
		if l == LocUnassigned {
			return false
		}
	}
	return true
}

// CrossEdges returns the edges whose endpoints are placed at different
// systems under a.
func (a Assignment) CrossEdges(g *Graph) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if a[e.From.ID] == LocSource && a[e.To.ID] == LocTarget {
			out = append(out, e)
		}
	}
	return out
}

// String renders the program with one op per line, annotated with its
// inputs, for debugging and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	for _, op := range g.Ops {
		var ins []string
		for _, e := range g.in[op.ID] {
			ins = append(ins, fmt.Sprintf("#%d:%s", e.From.ID, e.Frag.Name))
		}
		sort.Strings(ins)
		fmt.Fprintf(&b, "#%d %s", op.ID, op)
		if len(ins) > 0 {
			fmt.Fprintf(&b, " <- %s", strings.Join(ins, ", "))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DOT renders the program in Graphviz dot syntax, optionally colored by a
// placement (source ops dotted blue, target ops solid red); pass nil for an
// unplaced program. Handy for inspecting generated plans:
//
//	dot -Tsvg program.dot > program.svg
func (g *Graph) DOT(a Assignment) string {
	var b strings.Builder
	b.WriteString("digraph program {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, op := range g.Ops {
		attrs := ""
		if a != nil && op.ID < len(a) {
			switch a[op.ID] {
			case LocSource:
				attrs = `, color=blue, style=dashed`
			case LocTarget:
				attrs = `, color=red`
			}
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", op.ID, op.String(), attrs)
	}
	for _, e := range g.Edges {
		style := ""
		if a != nil && e.From.ID < len(a) && e.To.ID < len(a) &&
			a[e.From.ID] == LocSource && a[e.To.ID] == LocTarget {
			style = ` [label="ship", penwidth=2]`
		}
		fmt.Fprintf(&b, "  n%d -> n%d%s;\n", e.From.ID, e.To.ID, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a program's operation mix.
type Stats struct {
	Scans, Combines, Splits, Writes int
}

// OpStats counts the operations of each kind.
func (g *Graph) OpStats() Stats {
	var s Stats
	for _, op := range g.Ops {
		switch op.Kind {
		case OpScan:
			s.Scans++
		case OpCombine:
			s.Combines++
		case OpSplit:
			s.Splits++
		case OpWrite:
			s.Writes++
		}
	}
	return s
}
