package core

import (
	"strings"
	"testing"
)

func TestGraphValidateCatchesMalformations(t *testing.T) {
	sch := customerSchema()
	fa, _ := NewFragment(sch, "", []string{"Customer", "CustName"})
	fb, _ := NewFragment(sch, "", []string{"Order"})

	// Write with outgoing edge.
	g := NewGraph()
	w := g.AddOp(OpWrite, fa)
	w2 := g.AddOp(OpWrite, fb)
	g.Connect(w, w2, fa)
	if err := g.Validate(); err == nil {
		t.Error("write with outgoing edge must fail")
	}

	// Scan with input.
	g = NewGraph()
	s1 := g.AddOp(OpScan, fa)
	s2 := g.AddOp(OpScan, fb)
	g.Connect(s1, s2, fa)
	if err := g.Validate(); err == nil {
		t.Error("scan with input must fail")
	}

	// Combine with one input.
	g = NewGraph()
	s1 = g.AddOp(OpScan, fa)
	c := g.AddOp(OpCombine, fa)
	g.Connect(s1, c, fa)
	if err := g.Validate(); err == nil {
		t.Error("combine with one input must fail")
	}

	// Split with no outputs.
	g = NewGraph()
	s1 = g.AddOp(OpScan, fa)
	sp := g.AddOp(OpSplit, fa)
	g.Connect(s1, sp, fa)
	if err := g.Validate(); err == nil {
		t.Error("split with no outputs must fail")
	}

	// Edge carrying the wrong fragment.
	g = NewGraph()
	s1 = g.AddOp(OpScan, fa)
	w = g.AddOp(OpWrite, fb)
	g.Connect(s1, w, fb) // scan produces fa, edge claims fb
	if err := g.Validate(); err == nil {
		t.Error("wrong edge fragment must fail")
	}

	// Edge against ID order.
	g = NewGraph()
	w = g.AddOp(OpWrite, fa)
	s1 = g.AddOp(OpScan, fa)
	g.Connect(s1, w, fa)
	if err := g.Validate(); err == nil {
		t.Error("back edge must fail")
	}
}

func TestOpAndLocationStrings(t *testing.T) {
	sch := customerSchema()
	f, _ := NewFragment(sch, "", []string{"Customer", "CustName"})
	p1, _ := NewFragment(sch, "", []string{"Customer"})
	p2, _ := NewFragment(sch, "", []string{"CustName"})
	g := NewGraph()
	sp := g.AddOp(OpSplit, f, p1, p2)
	if got := sp.String(); !strings.Contains(got, "Split(") || !strings.Contains(got, "->") {
		t.Errorf("split string = %q", got)
	}
	if OpScan.String() != "Scan" || OpWrite.String() != "Write" || OpKind(99).String() == "" {
		t.Error("OpKind strings wrong")
	}
	if LocSource.String() != "S" || LocTarget.String() != "T" || LocUnassigned.String() != "?" {
		t.Error("Location strings wrong")
	}
}

func TestGraphDOT(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == OpWrite {
			a[op.ID] = LocTarget
		} else {
			a[op.ID] = LocSource
		}
	}
	dot := g.DOT(a)
	for _, want := range []string{"digraph program", "color=blue", "color=red", `label="ship"`, "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Unplaced rendering works too.
	if plain := g.DOT(nil); strings.Contains(plain, "color=") {
		t.Errorf("unplaced DOT should be uncolored")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(tFragmentation(t, sch), tFragmentation(t, sch))
	g, _ := CanonicalProgram(m)
	a := NewAssignment(g)
	if a.Complete() {
		t.Error("fresh assignment should be incomplete")
	}
	for _, op := range g.Ops {
		if op.Kind == OpScan {
			a[op.ID] = LocSource
		} else {
			a[op.ID] = LocTarget
		}
	}
	if !a.Complete() || !a.Monotone(g) {
		t.Error("assignment should be complete and monotone")
	}
	if got := len(a.CrossEdges(g)); got != len(g.Edges) {
		t.Errorf("cross edges = %d, want %d", got, len(g.Edges))
	}
	b := a.Clone()
	b[0] = LocTarget
	if a[0] == b[0] {
		t.Error("clone shares storage")
	}
	if got := g.OpStats(); got.Scans != 4 || got.Writes != 4 {
		t.Errorf("op stats = %+v", got)
	}
}
