package core

import (
	"fmt"
	"math"
)

// GreedyPlacement implements the distributed-processing heuristic of §4.3:
// probe both systems for each unassigned operation, fix the operation with
// the largest absolute cost difference to its preferred location, propagate
// upstream (source) or downstream (target), and when no difference remains
// turn the unassigned edge with the smallest output fragment into a
// cross-edge. Scans are pinned to the source and Writes to the target.
func GreedyPlacement(g *Graph, model *Model) (PlacementResult, error) {
	a := NewAssignment(g)
	for _, op := range g.Ops {
		switch op.Kind {
		case OpScan:
			a[op.ID] = LocSource
			// A scan's producers: none. No propagation needed.
		case OpWrite:
			a[op.ID] = LocTarget
		}
	}
	for !a.Complete() {
		// Forced moves first: monotonicity can leave an op only one choice.
		if applyForced(g, a) {
			continue
		}
		type cand struct {
			op   *Op
			diff float64
			pref Location
		}
		bestCand := cand{diff: -1}
		for _, op := range g.Ops {
			if a[op.ID] != LocUnassigned {
				continue
			}
			cs := model.OpCost(g, op, LocSource)
			ct := model.OpCost(g, op, LocTarget)
			d := math.Abs(cs - ct)
			pref := LocSource
			if ct < cs {
				pref = LocTarget
			}
			if math.IsInf(cs, 1) && math.IsInf(ct, 1) {
				return PlacementResult{}, fmt.Errorf("core: greedy: op %s cannot run anywhere", op)
			}
			if math.IsInf(d, 1) {
				d = math.MaxFloat64 // infinite preference, e.g. dumb client
			}
			if d > bestCand.diff {
				bestCand = cand{op: op, diff: d, pref: pref}
			}
		}
		if bestCand.op == nil {
			break
		}
		if bestCand.diff > 0 {
			fix(g, a, bestCand.op, bestCand.pref)
			continue
		}
		// No cost difference anywhere: make the cheapest edge between two
		// unassigned operations a cross-edge (minimum communication).
		var bestEdge *Edge
		bestBytes := math.Inf(1)
		for _, e := range g.Edges {
			if a[e.From.ID] != LocUnassigned || a[e.To.ID] != LocUnassigned {
				continue
			}
			if b := model.Provider.ShipBytes(e.Frag); b < bestBytes {
				bestBytes, bestEdge = b, e
			}
		}
		if bestEdge != nil {
			fix(g, a, bestEdge.From, LocSource)
			fix(g, a, bestEdge.To, LocTarget)
			continue
		}
		// No eligible edge either (isolated unassigned op): default to the
		// source, which never violates monotonicity for an op whose
		// predecessors are all at the source.
		fix(g, a, bestCand.op, LocSource)
	}
	cost, err := model.Cost(g, a)
	if err != nil {
		return PlacementResult{}, fmt.Errorf("core: greedy produced invalid placement: %w", err)
	}
	return PlacementResult{Assign: a, Cost: cost}, nil
}

// applyForced assigns any unassigned op whose location is dictated by
// monotonicity (a target-placed producer forces the target; a source-placed
// consumer forces the source). Returns true if progress was made.
func applyForced(g *Graph, a Assignment) bool {
	progress := false
	for _, op := range g.Ops {
		if a[op.ID] != LocUnassigned {
			continue
		}
		for _, e := range g.In(op) {
			if a[e.From.ID] == LocTarget {
				a[op.ID] = LocTarget
				progress = true
				break
			}
		}
		if a[op.ID] != LocUnassigned {
			continue
		}
		for _, e := range g.Out(op) {
			if a[e.To.ID] == LocSource {
				a[op.ID] = LocSource
				progress = true
				break
			}
		}
	}
	return progress
}

// fix assigns op to loc (clamped to a feasible choice) and propagates:
// a source placement pulls all upstream operations to the source, a target
// placement pushes all downstream operations to the target (§4.3).
func fix(g *Graph, a Assignment, op *Op, loc Location) {
	if loc == LocSource {
		for _, e := range g.In(op) {
			if a[e.From.ID] == LocTarget {
				loc = LocTarget // preference infeasible; clamp
				break
			}
		}
	}
	a[op.ID] = loc
	if loc == LocSource {
		assignUpstream(g, op, a)
		return
	}
	assignDownstream(g, op, a)
}

// Greedy runs the full §4.3 pipeline: greedy combine ordering followed by
// greedy placement, returning the resulting single program and placement.
func Greedy(m *Mapping, model *Model) (OptimalResult, error) {
	g, err := GreedyProgram(m, model.Provider)
	if err != nil {
		return OptimalResult{}, err
	}
	pr, err := GreedyPlacement(g, model)
	if err != nil {
		return OptimalResult{}, err
	}
	return OptimalResult{Program: g, PlacementResult: pr, Considered: 1}, nil
}
