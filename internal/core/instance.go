package core

import (
	"fmt"
	"sort"
	"strconv"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// Instance is a fragment instance (Definition 3.2): a sequence of element
// trees, each conforming to the fragment's subtree and carrying ID/PARENT
// on its root.
type Instance struct {
	// Frag is the fragment this instance conforms to.
	Frag *Fragment
	// Records are the fragment's element trees in document order.
	Records []*xmltree.Node
}

// Rows returns the number of records.
func (in *Instance) Rows() int { return len(in.Records) }

// Nodes returns the total number of element instances across all records.
func (in *Instance) Nodes() int {
	n := 0
	for _, r := range in.Records {
		n += r.Count()
	}
	return n
}

// SerializedSize returns the byte size of the instance when shipped in XML
// format with root IDs, the size() function of the communication cost
// (§4.1).
func (in *Instance) SerializedSize() int64 {
	var n int64
	for _, r := range in.Records {
		n += xmltree.SerializedSize(r, true)
	}
	return n
}

// AssignIDs walks a document tree assigning Dewey identifiers ("1",
// "1.2", "1.2.1", ...) to ID fields and wiring PARENT fields, in the style
// of the LDAP DN identifiers of §1.1. Existing IDs are overwritten.
func AssignIDs(doc *xmltree.Node) {
	var walk func(n *xmltree.Node, id, parent string)
	walk = func(n *xmltree.Node, id, parent string) {
		n.ID = id
		n.Parent = parent
		for i, k := range n.Kids {
			walk(k, id+"."+strconv.Itoa(i+1), id)
		}
	}
	walk(doc, "1", "")
}

// AssignIntIDs walks a document assigning compact sequential integer
// identifiers ("1", "2", ...) and wiring PARENT fields — the integer keys
// of the paper's relational feeds. Use AssignIDs when Dewey identifiers
// are wanted (e.g. LDAP DNs).
func AssignIntIDs(doc *xmltree.Node) {
	next := 0
	var walk func(n *xmltree.Node, parent string)
	walk = func(n *xmltree.Node, parent string) {
		next++
		n.ID = strconv.Itoa(next)
		n.Parent = parent
		for _, k := range n.Kids {
			walk(k, n.ID)
		}
	}
	walk(doc, "")
}

// Combine implements Definition 3.7: it inlines the child instance into the
// parent instance by attaching each child record under the parent-fragment
// element instance whose ID matches the record's PARENT, recovering
// document order of children from the schema. The result is a new Instance
// over the merged fragment; parent's records are mutated in place (the
// operation "modifies the input fragment f1").
func Combine(sch *schema.Schema, parent, child *Instance) (*Instance, error) {
	// Every possible schema parent of the child's root must lie inside the
	// parent fragment (the paper's "specific join conditions"; for
	// multi-parent elements such as XMark's item all six regions must be
	// present or some records would be orphaned).
	joinElems := sch.Parents(child.Frag.Root)
	if len(joinElems) == 0 {
		return nil, fmt.Errorf("core: cannot combine %q into %q: %q is the schema root", child.Frag.Name, parent.Frag.Name, child.Frag.Root)
	}
	for _, p := range joinElems {
		if !parent.Frag.Elems[p] {
			return nil, fmt.Errorf("core: cannot combine %q into %q: parent element %q of %q missing", child.Frag.Name, parent.Frag.Name, p, child.Frag.Root)
		}
	}
	joinable := make(map[string]bool, len(joinElems))
	for _, e := range joinElems {
		joinable[e] = true
	}
	// Hash side: index parent-fragment element instances by ID.
	idx := make(map[string]*xmltree.Node)
	var index func(n *xmltree.Node)
	index = func(n *xmltree.Node) {
		if joinable[n.Name] {
			idx[n.ID] = n
		}
		for _, k := range n.Kids {
			index(k)
		}
	}
	for _, r := range parent.Records {
		index(r)
	}
	// Probe side: attach each child record.
	touched := make(map[*xmltree.Node]bool)
	for _, rec := range child.Records {
		p := idx[rec.Parent]
		if p == nil {
			return nil, fmt.Errorf("core: combine %q into %q: orphan record %s (parent %s not found)",
				child.Frag.Name, parent.Frag.Name, rec.ID, rec.Parent)
		}
		p.AddKid(rec)
		touched[p] = true
	}
	// Recover child order dictated by the XML Schema (Definition 3.7).
	for p := range touched {
		sortKids(sch, p)
	}
	merged, err := mergeFragments(sch, parent.Frag, child.Frag)
	if err != nil {
		return nil, err
	}
	return &Instance{Frag: merged, Records: parent.Records}, nil
}

// sortKids stably reorders n's children into schema order.
func sortKids(sch *schema.Schema, n *xmltree.Node) {
	order := make(map[string]int)
	for i, c := range sch.AllChildren(n.Name) {
		order[c] = i
	}
	sort.SliceStable(n.Kids, func(i, j int) bool {
		return order[n.Kids[i].Name] < order[n.Kids[j].Name]
	})
}

// mergeFragments returns the fragment covering the union of a and b, rooted
// at a's root.
func mergeFragments(sch *schema.Schema, a, b *Fragment) (*Fragment, error) {
	elems := make([]string, 0, len(a.Elems)+len(b.Elems))
	for e := range a.Elems {
		elems = append(elems, e)
	}
	for e := range b.Elems {
		elems = append(elems, e)
	}
	return NewFragment(sch, "", elems)
}

// Split implements Definition 3.8: it projects the input instance into the
// given disjoint fragments, which must partition the input fragment's
// elements. Each projected record keeps the ID/PARENT pair of its root so
// that parent/child relationships dictated by the XML Schema are preserved.
func Split(sch *schema.Schema, in *Instance, parts []*Fragment) ([]*Instance, error) {
	// Verify the parts partition the input.
	seen := make(map[string]string)
	for _, p := range parts {
		for e := range p.Elems {
			if !in.Frag.Elems[e] {
				return nil, fmt.Errorf("core: split of %q: part %q references %q outside the input", in.Frag.Name, p.Name, e)
			}
			if prev, dup := seen[e]; dup {
				return nil, fmt.Errorf("core: split of %q: element %q in both %q and %q", in.Frag.Name, e, prev, p.Name)
			}
			seen[e] = p.Name
		}
	}
	if len(seen) != len(in.Frag.Elems) {
		return nil, fmt.Errorf("core: split of %q: parts cover %d of %d elements", in.Frag.Name, len(seen), len(in.Frag.Elems))
	}
	partOf := make(map[string]*Fragment)
	rootOf := make(map[string]*Fragment)
	for _, p := range parts {
		rootOf[p.Root] = p
		for e := range p.Elems {
			partOf[e] = p
		}
	}
	out := make(map[*Fragment][]*xmltree.Node, len(parts))
	// extract returns a copy of n pruned to n's own part; subtrees rooted at
	// other parts' roots are emitted as records of those parts.
	var extract func(n *xmltree.Node) *xmltree.Node
	extract = func(n *xmltree.Node) *xmltree.Node {
		cp := &xmltree.Node{Name: n.Name, ID: n.ID, Parent: n.Parent, Text: n.Text}
		myPart := partOf[n.Name]
		for _, k := range n.Kids {
			kc := extract(k)
			if partOf[k.Name] == myPart {
				cp.AddKid(kc)
			} else {
				p := rootOf[k.Name]
				out[p] = append(out[p], kc)
			}
		}
		return cp
	}
	for _, rec := range in.Records {
		cp := extract(rec)
		p := rootOf[rec.Name]
		if p == nil {
			return nil, fmt.Errorf("core: split of %q: record root %q is not a part root", in.Frag.Name, rec.Name)
		}
		out[p] = append(out[p], cp)
	}
	res := make([]*Instance, len(parts))
	for i, p := range parts {
		res[i] = &Instance{Frag: p, Records: out[p]}
	}
	return res, nil
}

// FromDocument extracts the instance of every fragment of fr from a full
// document (which must conform to fr's schema and carry instance IDs, e.g.
// via AssignIDs). It is the reference implementation of a source Scan and
// is also how documents are loaded in tests.
func FromDocument(fr *Fragmentation, doc *xmltree.Node) (map[string]*Instance, error) {
	whole, err := NewFragment(fr.Schema, "", fr.Schema.Names())
	if err != nil {
		return nil, err
	}
	in := &Instance{Frag: whole, Records: []*xmltree.Node{doc.Clone()}}
	if len(fr.Fragments) == 1 && fr.Fragments[0].SameElems(whole) {
		return map[string]*Instance{fr.Fragments[0].Name: {Frag: fr.Fragments[0], Records: in.Records}}, nil
	}
	parts, err := Split(fr.Schema, in, fr.Fragments)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Instance, len(parts))
	for _, p := range parts {
		out[p.Frag.Name] = p
	}
	return out, nil
}

// Document reassembles a full document from per-fragment instances by
// combining every fragment into the root fragment, in schema pre-order.
// It is the inverse of FromDocument and the reference implementation of
// publishing.
func Document(fr *Fragmentation, insts map[string]*Instance) (*xmltree.Node, error) {
	if len(fr.Fragments) == 0 {
		return nil, fmt.Errorf("core: empty fragmentation")
	}
	cur := insts[fr.Fragments[0].Name]
	if cur == nil {
		return nil, fmt.Errorf("core: missing instance for root fragment %q", fr.Fragments[0].Name)
	}
	cur = &Instance{Frag: fr.Fragments[0], Records: cur.Records}
	// Merge fragments in dependency order: a fragment may be combined only
	// once every possible parent element of its root is present (a
	// multi-parent fragment like XMark's item must wait for all regions).
	remaining := append([]*Fragment(nil), fr.Fragments[1:]...)
	for len(remaining) > 0 {
		merged := -1
		for i, f := range remaining {
			ready := true
			for _, p := range fr.Schema.Parents(f.Root) {
				if !cur.Frag.Elems[p] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			child := insts[f.Name]
			if child == nil {
				return nil, fmt.Errorf("core: missing instance for fragment %q", f.Name)
			}
			var err error
			cur, err = Combine(fr.Schema, cur, child)
			if err != nil {
				return nil, err
			}
			merged = i
			break
		}
		if merged < 0 {
			return nil, fmt.Errorf("core: fragments %v cannot be merged (unsatisfiable parent dependencies)", remaining)
		}
		remaining = append(remaining[:merged], remaining[merged+1:]...)
	}
	if len(cur.Records) != 1 {
		return nil, fmt.Errorf("core: document root fragment has %d records, want 1", len(cur.Records))
	}
	return cur.Records[0], nil
}
