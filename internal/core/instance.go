package core

import (
	"fmt"
	"strconv"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// Instance is a fragment instance (Definition 3.2): a sequence of element
// trees, each conforming to the fragment's subtree and carrying ID/PARENT
// on its root.
type Instance struct {
	// Frag is the fragment this instance conforms to.
	Frag *Fragment
	// Records are the fragment's element trees in document order.
	Records []*xmltree.Node

	// shared marks records borrowed from another instance (copy-on-write):
	// a shared record must be cloned before any mutation. nil means every
	// record is owned. Maintained by Share and by Combine.
	shared []bool
	// idx is the persistent join index over the interior element instances
	// of every record, keyed by (element name, ID). It is built lazily by
	// Combine and updated incrementally as records are attached, so a chain
	// of k Combines indexes each node once instead of re-walking the
	// growing merged instance k times. Leaf elements can never be a join
	// parent, so they are excluded via interior.
	idx map[nodeKey]idxEntry
	// interior filters idx: the schema's interior-element set, captured
	// when the index is first built.
	interior map[string]bool
}

// nodeKey identifies an element instance in the join index. Keying by
// element name as well as ID keeps unrelated elements whose stores assigned
// colliding IDs apart.
type nodeKey struct{ name, id string }

// idxEntry locates an indexed node and the record that holds it (the record
// index is needed to resolve copy-on-write before mutating).
type idxEntry struct {
	n   *xmltree.Node
	rec int
}

// Rows returns the number of records.
func (in *Instance) Rows() int { return len(in.Records) }

// Share returns a copy-on-write view of the instance: the view lists the
// same records but marks each one shared, so a Combine running over the
// view clones only the records it actually mutates. It replaces the
// whole-instance deep copies previously taken on multi-consumer edges; a
// view costs O(records), not O(nodes). The view carries no join index —
// views diverge from their origin, so incremental index state cannot be
// shared.
func (in *Instance) Share() *Instance {
	recs := make([]*xmltree.Node, len(in.Records))
	copy(recs, in.Records)
	shared := make([]bool, len(recs))
	for i := range shared {
		shared[i] = true
	}
	return &Instance{Frag: in.Frag, Records: recs, shared: shared}
}

// sharedRec reports whether record i is borrowed from another instance.
func (in *Instance) sharedRec(i int) bool {
	return i < len(in.shared) && in.shared[i]
}

// ensureIndex builds the join index over all current records if absent.
func (in *Instance) ensureIndex(sch *schema.Schema) {
	if in.idx != nil {
		return
	}
	in.idx = make(map[nodeKey]idxEntry)
	in.interior = sch.InteriorElems()
	for i, r := range in.Records {
		in.indexTree(r, i)
	}
}

// indexTree adds (or repoints) index entries for every interior node of the
// subtree.
func (in *Instance) indexTree(n *xmltree.Node, rec int) {
	if in.interior[n.Name] {
		in.idx[nodeKey{name: n.Name, id: n.ID}] = idxEntry{n: n, rec: rec}
	}
	for _, k := range n.Kids {
		in.indexTree(k, rec)
	}
}

// appendRecords appends streamed records, keeping the shared flags and the
// join index (when built) consistent. shared may be nil (all owned) or
// aligned with recs.
func (in *Instance) appendRecords(recs []*xmltree.Node, shared []bool) {
	base := len(in.Records)
	in.Records = append(in.Records, recs...)
	if in.shared != nil || shared != nil {
		for len(in.shared) < base {
			in.shared = append(in.shared, false)
		}
		for i := range recs {
			in.shared = append(in.shared, shared != nil && shared[i])
		}
	}
	if in.idx != nil {
		for i, r := range recs {
			in.indexTree(r, base+i)
		}
	}
}

// ownRec makes record i safe to mutate: a shared record is deep-cloned, its
// index entries are repointed at the clone, and the record is marked owned.
func (in *Instance) ownRec(i int) {
	if !in.sharedRec(i) {
		return
	}
	c := in.Records[i].Clone()
	in.Records[i] = c
	in.shared[i] = false
	if in.idx != nil {
		in.indexTree(c, i)
	}
}

// Nodes returns the total number of element instances across all records.
func (in *Instance) Nodes() int {
	n := 0
	for _, r := range in.Records {
		n += r.Count()
	}
	return n
}

// SerializedSize returns the byte size of the instance when shipped in XML
// format with root IDs, the size() function of the communication cost
// (§4.1).
func (in *Instance) SerializedSize() int64 {
	var n int64
	for _, r := range in.Records {
		n += xmltree.SerializedSize(r, true)
	}
	return n
}

// AssignIDs walks a document tree assigning Dewey identifiers ("1",
// "1.2", "1.2.1", ...) to ID fields and wiring PARENT fields, in the style
// of the LDAP DN identifiers of §1.1. Existing IDs are overwritten.
func AssignIDs(doc *xmltree.Node) {
	var walk func(n *xmltree.Node, id, parent string)
	walk = func(n *xmltree.Node, id, parent string) {
		n.ID = id
		n.Parent = parent
		for i, k := range n.Kids {
			walk(k, id+"."+strconv.Itoa(i+1), id)
		}
	}
	walk(doc, "1", "")
}

// AssignIntIDs walks a document assigning compact sequential integer
// identifiers ("1", "2", ...) and wiring PARENT fields — the integer keys
// of the paper's relational feeds. Use AssignIDs when Dewey identifiers
// are wanted (e.g. LDAP DNs).
func AssignIntIDs(doc *xmltree.Node) {
	next := 0
	var walk func(n *xmltree.Node, parent string)
	walk = func(n *xmltree.Node, parent string) {
		next++
		n.ID = strconv.Itoa(next)
		n.Parent = parent
		for _, k := range n.Kids {
			walk(k, n.ID)
		}
	}
	walk(doc, "")
}

// Combine implements Definition 3.7: it inlines the child instance into the
// parent instance by attaching each child record under the parent-fragment
// element instance whose ID matches the record's PARENT, recovering
// document order of children from the schema. The result is a new Instance
// over the merged fragment; parent's records are mutated in place (the
// operation "modifies the input fragment f1").
func Combine(sch *schema.Schema, parent, child *Instance) (*Instance, error) {
	j, err := newJoiner(sch, parent, child.Frag)
	if err != nil {
		return nil, err
	}
	for i, rec := range child.Records {
		if !j.attach(rec, child.sharedRec(i)) {
			return nil, fmt.Errorf("core: combine %q into %q: orphan record %s (parent %s not found)",
				child.Frag.Name, parent.Frag.Name, rec.ID, rec.Parent)
		}
	}
	j.finish()
	merged, err := mergeFragments(sch, parent.Frag, child.Frag)
	if err != nil {
		return nil, err
	}
	return &Instance{Frag: merged, Records: parent.Records, shared: parent.shared, idx: parent.idx, interior: parent.interior}, nil
}

// joiner incrementally attaches child records into a parent instance: the
// hash-join core shared by Combine and the pipelined executor's Combine
// stages. It reuses (and maintains) the parent instance's persistent join
// index, so probing and indexing cost is proportional to the new data, not
// to the accumulated merged instance.
type joiner struct {
	sch       *schema.Schema
	parent    *Instance
	childFrag *Fragment
	joinElems []string
	touched   map[*xmltree.Node]bool
}

// newJoiner validates the join (Definition 3.7's "specific join
// conditions": every possible schema parent of the child's root must lie
// inside the parent fragment — for multi-parent elements such as XMark's
// item all six regions must be present or some records would be orphaned)
// and indexes the parent's current records.
func newJoiner(sch *schema.Schema, parent *Instance, childFrag *Fragment) (*joiner, error) {
	joinElems := sch.Parents(childFrag.Root)
	if len(joinElems) == 0 {
		return nil, fmt.Errorf("core: cannot combine %q into %q: %q is the schema root", childFrag.Name, parent.Frag.Name, childFrag.Root)
	}
	for _, p := range joinElems {
		if !parent.Frag.Elems[p] {
			return nil, fmt.Errorf("core: cannot combine %q into %q: parent element %q of %q missing", childFrag.Name, parent.Frag.Name, p, childFrag.Root)
		}
	}
	parent.ensureIndex(sch)
	return &joiner{sch: sch, parent: parent, childFrag: childFrag, joinElems: joinElems, touched: make(map[*xmltree.Node]bool)}, nil
}

// adopt replaces an empty parent with inst wholesale, inheriting inst's
// join index so a chained Combine never re-indexes upstream work; a
// non-empty parent appends inst's records instead.
func (j *joiner) adopt(inst *Instance) {
	if len(j.parent.Records) == 0 {
		inst.ensureIndex(j.sch)
		j.parent = inst
		return
	}
	j.appendParent(inst.Records, inst.shared)
}

// appendParent adds streamed parent-side records (pipelined execution).
func (j *joiner) appendParent(recs []*xmltree.Node, shared []bool) {
	j.parent.appendRecords(recs, shared)
}

// attach joins one child record under the parent element instance whose ID
// matches the record's PARENT, resolving copy-on-write on both sides: a
// shared parent record is cloned before mutation, and a shared child record
// is cloned before it is embedded in the parent tree (its origin may still
// be read by another consumer). It reports false when no parent instance
// matches — the caller decides whether that means "buffer and retry"
// (streaming) or "orphan" (batch).
func (j *joiner) attach(rec *xmltree.Node, shared bool) bool {
	var e idxEntry
	var key nodeKey
	found := false
	for _, je := range j.joinElems {
		key = nodeKey{name: je, id: rec.Parent}
		if ent, ok := j.parent.idx[key]; ok {
			e = ent
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if j.parent.sharedRec(e.rec) {
		j.parent.ownRec(e.rec)
		e = j.parent.idx[key]
	}
	child := rec
	if shared {
		child = rec.Clone()
	}
	e.n.AddKid(child)
	j.parent.indexTree(child, e.rec)
	j.touched[e.n] = true
	return true
}

// finish recovers the child order dictated by the XML Schema (Definition
// 3.7) under every parent instance that received children.
func (j *joiner) finish() {
	for p := range j.touched {
		sortKids(j.sch, p)
	}
}

// sortKids stably reorders n's children into schema order.
func sortKids(sch *schema.Schema, n *xmltree.Node) { SortKids(sch, n) }

// SortKids stably reorders n's children into schema order (Definition 3.7)
// using the cached child-order map. Exported for stores that reassemble
// records outside the executor. It avoids sort.SliceStable: the reflective
// swapper and the closure were two heap allocations per touched parent,
// which dominated Combine-heavy exchanges.
func SortKids(sch *schema.Schema, n *xmltree.Node) {
	kids := n.Kids
	if len(kids) < 2 {
		return
	}
	order := sch.ChildOrderMap(n.Name)
	// Appends arrive grouped by producer, so runs are usually already in
	// schema order; detect that before touching anything.
	sorted := true
	for i := 1; i < len(kids); i++ {
		if order[kids[i].Name] < order[kids[i-1].Name] {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if len(kids) <= 32 {
		// Stable insertion sort; equal keys never swap.
		for i := 1; i < len(kids); i++ {
			for j := i; j > 0 && order[kids[j].Name] < order[kids[j-1].Name]; j-- {
				kids[j], kids[j-1] = kids[j-1], kids[j]
			}
		}
		return
	}
	// Stable counting sort: keys are positions among the parent's possible
	// children, so the key space is tiny and one linear pass places every
	// kid in order.
	maxKey := 0
	for _, k := range order {
		if k > maxKey {
			maxKey = k
		}
	}
	counts := make([]int, maxKey+2)
	for _, k := range kids {
		counts[order[k.Name]+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	out := make([]*xmltree.Node, len(kids))
	for _, k := range kids {
		key := order[k.Name]
		out[counts[key]] = k
		counts[key]++
	}
	copy(kids, out)
}

// mergeFragments returns the fragment covering the union of a and b, rooted
// at a's root.
func mergeFragments(sch *schema.Schema, a, b *Fragment) (*Fragment, error) {
	elems := make([]string, 0, len(a.Elems)+len(b.Elems))
	for e := range a.Elems {
		elems = append(elems, e)
	}
	for e := range b.Elems {
		elems = append(elems, e)
	}
	return NewFragment(sch, "", elems)
}

// Split implements Definition 3.8: it projects the input instance into the
// given disjoint fragments, which must partition the input fragment's
// elements. Each projected record keeps the ID/PARENT pair of its root so
// that parent/child relationships dictated by the XML Schema are preserved.
func Split(sch *schema.Schema, in *Instance, parts []*Fragment) ([]*Instance, error) {
	sp, err := newSplitter(in.Frag, parts)
	if err != nil {
		return nil, err
	}
	out := make(map[*Fragment][]*xmltree.Node, len(parts))
	for _, rec := range in.Records {
		if err := sp.extract(rec, out); err != nil {
			return nil, err
		}
	}
	res := make([]*Instance, len(parts))
	for i, p := range parts {
		res[i] = &Instance{Frag: p, Records: out[p]}
	}
	return res, nil
}

// splitter projects records into disjoint fragments: the projection core
// shared by Split and the pipelined executor's Split stages. Partition
// validation happens once at construction; extract then handles records one
// at a time as they stream in.
type splitter struct {
	inFrag *Fragment
	parts  []*Fragment
	partOf map[string]*Fragment
	rootOf map[string]*Fragment
	// arena batches the projected copies: a split touches every node of
	// every record, so per-node heap allocation dominated the stage. The
	// splitter is single-goroutine (one per pipeline op), which is what an
	// arena requires.
	arena xmltree.Arena
}

// newSplitter verifies that parts partition the input fragment's elements.
func newSplitter(inFrag *Fragment, parts []*Fragment) (*splitter, error) {
	seen := make(map[string]string)
	for _, p := range parts {
		for e := range p.Elems {
			if !inFrag.Elems[e] {
				return nil, fmt.Errorf("core: split of %q: part %q references %q outside the input", inFrag.Name, p.Name, e)
			}
			if prev, dup := seen[e]; dup {
				return nil, fmt.Errorf("core: split of %q: element %q in both %q and %q", inFrag.Name, e, prev, p.Name)
			}
			seen[e] = p.Name
		}
	}
	if len(seen) != len(inFrag.Elems) {
		return nil, fmt.Errorf("core: split of %q: parts cover %d of %d elements", inFrag.Name, len(seen), len(inFrag.Elems))
	}
	sp := &splitter{
		inFrag: inFrag,
		parts:  parts,
		partOf: make(map[string]*Fragment),
		rootOf: make(map[string]*Fragment),
	}
	for _, p := range parts {
		sp.rootOf[p.Root] = p
		for e := range p.Elems {
			sp.partOf[e] = p
		}
	}
	return sp, nil
}

// extract projects one input record, appending the projected copies to out
// (keyed by part). Nested subtrees rooted in other parts are emitted before
// the record's own pruned copy, preserving the record order Split has always
// produced. The input record is only read, never mutated, so shared
// (copy-on-write) records need no cloning here — every emitted node is
// fresh.
func (sp *splitter) extract(rec *xmltree.Node, out map[*Fragment][]*xmltree.Node) error {
	var walk func(n *xmltree.Node) *xmltree.Node
	walk = func(n *xmltree.Node) *xmltree.Node {
		cp := sp.arena.New()
		cp.Name, cp.ID, cp.Parent, cp.Text = n.Name, n.ID, n.Parent, n.Text
		myPart := sp.partOf[n.Name]
		for _, k := range n.Kids {
			kc := walk(k)
			if sp.partOf[k.Name] == myPart {
				cp.AddKid(kc)
			} else {
				p := sp.rootOf[k.Name]
				out[p] = append(out[p], kc)
			}
		}
		return cp
	}
	cp := walk(rec)
	p := sp.rootOf[rec.Name]
	if p == nil {
		return fmt.Errorf("core: split of %q: record root %q is not a part root", sp.inFrag.Name, rec.Name)
	}
	out[p] = append(out[p], cp)
	return nil
}

// FromDocument extracts the instance of every fragment of fr from a full
// document (which must conform to fr's schema and carry instance IDs, e.g.
// via AssignIDs). It is the reference implementation of a source Scan and
// is also how documents are loaded in tests.
func FromDocument(fr *Fragmentation, doc *xmltree.Node) (map[string]*Instance, error) {
	whole, err := NewFragment(fr.Schema, "", fr.Schema.Names())
	if err != nil {
		return nil, err
	}
	in := &Instance{Frag: whole, Records: []*xmltree.Node{doc.Clone()}}
	if len(fr.Fragments) == 1 && fr.Fragments[0].SameElems(whole) {
		return map[string]*Instance{fr.Fragments[0].Name: {Frag: fr.Fragments[0], Records: in.Records}}, nil
	}
	parts, err := Split(fr.Schema, in, fr.Fragments)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Instance, len(parts))
	for _, p := range parts {
		out[p.Frag.Name] = p
	}
	return out, nil
}

// Document reassembles a full document from per-fragment instances by
// combining every fragment into the root fragment, in schema pre-order.
// It is the inverse of FromDocument and the reference implementation of
// publishing.
func Document(fr *Fragmentation, insts map[string]*Instance) (*xmltree.Node, error) {
	if len(fr.Fragments) == 0 {
		return nil, fmt.Errorf("core: empty fragmentation")
	}
	cur := insts[fr.Fragments[0].Name]
	if cur == nil {
		return nil, fmt.Errorf("core: missing instance for root fragment %q", fr.Fragments[0].Name)
	}
	cur = &Instance{Frag: fr.Fragments[0], Records: cur.Records}
	// Merge fragments in dependency order: a fragment may be combined only
	// once every possible parent element of its root is present (a
	// multi-parent fragment like XMark's item must wait for all regions).
	remaining := append([]*Fragment(nil), fr.Fragments[1:]...)
	for len(remaining) > 0 {
		merged := -1
		for i, f := range remaining {
			ready := true
			for _, p := range fr.Schema.Parents(f.Root) {
				if !cur.Frag.Elems[p] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			child := insts[f.Name]
			if child == nil {
				return nil, fmt.Errorf("core: missing instance for fragment %q", f.Name)
			}
			var err error
			cur, err = Combine(fr.Schema, cur, child)
			if err != nil {
				return nil, err
			}
			merged = i
			break
		}
		if merged < 0 {
			return nil, fmt.Errorf("core: fragments %v cannot be merged (unsatisfiable parent dependencies)", remaining)
		}
		remaining = append(remaining[:merged], remaining[merged+1:]...)
	}
	if len(cur.Records) != 1 {
		return nil, fmt.Errorf("core: document root fragment has %d records, want 1", len(cur.Records))
	}
	return cur.Records[0], nil
}
