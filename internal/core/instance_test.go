package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

func TestFromDocumentPartition(t *testing.T) {
	sch := customerSchema()
	fr := tFragmentation(t, sch)
	doc := customerDoc()
	insts, err := FromDocument(fr, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 4 {
		t.Fatalf("got %d instances, want 4", len(insts))
	}
	var byRoot = map[string]*Instance{}
	for _, in := range insts {
		byRoot[in.Frag.Root] = in
	}
	if got := byRoot["Customer"].Rows(); got != 1 {
		t.Errorf("Customer rows = %d, want 1", got)
	}
	if got := byRoot["Order"].Rows(); got != 2 {
		t.Errorf("Order rows = %d, want 2", got)
	}
	if got := byRoot["Line"].Rows(); got != 3 {
		t.Errorf("Line rows = %d, want 3", got)
	}
	if got := byRoot["Feature"].Rows(); got != 3 {
		t.Errorf("Feature rows = %d, want 3", got)
	}
	// Projected records keep ID/PARENT and structure within the fragment.
	line := byRoot["Line"].Records[0]
	if line.ID == "" || line.Parent == "" {
		t.Errorf("line record lost ID/PARENT: %+v", line)
	}
	if line.Find("Switch") == nil || line.Find("Feature") != nil {
		t.Errorf("Line_Switch fragment should keep Switch, drop Feature: %s",
			xmltree.Marshal(line, xmltree.WriteOptions{}))
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	sch := customerSchema()
	for _, fr := range []*Fragmentation{
		tFragmentation(t, sch),
		sFragmentation(t, sch),
		MostFragmented(sch),
		LeastFragmented(sch),
		Trivial(sch),
	} {
		doc := customerDoc()
		insts, err := FromDocument(fr, doc)
		if err != nil {
			t.Fatalf("%s: %v", fr.Name, err)
		}
		back, err := Document(fr, insts)
		if err != nil {
			t.Fatalf("%s: %v", fr.Name, err)
		}
		if !xmltree.EqualShape(doc, back) {
			t.Errorf("%s: round trip changed document:\nwant %s\ngot  %s", fr.Name,
				xmltree.Marshal(doc, xmltree.WriteOptions{}),
				xmltree.Marshal(back, xmltree.WriteOptions{}))
		}
	}
}

func TestCombinePaperExample(t *testing.T) {
	// Combine(Customer, Order_Service) of §3.2.
	sch := customerSchema()
	fr := tFragmentation(t, sch)
	insts, err := FromDocument(fr, customerDoc())
	if err != nil {
		t.Fatal(err)
	}
	var cust, ords *Instance
	for _, in := range insts {
		switch in.Frag.Root {
		case "Customer":
			cust = in
		case "Order":
			ords = in
		}
	}
	merged, err := Combine(sch, cust, ords)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Frag.Root != "Customer" || !merged.Frag.Contains("ServiceName") {
		t.Errorf("merged fragment wrong: %v", merged.Frag)
	}
	if merged.Rows() != 1 {
		t.Errorf("merged rows = %d, want 1", merged.Rows())
	}
	rec := merged.Records[0]
	if got := len(rec.FindAll("Order", nil)); got != 2 {
		t.Errorf("combined customer has %d orders, want 2", got)
	}
	// Schema order: CustName before Order.
	if rec.Kids[0].Name != "CustName" {
		t.Errorf("children not in schema order: first kid %q", rec.Kids[0].Name)
	}
}

func TestCombineRejectsNonAdjacent(t *testing.T) {
	sch := customerSchema()
	fr := tFragmentation(t, sch)
	insts, _ := FromDocument(fr, customerDoc())
	var cust, feat *Instance
	for _, in := range insts {
		switch in.Frag.Root {
		case "Customer":
			cust = in
		case "Feature":
			feat = in
		}
	}
	if _, err := Combine(sch, cust, feat); err == nil {
		t.Error("Customer and Feature have no parent/child relationship; combine must fail")
	}
}

func TestCombineOrphan(t *testing.T) {
	sch := customerSchema()
	fr := tFragmentation(t, sch)
	insts, _ := FromDocument(fr, customerDoc())
	var cust, ords *Instance
	for _, in := range insts {
		switch in.Frag.Root {
		case "Customer":
			cust = in
		case "Order":
			ords = in
		}
	}
	ords.Records[0].Parent = "no-such-id"
	if _, err := Combine(sch, cust, ords); err == nil {
		t.Error("orphan record must fail the combine")
	}
}

func TestSplitPartitionChecks(t *testing.T) {
	sch := customerSchema()
	whole, _ := NewFragment(sch, "", sch.Names())
	doc := customerDoc()
	in := &Instance{Frag: whole, Records: []*xmltree.Node{doc}}
	good := tFragmentation(t, sch).Fragments
	if _, err := Split(sch, in, good); err != nil {
		t.Fatalf("valid split failed: %v", err)
	}
	if _, err := Split(sch, in, good[:2]); err == nil {
		t.Error("partial cover must fail")
	}
	dup := append(append([]*Fragment{}, good...), good[3])
	if _, err := Split(sch, in, dup); err == nil {
		t.Error("overlapping parts must fail")
	}
	small, _ := NewFragment(sch, "", []string{"Order", "Service", "ServiceName"})
	if _, err := Split(sch, &Instance{Frag: small}, good); err == nil {
		t.Error("parts outside the input must fail")
	}
}

func TestSplitCombineInverse(t *testing.T) {
	// Split a combined fragment and recombine: same shape.
	sch := customerSchema()
	fr := tFragmentation(t, sch)
	doc := customerDoc()
	insts, _ := FromDocument(fr, doc)
	// Combine everything into the trivial fragment, then split back.
	back, err := Document(fr, insts)
	if err != nil {
		t.Fatal(err)
	}
	insts2, err := FromDocument(fr, back)
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range insts2 {
		orig, _ := FromDocument(fr, customerDoc())
		if in.Rows() != orig[name].Rows() {
			t.Errorf("fragment %q rows changed: %d vs %d", name, in.Rows(), orig[name].Rows())
		}
	}
}

func TestAssignIDsDewey(t *testing.T) {
	doc := &xmltree.Node{Name: "a", Kids: []*xmltree.Node{
		{Name: "b"},
		{Name: "c", Kids: []*xmltree.Node{{Name: "d"}}},
	}}
	AssignIDs(doc)
	if doc.ID != "1" || doc.Parent != "" {
		t.Errorf("root id = %q parent %q", doc.ID, doc.Parent)
	}
	if doc.Kids[1].Kids[0].ID != "1.2.1" || doc.Kids[1].Kids[0].Parent != "1.2" {
		t.Errorf("dewey wrong: %q / %q", doc.Kids[1].Kids[0].ID, doc.Kids[1].Kids[0].Parent)
	}
}

func TestInstanceSizes(t *testing.T) {
	sch := customerSchema()
	fr := tFragmentation(t, sch)
	insts, _ := FromDocument(fr, customerDoc())
	for _, in := range insts {
		if in.SerializedSize() <= 0 {
			t.Errorf("fragment %q has non-positive serialized size", in.Frag.Name)
		}
		if in.Nodes() < in.Rows() {
			t.Errorf("fragment %q Nodes < Rows", in.Frag.Name)
		}
	}
}

// Property: for random schemas, fragmentations and documents,
// FromDocument followed by Document restores the document shape.
func TestFragmentationRoundTripProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 3)
		fr := Random(sch, rng, int(kRaw%10)+1)
		doc := randomDoc(sch, rng, 3)
		insts, err := FromDocument(fr, doc)
		if err != nil {
			return false
		}
		back, err := Document(fr, insts)
		if err != nil {
			return false
		}
		return xmltree.EqualShape(doc, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: element-instance counts are conserved across a split.
func TestSplitConservesNodesProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 2)
		fr := Random(sch, rng, int(kRaw%5)+2)
		doc := randomDoc(sch, rng, 3)
		total := doc.Count()
		insts, err := FromDocument(fr, doc)
		if err != nil {
			return false
		}
		sum := 0
		for _, in := range insts {
			sum += in.Nodes()
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
