package core

import (
	"fmt"
)

// Mapping relates a source fragmentation to a target fragmentation over the
// same XML Schema (Definition 3.5): each target fragment is associated with
// the source fragments it draws elements from.
type Mapping struct {
	// Source and Target are valid fragmentations of the same schema.
	Source, Target *Fragmentation
	// Assoc maps each target fragment name to the source fragments whose
	// element sets intersect it, in source order.
	Assoc map[string][]*Fragment
}

// NewMapping derives the mapping M from T to the powerset of S by element
// overlap. It fails if the fragmentations are over different schemas.
func NewMapping(src, tgt *Fragmentation) (*Mapping, error) {
	if src.Schema != tgt.Schema {
		return nil, fmt.Errorf("core: mapping requires fragmentations of the same schema")
	}
	m := &Mapping{Source: src, Target: tgt, Assoc: make(map[string][]*Fragment, tgt.Len())}
	for _, t := range tgt.Fragments {
		for _, s := range src.Fragments {
			if overlaps(s, t) {
				m.Assoc[t.Name] = append(m.Assoc[t.Name], s)
			}
		}
		if len(m.Assoc[t.Name]) == 0 {
			return nil, fmt.Errorf("core: target fragment %q has no source fragment", t.Name)
		}
	}
	return m, nil
}

func overlaps(a, b *Fragment) bool {
	small, big := a, b
	if len(b.Elems) < len(a.Elems) {
		small, big = b, a
	}
	for e := range small.Elems {
		if big.Elems[e] {
			return true
		}
	}
	return false
}

// Identical reports whether source and target fragmentations consist of
// exactly the same fragments, in which case the data transfer degenerates
// to Scan→Write chains (§5.2).
func (m *Mapping) Identical() bool {
	if m.Source.Len() != m.Target.Len() {
		return false
	}
	for _, t := range m.Target.Fragments {
		ss := m.Assoc[t.Name]
		if len(ss) != 1 || !ss[0].SameElems(t) {
			return false
		}
	}
	return true
}

// Pieces returns, for a source fragment s, the intersections of s with each
// target fragment it overlaps, as fragments (each intersection of two
// connected tree regions is itself connected). The returned slice follows
// target order; if s lies entirely within one target fragment the single
// piece is s itself.
func (m *Mapping) Pieces(s *Fragment) ([]*Fragment, error) {
	var pieces []*Fragment
	for _, t := range m.Target.Fragments {
		var inter []string
		for e := range s.Elems {
			if t.Elems[e] {
				inter = append(inter, e)
			}
		}
		if len(inter) == 0 {
			continue
		}
		if len(inter) == len(s.Elems) {
			return []*Fragment{s}, nil
		}
		p, err := NewFragment(m.Source.Schema, "", inter)
		if err != nil {
			return nil, fmt.Errorf("core: piece of %q for target %q: %w", s.Name, t.Name, err)
		}
		pieces = append(pieces, p)
	}
	return pieces, nil
}
