package core

// Micro-benchmarks for the data-plane primitives, complementing the
// table/figure benches at the repository root.

import (
	"math/rand"
	"testing"
)

func microFixture(b *testing.B) (*Fragmentation, *Fragmentation, map[string]*Instance) {
	b.Helper()
	sch := customerSchema()
	src, err := FromPartition(sch, "S", [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName"},
		{"Line", "TelNo", "Feature", "FeatureID"},
		{"Switch", "SwitchID"},
	})
	if err != nil {
		b.Fatal(err)
	}
	tgt, err := FromPartition(sch, "T", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	doc := randomDoc(sch, rng, 6)
	sources, err := FromDocument(src, doc)
	if err != nil {
		b.Fatal(err)
	}
	return src, tgt, sources
}

func BenchmarkCombine(b *testing.B) {
	src, _, _ := microFixture(b)
	sch := src.Schema
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		doc := randomDoc(sch, rng, 6)
		sources, err := FromDocument(src, doc)
		if err != nil {
			b.Fatal(err)
		}
		var cust, ord *Instance
		for _, in := range sources {
			switch in.Frag.Root {
			case "Customer":
				cust = in
			case "Order":
				ord = in
			}
		}
		b.StartTimer()
		if _, err := Combine(sch, cust, ord); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplit(b *testing.B) {
	src, _, _ := microFixture(b)
	sch := src.Schema
	rng := rand.New(rand.NewSource(3))
	doc := randomDoc(sch, rng, 6)
	whole, err := NewFragment(sch, "", sch.Names())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := &Instance{Frag: whole}
		inst.Records = append(inst.Records, doc.Clone())
		if _, err := Split(sch, inst, src.Fragments); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProgramGeneration(b *testing.B) {
	src, tgt, _ := microFixture(b)
	m, err := NewMapping(src, tgt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CanonicalProgram(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteProgram(b *testing.B) {
	src, tgt, _ := microFixture(b)
	m, _ := NewMapping(src, tgt)
	g, err := CanonicalProgram(m)
	if err != nil {
		b.Fatal(err)
	}
	sch := src.Schema
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sources, err := FromDocument(src, randomDoc(sch, rng, 6))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Execute(g, sch, sources); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateInstance(b *testing.B) {
	src, _, sources := microFixture(b)
	sch := src.Schema
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range sources {
			if err := ValidateInstance(sch, in); err != nil {
				b.Fatal(err)
			}
		}
	}
}
