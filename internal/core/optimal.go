package core

import (
	"fmt"
	"math"
	"strings"
)

// PlacementResult is a complete placement together with its cost under the
// model used to search.
type PlacementResult struct {
	Assign Assignment
	Cost   float64
}

// maxFreeOps bounds the exhaustive placement search; beyond this many
// unconstrained operations the enumeration is declared infeasible (the
// paper saw the same wall for schemas above 40 nodes, §4.3).
const maxFreeOps = 26

// MinMaxPlacement enumerates every monotone placement of g (Scans pinned to
// the source, Writes to the target, no target→source edge) and returns the
// least and most expensive complete placements. The worst case is what
// Table 5 compares optimal and greedy against.
func MinMaxPlacement(g *Graph, model *Model) (best, worst PlacementResult, err error) {
	free := 0
	for _, op := range g.Ops {
		if op.Kind != OpScan && op.Kind != OpWrite {
			free++
		}
	}
	if free > maxFreeOps {
		return best, worst, fmt.Errorf("core: %d free operations exceed exhaustive placement limit %d; use GreedyPlacement", free, maxFreeOps)
	}
	a := NewAssignment(g)
	best.Cost = math.Inf(1)
	worst.Cost = math.Inf(-1)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if i == len(g.Ops) {
			if acc < best.Cost {
				best.Cost, best.Assign = acc, a.Clone()
			}
			if acc > worst.Cost && !math.IsInf(acc, 1) {
				worst.Cost, worst.Assign = acc, a.Clone()
			}
			return
		}
		op := g.Ops[i]
		try := func(loc Location) {
			// Monotonicity: an op may run at the source only if every
			// producer feeding it runs at the source.
			if loc == LocSource {
				for _, e := range g.In(op) {
					if a[e.From.ID] == LocTarget {
						return
					}
				}
			}
			a[op.ID] = loc
			delta := model.OpCost(g, op, loc)
			for _, e := range g.In(op) {
				delta += model.EdgeCost(e, a)
			}
			rec(i+1, acc+delta)
			a[op.ID] = LocUnassigned
		}
		switch op.Kind {
		case OpScan:
			try(LocSource)
		case OpWrite:
			try(LocTarget)
		default:
			try(LocSource)
			try(LocTarget)
		}
	}
	rec(0, 0)
	if math.IsInf(best.Cost, 1) {
		return best, worst, fmt.Errorf("core: no feasible placement (all placements have infinite cost)")
	}
	return best, worst, nil
}

// CostBasedOptim is the literal Algorithm 1 of §4.2: starting from a
// program whose Writes are pinned to the target, repeatedly branch on an
// unassigned operation OP, place it at the source, pull everything upstream
// of OP to the source and push everything downstream of OP to the target,
// and keep the cheapest completely assigned program seen. Duplicate partial
// assignments are pruned with a seen-set, which plays the role of the
// paper's footnote-1 marking.
func CostBasedOptim(g *Graph, model *Model) (PlacementResult, error) {
	type state struct{ a Assignment }
	init := NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == OpWrite {
			init[op.ID] = LocTarget
		}
	}
	best := PlacementResult{Cost: math.Inf(1)}
	open := []state{{a: init}}
	seen := map[string]bool{key(init): true}
	for len(open) > 0 {
		st := open[len(open)-1]
		open = open[:len(open)-1]
		for _, op := range g.Ops {
			if st.a[op.ID] != LocUnassigned {
				continue
			}
			a := st.a.Clone()
			a[op.ID] = LocSource
			assignUpstream(g, op, a)
			assignDownstream(g, op, a)
			if a.Complete() {
				if !a.Monotone(g) {
					continue
				}
				if c, err := model.Cost(g, a); err == nil && c < best.Cost {
					best.Cost, best.Assign = c, a
				}
				continue
			}
			if k := key(a); !seen[k] {
				seen[k] = true
				open = append(open, state{a: a})
			}
		}
	}
	if math.IsInf(best.Cost, 1) {
		return best, fmt.Errorf("core: Cost_Based_Optim found no feasible program")
	}
	return best, nil
}

func key(a Assignment) string {
	var b strings.Builder
	for _, l := range a {
		b.WriteByte(byte('0' + int(l)))
	}
	return b.String()
}

// assignUpstream places every operation on a path from a Scan to op at the
// source (Algorithm 1, lines 11–12).
func assignUpstream(g *Graph, op *Op, a Assignment) {
	for _, e := range g.In(op) {
		if a[e.From.ID] != LocSource {
			a[e.From.ID] = LocSource
			assignUpstream(g, e.From, a)
		}
	}
}

// assignDownstream places every operation on a path from op to a Write at
// the target (Algorithm 1, lines 9–10).
func assignDownstream(g *Graph, op *Op, a Assignment) {
	for _, e := range g.Out(op) {
		if a[e.To.ID] != LocTarget {
			a[e.To.ID] = LocTarget
			assignDownstream(g, e.To, a)
		}
	}
}

// OptimalResult pairs the winning program with its placement.
type OptimalResult struct {
	Program *Graph
	PlacementResult
	// Considered is the number of programs enumerated.
	Considered int
}

// Optimal runs the full §4.2 search: enumerate combine orderings (bounded
// by opts), run exhaustive placement on each, and return the cheapest
// program overall.
func Optimal(m *Mapping, model *Model, opts GenOptions) (OptimalResult, error) {
	programs, err := GeneratePrograms(m, opts)
	if err != nil {
		return OptimalResult{}, err
	}
	res := OptimalResult{PlacementResult: PlacementResult{Cost: math.Inf(1)}, Considered: len(programs)}
	for _, g := range programs {
		best, _, err := MinMaxPlacement(g, model)
		if err != nil {
			return OptimalResult{}, err
		}
		if best.Cost < res.Cost {
			res.Program = g
			res.PlacementResult = best
		}
	}
	if res.Program == nil {
		return res, fmt.Errorf("core: no program generated")
	}
	return res, nil
}

// WorstCase runs the same search as Optimal but returns the most expensive
// program/placement in the space, used to size the optimization window in
// Table 5.
func WorstCase(m *Mapping, model *Model, opts GenOptions) (OptimalResult, error) {
	programs, err := GeneratePrograms(m, opts)
	if err != nil {
		return OptimalResult{}, err
	}
	res := OptimalResult{PlacementResult: PlacementResult{Cost: math.Inf(-1)}, Considered: len(programs)}
	for _, g := range programs {
		_, worst, err := MinMaxPlacement(g, model)
		if err != nil {
			return OptimalResult{}, err
		}
		if worst.Cost > res.Cost {
			res.Program = g
			res.PlacementResult = worst
		}
	}
	if res.Program == nil {
		return res, fmt.Errorf("core: no program generated")
	}
	return res, nil
}
