package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"xdx/internal/schema"
)

func modelFor(sch *schema.Schema, srcSpeed, tgtSpeed float64) *Model {
	return NewModel(testProvider(sch, srcSpeed, tgtSpeed))
}

func TestCostModelBasics(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, _ := CanonicalProgram(m)
	model := modelFor(sch, 1, 1)
	a := NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == OpWrite {
			a[op.ID] = LocTarget
		} else {
			a[op.ID] = LocSource
		}
	}
	c, err := model.Cost(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || math.IsInf(c, 0) {
		t.Fatalf("cost = %v", c)
	}
	br, err := model.Breakdown(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(br.Computation+br.Communication-c) > 1e-9 {
		t.Errorf("breakdown %v does not sum to cost %v", br, c)
	}
	if br.Communication <= 0 {
		t.Errorf("all-source placement must ship fragments: %+v", br)
	}
	// Incomplete and non-monotone assignments are rejected.
	if _, err := model.Cost(g, NewAssignment(g)); err == nil {
		t.Error("incomplete assignment must fail")
	}
	bad := a.Clone()
	// Find a Write and its producer; put producer at target, a consumer of
	// the producer at source would be needed — instead invert an edge
	// directly.
	for _, e := range g.Edges {
		if e.From.Kind != OpScan {
			bad[e.From.ID] = LocTarget
			bad[e.To.ID] = LocSource
			break
		}
	}
	if _, err := model.Cost(g, bad); err == nil {
		t.Error("non-monotone assignment must fail")
	}
}

func TestCommCostOnlyOnCrossEdges(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(tFragmentation(t, sch), tFragmentation(t, sch))
	g, _ := CanonicalProgram(m)
	model := modelFor(sch, 1, 1)
	a := NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == OpScan {
			a[op.ID] = LocSource
		} else {
			a[op.ID] = LocTarget
		}
	}
	br, _ := model.Breakdown(g, a)
	// Every Scan->Write edge crosses; comm equals sum of fragment sizes.
	var want float64
	for _, e := range g.Edges {
		want += model.Provider.ShipBytes(e.Frag)
	}
	if math.Abs(br.Communication-want) > 1e-9 {
		t.Errorf("comm = %v, want %v", br.Communication, want)
	}
}

func TestMinMaxPlacementEqualSystems(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, _ := CanonicalProgram(m)
	model := modelFor(sch, 1, 1)
	best, worst, err := MinMaxPlacement(g, model)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost > worst.Cost {
		t.Fatalf("best %v > worst %v", best.Cost, worst.Cost)
	}
	if !best.Assign.Complete() || !best.Assign.Monotone(g) {
		t.Fatal("best assignment malformed")
	}
	// Sanity: best is no worse than the all-source baseline.
	a := NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == OpWrite {
			a[op.ID] = LocTarget
		} else {
			a[op.ID] = LocSource
		}
	}
	base, _ := model.Cost(g, a)
	if best.Cost > base+1e-9 {
		t.Errorf("best %v worse than all-source %v", best.Cost, base)
	}
}

func TestFastTargetAttractsCombines(t *testing.T) {
	// Figure 11: with a 10x faster target, the optimizer places combines at
	// the target.
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), Trivial(sch))
	g, _ := CanonicalProgram(m)
	model := modelFor(sch, 1, 10)
	best, _, err := MinMaxPlacement(g, model)
	if err != nil {
		t.Fatal(err)
	}
	combinesAtTarget := 0
	for _, op := range g.Ops {
		if op.Kind == OpCombine && best.Assign[op.ID] == LocTarget {
			combinesAtTarget++
		}
	}
	if combinesAtTarget == 0 {
		t.Errorf("fast target should attract combines:\n%s", g)
	}
}

func TestDumbClientForcesSourceCombines(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), Trivial(sch))
	g, _ := CanonicalProgram(m)
	p := testProvider(sch, 1, 100)
	p.TargetCombines = false // dumb client despite being fast
	model := NewModel(p)
	best, _, err := MinMaxPlacement(g, model)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range g.Ops {
		if op.Kind == OpCombine && best.Assign[op.ID] == LocTarget {
			t.Fatalf("combine placed at dumb client:\n%s", g)
		}
	}
	if math.IsInf(best.Cost, 0) {
		t.Fatal("best cost infinite")
	}
}

func TestCostBasedOptimMatchesEnumeration(t *testing.T) {
	// The literal Algorithm 1 must find the same optimal cost as the
	// canonical monotone-cut enumeration.
	cases := []struct {
		src, tgt func(*testing.T, *schema.Schema) *Fragmentation
		ss, ts   float64
	}{
		{sFragmentation, tFragmentation, 1, 1},
		{sFragmentation, tFragmentation, 5, 1},
		{sFragmentation, tFragmentation, 1, 5},
		{tFragmentation, sFragmentation, 1, 2},
	}
	sch := customerSchema()
	for i, c := range cases {
		m, err := NewMapping(c.src(t, sch), c.tgt(t, sch))
		if err != nil {
			t.Fatal(err)
		}
		g, err := CanonicalProgram(m)
		if err != nil {
			t.Fatal(err)
		}
		model := modelFor(sch, c.ss, c.ts)
		best, _, err := MinMaxPlacement(g, model)
		if err != nil {
			t.Fatal(err)
		}
		alg1, err := CostBasedOptim(g, model)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(best.Cost-alg1.Cost) > 1e-6 {
			t.Errorf("case %d: enumeration %v != Algorithm 1 %v", i, best.Cost, alg1.Cost)
		}
	}
}

func TestCostBasedOptimRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 2)
		src := Random(sch, rng, rng.Intn(5)+1)
		tgt := Random(sch, rng, rng.Intn(5)+1)
		m, err := NewMapping(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		g, err := CanonicalProgram(m)
		if err != nil {
			t.Fatal(err)
		}
		model := modelFor(sch, float64(rng.Intn(5)+1), float64(rng.Intn(5)+1))
		best, _, err := MinMaxPlacement(g, model)
		if err != nil {
			t.Fatal(err)
		}
		alg1, err := CostBasedOptim(g, model)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(best.Cost-alg1.Cost) > 1e-6 {
			t.Errorf("seed %d: enumeration %v != Algorithm 1 %v\n%s", seed, best.Cost, alg1.Cost, g)
		}
	}
}

func TestGreedyPlacementNearOptimal(t *testing.T) {
	// Table 5 finds the greedy within ~1% of optimal; allow a loose bound
	// here, but require validity and sanity.
	sch := customerSchema()
	for _, speeds := range [][2]float64{{5, 1}, {2, 1}, {1, 1}, {1, 2}, {1, 5}} {
		m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
		model := modelFor(sch, speeds[0], speeds[1])
		opt, err := Optimal(m, model, GenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gr, err := Greedy(m, model)
		if err != nil {
			t.Fatal(err)
		}
		if gr.Cost < opt.Cost-1e-9 {
			t.Errorf("speeds %v: greedy %v beat optimal %v", speeds, gr.Cost, opt.Cost)
		}
		if gr.Cost > opt.Cost*1.5 {
			t.Errorf("speeds %v: greedy %v far from optimal %v", speeds, gr.Cost, opt.Cost)
		}
	}
}

func TestWorstCaseAtLeastOptimal(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	model := modelFor(sch, 5, 1)
	opt, err := Optimal(m, model, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := WorstCase(m, model, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if worst.Cost < opt.Cost {
		t.Errorf("worst %v < optimal %v", worst.Cost, opt.Cost)
	}
}

func TestGreedyPlacementRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 3)
		src := Random(sch, rng, rng.Intn(8)+1)
		tgt := Random(sch, rng, rng.Intn(8)+1)
		m, err := NewMapping(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		model := modelFor(sch, float64(rng.Intn(5)+1), float64(rng.Intn(5)+1))
		gr, err := Greedy(m, model)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !gr.Assign.Complete() || !gr.Assign.Monotone(gr.Program) {
			t.Fatalf("seed %d: greedy placement malformed", seed)
		}
		best, _, err := MinMaxPlacement(gr.Program, model)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if gr.Cost < best.Cost-1e-9 {
			t.Errorf("seed %d: greedy %v below optimal %v for its own program", seed, gr.Cost, best.Cost)
		}
	}
}

func TestMinMaxPlacementRefusesHugeSearch(t *testing.T) {
	// Beyond maxFreeOps the exhaustive search must refuse (the paper's
	// ">40 nodes takes too long" wall) while greedy still succeeds.
	rng := rand.New(rand.NewSource(1))
	sch := schema.Balanced(3, 4) // 85 nodes
	src := Random(sch, rng, 25)
	tgt := Random(sch, rng, 25)
	m, err := NewMapping(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	free := 0
	for _, op := range g.Ops {
		if op.Kind != OpScan && op.Kind != OpWrite {
			free++
		}
	}
	if free <= maxFreeOps {
		t.Skipf("setup produced only %d free ops", free)
	}
	model := modelFor(sch, 1, 1)
	if _, _, err := MinMaxPlacement(g, model); err == nil {
		t.Error("exhaustive placement should refuse oversized programs")
	}
	if _, err := GreedyPlacement(g, model); err != nil {
		t.Errorf("greedy should still handle it: %v", err)
	}
}

func TestModelExplain(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, _ := CanonicalProgram(m)
	model := modelFor(sch, 1, 1)
	best, _, err := MinMaxPlacement(g, model)
	if err != nil {
		t.Fatal(err)
	}
	out, err := model.Explain(g, best.Assign)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"@S", "@T", "comp=", "ship ", "comm=", "total="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	if _, err := model.Explain(g, NewAssignment(g)); err == nil {
		t.Error("incomplete assignment must fail")
	}
}

func TestUniformStats(t *testing.T) {
	c, b := UniformStats([]string{"a", "b"}, 3, 7)
	if c["a"] != 3 || b["b"] != 7 {
		t.Errorf("UniformStats wrong: %v %v", c, b)
	}
}

func TestStatsProviderInfinities(t *testing.T) {
	p := testProvider(customerSchema(), 0, 1)
	f, _ := NewFragment(customerSchema(), "", []string{"Customer", "CustName"})
	if !math.IsInf(p.CompCost(OpScan, nil, f, LocSource), 1) {
		t.Error("zero speed must cost +Inf")
	}
	p2 := testProvider(customerSchema(), 1, 1)
	p2.TargetCombines = false
	if !math.IsInf(p2.CompCost(OpCombine, []*Fragment{f}, nil, LocTarget), 1) {
		t.Error("dumb client combine must cost +Inf")
	}
}
