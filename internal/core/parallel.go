package core

import (
	"fmt"
	"sync"
	"time"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// ExecuteParallel runs a data-transfer program with independent operation
// chains executing concurrently — the parallelism opportunity §5.2 notes
// for Scan(f)→Write(f) programs but did not pursue. Semantics match
// Execute; only wall-clock behaviour differs.
func ExecuteParallel(g *Graph, sch *schema.Schema, sources map[string]*Instance) (*ExecResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	type opResult struct {
		out map[string]*Instance
		err error
	}
	done := make([]chan struct{}, len(g.Ops))
	results := make([]opResult, len(g.Ops))
	for i := range done {
		done[i] = make(chan struct{})
	}
	res := &ExecResult{Written: make(map[string]*Instance)}
	var mu sync.Mutex // guards res.Written
	// traces[opID] is written only by op's own goroutine (disjoint slots, no
	// lock needed) and collected in topological order after the wait, so
	// SummarizeTraces output is stable across runs.
	traces := make([]OpTrace, len(g.Ops))
	counts := consumerCounts(g)

	input := func(op *Op, e *Edge) (*Instance, error) {
		<-done[e.From.ID]
		r := results[e.From.ID]
		if r.err != nil {
			return nil, fmt.Errorf("core: parallel: upstream %s failed: %w", e.From, r.err)
		}
		in := r.out[e.Frag.Name]
		if in == nil {
			return nil, fmt.Errorf("core: parallel: producer %s has no output %q", e.From, e.Frag.Name)
		}
		if counts[e.From.ID][e.Frag] > 1 {
			in = in.Share()
		}
		return in, nil
	}

	var wg sync.WaitGroup
	for _, op := range g.Ops {
		op := op
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[op.ID])
			start := time.Now()
			out := make(map[string]*Instance, 1)
			rows := 0
			var err error
			switch op.Kind {
			case OpScan:
				src := sources[op.Out.Name]
				if src == nil {
					err = fmt.Errorf("core: parallel: no source instance for %q", op.Out.Name)
					break
				}
				inst := &Instance{Frag: op.Out, Records: src.Records}
				out[op.Out.Name] = inst
				rows = inst.Rows()
			case OpCombine:
				ins := g.In(op)
				var a, b *Instance
				if a, err = input(op, ins[0]); err != nil {
					break
				}
				if b, err = input(op, ins[1]); err != nil {
					break
				}
				if !combinableFrags(sch, a.Frag, b.Frag) {
					a, b = b, a
				}
				var merged *Instance
				if merged, err = Combine(sch, a, b); err != nil {
					break
				}
				merged.Frag = op.Out
				out[op.Out.Name] = merged
				rows = merged.Rows()
			case OpSplit:
				var in *Instance
				if in, err = input(op, g.In(op)[0]); err != nil {
					break
				}
				var parts []*Instance
				if parts, err = Split(sch, in, op.Parts); err != nil {
					break
				}
				for _, p := range parts {
					out[p.Frag.Name] = p
					rows += p.Rows()
				}
			case OpWrite:
				var in *Instance
				if in, err = input(op, g.In(op)[0]); err != nil {
					break
				}
				mu.Lock()
				res.Written[op.Out.Name] = &Instance{Frag: op.Out, Records: in.Records}
				mu.Unlock()
				rows = len(in.Records)
			}
			results[op.ID] = opResult{out: out, err: err}
			if err == nil {
				traces[op.ID] = OpTrace{Op: op, Duration: time.Since(start), OutRows: rows}
			}
		}()
	}
	wg.Wait()
	for _, op := range g.Ops {
		if results[op.ID].err != nil {
			return nil, results[op.ID].err
		}
	}
	for _, op := range g.Topo() {
		res.Traces = append(res.Traces, traces[op.ID])
	}
	return res, nil
}

// EqualWritten reports whether two execution results wrote the same
// fragment instances (same rows per fragment, shape-equal records); used
// to verify that parallel execution is semantics-preserving.
func EqualWritten(a, b *ExecResult) bool {
	if len(a.Written) != len(b.Written) {
		return false
	}
	for name, ia := range a.Written {
		ib := b.Written[name]
		if ib == nil || ia.Rows() != ib.Rows() {
			return false
		}
		for i := range ia.Records {
			if !xmltree.EqualShape(ia.Records[i], ib.Records[i]) {
				return false
			}
		}
	}
	return true
}
