package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// This file implements the pipelined streaming executor: every operation of
// a data-transfer program runs as its own stage, connected to its consumers
// by bounded channels, so a Combine starts probing its join index while the
// upstream Scan or Split is still producing, and independent chains overlap
// freely. §5.2 of the paper notes this opportunity ("execute operations on
// different fragments in parallel, overlapping communication with
// computation") without pursuing it.
//
// Data flows as record batches (Scan, Split) or whole-instance handoffs
// (Combine, whose output is only complete once every child has attached).
// A handoff carries the instance's incremental join index with it, so a
// chain of k Combines indexes each node exactly once instead of re-walking
// the growing merged instance at every step. Multi-consumer outputs are
// distributed as copy-on-write views instead of deep copies.

const (
	// pipeBatch is the number of records per streamed batch.
	pipeBatch = 64
	// pipeDepth is the buffering of each inter-stage channel, in batches.
	pipeDepth = 4
)

// pipeMsg is one unit of inter-stage flow: either a record batch (recs with
// optional copy-on-write flags) or a whole-instance handoff (inst, which
// carries the join index of a finished Combine).
type pipeMsg struct {
	recs   []*xmltree.Node
	shared []bool
	inst   *Instance
}

// records flattens either form into (records, shared flags).
func (m pipeMsg) records() ([]*xmltree.Node, []bool) {
	if m.inst != nil {
		return m.inst.Records, m.inst.shared
	}
	return m.recs, m.shared
}

// pipeOut is the fan-out of one (op, fragment) output: the channels of its
// local consumers, the cross-edge destination (an outbound accumulator, or
// the run's emit hook addressed by key/frag), and the total consumer count
// deciding copy-on-write.
type pipeOut struct {
	local []chan pipeMsg
	outb  *Instance
	cross bool
	key   string
	frag  *Fragment
	total int
}

// pipeRun is one pipelined execution: the program, the environment hooks,
// the channel plumbing, and the first-error/cancellation state.
type pipeRun struct {
	g   *Graph
	sch *schema.Schema
	// runs reports whether an op executes in this process (always true for
	// ExecutePipelined; location-filtered for ExecuteSlicePipelined).
	runs func(op *Op) bool
	// scan supplies the source instance for a Scan op.
	scan func(op *Op) (*Instance, error)
	// write consumes the instance delivered to a Write op.
	write func(op *Op, inst *Instance) error
	// feeds maps inbound cross-edges to their received instances.
	feeds map[*Edge]*Instance
	// outbound maps cross-edge keys to pre-created accumulator instances.
	outbound map[string]*Instance
	// emitOut, when set, streams outbound cross-edge records out of the
	// process as they are produced; outbound accumulators are not used.
	emitOut func(key string, frag *Fragment, recs []*xmltree.Node) error

	chans  map[*Edge]chan pipeMsg
	outs   []map[*Fragment]*pipeOut
	traces []OpTrace

	done chan struct{}
	once sync.Once
	err  error
}

// fail records the first error and cancels every stage.
func (r *pipeRun) fail(err error) {
	r.once.Do(func() {
		r.err = err
		close(r.done)
	})
}

// aborted reports whether the run has been cancelled.
func (r *pipeRun) aborted() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// send delivers m to ch unless the run is cancelled.
func (r *pipeRun) send(ch chan pipeMsg, m pipeMsg) bool {
	select {
	case ch <- m:
		return true
	case <-r.done:
		return false
	}
}

// recv receives from ch; ok is false when ch is closed or the run is
// cancelled (callers distinguish via aborted).
func (r *pipeRun) recv(ch chan pipeMsg) (pipeMsg, bool) {
	select {
	case m, ok := <-ch:
		return m, ok
	case <-r.done:
		return pipeMsg{}, false
	}
}

// emit distributes one produced message to every consumer of an output.
// With a single consumer the message passes through untouched — in
// particular a Combine handoff keeps its join index, the chained-combine
// fast path. With several consumers each local one receives a copy-on-write
// view, and the records go into the outbound accumulator as-is (outbound
// data is only serialized, never mutated; local consumers clone before
// mutating shared records).
func (r *pipeRun) emit(po *pipeOut, m pipeMsg) bool {
	if po == nil {
		return true // output has no consumers
	}
	if po.total == 1 {
		if po.cross {
			return r.ship(po, m)
		}
		return r.send(po.local[0], m)
	}
	if po.cross && !r.ship(po, m) {
		return false
	}
	if m.inst != nil {
		for _, ch := range po.local {
			if !r.send(ch, pipeMsg{inst: m.inst.Share()}) {
				return false
			}
		}
		return true
	}
	shared := make([]bool, len(m.recs))
	for i := range shared {
		shared[i] = true
	}
	for _, ch := range po.local {
		if !r.send(ch, pipeMsg{recs: m.recs, shared: shared}) {
			return false
		}
	}
	return true
}

// ship delivers one produced message to a cross-edge destination: the emit
// hook when the run streams outbound data, the pre-created accumulator
// otherwise.
func (r *pipeRun) ship(po *pipeOut, m pipeMsg) bool {
	recs, _ := m.records()
	if r.emitOut != nil {
		if err := r.emitOut(po.key, po.frag, recs); err != nil {
			r.fail(err)
			return false
		}
		return true
	}
	po.outb.Records = append(po.outb.Records, recs...)
	return true
}

// run wires the channels, launches one goroutine per local op (plus feeders
// for inbound cross-edges), waits for the pipeline to drain, and returns
// per-op traces in topological order.
func (r *pipeRun) run() ([]OpTrace, error) {
	r.done = make(chan struct{})
	r.chans = make(map[*Edge]chan pipeMsg)
	for _, e := range r.g.Edges {
		if r.runs(e.To) {
			r.chans[e] = make(chan pipeMsg, pipeDepth)
		}
	}
	r.outs = make([]map[*Fragment]*pipeOut, len(r.g.Ops))
	for _, op := range r.g.Ops {
		if !r.runs(op) {
			continue
		}
		for _, e := range r.g.Out(op) {
			m := r.outs[op.ID]
			if m == nil {
				m = make(map[*Fragment]*pipeOut)
				r.outs[op.ID] = m
			}
			po := m[e.Frag]
			if po == nil {
				po = &pipeOut{}
				m[e.Frag] = po
			}
			po.total++
			if r.runs(e.To) {
				po.local = append(po.local, r.chans[e])
			} else {
				po.cross = true
				po.key, po.frag = EdgeKey(e), e.Frag
				po.outb = r.outbound[EdgeKey(e)]
			}
		}
	}
	r.traces = make([]OpTrace, len(r.g.Ops))

	var wg sync.WaitGroup
	for e, inst := range r.feeds {
		wg.Add(1)
		go func(ch chan pipeMsg, inst *Instance) {
			defer wg.Done()
			defer close(ch)
			r.send(ch, pipeMsg{inst: inst})
		}(r.chans[e], inst)
	}
	for _, op := range r.g.Ops {
		if !r.runs(op) {
			continue
		}
		wg.Add(1)
		go func(op *Op) {
			defer wg.Done()
			r.runOp(op)
		}(op)
	}
	wg.Wait()
	if r.err != nil {
		return nil, r.err
	}
	var traces []OpTrace
	for _, op := range r.g.Topo() {
		if r.runs(op) {
			traces = append(traces, r.traces[op.ID])
		}
	}
	return traces, nil
}

// runOp executes one stage and records its trace; output channels close
// when the stage returns, ending downstream input streams.
func (r *pipeRun) runOp(op *Op) {
	defer func() {
		for _, po := range r.outs[op.ID] {
			for _, ch := range po.local {
				close(ch)
			}
		}
	}()
	start := time.Now()
	var rows int
	var ok bool
	switch op.Kind {
	case OpScan:
		rows, ok = r.runScan(op)
	case OpCombine:
		rows, ok = r.runCombine(op)
	case OpSplit:
		rows, ok = r.runSplit(op)
	case OpWrite:
		rows, ok = r.runWrite(op)
	}
	if ok {
		r.traces[op.ID] = OpTrace{Op: op, Duration: time.Since(start), OutRows: rows}
	}
}

// runScan streams the source instance downstream in batches.
func (r *pipeRun) runScan(op *Op) (int, bool) {
	src, err := r.scan(op)
	if err != nil {
		r.fail(err)
		return 0, false
	}
	recs := src.Records
	po := r.outs[op.ID][op.Out]
	for i := 0; i < len(recs); i += pipeBatch {
		if !r.emit(po, pipeMsg{recs: recs[i:min(i+pipeBatch, len(recs))]}) {
			return 0, false
		}
	}
	return len(recs), true
}

// pendingChild is a child record buffered until its parent record arrives.
type pendingChild struct {
	rec    *xmltree.Node
	shared bool
}

// runCombine drains both inputs concurrently, attaching child records the
// moment their parent element instance is present and buffering the rest.
// Buffered children retry in FIFO order whenever parent-side data arrives,
// which preserves the per-parent attach order of the batch Combine: two
// children of the same parent either both hit or both miss at any instant,
// so arrival order within the child stream is never reordered under a
// parent. A child still unattached when both inputs close is an orphan,
// exactly as in the batch operator.
func (r *pipeRun) runCombine(op *Op) (int, bool) {
	ins := r.g.In(op)
	pe, ce := ins[0], ins[1]
	// Decide direction structurally, as the batch executors do: the parent
	// side is the one whose fragment contains every possible parent of the
	// other side's root.
	if !combinableFrags(r.sch, pe.Frag, ce.Frag) {
		pe, ce = ce, pe
	}
	j, err := newJoiner(r.sch, &Instance{Frag: pe.Frag}, ce.Frag)
	if err != nil {
		r.fail(fmt.Errorf("core: pipeline: %s: %w", op, err))
		return 0, false
	}
	var pending []pendingChild
	retry := func() {
		keep := pending[:0]
		for _, pc := range pending {
			if !j.attach(pc.rec, pc.shared) {
				keep = append(keep, pc)
			}
		}
		pending = keep
	}
	pch, cch := r.chans[pe], r.chans[ce]
	for pch != nil || cch != nil {
		select {
		case <-r.done:
			return 0, false
		case m, ok := <-pch:
			if !ok {
				pch = nil
				continue
			}
			if m.inst != nil {
				j.adopt(m.inst)
			} else {
				j.appendParent(m.recs, m.shared)
			}
			retry()
		case m, ok := <-cch:
			if !ok {
				cch = nil
				continue
			}
			recs, shared := m.records()
			for i, rec := range recs {
				sh := shared != nil && shared[i]
				if !j.attach(rec, sh) {
					pending = append(pending, pendingChild{rec: rec, shared: sh})
				}
			}
		}
	}
	if r.aborted() {
		return 0, false
	}
	if len(pending) > 0 {
		pc := pending[0]
		r.fail(fmt.Errorf("core: pipeline: %s: combine %q into %q: orphan record %s (parent %s not found)",
			op, ce.Frag.Name, pe.Frag.Name, pc.rec.ID, pc.rec.Parent))
		return 0, false
	}
	j.finish()
	p := j.parent
	// The combine's planned output fragment is authoritative; the handoff
	// keeps the incrementally built join index for downstream Combines.
	merged := &Instance{Frag: op.Out, Records: p.Records, shared: p.shared, idx: p.idx, interior: p.interior}
	if !r.emit(r.outs[op.ID][op.Out], pipeMsg{inst: merged}) {
		return 0, false
	}
	return len(merged.Records), true
}

// runSplit projects each arriving batch into the op's parts and streams the
// projections onward immediately.
func (r *pipeRun) runSplit(op *Op) (int, bool) {
	sp, err := newSplitter(op.Out, op.Parts)
	if err != nil {
		r.fail(fmt.Errorf("core: pipeline: %s: %w", op, err))
		return 0, false
	}
	ch := r.chans[r.g.In(op)[0]]
	rows := 0
	for {
		m, ok := r.recv(ch)
		if !ok {
			break
		}
		recs, _ := m.records()
		out := make(map[*Fragment][]*xmltree.Node, len(op.Parts))
		for _, rec := range recs {
			if err := sp.extract(rec, out); err != nil {
				r.fail(fmt.Errorf("core: pipeline: %s: %w", op, err))
				return 0, false
			}
		}
		for _, p := range op.Parts {
			if len(out[p]) == 0 {
				continue
			}
			rows += len(out[p])
			if !r.emit(r.outs[op.ID][p], pipeMsg{recs: out[p]}) {
				return 0, false
			}
		}
	}
	if r.aborted() {
		return 0, false
	}
	return rows, true
}

// runWrite accumulates the input stream and delivers the final instance.
func (r *pipeRun) runWrite(op *Op) (int, bool) {
	ch := r.chans[r.g.In(op)[0]]
	var recs []*xmltree.Node
	for {
		m, ok := r.recv(ch)
		if !ok {
			break
		}
		rs, _ := m.records()
		recs = append(recs, rs...)
	}
	if r.aborted() {
		return 0, false
	}
	if err := r.write(op, &Instance{Frag: op.Out, Records: recs}); err != nil {
		r.fail(err)
		return 0, false
	}
	return len(recs), true
}

// ExecutePipelined runs a data-transfer program with every operation as a
// streaming stage. Semantics match Execute — same written instances (up to
// the shared mutation of source records that Execute also performs), same
// error conditions — only scheduling differs: downstream ops consume record
// batches while upstream ops still produce.
func ExecutePipelined(g *Graph, sch *schema.Schema, sources map[string]*Instance) (*ExecResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	res := &ExecResult{Written: make(map[string]*Instance)}
	var mu sync.Mutex
	r := &pipeRun{
		g:    g,
		sch:  sch,
		runs: func(*Op) bool { return true },
		scan: func(op *Op) (*Instance, error) {
			src := sources[op.Out.Name]
			if src == nil {
				return nil, fmt.Errorf("core: pipeline: no source instance for %q", op.Out.Name)
			}
			return &Instance{Frag: op.Out, Records: src.Records}, nil
		},
		write: func(op *Op, inst *Instance) error {
			mu.Lock()
			res.Written[op.Out.Name] = inst
			mu.Unlock()
			return nil
		},
	}
	traces, err := r.run()
	if err != nil {
		return nil, err
	}
	res.Traces = traces
	return res, nil
}

// ExecuteSlicePipelined is the streaming counterpart of ExecuteSlice: it
// runs the operations of g assigned to loc as pipeline stages and returns
// the outbound cross-edge instances. Inbound instances feed their consumer
// stages as whole-instance handoffs; outbound instances accumulate records
// as their producers stream, so serialization of a shipment can begin as
// soon as the producer finishes rather than after the whole slice ran.
func ExecuteSlicePipelined(g *Graph, sch *schema.Schema, a Assignment, loc Location, io SliceIO) (map[string]*Instance, []OpTrace, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if len(a) != len(g.Ops) || !a.Complete() {
		return nil, nil, fmt.Errorf("core: slice: incomplete assignment")
	}
	if !a.Monotone(g) {
		return nil, nil, fmt.Errorf("core: slice: assignment ships data target to source")
	}
	inboundCount := make(map[string]int)
	for _, e := range g.Edges {
		if a[e.To.ID] == loc && a[e.From.ID] != loc {
			inboundCount[EdgeKey(e)]++
		}
	}
	outbound := make(map[string]*Instance)
	crossFrags := make(map[string]*Fragment)
	feeds := make(map[*Edge]*Instance)
	for _, e := range g.Edges {
		switch {
		case a[e.To.ID] == loc && a[e.From.ID] != loc:
			in := io.Inbound[EdgeKey(e)]
			if in == nil {
				return nil, nil, fmt.Errorf("core: slice: op %s misses inbound %s", e.To, EdgeKey(e))
			}
			// Several local edges may share one shipment; isolate the
			// consumers with copy-on-write views.
			if inboundCount[EdgeKey(e)] > 1 {
				in = in.Share()
			}
			feeds[e] = in
		case a[e.From.ID] == loc && a[e.To.ID] != loc:
			crossFrags[EdgeKey(e)] = e.Frag
			if io.Emit == nil && outbound[EdgeKey(e)] == nil {
				outbound[EdgeKey(e)] = &Instance{Frag: e.Frag}
			}
		}
	}
	// Scan and Write stages run concurrently, but SliceIO implementations
	// (stores, test maps) are written for the sequential executor; serialize
	// the calls into them.
	var scanMu, writeMu sync.Mutex
	r := &pipeRun{
		g:   g,
		sch: sch,
		runs: func(op *Op) bool {
			return a[op.ID] == loc
		},
		scan: func(op *Op) (*Instance, error) {
			if io.Scan == nil {
				return nil, fmt.Errorf("core: slice: Scan %s with no scan function", op)
			}
			scanMu.Lock()
			inst, err := io.Scan(op.Out)
			scanMu.Unlock()
			if err != nil {
				return nil, err
			}
			return &Instance{Frag: op.Out, Records: inst.Records}, nil
		},
		write: func(op *Op, inst *Instance) error {
			if io.Write == nil {
				return fmt.Errorf("core: slice: Write %s with no write function", op)
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			return io.Write(inst)
		},
		feeds:    feeds,
		outbound: outbound,
	}
	// Stages produce concurrently; serialize the Emit hook and remember
	// which keys flowed so silent producers still announce their (empty)
	// instances afterwards.
	var emitMu sync.Mutex
	emitted := make(map[string]bool)
	if io.Emit != nil {
		r.emitOut = func(key string, frag *Fragment, recs []*xmltree.Node) error {
			emitMu.Lock()
			defer emitMu.Unlock()
			emitted[key] = true
			return io.Emit(key, frag, recs)
		}
	}
	traces, err := r.run()
	if err != nil {
		return nil, nil, err
	}
	if io.Emit != nil {
		keys := make([]string, 0, len(crossFrags))
		for key := range crossFrags {
			if !emitted[key] {
				keys = append(keys, key)
			}
		}
		sort.Strings(keys)
		for _, key := range keys {
			if err := io.Emit(key, crossFrags[key], nil); err != nil {
				return nil, nil, err
			}
		}
	}
	return outbound, traces, nil
}
