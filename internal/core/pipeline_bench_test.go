package core

// Chained-combine micro-benchmark: a wide root with k repeated leaf
// children, fragmented one fragment per child, merged back with k Combines.
// The legacy Combine re-indexed the whole accumulated parent instance on
// every call — O(k·N) node visits for the chain — while the incremental
// join index visits each node once. combineRewalk below is a verbatim copy
// of the legacy operator so one benchmark run yields both sides of the
// comparison.

import (
	"fmt"
	"sort"
	"testing"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// chainFixture builds a schema root -> a1*..ak*, a fragmentation with one
// fragment per element, and a document with reps records per child.
func chainFixture(b *testing.B, k, reps int) (*Fragmentation, *xmltree.Node) {
	b.Helper()
	root := schema.Elem("root")
	parts := [][]string{{"root"}}
	for i := 1; i <= k; i++ {
		name := fmt.Sprintf("a%d", i)
		root.Children = append(root.Children, schema.Rep(schema.Elem(name)))
		parts = append(parts, []string{name})
	}
	sch := schema.MustNew(root)
	fr, err := FromPartition(sch, "chain", parts)
	if err != nil {
		b.Fatal(err)
	}
	doc := &xmltree.Node{Name: "root"}
	for i := 1; i <= k; i++ {
		for r := 0; r < reps; r++ {
			doc.AddKid(&xmltree.Node{Name: fmt.Sprintf("a%d", i), Text: "x"})
		}
	}
	AssignIDs(doc)
	return fr, doc
}

func benchChain(b *testing.B, k int, combine func(*schema.Schema, *Instance, *Instance) (*Instance, error)) {
	fr, doc := chainFixture(b, k, 200)
	sch := fr.Schema
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sources, err := FromDocument(fr, doc)
		if err != nil {
			b.Fatal(err)
		}
		cur := sources[fr.Fragments[0].Name]
		b.StartTimer()
		for _, f := range fr.Fragments[1:] {
			cur, err = combine(sch, cur, sources[f.Name])
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkChainedCombine(b *testing.B) {
	for _, k := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("incremental/k=%d", k), func(b *testing.B) {
			benchChain(b, k, Combine)
		})
		b.Run(fmt.Sprintf("rewalk/k=%d", k), func(b *testing.B) {
			benchChain(b, k, combineRewalk)
		})
	}
}

// combineRewalk is the pre-incremental-index Combine, kept verbatim as the
// benchmark baseline: it rebuilds the hash index over every parent record
// on each call and rebuilds the schema-order map per touched parent.
func combineRewalk(sch *schema.Schema, parent, child *Instance) (*Instance, error) {
	joinElems := sch.Parents(child.Frag.Root)
	if len(joinElems) == 0 {
		return nil, fmt.Errorf("core: cannot combine %q into %q: %q is the schema root", child.Frag.Name, parent.Frag.Name, child.Frag.Root)
	}
	for _, p := range joinElems {
		if !parent.Frag.Elems[p] {
			return nil, fmt.Errorf("core: cannot combine %q into %q: parent element %q of %q missing", child.Frag.Name, parent.Frag.Name, p, child.Frag.Root)
		}
	}
	joinable := make(map[string]bool, len(joinElems))
	for _, e := range joinElems {
		joinable[e] = true
	}
	idx := make(map[string]*xmltree.Node)
	var index func(n *xmltree.Node)
	index = func(n *xmltree.Node) {
		if joinable[n.Name] {
			idx[n.ID] = n
		}
		for _, k := range n.Kids {
			index(k)
		}
	}
	for _, r := range parent.Records {
		index(r)
	}
	touched := make(map[*xmltree.Node]bool)
	for _, rec := range child.Records {
		p := idx[rec.Parent]
		if p == nil {
			return nil, fmt.Errorf("core: combine %q into %q: orphan record %s (parent %s not found)",
				child.Frag.Name, parent.Frag.Name, rec.ID, rec.Parent)
		}
		p.AddKid(rec)
		touched[p] = true
	}
	for p := range touched {
		order := make(map[string]int)
		for i, c := range sch.AllChildren(p.Name) {
			order[c] = i
		}
		sort.SliceStable(p.Kids, func(i, j int) bool {
			return order[p.Kids[i].Name] < order[p.Kids[j].Name]
		})
	}
	merged, err := mergeFragments(sch, parent.Frag, child.Frag)
	if err != nil {
		return nil, err
	}
	return &Instance{Frag: merged, Records: parent.Records}, nil
}

// Sanity: the baseline copy and the incremental operator agree, so the
// benchmark compares equal work.
func TestCombineRewalkMatchesCombine(t *testing.T) {
	sch := customerSchema()
	fr, err := FromPartition(sch, "S", [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName", "Line", "TelNo", "Switch", "SwitchID", "Feature", "FeatureID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(combine func(*schema.Schema, *Instance, *Instance) (*Instance, error)) *Instance {
		sources, err := FromDocument(fr, customerDoc())
		if err != nil {
			t.Fatal(err)
		}
		cur := sources[fr.Fragments[0].Name]
		for _, f := range fr.Fragments[1:] {
			cur, err = combine(sch, cur, sources[f.Name])
			if err != nil {
				t.Fatal(err)
			}
		}
		return cur
	}
	a, bst := run(Combine), run(combineRewalk)
	if a.Rows() != bst.Rows() {
		t.Fatalf("row mismatch: %d vs %d", a.Rows(), bst.Rows())
	}
	for i := range a.Records {
		if !xmltree.EqualShape(a.Records[i], bst.Records[i]) {
			t.Fatalf("record %d differs between incremental and rewalk combine", i)
		}
	}
}
