package core

import (
	"math/rand"
	"strings"
	"testing"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// Property: the pipelined executor is semantics-identical to the reference
// executor on randomized schemas, fragmentations, and enumerated programs
// (which include Split fan-out and chained Combines).
func TestPipelinedMatchesExecuteRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 3)
		src := Random(sch, rng, rng.Intn(5)+2)
		tgt := Random(sch, rng, rng.Intn(5)+2)
		m, err := NewMapping(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		progs, err := GeneratePrograms(m, GenOptions{MaxPrograms: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		doc := randomDoc(sch, rng, 3)
		for i, g := range progs {
			srcs, err := FromDocument(src, doc)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Execute(g, sch, srcs)
			if err != nil {
				t.Fatalf("seed %d program %d: execute: %v", seed, i, err)
			}
			srcs2, err := FromDocument(src, doc)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ExecutePipelined(g, sch, srcs2)
			if err != nil {
				t.Fatalf("seed %d program %d: pipelined: %v", seed, i, err)
			}
			if !EqualWritten(ref, res) {
				t.Errorf("seed %d: pipelined program %d wrote different data than Execute:\n%s", seed, i, g)
			}
		}
	}
}

// The pipelined executor emits one trace per op, in topological order, with
// the row counts of the reference executor.
func TestPipelinedCustomerProgramTraces(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Execute(g, sch, mustSources(t, sFragmentation(t, sch)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecutePipelined(g, sch, mustSources(t, sFragmentation(t, sch)))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWritten(ref, res) {
		t.Fatal("pipelined canonical program wrote different data than Execute")
	}
	if len(res.Traces) != len(g.Ops) {
		t.Fatalf("got %d traces, want %d", len(res.Traces), len(g.Ops))
	}
	for i, tr := range res.Traces {
		if i > 0 && tr.Op.ID <= res.Traces[i-1].Op.ID {
			t.Fatalf("traces out of topological order at %d: %v", i, tr.Op)
		}
	}
	for i := range res.Traces {
		if res.Traces[i].Op != ref.Traces[i].Op || res.Traces[i].OutRows != ref.Traces[i].OutRows {
			t.Errorf("trace %d: pipelined %v/%d rows, reference %v/%d rows",
				i, res.Traces[i].Op, res.Traces[i].OutRows, ref.Traces[i].Op, ref.Traces[i].OutRows)
		}
	}
}

// Fan-out copy-on-write: a scanned fragment consumed by both a Write and a
// Combine chain must reach the Write untouched, even though downstream
// Combines attach grandchildren into (copies of) the very same records.
func TestPipelinedFanOutCopyOnWrite(t *testing.T) {
	sch := customerSchema()
	fr, err := FromPartition(sch, "fanout", [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName", "Line", "TelNo", "Switch", "SwitchID", "Feature", "FeatureID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fa, fb, fc := fr.Fragments[0], fr.Fragments[1], fr.Fragments[2]
	fab, err := NewFragment(sch, "ab", []string{"Customer", "CustName", "Order"})
	if err != nil {
		t.Fatal(err)
	}
	fabc, err := NewFragment(sch, "abc", sch.Names())
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph()
	s1 := g.AddOp(OpScan, fa)
	s2 := g.AddOp(OpScan, fb)
	s3 := g.AddOp(OpScan, fc)
	w0 := g.AddOp(OpWrite, fb) // duplicate consumer of the Order fragment
	c1 := g.AddOp(OpCombine, fab)
	c2 := g.AddOp(OpCombine, fabc)
	w1 := g.AddOp(OpWrite, fabc)
	g.Connect(s2, w0, fb)
	g.Connect(s1, c1, fa)
	g.Connect(s2, c1, fb)
	g.Connect(c1, c2, fab)
	g.Connect(s3, c2, fc)
	g.Connect(c2, w1, fabc)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	run := func(name string, exec func(*Graph, *schema.Schema, map[string]*Instance) (*ExecResult, error)) {
		srcs, err := FromDocument(fr, customerDoc())
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec(g, sch, srcs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fresh, err := FromDocument(fr, customerDoc())
		if err != nil {
			t.Fatal(err)
		}
		dup := res.Written[fb.Name]
		want := fresh[fb.Name]
		if dup == nil || dup.Rows() != want.Rows() {
			t.Fatalf("%s: duplicate write has %v records, want %d", name, dup, want.Rows())
		}
		for i := range want.Records {
			if !xmltree.EqualShape(dup.Records[i], want.Records[i]) {
				t.Errorf("%s: record %d of the duplicated fragment was mutated by the combine chain", name, i)
			}
		}
		whole := res.Written[fabc.Name]
		if whole == nil || whole.Rows() != 1 || !xmltree.EqualShape(whole.Records[0], customerDoc()) {
			t.Errorf("%s: combined document does not match the original", name)
		}
	}
	run("execute", Execute)
	run("parallel", ExecuteParallel)
	run("pipelined", ExecutePipelined)
}

// The pipelined slice executor interoperates with the batch one: any mix of
// the two across source and target delivers what local execution delivers.
func TestExecuteSlicePipelinedMatchesExecuteSlice(t *testing.T) {
	sch := customerSchema()
	src := sFragmentation(t, sch)
	tgt := tFragmentation(t, sch)
	m, _ := NewMapping(src, tgt)
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	model := modelFor(sch, 1, 4)
	best, worst, err := MinMaxPlacement(g, model)
	if err != nil {
		t.Fatal(err)
	}
	local, err := Execute(g, sch, mustSources(t, src))
	if err != nil {
		t.Fatal(err)
	}
	type sliceFn func(*Graph, *schema.Schema, Assignment, Location, SliceIO) (map[string]*Instance, []OpTrace, error)
	combos := []struct {
		name             string
		srcExec, tgtExec sliceFn
	}{
		{"pipelined/pipelined", ExecuteSlicePipelined, ExecuteSlicePipelined},
		{"pipelined/batch", ExecuteSlicePipelined, ExecuteSlice},
		{"batch/pipelined", ExecuteSlice, ExecuteSlicePipelined},
	}
	for _, a := range []Assignment{best.Assign, worst.Assign} {
		for _, combo := range combos {
			srcs := mustSources(t, src)
			scan := func(f *Fragment) (*Instance, error) {
				for _, in := range srcs {
					if in.Frag.SameElems(f) {
						return &Instance{Frag: f, Records: in.Records}, nil
					}
				}
				t.Fatalf("no source %q", f.Name)
				return nil, nil
			}
			outbound, traces, err := combo.srcExec(g, sch, a, LocSource, SliceIO{Scan: scan})
			if err != nil {
				t.Fatalf("%s: source slice: %v", combo.name, err)
			}
			for i := 1; i < len(traces); i++ {
				if traces[i].Op.ID <= traces[i-1].Op.ID {
					t.Fatalf("%s: source slice traces out of topological order", combo.name)
				}
			}
			written := map[string]*Instance{}
			_, _, err = combo.tgtExec(g, sch, a, LocTarget, SliceIO{
				Inbound: outbound,
				Write: func(in *Instance) error {
					written[in.Frag.Name] = in
					return nil
				},
			})
			if err != nil {
				t.Fatalf("%s: target slice: %v", combo.name, err)
			}
			res := &ExecResult{Written: written}
			if !EqualWritten(local, res) {
				t.Errorf("%s: sliced execution differs from local under placement %v", combo.name, a)
			}
		}
	}
}

// ExecuteParallel must emit traces in topological op order regardless of
// goroutine completion order (previously they arrived in completion order,
// making SummarizeTraces output flap across runs).
func TestExecuteParallelTraceOrder(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		res, err := ExecuteParallel(g, sch, mustSources(t, sFragmentation(t, sch)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Traces) != len(g.Ops) {
			t.Fatalf("round %d: got %d traces, want %d", round, len(res.Traces), len(g.Ops))
		}
		for i := 1; i < len(res.Traces); i++ {
			if res.Traces[i].Op.ID <= res.Traces[i-1].Op.ID {
				t.Fatalf("round %d: traces out of topological order at %d", round, i)
			}
		}
	}
}

// Error paths: a missing source must fail the whole pipeline promptly, and
// the error must name the fragment.
func TestPipelinedErrors(t *testing.T) {
	sch := customerSchema()
	m, _ := NewMapping(sFragmentation(t, sch), tFragmentation(t, sch))
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ExecutePipelined(g, sch, map[string]*Instance{})
	if err == nil {
		t.Fatal("pipelined execution with no sources succeeded")
	}
	if !strings.Contains(err.Error(), "no source instance") {
		t.Fatalf("unexpected error: %v", err)
	}
}
