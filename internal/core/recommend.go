package core

import (
	"fmt"
	"math/rand"

	"xdx/internal/schema"
)

// This file implements the paper's stated future work (§7): "explore
// solutions to derive the best fragmentation for a system based on its
// internal indices and data structures." Recommendation searches the space
// of valid fragmentations for one side of an exchange, holding the peer
// fixed, and minimizes the estimated exchange cost under the same §4.1
// model the optimizers use. The search samples random cut sets and then
// hill-climbs by toggling individual cut points.

// RecommendOptions tune the search.
type RecommendOptions struct {
	// Candidates is the number of random starting fragmentations
	// (default 20).
	Candidates int
	// MaxFragments bounds the fragment count of sampled candidates
	// (default: half the schema size).
	MaxFragments int
	// Seed drives sampling.
	Seed int64
	// MaxClimbSteps bounds hill climbing (default 50).
	MaxClimbSteps int
}

func (o RecommendOptions) withDefaults(sch *schema.Schema) RecommendOptions {
	if o.Candidates <= 0 {
		o.Candidates = 20
	}
	if o.MaxFragments <= 0 {
		o.MaxFragments = sch.Len()/2 + 1
	}
	if o.MaxClimbSteps <= 0 {
		o.MaxClimbSteps = 50
	}
	return o
}

// Recommendation is the outcome of a fragmentation search.
type Recommendation struct {
	// Fragmentation is the best layout found.
	Fragmentation *Fragmentation
	// Cost is its greedy-optimized exchange cost against the peer.
	Cost float64
	// Evaluated counts the candidate layouts whose cost was computed.
	Evaluated int
}

// RecommendSource searches for a source fragmentation minimizing the
// exchange cost toward the fixed target.
func RecommendSource(target *Fragmentation, model *Model, opts RecommendOptions) (Recommendation, error) {
	return recommend(target.Schema, model, opts, func(cand *Fragmentation) (float64, error) {
		return exchangeCost(cand, target, model)
	})
}

// RecommendTarget searches for a target fragmentation minimizing the
// exchange cost from the fixed source.
func RecommendTarget(source *Fragmentation, model *Model, opts RecommendOptions) (Recommendation, error) {
	return recommend(source.Schema, model, opts, func(cand *Fragmentation) (float64, error) {
		return exchangeCost(source, cand, model)
	})
}

func exchangeCost(src, tgt *Fragmentation, model *Model) (float64, error) {
	m, err := NewMapping(src, tgt)
	if err != nil {
		return 0, err
	}
	res, err := Greedy(m, model)
	if err != nil {
		return 0, err
	}
	return res.Cost, nil
}

func recommend(sch *schema.Schema, model *Model, opts RecommendOptions, cost func(*Fragmentation) (float64, error)) (Recommendation, error) {
	opts = opts.withDefaults(sch)
	rng := rand.New(rand.NewSource(opts.Seed))
	best := Recommendation{Cost: -1}
	evaluate := func(fr *Fragmentation) error {
		c, err := cost(fr)
		if err != nil {
			return err
		}
		best.Evaluated++
		if best.Cost < 0 || c < best.Cost {
			best.Cost = c
			best.Fragmentation = fr
		}
		return nil
	}
	// Deterministic baselines first: the canonical layouts of §5.
	for _, fr := range []*Fragmentation{Trivial(sch), MostFragmented(sch), LeastFragmented(sch)} {
		if err := evaluate(fr); err != nil {
			return best, err
		}
	}
	for i := 0; i < opts.Candidates; i++ {
		k := 2 + rng.Intn(opts.MaxFragments)
		if err := evaluate(Random(sch, rng, k)); err != nil {
			return best, err
		}
	}
	// Hill climb from the best candidate by toggling cut points.
	cuts := cutsOf(sch, best.Fragmentation)
	for step := 0; step < opts.MaxClimbSteps; step++ {
		improved := false
		for _, e := range sch.Names()[1:] {
			forced := len(sch.Parents(e)) > 1
			if forced {
				continue // multi-parent elements must stay cut
			}
			cuts[e] = !cuts[e]
			cand, err := fromCuts(sch, cuts)
			if err == nil {
				c, cerr := cost(cand)
				if cerr == nil {
					best.Evaluated++
					if c < best.Cost {
						best.Cost = c
						best.Fragmentation = cand
						improved = true
						continue // keep the toggle
					}
				}
			}
			cuts[e] = !cuts[e] // revert
		}
		if !improved {
			break
		}
	}
	if best.Fragmentation == nil {
		return best, fmt.Errorf("core: recommendation found no valid fragmentation")
	}
	return best, nil
}

// cutsOf recovers the cut set (fragment roots other than the schema root)
// of a fragmentation.
func cutsOf(sch *schema.Schema, fr *Fragmentation) map[string]bool {
	cuts := make(map[string]bool)
	for _, f := range fr.Fragments {
		if f.Root != sch.Root().Name {
			cuts[f.Root] = true
		}
	}
	return cuts
}

// fromCuts builds the fragmentation induced by a cut set: each element
// belongs to the fragment of its nearest cut ancestor (or the root).
// Multi-parent elements are always cut.
func fromCuts(sch *schema.Schema, cuts map[string]bool) (*Fragmentation, error) {
	full := make(map[string]bool, len(cuts)+1)
	full[sch.Root().Name] = true
	for e, on := range cuts {
		if on {
			full[e] = true
		}
	}
	for _, e := range sch.Names() {
		if len(sch.Parents(e)) > 1 {
			full[e] = true
		}
	}
	groups := make(map[string][]string)
	memo := make(map[string]string)
	var startOf func(name string) string
	startOf = func(name string) string {
		if s, ok := memo[name]; ok {
			return s
		}
		var s string
		if full[name] {
			s = name
		} else {
			s = startOf(sch.ParentOf(name))
		}
		memo[name] = s
		return s
	}
	names := sch.Names()
	for _, n := range names {
		groups[startOf(n)] = append(groups[startOf(n)], n)
	}
	var parts [][]string
	for _, n := range names {
		if members, ok := groups[n]; ok {
			parts = append(parts, members)
		}
	}
	return FromPartition(sch, fmt.Sprintf("cuts-%d", len(parts)), parts)
}
