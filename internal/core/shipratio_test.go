package core

import (
	"math"
	"testing"
)

// TestCompressionAwareShipBytesFlipsPlacement pins down why ShipBytes must
// not alias FragBytes: tree size is additive, so on a tree-shaped program
// every monotone placement ships the same total tree bytes and the
// optimizer's choice degenerates to computation cost alone. Measured
// per-fragment compression ratios break that invariance — the same graph,
// under the same computation costs, places its combines differently once
// comm cost is charged on wire bytes.
func TestCompressionAwareShipBytesFlipsPlacement(t *testing.T) {
	sch := customerSchema()
	src, err := FromPartition(sch, "MF3", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID", "Feature", "FeatureID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapping(src, Trivial(sch))
	if err != nil {
		t.Fatal(err)
	}
	g, err := CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}

	// Tree sizes: A = 400, B = 400, C = 200. Scans and the Write cost the
	// same under every placement; only the two combines are free to move.
	bytes := map[string]float64{
		"Customer": 300, "CustName": 100,
		"Order": 200, "Service": 100, "ServiceName": 100,
		"Line": 50, "TelNo": 30, "Switch": 40, "SwitchID": 30,
		"Feature": 30, "FeatureID": 20,
	}
	card := make(map[string]float64, len(bytes))
	for e := range bytes {
		card[e] = 1
	}
	// The target is barely slower than the source: moving a combine there
	// costs a little computation, so with uniform shipping the optimizer
	// keeps every combine at the source. The calibrated ratios below make
	// the source fragments ship at 0.1 of tree size while combine outputs
	// (never seen by calibration) get the 0.6 default — shipping early
	// saves more than the slower target costs.
	mk := func() *StatsProvider {
		return &StatsProvider{
			Card: card, Bytes: bytes,
			Unit:        DefaultUnitCosts(),
			SourceSpeed: 1, TargetSpeed: 0.98,
			TargetCombines: true,
		}
	}
	tree := mk() // no codec: wire size == tree size, the pre-codec model
	wire := mk()
	wire.ShipCodec = "bin+flate"
	wire.ShipRatioDefault = 0.6
	wire.ShipRatio = map[string]float64{}
	for _, f := range src.Fragments {
		switch {
		case f.Contains("Customer"):
			wire.ShipRatio[f.Name] = 0.1
		case f.Contains("Order"):
			wire.ShipRatio[f.Name] = 0.1
		case f.Contains("Line"):
			wire.ShipRatio[f.Name] = 1.0
		}
	}

	// ShipBytes now diverges from FragBytes under the calibrated codec…
	for _, f := range src.Fragments {
		if tree.ShipBytes(f) != tree.FragBytes(f) {
			t.Fatalf("no codec: ShipBytes(%s)=%v must equal FragBytes=%v",
				f.Name, tree.ShipBytes(f), tree.FragBytes(f))
		}
		want := tree.FragBytes(f) * wire.ShipRatio[f.Name]
		if got := wire.ShipBytes(f); math.Abs(got-want) > 1e-9 {
			t.Fatalf("calibrated: ShipBytes(%s)=%v, want %v", f.Name, got, want)
		}
	}
	// …while computation cost is identical op for op, location for
	// location: the flip below is caused by comm cost alone.
	mTree, mWire := NewModel(tree), NewModel(wire)
	for _, op := range g.Ops {
		for _, loc := range []Location{LocSource, LocTarget} {
			a, b := mTree.OpCost(g, op, loc), mWire.OpCost(g, op, loc)
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("CompCost(%s@%s) differs between providers: %v vs %v",
					op.String(), loc, a, b)
			}
		}
	}

	treeRes, err := CostBasedOptim(g, mTree)
	if err != nil {
		t.Fatal(err)
	}
	wireRes, err := CostBasedOptim(g, mWire)
	if err != nil {
		t.Fatal(err)
	}
	flipped := false
	for _, op := range g.Ops {
		if op.Kind != OpCombine {
			continue
		}
		if got := treeRes.Assign[op.ID]; got != LocSource {
			t.Errorf("tree-size model: combine %s placed @%s, want @source", op.String(), got)
		}
		if wireRes.Assign[op.ID] != treeRes.Assign[op.ID] {
			flipped = true
		}
		if got := wireRes.Assign[op.ID]; got != LocTarget {
			t.Errorf("wire-size model: combine %s placed @%s, want @target", op.String(), got)
		}
	}
	if !flipped {
		t.Fatalf("calibrated compression ratios changed no placement:\ntree:\n%v\nwire:\n%v",
			treeRes.Assign, wireRes.Assign)
	}
}
