package core

import (
	"fmt"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// ValidateInstance checks that an instance conforms to its fragment
// (Definition 3.2): every record is rooted at the fragment root, contains
// only fragment elements in legal parent/child positions and schema order,
// respects repetition constraints, and carries consistent internal
// ID/PARENT links.
func ValidateInstance(sch *schema.Schema, in *Instance) error {
	if in.Frag == nil {
		return fmt.Errorf("core: instance without fragment")
	}
	for i, rec := range in.Records {
		if rec.Name != in.Frag.Root {
			return fmt.Errorf("core: record %d rooted at %q, want %q", i, rec.Name, in.Frag.Root)
		}
		if err := validateNode(sch, in.Frag, rec); err != nil {
			return fmt.Errorf("core: record %d: %w", i, err)
		}
	}
	return nil
}

func validateNode(sch *schema.Schema, f *Fragment, n *xmltree.Node) error {
	if !f.Elems[n.Name] {
		return fmt.Errorf("element %q outside fragment %q", n.Name, f.Name)
	}
	decl := sch.ByName(n.Name)
	if decl == nil {
		return fmt.Errorf("element %q not in schema", n.Name)
	}
	lastOrder := -1
	counts := make(map[string]int)
	for _, k := range n.Kids {
		// Parent/child legality.
		legal := false
		for _, p := range sch.Parents(k.Name) {
			if p == n.Name {
				legal = true
				break
			}
		}
		if !legal {
			return fmt.Errorf("element %q may not occur under %q", k.Name, n.Name)
		}
		// Document order per the schema.
		ord := sch.ChildOrder(n.Name, k.Name)
		if ord < lastOrder {
			return fmt.Errorf("children of %q out of schema order at %q", n.Name, k.Name)
		}
		lastOrder = ord
		counts[k.Name]++
		// Internal links.
		if k.Parent != "" && n.ID != "" && k.Parent != n.ID {
			return fmt.Errorf("element %q has PARENT %q, enclosing %q has ID %q", k.Name, k.Parent, n.Name, n.ID)
		}
		if err := validateNode(sch, f, k); err != nil {
			return err
		}
	}
	for name, c := range counts {
		if c > 1 && !sch.ByName(name).Repeated {
			return fmt.Errorf("element %q repeats %d times under %q but is not repeatable", name, c, n.Name)
		}
	}
	return nil
}
