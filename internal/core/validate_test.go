package core

import (
	"math/rand"
	"testing"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

func TestValidateInstanceAccepts(t *testing.T) {
	sch := customerSchema()
	fr := tFragmentation(t, sch)
	insts, err := FromDocument(fr, customerDoc())
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range insts {
		if err := ValidateInstance(sch, in); err != nil {
			t.Errorf("fragment %q: %v", name, err)
		}
	}
}

func TestValidateInstanceRejects(t *testing.T) {
	sch := customerSchema()
	fr := tFragmentation(t, sch)
	frag := fr.FragmentOf("TelNo") // Line_TelNo_Switch_SwitchID

	mk := func(mutate func(rec *xmltree.Node)) *Instance {
		insts, _ := FromDocument(fr, customerDoc())
		in := insts[frag.Name]
		mutate(in.Records[0])
		return in
	}
	cases := []struct {
		name   string
		mutate func(rec *xmltree.Node)
	}{
		{"wrong root", func(rec *xmltree.Node) { rec.Name = "Order" }},
		{"outside element", func(rec *xmltree.Node) { rec.AddKid(&xmltree.Node{Name: "Feature"}) }},
		{"illegal position", func(rec *xmltree.Node) {
			rec.Kids[0].AddKid(&xmltree.Node{Name: "SwitchID"}) // SwitchID under TelNo
		}},
		{"out of order", func(rec *xmltree.Node) {
			rec.Kids[0], rec.Kids[1] = rec.Kids[1], rec.Kids[0] // Switch before TelNo
		}},
		{"illegal repetition", func(rec *xmltree.Node) {
			rec.AddKid(rec.Kids[1].Clone()) // second Switch under one Line
		}},
		{"broken link", func(rec *xmltree.Node) { rec.Kids[0].Parent = "nonsense" }},
	}
	for _, c := range cases {
		in := mk(c.mutate)
		if err := ValidateInstance(sch, in); err == nil {
			t.Errorf("%s: validation should fail", c.name)
		}
	}
	if err := ValidateInstance(sch, &Instance{}); err == nil {
		t.Error("instance without fragment should fail")
	}
}

func TestValidateAfterOps(t *testing.T) {
	// Everything the executor produces must validate: run random mappings
	// and validate every written instance.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sch := schema.Balanced(2, 3)
		src := Random(sch, rng, rng.Intn(6)+1)
		tgt := Random(sch, rng, rng.Intn(6)+1)
		m, err := NewMapping(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		g, err := CanonicalProgram(m)
		if err != nil {
			t.Fatal(err)
		}
		srcs, _ := FromDocument(src, randomDoc(sch, rng, 3))
		res, err := Execute(g, sch, srcs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name, in := range res.Written {
			if err := ValidateInstance(sch, in); err != nil {
				t.Errorf("seed %d fragment %q: %v", seed, name, err)
			}
		}
	}
}
