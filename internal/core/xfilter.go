package core

import (
	"fmt"
	"strconv"
	"strings"

	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// Filter is a compiled service-argument predicate (§3.2) over root-fragment
// records: a small XPath subset of the form
//
//	path            existence: keep records with at least one match
//	path op literal leaf value comparison
//
// where path is a '/'-separated chain of element names (each a schema child
// of the previous), op is one of = != < <= > >=, and literal is a quoted
// string or a bare token. The first step is located anywhere inside the
// record (XPath .//), matching how service arguments name elements without
// spelling out the fragment's internal layout; subsequent steps are strict
// child steps. If the literal parses as a number the comparison is numeric
// and non-numeric leaf text never matches; otherwise it is lexicographic.
type Filter struct {
	// Expr is the source expression, round-tripped onto the wire as the
	// ExecuteSource filter attribute.
	Expr string

	steps   []string
	op      string
	value   string
	num     float64
	numeric bool
}

// filterOps in probe order: two-char operators must be tried before their
// one-char prefixes.
var filterOps = []string{"!=", "<=", ">=", "=", "<", ">"}

// CompileFilter parses and schema-checks expr. Every step must name a
// schema element, consecutive steps must be parent/child in the schema, and
// a comparison's final step must be a leaf (it carries the compared text).
func CompileFilter(expr string, sch *schema.Schema) (*Filter, error) {
	src := strings.TrimSpace(expr)
	if src == "" {
		return nil, fmt.Errorf("core: empty filter")
	}
	f := &Filter{Expr: src}
	pathPart := src
	for _, op := range filterOps {
		if i := strings.Index(src, op); i >= 0 {
			pathPart = src[:i]
			f.op = op
			lit, err := parseFilterLiteral(src[i+len(op):])
			if err != nil {
				return nil, fmt.Errorf("core: filter %q: %w", src, err)
			}
			f.value = lit
			if n, err := strconv.ParseFloat(lit, 64); err == nil {
				f.num, f.numeric = n, true
			}
			break
		}
	}
	for _, step := range strings.Split(strings.TrimSpace(pathPart), "/") {
		step = strings.TrimSpace(step)
		if step == "" {
			return nil, fmt.Errorf("core: filter %q: empty path step", src)
		}
		f.steps = append(f.steps, step)
	}
	if sch != nil {
		for i, step := range f.steps {
			if sch.ByName(step) == nil {
				return nil, fmt.Errorf("core: filter %q: unknown element %q", src, step)
			}
			if i > 0 {
				ok := false
				for _, p := range sch.Parents(step) {
					if p == f.steps[i-1] {
						ok = true
						break
					}
				}
				if !ok {
					return nil, fmt.Errorf("core: filter %q: %q is not a child of %q", src, step, f.steps[i-1])
				}
			}
		}
		if f.op != "" && !sch.ByName(f.steps[len(f.steps)-1]).IsLeaf() {
			return nil, fmt.Errorf("core: filter %q: comparison target %q is not a leaf", src, f.steps[len(f.steps)-1])
		}
	}
	return f, nil
}

// CheckRoot verifies the filter can ever match a record of fr's root
// fragment: every path step must be an element the root fragment covers.
// Root records carry only the root fragment's elements, so a step outside
// that set — say a leaf that lives three fragments down in a
// most-fragmented layout — would silently filter out every record; this
// turns that into a loud plan-time error instead.
func (f *Filter) CheckRoot(fr *Fragmentation) error {
	if f == nil || fr == nil || len(fr.Fragments) == 0 {
		return nil
	}
	root := fr.Fragments[0]
	for _, step := range f.steps {
		if !root.Elems[step] {
			return fmt.Errorf("core: filter %q: element %q is not in root fragment %q (layout %s) — the filter would match nothing",
				f.Expr, step, root.Name, fr.Name)
		}
	}
	return nil
}

// parseFilterLiteral strips optional single or double quotes from the
// right-hand side of a comparison.
func parseFilterLiteral(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("missing comparison value")
	}
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') {
		if s[len(s)-1] != s[0] {
			return "", fmt.Errorf("unterminated quote in %q", s)
		}
		return s[1 : len(s)-1], nil
	}
	return s, nil
}

// Match evaluates the filter against one record tree.
func (f *Filter) Match(rec *xmltree.Node) bool {
	if rec == nil {
		return false
	}
	for _, a := range rec.FindAll(f.steps[0], nil) {
		if f.matchFrom(a, f.steps[1:]) {
			return true
		}
	}
	return false
}

func (f *Filter) matchFrom(n *xmltree.Node, rest []string) bool {
	if len(rest) == 0 {
		if f.op == "" {
			return true
		}
		return f.compare(n.Text)
	}
	for _, k := range n.Kids {
		if k.Name == rest[0] && f.matchFrom(k, rest[1:]) {
			return true
		}
	}
	return false
}

func (f *Filter) compare(text string) bool {
	if f.numeric {
		n, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return false
		}
		switch f.op {
		case "=":
			return n == f.num
		case "!=":
			return n != f.num
		case "<":
			return n < f.num
		case "<=":
			return n <= f.num
		case ">":
			return n > f.num
		case ">=":
			return n >= f.num
		}
		return false
	}
	switch f.op {
	case "=":
		return text == f.value
	case "!=":
		return text != f.value
	case "<":
		return text < f.value
	case "<=":
		return text <= f.value
	case ">":
		return text > f.value
	case ">=":
		return text >= f.value
	}
	return false
}

// Predicate adapts the filter to FilterSources' keep callback; a nil
// filter yields a nil predicate (keep everything).
func (f *Filter) Predicate() func(*xmltree.Node) bool {
	if f == nil {
		return nil
	}
	return f.Match
}

// String returns the source expression.
func (f *Filter) String() string { return f.Expr }
