package core

import (
	"testing"

	"xdx/internal/xmltree"
)

func TestCompileFilterValidation(t *testing.T) {
	sch := customerSchema()
	for _, expr := range []string{
		"CustName = 'Ann'",
		`CustName = "Ann"`,
		"CustName",
		"Customer/CustName != Ann",
		"CustName >= 'A'",
	} {
		if _, err := CompileFilter(expr, sch); err != nil {
			t.Errorf("CompileFilter(%q) = %v", expr, err)
		}
	}
	for _, expr := range []string{
		"",
		"NoSuchElem = 'x'",
		"CustName/Customer = 'x'", // wrong direction: CustName is not a parent
		"CustName = ",
		"CustName = 'unterminated",
		"Customer = 'x'", // interior element has no comparable text
		"Customer//CustName = 'x'",
	} {
		if _, err := CompileFilter(expr, sch); err == nil {
			t.Errorf("CompileFilter(%q) compiled, want error", expr)
		}
	}
}

func TestFilterCheckRoot(t *testing.T) {
	sch := customerSchema()
	fr := sFragmentation(t, sch) // root fragment: {Customer, CustName}
	for _, expr := range []string{"CustName = 'Ann'", "Customer/CustName", "CustName"} {
		f, err := CompileFilter(expr, sch)
		if err != nil {
			t.Fatalf("CompileFilter(%q): %v", expr, err)
		}
		if err := f.CheckRoot(fr); err != nil {
			t.Errorf("CheckRoot(%q) = %v, want nil", expr, err)
		}
	}
	// ServiceName is a real schema leaf but lives in another fragment: a
	// filter on it can never match a root record and must be rejected.
	f, err := CompileFilter("ServiceName = 'x'", sch)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckRoot(fr); err == nil {
		t.Error("CheckRoot accepted a path outside the root fragment")
	}
	// Most-fragmented layouts have a bare root fragment; even CustName is
	// out of reach there.
	f, err = CompileFilter("CustName = 'Ann'", sch)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckRoot(MostFragmented(sch)); err == nil {
		t.Error("CheckRoot accepted a leaf outside a most-fragmented root")
	}
	var nilf *Filter
	if err := nilf.CheckRoot(fr); err != nil {
		t.Errorf("nil filter CheckRoot = %v", err)
	}
}

func rec(name, text string, kids ...*xmltree.Node) *xmltree.Node {
	return &xmltree.Node{Name: name, Text: text, Kids: kids}
}

func TestFilterMatch(t *testing.T) {
	r := rec("Customer", "",
		rec("CustName", "Ann"),
		rec("Account", "",
			rec("AcctNum", "17")),
		rec("Account", "",
			rec("AcctNum", "42")))
	cases := []struct {
		expr string
		want bool
	}{
		{"CustName = 'Ann'", true},
		{"CustName = 'Bob'", false},
		{"CustName != Bob", true},
		{"CustName", true},
		{"Account/AcctNum = 17", true},
		{"Account/AcctNum > 40", true},
		{"Account/AcctNum > 42", false},
		{"Account/AcctNum <= 17", true},
		{"Account/AcctNum < 17", false},
		{"AcctNum >= 42", true},
		{"Customer/CustName = Ann", true}, // anchor may be the record itself
		{"CustName < 'B'", true},          // lexicographic for string literals
	}
	for _, c := range cases {
		f, err := CompileFilter(c.expr, nil)
		if err != nil {
			t.Fatalf("CompileFilter(%q): %v", c.expr, err)
		}
		if got := f.Match(r); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestFilterNumericLiteralRejectsNonNumericText(t *testing.T) {
	f, err := CompileFilter("AcctNum > 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Match(rec("Customer", "", rec("AcctNum", "many"))) {
		t.Error("non-numeric leaf matched a numeric comparison")
	}
}

func TestFilterPredicateNil(t *testing.T) {
	var f *Filter
	if f.Predicate() != nil {
		t.Error("nil filter must yield nil predicate")
	}
}

func TestFilterSourcesWithCompiledFilter(t *testing.T) {
	sch := customerSchema()
	fr := sFragmentation(t, sch)
	src, _ := FromDocument(fr, customerDoc())
	f, err := CompileFilter("CustName = 'Nobody'", sch)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := FilterSources(fr, src, f.Predicate())
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range kept {
		if in.Rows() != 0 {
			t.Errorf("fragment %q kept %d rows for a non-matching filter", name, in.Rows())
		}
	}
}
