package durable

// Group commit (FsyncBatch): concurrent appenders enqueue framed records
// and park on a ticket; a leader goroutine coalesces everything queued into
// one write + one fsync and resolves the whole group at once. The cost of
// a sync is amortized over every frame that arrived while the previous one
// was in flight — the classic group-commit self-clocking loop — which is
// what closes the ~6× gap between FsyncAlways and the FsyncInterval floor
// without giving up ack-after-sync: a ticket resolves successfully only
// after its frame is on stable storage, exactly like FsyncAlways.
//
// Batch cut rules, in order:
//
//   - the group reaches MaxBatchBytes or MaxBatchFrames (an appender kicks
//     the leader immediately);
//   - Flush is called (the endpoint's pre-ack drain hurries the tail);
//   - MaxBatchHold elapses — the bound on how long a lone appender waits
//     for company (wal.batch.stalls counts these expiries);
//   - a previous group's sync completes while frames are queued: the next
//     group commits immediately, no hold — the sync itself was the hold.

import (
	"fmt"
	"sync"
	"time"
)

// Pending is the ticket for one asynchronous append. It resolves — Done()
// closes, Err() returns — when the frame's commit group has been written
// and fsynced (or failed). Every ticket in a group gets the group's error.
type Pending struct {
	done chan struct{}
	err  error
}

// Done returns a channel closed when the append's group has committed.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Err blocks until the group commits and returns its outcome: nil means
// the frame is on stable storage.
func (p *Pending) Err() error {
	<-p.done
	return p.err
}

var closedPending = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// resolvedPending wraps an already-known outcome (the synchronous append
// policies) in the same ticket shape the batch path returns.
func resolvedPending(err error) *Pending {
	return &Pending{done: closedPending, err: err}
}

// batcher owns the pending group under FsyncBatch. It has its own mutex —
// never held while writing or syncing — so appenders keep queueing frames
// for the next group while the leader holds w.mu for the current one.
type batcher struct {
	w *WAL

	mu     sync.Mutex
	cond   *sync.Cond // flush completions, for drain
	buf    []byte     // framed bytes of the pending group, append order
	spare  []byte     // recycled buffer for the next group
	group  []*Pending // tickets of the pending group
	leader bool       // a leader goroutine is running
	hurry  bool       // Flush requested: cut the hold short
	kick   chan struct{}

	// testHookPreSync, when set, runs after the group's write and before
	// its sync — the crash window the durability tests freeze.
	testHookPreSync func()
}

func newBatcher(w *WAL) *batcher {
	b := &batcher{w: w, kick: make(chan struct{}, 1)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// enqueue frames payload into the pending group and returns its ticket,
// spawning a leader for the group if none is running. Called with neither
// lock held.
func (b *batcher) enqueue(payload []byte) *Pending {
	var hdr [frameHeader]byte
	frameInto(hdr[:], payload)
	p := &Pending{done: make(chan struct{})}
	b.mu.Lock()
	if b.buf == nil && b.spare != nil {
		b.buf, b.spare = b.spare[:0], nil
	}
	b.buf = append(b.buf, hdr[:]...)
	b.buf = append(b.buf, payload...)
	b.group = append(b.group, p)
	full := len(b.buf) >= b.w.opts.MaxBatchBytes || len(b.group) >= b.w.opts.MaxBatchFrames
	spawn := !b.leader
	if spawn {
		b.leader = true
	}
	b.mu.Unlock()
	if b.w.met != nil {
		b.w.met.Counter("wal.appends").Inc()
		b.w.met.Counter("wal.append.bytes").Add(int64(frameHeader + len(payload)))
	}
	if spawn {
		go b.lead()
	} else if full {
		b.kickLeader()
	}
	return p
}

// kickLeader wakes a leader parked on its hold timer. The channel holds
// one token, so a kick before the leader parks is not lost.
func (b *batcher) kickLeader() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// hurryUp asks the leader to commit the pending group now instead of
// waiting out the hold. No-op when nothing is pending.
func (b *batcher) hurryUp() {
	b.mu.Lock()
	pending := len(b.group) > 0
	if pending {
		b.hurry = true
	}
	b.mu.Unlock()
	if pending {
		b.kickLeader()
	}
}

// lead runs one leader: commit groups until the queue is empty. The first
// group of a run waits out the hold window (unless already full); groups
// that accumulate while a sync is in flight commit immediately after it.
func (b *batcher) lead() {
	holdNext := true
	for {
		if holdNext {
			b.mu.Lock()
			ready := len(b.buf) >= b.w.opts.MaxBatchBytes ||
				len(b.group) >= b.w.opts.MaxBatchFrames || b.hurry
			b.mu.Unlock()
			if !ready {
				t := time.NewTimer(b.w.opts.MaxBatchHold)
				select {
				case <-b.kick:
					t.Stop()
				case <-t.C:
					if b.w.met != nil {
						b.w.met.Counter("wal.batch.stalls").Inc()
					}
				}
			}
		}
		b.mu.Lock()
		buf, group := b.buf, b.group
		b.buf, b.group = nil, nil
		b.hurry = false
		// Taking the group satisfies any queued kick; dropping the token
		// keeps a stale one from cutting a future group's hold short.
		select {
		case <-b.kick:
		default:
		}
		b.mu.Unlock()

		err := b.commit(buf, len(group))
		for _, p := range group {
			p.err = err
			close(p.done)
		}

		b.mu.Lock()
		b.spare = buf
		more := len(b.group) > 0
		if !more {
			b.leader = false
		}
		b.cond.Broadcast()
		b.mu.Unlock()
		if !more {
			return
		}
		// The sync just paid was this group's hold: commit it now.
		holdNext = false
	}
}

// commit writes one coalesced group and syncs it, under the WAL mutex so
// batch writes serialize with Snapshot's truncate.
func (b *batcher) commit(buf []byte, frames int) error {
	w := b.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("durable: Append on closed WAL")
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	w.dirty = true
	if b.testHookPreSync != nil {
		b.testHookPreSync()
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	if w.met != nil {
		w.met.Histogram("wal.batch.size").Observe(float64(len(buf)))
		w.met.Histogram("wal.batch.frames").Observe(float64(frames))
	}
	return nil
}

// drain hurries the pending group out and blocks until the batcher is
// idle: every ticket issued before the call has resolved. Sync, Snapshot,
// and Close run behind this barrier.
func (b *batcher) drain() {
	for {
		b.mu.Lock()
		if !b.leader && len(b.group) == 0 {
			b.mu.Unlock()
			return
		}
		b.hurry = true
		b.mu.Unlock()
		b.kickLeader()
		b.mu.Lock()
		if b.leader || len(b.group) > 0 {
			b.cond.Wait()
		}
		b.mu.Unlock()
	}
}
