package durable

// Group-commit (FsyncBatch) coverage: ordering and byte-identity against
// the serial FsyncAlways reference, ack-after-sync across the
// write-vs-sync crash window, lone-appender hold bounds, close/drain
// hardening, and a race-detector stress over one shared WAL.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"xdx/internal/obs"
)

// TestBatchRecoverMatchesSerialAlways is the interleaving property test:
// whatever order concurrent batched appenders land in, recovery yields a
// framing-valid log holding exactly the appended payloads, with every
// per-goroutine subsequence in order — and re-appending the recovered
// payloads serially through FsyncAlways reproduces a byte-identical log
// file, so a batched log is indistinguishable from a serial one.
func TestBatchRecoverMatchesSerialAlways(t *testing.T) {
	const (
		goroutines = 6
		perG       = 40
	)
	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		w, got, _ := openRecovered(t, dir, Options{
			Fsync:          FsyncBatch,
			MaxBatchFrames: 1 + round*7, // vary the group-cut pattern
			MaxBatchHold:   time.Millisecond,
		})
		if len(got) != 0 {
			t.Fatalf("fresh WAL recovered %d records", len(got))
		}
		rng := rand.New(rand.NewSource(int64(round)))
		jitter := make([]int, goroutines)
		for g := range jitter {
			jitter[g] = rng.Intn(50)
		}
		var wg sync.WaitGroup
		errs := make([]error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					p := []byte(fmt.Sprintf("g%02d-i%03d-%s", g, i, bytes.Repeat([]byte{byte(g)}, jitter[g])))
					if err := w.Append(p); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		for g, err := range errs {
			if err != nil {
				t.Fatalf("goroutine %d: %v", g, err)
			}
		}

		w2, recovered, st := openRecovered(t, dir, Options{})
		w2.Close()
		if st.TornBytes != 0 {
			t.Errorf("round %d: batched log reported %d torn bytes", round, st.TornBytes)
		}
		if len(recovered) != goroutines*perG {
			t.Fatalf("round %d: recovered %d records, want %d", round, len(recovered), goroutines*perG)
		}
		// Every acked append is present exactly once, and each
		// goroutine's appends recover in its submission order.
		seen := map[string]int{}
		nextPerG := make([]int, goroutines)
		for _, p := range recovered {
			seen[string(p)]++
			var g, i int
			if _, err := fmt.Sscanf(string(p), "g%02d-i%03d-", &g, &i); err != nil {
				t.Fatalf("round %d: unparseable payload %q", round, p)
			}
			if i != nextPerG[g] {
				t.Fatalf("round %d: goroutine %d order broken: got i=%d want %d", round, g, i, nextPerG[g])
			}
			nextPerG[g]++
		}
		for p, n := range seen {
			if n != 1 {
				t.Fatalf("round %d: payload %q recovered %d times", round, p, n)
			}
		}

		// Serial always-reference: appending the recovered sequence
		// yields a byte-identical wal.log.
		refDir := t.TempDir()
		ref, _, _ := openRecovered(t, refDir, Options{Fsync: FsyncAlways})
		for _, p := range recovered {
			if err := ref.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		ref.Close()
		batched, err := os.ReadFile(filepath.Join(dir, logFile))
		if err != nil {
			t.Fatal(err)
		}
		serial, err := os.ReadFile(filepath.Join(refDir, logFile))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batched, serial) {
			t.Fatalf("round %d: batched log differs from serial always log (%d vs %d bytes)", round, len(batched), len(serial))
		}
	}
}

// copyDirTruncated copies a WAL directory, cutting the copy's wal.log at
// size — the durable prefix a power cut would leave when everything past
// size was written but never synced.
func copyDirTruncated(t *testing.T, src, dst string, size int64) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == logFile && int64(len(data)) > size {
			data = data[:size]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchCrashBetweenWriteAndSync freezes the crash window group commit
// opens: a group's frames are written but the fsync has not returned, so
// none of its tickets have resolved. A crash there must lose only
// un-acked chunks — everything acked earlier is on the synced prefix, and
// a resume from the recovered checkpoint re-ships the rest, converging on
// the same final journal.
func TestBatchCrashBetweenWriteAndSync(t *testing.T) {
	const chunks = 10
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{
		Fsync:          FsyncBatch,
		MaxBatchFrames: 2, // several groups across 10 chunks
		MaxBatchHold:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	crashDir := t.TempDir()
	var (
		mu         sync.Mutex
		commits    int
		syncedSize int64 // wal.log size when the last synced group landed
		captured   bool
	)
	j.wal.bat.testHookPreSync = func() {
		mu.Lock()
		defer mu.Unlock()
		commits++
		if commits == 3 && !captured {
			captured = true
			// This group is written but NOT synced: the durable prefix
			// ends where the previous group's sync left it.
			copyDirTruncated(t, dir, crashDir, syncedSize)
		}
		st, err := os.Stat(filepath.Join(dir, logFile))
		if err != nil {
			t.Error(err)
			return
		}
		syncedSize = st.Size()
	}

	recs := chunkRecs("crash", 2)
	for i := 0; i < chunks; i++ {
		p, err := j.ChunkAsync("sess", "k", "frag", int64(i), recs)
		if err != nil {
			t.Fatal(err)
		}
		j.Flush()
		if err := p.Err(); err != nil { // ack chunk i before submitting i+1
			t.Fatal(err)
		}
	}
	if !captured {
		t.Fatal("pre-sync hook never captured the crash window")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover the crash copy: the checkpoint must cover a prefix of the
	// acked chunks and nothing past the synced boundary.
	rec, err := OpenJournal(crashDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss := rec.Sessions()
	var next int64
	if len(ss) > 0 {
		next = ss[0].Next
	}
	if next >= chunks {
		t.Fatalf("crash copy recovered next=%d, want < %d (the crashed group was never acked)", next, chunks)
	}
	// Resume: re-ship every chunk at or past the recovered checkpoint —
	// exactly what the source's resume protocol does.
	for i := next; i < chunks; i++ {
		if err := rec.Chunk("sess", "k", "frag", i, recs); err != nil {
			t.Fatal(err)
		}
	}
	got := rec.Sessions()
	if len(got) != 1 {
		t.Fatalf("after resume: %d sessions, want 1", len(got))
	}
	if got[0].Next != chunks || len(got[0].Chunks) != chunks {
		t.Fatalf("after resume: next=%d chunks=%d, want %d/%d",
			got[0].Next, len(got[0].Chunks), chunks, chunks)
	}
	rec.Close()
}

// TestBatchCloseResolvesPending hardens Close: tickets still queued when
// Close runs must resolve durable, not dangle — Close drains the group.
func TestBatchCloseResolvesPending(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openRecovered(t, dir, Options{
		Fsync:        FsyncBatch,
		MaxBatchHold: time.Hour, // only a drain can cut this group
	})
	var tickets []*Pending
	for i := 0; i < 5; i++ {
		tickets = append(tickets, w.AppendAsync([]byte(fmt.Sprintf("p%d", i))))
	}
	done := make(chan error, 1)
	go func() { done <- w.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung draining the batch")
	}
	for i, p := range tickets {
		select {
		case <-p.Done():
		default:
			t.Fatalf("ticket %d unresolved after Close", i)
		}
		if err := p.Err(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	w2, got, _ := openRecovered(t, dir, Options{})
	w2.Close()
	if len(got) != 5 {
		t.Fatalf("recovered %d records after Close drain, want 5", len(got))
	}
}

// TestCloseSyncsDirtyIntervalTail is the close-hardening regression: a
// clean shutdown under FsyncInterval must fsync the tail appended since
// the last tick instead of abandoning it to the page cache.
func TestCloseSyncsDirtyIntervalTail(t *testing.T) {
	met := obs.NewRegistry()
	dir := t.TempDir()
	w, _, _ := openRecovered(t, dir, Options{
		Fsync:         FsyncInterval,
		FsyncInterval: time.Hour, // the ticker never fires in this test
		Met:           met,
	})
	if err := w.Append([]byte("tail-window")); err != nil {
		t.Fatal(err)
	}
	if n := met.Counter("wal.fsyncs").Value(); n != 0 {
		t.Fatalf("unexpected %d fsyncs before Close", n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := met.Counter("wal.fsyncs").Value(); n != 1 {
		t.Fatalf("Close issued %d fsyncs, want exactly 1 for the dirty tail", n)
	}
	w2, got, _ := openRecovered(t, dir, Options{})
	w2.Close()
	if len(got) != 1 || string(got[0]) != "tail-window" {
		t.Fatalf("dirty tail not recovered: %q", got)
	}
}

// TestBatchLoneAppenderHold bounds the lone appender's wait: with nobody
// to share a group, the hold timer cuts the batch (one stall, one frame)
// rather than parking the caller indefinitely.
func TestBatchLoneAppenderHold(t *testing.T) {
	met := obs.NewRegistry()
	dir := t.TempDir()
	w, _, _ := openRecovered(t, dir, Options{
		Fsync:        FsyncBatch,
		MaxBatchHold: 5 * time.Millisecond,
		Met:          met,
	})
	defer w.Close()
	done := make(chan error, 1)
	go func() { done <- w.Append([]byte("alone")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("lone append never committed — hold timer did not fire")
	}
	if n := met.Counter("wal.batch.stalls").Value(); n < 1 {
		t.Fatalf("stalls counter = %d, want >= 1 (hold expiry)", n)
	}
	if n := met.Histogram("wal.batch.frames").Count(); n != 1 {
		t.Fatalf("batch.frames observations = %d, want 1", n)
	}
}

// TestBatchFlushHurries checks Flush cuts the hold short: with an
// effectively infinite hold, only Flush can commit the group.
func TestBatchFlushHurries(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openRecovered(t, dir, Options{
		Fsync:        FsyncBatch,
		MaxBatchHold: time.Hour,
	})
	defer w.Close()
	p := w.AppendAsync([]byte("hurried"))
	select {
	case <-p.Done():
		t.Fatal("ticket resolved before Flush under an hour-long hold")
	case <-time.After(20 * time.Millisecond):
	}
	w.Flush()
	select {
	case <-p.Done():
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Flush did not commit the pending group")
	}
}

// TestBatchRaceStress hammers one WAL from many goroutines (run under
// -race by the merge gate) and checks nothing is lost or duplicated.
func TestBatchRaceStress(t *testing.T) {
	const (
		goroutines = 8
		perG       = 150
	)
	dir := t.TempDir()
	met := obs.NewRegistry()
	w, _, _ := openRecovered(t, dir, Options{
		Fsync:          FsyncBatch,
		MaxBatchFrames: 16,
		MaxBatchHold:   500 * time.Microsecond,
		Met:            met,
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, got, _ := openRecovered(t, dir, Options{})
	w2.Close()
	if len(got) != goroutines*perG {
		t.Fatalf("recovered %d, want %d", len(got), goroutines*perG)
	}
	uniq := map[string]bool{}
	for _, p := range got {
		uniq[string(p)] = true
	}
	if len(uniq) != goroutines*perG {
		t.Fatalf("recovered %d unique payloads, want %d", len(uniq), goroutines*perG)
	}
	syncs := met.Counter("wal.fsyncs").Value()
	if syncs <= 0 || syncs >= int64(goroutines*perG) {
		t.Fatalf("fsyncs = %d, want coalesced into (0, %d)", syncs, goroutines*perG)
	}
}

// TestBatchJournalEquivalence runs the same session history through a
// batch journal (async, flush-paced) and an always journal (serial) and
// requires the recovered states to match exactly.
func TestBatchJournalEquivalence(t *testing.T) {
	type op struct {
		id  string
		seq int64
	}
	var history []op
	for s := 0; s < 3; s++ {
		for c := 0; c < 5; c++ {
			history = append(history, op{fmt.Sprintf("sess-%d", s), int64(c)})
		}
	}
	run := func(dir string, o Options, async bool) {
		j, err := OpenJournal(dir, o)
		if err != nil {
			t.Fatal(err)
		}
		var tickets []*Pending
		for _, op := range history {
			if err := j.Mint(op.id); err != nil {
				t.Fatal(err)
			}
			recs := chunkRecs(op.id, 2)
			if async {
				p, err := j.ChunkAsync(op.id, "k", "frag", op.seq, recs)
				if err != nil {
					t.Fatal(err)
				}
				tickets = append(tickets, p)
			} else if err := j.Chunk(op.id, "k", "frag", op.seq, recs); err != nil {
				t.Fatal(err)
			}
		}
		j.Flush()
		for _, p := range tickets {
			if err := p.Err(); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	run(dirA, Options{Fsync: FsyncAlways}, false)
	run(dirB, Options{Fsync: FsyncBatch, MaxBatchFrames: 4, MaxBatchHold: time.Hour}, true)

	ja, err := OpenJournal(dirA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jb, err := OpenJournal(dirB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ja.Close()
	defer jb.Close()
	a, b := ja.Sessions(), jb.Sessions()
	if len(a) != len(b) {
		t.Fatalf("session counts differ: always=%d batch=%d", len(a), len(b))
	}
	sort.Slice(a, func(i, k int) bool { return a[i].ID < a[k].ID })
	sort.Slice(b, func(i, k int) bool { return b[i].ID < b[k].ID })
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Next != b[i].Next || len(a[i].Chunks) != len(b[i].Chunks) {
			t.Fatalf("session %d differs: always={%s %d %d} batch={%s %d %d}",
				i, a[i].ID, a[i].Next, len(a[i].Chunks), b[i].ID, b[i].Next, len(b[i].Chunks))
		}
		for c := range a[i].Chunks {
			ca, cb := a[i].Chunks[c], b[i].Chunks[c]
			if ca.Key != cb.Key || ca.Frag != cb.Frag || ca.Seq != cb.Seq || len(ca.Recs) != len(cb.Recs) {
				t.Fatalf("session %s chunk %d differs", a[i].ID, c)
			}
		}
	}
}
