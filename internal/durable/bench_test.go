package durable

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the per-record append cost under each fsync
// policy — the durability overhead table of EXPERIMENTS.md. The payload is
// a typical journaled chunk record (~256 bytes).
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, pol := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			if _, err := w.Recover(nil, nil); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALRecovery measures replay time against WAL length — the
// recovery-time table of EXPERIMENTS.md.
func BenchmarkWALRecovery(b *testing.B) {
	payload := make([]byte, 256)
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("recs=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			w, err := Open(dir, Options{Fsync: FsyncOff})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.Recover(nil, nil); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
			w.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				recs := 0
				st, err := r.Recover(nil, func([]byte) error { recs++; return nil })
				if err != nil {
					b.Fatal(err)
				}
				if recs != n || st.TornBytes != 0 {
					b.Fatalf("recovered %d records, torn %d", recs, st.TornBytes)
				}
				r.Close()
			}
		})
	}
}

// BenchmarkJournalChunk measures the full journaling cost of one committed
// chunk (XML encode + frame + append) at the default endpoint chunk shape.
func BenchmarkJournalChunk(b *testing.B) {
	recs := chunkRecs("bench", 8)
	for _, pol := range []FsyncPolicy{FsyncOff, FsyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			j, err := OpenJournal(b.TempDir(), Options{Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			if err := j.Mint("bench"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Chunk("bench", "k", "f", int64(i), recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
