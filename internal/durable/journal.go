package durable

// Journal is the session-level client of the WAL: it logs the endpoint's
// resumable-session lifecycle (mint, chunk commit, end) as one XML payload
// per frame, keeps a shadow copy of the live state, and compacts the log
// into a snapshot of that shadow every SnapshotEvery appends. After a
// crash, OpenJournal rebuilds the shadow from snapshot+log; the endpoint
// re-seeds its session store from Sessions() — ledger checkpoint, seen
// record IDs, and the committed chunk contents a resumed delivery's
// execute needs.
//
// Record formats (one tree per frame):
//
//	<s id="SID"/>                                   session minted
//	<c id="SID" key="K" frag="F" seq="N">recs</c>   chunk committed
//	<c id="SID" key="K" seq="N" del="1">ids</c>     tombstone chunk committed
//	<e id="SID"/>                                   session ended
//
// Chunk records carry the post-dedup records with their instance IDs
// (EmitAllIDs), so replay reconstructs both the instance map and the
// idempotency ledger exactly; tombstone chunks (delta exchanges) carry
// the deleted record IDs as empty <d ID=…/> kids. All ops are idempotent
// under replay — re-minting is a no-op, a chunk with a seq below the
// rebuilt checkpoint is skipped, ending an unknown session is fine — which
// is what makes the snapshot/truncate crash window of WAL.Snapshot safe.
//
// Decoding is strict: a log frame whose CRC holds but whose payload is
// missing its id or carries an unparsable seq is reported to the WAL as
// ErrMalformedFrame, which stops replay there and truncates the rest as a
// torn tail — a half-decoded chunk must never silently restore a zeroed
// checkpoint. A malformed snapshot is a hard recovery error (snapshots are
// written atomically; damage there is real corruption, not a torn append).

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"xdx/internal/xmltree"
)

// SessionChunk is one committed chunk recovered from (or headed to) the
// journal: the cross-edge instance key, the fragment name to resolve
// against the resumed program, the chunk sequence, and the committed
// records.
type SessionChunk struct {
	Key  string
	Frag string
	Seq  int64
	Recs []*xmltree.Node
	// Del marks a tombstone chunk of a delta exchange: Recs are empty
	// <d ID=…/> markers naming the deleted record IDs, not records to
	// hydrate into the instance map.
	Del bool
}

// JSession is the recovered durable state of one session.
type JSession struct {
	// ID names the session on the wire.
	ID string
	// Next is the rebuilt chunk checkpoint (lowest seq not yet committed).
	Next int64
	// Chunks are the committed chunks in commit order.
	Chunks []SessionChunk
}

// Journal persists session state through a WAL.
type Journal struct {
	wal *WAL

	mu       sync.Mutex
	sessions map[string]*JSession
	appends  int // since last snapshot
	every    int

	stats RecoveryStats
}

// OpenJournal opens the WAL in dir and recovers the journaled sessions.
func OpenJournal(dir string, o Options) (*Journal, error) {
	w, err := Open(dir, o)
	if err != nil {
		return nil, err
	}
	j := &Journal{wal: w, sessions: map[string]*JSession{}, every: o.SnapshotEvery}
	st, err := w.Recover(j.replaySnapshot, j.replayRecord)
	if err != nil {
		w.Close()
		return nil, err
	}
	j.stats = st
	return j, nil
}

// RecoveryStats reports what recovery found when the journal was opened.
func (j *Journal) RecoveryStats() RecoveryStats { return j.stats }

// Sessions returns the recovered (or current) durable sessions, sorted by
// ID. Chunk record trees are shared with the shadow state and must be
// treated as immutable.
func (j *Journal) Sessions() []*JSession {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*JSession, 0, len(j.sessions))
	for _, s := range j.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Len reports the live journaled session count.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.sessions)
}

// Batched reports whether the underlying WAL runs group commit
// (FsyncBatch) — the mode where ChunkAsync pipelines and Flush matters.
func (j *Journal) Batched() bool { return j.wal.bat != nil }

// Flush hurries the WAL's pending commit group out (FsyncBatch only):
// call it before parking on tickets so a quiet session never waits out
// the batch hold.
func (j *Journal) Flush() { j.wal.Flush() }

// Mint journals a new session. Re-minting a known session is a no-op.
// Under group commit the mint frame is not waited on: it is ordered ahead
// of the session's chunk frames in the same WAL, so any durable chunk
// implies a durable mint — and a lost mint alone is harmless, since chunk
// replay creates unknown sessions.
func (j *Journal) Mint(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sessions[id] != nil {
		return nil
	}
	n := &xmltree.Node{Name: "s"}
	n.SetAttr("id", id)
	p, err := j.appendPendingLocked(n)
	if err != nil {
		return err
	}
	if !j.Batched() {
		if err := p.Err(); err != nil {
			return err
		}
	}
	j.sessions[id] = &JSession{ID: id}
	return j.maybeCompactLocked()
}

// Chunk journals one committed chunk: it must be called before the chunk's
// checkpoint is allowed to advance, so a crash after this call replays the
// commit and a crash before it re-ships the chunk. The records are the
// post-dedup set actually committed.
func (j *Journal) Chunk(id, key, frag string, seq int64, recs []*xmltree.Node) error {
	p, err := j.ChunkAsync(id, key, frag, seq, recs)
	if err != nil {
		return err
	}
	return p.Err()
}

// ChunkAsync journals one committed chunk without waiting for durability:
// the returned ticket resolves when the frame's commit group has synced
// (immediately under non-batch policies). The caller must not advance the
// chunk's checkpoint — or acknowledge anything downstream of it — before
// the ticket resolves successfully; that deferred ack is what lets the
// decoder keep parsing the next chunk while this one's fsync is in
// flight. An error return (encode or compaction failure) means nothing
// was appended.
func (j *Journal) ChunkAsync(id, key, frag string, seq int64, recs []*xmltree.Node) (*Pending, error) {
	return j.chunkAsync(id, SessionChunk{Key: key, Frag: frag, Seq: seq, Recs: recs})
}

// Tomb journals one committed tombstone chunk (the deletions of a delta
// exchange) synchronously; see TombAsync.
func (j *Journal) Tomb(id, key string, seq int64, ids []string) error {
	p, err := j.TombAsync(id, key, seq, ids)
	if err != nil {
		return err
	}
	return p.Err()
}

// TombAsync journals one committed tombstone chunk without waiting for
// durability — the delta-exchange counterpart of ChunkAsync. The deleted
// record IDs travel as empty <d ID=…/> kids and replay into a Del chunk,
// so recovery re-applies the deletions instead of hydrating phantom
// records.
func (j *Journal) TombAsync(id, key string, seq int64, ids []string) (*Pending, error) {
	recs := make([]*xmltree.Node, 0, len(ids))
	for _, rid := range ids {
		recs = append(recs, &xmltree.Node{Name: "d", ID: rid})
	}
	return j.chunkAsync(id, SessionChunk{Key: key, Seq: seq, Recs: recs, Del: true})
}

func (j *Journal) chunkAsync(id string, c SessionChunk) (*Pending, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := &xmltree.Node{Name: "c"}
	n.SetAttr("id", id)
	n.SetAttr("key", c.Key)
	if c.Frag != "" {
		n.SetAttr("frag", c.Frag)
	}
	n.SetAttr("seq", strconv.FormatInt(c.Seq, 10))
	if c.Del {
		n.SetAttr("del", "1")
	}
	n.Kids = c.Recs
	p, err := j.appendPendingLocked(n)
	if err != nil {
		return nil, err
	}
	j.applyChunkLocked(id, c)
	if err := j.maybeCompactLocked(); err != nil {
		return nil, err
	}
	return p, nil
}

// End journals the release of sessions (EndSession, sweeps) and drops them
// from the shadow state, shrinking the next snapshot. Under group commit
// the end frames are not waited on: a lost end merely leaves a session to
// be swept again, and the shadow deletion reaches the next snapshot
// regardless.
func (j *Journal) End(ids ...string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var firstErr error
	for _, id := range ids {
		if j.sessions[id] == nil {
			continue
		}
		n := &xmltree.Node{Name: "e"}
		n.SetAttr("id", id)
		p, err := j.appendPendingLocked(n)
		if err == nil && !j.Batched() {
			err = p.Err()
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		delete(j.sessions, id)
	}
	if firstErr != nil {
		return firstErr
	}
	return j.maybeCompactLocked()
}

// Compact snapshots the shadow state and truncates the log.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

// Close syncs and releases the underlying WAL.
func (j *Journal) Close() error { return j.wal.Close() }

// appendPendingLocked encodes one record tree and hands it to the WAL,
// returning the durability ticket. The error covers encoding only; the
// append outcome arrives through the ticket.
func (j *Journal) appendPendingLocked(n *xmltree.Node) (*Pending, error) {
	var b strings.Builder
	if err := xmltree.Write(&b, n, xmltree.WriteOptions{EmitAllIDs: true}); err != nil {
		return nil, err
	}
	j.appends++
	return j.wal.AppendAsync([]byte(b.String())), nil
}

func (j *Journal) maybeCompactLocked() error {
	if j.every <= 0 || j.appends < j.every {
		return nil
	}
	return j.compactLocked()
}

// compactLocked serializes the shadow state as <journal><s…><c…/></s></journal>
// and hands it to WAL.Snapshot.
func (j *Journal) compactLocked() error {
	root := &xmltree.Node{Name: "journal"}
	ids := make([]string, 0, len(j.sessions))
	for id := range j.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := j.sessions[id]
		sn := &xmltree.Node{Name: "s"}
		sn.SetAttr("id", s.ID)
		sn.SetAttr("next", strconv.FormatInt(s.Next, 10))
		for _, c := range s.Chunks {
			cn := &xmltree.Node{Name: "c"}
			cn.SetAttr("key", c.Key)
			if c.Frag != "" {
				cn.SetAttr("frag", c.Frag)
			}
			cn.SetAttr("seq", strconv.FormatInt(c.Seq, 10))
			if c.Del {
				cn.SetAttr("del", "1")
			}
			cn.Kids = c.Recs
			sn.AddKid(cn)
		}
		root.AddKid(sn)
	}
	var b strings.Builder
	if err := xmltree.Write(&b, root, xmltree.WriteOptions{EmitAllIDs: true}); err != nil {
		return err
	}
	if err := j.wal.Snapshot([]byte(b.String())); err != nil {
		return err
	}
	j.appends = 0
	return nil
}

// applyChunkLocked folds one chunk commit into the shadow state, with the
// ledger's checkpoint rule (seq >= next advances next to seq+1; seqless
// chunks leave it alone). Replayed duplicates — a stale log record applied
// over a newer snapshot — are skipped by the same rule.
func (j *Journal) applyChunkLocked(id string, c SessionChunk) {
	s := j.sessions[id]
	if s == nil {
		s = &JSession{ID: id}
		j.sessions[id] = s
	}
	if c.Seq >= 0 && c.Seq < s.Next {
		return // already compacted into the snapshot; idempotent replay
	}
	s.Chunks = append(s.Chunks, c)
	if c.Seq >= s.Next {
		s.Next = c.Seq + 1
	}
}

// replaySnapshot rebuilds the shadow state from a compacted snapshot.
func (j *Journal) replaySnapshot(payload []byte) error {
	root, err := xmltree.Parse(strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	if root.Name != "journal" {
		return fmt.Errorf("unexpected snapshot root %q", root.Name)
	}
	for _, sn := range root.Kids {
		if sn.Name != "s" {
			continue
		}
		id, _ := sn.Attr("id")
		if id == "" {
			return fmt.Errorf("snapshot session without id")
		}
		s := &JSession{ID: id}
		// The compactor always stamps next; a session element without it, or
		// with an unparsable value, is corruption — restoring checkpoint 0
		// here would rewind the ledger and mis-dedup resumed chunks.
		v, ok := sn.Attr("next")
		if !ok {
			return fmt.Errorf("snapshot session %q without next checkpoint", id)
		}
		next, err := strconv.ParseInt(v, 10, 64)
		if err != nil || next < 0 {
			return fmt.Errorf("snapshot session %q: bad next checkpoint %q", id, v)
		}
		s.Next = next
		for _, cn := range sn.Kids {
			if cn.Name != "c" {
				continue
			}
			c, err := parseChunk(cn)
			if err != nil {
				return fmt.Errorf("snapshot session %q: %v", id, err)
			}
			s.Chunks = append(s.Chunks, c)
		}
		j.sessions[id] = s
	}
	return nil
}

// replayRecord folds one log frame into the shadow state. Any decode
// failure — unparsable XML, a missing id, a mangled seq — is reported as
// ErrMalformedFrame so the WAL stops replay there and truncates the rest
// as a torn tail, instead of restoring a half-decoded (zeroed) record.
func (j *Journal) replayRecord(payload []byte) error {
	n, err := xmltree.Parse(strings.NewReader(string(payload)))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformedFrame, err)
	}
	id, _ := n.Attr("id")
	if id == "" {
		return fmt.Errorf("%w: %s record without id", ErrMalformedFrame, n.Name)
	}
	switch n.Name {
	case "s":
		if j.sessions[id] == nil {
			j.sessions[id] = &JSession{ID: id}
		}
	case "c":
		c, err := parseChunk(n)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformedFrame, err)
		}
		j.applyChunkLocked(id, c)
	case "e":
		delete(j.sessions, id)
	default:
		return fmt.Errorf("%w: unknown journal record %q", ErrMalformedFrame, n.Name)
	}
	return nil
}

// parseChunk decodes one <c> element strictly: the seq attribute must be
// present and parse, because defaulting it would rewind the rebuilt
// checkpoint (applyChunkLocked derives next from it).
func parseChunk(n *xmltree.Node) (SessionChunk, error) {
	var c SessionChunk
	c.Key, _ = n.Attr("key")
	c.Frag, _ = n.Attr("frag")
	v, ok := n.Attr("seq")
	if !ok {
		return c, fmt.Errorf("chunk record without seq")
	}
	seq, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return c, fmt.Errorf("chunk record with bad seq %q", v)
	}
	c.Seq = seq
	if v, _ := n.Attr("del"); v == "1" {
		c.Del = true
	}
	c.Recs = n.Kids
	return c, nil
}
