package durable

import (
	"os"
	"path/filepath"
	"testing"

	"xdx/internal/xmltree"
)

// chunkRecs builds n records with IDs derived from prefix.
func chunkRecs(prefix string, n int) []*xmltree.Node {
	recs := make([]*xmltree.Node, n)
	for i := range recs {
		recs[i] = &xmltree.Node{
			Name: "item", ID: prefix + string(rune('a'+i)), Parent: "root",
			Kids: []*xmltree.Node{{Name: "name", Text: "v" + prefix}},
		}
	}
	return recs
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Mint("sess-1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Mint("sess-1"); err != nil { // re-mint is a no-op
		t.Fatal(err)
	}
	r0 := chunkRecs("x", 3)
	r1 := chunkRecs("y", 2)
	if err := j.Chunk("sess-1", "F1->F2", "F2", 0, r0); err != nil {
		t.Fatal(err)
	}
	if err := j.Chunk("sess-1", "F1->F2", "F2", 1, r1); err != nil {
		t.Fatal(err)
	}
	if err := j.Mint("sess-2"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	back, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	sessions := back.Sessions()
	if len(sessions) != 2 {
		t.Fatalf("recovered %d sessions, want 2", len(sessions))
	}
	s := sessions[0]
	if s.ID != "sess-1" || s.Next != 2 || len(s.Chunks) != 2 {
		t.Fatalf("sess-1 recovered as %+v", s)
	}
	c := s.Chunks[0]
	if c.Key != "F1->F2" || c.Frag != "F2" || c.Seq != 0 || len(c.Recs) != 3 {
		t.Fatalf("chunk 0 recovered as %+v", c)
	}
	for i, rec := range c.Recs {
		if !xmltree.Equal(rec, r0[i]) {
			t.Fatalf("chunk 0 record %d mismatch:\n got %s\nwant %s",
				i, xmltree.Marshal(rec, xmltree.WriteOptions{EmitAllIDs: true}),
				xmltree.Marshal(r0[i], xmltree.WriteOptions{EmitAllIDs: true}))
		}
	}
	if sessions[1].ID != "sess-2" || sessions[1].Next != 0 || len(sessions[1].Chunks) != 0 {
		t.Fatalf("sess-2 recovered as %+v", sessions[1])
	}
}

func TestJournalEndReleasesSession(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Mint("a")
	j.Chunk("a", "k", "f", 0, chunkRecs("a", 1))
	j.Mint("b")
	if err := j.End("a", "never-seen"); err != nil {
		t.Fatal(err)
	}
	j.Close()
	back, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	sessions := back.Sessions()
	if len(sessions) != 1 || sessions[0].ID != "b" {
		t.Fatalf("after End, recovered %+v", sessions)
	}
}

// Compaction must preserve the recoverable state exactly while shrinking
// the log, and stale pre-snapshot log records replayed over a newer
// snapshot (the crash window between snapshot rename and log truncate)
// must be idempotent.
func TestJournalCompactPreservesState(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Mint("s")
	j.Chunk("s", "k", "f", 0, chunkRecs("p", 2))
	j.Chunk("s", "k", "f", 1, chunkRecs("q", 2))
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Chunk("s", "k", "f", 2, chunkRecs("r", 1))
	j.Close()

	back, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sessions := back.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("recovered %d sessions", len(sessions))
	}
	s := sessions[0]
	if s.Next != 3 || len(s.Chunks) != 3 {
		t.Fatalf("recovered next=%d chunks=%d, want 3/3", s.Next, len(s.Chunks))
	}
	back.Close()

	// Crash window: stale records (seqs 0..1) replayed over the snapshot
	// that already contains them must not duplicate chunks.
	stale, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale.mu.Lock()
	stale.applyChunkLocked("s", SessionChunk{Key: "k", Frag: "f", Seq: 1, Recs: chunkRecs("q", 2)})
	n := len(stale.sessions["s"].Chunks)
	stale.mu.Unlock()
	stale.Close()
	if n != 3 {
		t.Fatalf("stale replay duplicated chunks: %d", n)
	}
}

func TestJournalSnapshotEveryAutoCompacts(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	j.Mint("s")
	for i := int64(0); i < 8; i++ {
		if err := j.Chunk("s", "k", "f", i, chunkRecs("z", 1)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	snap, err := os.Stat(filepath.Join(dir, snapFile))
	if err != nil {
		t.Fatalf("auto-compaction never snapshotted: %v", err)
	}
	if snap.Size() == 0 {
		t.Error("empty snapshot")
	}
	log, err := os.Stat(filepath.Join(dir, logFile))
	if err != nil {
		t.Fatal(err)
	}
	if log.Size() > snap.Size() {
		t.Errorf("log (%d bytes) not compacted below snapshot (%d bytes)", log.Size(), snap.Size())
	}
	back, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if s := back.Sessions(); len(s) != 1 || s[0].Next != 8 || len(s[0].Chunks) != 8 {
		t.Fatalf("recovered %+v", s)
	}
}

// A SIGKILL-shaped tear: truncate the journal's log mid-frame; recovery
// replays the longest valid prefix.
func TestJournalTornLogRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	j.Mint("s")
	j.Chunk("s", "k", "f", 0, chunkRecs("a", 2))
	j.Chunk("s", "k", "f", 1, chunkRecs("b", 2))
	j.Close()
	logPath := filepath.Join(dir, logFile)
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	back, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	s := back.Sessions()
	if len(s) != 1 || s[0].Next != 1 || len(s[0].Chunks) != 1 {
		t.Fatalf("torn journal recovered %+v", s)
	}
}
