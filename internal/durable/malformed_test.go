package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appendRawFrame appends one CRC-valid frame with an arbitrary payload to
// a closed WAL's log file — the attacker's (or bit-rot's) view: the frame
// machinery is intact, the payload is whatever it is.
func appendRawFrame(t *testing.T, dir string, payload string) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, logFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var hdr [frameHeader]byte
	frameInto(hdr[:], []byte(payload))
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
}

// seedJournal writes a two-chunk session and closes the journal, returning
// the directory. The recovered state must always show Next=2.
func seedJournal(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Mint("s")
	if err := j.Chunk("s", "k", "f", 0, chunkRecs("a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Chunk("s", "k", "f", 1, chunkRecs("b", 2)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	return dir
}

// checkMalformedStop reopens a seeded journal whose log tail carries one
// malformed frame (followed by good frames that must also be discarded)
// and asserts replay stopped at the mangled frame without rewinding the
// checkpoint — the regression for the silent ParseInt-zeroing bug.
func checkMalformedStop(t *testing.T, dir string) {
	t.Helper()
	back, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatalf("recovery must stop, not fail: %v", err)
	}
	defer back.Close()
	st := back.RecoveryStats()
	if st.MalformedFrames != 1 {
		t.Fatalf("MalformedFrames = %d, want 1", st.MalformedFrames)
	}
	if st.TornBytes == 0 {
		t.Fatalf("malformed tail not counted as torn")
	}
	s := back.Sessions()
	if len(s) != 1 || s[0].ID != "s" {
		t.Fatalf("recovered sessions %+v", s)
	}
	if s[0].Next != 2 || len(s[0].Chunks) != 2 {
		t.Fatalf("checkpoint rewound or overrun: Next=%d chunks=%d, want 2/2", s[0].Next, len(s[0].Chunks))
	}
	// The tail was truncated at the malformed frame, so a second recovery
	// is clean.
	back.Close()
	again, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if st := again.RecoveryStats(); st.MalformedFrames != 0 || st.TornBytes != 0 {
		t.Fatalf("second recovery not clean: %+v", st)
	}
	if s := again.Sessions(); len(s) != 1 || s[0].Next != 2 {
		t.Fatalf("second recovery lost state: %+v", s)
	}
}

func TestJournalMalformedSeqStopsReplay(t *testing.T) {
	dir := seedJournal(t)
	// An attr-mangled chunk frame (seq is not a number), followed by a
	// perfectly good frame that must be discarded with the tail — replay
	// after a malformed frame cannot be trusted.
	appendRawFrame(t, dir, `<c id="s" key="k" frag="f" seq="notanumber"><item ID="z"/></c>`)
	appendRawFrame(t, dir, `<c id="s" key="k" frag="f" seq="7"><item ID="w"/></c>`)
	checkMalformedStop(t, dir)
}

func TestJournalMissingSeqStopsReplay(t *testing.T) {
	dir := seedJournal(t)
	appendRawFrame(t, dir, `<c id="s" key="k" frag="f"><item ID="z"/></c>`)
	checkMalformedStop(t, dir)
}

func TestJournalMissingIDStopsReplay(t *testing.T) {
	dir := seedJournal(t)
	appendRawFrame(t, dir, `<c key="k" frag="f" seq="5"><item ID="z"/></c>`)
	checkMalformedStop(t, dir)
}

func TestJournalUnparsableFrameStopsReplay(t *testing.T) {
	dir := seedJournal(t)
	appendRawFrame(t, dir, `<c id="s" key="k`)
	checkMalformedStop(t, dir)
}

func TestJournalUnknownRecordStopsReplay(t *testing.T) {
	dir := seedJournal(t)
	appendRawFrame(t, dir, `<zz id="s"/>`)
	checkMalformedStop(t, dir)
}

// A corrupt snapshot is a hard error, not a silent zero: the snapshot is
// written atomically, so a session element missing its next checkpoint
// (or carrying garbage there) means real corruption.
func TestJournalCorruptSnapshotFails(t *testing.T) {
	for _, snap := range []string{
		`<journal><s id="x"><c key="k" seq="0"/></s></journal>`,          // missing next
		`<journal><s id="x" next="NaN"><c key="k" seq="0"/></s></journal>`, // bad next
		`<journal><s id="x" next="3"><c key="k"/></s></journal>`,          // chunk without seq
		`<journal><s next="3"/></journal>`,                                // session without id
	} {
		dir := t.TempDir()
		w, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Recover(nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.Snapshot([]byte(snap)); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if _, err := OpenJournal(dir, Options{}); err == nil {
			t.Fatalf("corrupt snapshot %q recovered without error", snap)
		} else if !strings.Contains(err.Error(), "snapshot") {
			t.Fatalf("unexpected error for %q: %v", snap, err)
		}
	}
}

// Tombstone chunks (delta exchanges) journal, recover, and compact with
// their Del marking intact, so recovery never hydrates deletions as
// records.
func TestJournalTombstoneRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Mint("s")
	if err := j.Chunk("s", "k", "f", 0, chunkRecs("a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Tomb("s", "k", 1, []string{"a1", "a2"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	back, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	s := back.Sessions()
	if len(s) != 1 || s[0].Next != 2 || len(s[0].Chunks) != 2 {
		t.Fatalf("recovered %+v", s)
	}
	tomb := s[0].Chunks[1]
	if !tomb.Del || tomb.Key != "k" || tomb.Seq != 1 {
		t.Fatalf("tombstone chunk recovered as %+v", tomb)
	}
	if len(tomb.Recs) != 2 || tomb.Recs[0].ID != "a1" || tomb.Recs[1].ID != "a2" {
		t.Fatalf("tombstone ids recovered as %+v", tomb.Recs)
	}
	if s[0].Chunks[0].Del {
		t.Fatalf("record chunk marked Del")
	}
}
