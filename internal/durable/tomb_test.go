package durable

import (
	"testing"

	"xdx/internal/xmltree"
)

// tombRec builds a minimal journaled record tree.
func tombRec(id string) *xmltree.Node {
	return &xmltree.Node{Name: "item", ID: id, Kids: []*xmltree.Node{{Name: "iname", Text: "x-" + id}}}
}

// TestJournalTombBatchPipeline journals a record chunk and a tombstone
// chunk through the group-commit pipeline (TombAsync + Flush), reopens the
// WAL, and checks recovery rebuilds both in commit order with the
// checkpoint advanced past the deletion — the batched path must order and
// persist Del frames exactly like the serial Tomb path does.
func TestJournalTombBatchPipeline(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{Fsync: FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Mint("sess-1"); err != nil {
		t.Fatal(err)
	}
	pc, err := j.ChunkAsync("sess-1", "k1", "ITEM", 0, []*xmltree.Node{tombRec("4"), tombRec("9")})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := j.TombAsync("sess-1", "k1", 1, []string{"4", "17"})
	if err != nil {
		t.Fatal(err)
	}
	j.Flush()
	if err := pc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := pt.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, Options{Fsync: FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ss := j2.Sessions()
	if len(ss) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(ss))
	}
	s := ss[0]
	if s.Next != 2 {
		t.Errorf("recovered checkpoint Next = %d, want 2 (tombstone chunk must advance it)", s.Next)
	}
	if len(s.Chunks) != 2 {
		t.Fatalf("recovered %d chunks, want 2", len(s.Chunks))
	}
	if s.Chunks[0].Del || len(s.Chunks[0].Recs) != 2 {
		t.Errorf("chunk 0 = {Del:%v recs:%d}, want record chunk with 2 records",
			s.Chunks[0].Del, len(s.Chunks[0].Recs))
	}
	tc := s.Chunks[1]
	if !tc.Del || tc.Seq != 1 || tc.Key != "k1" {
		t.Fatalf("chunk 1 = {Del:%v Seq:%d Key:%q}, want Del chunk seq 1 key k1", tc.Del, tc.Seq, tc.Key)
	}
	var ids []string
	for _, r := range tc.Recs {
		if r.Name != "d" || len(r.Kids) != 0 {
			t.Errorf("tombstone marker %q has kids or wrong name — it would hydrate as a record", r.Name)
		}
		ids = append(ids, r.ID)
	}
	if len(ids) != 2 || ids[0] != "4" || ids[1] != "17" {
		t.Errorf("recovered tombstone IDs = %v, want [4 17]", ids)
	}
}

// TestJournalTombReplayIsIdempotent re-journals the same tombstone seq
// twice (a crash between WAL append and ack makes redelivery legal) and
// checks recovery keeps a single checkpoint advance — the dedup rule for
// record chunks must hold for deletion chunks too.
func TestJournalTombReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Mint("sess-1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Tomb("sess-1", "k1", 0, []string{"3"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Tomb("sess-1", "k1", 0, []string{"3"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ss := j2.Sessions()
	if len(ss) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(ss))
	}
	if ss[0].Next != 1 {
		t.Errorf("Next = %d after duplicate tombstone replay, want 1", ss[0].Next)
	}
	if n := len(ss[0].Chunks); n != 1 {
		t.Errorf("recovered %d chunks after duplicate tombstone replay, want 1", n)
	}
}
