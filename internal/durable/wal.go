// Package durable is the crash-safety subsystem of the exchange
// architecture (ROADMAP item 2): an append-only write-ahead log with
// CRC32-framed, length-prefixed records, a configurable fsync policy,
// snapshot+compact cycles, and recovery that truncates a torn tail and
// replays the longest valid prefix. The reliability layer (PR 3) promises
// exactly-once resumable exchanges; this package makes the state backing
// that promise — session checkpoints, idempotency ledgers, committed
// chunks — survive a SIGKILL, so a restarted endpoint resumes from its
// last committed chunk instead of forgetting the transfer.
//
// On-disk layout of a WAL directory:
//
//	wal.log       frames appended since the last snapshot
//	snapshot.xdx  one frame holding the compacted state (atomic rename)
//
// Frame format (all integers little-endian):
//
//	uint32 length | uint32 CRC32(payload) | payload
//
// Recovery replays the snapshot first, then every log frame whose length
// is plausible and whose checksum matches; the first bad frame ends the
// replay and the file is truncated there (the torn tail a crash mid-append
// leaves behind). Replay handlers must therefore be idempotent against the
// snapshot/truncate race: a crash between the snapshot rename and the log
// truncation replays pre-snapshot records on top of the snapshot state.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"xdx/internal/obs"
)

// ErrMalformedFrame marks a log frame whose payload passed the CRC check
// but does not decode into a valid record — a mangled attribute, a missing
// identifier, an unparsable sequence number. Replay handlers wrap it to
// tell Recover "stop here and treat the rest as a torn tail": restoring a
// half-decoded record (checkpoint 0, seq 0) would silently rewind session
// state, which is strictly worse than discarding the suffix and letting
// the resume protocol re-ship.
var ErrMalformedFrame = errors.New("durable: malformed frame")

// FsyncPolicy dials how eagerly the WAL forces appended frames to stable
// storage — the classic durability/throughput trade measured in
// EXPERIMENTS.md.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: nothing acknowledged is ever
	// lost, at one fsync per committed chunk.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background ticker: a crash loses at most
	// the last interval's appends (which the resume protocol re-ships).
	FsyncInterval
	// FsyncOff never syncs explicitly: durability is whatever the OS page
	// cache survives. A process kill (the fault the crash smoke injects)
	// still loses nothing — the data is in the kernel — but a power cut
	// may.
	FsyncOff
	// FsyncBatch is group commit: appenders enqueue frames and park on a
	// ticket while a leader coalesces every queued frame into one write +
	// one fsync (batch.go). Acknowledged appends are as durable as
	// FsyncAlways — a ticket resolves only after its group synced — at a
	// fraction of the fsyncs under concurrency.
	FsyncBatch
)

// ParseFsync parses a -fsync flag value: always, batch, interval, or off.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, batch, interval, or off)", s)
}

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return "always"
}

// Options configures a WAL.
type Options struct {
	// Fsync is the sync policy. Default FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval.
	// Default 50ms.
	FsyncInterval time.Duration
	// MaxBatchBytes caps a FsyncBatch commit group's coalesced frame
	// bytes; a group at the cap commits without waiting out the hold.
	// Default 1MiB.
	MaxBatchBytes int
	// MaxBatchFrames caps a FsyncBatch commit group's frame count.
	// Default 256.
	MaxBatchFrames int
	// MaxBatchHold bounds how long a FsyncBatch leader waits for more
	// frames before committing a non-full group — the worst-case extra
	// latency a lone appender pays. Default FsyncInterval/10 (5ms).
	MaxBatchHold time.Duration
	// SnapshotEvery, when > 0, is consumed by layers above (the session
	// Journal) as the number of appends between snapshot+compact cycles.
	SnapshotEvery int
	// Log receives recovery and snapshot events. Nil is off.
	Log obs.Logger
	// Met receives the wal.* metric family. Nil is off.
	Met *obs.Registry
}

// RecoveryStats reports what Recover found.
type RecoveryStats struct {
	// SnapshotBytes is the size of the replayed snapshot payload (0 when
	// no snapshot exists).
	SnapshotBytes int64
	// Records is how many valid log frames were replayed.
	Records int
	// TornBytes is how many trailing bytes were discarded as a torn or
	// corrupt tail.
	TornBytes int64
	// MalformedFrames is 1 when replay stopped at a CRC-valid frame whose
	// payload would not decode (ErrMalformedFrame); the frame and
	// everything after it are counted in TornBytes.
	MalformedFrames int
	// Elapsed is how long recovery took.
	Elapsed time.Duration
}

const (
	logFile      = "wal.log"
	snapFile     = "snapshot.xdx"
	frameHeader  = 8
	maxFrameSize = 1 << 30 // length sanity bound: longer is a torn header
)

// WAL is an append-only log with CRC framing and snapshot+compact cycles.
// It is safe for concurrent use.
type WAL struct {
	dir  string
	opts Options
	log  obs.Logger
	met  *obs.Registry

	mu        sync.Mutex
	f         *os.File
	recovered bool
	dirty     bool // appended since last sync (interval policy)
	closed    bool
	stop      chan struct{}
	wg        sync.WaitGroup
	hdr       [frameHeader]byte

	bat *batcher // group-commit state; non-nil only under FsyncBatch
}

// Open opens (creating if needed) the WAL in dir. Recover must be called
// before the first Append.
func Open(dir string, o Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open: %w", err)
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 1 << 20
	}
	if o.MaxBatchFrames <= 0 {
		o.MaxBatchFrames = 256
	}
	if o.MaxBatchHold <= 0 {
		o.MaxBatchHold = o.FsyncInterval / 10
	}
	f, err := os.OpenFile(filepath.Join(dir, logFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open: %w", err)
	}
	w := &WAL{dir: dir, opts: o, log: obs.OrNop(o.Log), met: o.Met, f: f, stop: make(chan struct{})}
	if o.Fsync == FsyncInterval {
		w.wg.Add(1)
		go w.syncLoop()
	}
	if o.Fsync == FsyncBatch {
		w.bat = newBatcher(w)
	}
	return w, nil
}

// syncLoop is the FsyncInterval background syncer.
func (w *WAL) syncLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && !w.closed {
				w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// Recover replays the snapshot (snap callback, skipped when no snapshot
// exists) and then the longest valid prefix of the log (rec callback, one
// call per frame), truncating any torn tail so the file ends on a frame
// boundary. It must be called exactly once, before the first Append.
func (w *WAL) Recover(snap func(payload []byte) error, rec func(payload []byte) error) (RecoveryStats, error) {
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	var st RecoveryStats
	if w.recovered {
		return st, fmt.Errorf("durable: Recover called twice")
	}

	if data, err := os.ReadFile(filepath.Join(w.dir, snapFile)); err == nil {
		payload, _, ok := parseFrame(data)
		if !ok || len(data) != frameHeader+len(payload) {
			return st, fmt.Errorf("durable: corrupt snapshot %s", filepath.Join(w.dir, snapFile))
		}
		if snap != nil {
			if err := snap(payload); err != nil {
				return st, fmt.Errorf("durable: replay snapshot: %w", err)
			}
		}
		st.SnapshotBytes = int64(len(payload))
	} else if !os.IsNotExist(err) {
		return st, fmt.Errorf("durable: recover: %w", err)
	}

	data, err := os.ReadFile(filepath.Join(w.dir, logFile))
	if err != nil {
		return st, fmt.Errorf("durable: recover: %w", err)
	}
	off := 0
	for {
		payload, n, ok := parseFrame(data[off:])
		if !ok {
			break
		}
		if rec != nil {
			if err := rec(payload); err != nil {
				if errors.Is(err, ErrMalformedFrame) {
					// The frame's bytes are intact (CRC matched) but the
					// payload does not decode into a record. Replaying a
					// half-decoded record would silently restore zeroed
					// state, so stop here and discard the frame and
					// everything after it as a torn tail.
					st.MalformedFrames++
					w.log.Log(obs.LevelWarn, "wal malformed frame; truncating as torn tail",
						"dir", w.dir, "record", st.Records, "err", err.Error())
					break
				}
				return st, fmt.Errorf("durable: replay record %d: %w", st.Records, err)
			}
		}
		st.Records++
		off += n
	}
	if torn := len(data) - off; torn > 0 {
		st.TornBytes = int64(torn)
		if err := w.f.Truncate(int64(off)); err != nil {
			return st, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return st, fmt.Errorf("durable: recover: %w", err)
		}
		w.log.Log(obs.LevelInfo, "wal torn tail truncated", "dir", w.dir, "bytes", torn)
	}
	if _, err := w.f.Seek(int64(off), 0); err != nil {
		return st, fmt.Errorf("durable: recover: %w", err)
	}
	w.recovered = true
	st.Elapsed = time.Since(start)
	if w.met != nil {
		w.met.Counter("wal.recovery.records").Add(int64(st.Records))
		w.met.Counter("wal.recovery.torn_bytes").Add(st.TornBytes)
		w.met.Counter("wal.recovery.malformed").Add(int64(st.MalformedFrames))
		w.met.Histogram("wal.recovery.millis").Observe(float64(st.Elapsed) / float64(time.Millisecond))
		w.met.Gauge("wal.snapshot.bytes").Set(st.SnapshotBytes)
	}
	return st, nil
}

// parseFrame decodes one frame from the head of data, returning the
// payload, the total frame length consumed, and whether the frame was
// valid (plausible length, full payload present, checksum match).
func parseFrame(data []byte) (payload []byte, n int, ok bool) {
	if len(data) < frameHeader {
		return nil, 0, false
	}
	length := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if length > maxFrameSize || int(length) > len(data)-frameHeader {
		return nil, 0, false
	}
	payload = data[frameHeader : frameHeader+int(length)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, frameHeader + int(length), true
}

// frameInto encodes the length+CRC frame header for payload into hdr
// (frameHeader bytes).
func frameInto(hdr, payload []byte) {
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
}

// Append writes one frame. Under FsyncAlways it returns only after the
// frame is on stable storage; under FsyncBatch it parks on the frame's
// commit group — same durability guarantee, shared fsync.
func (w *WAL) Append(payload []byte) error {
	return w.AppendAsync(payload).Err()
}

// AppendAsync writes one frame without waiting for durability. Under
// FsyncBatch the frame joins the pending commit group and the returned
// ticket resolves when the group's single write+fsync completes; under
// every other policy the append happens synchronously (with that policy's
// durability) and the ticket is already resolved. The payload is copied
// before AppendAsync returns; callers may reuse it.
func (w *WAL) AppendAsync(payload []byte) *Pending {
	w.mu.Lock()
	if err := w.appendableLocked(); err != nil {
		w.mu.Unlock()
		return resolvedPending(err)
	}
	if w.bat == nil {
		defer w.mu.Unlock()
		return resolvedPending(w.appendLocked(payload))
	}
	w.mu.Unlock()
	return w.bat.enqueue(payload)
}

// appendableLocked checks the Recover-before-Append and not-closed
// preconditions shared by both append paths.
func (w *WAL) appendableLocked() error {
	if !w.recovered {
		return fmt.Errorf("durable: Append before Recover")
	}
	if w.closed {
		return fmt.Errorf("durable: Append on closed WAL")
	}
	return nil
}

func (w *WAL) appendLocked(payload []byte) error {
	if err := w.appendableLocked(); err != nil {
		return err
	}
	frameInto(w.hdr[:], payload)
	if _, err := w.f.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	w.dirty = true
	if w.met != nil {
		w.met.Counter("wal.appends").Inc()
		w.met.Counter("wal.append.bytes").Add(int64(frameHeader + len(payload)))
	}
	if w.opts.Fsync == FsyncAlways {
		return w.syncLocked()
	}
	return nil
}

// Sync forces buffered appends to stable storage regardless of policy.
// Under FsyncBatch it first drains the pending commit group, so every
// ticket issued before the call has resolved when Sync returns.
func (w *WAL) Sync() error {
	if w.bat != nil {
		w.bat.drain()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

// Flush hurries the pending FsyncBatch commit group out without waiting
// for it: the leader commits what is queued instead of holding for more.
// No-op under other policies. The endpoint calls this before parking on
// the tail chunk's tickets, so a quiet session never waits out the hold.
func (w *WAL) Flush() {
	if w.bat != nil {
		w.bat.hurryUp()
	}
}

func (w *WAL) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync: %w", err)
	}
	w.dirty = false
	if w.met != nil {
		w.met.Counter("wal.fsyncs").Inc()
	}
	return nil
}

// Snapshot atomically replaces the snapshot with state and compacts the
// log to empty. Ordering makes a crash at any point safe: the new snapshot
// is fully durable (temp file + fsync + rename + directory fsync) before
// the log is truncated, and a crash in between merely replays old log
// records over the new snapshot — which replay handlers must treat
// idempotently.
func (w *WAL) Snapshot(state []byte) error {
	if w.bat != nil {
		// Settle the pending group first so the truncated log never holds
		// frames whose tickets are still unresolved.
		w.bat.drain()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.recovered {
		return fmt.Errorf("durable: Snapshot before Recover")
	}
	if w.closed {
		return fmt.Errorf("durable: Snapshot on closed WAL")
	}
	tmp := filepath.Join(w.dir, snapFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(state)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(state))
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(state)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	syncDir(w.dir)
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	if w.met != nil {
		w.met.Counter("wal.snapshots").Inc()
		w.met.Gauge("wal.snapshot.bytes").Set(int64(len(state)))
	}
	w.log.Log(obs.LevelDebug, "wal snapshot", "dir", w.dir, "bytes", len(state))
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable. Errors are
// ignored: some filesystems refuse directory fsync, and the rename itself
// already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close syncs outstanding appends (draining the FsyncBatch group, so
// every ticket resolves) and releases the file. Further appends fail.
func (w *WAL) Close() error {
	if w.bat != nil {
		w.bat.drain()
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	var err error
	if w.recovered && w.dirty {
		err = w.syncLocked()
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stop)
	w.wg.Wait()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
