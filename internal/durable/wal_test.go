package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openRecovered opens a WAL and replays it, returning the recovered
// payloads.
func openRecovered(t *testing.T, dir string, o Options) (*WAL, [][]byte, RecoveryStats) {
	t.Helper()
	w, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	st, err := w.Recover(nil, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, got, st
}

// testRecords builds a deterministic set of payloads of varied sizes,
// including empty and binary ones.
func testRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		size := (i * 37) % 200
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(i + j*31)
		}
		recs[i] = p
	}
	return recs
}

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, got, _ := openRecovered(t, dir, Options{})
	if len(got) != 0 {
		t.Fatalf("fresh WAL recovered %d records", len(got))
	}
	recs := testRecords(25)
	for _, p := range recs {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, st := openRecovered(t, dir, Options{})
	defer w2.Close()
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if st.TornBytes != 0 {
		t.Errorf("clean log reported %d torn bytes", st.TornBytes)
	}
	// Appending after recovery extends the same log.
	if err := w2.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, got, _ := openRecovered(t, dir, Options{})
	defer w3.Close()
	if len(got) != len(recs)+1 || string(got[len(got)-1]) != "tail" {
		t.Fatalf("append after recovery lost: %d records", len(got))
	}
}

func TestWALAppendBeforeRecover(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("x")); err == nil {
		t.Fatal("Append before Recover must fail")
	}
}

func TestWALSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openRecovered(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Snapshot([]byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	info, err := os.Stat(filepath.Join(dir, logFile))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(frameHeader + len("after")); info.Size() != want {
		t.Errorf("compacted log is %d bytes, want %d", info.Size(), want)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var snap []byte
	var logRecs [][]byte
	st, err := w2.Recover(
		func(p []byte) error { snap = append([]byte(nil), p...); return nil },
		func(p []byte) error { logRecs = append(logRecs, append([]byte(nil), p...)); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "state-v1" {
		t.Errorf("snapshot payload = %q", snap)
	}
	if st.SnapshotBytes != int64(len("state-v1")) {
		t.Errorf("SnapshotBytes = %d", st.SnapshotBytes)
	}
	if len(logRecs) != 1 || string(logRecs[0]) != "after" {
		t.Errorf("post-snapshot log = %q", logRecs)
	}
}

func TestWALFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, _, _ := openRecovered(t, dir, Options{Fsync: pol, FsyncInterval: time.Millisecond})
			for i := 0; i < 5; i++ {
				if err := w.Append([]byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if pol == FsyncInterval {
				time.Sleep(5 * time.Millisecond) // let the background syncer run
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2, got, _ := openRecovered(t, dir, Options{})
			defer w2.Close()
			if len(got) != 5 {
				t.Fatalf("recovered %d records under %s, want 5", len(got), pol)
			}
		})
	}
}

func TestParseFsync(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"always": FsyncAlways, "": FsyncAlways, "interval": FsyncInterval, "off": FsyncOff} {
		got, err := ParseFsync(s)
		if err != nil || got != want {
			t.Errorf("ParseFsync(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Error("bad policy must fail")
	}
}

// writeRefLog writes records and returns the raw log bytes plus the byte
// offset at which each record's frame ends — the valid truncation points.
func writeRefLog(t *testing.T, dir string, recs [][]byte) (raw []byte, ends []int) {
	t.Helper()
	w, _, _ := openRecovered(t, dir, Options{Fsync: FsyncOff})
	off := 0
	for _, p := range recs {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		off += frameHeader + len(p)
		ends = append(ends, off)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, logFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != off {
		t.Fatalf("log is %d bytes, expected %d", len(raw), off)
	}
	return raw, ends
}

// recoverRaw writes raw as a WAL log in a fresh dir and recovers it,
// returning the replayed payloads. Recovery must never error on torn or
// corrupt input — that is the property under test.
func recoverRaw(t *testing.T, raw []byte) [][]byte {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w, got, _ := openRecovered(t, dir, Options{})
	defer w.Close()
	return got
}

// prefixLen returns how many of recs are fully contained in the first n
// bytes of the log (using the frame end offsets).
func prefixLen(ends []int, n int) int {
	k := 0
	for k < len(ends) && ends[k] <= n {
		k++
	}
	return k
}

// The torn-tail property: truncating the log at EVERY byte offset recovers
// exactly the records whose frames fit before the cut — never a crash,
// never a record past the cut, never a lost record before it.
func TestWALTornTailEveryOffset(t *testing.T) {
	recs := testRecords(12)
	raw, ends := writeRefLog(t, t.TempDir(), recs)
	for cut := 0; cut <= len(raw); cut++ {
		got := recoverRaw(t, raw[:cut])
		want := prefixLen(ends, cut)
		if len(got) != want {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), want)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("cut at %d: record %d corrupted", cut, i)
			}
		}
	}
}

// Flipping any byte inside the tail frame must drop that frame (or, for a
// length-field flip that swallows the tail, at most the frame itself) —
// never crash, never yield a record that was not written.
func TestWALTailByteFlip(t *testing.T) {
	recs := testRecords(8)
	raw, ends := writeRefLog(t, t.TempDir(), recs)
	tailStart := ends[len(ends)-2] // last frame spans [tailStart, len(raw))
	for pos := tailStart; pos < len(raw); pos++ {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x5a
		got := recoverRaw(t, mut)
		// All intact frames before the flip must survive; the flipped tail
		// frame must not surface with corrupt content.
		if len(got) > len(recs) {
			t.Fatalf("flip at %d: recovered %d records from %d written", pos, len(got), len(recs))
		}
		if len(got) < len(recs)-1 {
			t.Fatalf("flip at %d: lost intact records (%d < %d)", pos, len(got), len(recs)-1)
		}
		for i := 0; i < len(recs)-1; i++ {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("flip at %d: record %d corrupted", pos, i)
			}
		}
		if len(got) == len(recs) && !bytes.Equal(got[len(recs)-1], recs[len(recs)-1]) {
			t.Fatalf("flip at %d: corrupt tail record surfaced", pos)
		}
	}
}

// Recovery truncates the torn tail, so a second recovery is clean and an
// append after recovery lands on a frame boundary.
func TestWALRecoveryTruncatesThenAppends(t *testing.T) {
	recs := testRecords(6)
	raw, ends := writeRefLog(t, t.TempDir(), recs)
	cut := ends[len(ends)-1] - 3 // tear mid-frame
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logFile), raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	w, got, st := openRecovered(t, dir, Options{})
	if len(got) != len(recs)-1 {
		t.Fatalf("recovered %d, want %d", len(got), len(recs)-1)
	}
	if st.TornBytes == 0 {
		t.Error("torn bytes not reported")
	}
	if err := w.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, got, st2 := openRecovered(t, dir, Options{})
	defer w2.Close()
	if st2.TornBytes != 0 {
		t.Errorf("second recovery still torn: %d bytes", st2.TornBytes)
	}
	if len(got) != len(recs) || string(got[len(got)-1]) != "fresh" {
		t.Fatalf("post-truncation append lost: %d records", len(got))
	}
}

// FuzzWALRecovery feeds arbitrary bytes as a log file: recovery must never
// panic or error, and recovering its own truncation must be stable.
func FuzzWALRecovery(f *testing.F) {
	recs := testRecords(4)
	var seedDir = f.TempDir()
	raw, _ := func() ([]byte, []int) {
		w, err := Open(seedDir, Options{Fsync: FsyncOff})
		if err != nil {
			f.Fatal(err)
		}
		if _, err := w.Recover(nil, nil); err != nil {
			f.Fatal(err)
		}
		for _, p := range recs {
			w.Append(p)
		}
		w.Close()
		b, _ := os.ReadFile(filepath.Join(seedDir, logFile))
		return b, nil
	}()
	f.Add(raw)
	f.Add(raw[:len(raw)-5])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var first [][]byte
		if _, err := w.Recover(nil, func(p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("recovery errored on arbitrary input: %v", err)
		}
		w.Close()
		// Idempotence: recovering the truncated file replays the same prefix.
		w2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		var second [][]byte
		st, err := w2.Recover(nil, func(p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.TornBytes != 0 {
			t.Fatalf("second recovery found %d torn bytes after truncation", st.TornBytes)
		}
		if len(first) != len(second) {
			t.Fatalf("recovery not stable: %d then %d records", len(first), len(second))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d differs across recoveries", i)
			}
		}
	})
}
