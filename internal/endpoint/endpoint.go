// Package endpoint implements a service endpoint of the exchange
// architecture (Figure 2): a system that registers a fragmentation, answers
// the discovery agency's cost probes, executes the program slice assigned
// to it, and produces or consumes fragment shipments — all over SOAP/HTTP,
// without revealing its internal data structures.
package endpoint

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"xdx/internal/core"
	"xdx/internal/durable"
	"xdx/internal/ldapstore"
	"xdx/internal/obs"
	"xdx/internal/reliable"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/soap"
	"xdx/internal/wire"
	"xdx/internal/wsdlx"
	"xdx/internal/xmltree"
)

// Backend abstracts the system behind an endpoint. Only fragment-level
// operations are exposed; how data is stored stays hidden, per the Web
// services principle the paper builds on.
type Backend interface {
	// Layout is the fragmentation the system produces/consumes natively.
	Layout() *core.Fragmentation
	// Scan materializes a layout fragment's instance (Definition 3.6).
	Scan(f *core.Fragment) (*core.Instance, error)
	// Write stores a fragment instance (Definition 3.9).
	Write(in *core.Instance) error
	// BuildIndexes finalizes storage after loading (Table 4's index step).
	BuildIndexes() error
	// Provider reports the system's cost estimates for probing.
	Provider() *core.StatsProvider
}

// RelBackend adapts a relational store.
type RelBackend struct {
	// Store is the backing relational store.
	Store *relstore.Store
	// Speed is the system's relative processing speed (1 = baseline).
	Speed float64
	// CanCombine is false for dumb clients that cannot run Combine.
	CanCombine bool
}

// Layout implements Backend.
func (b *RelBackend) Layout() *core.Fragmentation { return b.Store.Layout }

// Scan implements Backend.
func (b *RelBackend) Scan(f *core.Fragment) (*core.Instance, error) {
	return b.Store.ScanFragment(f.Name)
}

// Write implements Backend.
func (b *RelBackend) Write(in *core.Instance) error { return b.Store.Load(in) }

// BuildIndexes implements Backend.
func (b *RelBackend) BuildIndexes() error { return b.Store.BuildIndexes() }

// Clear implements Clearer by dropping every stored row.
func (b *RelBackend) Clear() { b.Store.Clear() }

// Provider implements Backend.
func (b *RelBackend) Provider() *core.StatsProvider {
	card, bytes := b.Store.Stats()
	speed := b.Speed
	if speed <= 0 {
		speed = 1
	}
	return &core.StatsProvider{
		Card: card, Bytes: bytes,
		Unit:        core.DefaultUnitCosts(),
		SourceSpeed: speed, TargetSpeed: speed,
		TargetCombines: b.CanCombine,
	}
}

// LDAPBackend adapts an LDAP directory store — the provisioning system T
// of §1.1. It is primarily a consumer (and a dumb client: no combines),
// but its directory can also be scanned so an exchange may later flow back
// out of it.
type LDAPBackend struct {
	// Store is the backing directory.
	Store *ldapstore.Store
	// Speed is the system's relative processing speed.
	Speed float64
}

// Layout implements Backend.
func (b *LDAPBackend) Layout() *core.Fragmentation { return b.Store.Layout }

// Scan implements Backend.
func (b *LDAPBackend) Scan(f *core.Fragment) (*core.Instance, error) {
	return b.Store.Scan(f.Name)
}

// Write implements Backend.
func (b *LDAPBackend) Write(in *core.Instance) error { return b.Store.Load(in) }

// BuildIndexes implements Backend.
func (b *LDAPBackend) BuildIndexes() error { return nil }

// Provider implements Backend. The directory is a dumb client: it consumes
// fragments but does not combine them (§4.1).
func (b *LDAPBackend) Provider() *core.StatsProvider {
	speed := b.Speed
	if speed <= 0 {
		speed = 1
	}
	card := map[string]float64{}
	bytes := map[string]float64{}
	for _, e := range b.Store.Layout.Schema.Names() {
		card[e] = 1
		bytes[e] = 16
	}
	return &core.StatsProvider{
		Card: card, Bytes: bytes,
		Unit:        core.DefaultUnitCosts(),
		SourceSpeed: speed, TargetSpeed: speed,
		TargetCombines: false,
	}
}

// VirtualBackend wraps a backend and serves some fragments from computing
// functions instead of stored data — the paper's TotalMRCService idea
// (§1.1): "a fragment could correspond to the result of a service call ...
// without revealing how this fragment is computed."
type VirtualBackend struct {
	// Base handles everything not overridden.
	Base Backend
	// Virtual maps fragment names (of Base's layout) to producers.
	Virtual map[string]func() (*core.Instance, error)
}

// Layout implements Backend.
func (b *VirtualBackend) Layout() *core.Fragmentation { return b.Base.Layout() }

// Scan implements Backend: virtual fragments are computed, the rest
// delegate to the base backend.
func (b *VirtualBackend) Scan(f *core.Fragment) (*core.Instance, error) {
	if fn, ok := b.Virtual[f.Name]; ok {
		in, err := fn()
		if err != nil {
			return nil, fmt.Errorf("endpoint: virtual fragment %q: %w", f.Name, err)
		}
		if err := core.ValidateInstance(b.Layout().Schema, in); err != nil {
			return nil, fmt.Errorf("endpoint: virtual fragment %q: %w", f.Name, err)
		}
		return in, nil
	}
	return b.Base.Scan(f)
}

// Write implements Backend.
func (b *VirtualBackend) Write(in *core.Instance) error { return b.Base.Write(in) }

// BuildIndexes implements Backend.
func (b *VirtualBackend) BuildIndexes() error { return b.Base.BuildIndexes() }

// Provider implements Backend.
func (b *VirtualBackend) Provider() *core.StatsProvider { return b.Base.Provider() }

// Clear implements Clearer when the base backend does.
func (b *VirtualBackend) Clear() {
	if c, ok := b.Base.(Clearer); ok {
		c.Clear()
	}
}

// Clearer marks backends whose contents a stream-tagged exchange replaces:
// each such exchange carries the full logical snapshot — shipped whole or
// patched together from a delta — so prior rows are dropped before the
// write and repeat exchanges converge instead of accumulating.
type Clearer interface{ Clear() }

// Endpoint serves a backend over SOAP.
type Endpoint struct {
	// Name identifies the endpoint in logs and faults.
	Name string
	// WSDL is the service description (with the fragmentation extension)
	// the endpoint publishes.
	WSDL *wsdlx.Definitions

	backend  Backend
	srv      *soap.Server
	sessions *reliable.SessionStore
	journal  *durable.Journal
	log      obs.Logger
	met      *obs.Registry

	// codecs is the shipment codecs this endpoint will answer in, in the
	// order it prefers them; negotiation picks the client's first advertised
	// codec that appears here. Defaults to everything the wire package
	// speaks.
	codecs []string

	// codecWorkers dials the chunk codec pools of every shipment this
	// endpoint writes or decodes: 0 (default) is one worker per CPU, 1 or
	// less runs the codecs in-line. See SetCodecWorkers.
	codecWorkers int

	calMu    sync.Mutex
	calCache map[string]*shipCalibration

	// deltaMu guards deltaBases: the per-stream retained snapshots delta
	// exchanges patch against. Memory-only by design — after a restart
	// every stream is cold and the agency falls back to a full reship.
	deltaMu    sync.Mutex
	deltaBases map[string]*deltaBase
	deltaOff   bool
}

// deltaBase is one stream's retained snapshot: the instance map of the
// last successful stream-tagged exchange, valid only while the plan
// epoch it was built under still matches.
type deltaBase struct {
	epoch string
	out   map[string]*core.Instance
}

// shipCalibration holds measured wire/tree size ratios for one codec:
// per layout fragment, plus the size-weighted mean used for fragments the
// optimizer derives (combine outputs, split parts) that calibration never
// saw.
type shipCalibration struct {
	ratios map[string]float64
	def    float64
}

// New wires a backend into a SOAP endpoint.
func New(name string, be Backend, defs *wsdlx.Definitions) *Endpoint {
	e := &Endpoint{Name: name, WSDL: defs, backend: be, srv: soap.NewServer(),
		sessions:   reliable.NewSessionStore(),
		codecs:     wire.Codecs(),
		log:        obs.Nop,
		calCache:   map[string]*shipCalibration{},
		deltaBases: map[string]*deltaBase{}}
	e.srv.Handle("GetWSDL", e.getWSDL)
	e.srv.Handle("ProbeStats", e.probeStats)
	e.srv.Handle("ProbeCost", e.probeCost)
	e.srv.Handle("DeltaStatus", e.deltaStatus)
	e.srv.Handle("SessionStatus", e.sessionStatus)
	e.srv.Handle("EndSession", e.endSession)
	e.srv.HandleStream("ExecuteSource", e.executeSourceStream)
	e.srv.HandleStream("ExecuteTarget", e.executeTargetStream)
	return e
}

// Handler returns the endpoint's HTTP handler.
func (e *Endpoint) Handler() http.Handler { return e.srv }

// Sessions exposes the endpoint's resumable-session store, so daemons can
// run its background sweeper and tests can observe session lifecycle.
func (e *Endpoint) Sessions() *reliable.SessionStore { return e.sessions }

// SetJournal makes the endpoint's resumable sessions durable: every chunk
// commit is journaled before its checkpoint advances, and the sessions the
// journal recovered are re-seeded into the store — ledger checkpoint, seen
// record IDs, and the committed chunk contents, which hydrate into the
// instance map when the resumed delivery arrives with its program. Session
// evictions (EndSession, idle sweeps) release the journaled state so
// compaction can shrink the log. Call once, after SetObs and before
// serving traffic; it returns how many sessions were restored.
func (e *Endpoint) SetJournal(j *durable.Journal) int {
	e.journal = j
	restored := 0
	for _, js := range j.Sessions() {
		s := e.sessions.GetOrCreate(js.ID)
		s.Ledger.Restore(js.Next)
		for _, c := range js.Chunks {
			if c.Del {
				// Tombstone chunks carry deletion IDs, not record
				// arrivals; marking them seen would dedup away a real
				// record shipped later under the same ID.
				continue
			}
			for _, rec := range c.Recs {
				s.Ledger.MarkSeen(c.Key, rec.ID)
			}
		}
		s.Mu.Lock()
		s.Data = &targetSession{
			ledger:    s.Ledger,
			inbound:   map[string]*core.Instance{},
			j:         j,
			id:        js.ID,
			recovered: js.Chunks,
		}
		s.Mu.Unlock()
		restored++
	}
	log := e.log
	e.sessions.OnEvict = func(ids []string) {
		if err := j.End(ids...); err != nil {
			log.Log(obs.LevelWarn, "journal end failed", "sessions", len(ids), "err", err.Error())
		}
	}
	if e.met != nil {
		e.met.Gauge("endpoint.sessions.recovered").Set(int64(restored))
	}
	if restored > 0 {
		e.log.Log(obs.LevelInfo, "sessions recovered from journal", "endpoint", e.Name, "sessions", restored)
	}
	return restored
}

// SetObs attaches observability to the endpoint: the SOAP server's
// soap.server.* request metrics, an endpoint.* family (probes, execute
// timings, codec picks, session lifecycle), and a live-session gauge fed
// by the store's change hook. Either argument may be nil ("off"). Call
// before serving traffic — hooks are installed without locks.
func (e *Endpoint) SetObs(l obs.Logger, m *obs.Registry) {
	e.log = obs.OrNop(l)
	e.met = m
	e.srv.SetObs(l, m)
	if m != nil {
		log := e.log
		e.sessions.OnChange = func(live, swept int) {
			m.Gauge("endpoint.sessions.live").Set(int64(live))
			if swept > 0 {
				m.Counter("endpoint.sessions.swept").Add(int64(swept))
				log.Log(obs.LevelDebug, "sessions swept", "swept", swept, "live", live)
			}
		}
	}
}

// SetCodecWorkers dials the parallel chunk pipelines of the endpoint's
// shipment codecs: source responses render chunks and target requests
// parse raw chunks on a pool of n workers (0 — the default — sizes the
// pool to the CPU count, 1 or less is the serial path). The wire format
// is byte-identical for every setting. Call before serving traffic.
func (e *Endpoint) SetCodecWorkers(n int) { e.codecWorkers = n }

// SetSupportedCodecs restricts (and orders) the shipment codecs this
// endpoint answers in. Unknown names are rejected. An empty call is a
// no-op, leaving the default of everything the wire package speaks.
func (e *Endpoint) SetSupportedCodecs(names ...string) error {
	if len(names) == 0 {
		return nil
	}
	for _, n := range names {
		if _, err := wire.ParseCodec(n); err != nil {
			return err
		}
	}
	e.codecs = append([]string(nil), names...)
	return nil
}

// supportsCodec reports whether the endpoint will answer in codec name.
func (e *Endpoint) supportsCodec(name string) bool {
	for _, c := range e.codecs {
		if c == name {
			return true
		}
	}
	return false
}

// pickCodec resolves the shipment codec for an ExecuteSource reply. The
// envelope's advertised codecs win — the server picks the first it
// supports, the Content-Encoding-style half of negotiation — with the
// universal tagged-XML format as the answer when nothing advertised is
// spoken here. Requests that did not negotiate fall back to the payload's
// explicit codec attribute, then the legacy format attribute. The second
// return reports whether negotiation happened (and so whether the choice
// should be stamped on the response envelope).
func (e *Endpoint) pickCodec(env soap.Header, req *xmltree.Node) (wire.Codec, bool, error) {
	if len(env.Codecs) > 0 {
		for _, name := range env.Codecs {
			if e.supportsCodec(name) {
				c, err := wire.ParseCodec(name)
				if err == nil {
					e.met.Counter("endpoint.codec.picks." + name).Inc()
					return c, true, nil
				}
			}
		}
		// Nothing advertised is spoken here; answer in the universal format.
		e.met.Counter("endpoint.codec.picks.unsupported").Inc()
		return wire.Codec{}, true, nil
	}
	if v, ok := req.Attr("codec"); ok && v != "" {
		c, err := wire.ParseCodec(v)
		if err != nil {
			return wire.Codec{}, false, &soap.Fault{Code: "soap:Client", String: err.Error()}
		}
		return c, false, nil
	}
	if v, _ := req.Attr("format"); v == "feed" {
		return wire.Codec{Kind: wire.CodecFeed}, false, nil
	}
	return wire.Codec{}, false, nil
}

func (e *Endpoint) getWSDL(req *xmltree.Node) (*xmltree.Node, error) {
	data, err := e.WSDL.Marshal()
	if err != nil {
		return nil, err
	}
	resp := &xmltree.Node{Name: "GetWSDLResponse", Text: string(data)}
	return resp, nil
}

func (e *Endpoint) probeStats(req *xmltree.Node) (*xmltree.Node, error) {
	e.met.Counter("endpoint.probe_stats").Inc()
	defer e.met.Histogram("endpoint.probe_stats.millis").ObserveSince(time.Now())
	p := e.backend.Provider()
	if name, ok := req.Attr("codec"); ok && name != "" {
		codec, err := wire.ParseCodec(name)
		if err != nil {
			return nil, &soap.Fault{Code: "soap:Client", String: err.Error()}
		}
		cal, err := e.calibrate(codec)
		if err != nil {
			return nil, err
		}
		p.ShipCodec = codec.String()
		p.ShipRatio = cal.ratios
		p.ShipRatioDefault = cal.def
	}
	resp := &xmltree.Node{Name: "ProbeStatsResponse"}
	resp.AddKid(wire.EncodeStats(p))
	return resp, nil
}

// calSampleRecords bounds how many records of each layout fragment the
// calibration pass encodes; compression ratios stabilize well before this.
const calSampleRecords = 64

// calibrate measures, per layout fragment, what fraction of the tree-codec
// size the given codec actually puts on the wire, by encoding a bounded
// sample of real records both ways. Results are cached per codec — the
// data does not change under the endpoint, and probes repeat.
func (e *Endpoint) calibrate(codec wire.Codec) (*shipCalibration, error) {
	key := codec.String()
	e.calMu.Lock()
	defer e.calMu.Unlock()
	if cal, ok := e.calCache[key]; ok {
		return cal, nil
	}
	calStart := time.Now()
	e.met.Counter("endpoint.calibrations").Inc()
	sch := e.backend.Layout().Schema
	cal := &shipCalibration{ratios: map[string]float64{}}
	var wireSum, treeSum float64
	for _, f := range e.backend.Layout().Fragments {
		in, err := e.backend.Scan(f)
		if err != nil {
			return nil, err
		}
		recs := in.Records
		if len(recs) > calSampleRecords {
			recs = recs[:calSampleRecords]
		}
		wb, err := wire.InstanceWireBytes(recs, f, sch, codec)
		if err != nil {
			return nil, err
		}
		tb := wire.RecordBytes(recs)
		if tb > 0 {
			cal.ratios[f.Name] = float64(wb) / float64(tb)
			wireSum += float64(wb)
			treeSum += float64(tb)
		}
	}
	// Derived fragments (combine outputs, split parts) were never scanned;
	// they default to the size-weighted mean of what was.
	if treeSum > 0 {
		cal.def = wireSum / treeSum
	} else {
		cal.def = core.DefaultShipRatio(key)
	}
	e.calCache[key] = cal
	e.log.Log(obs.LevelInfo, "codec calibrated",
		"endpoint", e.Name, "codec", key,
		"ratio", strconv.FormatFloat(cal.def, 'f', 3, 64),
		"millis", formatMillis(time.Since(calStart)))
	return cal, nil
}

// probeCost answers a single comp_cost(OP, location) query (§4.1): the
// request carries the op kind, the location, and inline fragment
// definitions — first the output, then the inputs.
func (e *Endpoint) probeCost(req *xmltree.Node) (*xmltree.Node, error) {
	e.met.Counter("endpoint.probe_cost").Inc()
	kindStr, _ := req.Attr("kind")
	locStr, _ := req.Attr("loc")
	var kind core.OpKind
	switch kindStr {
	case "Scan":
		kind = core.OpScan
	case "Combine":
		kind = core.OpCombine
	case "Split":
		kind = core.OpSplit
	case "Write":
		kind = core.OpWrite
	default:
		return nil, &soap.Fault{Code: "soap:Client", String: "unknown op kind " + kindStr}
	}
	loc := core.LocSource
	if locStr == "T" {
		loc = core.LocTarget
	}
	sch := e.backend.Layout().Schema
	var frags []*core.Fragment
	for _, fx := range req.Kids {
		if fx.Name != "fragment" {
			continue
		}
		name, _ := fx.Attr("name")
		var elems []string
		for _, el := range fx.Kids {
			elems = append(elems, el.Text)
		}
		f, err := core.NewFragment(sch, name, elems)
		if err != nil {
			return nil, &soap.Fault{Code: "soap:Client", String: err.Error()}
		}
		frags = append(frags, f)
	}
	if len(frags) == 0 {
		return nil, &soap.Fault{Code: "soap:Client", String: "probe without fragments"}
	}
	cost := e.backend.Provider().CompCost(kind, frags[1:], frags[0], loc)
	resp := &xmltree.Node{Name: "ProbeCostResponse"}
	if math.IsInf(cost, 1) {
		resp.SetAttr("cost", "Inf")
	} else {
		resp.SetAttr("cost", strconv.FormatFloat(cost, 'g', -1, 64))
	}
	return resp, nil
}

// deltaStatus answers a DeltaStatus probe: whether this endpoint holds a
// warm delta base for the stream at the given epoch. A cold answer tells
// the agency to ship the full snapshot; delta deliveries that arrive cold
// anyway (the probe raced a restart) fault with xdx:ColdDelta instead.
func (e *Endpoint) deltaStatus(req *xmltree.Node) (*xmltree.Node, error) {
	stream, _ := req.Attr("stream")
	if stream == "" {
		return nil, &soap.Fault{Code: "soap:Client", String: "DeltaStatus without stream"}
	}
	epoch, _ := req.Attr("epoch")
	resp := &xmltree.Node{Name: "DeltaStatusResponse"}
	resp.SetAttr("stream", stream)
	warm := "0"
	if e.deltaWarm(stream, epoch) {
		warm = "1"
	}
	resp.SetAttr("warm", warm)
	return resp, nil
}

// SetDeltaRetention toggles delta-base retention. Off, the endpoint
// answers every DeltaStatus probe cold and retains nothing, so agencies
// always ship full snapshots — a memory knob for targets with many
// streams. On (the default) is required for delta exchanges to engage.
func (e *Endpoint) SetDeltaRetention(on bool) {
	e.deltaMu.Lock()
	e.deltaOff = !on
	if e.deltaOff {
		e.deltaBases = map[string]*deltaBase{}
	}
	e.deltaMu.Unlock()
}

// deltaWarm reports whether a stream's retained base can absorb a delta
// built against the given epoch.
func (e *Endpoint) deltaWarm(stream, epoch string) bool {
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	b := e.deltaBases[stream]
	return b != nil && b.epoch == epoch
}

// deltaBaseFor returns a stream's retained snapshot when its epoch
// matches, else nil.
func (e *Endpoint) deltaBaseFor(stream, epoch string) map[string]*core.Instance {
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	if b := e.deltaBases[stream]; b != nil && b.epoch == epoch {
		return b.out
	}
	return nil
}

// storeDeltaBase retains a stream's just-executed snapshot as the base
// the next delta patches against.
func (e *Endpoint) storeDeltaBase(stream, epoch string, out map[string]*core.Instance) {
	e.deltaMu.Lock()
	if !e.deltaOff {
		e.deltaBases[stream] = &deltaBase{epoch: epoch, out: out}
	}
	e.deltaMu.Unlock()
}

// clearBackend drops the backend's stored rows before a stream-tagged
// exchange writes its snapshot; backends that cannot clear keep their
// append semantics.
func (e *Endpoint) clearBackend() {
	if c, ok := e.backend.(Clearer); ok {
		c.Clear()
	}
}

// executeSource runs the source slice of a program: scans plus the
// operations placed at this system, returning the cross-edge shipment.
// A service argument (§3.2) arrives as filterElem/filterValue attributes
// and is applied before execution: the system "filters the data
// accordingly and provides the relevant pieces".
func (e *Endpoint) executeSource(req *xmltree.Node, codec wire.Codec) (*xmltree.Node, error) {
	g, a, err := decodeProgramChild(req, e.backend.Layout())
	if err != nil {
		return nil, err
	}
	scan, err := e.sourceScan(req)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	outbound, _, err := sliceExecutor(req)(g, e.backend.Layout().Schema, a, core.LocSource, core.SliceIO{
		Scan: scan,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	e.met.Counter("endpoint.source.executes").Inc()
	e.met.Histogram("endpoint.source.millis").Observe(float64(elapsed) / float64(time.Millisecond))
	resp := &xmltree.Node{Name: "ExecuteSourceResponse"}
	resp.SetAttr("queryMillis", formatMillis(elapsed))
	shipment, err := wire.EncodeShipmentCodec(outbound, e.backend.Layout().Schema, codec)
	if err != nil {
		return nil, err
	}
	resp.AddKid(shipment)
	return resp, nil
}

// sliceExecutor selects the slice executor a request asks for: the
// pipelined streaming engine when the request carries pipelined="1" (or
// "true"), the batch executor otherwise. Both have identical semantics;
// the pipelined one overlaps stage execution.
func sliceExecutor(req *xmltree.Node) func(*core.Graph, *schema.Schema, core.Assignment, core.Location, core.SliceIO) (map[string]*core.Instance, []core.OpTrace, error) {
	if v, ok := req.Attr("pipelined"); ok && (v == "1" || v == "true") {
		return core.ExecuteSlicePipelined
	}
	return core.ExecuteSlice
}

// scanByElems resolves a plan fragment to this system's layout fragment by
// element set, so plans need not share pointers with the store.
func (e *Endpoint) scanByElems(f *core.Fragment) (*core.Instance, error) {
	for _, lf := range e.backend.Layout().Fragments {
		if lf.SameElems(f) {
			in, err := e.backend.Scan(lf)
			if err != nil {
				return nil, err
			}
			return &core.Instance{Frag: f, Records: in.Records}, nil
		}
	}
	return nil, fmt.Errorf("endpoint %s: no layout fragment matching %q", e.Name, f.Name)
}

// sourceScan resolves the scan an ExecuteSource request's slice runs
// over. A compiled pushdown filter (the filter attribute, §3.2's service
// arguments generalized to comparisons) wins; the legacy
// filterElem/filterValue equality pair stays for old callers; without
// either, plain layout scans.
func (e *Endpoint) sourceScan(req *xmltree.Node) (func(*core.Fragment) (*core.Instance, error), error) {
	if expr, ok := req.Attr("filter"); ok && expr != "" {
		f, err := core.CompileFilter(expr, e.backend.Layout().Schema)
		if err != nil {
			return nil, &soap.Fault{Code: "soap:Client", String: err.Error()}
		}
		// A filter whose path lies outside this layout's root fragment can
		// never match a root record; fault loudly rather than serve an
		// exchange that silently shipped nothing.
		if err := f.CheckRoot(e.backend.Layout()); err != nil {
			return nil, &soap.Fault{Code: "soap:Client", String: err.Error()}
		}
		e.met.Counter("endpoint.source.filtered").Inc()
		return e.filteredScan(f.Predicate())
	}
	if filterElem, ok := req.Attr("filterElem"); ok && filterElem != "" {
		filterValue, _ := req.Attr("filterValue")
		return e.filteredScan(func(rec *xmltree.Node) bool {
			n := rec.Find(filterElem)
			return n != nil && n.Text == filterValue
		})
	}
	return e.scanByElems, nil
}

// filteredScan materializes the whole layout once, trims it consistently
// to the root records keep accepts, and serves program Scans from the
// trimmed instances.
func (e *Endpoint) filteredScan(keep func(*xmltree.Node) bool) (func(*core.Fragment) (*core.Instance, error), error) {
	layout := e.backend.Layout()
	sources := make(map[string]*core.Instance, layout.Len())
	for _, f := range layout.Fragments {
		in, err := e.backend.Scan(f)
		if err != nil {
			return nil, err
		}
		sources[f.Name] = in
	}
	kept, err := core.FilterSources(layout, sources, keep)
	if err != nil {
		return nil, err
	}
	return func(f *core.Fragment) (*core.Instance, error) {
		for _, in := range kept {
			if in.Frag.SameElems(f) {
				return &core.Instance{Frag: f, Records: in.Records}, nil
			}
		}
		return nil, fmt.Errorf("endpoint %s: no layout fragment matching %q", e.Name, f.Name)
	}, nil
}

func decodeProgramChild(req *xmltree.Node, layout *core.Fragmentation) (*core.Graph, core.Assignment, error) {
	for _, k := range req.Kids {
		if k.Name == "program" {
			return wire.DecodeProgram(k, layout.Schema)
		}
	}
	return nil, nil, &soap.Fault{Code: "soap:Client", String: "missing program"}
}

func formatMillis(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

// ParseMillis converts a millisecond attribute back to a duration.
func ParseMillis(s string) time.Duration {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return time.Duration(f * float64(time.Millisecond))
}
