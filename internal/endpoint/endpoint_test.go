package endpoint

import (
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"xdx/internal/core"
	"xdx/internal/ldapstore"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/soap"
	"xdx/internal/wire"
	"xdx/internal/wsdlx"
	"xdx/internal/xmltree"
)

func tFrag(t *testing.T, sch *schema.Schema) *core.Fragmentation {
	t.Helper()
	fr, err := core.FromPartition(sch, "T", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func loadedStore(t *testing.T, fr *core.Fragmentation) *relstore.Store {
	t.Helper()
	st, err := relstore.NewStore(fr)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.Parse(strings.NewReader(
		`<Customer><CustName>Ann</CustName><Order><Service><ServiceName>s</ServiceName>` +
			`<Line><TelNo>1</TelNo><Switch><SwitchID>w</SwitchID></Switch>` +
			`<Feature><FeatureID>f</FeatureID></Feature></Line></Service></Order></Customer>`))
	if err != nil {
		t.Fatal(err)
	}
	core.AssignIDs(doc)
	if err := st.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	return st
}

func startEndpoint(t *testing.T, be Backend) (*soap.Client, func()) {
	t.Helper()
	sch := be.Layout().Schema
	defs := &wsdlx.Definitions{
		Name: "CustomerInfo", TargetNamespace: "ns", ServiceName: "svc",
		PortName: "p", Address: "http://x", Schema: sch,
		Fragmentations: []*core.Fragmentation{be.Layout()},
	}
	ep := New("test", be, defs)
	srv := httptest.NewServer(ep.Handler())
	return &soap.Client{URL: srv.URL}, srv.Close
}

func TestGetWSDL(t *testing.T) {
	sch := schema.CustomerInfo()
	st := loadedStore(t, tFrag(t, sch))
	c, done := startEndpoint(t, &RelBackend{Store: st, Speed: 1, CanCombine: true})
	defer done()
	resp, err := c.Call("GetWSDL", &xmltree.Node{Name: "GetWSDL"})
	if err != nil {
		t.Fatal(err)
	}
	defs, err := wsdlx.Parse(strings.NewReader(resp.Text))
	if err != nil {
		t.Fatal(err)
	}
	if defs.ServiceName != "svc" || len(defs.Fragmentations) != 1 {
		t.Errorf("WSDL round trip wrong: %+v", defs)
	}
}

func TestProbeStats(t *testing.T) {
	sch := schema.CustomerInfo()
	st := loadedStore(t, tFrag(t, sch))
	c, done := startEndpoint(t, &RelBackend{Store: st, Speed: 2, CanCombine: true})
	defer done()
	resp, err := c.Call("ProbeStats", &xmltree.Node{Name: "ProbeStats"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := wire.DecodeStats(resp.Kids[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.SourceSpeed != 2 || !p.TargetCombines {
		t.Errorf("stats wrong: %+v", p)
	}
	if p.Card["Feature"] != 1 {
		t.Errorf("Feature card = %v, want 1", p.Card["Feature"])
	}
}

func TestProbeCost(t *testing.T) {
	sch := schema.CustomerInfo()
	st := loadedStore(t, tFrag(t, sch))
	c, done := startEndpoint(t, &RelBackend{Store: st, Speed: 1, CanCombine: false})
	defer done()
	req := &xmltree.Node{Name: "ProbeCost"}
	req.SetAttr("kind", "Scan")
	req.SetAttr("loc", "S")
	fx := &xmltree.Node{Name: "fragment"}
	fx.SetAttr("name", "f")
	for _, e := range []string{"Customer", "CustName"} {
		fx.AddKid(&xmltree.Node{Name: "e", Text: e})
	}
	req.AddKid(fx)
	resp, err := c.Call("ProbeCost", req)
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := resp.Attr("cost")
	v, err := strconv.ParseFloat(cs, 64)
	if err != nil || v <= 0 {
		t.Errorf("scan cost = %q", cs)
	}
	// A dumb client reports Inf for target-side combines.
	req.SetAttr("kind", "Combine")
	req.SetAttr("loc", "T")
	resp, err = c.Call("ProbeCost", req)
	if err != nil {
		t.Fatal(err)
	}
	if cs, _ := resp.Attr("cost"); cs != "Inf" {
		t.Errorf("dumb client combine cost = %q, want Inf", cs)
	}
	// Errors.
	req.SetAttr("kind", "Bogus")
	if _, err := c.Call("ProbeCost", req); err == nil {
		t.Error("bogus kind must fault")
	}
	bare := &xmltree.Node{Name: "ProbeCost"}
	bare.SetAttr("kind", "Scan")
	if _, err := c.Call("ProbeCost", bare); err == nil {
		t.Error("probe without fragments must fault")
	}
}

func TestExecuteSourceAndTarget(t *testing.T) {
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	srcStore := loadedStore(t, fr)
	srcClient, srcDone := startEndpoint(t, &RelBackend{Store: srcStore, Speed: 1, CanCombine: true})
	defer srcDone()
	tgtStore, err := relstore.NewStore(fr)
	if err != nil {
		t.Fatal(err)
	}
	tgtClient, tgtDone := startEndpoint(t, &RelBackend{Store: tgtStore, Speed: 1, CanCombine: true})
	defer tgtDone()

	// Identical fragmentations: pure Scan->Write program.
	m, err := core.NewMapping(fr, fr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == core.OpWrite {
			a[op.ID] = core.LocTarget
		} else {
			a[op.ID] = core.LocSource
		}
	}
	progXML, err := wire.EncodeProgram(g, a)
	if err != nil {
		t.Fatal(err)
	}
	reqS := &xmltree.Node{Name: "ExecuteSource"}
	reqS.AddKid(progXML)
	respS, err := srcClient.Call("ExecuteSource", reqS)
	if err != nil {
		t.Fatal(err)
	}
	if ms, ok := respS.Attr("queryMillis"); !ok || ms == "" {
		t.Error("missing queryMillis")
	}
	var shipment *xmltree.Node
	for _, k := range respS.Kids {
		if k.Name == "shipment" {
			shipment = k
		}
	}
	if shipment == nil || len(shipment.Kids) != fr.Len() {
		t.Fatalf("shipment has %d instances, want %d", len(shipment.Kids), fr.Len())
	}
	prog2, err := wire.EncodeProgram(g, a)
	if err != nil {
		t.Fatal(err)
	}
	reqT := &xmltree.Node{Name: "ExecuteTarget"}
	reqT.AddKid(prog2)
	reqT.AddKid(shipment)
	respT, err := tgtClient.Call("ExecuteTarget", reqT)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := respT.Attr("writeMillis"); !ok || ParseMillis(v) < 0 {
		t.Errorf("writeMillis missing/negative: %v", v)
	}
	if tgtStore.Rows() != srcStore.Rows() {
		t.Errorf("target rows = %d, want %d", tgtStore.Rows(), srcStore.Rows())
	}
	// Target indexes were built.
	for _, name := range tgtStore.Tables() {
		if len(tgtStore.Table(name).Indexes()) != 2 {
			t.Errorf("table %q not indexed", name)
		}
	}
}

func TestExecuteSourceMissingProgram(t *testing.T) {
	sch := schema.CustomerInfo()
	st := loadedStore(t, tFrag(t, sch))
	c, done := startEndpoint(t, &RelBackend{Store: st, Speed: 1, CanCombine: true})
	defer done()
	if _, err := c.Call("ExecuteSource", &xmltree.Node{Name: "ExecuteSource"}); err == nil {
		t.Error("missing program must fault")
	}
}

func TestExecuteTargetMissingShipment(t *testing.T) {
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	st, _ := relstore.NewStore(fr)
	c, done := startEndpoint(t, &RelBackend{Store: st, Speed: 1, CanCombine: true})
	defer done()
	m, _ := core.NewMapping(fr, fr)
	g, _ := core.CanonicalProgram(m)
	a := core.NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == core.OpWrite {
			a[op.ID] = core.LocTarget
		} else {
			a[op.ID] = core.LocSource
		}
	}
	progXML, _ := wire.EncodeProgram(g, a)
	req := &xmltree.Node{Name: "ExecuteTarget"}
	req.AddKid(progXML)
	if _, err := c.Call("ExecuteTarget", req); err == nil {
		t.Error("missing shipment must fault")
	}
}

func TestLDAPBackendBehaviour(t *testing.T) {
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	be := &LDAPBackend{Store: ldapstore.NewStore(fr), Speed: 3}
	if in, err := be.Scan(fr.Fragments[0]); err != nil || in.Rows() != 0 {
		t.Errorf("scan of empty directory: %v, %d rows", err, in.Rows())
	}
	p := be.Provider()
	if p.TargetCombines {
		t.Error("LDAP backend must be a dumb client")
	}
	if p.TargetSpeed != 3 {
		t.Errorf("speed = %v", p.TargetSpeed)
	}
	if !math.IsInf(p.CompCost(core.OpCombine, nil, fr.Fragments[0], core.LocTarget), 1) {
		t.Error("combine at dumb client should cost +Inf")
	}
	if err := be.BuildIndexes(); err != nil {
		t.Errorf("BuildIndexes: %v", err)
	}
}

func TestVirtualBackend(t *testing.T) {
	// A computed fragment (§1.1's TotalMRCService idea): Customer data
	// comes from a function, the rest from the store.
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	st := loadedStore(t, fr)
	custFrag := fr.FragmentOf("CustName")
	be := &VirtualBackend{
		Base: &RelBackend{Store: st, Speed: 1, CanCombine: true},
		Virtual: map[string]func() (*core.Instance, error){
			custFrag.Name: func() (*core.Instance, error) {
				return &core.Instance{Frag: custFrag, Records: []*xmltree.Node{
					{Name: "Customer", ID: "v1", Kids: []*xmltree.Node{
						{Name: "CustName", ID: "v2", Parent: "v1", Text: "computed"},
					}},
				}}, nil
			},
		},
	}
	in, err := be.Scan(custFrag)
	if err != nil {
		t.Fatal(err)
	}
	if in.Records[0].Find("CustName").Text != "computed" {
		t.Errorf("virtual fragment not served: %v", in.Records[0])
	}
	// Non-virtual fragments still come from the store.
	other := fr.FragmentOf("FeatureID")
	in, err = be.Scan(other)
	if err != nil {
		t.Fatal(err)
	}
	if in.Rows() != 1 {
		t.Errorf("base fragment rows = %d", in.Rows())
	}
	// A virtual producer returning garbage is rejected.
	be.Virtual[other.Name] = func() (*core.Instance, error) {
		return &core.Instance{Frag: other, Records: []*xmltree.Node{{Name: "Wrong"}}}, nil
	}
	if _, err := be.Scan(other); err == nil {
		t.Error("invalid virtual instance must be rejected")
	}
}

func TestVirtualBackendPassthrough(t *testing.T) {
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	st := loadedStore(t, fr)
	be := &VirtualBackend{Base: &RelBackend{Store: st, Speed: 2, CanCombine: true}}
	if be.Layout() != fr {
		t.Error("Layout passthrough broken")
	}
	if be.Provider().SourceSpeed != 2 {
		t.Error("Provider passthrough broken")
	}
	if err := be.BuildIndexes(); err != nil {
		t.Errorf("BuildIndexes: %v", err)
	}
	custFrag := fr.FragmentOf("CustName")
	in, err := be.Scan(custFrag)
	if err != nil {
		t.Fatal(err)
	}
	st2, _ := relstore.NewStore(fr)
	be2 := &VirtualBackend{Base: &RelBackend{Store: st2, Speed: 1, CanCombine: true}}
	if err := be2.Write(in); err != nil {
		t.Errorf("Write passthrough: %v", err)
	}
	if st2.Rows() != 1 {
		t.Errorf("write landed %d rows", st2.Rows())
	}
}

func TestExecuteSourceWithFilter(t *testing.T) {
	// §3.2 service arguments over SOAP: the source filters before
	// executing.
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	st := loadedStore(t, fr)
	c, done := startEndpoint(t, &RelBackend{Store: st, Speed: 1, CanCombine: true})
	defer done()
	m, _ := core.NewMapping(fr, fr)
	g, _ := core.CanonicalProgram(m)
	a := core.NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == core.OpWrite {
			a[op.ID] = core.LocTarget
		} else {
			a[op.ID] = core.LocSource
		}
	}
	progXML, _ := wire.EncodeProgram(g, a)
	req := &xmltree.Node{Name: "ExecuteSource"}
	req.SetAttr("filterElem", "CustName")
	req.SetAttr("filterValue", "NoSuchCustomer")
	req.AddKid(progXML)
	resp, err := c.Call("ExecuteSource", req)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range resp.Kids {
		if k.Name != "shipment" {
			continue
		}
		for _, ix := range k.Kids {
			if len(ix.Kids) != 0 {
				t.Errorf("filtered-out exchange still shipped records")
			}
		}
	}
}

func TestRelBackendDefaultsSpeed(t *testing.T) {
	sch := schema.CustomerInfo()
	st := loadedStore(t, tFrag(t, sch))
	be := &RelBackend{Store: st, CanCombine: true} // zero speed
	if got := be.Provider().SourceSpeed; got != 1 {
		t.Errorf("default speed = %v, want 1", got)
	}
}

func TestParseMillis(t *testing.T) {
	if got := ParseMillis("12.5"); got.Milliseconds() != 12 {
		t.Errorf("ParseMillis = %v", got)
	}
	if got := ParseMillis("junk"); got != 0 {
		t.Errorf("ParseMillis(junk) = %v", got)
	}
}
