package endpoint

// Resumable ExecuteTarget sessions (the reliable-exchange subsystem's
// endpoint side). A caller that tags ExecuteTarget with session="id" opts
// into at-most-once delivery semantics across reconnects:
//
//   - the shipment decoder commits chunks into a per-session instance map,
//     guarded by the session's idempotency ledger, so chunks that survived
//     a torn connection are kept and replays are dropped;
//   - the target slice executes once; if the response was lost on the way
//     back, a retried request replays the stored response instead of
//     loading the backend twice;
//   - SessionStatus reports the chunk checkpoint — the ack a reconnecting
//     source resumes emission from.

import (
	"io"
	"strconv"
	"sync"

	"xdx/internal/core"
	"xdx/internal/durable"
	"xdx/internal/obs"
	"xdx/internal/reliable"
	"xdx/internal/schema"
	"xdx/internal/soap"
	"xdx/internal/wire"
	"xdx/internal/xmltree"
)

// targetSession is the endpoint's protocol state for one resumable
// ExecuteTarget transfer: the instance map delivery attempts accumulate
// into, the execute-once latch, and the stored response replayed when a
// completed execution's reply was lost in transit.
type targetSession struct {
	// mu serializes shipment commits (it is wire.ShipmentDecoder.CommitLock
	// for every delivery attempt of the session) and the target execution
	// they feed, so a straggling attempt's chunk commits never interleave
	// with the execute reading the instance map.
	mu      sync.Mutex
	ledger  *reliable.Ledger
	inbound map[string]*core.Instance
	// tombs accumulates, per edge key, the record IDs a delta shipment
	// tombstones (guarded by mu, alongside inbound).
	tombs map[string][]string

	// j and id journal this session's commits when the endpoint is
	// durable (SetJournal); nil j is the memory-only default.
	j  *durable.Journal
	id string
	// recovered holds chunks replayed from the journal on boot, waiting
	// for the first delivery attempt to hydrate them into inbound — the
	// resumed request carries the program whose fragment dictionary the
	// instances need (guarded by mu).
	recovered []durable.SessionChunk

	// pending (guarded by mu) is the pipelined-commit queue used when the
	// journal runs group commit: chunks whose journal frame is submitted
	// but not yet fsynced. Each entry's records enter the instance map
	// and its seq checkpoints (ChunkDone) only when its durability ticket
	// resolves, in submission order — so the ack-after-sync invariant of
	// the synchronous path holds while parsing overlaps the sync.
	pending []pendingCommit

	// stateMu guards the execute-once outcome and the in-flight latch. It
	// is never held across backend execution or response writing, so
	// SessionStatus probes answer immediately while a slow execute runs on
	// mu. Once done is true, resp is immutable and safe to write
	// concurrently.
	stateMu sync.Mutex
	running bool
	done    bool
	resp    *xmltree.Node
}

// pendingCommit is one journaled-but-not-yet-durable chunk: the ticket to
// park on, and everything needed to apply the chunk once it resolves.
type pendingCommit struct {
	p    *durable.Pending
	out  map[string]*core.Instance // the attempt's decode target
	key  string
	frag *core.Fragment
	seq  int64
	recs []*xmltree.Node
	// del marks a tombstone chunk: ids join the session's tombstone set
	// instead of recs entering the instance map.
	del bool
	ids []string
}

// maxPendingCommits bounds the pipelined-commit window: past this many
// in-flight chunks the decoder blocks on the oldest ticket, so a slow
// disk applies backpressure to the wire instead of growing the queue.
const maxPendingCommits = 256

// replay returns the stored (immutable) response when the session already
// executed, else nil.
func (ts *targetSession) replay() *xmltree.Node {
	ts.stateMu.Lock()
	defer ts.stateMu.Unlock()
	if !ts.done {
		return nil
	}
	return ts.resp
}

// setRunning flips the in-flight latch SessionStatus reports as running.
func (ts *targetSession) setRunning(v bool) {
	ts.stateMu.Lock()
	ts.running = v
	ts.stateMu.Unlock()
}

// finish publishes the execute-once outcome. resp must not be mutated
// after this call.
func (ts *targetSession) finish(resp *xmltree.Node) {
	ts.stateMu.Lock()
	ts.done = true
	ts.resp = resp
	ts.stateMu.Unlock()
}

// targetSessionFor returns the session's endpoint state, attaching it on
// first sight.
func (e *Endpoint) targetSessionFor(id string) *targetSession {
	s := e.sessions.GetOrCreate(id)
	s.Mu.Lock()
	defer s.Mu.Unlock()
	ts, ok := s.Data.(*targetSession)
	if !ok {
		ts = &targetSession{ledger: s.Ledger, inbound: map[string]*core.Instance{}}
		if e.journal != nil {
			ts.j, ts.id = e.journal, id
			if err := e.journal.Mint(id); err != nil {
				e.log.Log(obs.LevelWarn, "journal mint failed", "session", id, "err", err.Error())
			}
		}
		s.Data = ts
	}
	return ts
}

// decoder builds this delivery attempt's shipment decoder over the
// session's accumulating instance map, with the ledger plugged into the
// chunk-admission, record-dedup, and checkpoint hooks. Delivery attempts
// for one session can overlap (a client that timed out retries while the
// server is still draining the torn request), so the decoder commits
// chunks under the session mutex and re-checks admission there; without
// the lock a straggler's map writes would race the retry's.
func (ts *targetSession) decoder(sch *schema.Schema, lookup func(name string) *core.Fragment) *wire.ShipmentDecoder {
	ts.mu.Lock()
	ts.hydrateLocked(lookup)
	inbound := ts.inbound
	ts.mu.Unlock()
	if inbound == nil {
		// Late retry after the execute released the map: decode into a
		// throwaway so the pipelined apply below has a concrete target.
		inbound = map[string]*core.Instance{}
	}
	d := wire.NewShipmentDecoderInto(sch, lookup, inbound)
	d.CommitLock = &ts.mu
	d.OnChunk = ts.ledger.AdmitChunk
	d.KeepRecord = ts.ledger.KeepRecord
	d.ChunkDone = ts.ledger.ChunkDone
	d.OnTombs = func(key string, seq int64, ids []string) error {
		return ts.commitTombLocked(key, seq, ids)
	}
	if ts.j != nil && ts.j.Batched() {
		// Pipelined group commit: submit the journal frame, queue the
		// apply, keep parsing. The map append and checkpoint advance
		// happen in commitAsyncLocked/resolve once the frame's group
		// fsyncs.
		d.CommitAsync = func(key string, frag *core.Fragment, seq int64, recs []*xmltree.Node) error {
			return ts.commitAsyncLocked(inbound, key, frag, seq, recs)
		}
	} else if ts.j != nil {
		d.OnCommit = func(key string, frag *core.Fragment, seq int64, recs []*xmltree.Node) error {
			if err := ts.j.Chunk(ts.id, key, frag.Name, seq, recs); err != nil {
				// The ledger marked these records seen before the journal
				// write; forget them again or the retried chunk would dedup
				// them away and lose data.
				for _, rec := range recs {
					ts.ledger.Unmark(key, rec.ID)
				}
				return err
			}
			return nil
		}
	}
	return d
}

// commitAsyncLocked is the pipelined chunk commit (CommitAsync hook; runs
// under ts.mu via CommitLock). It journals the chunk asynchronously and
// queues the apply behind the durability ticket, first settling whatever
// older commits have already synced — so the queue drains as fast as the
// disk does, and the write-ahead ordering (journaled before applied,
// applied before checkpointed) holds per chunk.
func (ts *targetSession) commitAsyncLocked(out map[string]*core.Instance, key string, frag *core.Fragment, seq int64, recs []*xmltree.Node) error {
	unmark := func() {
		// KeepRecord marked these seen before the commit; forget them
		// again or a retried chunk would dedup them away and lose data.
		for _, rec := range recs {
			ts.ledger.Unmark(key, rec.ID)
		}
	}
	if err := ts.resolveReadyLocked(); err != nil {
		unmark()
		return err
	}
	for len(ts.pending) >= maxPendingCommits {
		// Window full: the wire waits for the disk. Hurry the group out
		// and park on the oldest ticket.
		ts.j.Flush()
		if err := ts.resolveHeadLocked(); err != nil {
			unmark()
			return err
		}
	}
	p, err := ts.j.ChunkAsync(ts.id, key, frag.Name, seq, recs)
	if err != nil {
		unmark()
		return err
	}
	ts.pending = append(ts.pending, pendingCommit{p: p, out: out, key: key, frag: frag, seq: seq, recs: recs})
	return nil
}

// commitTombLocked commits one tombstone chunk (the decoder's OnTombs
// hook; runs under ts.mu via CommitLock) with the same write-ahead
// discipline as record chunks: journaled before applied, applied before
// checkpointed. Batch journals ride the pipelined-commit queue, sync
// journals block, and the memory-only default applies immediately.
// Tombstone IDs never pass KeepRecord, so there is nothing to unmark on
// failure.
func (ts *targetSession) commitTombLocked(key string, seq int64, ids []string) error {
	if ts.j != nil && ts.j.Batched() {
		if err := ts.resolveReadyLocked(); err != nil {
			return err
		}
		for len(ts.pending) >= maxPendingCommits {
			ts.j.Flush()
			if err := ts.resolveHeadLocked(); err != nil {
				return err
			}
		}
		p, err := ts.j.TombAsync(ts.id, key, seq, ids)
		if err != nil {
			return err
		}
		ts.pending = append(ts.pending, pendingCommit{p: p, key: key, seq: seq, del: true, ids: ids})
		return nil
	}
	if ts.j != nil {
		if err := ts.j.Tomb(ts.id, key, seq, ids); err != nil {
			return err
		}
	}
	ts.applyTombLocked(key, ids)
	ts.ledger.ChunkDone(seq)
	return nil
}

// applyTombLocked adds tombstoned record IDs to the session's deletion
// set, which the delta apply subtracts from the retained base.
func (ts *targetSession) applyTombLocked(key string, ids []string) {
	if ts.tombs == nil {
		ts.tombs = map[string][]string{}
	}
	ts.tombs[key] = append(ts.tombs[key], ids...)
}

// resolveReadyLocked applies, in order, every queued commit whose ticket
// has already resolved, without blocking.
func (ts *targetSession) resolveReadyLocked() error {
	for len(ts.pending) > 0 {
		select {
		case <-ts.pending[0].p.Done():
		default:
			return nil
		}
		if err := ts.resolveHeadLocked(); err != nil {
			return err
		}
	}
	return nil
}

// resolveHeadLocked waits for the oldest queued commit's ticket and
// applies it: records enter the instance map and the seq checkpoints. A
// failed ticket rolls back the whole queue — every queued chunk's records
// are unmarked so a retry re-ships them — and fails the attempt.
func (ts *targetSession) resolveHeadLocked() error {
	pc := ts.pending[0]
	if err := pc.p.Err(); err != nil {
		for _, q := range ts.pending {
			for _, rec := range q.recs {
				ts.ledger.Unmark(q.key, rec.ID)
			}
		}
		ts.pending = nil
		return err
	}
	if pc.del {
		ts.applyTombLocked(pc.key, pc.ids)
	} else {
		in := pc.out[pc.key]
		if in == nil {
			in = &core.Instance{Frag: pc.frag}
			pc.out[pc.key] = in
		}
		in.Records = append(in.Records, pc.recs...)
	}
	ts.ledger.ChunkDone(pc.seq)
	ts.pending = ts.pending[1:]
	if len(ts.pending) == 0 {
		ts.pending = nil
	}
	return nil
}

// drainPendingLocked settles the whole pipelined-commit queue: hurry the
// journal's commit group out, then apply every queued chunk in order.
// The session ack — checkpoint stamp, execute, HTTP response — runs
// behind this barrier, which is what makes batch-mode acks exactly as
// durable as FsyncAlways ones.
func (ts *targetSession) drainPendingLocked() error {
	if len(ts.pending) == 0 {
		return nil
	}
	ts.j.Flush()
	for len(ts.pending) > 0 {
		if err := ts.resolveHeadLocked(); err != nil {
			return err
		}
	}
	return nil
}

// hydrateLocked materializes chunks recovered from the journal into the
// session's instance map, resolving fragment names through the resumed
// request's program dictionary — the same lookup live commits use, so a
// recovered instance is indistinguishable from one that never crashed.
// Runs once, under ts.mu, on the first delivery attempt after a restart.
func (ts *targetSession) hydrateLocked(lookup func(name string) *core.Fragment) {
	if len(ts.recovered) == 0 || ts.inbound == nil {
		return
	}
	for _, c := range ts.recovered {
		if c.Del {
			// A journaled tombstone chunk: the IDs rejoin the deletion
			// set; there are no records to materialize.
			ids := make([]string, 0, len(c.Recs))
			for _, rec := range c.Recs {
				ids = append(ids, rec.ID)
			}
			ts.applyTombLocked(c.Key, ids)
			continue
		}
		f := lookup(c.Frag)
		if f == nil {
			// The resumed program does not know this fragment; without a
			// definition the records cannot feed an execute. Should not
			// happen — resumes re-send the same program — but skipping
			// beats poisoning the whole session.
			continue
		}
		in := ts.inbound[c.Key]
		if in == nil {
			in = &core.Instance{Frag: f}
			ts.inbound[c.Key] = in
		}
		in.Records = append(in.Records, c.Recs...)
	}
	ts.recovered = nil
}

// respondSession is the session-mode responder: execute once, stamp the
// ledger's checkpoint and dedup count onto the response, and replay the
// stored response on retries of a completed execution. Execution runs
// under the commit lock (mu) so duplicate requests wait and then replay,
// but never under stateMu — SessionStatus probes answer throughout.
func (t *targetScan) respondSession(w io.Writer) error {
	ts := t.ts
	if resp := ts.replay(); resp != nil {
		t.e.met.Counter("endpoint.session.replays").Inc()
		return xmltree.Write(w, resp, xmltree.WriteOptions{EmitAllIDs: true})
	}
	if t.g == nil {
		return &soap.Fault{Code: "soap:Client", String: "missing program"}
	}
	if !t.sawShipment {
		return &soap.Fault{Code: "soap:Client", String: "missing shipment"}
	}
	if _, err := t.dec.Result(); err != nil {
		return err
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	// A duplicate request may have won the execute race while this one
	// waited on the commit lock; replay its response instead of loading
	// the backend twice.
	if resp := ts.replay(); resp != nil {
		t.e.met.Counter("endpoint.session.replays").Inc()
		return xmltree.Write(w, resp, xmltree.WriteOptions{EmitAllIDs: true})
	}
	// Settle the pipelined commits before acking anything: the checkpoint
	// stamped below and the execute's view of the instance map must only
	// cover chunks whose journal frames are on stable storage.
	if err := ts.drainPendingLocked(); err != nil {
		return err
	}
	run := ts.inbound
	if t.delta {
		base := t.e.deltaBaseFor(t.stream, t.epoch)
		if base == nil {
			// The warm base vanished between delivery start and execute (a
			// raced restart); the agency reacts with a full reship.
			t.e.met.Counter("endpoint.delta.cold").Inc()
			return soap.ColdDeltaFault("stream " + t.stream + " epoch " + t.epoch)
		}
		run = patchDelta(base, ts.inbound, ts.tombs)
		t.e.met.Counter("endpoint.delta.applies").Inc()
	}
	exec := run
	if t.stream != "" {
		// Stream-tagged exchanges carry (or patch up to) the full logical
		// snapshot: replace the previous one instead of appending to it,
		// and hand the executor copy-on-write views so the retained base
		// never sees combine-time mutations.
		t.e.clearBackend()
		exec = shareInstances(run)
	}
	ts.setRunning(true)
	resp, err := t.e.runTarget(t.g, t.a, exec, t.pipelined)
	ts.setRunning(false)
	if err != nil {
		return err
	}
	if t.stream != "" {
		t.e.storeDeltaBase(t.stream, t.epoch, run)
	}
	resp.SetAttr("checkpoint", strconv.FormatInt(ts.ledger.Checkpoint(), 10))
	resp.SetAttr("deduped", strconv.FormatInt(ts.ledger.Deduped(), 10))
	t.e.met.Counter("endpoint.session.executes").Inc()
	t.e.met.Counter("endpoint.session.deduped").Add(ts.ledger.Deduped())
	// Write the winner's copy before stamping the replay marker, then
	// freeze: every later reader sees replayed="1" on an immutable node.
	werr := xmltree.Write(w, resp, xmltree.WriteOptions{EmitAllIDs: true})
	resp.SetAttr("replayed", "1")
	ts.finish(resp)
	// The instances are loaded; replays only need the stored response, so
	// release the decoded map instead of holding shipment-sized state for
	// the rest of the session's lifetime. A late retry's decoder finds nil
	// and decodes into a throwaway map — its chunks are all checkpointed
	// anyway.
	ts.inbound = nil
	return werr
}

// patchDelta overlays a delta shipment onto the retained base: per
// shipped edge, tombstoned and re-shipped record IDs drop out of the base
// and the inbound records append — the inverse of how the source derived
// the delta, so the patched map equals the full shipment it stands in
// for. Edges absent from the delta vanished from the source's output (all
// their IDs are tombstoned) and are simply omitted.
func patchDelta(base, delta map[string]*core.Instance, tombs map[string][]string) map[string]*core.Instance {
	out := make(map[string]*core.Instance, len(delta))
	for key, din := range delta {
		drop := make(map[string]bool, len(tombs[key])+len(din.Records))
		for _, id := range tombs[key] {
			drop[id] = true
		}
		for _, rec := range din.Records {
			drop[rec.ID] = true
		}
		var recs []*xmltree.Node
		if bin := base[key]; bin != nil {
			recs = make([]*xmltree.Node, 0, len(bin.Records)+len(din.Records))
			for _, rec := range bin.Records {
				if !drop[rec.ID] {
					recs = append(recs, rec)
				}
			}
		}
		recs = append(recs, din.Records...)
		out[key] = &core.Instance{Frag: din.Frag, Records: recs}
	}
	return out
}

// shareInstances wraps every instance in a copy-on-write view (see
// core.Instance.Share), keeping the underlying records immutable while
// the target slice executes over them.
func shareInstances(in map[string]*core.Instance) map[string]*core.Instance {
	out := make(map[string]*core.Instance, len(in))
	for k, v := range in {
		out[k] = v.Share()
	}
	return out
}

// sessionStatus answers a SessionStatus probe: the chunk checkpoint a
// resuming source should skip to, whether the target already executed, and
// how many replayed records were deduped. Unknown sessions answer
// known="0" with a zero checkpoint — a source that never reached the
// target resumes from the start.
func (e *Endpoint) sessionStatus(req *xmltree.Node) (*xmltree.Node, error) {
	id, _ := req.Attr("session")
	if id == "" {
		return nil, &soap.Fault{Code: "soap:Client", String: "SessionStatus without session id"}
	}
	resp := &xmltree.Node{Name: "SessionStatusResponse"}
	resp.SetAttr("session", id)
	s := e.sessions.Get(id)
	if s == nil {
		resp.SetAttr("known", "0")
		resp.SetAttr("next", "0")
		resp.SetAttr("done", "0")
		return resp, nil
	}
	s.Mu.Lock()
	ts, _ := s.Data.(*targetSession)
	s.Mu.Unlock()
	resp.SetAttr("known", "1")
	if ts == nil {
		resp.SetAttr("next", "0")
		resp.SetAttr("done", "0")
		return resp, nil
	}
	// Probe state lives behind stateMu and the ledger's own lock — never
	// the commit/execute lock — so a probe answers immediately even while
	// a slow backend execution is in flight for this session.
	ts.stateMu.Lock()
	done, running := ts.done, ts.running
	ts.stateMu.Unlock()
	resp.SetAttr("next", strconv.FormatInt(ts.ledger.Checkpoint(), 10))
	d := "0"
	if done {
		d = "1"
	}
	resp.SetAttr("done", d)
	if running {
		resp.SetAttr("running", "1")
	}
	resp.SetAttr("deduped", strconv.FormatInt(ts.ledger.Deduped(), 10))
	return resp, nil
}

// endSession releases a session's state once the source has the response
// it needs — without it, a completed session (ledger, stored response)
// would sit in memory for the store's full MaxAge. Ending an unknown
// session is fine: it may already have been swept.
func (e *Endpoint) endSession(req *xmltree.Node) (*xmltree.Node, error) {
	id, _ := req.Attr("session")
	if id == "" {
		return nil, &soap.Fault{Code: "soap:Client", String: "EndSession without session id"}
	}
	e.sessions.Delete(id)
	resp := &xmltree.Node{Name: "EndSessionResponse"}
	resp.SetAttr("session", id)
	return resp, nil
}
