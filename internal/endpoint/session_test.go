package endpoint

import (
	"bytes"
	"errors"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdx/internal/core"
	"xdx/internal/reliable"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/soap"
	"xdx/internal/wire"
	"xdx/internal/wsdlx"
	"xdx/internal/xmltree"
)

// scanWriteProgram builds the identical-fragmentation Scan->Write program
// used by the exchange tests, with scans at the source and writes at the
// target.
func scanWriteProgram(t *testing.T, fr *core.Fragmentation) (*core.Graph, core.Assignment, *xmltree.Node) {
	t.Helper()
	m, err := core.NewMapping(fr, fr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == core.OpWrite {
			a[op.ID] = core.LocTarget
		} else {
			a[op.ID] = core.LocSource
		}
	}
	progXML, err := wire.EncodeProgram(g, a)
	if err != nil {
		t.Fatal(err)
	}
	return g, a, progXML
}

// fragDict returns the program's fragment dictionary, as the target's
// shipment decoder resolves it.
func fragDict(g *core.Graph) func(name string) *core.Fragment {
	frags := map[string]*core.Fragment{}
	for _, op := range g.Ops {
		frags[op.Out.Name] = op.Out
		for _, p := range op.Parts {
			frags[p.Name] = p
		}
	}
	for _, ed := range g.Edges {
		frags[ed.Frag.Name] = ed.Frag
	}
	return func(name string) *core.Fragment { return frags[name] }
}

// sessionFixture is everything a resumable-delivery test needs: a target
// endpoint (with its session store exposed), the serialized program, and
// the source's shipment rechunked one record per chunk on the wire.
type sessionFixture struct {
	client  *soap.Client
	ep      *Endpoint
	store   *relstore.Store
	srcRows int
	prog    string
	wire    []byte
	chunks  int
}

// newSessionFixture produces the shipment through a real source endpoint,
// then stands up an empty target to deliver it to.
func newSessionFixture(t *testing.T) (*sessionFixture, func()) {
	t.Helper()
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	srcStore := loadedStore(t, fr)
	srcClient, srcDone := startEndpoint(t, &RelBackend{Store: srcStore, Speed: 1, CanCombine: true})
	defer srcDone()

	g, _, progXML := scanWriteProgram(t, fr)
	reqS := &xmltree.Node{Name: "ExecuteSource"}
	reqS.AddKid(progXML)
	respS, err := srcClient.Call("ExecuteSource", reqS)
	if err != nil {
		t.Fatal(err)
	}
	var shipment *xmltree.Node
	for _, k := range respS.Kids {
		if k.Name == "shipment" {
			shipment = k
		}
	}
	if shipment == nil {
		t.Fatal("source returned no shipment")
	}
	outbound, err := wire.ReadShipment(
		strings.NewReader(xmltree.Marshal(shipment, xmltree.WriteOptions{EmitAllIDs: true})),
		sch, fragDict(g))
	if err != nil {
		t.Fatal(err)
	}
	chunks := reliable.ChunkShipment(outbound, 1)
	if len(chunks) < 3 {
		t.Fatalf("fixture too small: %d chunks", len(chunks))
	}
	var ship bytes.Buffer
	sw := wire.NewShipmentWriter(&ship, sch, false)
	for _, c := range chunks {
		if err := sw.EmitChunk(c.Key, c.Frag, c.Recs, c.Seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	tgtStore, err := relstore.NewStore(fr)
	if err != nil {
		t.Fatal(err)
	}
	defs := &wsdlx.Definitions{
		Name: "CustomerInfo", TargetNamespace: "ns", ServiceName: "svc",
		PortName: "p", Address: "http://x", Schema: sch,
		Fragmentations: []*core.Fragmentation{fr},
	}
	ep := New("test", &RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, defs)
	srv := httptest.NewServer(ep.Handler())
	return &sessionFixture{
		client:  &soap.Client{URL: srv.URL},
		ep:      ep,
		store:   tgtStore,
		srcRows: srcStore.Rows(),
		prog:    xmltree.Marshal(progXML, xmltree.WriteOptions{EmitAllIDs: true}),
		wire:    ship.Bytes(),
		chunks:  len(chunks),
	}, srv.Close
}

// TestExecuteTargetSessionResume drives the endpoint's resumable-session
// protocol end to end: a delivery torn mid-chunk leaves only whole chunks
// committed, SessionStatus reports the checkpoint, a full retry commits
// exactly the missing chunks, and a third delivery replays the stored
// response without executing twice.
func TestExecuteTargetSessionResume(t *testing.T) {
	fx, done := newSessionFixture(t)
	defer done()

	const head = `<ExecuteTarget session="sess-resume-1">`

	// Attempt 1: the connection dies partway into chunk 1.
	cut := bytes.Index(fx.wire, []byte("</instance>")) + len("</instance>") + 10
	err := fx.client.CallStream("ExecuteTarget", func(w io.Writer) error {
		io.WriteString(w, head)
		io.WriteString(w, fx.prog)
		w.Write(fx.wire[:cut])
		return errors.New("injected drop")
	}, nil)
	if err == nil {
		t.Fatal("torn delivery reported success")
	}
	if fx.store.Rows() != 0 {
		t.Fatalf("target loaded %d rows from a torn delivery", fx.store.Rows())
	}

	// The target acked exactly the chunks that arrived whole.
	status := &xmltree.Node{Name: "SessionStatus"}
	status.SetAttr("session", "sess-resume-1")
	st, err := fx.client.Call("SessionStatus", status)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Attr("known"); v != "1" {
		t.Fatalf("session unknown after torn delivery: %s", xmltree.Marshal(st, xmltree.WriteOptions{}))
	}
	if v, _ := st.Attr("next"); v != "1" {
		t.Fatalf("checkpoint = %q after torn delivery, want 1", v)
	}
	if v, _ := st.Attr("done"); v != "0" {
		t.Fatal("session done before any complete delivery")
	}

	// Attempt 2: full redelivery; the ledger skips chunk 0, commits the
	// rest, and the target executes.
	tb := &xmltree.TreeBuilder{}
	err = fx.client.CallStream("ExecuteTarget", func(w io.Writer) error {
		io.WriteString(w, head)
		io.WriteString(w, fx.prog)
		_, werr := w.Write(fx.wire)
		io.WriteString(w, "</ExecuteTarget>")
		return werr
	}, tb)
	if err != nil {
		t.Fatal(err)
	}
	resp := tb.Root()
	if resp == nil || resp.Name != "ExecuteTargetResponse" {
		t.Fatalf("unexpected response %s", xmltree.Marshal(resp, xmltree.WriteOptions{}))
	}
	if v, _ := resp.Attr("checkpoint"); v != strconv.Itoa(fx.chunks) {
		t.Errorf("checkpoint = %q after redelivery, want %d", v, fx.chunks)
	}
	if v, _ := resp.Attr("replayed"); v != "" {
		t.Error("first complete delivery marked as replay")
	}
	if fx.store.Rows() != fx.srcRows {
		t.Fatalf("target rows = %d, want %d", fx.store.Rows(), fx.srcRows)
	}

	// Attempt 3: a retry of the completed session replays the stored
	// response instead of loading the backend twice.
	tb = &xmltree.TreeBuilder{}
	err = fx.client.CallStream("ExecuteTarget", func(w io.Writer) error {
		io.WriteString(w, head)
		io.WriteString(w, fx.prog)
		_, werr := w.Write(fx.wire)
		io.WriteString(w, "</ExecuteTarget>")
		return werr
	}, tb)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tb.Root().Attr("replayed"); v != "1" {
		t.Error("completed session did not replay its response")
	}
	if fx.store.Rows() != fx.srcRows {
		t.Errorf("replay changed the target store: %d rows", fx.store.Rows())
	}

	// The status probe agrees the session is finished.
	st, err = fx.client.Call("SessionStatus", status)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Attr("done"); v != "1" {
		t.Error("status probe does not report done")
	}
}

// TestExecuteTargetSessionConcurrentDeliveries races full and torn
// deliveries of the same session against each other — the shape a client
// attempt-timeout produces, where the retry decodes while the server is
// still draining the straggler's torn request. Chunk commits serialize on
// the session mutex and re-check admission there, so the target must
// execute exactly once over exactly the source's records, whatever the
// interleaving. Run under -race this doubles as the data-race regression
// for the shared inbound map.
func TestExecuteTargetSessionConcurrentDeliveries(t *testing.T) {
	fx, done := newSessionFixture(t)
	defer done()

	const head = `<ExecuteTarget session="sess-conc-1">`
	const full, torn = 4, 4
	var wg sync.WaitGroup
	var executed, replayed atomic.Int64
	errs := make(chan error, full)

	// drip writes the shipment in small slices with pauses, so every
	// attempt is mid-decode — and mid-commit — while the others are too;
	// a burst write would let attempts finish before they overlap.
	drip := func(w io.Writer, data []byte) error {
		step := len(data)/6 + 1
		for off := 0; off < len(data); off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			if _, err := w.Write(data[off:end]); err != nil {
				return err
			}
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	}

	for i := 0; i < torn; i++ {
		cut := len(fx.wire) * (i + 1) / (torn + 2)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The torn attempts race the full ones; their own errors are
			// expected and irrelevant.
			fx.client.CallStream("ExecuteTarget", func(w io.Writer) error {
				io.WriteString(w, head)
				io.WriteString(w, fx.prog)
				drip(w, fx.wire[:cut])
				return errors.New("injected drop")
			}, nil)
		}()
	}
	for i := 0; i < full; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tb := &xmltree.TreeBuilder{}
			err := fx.client.CallStream("ExecuteTarget", func(w io.Writer) error {
				io.WriteString(w, head)
				io.WriteString(w, fx.prog)
				if werr := drip(w, fx.wire); werr != nil {
					return werr
				}
				_, werr := io.WriteString(w, "</ExecuteTarget>")
				return werr
			}, tb)
			if err != nil {
				errs <- err
				return
			}
			if v, _ := tb.Root().Attr("replayed"); v == "1" {
				replayed.Add(1)
			} else {
				executed.Add(1)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("complete delivery failed: %v", err)
	}
	if executed.Load() != 1 {
		t.Errorf("executed %d times, want exactly once", executed.Load())
	}
	if replayed.Load() != full-1 {
		t.Errorf("replayed %d responses, want %d", replayed.Load(), full-1)
	}
	if fx.store.Rows() != fx.srcRows {
		t.Errorf("target rows = %d, want %d — concurrent deliveries corrupted the load",
			fx.store.Rows(), fx.srcRows)
	}
}

// TestEndSessionReleasesState covers the session lifecycle's tail: the
// source releases a finished session explicitly, and a target that lost a
// session mid-exchange (the sweep/restart case EndSession here stands in
// for) reports known="0" so the source resends from zero — the ledger of
// the fresh session accepts everything and no record is lost.
func TestEndSessionReleasesState(t *testing.T) {
	fx, done := newSessionFixture(t)
	defer done()

	const head = `<ExecuteTarget session="sess-end-1">`

	// A torn delivery establishes a checkpoint...
	cut := bytes.Index(fx.wire, []byte("</instance>")) + len("</instance>") + 10
	if err := fx.client.CallStream("ExecuteTarget", func(w io.Writer) error {
		io.WriteString(w, head)
		io.WriteString(w, fx.prog)
		w.Write(fx.wire[:cut])
		return errors.New("injected drop")
	}, nil); err == nil {
		t.Fatal("torn delivery reported success")
	}
	// The aborted request returns to the client before the server handler
	// has necessarily minted the session; wait for it to appear.
	deadline := time.Now().Add(5 * time.Second)
	for fx.ep.Sessions().Len() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fx.ep.Sessions().Len() != 1 {
		t.Fatalf("sessions = %d after torn delivery", fx.ep.Sessions().Len())
	}

	// ...which the target forgets when the session ends.
	end := &xmltree.Node{Name: "EndSession"}
	end.SetAttr("session", "sess-end-1")
	if _, err := fx.client.Call("EndSession", end); err != nil {
		t.Fatal(err)
	}
	if fx.ep.Sessions().Len() != 0 {
		t.Fatalf("sessions = %d after EndSession", fx.ep.Sessions().Len())
	}
	status := &xmltree.Node{Name: "SessionStatus"}
	status.SetAttr("session", "sess-end-1")
	st, err := fx.client.Call("SessionStatus", status)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Attr("known"); v != "0" {
		t.Fatal("ended session still known — a resuming source would skip lost chunks")
	}

	// A full redelivery from zero (what resumePoint derives from
	// known="0") loads everything into the fresh session.
	tb := &xmltree.TreeBuilder{}
	if err := fx.client.CallStream("ExecuteTarget", func(w io.Writer) error {
		io.WriteString(w, head)
		io.WriteString(w, fx.prog)
		_, werr := w.Write(fx.wire)
		io.WriteString(w, "</ExecuteTarget>")
		return werr
	}, tb); err != nil {
		t.Fatal(err)
	}
	if v, _ := tb.Root().Attr("checkpoint"); v != strconv.Itoa(fx.chunks) {
		t.Errorf("checkpoint = %q after redelivery into fresh session, want %d", v, fx.chunks)
	}
	if fx.store.Rows() != fx.srcRows {
		t.Fatalf("target rows = %d, want %d", fx.store.Rows(), fx.srcRows)
	}

	// Completed sessions release the same way, and ending twice is fine.
	for i := 0; i < 2; i++ {
		if _, err := fx.client.Call("EndSession", end); err != nil {
			t.Fatal(err)
		}
	}
	if fx.ep.Sessions().Len() != 0 {
		t.Fatalf("sessions = %d after final EndSession", fx.ep.Sessions().Len())
	}

	// EndSession without an id faults.
	if _, err := fx.client.Call("EndSession", &xmltree.Node{Name: "EndSession"}); err == nil {
		t.Error("EndSession without session id must fault")
	}
}

// TestSessionStatusUnknown checks the probe's answer for a session the
// target never saw: resume from the start.
func TestSessionStatusUnknown(t *testing.T) {
	sch := schema.CustomerInfo()
	st := loadedStore(t, tFrag(t, sch))
	c, done := startEndpoint(t, &RelBackend{Store: st, Speed: 1, CanCombine: true})
	defer done()
	req := &xmltree.Node{Name: "SessionStatus"}
	req.SetAttr("session", "never-seen")
	resp, err := c.Call("SessionStatus", req)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := resp.Attr("known"); v != "0" {
		t.Error("unknown session reported known")
	}
	if v, _ := resp.Attr("next"); v != "0" {
		t.Errorf("unknown session checkpoint = %q, want 0", v)
	}
	if _, err := c.Call("SessionStatus", &xmltree.Node{Name: "SessionStatus"}); err == nil {
		t.Error("probe without session id must fault")
	}
}

// slowBackend delays index building, holding the session's execute (and its
// commit lock) busy long enough for probes to race it.
type slowBackend struct {
	Backend
	delay   time.Duration
	started chan struct{}
	once    sync.Once
}

// BuildIndexes implements Backend.
func (b *slowBackend) BuildIndexes() error {
	b.once.Do(func() { close(b.started) })
	time.Sleep(b.delay)
	return b.Backend.BuildIndexes()
}

// TestSessionStatusAnswersDuringSlowExecute is the probe-liveness
// regression: SessionStatus used to block on the session mutex for the
// whole backend execution, so the reconnecting source it serves timed out
// exactly when the target was busiest. Probes must answer immediately —
// and report the execution as in flight — while a slow execute runs.
func TestSessionStatusAnswersDuringSlowExecute(t *testing.T) {
	fx, done := newSessionFixture(t)
	defer done()

	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	tgtStore, err := relstore.NewStore(fr)
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowBackend{
		Backend: &RelBackend{Store: tgtStore, Speed: 1, CanCombine: true},
		delay:   time.Second,
		started: make(chan struct{}),
	}
	client, closeSrv := startEndpoint(t, slow)
	defer closeSrv()

	const head = `<ExecuteTarget session="sess-slow-1">`
	delivered := make(chan error, 1)
	go func() {
		delivered <- client.CallStream("ExecuteTarget", func(w io.Writer) error {
			io.WriteString(w, head)
			io.WriteString(w, fx.prog)
			if _, werr := w.Write(fx.wire); werr != nil {
				return werr
			}
			_, werr := io.WriteString(w, "</ExecuteTarget>")
			return werr
		}, &xmltree.TreeBuilder{})
	}()

	select {
	case <-slow.started:
	case <-time.After(10 * time.Second):
		t.Fatal("execution never started")
	}

	// The backend now sleeps inside the execute, commit lock held. Probes
	// must come back orders of magnitude faster than the execution.
	status := &xmltree.Node{Name: "SessionStatus"}
	status.SetAttr("session", "sess-slow-1")
	sawRunning := false
	for i := 0; i < 3; i++ {
		probeStart := time.Now()
		st, err := client.Call("SessionStatus", status)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(probeStart); elapsed > 100*time.Millisecond {
			t.Fatalf("probe %d took %v with an execute in flight, want <100ms", i, elapsed)
		}
		if v, _ := st.Attr("done"); v != "0" {
			t.Fatalf("probe %d reports done during execution", i)
		}
		if v, _ := st.Attr("running"); v == "1" {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Error("no probe reported the execution as running")
	}

	if err := <-delivered; err != nil {
		t.Fatalf("delivery failed: %v", err)
	}
	st, err := client.Call("SessionStatus", status)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Attr("done"); v != "1" {
		t.Error("probe does not report done after delivery")
	}
	if tgtStore.Rows() != fx.srcRows {
		t.Errorf("target rows = %d, want %d", tgtStore.Rows(), fx.srcRows)
	}
}
