package endpoint

import (
	"bytes"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"

	"xdx/internal/core"
	"xdx/internal/reliable"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/wire"
	"xdx/internal/xmltree"
)

// scanWriteProgram builds the identical-fragmentation Scan->Write program
// used by the exchange tests, with scans at the source and writes at the
// target.
func scanWriteProgram(t *testing.T, fr *core.Fragmentation) (*core.Graph, core.Assignment, *xmltree.Node) {
	t.Helper()
	m, err := core.NewMapping(fr, fr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == core.OpWrite {
			a[op.ID] = core.LocTarget
		} else {
			a[op.ID] = core.LocSource
		}
	}
	progXML, err := wire.EncodeProgram(g, a)
	if err != nil {
		t.Fatal(err)
	}
	return g, a, progXML
}

// fragDict returns the program's fragment dictionary, as the target's
// shipment decoder resolves it.
func fragDict(g *core.Graph) func(name string) *core.Fragment {
	frags := map[string]*core.Fragment{}
	for _, op := range g.Ops {
		frags[op.Out.Name] = op.Out
		for _, p := range op.Parts {
			frags[p.Name] = p
		}
	}
	for _, ed := range g.Edges {
		frags[ed.Frag.Name] = ed.Frag
	}
	return func(name string) *core.Fragment { return frags[name] }
}

// TestExecuteTargetSessionResume drives the endpoint's resumable-session
// protocol end to end: a delivery torn mid-chunk leaves only whole chunks
// committed, SessionStatus reports the checkpoint, a full retry commits
// exactly the missing chunks, and a third delivery replays the stored
// response without executing twice.
func TestExecuteTargetSessionResume(t *testing.T) {
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	srcStore := loadedStore(t, fr)
	srcClient, srcDone := startEndpoint(t, &RelBackend{Store: srcStore, Speed: 1, CanCombine: true})
	defer srcDone()
	tgtStore, err := relstore.NewStore(fr)
	if err != nil {
		t.Fatal(err)
	}
	tgtClient, tgtDone := startEndpoint(t, &RelBackend{Store: tgtStore, Speed: 1, CanCombine: true})
	defer tgtDone()

	g, _, progXML := scanWriteProgram(t, fr)

	// Produce the outbound shipment and rechunk it one record per chunk.
	reqS := &xmltree.Node{Name: "ExecuteSource"}
	reqS.AddKid(progXML)
	respS, err := srcClient.Call("ExecuteSource", reqS)
	if err != nil {
		t.Fatal(err)
	}
	var shipment *xmltree.Node
	for _, k := range respS.Kids {
		if k.Name == "shipment" {
			shipment = k
		}
	}
	if shipment == nil {
		t.Fatal("source returned no shipment")
	}
	outbound, err := wire.ReadShipment(
		strings.NewReader(xmltree.Marshal(shipment, xmltree.WriteOptions{EmitAllIDs: true})),
		sch, fragDict(g))
	if err != nil {
		t.Fatal(err)
	}
	chunks := reliable.ChunkShipment(outbound, 1)
	if len(chunks) < 3 {
		t.Fatalf("fixture too small: %d chunks", len(chunks))
	}
	var ship bytes.Buffer
	sw := wire.NewShipmentWriter(&ship, sch, false)
	for _, c := range chunks {
		if err := sw.EmitChunk(c.Key, c.Frag, c.Recs, c.Seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	wireBytes := ship.Bytes()

	const head = `<ExecuteTarget session="sess-resume-1">`
	prog := xmltree.Marshal(progXML, xmltree.WriteOptions{EmitAllIDs: true})

	// Attempt 1: the connection dies partway into chunk 1.
	cut := bytes.Index(wireBytes, []byte("</instance>")) + len("</instance>") + 10
	err = tgtClient.CallStream("ExecuteTarget", func(w io.Writer) error {
		io.WriteString(w, head)
		io.WriteString(w, prog)
		w.Write(wireBytes[:cut])
		return errors.New("injected drop")
	}, nil)
	if err == nil {
		t.Fatal("torn delivery reported success")
	}
	if tgtStore.Rows() != 0 {
		t.Fatalf("target loaded %d rows from a torn delivery", tgtStore.Rows())
	}

	// The target acked exactly the chunks that arrived whole.
	status := &xmltree.Node{Name: "SessionStatus"}
	status.SetAttr("session", "sess-resume-1")
	st, err := tgtClient.Call("SessionStatus", status)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Attr("known"); v != "1" {
		t.Fatalf("session unknown after torn delivery: %s", xmltree.Marshal(st, xmltree.WriteOptions{}))
	}
	if v, _ := st.Attr("next"); v != "1" {
		t.Fatalf("checkpoint = %q after torn delivery, want 1", v)
	}
	if v, _ := st.Attr("done"); v != "0" {
		t.Fatal("session done before any complete delivery")
	}

	// Attempt 2: full redelivery; the ledger skips chunk 0, commits the
	// rest, and the target executes.
	tb := &xmltree.TreeBuilder{}
	err = tgtClient.CallStream("ExecuteTarget", func(w io.Writer) error {
		io.WriteString(w, head)
		io.WriteString(w, prog)
		_, werr := w.Write(wireBytes)
		io.WriteString(w, "</ExecuteTarget>")
		return werr
	}, tb)
	if err != nil {
		t.Fatal(err)
	}
	resp := tb.Root()
	if resp == nil || resp.Name != "ExecuteTargetResponse" {
		t.Fatalf("unexpected response %s", xmltree.Marshal(resp, xmltree.WriteOptions{}))
	}
	if v, _ := resp.Attr("checkpoint"); v != strconv.Itoa(len(chunks)) {
		t.Errorf("checkpoint = %q after redelivery, want %d", v, len(chunks))
	}
	if v, _ := resp.Attr("replayed"); v != "" {
		t.Error("first complete delivery marked as replay")
	}
	if tgtStore.Rows() != srcStore.Rows() {
		t.Fatalf("target rows = %d, want %d", tgtStore.Rows(), srcStore.Rows())
	}

	// Attempt 3: a retry of the completed session replays the stored
	// response instead of loading the backend twice.
	tb = &xmltree.TreeBuilder{}
	err = tgtClient.CallStream("ExecuteTarget", func(w io.Writer) error {
		io.WriteString(w, head)
		io.WriteString(w, prog)
		_, werr := w.Write(wireBytes)
		io.WriteString(w, "</ExecuteTarget>")
		return werr
	}, tb)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tb.Root().Attr("replayed"); v != "1" {
		t.Error("completed session did not replay its response")
	}
	if tgtStore.Rows() != srcStore.Rows() {
		t.Errorf("replay changed the target store: %d rows", tgtStore.Rows())
	}

	// The status probe agrees the session is finished.
	st, err = tgtClient.Call("SessionStatus", status)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Attr("done"); v != "1" {
		t.Error("status probe does not report done")
	}
}

// TestSessionStatusUnknown checks the probe's answer for a session the
// target never saw: resume from the start.
func TestSessionStatusUnknown(t *testing.T) {
	sch := schema.CustomerInfo()
	st := loadedStore(t, tFrag(t, sch))
	c, done := startEndpoint(t, &RelBackend{Store: st, Speed: 1, CanCombine: true})
	defer done()
	req := &xmltree.Node{Name: "SessionStatus"}
	req.SetAttr("session", "never-seen")
	resp, err := c.Call("SessionStatus", req)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := resp.Attr("known"); v != "0" {
		t.Error("unknown session reported known")
	}
	if v, _ := resp.Attr("next"); v != "0" {
		t.Errorf("unknown session checkpoint = %q, want 0", v)
	}
	if _, err := c.Call("SessionStatus", &xmltree.Node{Name: "SessionStatus"}); err == nil {
		t.Error("probe without session id must fault")
	}
}
