package endpoint

// Streaming execution handlers. Both execute operations dispatch through
// the SOAP server's streaming path, so the endpoint never materializes an
// envelope:
//
//   - ExecuteSource consumes the (small) request tree and, when the caller
//     asks for stream="1", serializes the outbound shipment directly onto
//     the HTTP response as the slice executes — with the pipelined engine
//     records hit the wire while upstream operators still produce.
//   - ExecuteTarget always scans its (large) request as SAX events: the
//     program subtree is materialized, the shipment subtree flows straight
//     into the streaming shipment decoder, and the envelope tree is never
//     built. Buffered and streaming clients produce the same bytes, so one
//     request path serves both.

import (
	"fmt"
	"io"
	"time"

	"xdx/internal/core"
	"xdx/internal/obs"
	"xdx/internal/soap"
	"xdx/internal/wire"
	"xdx/internal/xmltree"
)

// attrTrue reports whether a flag attribute is set.
func attrTrue(v string) bool { return v == "1" || v == "true" }

// findAttr returns the named attribute from a reused scan-attrs slice.
func findAttr(attrs []xmltree.Attr, name string) string {
	for _, a := range attrs {
		if a.Name == name {
			return a.Value
		}
	}
	return ""
}

// executeSourceStream is the stream dispatch for ExecuteSource. Requests
// without stream="1" take the legacy tree path (materialize request,
// build response tree); with it, the response shipment streams. Either
// way the reply's shipment codec is resolved the same: envelope
// negotiation first, payload attributes as the fallback.
func (e *Endpoint) executeSourceStream(env soap.Header, attrs []xmltree.Attr) (xmltree.AttrHandler, soap.RespondFunc, error) {
	streamed := attrTrue(findAttr(attrs, "stream"))
	tb := &xmltree.TreeBuilder{}
	if !streamed {
		return tb, func(w io.Writer) error {
			codec, negotiated, err := e.pickCodec(env, tb.Root())
			if err != nil {
				return err
			}
			if negotiated {
				stampCodec(w, codec)
			}
			resp, err := e.executeSource(tb.Root(), codec)
			if err != nil {
				return err
			}
			return xmltree.Write(w, resp, xmltree.WriteOptions{EmitAllIDs: true})
		}, nil
	}
	return tb, func(w io.Writer) error { return e.respondSourceStream(env, tb.Root(), w) }, nil
}

// stampCodec records the negotiated codec on the response envelope, when
// the transport exposes one (the streaming SOAP server does; a bare
// io.Writer in tests may not).
func stampCodec(w io.Writer, c wire.Codec) {
	if aw, ok := w.(soap.EnvelopeAttrWriter); ok {
		aw.SetEnvelopeAttr("codec", c.String())
	}
}

// respondSourceStream executes the source slice and streams the shipment
// onto w as it is produced. Since serialization overlaps execution, the
// query time cannot ride on the response root's attributes; it follows the
// shipment as a trailing <timing> element.
func (e *Endpoint) respondSourceStream(env soap.Header, req *xmltree.Node, w io.Writer) error {
	g, a, err := decodeProgramChild(req, e.backend.Layout())
	if err != nil {
		return err
	}
	codec, negotiated, err := e.pickCodec(env, req)
	if err != nil {
		return err
	}
	if negotiated {
		stampCodec(w, codec)
	}
	scan, err := e.sourceScan(req)
	if err != nil {
		return err
	}
	sch := e.backend.Layout().Schema
	start := time.Now()
	if _, err := io.WriteString(w, "<ExecuteSourceResponse>"); err != nil {
		return err
	}
	sw := wire.NewShipmentWriterCodec(w, sch, codec)
	sw.SetWorkers(e.codecWorkers)
	sw.SetObs(e.met)
	if v, ok := req.Attr("pipelined"); ok && attrTrue(v) {
		// Producers emit straight onto the wire as they finish batches.
		_, _, err = core.ExecuteSlicePipelined(g, sch, a, core.LocSource, core.SliceIO{
			Scan: scan,
			Emit: sw.Emit,
		})
	} else {
		var outbound map[string]*core.Instance
		outbound, _, err = core.ExecuteSlice(g, sch, a, core.LocSource, core.SliceIO{Scan: scan})
		if err == nil {
			err = wire.EmitShipment(sw, outbound)
		}
	}
	if err != nil {
		sw.Close()
		return err
	}
	if err := sw.Close(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	e.met.Counter("endpoint.source.executes").Inc()
	e.met.Histogram("endpoint.source.millis").Observe(float64(elapsed) / float64(time.Millisecond))
	if _, err := fmt.Fprintf(w, `<timing queryMillis="%s"/>`, formatMillis(elapsed)); err != nil {
		return err
	}
	_, err = io.WriteString(w, "</ExecuteSourceResponse>")
	return err
}

// executeTargetStream is the stream dispatch for ExecuteTarget: one SAX
// pass over the request, program tree materialized, shipment decoded
// incrementally.
func (e *Endpoint) executeTargetStream(env soap.Header, attrs []xmltree.Attr) (xmltree.AttrHandler, soap.RespondFunc, error) {
	h := &targetScan{e: e}
	return h, h.respond, nil
}

// targetScan routes an ExecuteTarget request's subtrees: <program> into a
// tree builder (programs are small), <shipment> into the streaming
// shipment decoder, which restores interior PARENT links as elements
// arrive.
type targetScan struct {
	e *Endpoint

	depth int
	skip  int

	sub      xmltree.AttrHandler
	subDepth int
	subProg  bool

	pipelined   bool
	stream      string
	epoch       string
	delta       bool
	ts          *targetSession
	tb          *xmltree.TreeBuilder
	dec         *wire.ShipmentDecoder
	g           *core.Graph
	a           core.Assignment
	sawShipment bool
}

// StartElement implements xmltree.AttrHandler.
func (t *targetScan) StartElement(name string, attrs []xmltree.Attr) error {
	if t.skip > 0 {
		t.skip++
		return nil
	}
	if t.sub != nil {
		t.subDepth++
		return t.sub.StartElement(name, attrs)
	}
	t.depth++
	switch t.depth {
	case 1:
		t.pipelined = attrTrue(findAttr(attrs, "pipelined"))
		if id := findAttr(attrs, "session"); id != "" {
			t.ts = t.e.targetSessionFor(id)
		}
		t.stream = findAttr(attrs, "stream")
		t.epoch = findAttr(attrs, "epoch")
		t.delta = attrTrue(findAttr(attrs, "delta"))
		if t.delta {
			if t.ts == nil {
				return &soap.Fault{Code: "soap:Client", String: "delta shipment requires a session"}
			}
			// Fail the delivery before any chunk flows: without a warm
			// base the delta cannot be applied, and the agency's fallback
			// is a full reship on a fresh session.
			if !t.e.deltaWarm(t.stream, t.epoch) {
				t.e.met.Counter("endpoint.delta.cold").Inc()
				return soap.ColdDeltaFault("stream " + t.stream + " epoch " + t.epoch)
			}
		}
	case 2:
		switch name {
		case "program":
			t.tb = &xmltree.TreeBuilder{}
			t.sub, t.subDepth, t.subProg = t.tb, 1, true
			return t.tb.StartElement(name, attrs)
		case "shipment":
			if t.dec == nil {
				return &soap.Fault{Code: "soap:Client", String: "shipment before program"}
			}
			t.sawShipment = true
			t.sub, t.subDepth, t.subProg = t.dec, 1, false
			return t.dec.StartElement(name, attrs)
		default:
			t.depth--
			t.skip = 1
		}
	}
	return nil
}

// Text implements xmltree.AttrHandler.
func (t *targetScan) Text(data string) error {
	if t.skip > 0 || t.sub == nil {
		return nil
	}
	return t.sub.Text(data)
}

// TextBytes implements xmltree.TextBytesHandler: shipment character data
// (dominant in an ExecuteTarget request — the base64 bodies of binary
// chunks flow through here) reaches the decoder without a string per
// event; the program tree builder takes the plain path.
func (t *targetScan) TextBytes(data []byte) error {
	if t.skip > 0 || t.sub == nil {
		return nil
	}
	if tb, ok := t.sub.(xmltree.TextBytesHandler); ok {
		return tb.TextBytes(data)
	}
	return t.sub.Text(string(data))
}

// EndElement implements xmltree.AttrHandler.
func (t *targetScan) EndElement(name string) error {
	switch {
	case t.skip > 0:
		t.skip--
	case t.sub != nil:
		t.subDepth--
		sub := t.sub
		if t.subDepth == 0 {
			t.sub = nil
			t.depth--
		}
		if err := sub.EndElement(name); err != nil {
			return err
		}
		if t.sub == nil && t.subProg {
			return t.programDone()
		}
	default:
		t.depth--
	}
	return nil
}

// programDone decodes the completed program subtree and prepares the
// shipment decoder with the program's fragment dictionary.
func (t *targetScan) programDone() error {
	g, a, err := wire.DecodeProgram(t.tb.Root(), t.e.backend.Layout().Schema)
	if err != nil {
		return err
	}
	t.g, t.a = g, a
	frags := map[string]*core.Fragment{}
	for _, op := range g.Ops {
		frags[op.Out.Name] = op.Out
		for _, p := range op.Parts {
			frags[p.Name] = p
		}
	}
	for _, ed := range g.Edges {
		frags[ed.Frag.Name] = ed.Frag
	}
	lookup := func(name string) *core.Fragment { return frags[name] }
	if t.ts != nil {
		// Session mode: decode into the session's accumulating map, with
		// the ledger guarding chunk admission and record dedup.
		t.dec = t.ts.decoder(t.e.backend.Layout().Schema, lookup)
	} else {
		t.dec = wire.NewShipmentDecoder(t.e.backend.Layout().Schema, lookup)
	}
	t.dec.Workers = t.e.codecWorkers
	t.dec.Met = t.e.met
	return nil
}

// respond runs the target slice once the request is fully consumed.
func (t *targetScan) respond(w io.Writer) error {
	if t.ts != nil {
		return t.respondSession(w)
	}
	if t.g == nil {
		return &soap.Fault{Code: "soap:Client", String: "missing program"}
	}
	if !t.sawShipment {
		return &soap.Fault{Code: "soap:Client", String: "missing shipment"}
	}
	inbound, err := t.dec.Result()
	if err != nil {
		return err
	}
	resp, err := t.e.runTarget(t.g, t.a, inbound, t.pipelined)
	if err != nil {
		return err
	}
	return xmltree.Write(w, resp, xmltree.WriteOptions{EmitAllIDs: true})
}

// runTarget executes the target slice over decoded inbound instances and
// reports the timing split the agency's cost model is validated against.
func (e *Endpoint) runTarget(g *core.Graph, a core.Assignment, inbound map[string]*core.Instance, pipelined bool) (*xmltree.Node, error) {
	exec := core.ExecuteSlice
	if pipelined {
		exec = core.ExecuteSlicePipelined
	}
	var writeTime time.Duration
	start := time.Now()
	_, _, err := exec(g, e.backend.Layout().Schema, a, core.LocTarget, core.SliceIO{
		Inbound: inbound,
		Write: func(in *core.Instance) error {
			ws := time.Now()
			err := e.backend.Write(in)
			writeTime += time.Since(ws)
			return err
		},
	})
	if err != nil {
		return nil, err
	}
	execTime := time.Since(start) - writeTime
	is := time.Now()
	if err := e.backend.BuildIndexes(); err != nil {
		return nil, err
	}
	indexTime := time.Since(is)
	e.met.Counter("endpoint.target.executes").Inc()
	e.met.Histogram("endpoint.target.millis").ObserveSince(start)
	if e.log.Enabled(obs.LevelDebug) {
		e.log.Log(obs.LevelDebug, "target slice executed",
			"endpoint", e.Name, "execMillis", formatMillis(execTime),
			"writeMillis", formatMillis(writeTime), "indexMillis", formatMillis(indexTime))
	}
	resp := &xmltree.Node{Name: "ExecuteTargetResponse"}
	resp.SetAttr("execMillis", formatMillis(execTime))
	resp.SetAttr("writeMillis", formatMillis(writeTime))
	resp.SetAttr("indexMillis", formatMillis(indexTime))
	return resp, nil
}
