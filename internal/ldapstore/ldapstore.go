// Package ldapstore implements the LDAP-directory substrate of the paper's
// motivating example (§1.1): a tree of entries, each with a distinguished
// name (DN, a Dewey identifier), an object class, and typed attributes.
// A Store adapter maps a fragmentation onto object classes so the directory
// can act as the target system T of a data exchange.
package ldapstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"xdx/internal/core"
	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// Class is an LDAP object class: a name plus the attributes an entry of
// this class must contain (the MUST CONTAIN clause of schema T in §1.1).
// DN and objectclass are implicit.
type Class struct {
	Name string
	Must []string
}

// Entry is one node of the directory tree.
type Entry struct {
	// DN is the entry's distinguished name, a Dewey identifier (§1.1
	// equates DN with the Dewey identifier of a node in the tree instance).
	DN string
	// Parent is the DN of the parent entry, "" for a root entry.
	Parent string
	// Class names the entry's object class.
	Class string
	// Attrs hold the entry's attribute values.
	Attrs map[string]string
}

// Directory is an in-memory LDAP-style tree.
type Directory struct {
	mu       sync.RWMutex
	classes  map[string]*Class
	entries  map[string]*Entry
	children map[string][]string
	roots    []string
}

// NewDirectory returns an empty directory with no classes defined.
func NewDirectory() *Directory {
	return &Directory{
		classes:  make(map[string]*Class),
		entries:  make(map[string]*Entry),
		children: make(map[string][]string),
	}
}

// DefineClass registers an object class.
func (d *Directory) DefineClass(name string, must ...string) *Class {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := &Class{Name: name, Must: append([]string(nil), must...)}
	d.classes[name] = c
	return c
}

// Classes lists the defined class names, sorted.
func (d *Directory) Classes() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.classes))
	for n := range d.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Add inserts an entry. Its class must exist, required attributes must be
// present, the DN must be new, and the parent (when set) must exist.
func (d *Directory) Add(e *Entry) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.classes[e.Class]
	if c == nil {
		return fmt.Errorf("ldapstore: unknown object class %q", e.Class)
	}
	for _, a := range c.Must {
		if _, ok := e.Attrs[a]; !ok {
			return fmt.Errorf("ldapstore: entry %q of class %q missing attribute %q", e.DN, e.Class, a)
		}
	}
	if e.DN == "" {
		return fmt.Errorf("ldapstore: entry with empty DN")
	}
	if _, dup := d.entries[e.DN]; dup {
		return fmt.Errorf("ldapstore: duplicate DN %q", e.DN)
	}
	if e.Parent != "" {
		if _, ok := d.entries[e.Parent]; !ok {
			return fmt.Errorf("ldapstore: entry %q references missing parent %q", e.DN, e.Parent)
		}
		d.children[e.Parent] = append(d.children[e.Parent], e.DN)
	} else {
		d.roots = append(d.roots, e.DN)
	}
	d.entries[e.DN] = e
	return nil
}

// Lookup returns the entry with the given DN, or nil.
func (d *Directory) Lookup(dn string) *Entry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.entries[dn]
}

// Children returns the DNs of the entry's children, in insertion order.
func (d *Directory) Children(dn string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.children[dn]...)
}

// Search returns all entries of the given class in the subtree rooted at
// base (""=whole directory), in depth-first order.
func (d *Directory) Search(base, class string) []*Entry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []*Entry
	var walk func(dn string)
	walk = func(dn string) {
		e := d.entries[dn]
		if e == nil {
			return
		}
		if class == "" || e.Class == class {
			out = append(out, e)
		}
		for _, c := range d.children[dn] {
			walk(c)
		}
	}
	if base == "" {
		for _, r := range d.roots {
			walk(r)
		}
	} else {
		walk(base)
	}
	return out
}

// Len returns the number of entries.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Store adapts a directory to the exchange architecture: each layout
// fragment becomes an object class (named after the fragment root with a
// "_T" suffix, as in §1.1's CUSTOMER_T), whose attributes are the
// fragment's leaf elements.
type Store struct {
	// Dir is the backing directory.
	Dir *Directory
	// Layout is the fragmentation the store consumes.
	Layout *core.Fragmentation

	classOf map[string]string // fragment name -> class name
}

// NewStore builds a directory with one class per layout fragment.
func NewStore(layout *core.Fragmentation) *Store {
	s := &Store{Dir: NewDirectory(), Layout: layout, classOf: make(map[string]string)}
	for _, f := range layout.Fragments {
		var must []string
		for _, e := range layout.Schema.Names() {
			if f.Elems[e] && layout.Schema.ByName(e).IsLeaf() {
				must = append(must, strings.ToUpper(e))
			}
		}
		class := strings.ToUpper(f.Root) + "_T"
		s.Dir.DefineClass(class, must...)
		s.classOf[f.Name] = class
	}
	return s
}

// Load writes a fragment instance into the directory (the LDAP-side Write
// of Definition 3.9). Parents must be loaded before children, which holds
// when fragments arrive in the layout's order.
func (s *Store) Load(in *core.Instance) error {
	f := s.layoutFragment(in.Frag)
	if f == nil {
		return fmt.Errorf("ldapstore: no layout fragment matching %q", in.Frag.Name)
	}
	class := s.classOf[f.Name]
	for _, rec := range in.Records {
		attrs := make(map[string]string)
		collectLeaves(rec, attrs)
		parent := rec.Parent
		if parent != "" && s.Dir.Lookup(parent) == nil {
			// The parent element instance may be interior to another
			// fragment's entry; climb to the nearest loaded ancestor DN.
			parent = s.nearestLoaded(parent)
		}
		if err := s.Dir.Add(&Entry{DN: rec.ID, Parent: parent, Class: class, Attrs: attrs}); err != nil {
			return err
		}
	}
	return nil
}

// nearestLoaded finds the closest ancestor DN present in the directory by
// trimming Dewey components.
func (s *Store) nearestLoaded(dn string) string {
	for {
		i := strings.LastIndexByte(dn, '.')
		if i < 0 {
			return ""
		}
		dn = dn[:i]
		if s.Dir.Lookup(dn) != nil {
			return dn
		}
	}
}

func (s *Store) layoutFragment(f *core.Fragment) *core.Fragment {
	for _, lf := range s.Layout.Fragments {
		if lf.SameElems(f) {
			return lf
		}
	}
	return nil
}

func collectLeaves(n *xmltree.Node, attrs map[string]string) {
	if len(n.Kids) == 0 {
		attrs[strings.ToUpper(n.Name)] = n.Text
	}
	for _, k := range n.Kids {
		collectLeaves(k, attrs)
	}
}

// ClassFor returns the object class backing the named layout fragment.
func (s *Store) ClassFor(fragName string) string { return s.classOf[fragName] }

// Scan materializes the instance of a layout fragment from the directory
// (the LDAP-side Scan of Definition 3.6), letting a directory also act as
// the source of an exchange. Each entry of the fragment's class becomes a
// record; the fragment's internal structure is rebuilt from the entry's
// attributes, with interior identifiers derived from the DN.
func (s *Store) Scan(fragName string) (*core.Instance, error) {
	f := s.Layout.ByName(fragName)
	if f == nil {
		return nil, fmt.Errorf("ldapstore: unknown fragment %q", fragName)
	}
	class := s.classOf[fragName]
	sch := s.Layout.Schema
	in := &core.Instance{Frag: f}
	for _, e := range s.Dir.Search("", class) {
		rec := buildFromEntry(sch, f, f.Root, e, e.DN, e.Parent)
		in.Records = append(in.Records, rec)
	}
	return in, nil
}

// buildFromEntry reconstructs the fragment subtree for one entry. The
// entry's own DN identifies the record root; interior elements get derived
// identifiers (dn/elem) since the directory flattens them into attributes.
func buildFromEntry(sch *schema.Schema, f *core.Fragment, elem string, e *Entry, id, parent string) *xmltree.Node {
	n := &xmltree.Node{Name: elem, ID: id, Parent: parent}
	if sch.ByName(elem).IsLeaf() {
		n.Text = e.Attrs[strings.ToUpper(elem)]
	}
	for _, c := range sch.AllChildren(elem) {
		if !f.Elems[c] {
			continue
		}
		n.AddKid(buildFromEntry(sch, f, c, e, id+"/"+c, id))
	}
	return n
}
