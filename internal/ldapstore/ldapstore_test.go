package ldapstore

import (
	"strings"
	"testing"

	"xdx/internal/core"
	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

func TestDirectoryBasics(t *testing.T) {
	d := NewDirectory()
	d.DefineClass("CUSTOMER_T", "C_NAME")
	if err := d.Add(&Entry{DN: "1", Class: "CUSTOMER_T", Attrs: map[string]string{"C_NAME": "Ann"}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(&Entry{DN: "1.1", Parent: "1", Class: "CUSTOMER_T", Attrs: map[string]string{"C_NAME": "Kid"}}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.Lookup("1").Attrs["C_NAME"] != "Ann" {
		t.Errorf("lookup wrong")
	}
	if got := d.Children("1"); len(got) != 1 || got[0] != "1.1" {
		t.Errorf("children = %v", got)
	}
	if got := d.Search("", "CUSTOMER_T"); len(got) != 2 {
		t.Errorf("search = %d entries", len(got))
	}
	if got := d.Search("1.1", ""); len(got) != 1 {
		t.Errorf("scoped search = %d entries", len(got))
	}
}

func TestDirectoryRejects(t *testing.T) {
	d := NewDirectory()
	d.DefineClass("C", "A")
	cases := []*Entry{
		{DN: "1", Class: "nope", Attrs: map[string]string{"A": "x"}},            // unknown class
		{DN: "1", Class: "C", Attrs: map[string]string{}},                       // missing must
		{DN: "", Class: "C", Attrs: map[string]string{"A": "x"}},                // empty DN
		{DN: "1", Class: "C", Parent: "zz", Attrs: map[string]string{"A": "x"}}, // missing parent
	}
	for i, e := range cases {
		if err := d.Add(e); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if err := d.Add(&Entry{DN: "1", Class: "C", Attrs: map[string]string{"A": "x"}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(&Entry{DN: "1", Class: "C", Attrs: map[string]string{"A": "y"}}); err == nil {
		t.Error("duplicate DN should fail")
	}
}

func telecomFixture(t *testing.T) (*core.Fragmentation, map[string]*core.Instance) {
	t.Helper()
	sch := schema.CustomerInfo()
	fr, err := core.FromPartition(sch, "T-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.Parse(strings.NewReader(
		`<Customer><CustName>Ann</CustName>` +
			`<Order><Service><ServiceName>local</ServiceName>` +
			`<Line><TelNo>555-1</TelNo><Switch><SwitchID>sw1</SwitchID></Switch>` +
			`<Feature><FeatureID>cid</FeatureID></Feature></Line>` +
			`</Service></Order></Customer>`))
	if err != nil {
		t.Fatal(err)
	}
	core.AssignIDs(doc)
	insts, err := core.FromDocument(fr, doc)
	if err != nil {
		t.Fatal(err)
	}
	return fr, insts
}

func TestStoreLoadTelecom(t *testing.T) {
	fr, insts := telecomFixture(t)
	st := NewStore(fr)
	// Classes named per §1.1.
	classes := st.Dir.Classes()
	want := []string{"CUSTOMER_T", "FEATURE_T", "LINE_T", "ORDER_T"}
	if strings.Join(classes, ",") != strings.Join(want, ",") {
		t.Errorf("classes = %v, want %v", classes, want)
	}
	for _, f := range fr.Fragments {
		if err := st.Load(insts[f.Name]); err != nil {
			t.Fatalf("load %q: %v", f.Name, err)
		}
	}
	if st.Dir.Len() != 4 {
		t.Errorf("directory has %d entries, want 4", st.Dir.Len())
	}
	custs := st.Dir.Search("", "CUSTOMER_T")
	if len(custs) != 1 || custs[0].Attrs["CUSTNAME"] != "Ann" {
		t.Errorf("customer entry wrong: %+v", custs)
	}
	// The line entry's parent climbs to the order entry (its direct
	// document parent Service is interior to the order fragment).
	lines := st.Dir.Search("", "LINE_T")
	if len(lines) != 1 {
		t.Fatalf("lines = %d", len(lines))
	}
	parent := st.Dir.Lookup(lines[0].Parent)
	if parent == nil || parent.Class != "ORDER_T" {
		t.Errorf("line parent = %+v", parent)
	}
	if lines[0].Attrs["TELNO"] != "555-1" || lines[0].Attrs["SWITCHID"] != "sw1" {
		t.Errorf("line attrs wrong: %v", lines[0].Attrs)
	}
}

func TestStoreLoadWrongFragment(t *testing.T) {
	fr, _ := telecomFixture(t)
	st := NewStore(fr)
	bad, _ := core.NewFragment(fr.Schema, "", []string{"Order"})
	if err := st.Load(&core.Instance{Frag: bad}); err == nil {
		t.Error("loading a non-layout fragment must fail")
	}
}

func TestStoreScanRoundTrip(t *testing.T) {
	fr, insts := telecomFixture(t)
	st := NewStore(fr)
	for _, f := range fr.Fragments {
		if err := st.Load(insts[f.Name]); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range fr.Fragments {
		in, err := st.Scan(f.Name)
		if err != nil {
			t.Fatalf("scan %q: %v", f.Name, err)
		}
		if in.Rows() != insts[f.Name].Rows() {
			t.Errorf("fragment %q: scanned %d rows, want %d", f.Name, in.Rows(), insts[f.Name].Rows())
		}
		// Leaf values survive the directory round trip.
		for i, rec := range in.Records {
			orig := insts[f.Name].Records[i]
			for _, leaf := range []string{"CustName", "ServiceName", "TelNo", "SwitchID", "FeatureID"} {
				if o := orig.Find(leaf); o != nil {
					g := rec.Find(leaf)
					if g == nil || g.Text != o.Text {
						t.Errorf("fragment %q record %d: leaf %q lost (%v)", f.Name, i, leaf, g)
					}
				}
			}
		}
		if err := core.ValidateInstance(fr.Schema, in); err != nil {
			t.Errorf("scanned instance invalid: %v", err)
		}
	}
	if _, err := st.Scan("nope"); err == nil {
		t.Error("unknown fragment must fail")
	}
}

func TestClassFor(t *testing.T) {
	fr, _ := telecomFixture(t)
	st := NewStore(fr)
	for _, f := range fr.Fragments {
		if st.ClassFor(f.Name) == "" {
			t.Errorf("no class for %q", f.Name)
		}
	}
}
