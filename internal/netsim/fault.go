package netsim

// Fault injection. The paper ran its exchange over a real wide-area link;
// real links drop connections, stall, and truncate streams. A FaultyLink
// decorates a Link with seeded, probabilistic faults so every reliability
// behaviour of the exchange path (internal/reliable) is deterministically
// testable: the same seed produces the same fault sequence. Faults surface
// in the three places a distributed exchange meets the network — an
// io.Writer wrapper (byte streams), an http.RoundTripper (client calls),
// and an http.Handler middleware (server side).

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrInjected marks any failure produced by a FaultyLink, so tests and the
// retry engine can tell injected faults from real bugs.
var ErrInjected = errors.New("netsim: injected fault")

// Faults configures the fault mix of a FaultyLink. All probabilities are
// per stream / per request, in [0,1].
type Faults struct {
	// Seed makes the fault sequence reproducible, like telgen/sim configs.
	Seed int64
	// DropProb fails a stream or request before the first byte moves
	// (connection refused / reset on connect).
	DropProb float64
	// TruncateProb cuts a stream after a random prefix (mid-stream reset).
	// On the RoundTripper it alternates between tearing the request body
	// and the response body.
	TruncateProb float64
	// StallProb pauses a stream once for Stall before continuing.
	StallProb float64
	// Stall is the injected pause duration (default 10ms when StallProb>0).
	Stall time.Duration
	// HTTP5xxProb makes the RoundTripper or middleware answer with a
	// synthesized 503 (plain-text body — deliberately not a SOAP fault).
	HTTP5xxProb float64
	// MaxTruncate bounds the random prefix length before a truncation cut
	// (default 4096 bytes).
	MaxTruncate int
}

// FaultCounts reports how many faults of each kind a FaultyLink injected.
type FaultCounts struct {
	Drops, Truncates, Stalls, HTTP5xx int64
}

// FaultyLink decorates a link with deterministic fault injection. All
// random decisions come from one seeded, mutex-guarded source, so a fixed
// call sequence yields a fixed fault sequence.
type FaultyLink struct {
	Link
	Faults

	// OnFault, when set, observes every injected fault by kind ("drop",
	// "http5xx", "truncate", "stall") — the hook observability layers bind
	// counters and logs to. It runs outside the link's lock and must be
	// safe for concurrent use. Set before the link carries traffic.
	OnFault func(kind string)

	mu     sync.Mutex
	rng    *rand.Rand
	counts FaultCounts
}

// NewFaultyLink seeds a faulty decorator over l.
func NewFaultyLink(l Link, f Faults) *FaultyLink {
	if f.Stall <= 0 {
		f.Stall = 10 * time.Millisecond
	}
	if f.MaxTruncate <= 0 {
		f.MaxTruncate = 4096
	}
	return &FaultyLink{Link: l, Faults: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// Counts returns the faults injected so far.
func (f *FaultyLink) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// roll draws the fault plan for one stream/request under the lock, keeping
// the sequence deterministic even when callers race.
type faultPlan struct {
	drop     bool
	http5xx  bool
	stall    bool
	truncate bool
	cutAfter int  // bytes before the truncation cut
	onReq    bool // RoundTripper: tear the request (vs the response)
}

func (f *FaultyLink) roll(withHTTP bool) faultPlan {
	f.mu.Lock()
	var p faultPlan
	switch {
	case f.rng.Float64() < f.DropProb:
		p.drop = true
		f.counts.Drops++
	case withHTTP && f.rng.Float64() < f.HTTP5xxProb:
		p.http5xx = true
		f.counts.HTTP5xx++
	case f.rng.Float64() < f.TruncateProb:
		p.truncate = true
		p.cutAfter = 1 + f.rng.Intn(f.MaxTruncate)
		p.onReq = f.rng.Intn(2) == 0
		f.counts.Truncates++
	}
	if f.rng.Float64() < f.StallProb {
		p.stall = true
		f.counts.Stalls++
	}
	f.mu.Unlock()
	if f.OnFault != nil {
		switch {
		case p.drop:
			f.OnFault("drop")
		case p.http5xx:
			f.OnFault("http5xx")
		case p.truncate:
			f.OnFault("truncate")
		}
		if p.stall {
			f.OnFault("stall")
		}
	}
	return p
}

// Writer wraps w with this link's faults (and its bandwidth throttle): the
// stream may refuse to start, stall once, or cut after a random prefix.
func (f *FaultyLink) Writer(w io.Writer) io.Writer {
	p := f.roll(false)
	return &faultyWriter{w: f.Throttle(w), plan: p, stall: f.Stall}
}

type faultyWriter struct {
	w       io.Writer
	plan    faultPlan
	stall   time.Duration
	written int
	stalled bool
}

// Write implements io.Writer.
func (fw *faultyWriter) Write(b []byte) (int, error) {
	if fw.plan.drop {
		return 0, fmt.Errorf("%w: connection dropped", ErrInjected)
	}
	if fw.plan.stall && !fw.stalled {
		fw.stalled = true
		time.Sleep(fw.stall)
	}
	if fw.plan.truncate {
		room := fw.plan.cutAfter - fw.written
		if room <= 0 {
			return 0, fmt.Errorf("%w: stream truncated after %d bytes", ErrInjected, fw.written)
		}
		if len(b) > room {
			n, _ := fw.w.Write(b[:room])
			fw.written += n
			return n, fmt.Errorf("%w: stream truncated after %d bytes", ErrInjected, fw.written)
		}
	}
	n, err := fw.w.Write(b)
	fw.written += n
	return n, err
}

// RoundTripper wraps base (nil = http.DefaultTransport) with this link's
// faults: requests may be dropped before dialing, answered with a
// synthesized 503, stalled, or torn mid-stream on either side.
func (f *FaultyLink) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultyTransport{f: f, base: base}
}

type faultyTransport struct {
	f    *FaultyLink
	base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *faultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.f.roll(true)
	if p.stall {
		time.Sleep(t.f.Stall)
	}
	switch {
	case p.drop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: connection dropped", ErrInjected)
	case p.http5xx:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader("injected outage\n")),
			ContentLength: -1,
			Request:       req,
		}, nil
	case p.truncate && p.onReq && req.Body != nil:
		req.Body = &truncatedReadCloser{rc: req.Body, remain: p.cutAfter}
		return t.base.RoundTrip(req)
	case p.truncate && !p.onReq:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedReadCloser{rc: resp.Body, remain: p.cutAfter}
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

// truncatedReadCloser yields remain bytes, then fails like a torn
// connection.
type truncatedReadCloser struct {
	rc     io.ReadCloser
	remain int
}

// Read implements io.Reader.
func (r *truncatedReadCloser) Read(b []byte) (int, error) {
	if r.remain <= 0 {
		return 0, fmt.Errorf("%w: stream truncated", ErrInjected)
	}
	if len(b) > r.remain {
		b = b[:r.remain]
	}
	n, err := r.rc.Read(b)
	r.remain -= n
	return n, err
}

// Close implements io.Closer.
func (r *truncatedReadCloser) Close() error { return r.rc.Close() }

// Middleware wraps an HTTP handler with server-side faults, for chaos
// runs of the daemons: responses may be aborted before the handler runs,
// answered 503, stalled, or cut after a random prefix.
func (f *FaultyLink) Middleware(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := f.roll(true)
		if p.stall {
			time.Sleep(f.Stall)
		}
		switch {
		case p.drop:
			// Kill the connection without a response, like a crashed peer.
			panic(http.ErrAbortHandler)
		case p.http5xx:
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
		case p.truncate:
			h.ServeHTTP(&truncatedResponseWriter{ResponseWriter: w, remain: p.cutAfter}, r)
		default:
			h.ServeHTTP(w, r)
		}
	})
}

// truncatedResponseWriter lets cutAfter bytes through, then aborts the
// connection mid-response.
type truncatedResponseWriter struct {
	http.ResponseWriter
	remain int
}

// Write implements io.Writer.
func (t *truncatedResponseWriter) Write(b []byte) (int, error) {
	if t.remain <= 0 {
		panic(http.ErrAbortHandler)
	}
	if len(b) > t.remain {
		t.ResponseWriter.Write(b[:t.remain])
		panic(http.ErrAbortHandler)
	}
	t.remain -= len(b)
	return t.ResponseWriter.Write(b)
}

// String renders the fault mix for logs.
func (f Faults) String() string {
	return fmt.Sprintf("faults(seed=%d drop=%.2f trunc=%.2f stall=%.2f 5xx=%.2f)",
		f.Seed, f.DropProb, f.TruncateProb, f.StallProb, f.HTTP5xxProb)
}
