package netsim

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFaultyWriterDeterministic(t *testing.T) {
	// Two links with the same seed must inject identical fault sequences.
	run := func(seed int64) []error {
		fl := NewFaultyLink(Loopback(), Faults{Seed: seed, DropProb: 0.3, TruncateProb: 0.4})
		var errs []error
		for i := 0; i < 32; i++ {
			var buf bytes.Buffer
			w := fl.Writer(&buf)
			_, err := w.Write(bytes.Repeat([]byte("x"), 8192))
			errs = append(errs, err)
		}
		return errs
	}
	a, b := run(7), run(7)
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) || (a[i] != nil && a[i].Error() != b[i].Error()) {
			t.Fatalf("stream %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	faults := 0
	for _, err := range a {
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected fault not marked: %v", err)
			}
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected at 30%/40% over 32 streams")
	}
}

func TestFaultyWriterTruncatesMidStream(t *testing.T) {
	// Force a truncation and check the cut leaves a strict prefix.
	fl := NewFaultyLink(Loopback(), Faults{Seed: 1, TruncateProb: 1, MaxTruncate: 100})
	var buf bytes.Buffer
	w := fl.Writer(&buf)
	payload := bytes.Repeat([]byte("abc"), 200)
	n, err := w.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected truncation, got %v", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("cut wrote %d of %d bytes; want a proper prefix", n, len(payload))
	}
	if !bytes.Equal(buf.Bytes(), payload[:n]) {
		t.Fatal("written bytes are not a prefix of the payload")
	}
	if c := fl.Counts(); c.Truncates != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestFaultyWriterDropFailsFirstWrite(t *testing.T) {
	fl := NewFaultyLink(Loopback(), Faults{Seed: 1, DropProb: 1})
	var buf bytes.Buffer
	w := fl.Writer(&buf)
	if _, err := w.Write([]byte("hello")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected drop, got %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("dropped stream still wrote %d bytes", buf.Len())
	}
}

func TestFaultyRoundTripper5xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	fl := NewFaultyLink(Loopback(), Faults{Seed: 3, HTTP5xxProb: 1})
	c := &http.Client{Transport: fl.RoundTripper(nil)}
	resp, err := c.Post(srv.URL, "text/plain", strings.NewReader("ping"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "injected") {
		t.Fatalf("body = %q", body)
	}
	if c := fl.Counts(); c.HTTP5xx != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestFaultyRoundTripperDrop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	fl := NewFaultyLink(Loopback(), Faults{Seed: 3, DropProb: 1})
	c := &http.Client{Transport: fl.RoundTripper(nil)}
	if _, err := c.Post(srv.URL, "text/plain", strings.NewReader("ping")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected drop, got %v", err)
	}
}

func TestFaultyRoundTripperTruncatesResponse(t *testing.T) {
	big := strings.Repeat("z", 1<<16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, big)
	}))
	defer srv.Close()
	// Seed chosen so the first roll truncates the response side; assert on
	// whichever side tore — both must surface an error to the caller.
	fl := NewFaultyLink(Loopback(), Faults{Seed: 5, TruncateProb: 1, MaxTruncate: 128})
	c := &http.Client{Transport: fl.RoundTripper(nil)}
	sawErr := false
	for i := 0; i < 8 && !sawErr; i++ {
		resp, err := c.Post(srv.URL, "text/plain", strings.NewReader(big))
		if err != nil {
			sawErr = true
			break
		}
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("truncating transport never surfaced an error")
	}
}

func TestFaultyMiddleware(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("y", 1<<15))
	})
	fl := NewFaultyLink(Loopback(), Faults{Seed: 11, HTTP5xxProb: 1})
	srv := httptest.NewServer(fl.Middleware(inner))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestFaultyMiddlewareDropKillsConnection(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	fl := NewFaultyLink(Loopback(), Faults{Seed: 11, DropProb: 1})
	srv := httptest.NewServer(fl.Middleware(inner))
	defer srv.Close()
	if _, err := http.Get(srv.URL); err == nil {
		t.Fatal("dropped connection produced a response")
	}
}
