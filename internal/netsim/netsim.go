// Package netsim models the wide-area link between the source and target
// systems. The paper's machines sat in different US states; its 25 MB
// publish&map transfer took 158.65 s, an effective ~160 KB/s. A Link
// reproduces that proportionality analytically (TransferTime) and, when
// real byte movement is wanted, as a bandwidth-throttled io.Writer.
package netsim

import (
	"fmt"
	"io"
	"time"
)

// Link describes a one-way connection.
type Link struct {
	// BytesPerSecond is the sustained bandwidth. Zero means unlimited.
	BytesPerSecond float64
	// Latency is the fixed per-transfer setup cost (TCP handshake, first
	// byte).
	Latency time.Duration
}

// PaperInternet returns a link calibrated to the paper's observed
// throughput (≈160 KB/s between the two sites).
func PaperInternet() Link {
	return Link{BytesPerSecond: 160_000, Latency: 80 * time.Millisecond}
}

// Loopback returns an effectively unconstrained link.
func Loopback() Link { return Link{} }

// TransferTime returns the modeled time to ship n bytes.
func (l Link) TransferTime(n int64) time.Duration {
	d := l.Latency
	if l.BytesPerSecond > 0 {
		d += time.Duration(float64(n) / l.BytesPerSecond * float64(time.Second))
	}
	return d
}

// Throttle wraps w so that writes proceed at the link's bandwidth,
// sleeping as needed. With an unlimited link it returns w unchanged.
func (l Link) Throttle(w io.Writer) io.Writer {
	if l.BytesPerSecond <= 0 {
		return w
	}
	return &throttledWriter{w: w, rate: l.BytesPerSecond}
}

type throttledWriter struct {
	w     io.Writer
	rate  float64
	debt  time.Duration
	last  time.Time
	begun bool
}

func (t *throttledWriter) Write(p []byte) (int, error) {
	now := time.Now()
	if !t.begun {
		t.begun = true
		t.last = now
	} else {
		elapsed := now.Sub(t.last)
		t.last = now
		t.debt -= elapsed
		if t.debt < 0 {
			t.debt = 0
		}
	}
	n, err := t.w.Write(p)
	t.debt += time.Duration(float64(n) / t.rate * float64(time.Second))
	// Sleep in chunks so huge writes do not overshoot badly.
	if t.debt > time.Millisecond {
		time.Sleep(t.debt)
		t.debt = 0
		t.last = time.Now()
	}
	return n, err
}

// Meter counts bytes flowing through a writer, for communication-cost
// accounting.
type Meter struct {
	w io.Writer
	n int64
}

// NewMeter wraps w. A nil w counts and discards — the pure-accounting mode
// the wire layer sizes shipments with, no buffer and no copies.
func NewMeter(w io.Writer) *Meter { return &Meter{w: w} }

// Write implements io.Writer.
func (m *Meter) Write(p []byte) (int, error) {
	if m.w == nil {
		m.n += int64(len(p))
		return len(p), nil
	}
	n, err := m.w.Write(p)
	m.n += int64(n)
	return n, err
}

// Bytes returns the number of bytes written so far.
func (m *Meter) Bytes() int64 { return m.n }

// Discard is an io.Writer that counts and drops everything, for measuring
// serialization sizes without buffering.
type Discard struct{ N int64 }

// Write implements io.Writer.
func (d *Discard) Write(p []byte) (int, error) {
	d.N += int64(len(p))
	return len(p), nil
}

// String renders the link for logs.
func (l Link) String() string {
	if l.BytesPerSecond <= 0 {
		return "link(unlimited)"
	}
	return fmt.Sprintf("link(%.0f B/s, %s latency)", l.BytesPerSecond, l.Latency)
}
