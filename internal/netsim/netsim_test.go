package netsim

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTransferTimeProportional(t *testing.T) {
	l := Link{BytesPerSecond: 1000}
	if got := l.TransferTime(2000); got != 2*time.Second {
		t.Errorf("TransferTime(2000) = %v", got)
	}
	l.Latency = time.Second
	if got := l.TransferTime(0); got != time.Second {
		t.Errorf("latency not applied: %v", got)
	}
	if got := Loopback().TransferTime(1 << 30); got != 0 {
		t.Errorf("loopback should be free: %v", got)
	}
}

func TestPaperInternetCalibration(t *testing.T) {
	// 25 MB over the paper link should take on the order of 156 s,
	// matching Table 3's publish&map row (158.65 s).
	got := PaperInternet().TransferTime(25_000_000).Seconds()
	if got < 140 || got > 175 {
		t.Errorf("25MB transfer modeled at %.1fs, want ~156s", got)
	}
}

func TestThrottleActuallyThrottles(t *testing.T) {
	var buf bytes.Buffer
	l := Link{BytesPerSecond: 100_000} // 100 KB/s
	w := l.Throttle(&buf)
	start := time.Now()
	payload := []byte(strings.Repeat("x", 10_000)) // 10 KB => ~100ms
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Errorf("throttled write of 10KB at 100KB/s took only %v", elapsed)
	}
	if buf.Len() != len(payload) {
		t.Errorf("payload truncated: %d", buf.Len())
	}
}

func TestThrottleUnlimitedPassesThrough(t *testing.T) {
	var buf bytes.Buffer
	w := Loopback().Throttle(&buf)
	if _, ok := w.(*bytes.Buffer); !ok {
		t.Errorf("unlimited link should return the writer unchanged")
	}
}

func TestMeter(t *testing.T) {
	var buf bytes.Buffer
	m := NewMeter(&buf)
	m.Write([]byte("hello"))
	m.Write([]byte(" world"))
	if m.Bytes() != 11 {
		t.Errorf("meter = %d", m.Bytes())
	}
	if buf.String() != "hello world" {
		t.Errorf("payload = %q", buf.String())
	}
}

func TestDiscard(t *testing.T) {
	var d Discard
	d.Write([]byte("abc"))
	d.Write([]byte("de"))
	if d.N != 5 {
		t.Errorf("discard counted %d", d.N)
	}
}

func TestLinkString(t *testing.T) {
	if got := Loopback().String(); got != "link(unlimited)" {
		t.Errorf("String = %q", got)
	}
	if got := PaperInternet().String(); !strings.Contains(got, "160000") {
		t.Errorf("String = %q", got)
	}
}

func TestTransferTimeTable(t *testing.T) {
	// Edge cases of the analytic link model: zero bandwidth means an
	// unlimited pipe (latency only), zero latency means pure serialization
	// time, and huge byte counts must not overflow the duration math.
	cases := []struct {
		name string
		link Link
		n    int64
		want time.Duration
	}{
		{"unlimited free", Link{}, 1 << 40, 0},
		{"unlimited latency only", Link{Latency: 30 * time.Millisecond}, 1 << 40, 30 * time.Millisecond},
		{"zero bytes pay latency", Link{BytesPerSecond: 1000, Latency: time.Second}, 0, time.Second},
		{"zero bytes zero latency", Link{BytesPerSecond: 1000}, 0, 0},
		{"one byte", Link{BytesPerSecond: 1000}, 1, time.Millisecond},
		{"proportional", Link{BytesPerSecond: 1000}, 2000, 2 * time.Second},
		{"latency adds", Link{BytesPerSecond: 1000, Latency: 500 * time.Millisecond}, 1000, 1500 * time.Millisecond},
		{"huge transfer", Link{BytesPerSecond: 1e9}, 1 << 40, time.Duration(float64(int64(1)<<40) / 1e9 * float64(time.Second))},
		{"negative bandwidth is unlimited", Link{BytesPerSecond: -5, Latency: time.Millisecond}, 1 << 20, time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.link.TransferTime(tc.n); got != tc.want {
				t.Errorf("TransferTime(%d) = %v, want %v", tc.n, got, tc.want)
			}
			if got := tc.link.TransferTime(tc.n); got < 0 {
				t.Errorf("TransferTime(%d) went negative: %v", tc.n, got)
			}
		})
	}
}

func TestThrottledWriterManySmallWrites(t *testing.T) {
	// The debt accounting must hold across many small writes: 20 x 500B at
	// 100KB/s is 10KB => ~100ms total, not per write.
	var buf bytes.Buffer
	l := Link{BytesPerSecond: 100_000}
	w := l.Throttle(&buf)
	start := time.Now()
	chunk := []byte(strings.Repeat("x", 500))
	for i := 0; i < 20; i++ {
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Errorf("20x500B at 100KB/s took only %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("throttle overslept: %v", elapsed)
	}
	if buf.Len() != 10_000 {
		t.Errorf("payload truncated: %d", buf.Len())
	}
}

func TestThrottledWriterZeroLengthWrite(t *testing.T) {
	var buf bytes.Buffer
	w := Link{BytesPerSecond: 10}.Throttle(&buf)
	start := time.Now()
	n, err := w.Write(nil)
	if n != 0 || err != nil {
		t.Fatalf("Write(nil) = %d, %v", n, err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("zero-length write slept")
	}
}

func TestThrottledWriterPropagatesError(t *testing.T) {
	// An error from the underlying writer must come back, with the byte
	// count the sink accepted.
	l := Link{BytesPerSecond: 1e12} // effectively no sleeping
	w := l.Throttle(&shortWriter{limit: 3})
	n, err := w.Write([]byte("hello"))
	if err == nil {
		t.Fatal("short write error swallowed")
	}
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
}

// shortWriter accepts limit bytes, then errors.
type shortWriter struct{ limit int }

func (s *shortWriter) Write(p []byte) (int, error) {
	if len(p) <= s.limit {
		s.limit -= len(p)
		return len(p), nil
	}
	n := s.limit
	s.limit = 0
	return n, errors.New("sink full")
}
