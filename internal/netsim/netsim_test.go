package netsim

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTransferTimeProportional(t *testing.T) {
	l := Link{BytesPerSecond: 1000}
	if got := l.TransferTime(2000); got != 2*time.Second {
		t.Errorf("TransferTime(2000) = %v", got)
	}
	l.Latency = time.Second
	if got := l.TransferTime(0); got != time.Second {
		t.Errorf("latency not applied: %v", got)
	}
	if got := Loopback().TransferTime(1 << 30); got != 0 {
		t.Errorf("loopback should be free: %v", got)
	}
}

func TestPaperInternetCalibration(t *testing.T) {
	// 25 MB over the paper link should take on the order of 156 s,
	// matching Table 3's publish&map row (158.65 s).
	got := PaperInternet().TransferTime(25_000_000).Seconds()
	if got < 140 || got > 175 {
		t.Errorf("25MB transfer modeled at %.1fs, want ~156s", got)
	}
}

func TestThrottleActuallyThrottles(t *testing.T) {
	var buf bytes.Buffer
	l := Link{BytesPerSecond: 100_000} // 100 KB/s
	w := l.Throttle(&buf)
	start := time.Now()
	payload := []byte(strings.Repeat("x", 10_000)) // 10 KB => ~100ms
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Errorf("throttled write of 10KB at 100KB/s took only %v", elapsed)
	}
	if buf.Len() != len(payload) {
		t.Errorf("payload truncated: %d", buf.Len())
	}
}

func TestThrottleUnlimitedPassesThrough(t *testing.T) {
	var buf bytes.Buffer
	w := Loopback().Throttle(&buf)
	if _, ok := w.(*bytes.Buffer); !ok {
		t.Errorf("unlimited link should return the writer unchanged")
	}
}

func TestMeter(t *testing.T) {
	var buf bytes.Buffer
	m := NewMeter(&buf)
	m.Write([]byte("hello"))
	m.Write([]byte(" world"))
	if m.Bytes() != 11 {
		t.Errorf("meter = %d", m.Bytes())
	}
	if buf.String() != "hello world" {
		t.Errorf("payload = %q", buf.String())
	}
}

func TestDiscard(t *testing.T) {
	var d Discard
	d.Write([]byte("abc"))
	d.Write([]byte("de"))
	if d.N != 5 {
		t.Errorf("discard counted %d", d.N)
	}
}

func TestLinkString(t *testing.T) {
	if got := Loopback().String(); got != "link(unlimited)" {
		t.Errorf("String = %q", got)
	}
	if got := PaperInternet().String(); !strings.Contains(got, "160000") {
		t.Errorf("String = %q", got)
	}
}
