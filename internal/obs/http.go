package obs

// The operational HTTP surface: a tiny mux serving /healthz (liveness),
// /metrics (the registry's JSON snapshot), and the runtime's pprof
// profiles under /debug/pprof/, mounted by the daemons behind
// -metrics-addr. Deliberately separate from the SOAP listener so scraping
// and profiling never compete with exchange traffic and so an operator
// can keep the ops port private — the profiles are only reachable when
// the flag is set.

import (
	"net/http"
	"net/http/pprof"
)

// Mux returns the ops handler for a registry: GET /healthz answers
// "ok\n", GET /metrics answers the JSON snapshot, and /debug/pprof/
// serves the live CPU/heap/goroutine profiles (how the codec pools were
// sized and the allocation teardown was measured). A nil registry serves
// an empty snapshot — /healthz and the profiles keep working.
func Mux(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
