package obs

// The operational HTTP surface: a tiny mux serving /healthz (liveness)
// and /metrics (the registry's JSON snapshot), mounted by the daemons
// behind -metrics-addr. Deliberately separate from the SOAP listener so
// scraping never competes with exchange traffic and so an operator can
// keep the ops port private.

import (
	"net/http"
)

// Mux returns the ops handler for a registry: GET /healthz answers
// "ok\n", GET /metrics answers the JSON snapshot. A nil registry serves
// an empty snapshot — /healthz keeps working.
func Mux(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	return mux
}
