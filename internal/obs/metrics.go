package obs

// The metric registry. Counters and gauges are single atomics; histograms
// are power-of-two bucketed under a small mutex. Metrics are minted by
// name on first touch (Registry.Counter et al. get-or-create), and every
// accessor — including the registry itself — is nil-safe, so instrumented
// code reads naturally at call sites and compiles down to a pointer test
// when observability is off.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increases the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter. Nil reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge. Nil-safe.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge. Nil reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations in [2^(i-1), 2^i), with bucket 0 taking everything
// below 1. 40 doublings span sub-unit to ~10^12 — microseconds to days
// when observing milliseconds.
const histBuckets = 40

// Histogram tracks a distribution in power-of-two buckets, plus exact
// count/sum/min/max. Good enough for latency and size distributions
// without quantile machinery.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value. Nil-safe; NaN is dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// ObserveSince records the elapsed time since start, in milliseconds —
// the unit every timing attribute of the wire protocol already uses.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
}

// Count reads the observation count. Nil reads zero.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshot renders the histogram as a JSON-friendly map. Buckets are
// keyed by their inclusive upper bound ("le_2", "le_4", …); empty buckets
// are omitted.
func (h *Histogram) snapshot() map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := map[string]any{"count": h.count, "sum": h.sum}
	if h.count > 0 {
		m["min"], m["max"], m["mean"] = h.min, h.max, h.sum/float64(h.count)
	}
	for i, n := range h.buckets {
		if n > 0 {
			m[fmt.Sprintf("le_%d", uint64(1)<<uint(i))] = n
		}
	}
	return m
}

// Registry names and holds a process's metrics. Metrics are minted on
// first touch and live for the registry's lifetime; a nil *Registry is
// the "metrics off" state — every method answers without minting.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() any),
	}
}

// Counter returns the named counter, minting it on first touch. Nil
// registries return a nil (still usable) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, minting it on first touch.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, minting it on first touch.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func publishes a computed value under name: fn is called at snapshot
// time, expvar-style. It is how live state (session counts, breaker
// states, fault tallies) appears on /metrics without push wiring. fn must
// be safe for concurrent use and return something json.Marshal accepts.
func (r *Registry) Func(name string, fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot renders every metric into a plain map. Func metrics are
// evaluated outside the registry lock, so they may themselves read
// instrumented components.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return map[string]any{}
	}
	r.mu.Lock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		out[n] = h.snapshot()
	}
	funcs := make(map[string]func() any, len(r.funcs))
	for n, fn := range r.funcs {
		funcs[n] = fn
	}
	r.mu.Unlock()
	for n, fn := range funcs {
		out[n] = fn()
	}
	return out
}

// WriteJSON writes the snapshot as stable (key-sorted) indented JSON —
// the /metrics wire format.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, k := range keys {
		v, err := json.Marshal(snap[k])
		if err != nil {
			// A Func returned something unmarshalable; surface it in
			// place rather than failing the whole page.
			v = []byte(fmt.Sprintf("%q", "unmarshalable: "+err.Error()))
		}
		sep := ","
		if i == len(keys)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "  %q: %s%s\n", k, v, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
