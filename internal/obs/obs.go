// Package obs is the observability substrate of the exchange stack. The
// paper's architecture stands on measured per-node computation and
// per-cross-edge communication costs (§4.1); the layers already produce
// those numbers (queryMillis/execMillis timings, wire and payload byte
// meters, retry and dedup counters, breaker states) but, before this
// package, none of it was observable at runtime. obs supplies the three
// pieces every layer threads through:
//
//   - a leveled key/value Logger (slog-compatible shape, no-op by
//     default) so daemons can narrate exchange lifecycles to stderr;
//   - an atomic counter/gauge/histogram Registry with an expvar-style
//     JSON snapshot, served at /metrics next to /healthz (Mux);
//   - per-exchange trace Spans (exchange → source attempt → chunk
//     delivery → probe → commit) with monotonic timings, exported on the
//     registry's Report.
//
// Everything is stdlib-only and nil-safe: a nil Logger, *Registry, or
// *Span is the documented "observability off" state, so instrumented code
// never branches and the default-off path stays off the profile.
package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. The numeric values match log/slog's, so a
// Logger can be adapted onto slog without translation.
type Level int

// Log levels.
const (
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
)

// String renders the level for log lines.
func (l Level) String() string {
	switch {
	case l < LevelInfo:
		return "DEBUG"
	case l < LevelWarn:
		return "INFO"
	case l < LevelError:
		return "WARN"
	default:
		return "ERROR"
	}
}

// Logger is the leveled key/value logging interface the exchange layers
// accept. Implementations must be safe for concurrent use. The shape
// mirrors log/slog's Enabled/Log pair so an slog handler adapts in a few
// lines; the repo's own TextLogger keeps the dependency surface stdlib.
type Logger interface {
	// Enabled reports whether a record at this level would be emitted,
	// so call sites can skip building expensive attributes.
	Enabled(Level) bool
	// Log emits one record: a message plus alternating key/value pairs.
	Log(level Level, msg string, kv ...any)
}

// Nop is the default logger: everything disabled, nothing retained.
var Nop Logger = nopLogger{}

type nopLogger struct{}

// Enabled implements Logger.
func (nopLogger) Enabled(Level) bool { return false }

// Log implements Logger.
func (nopLogger) Log(Level, string, ...any) {}

// OrNop resolves a possibly-nil logger to a usable one, so components can
// store the result once and log unconditionally.
func OrNop(l Logger) Logger {
	if l == nil {
		return Nop
	}
	return l
}

// TextLogger writes "time LEVEL msg k=v ..." lines to one writer under a
// mutex — the stderr logger the daemons wire behind -v.
type TextLogger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time
}

// NewTextLogger returns a TextLogger emitting records at min and above.
func NewTextLogger(w io.Writer, min Level) *TextLogger {
	return &TextLogger{w: w, min: min, now: time.Now}
}

// Enabled implements Logger.
func (t *TextLogger) Enabled(l Level) bool { return l >= t.min }

// Log implements Logger.
func (t *TextLogger) Log(level Level, msg string, kv ...any) {
	if level < t.min {
		return
	}
	var b strings.Builder
	b.WriteString(t.now().Format("15:04:05.000"))
	b.WriteByte(' ')
	b.WriteString(level.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
	}
	if len(kv)%2 == 1 {
		fmt.Fprintf(&b, " !MISSING=%v", kv[len(kv)-1])
	}
	b.WriteByte('\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	io.WriteString(t.w, b.String())
}
