package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// The "observability off" state: nil registry, logger, span. Every
	// call must answer without minting or panicking.
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(3)
	r.Func("f", func() any { return 1 })
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var s *Span
	s.Child("x").Set("k", "v")
	s.End()
	if s.Duration() != 0 || s.String() != "" || s.Kids() != nil {
		t.Error("nil span leaked state")
	}
	l := OrNop(nil)
	if l.Enabled(LevelError) {
		t.Error("nop logger enabled")
	}
	l.Log(LevelError, "dropped")
}

func TestRegistryCountersGaugesFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("soap.requests").Add(3)
	r.Counter("soap.requests").Inc()
	r.Gauge("sessions.live").Set(5)
	r.Gauge("sessions.live").Add(-2)
	r.Func("breakers", func() any { return map[string]string{"u": "closed"} })
	snap := r.Snapshot()
	if snap["soap.requests"] != int64(4) {
		t.Errorf("counter = %v", snap["soap.requests"])
	}
	if snap["sessions.live"] != int64(3) {
		t.Errorf("gauge = %v", snap["sessions.live"])
	}
	if m, ok := snap["breakers"].(map[string]string); !ok || m["u"] != "closed" {
		t.Errorf("func metric = %v", snap["breakers"])
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("millis")
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.Observe(v)
	}
	snap := h.snapshot()
	if snap["count"] != int64(4) || snap["min"] != 0.5 || snap["max"] != float64(100) {
		t.Errorf("histogram snapshot = %v", snap)
	}
	// 0.5 → le_1, 1 → le_2, 3 → le_4, 100 → le_128.
	for _, k := range []string{"le_1", "le_2", "le_4", "le_128"} {
		if snap[k] != int64(1) {
			t.Errorf("%s = %v, want 1", k, snap[k])
		}
	}
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 5 {
		t.Errorf("count after ObserveSince = %d", h.Count())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	// Minting and bumping the same names from many goroutines must be
	// race-free (run under -race) and lose no increments.
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h").Observe(float64(j))
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("exchange.total").Add(2)
	h := Mux(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	if snap["exchange.total"] != float64(2) {
		t.Errorf("exchange.total = %v", snap["exchange.total"])
	}
}

func TestTextLogger(t *testing.T) {
	var buf strings.Builder
	l := NewTextLogger(&buf, LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }
	if l.Enabled(LevelDebug) {
		t.Error("debug enabled at info level")
	}
	l.Log(LevelDebug, "hidden")
	l.Log(LevelInfo, "exchange done", "service", "Auction", "retries", 2)
	got := buf.String()
	want := "03:04:05.000 INFO exchange done service=Auction retries=2\n"
	if got != want {
		t.Errorf("log line = %q, want %q", got, want)
	}
}

func TestSpanTree(t *testing.T) {
	root := NewSpan("exchange")
	root.Set("service", "Auction")
	src := root.Child("source")
	a0 := src.Child("attempt")
	a0.Set("try", "0")
	a0.End()
	src.End()
	root.End()
	d := root.Duration()
	if d <= 0 {
		t.Errorf("root duration = %v", d)
	}
	root.End() // second End must not move the frozen duration
	if root.Duration() != d {
		t.Error("End not idempotent")
	}
	if root.Attr("service") != "Auction" || a0.Attr("try") != "0" {
		t.Error("attrs lost")
	}
	kids := root.Kids()
	if len(kids) != 1 || kids[0].Name != "source" || len(kids[0].Kids()) != 1 {
		t.Errorf("tree shape wrong: %s", root)
	}
	s := root.String()
	for _, want := range []string{"exchange ", "service=Auction", "\n  source ", "\n    attempt ", "try=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("exchange")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.Child("attempt")
				c.Set("k", "v")
				c.End()
			}
		}()
	}
	wg.Wait()
	if got := len(root.Kids()); got != 800 {
		t.Errorf("kids = %d, want 800", got)
	}
}
