package obs

// Trace spans. One exchange produces a small tree of timed steps
// (exchange → source attempt → chunk delivery → probe → commit); the
// registry attaches the root to its Report so callers see where an
// exchange's wall-clock went, including the attempts that failed. Spans
// time with the monotonic clock (time.Since) and are safe for concurrent
// child creation — retried attempts may overlap a probe.

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed step of a trace. A nil *Span is the "tracing off"
// state: every method answers and child spans stay nil.
type Span struct {
	// Name says what the step is ("exchange", "source.attempt", …).
	Name string

	mu    sync.Mutex
	start time.Time
	dur   time.Duration
	ended bool
	attrs []spanAttr
	kids  []*Span
}

type spanAttr struct{ k, v string }

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// Child starts a sub-span. Nil-safe: a nil parent yields a nil child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	k := NewSpan(name)
	s.mu.Lock()
	s.kids = append(s.kids, k)
	s.mu.Unlock()
	return k
}

// Set attaches a key/value attribute. Nil-safe.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].k == key {
			s.attrs[i].v = value
			return
		}
	}
	s.attrs = append(s.attrs, spanAttr{key, value})
}

// End freezes the span's duration; only the first End counts. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
}

// Duration reports the frozen duration, or the running elapsed time for a
// span that has not ended. Nil reads zero.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Attr reads an attribute back ("" when absent). Nil reads "".
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.k == key {
			return a.v
		}
	}
	return ""
}

// Kids returns a snapshot of the child spans. Nil reads nil.
func (s *Span) Kids() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.kids...)
}

// String renders the span tree, one indented line per span with duration
// and attributes — the log/debug export.
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	s.mu.Lock()
	name, dur, attrs, kids := s.Name, s.dur, s.attrs, append([]*Span(nil), s.kids...)
	if !s.ended {
		dur = time.Since(s.start)
	}
	s.mu.Unlock()
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %.3fms", name, float64(dur)/float64(time.Millisecond))
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%s", a.k, a.v)
	}
	b.WriteByte('\n')
	for _, k := range kids {
		k.render(b, depth+1)
	}
}
