// Package publish implements XML publishing from a relational store (§5.1):
// executing the fragment queries (scans plus combines, the optimized query
// set in the style of Fernandez/Morishima/Suciu), and tagging the resulting
// document tree into XML bytes.
package publish

import (
	"fmt"
	"io"
	"time"

	"xdx/internal/core"
	"xdx/internal/relstore"
	"xdx/internal/xmltree"
)

// Result reports the measurable steps of a publish run: query execution
// (Step 1 of publish&map) and tagging (Step 2).
type Result struct {
	// QueryTime covers scanning the fragments and combining them into the
	// full document tree.
	QueryTime time.Duration
	// TagTime covers serializing the tree to XML.
	TagTime time.Duration
	// Bytes is the size of the published document.
	Bytes int64
}

// Publish builds the full XML document from the store and writes it to w.
// The store's layout plays the role of the source fragmentation: the fewer
// fragments it has, the fewer combines publishing needs — which is exactly
// the asymmetry Table 2 measures between MF and LF sources.
func Publish(st *relstore.Store, w io.Writer) (Result, error) {
	var res Result
	start := time.Now()
	insts := make(map[string]*core.Instance, st.Layout.Len())
	for _, f := range st.Layout.Fragments {
		in, err := st.ScanFragment(f.Name)
		if err != nil {
			return res, fmt.Errorf("publish: %w", err)
		}
		insts[f.Name] = in
	}
	doc, err := core.Document(st.Layout, insts)
	if err != nil {
		return res, fmt.Errorf("publish: %w", err)
	}
	res.QueryTime = time.Since(start)

	start = time.Now()
	cw := &countingWriter{w: w}
	if err := xmltree.Write(cw, doc, xmltree.WriteOptions{}); err != nil {
		return res, fmt.Errorf("publish: tag: %w", err)
	}
	res.TagTime = time.Since(start)
	res.Bytes = cw.n
	return res, nil
}

// Tree builds the full document tree without serializing it, for callers
// that ship structured data instead of text.
func Tree(st *relstore.Store) (*xmltree.Node, time.Duration, error) {
	start := time.Now()
	insts := make(map[string]*core.Instance, st.Layout.Len())
	for _, f := range st.Layout.Fragments {
		in, err := st.ScanFragment(f.Name)
		if err != nil {
			return nil, 0, err
		}
		insts[f.Name] = in
	}
	doc, err := core.Document(st.Layout, insts)
	if err != nil {
		return nil, 0, err
	}
	return doc, time.Since(start), nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
