package publish

import (
	"bytes"
	"strings"
	"testing"

	"xdx/internal/core"
	"xdx/internal/relstore"
	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

func loadedStore(t *testing.T, layout *core.Fragmentation, doc *xmltree.Node) *relstore.Store {
	t.Helper()
	st, err := relstore.NewStore(layout)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPublishReproducesDocument(t *testing.T) {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 25_000, Seed: 8})
	for _, layout := range []*core.Fragmentation{core.MostFragmented(sch), core.LeastFragmented(sch)} {
		st := loadedStore(t, layout, doc)
		var buf bytes.Buffer
		res, err := Publish(st, &buf)
		if err != nil {
			t.Fatalf("%s: %v", layout.Name, err)
		}
		if res.Bytes != int64(buf.Len()) {
			t.Errorf("%s: reported %d bytes, wrote %d", layout.Name, res.Bytes, buf.Len())
		}
		if res.QueryTime <= 0 {
			t.Errorf("%s: no query time measured", layout.Name)
		}
		back, err := xmltree.Parse(&buf)
		if err != nil {
			t.Fatalf("%s: published document does not parse: %v", layout.Name, err)
		}
		if !xmltree.EqualShape(doc, back) {
			t.Errorf("%s: published document differs from the stored one", layout.Name)
		}
	}
}

func TestPublishFromMFCostsMoreThanLF(t *testing.T) {
	// Table 2's publish asymmetry: the MF source runs many more combines.
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 200_000, Seed: 2})
	mf := loadedStore(t, core.MostFragmented(sch), doc)
	lf := loadedStore(t, core.LeastFragmented(sch), doc)
	var sink bytes.Buffer
	mfRes, err := Publish(mf, &sink)
	if err != nil {
		t.Fatal(err)
	}
	sink.Reset()
	lfRes, err := Publish(lf, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if mfRes.QueryTime <= lfRes.QueryTime {
		t.Errorf("publish from MF (%v) should cost more than from LF (%v)", mfRes.QueryTime, lfRes.QueryTime)
	}
}

func TestTree(t *testing.T) {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 15_000, Seed: 4})
	st := loadedStore(t, core.LeastFragmented(sch), doc)
	tree, d, err := Tree(st)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("no duration measured")
	}
	if !xmltree.EqualShape(doc, tree) {
		t.Error("Tree differs from the stored document")
	}
}

func TestPublishEmptyStore(t *testing.T) {
	sch := xmark.Schema()
	st, err := relstore.NewStore(core.LeastFragmented(sch))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Publish(st, &buf); err == nil {
		t.Error("publishing an empty store should fail (no document root)")
	}
}

func TestPublishedDocumentHasNoIDs(t *testing.T) {
	// publish&map ships the plain tagged document; instance keys stay
	// internal.
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 10_000, Seed: 6})
	st := loadedStore(t, core.LeastFragmented(sch), doc)
	var buf bytes.Buffer
	if _, err := Publish(st, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `ID="`) {
		t.Error("published document must not carry instance keys")
	}
}
