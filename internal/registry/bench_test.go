package registry

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"xdx/internal/core"
	"xdx/internal/durable"
	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/reliable"
	"xdx/internal/relstore"
	"xdx/internal/xmark"
)

// benchExchange drives the full agency-mediated exchange (two live SOAP
// endpoints over httptest HTTP) once per iteration.
func benchExchange(b *testing.B, opts ExecOptions) {
	ag, plan, _, done := startExchange(b, AlgGreedy)
	defer done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ag.ExecuteOpts("CustomerInfoService", plan, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoapRoundTripBuffered materializes every envelope: response
// trees on the source hop, a fully built request tree on the target hop.
func BenchmarkSoapRoundTripBuffered(b *testing.B) {
	benchExchange(b, ExecOptions{Link: netsim.Loopback()})
}

// BenchmarkSoapRoundTripStreamed uses the zero-materialization wire path
// end to end: shipments stream onto responses and through io.Pipe request
// bodies without intermediate trees.
func BenchmarkSoapRoundTripStreamed(b *testing.B) {
	benchExchange(b, ExecOptions{Link: netsim.Loopback(), Streamed: true})
}

// BenchmarkReliableExchangeDurable measures the durability tax on a full
// reliable (session + chunked) exchange: the same clean-link run with no
// journal, then with the target journaling every chunk commit under each
// fsync policy. The spread between "none" and "always" is the fsync
// overhead row of EXPERIMENTS.md.
func BenchmarkReliableExchangeDurable(b *testing.B) {
	cfg := &reliable.Config{
		Seed:      1,
		ChunkSize: 8,
		Policy: reliable.Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    4 * time.Millisecond,
			Budget:      64,
		},
	}
	run := func(b *testing.B, journaled bool, pol durable.FsyncPolicy) {
		ag, plan, _, tgtEP, done := startAuctionExchange(b)
		defer done()
		if journaled {
			j, err := durable.OpenJournal(b.TempDir(), durable.Options{Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			tgtEP.SetJournal(j)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ag.ExecuteOpts("Auction", plan, ExecOptions{Link: netsim.Loopback(), Reliability: cfg}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("none", func(b *testing.B) { run(b, false, durable.FsyncOff) })
	b.Run("off", func(b *testing.B) { run(b, true, durable.FsyncOff) })
	b.Run("interval", func(b *testing.B) { run(b, true, durable.FsyncInterval) })
	b.Run("always", func(b *testing.B) { run(b, true, durable.FsyncAlways) })
	// batch is group commit: always-equivalent durability (every acked
	// chunk fsynced) with the syncs coalesced and overlapped with parse.
	b.Run("batch", func(b *testing.B) { run(b, true, durable.FsyncBatch) })
}

// BenchmarkDeltaExchange measures what churn rate costs on the wire: each
// iteration churns the source by the named fraction (equal parts deletes,
// updates, inserts), reloads it, and re-runs the exchange. The delta arms
// ship only the diff against the target's retained base; the full arm
// re-ships the whole snapshot at the same churn rate, so the
// wire-bytes/op spread between full/churn=1% and delta/churn=1% is the
// delta protocol's headline saving (recorded in BENCH_9.json).
func BenchmarkDeltaExchange(b *testing.B) {
	for _, tc := range []struct {
		name  string
		frac  float64
		delta bool
	}{
		{"full/churn=1pct", 0.01, false},
		{"delta/churn=1pct", 0.01, true},
		{"delta/churn=10pct", 0.10, true},
		{"delta/churn=50pct", 0.50, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sch := xmark.Schema()
			doc := xmark.Generate(xmark.Config{TargetBytes: 60_000, Seed: 42})
			sFr := core.MostFragmented(sch)
			tFr := core.LeastFragmented(sch)
			srcStore, err := relstore.NewStore(sFr)
			if err != nil {
				b.Fatal(err)
			}
			if err := srcStore.LoadDocument(doc.Clone()); err != nil {
				b.Fatal(err)
			}
			tgtStore, err := relstore.NewStore(tFr)
			if err != nil {
				b.Fatal(err)
			}
			srcEP := endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil)
			tgtEP := endpoint.New("T", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil)
			srcSrv := httptest.NewServer(srcEP.Handler())
			defer srcSrv.Close()
			tgtSrv := httptest.NewServer(tgtEP.Handler())
			defer tgtSrv.Close()
			ag := New()
			if err := ag.Register("Auction", RoleSource, wsdlFor(b, sch, sFr, srcSrv.URL), srcSrv.URL); err != nil {
				b.Fatal(err)
			}
			if err := ag.Register("Auction", RoleTarget, wsdlFor(b, sch, tFr, tgtSrv.URL), tgtSrv.URL); err != nil {
				b.Fatal(err)
			}
			plan, err := ag.Plan("Auction", PlanOptions{Algorithm: AlgGreedy})
			if err != nil {
				b.Fatal(err)
			}
			cfg := &reliable.Config{
				Seed:      1,
				ChunkSize: 8,
				Policy: reliable.Policy{
					MaxAttempts: 3,
					BaseDelay:   time.Millisecond,
					MaxDelay:    4 * time.Millisecond,
					Budget:      64,
				},
			}
			opts := ExecOptions{Link: netsim.Loopback(), Reliability: cfg, Delta: tc.delta}
			// Warm the base and the reconciliation index so every timed
			// iteration is a repeat exchange.
			if _, err := ag.ExecuteOpts("Auction", plan, opts); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			var wire int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				churnAuction(doc, rng, tc.frac, i+1)
				srcStore.Clear()
				if err := srcStore.LoadDocument(doc.Clone()); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep, err := ag.ExecuteOpts("Auction", plan, opts)
				if err != nil {
					b.Fatal(err)
				}
				if tc.delta && !rep.Delta {
					b.Fatal("warm repeat exchange did not run as a delta")
				}
				wire += rep.WireBytes
			}
			b.ReportMetric(float64(wire)/float64(b.N), "wire-bytes/op")
		})
	}
}

// BenchmarkDurableMultiSession drives n concurrent reliable exchanges —
// n distinct durable sessions — against one batch-journaled target. Each
// iteration completes all n; near-flat ns/op across the widths means
// near-linear session scaling, because the sessions share commit groups
// and amortize each fsync across every session that queued a frame while
// the previous sync was in flight.
func BenchmarkDurableMultiSession(b *testing.B) {
	cfg := &reliable.Config{
		Seed:      1,
		ChunkSize: 8,
		Policy: reliable.Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    4 * time.Millisecond,
			Budget:      64,
		},
	}
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			ag, plan, _, tgtEP, done := startAuctionExchange(b)
			defer done()
			j, err := durable.OpenJournal(b.TempDir(), durable.Options{Fsync: durable.FsyncBatch})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			tgtEP.SetJournal(j)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, n)
				for s := 0; s < n; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						_, errs[s] = ag.ExecuteOpts("Auction", plan, ExecOptions{Link: netsim.Loopback(), Reliability: cfg})
					}(s)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
