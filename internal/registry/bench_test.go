package registry

import (
	"testing"

	"xdx/internal/netsim"
)

// benchExchange drives the full agency-mediated exchange (two live SOAP
// endpoints over httptest HTTP) once per iteration.
func benchExchange(b *testing.B, opts ExecOptions) {
	ag, plan, _, done := startExchange(b, AlgGreedy)
	defer done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ag.ExecuteOpts("CustomerInfoService", plan, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoapRoundTripBuffered materializes every envelope: response
// trees on the source hop, a fully built request tree on the target hop.
func BenchmarkSoapRoundTripBuffered(b *testing.B) {
	benchExchange(b, ExecOptions{Link: netsim.Loopback()})
}

// BenchmarkSoapRoundTripStreamed uses the zero-materialization wire path
// end to end: shipments stream onto responses and through io.Pipe request
// bodies without intermediate trees.
func BenchmarkSoapRoundTripStreamed(b *testing.B) {
	benchExchange(b, ExecOptions{Link: netsim.Loopback(), Streamed: true})
}
