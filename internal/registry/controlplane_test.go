package registry

// Control-plane coverage: the plan-derivation cache (hit path skips the
// endpoint probes, re-registration invalidates, cached plans execute
// identically to fresh ones), the admission-controlled exchange scheduler
// (FIFO, queue-full and per-tenant shedding), the shed fault's isolation
// between tenants over live SOAP, and the paginated service listing.

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdx/internal/core"
	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/soap"
	"xdx/internal/xmltree"
)

// startTenant registers one service's relational source/target pair on ag.
// Every endpoint request sleeps delay first (so concurrency tests have
// waits to overlap) and bumps reqs (so probe-count tests can see traffic).
func startTenant(t testing.TB, ag *Agency, service string, sch *schema.Schema, srcFr, tgtFr *core.Fragmentation, delay time.Duration, reqs *atomic.Int64) (*relstore.Store, func()) {
	t.Helper()
	srcStore, err := relstore.NewStore(srcFr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcStore.LoadDocument(customerDoc(t)); err != nil {
		t.Fatal(err)
	}
	tgtStore, err := relstore.NewStore(tgtFr)
	if err != nil {
		t.Fatal(err)
	}
	wrap := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if delay > 0 {
				time.Sleep(delay)
			}
			if reqs != nil {
				reqs.Add(1)
			}
			h.ServeHTTP(w, r)
		})
	}
	srcSrv := httptest.NewServer(wrap(endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil).Handler()))
	tgtSrv := httptest.NewServer(wrap(endpoint.New("T", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil).Handler()))
	if err := ag.Register(service, RoleSource, wsdlFor(t, sch, srcFr, srcSrv.URL), srcSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register(service, RoleTarget, wsdlFor(t, sch, tgtFr, tgtSrv.URL), tgtSrv.URL); err != nil {
		t.Fatal(err)
	}
	return tgtStore, func() { srcSrv.Close(); tgtSrv.Close() }
}

// A second Plan over an unchanged pair must come from the cache: no
// endpoint traffic, one hit on the counters, the identical template.
func TestPlanCacheHitSkipsProbes(t *testing.T) {
	sch := schema.CustomerInfo()
	ag := New()
	var reqs atomic.Int64
	_, stop := startTenant(t, ag, "svc", sch, sFragmentation(t, sch), tFragmentation(t, sch), 0, &reqs)
	defer stop()

	p1, err := ag.Plan("svc", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probed := reqs.Load()
	if probed == 0 {
		t.Fatal("first Plan never touched the endpoints")
	}
	p2, err := ag.Plan("svc", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Error("second Plan derived a new template instead of serving the cache")
	}
	if got := reqs.Load(); got != probed {
		t.Errorf("cached Plan still probed the endpoints (%d -> %d requests)", probed, got)
	}
	hits, misses, _, size := ag.PlanCacheStats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Errorf("stats = %d hits / %d misses / size %d, want 1/1/1", hits, misses, size)
	}
}

// Distinct plan options are distinct cache keys, not aliases.
func TestPlanCacheKeyedOnOptions(t *testing.T) {
	sch := schema.CustomerInfo()
	ag := New()
	_, stop := startTenant(t, ag, "svc", sch, sFragmentation(t, sch), tFragmentation(t, sch), 0, nil)
	defer stop()

	pg, err := ag.Plan("svc", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}
	po, err := ag.Plan("svc", PlanOptions{Algorithm: AlgOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if pg == po {
		t.Error("greedy and optimal plans aliased one cache entry")
	}
	if _, misses, _, size := ag.PlanCacheStats(); misses != 2 || size != 2 {
		t.Errorf("misses=%d size=%d, want 2 and 2", misses, size)
	}
}

// Re-registering a party with a different fragmentation must evict the
// service's cached plans, and the next Plan must reflect the new layout.
func TestPlanCacheInvalidatedByReRegister(t *testing.T) {
	sch := schema.CustomerInfo()
	ag := New()
	sFr := sFragmentation(t, sch)
	_, stop := startTenant(t, ag, "svc", sch, sFr, tFragmentation(t, sch), 0, nil)
	defer stop()

	p1, err := ag.Plan("svc", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oldFrags := len(p1.Mapping.Source.Fragments)

	// Re-register the source under a coarser layout at the same URL.
	trivial := core.Trivial(sch)
	src := ag.Party("svc", RoleSource)
	if err := ag.Register("svc", RoleSource, wsdlFor(t, sch, trivial, src.URL), src.URL); err != nil {
		t.Fatal(err)
	}
	if _, _, evictions, size := ag.PlanCacheStats(); evictions != 1 || size != 0 {
		t.Fatalf("evictions=%d size=%d after re-register, want 1 and 0", evictions, size)
	}

	p2, err := ag.Plan("svc", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatal("Plan after re-registration served the stale template")
	}
	if got := len(p2.Mapping.Source.Fragments); got == oldFrags || got != 1 {
		t.Errorf("new plan sees %d source fragments, want 1 (trivial layout), old was %d", got, oldFrags)
	}
	if _, misses, _, _ := ag.PlanCacheStats(); misses != 2 {
		t.Errorf("misses=%d, want 2 (one per derivation)", misses)
	}

	// Deregistering drops the fresh entry too.
	ag.Deregister("svc", "")
	if _, _, evictions, size := ag.PlanCacheStats(); evictions != 2 || size != 0 {
		t.Errorf("evictions=%d size=%d after deregister, want 2 and 0", evictions, size)
	}
}

// Property check over a seeded family of source fragmentations: a plan
// served from the cache must move the document exactly like the freshly
// derived plan — same reassembled target tree.
func TestCachedPlanMatchesFresh(t *testing.T) {
	sch := schema.CustomerInfo()
	base := [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName"},
		{"Line", "TelNo", "Feature", "FeatureID"},
		{"Switch", "SwitchID"},
	}
	variants := [][][]string{base}
	// Seeded random merges of the base partition; invalid merges are
	// skipped, so the family stays inside FromPartition's rules.
	rng := rand.New(rand.NewSource(41))
	for tries := 0; tries < 12 && len(variants) < 4; tries++ {
		i, j := rng.Intn(len(base)), rng.Intn(len(base))
		if i == j {
			continue
		}
		var merged [][]string
		for k, g := range base {
			switch k {
			case i:
				merged = append(merged, append(append([]string{}, base[i]...), base[j]...))
			case j:
			default:
				merged = append(merged, g)
			}
		}
		if _, err := core.FromPartition(sch, "merged", merged); err == nil {
			variants = append(variants, merged)
		}
	}
	if len(variants) < 2 {
		t.Fatal("seeded merge produced no valid variant")
	}

	want := customerDoc(t)
	for vi, part := range variants {
		srcFr, err := core.FromPartition(sch, "S-variant", part)
		if err != nil {
			t.Fatal(err)
		}
		ag := New()
		tgtStore, stop := startTenant(t, ag, "svc", sch, srcFr, tFragmentation(t, sch), 0, nil)

		run := func(p *Plan) *xmltree.Node {
			t.Helper()
			tgtStore.Clear()
			if _, err := ag.Execute("svc", p, netsim.Loopback()); err != nil {
				t.Fatalf("variant %d: %v", vi, err)
			}
			insts := map[string]*core.Instance{}
			for _, f := range tgtStore.Layout.Fragments {
				in, err := tgtStore.ScanFragment(f.Name)
				if err != nil {
					t.Fatal(err)
				}
				insts[f.Name] = in
			}
			back, err := core.Document(tgtStore.Layout, insts)
			if err != nil {
				t.Fatalf("variant %d: %v", vi, err)
			}
			return back
		}

		ag.SetPlanCache(false)
		fresh, err := ag.Plan("svc", PlanOptions{})
		if err != nil {
			t.Fatalf("variant %d: %v", vi, err)
		}
		freshDoc := run(fresh)

		ag.SetPlanCache(true)
		if _, err := ag.Plan("svc", PlanOptions{}); err != nil {
			t.Fatalf("variant %d: %v", vi, err)
		}
		cached, err := ag.Plan("svc", PlanOptions{})
		if err != nil {
			t.Fatalf("variant %d: %v", vi, err)
		}
		cachedDoc := run(cached)

		if !xmltree.EqualShape(want, freshDoc) {
			t.Errorf("variant %d: fresh plan corrupted the document", vi)
		}
		if !xmltree.EqualShape(freshDoc, cachedDoc) {
			t.Errorf("variant %d: cached plan's output differs from the fresh plan's", vi)
		}
		stop()
	}
}

// With one worker, queued jobs run in submission order.
func TestSchedulerFIFOOrder(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, QueueDepth: 8})
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Submit("t", func() error { close(started); <-gate; return nil })
	}()
	<-started // the lone worker is now held

	var mu sync.Mutex
	var order []int
	for i := 1; i <= 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit("t", func() error {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				return nil
			})
		}()
		time.Sleep(20 * time.Millisecond) // serialize enqueue order
	}
	close(gate)
	wg.Wait()
	for i, got := range order {
		if got != i+1 {
			t.Fatalf("execution order %v, want 1..4 FIFO", order)
		}
	}
}

// A full queue sheds immediately with the typed overload fault.
func TestSchedulerQueueFullSheds(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, QueueDepth: 1})
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.Submit("t", func() error { close(started); <-gate; return nil })
	}()
	<-started
	go func() {
		defer wg.Done()
		s.Submit("t", func() error { return nil }) // occupies the one queue slot
	}()
	time.Sleep(30 * time.Millisecond)

	err := s.Submit("t", func() error { return nil })
	if !soap.IsOverloaded(err) {
		t.Fatalf("queue-full Submit returned %v, want overloaded fault", err)
	}
	close(gate)
	wg.Wait()
	if accepted, completed, failed, shed := s.Stats(); accepted != 2 || completed != 2 || failed != 0 || shed != 1 {
		t.Errorf("stats = %d/%d/%d/%d, want accepted 2, completed 2, failed 0, shed 1",
			accepted, completed, failed, shed)
	}
}

// The in-flight budget sheds one tenant without touching another.
func TestSchedulerTenantInFlightBudget(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, QueueDepth: 8, TenantInFlight: 1})
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Submit("a", func() error { close(started); <-gate; return nil })
	}()
	<-started

	if err := s.Submit("a", func() error { return nil }); !soap.IsOverloaded(err) {
		t.Errorf("over-budget tenant a got %v, want overloaded fault", err)
	}
	if err := s.Submit("b", func() error { return nil }); err != nil {
		t.Errorf("tenant b was rejected alongside a: %v", err)
	}
	close(gate)
	wg.Wait()

	// The budget frees with the slot: tenant a admits again.
	if err := s.Submit("a", func() error { return nil }); err != nil {
		t.Errorf("tenant a still over budget after completion: %v", err)
	}
}

// The token bucket rate-limits a tenant and refills over time.
func TestSchedulerTenantRateBudget(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, TenantRate: 10, TenantBurst: 1})
	defer s.Close()
	if err := s.Submit("a", func() error { return nil }); err != nil {
		t.Fatalf("first submission spent the burst token and failed: %v", err)
	}
	if err := s.Submit("a", func() error { return nil }); !soap.IsOverloaded(err) {
		t.Fatalf("second immediate submission got %v, want overloaded fault", err)
	}
	time.Sleep(150 * time.Millisecond) // 10/s refills 1.5 tokens
	if err := s.Submit("a", func() error { return nil }); err != nil {
		t.Errorf("submission after refill window failed: %v", err)
	}
}

func TestSchedulerSubmitAfterClose(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	s.Close()
	if err := s.Submit("t", func() error { return nil }); err != ErrSchedulerClosed {
		t.Fatalf("Submit after Close = %v, want ErrSchedulerClosed", err)
	}
	s.Close() // idempotent
}

// Over-driving one tenant through the live SOAP service sheds that tenant
// with soap.CodeOverloaded while the other tenant's exchanges all land.
func TestExchangeShedIsolatesTenants(t *testing.T) {
	sch := schema.CustomerInfo()
	ag := New()
	sFr, tFr := sFragmentation(t, sch), tFragmentation(t, sch)
	_, stopA := startTenant(t, ag, "svc-a", sch, sFr, tFr, 25*time.Millisecond, nil)
	defer stopA()
	_, stopB := startTenant(t, ag, "svc-b", sch, sFr, tFr, 25*time.Millisecond, nil)
	defer stopB()

	sched := NewScheduler(SchedulerConfig{Workers: 4, QueueDepth: 16, TenantInFlight: 1})
	defer sched.Close()
	svc := NewService(ag, netsim.Loopback())
	svc.Sched = sched
	agSrv := httptest.NewServer(svc.Handler())
	defer agSrv.Close()

	exchange := func(service string) error {
		req := &xmltree.Node{Name: "Exchange"}
		req.SetAttr("service", service)
		client := &soap.Client{URL: agSrv.URL}
		_, err := client.Call("Exchange", req)
		return err
	}

	const burst = 6
	var aOK, aShed, aOther atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			switch err := exchange("svc-a"); {
			case err == nil:
				aOK.Add(1)
			case soap.IsOverloaded(err):
				aShed.Add(1)
			default:
				aOther.Add(1)
			}
		}()
	}
	errs := make(chan error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 3; i++ {
			errs <- exchange("svc-b")
		}
	}()
	close(start)
	wg.Wait()
	close(errs)

	for err := range errs {
		if err != nil {
			t.Errorf("tenant b exchange failed while a was over-driven: %v", err)
		}
	}
	if aOther.Load() != 0 {
		t.Errorf("%d tenant-a exchanges failed with a non-overload error", aOther.Load())
	}
	if aOK.Load() < 1 || aShed.Load() < 1 {
		t.Errorf("tenant a: %d ok, %d shed — over-driving one tenant should both serve and shed",
			aOK.Load(), aShed.Load())
	}
	if _, _, _, shed := sched.Stats(); shed != aShed.Load() {
		t.Errorf("scheduler counted %d shed, clients saw %d", shed, aShed.Load())
	}
}

// ServicesPage walks the sorted name space in keyset pages.
func TestServicesPage(t *testing.T) {
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	ag := New()
	names := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for _, n := range names {
		if err := ag.Register(n, RoleSource, wsdlFor(t, sch, sFr, "http://src"), "http://src"); err != nil {
			t.Fatal(err)
		}
	}

	page, next := ag.ServicesPage("", 2)
	if len(page) != 2 || page[0] != "alpha" || page[1] != "bravo" || next != "bravo" {
		t.Fatalf("first page = %v next %q", page, next)
	}
	page, next = ag.ServicesPage("bravo", 2)
	if len(page) != 2 || page[0] != "charlie" || next != "delta" {
		t.Fatalf("second page = %v next %q", page, next)
	}
	page, next = ag.ServicesPage("delta", 2)
	if len(page) != 1 || page[0] != "echo" || next != "" {
		t.Fatalf("last page = %v next %q, want single name and no cursor", page, next)
	}
	if page, _ := ag.ServicesPage("", 0); len(page) != 5 {
		t.Errorf("default page returned %d names, want all 5", len(page))
	}
}

// The List SOAP operation pages with cursor/pageSize and terminates.
func TestListPagination(t *testing.T) {
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	ag := New()
	all := []string{"s1", "s2", "s3", "s4", "s5"}
	for _, n := range all {
		if err := ag.Register(n, RoleSource, wsdlFor(t, sch, sFr, "http://src"), "http://src"); err != nil {
			t.Fatal(err)
		}
	}
	svc := NewService(ag, netsim.Loopback())

	var got []string
	cursor, pages := "", 0
	for {
		req := &xmltree.Node{Name: "List"}
		req.SetAttr("pageSize", "2")
		if cursor != "" {
			req.SetAttr("cursor", cursor)
		}
		resp, err := svc.list(req)
		if err != nil {
			t.Fatal(err)
		}
		count, _ := resp.Attr("count")
		if n, _ := strconv.Atoi(count); n != len(resp.Kids) {
			t.Errorf("count attr %q but %d services on the page", count, len(resp.Kids))
		}
		for _, kid := range resp.Kids {
			name, _ := kid.Attr("name")
			got = append(got, name)
			if len(kid.Kids) != 1 {
				t.Errorf("service %s lists %d parties, want 1", name, len(kid.Kids))
			}
			if role, _ := kid.Kids[0].Attr("role"); role != "source" {
				t.Errorf("service %s party role = %q", name, role)
			}
		}
		if pages++; pages > 10 {
			t.Fatal("pagination never terminated")
		}
		next, ok := resp.Attr("nextCursor")
		if !ok {
			break
		}
		cursor = next
	}
	sort.Strings(got)
	if pages != 3 || len(got) != len(all) {
		t.Errorf("walked %d pages collecting %v, want 3 pages of all 5 services", pages, got)
	}
	for i, n := range all {
		if got[i] != n {
			t.Errorf("collected %v, want %v", got, all)
			break
		}
	}

	if _, err := svc.list(func() *xmltree.Node {
		req := &xmltree.Node{Name: "List"}
		req.SetAttr("pageSize", "-3")
		return req
	}()); err == nil {
		t.Error("negative pageSize was accepted")
	}
}

// One service under concurrent re-registration, planning, and execution:
// the lock split and the cache's epoch guard must hold under -race, and
// every operation against a fully registered service must succeed.
func TestConcurrentRegisterPlanExecute(t *testing.T) {
	sch := schema.CustomerInfo()
	ag := New()
	sFr, tFr := sFragmentation(t, sch), tFragmentation(t, sch)
	_, stop := startTenant(t, ag, "svc", sch, sFr, tFr, 0, nil)
	defer stop()
	srcWSDL := wsdlFor(t, sch, sFr, ag.Party("svc", RoleSource).URL)
	srcURL := ag.Party("svc", RoleSource).URL

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if err := ag.Register("svc", RoleSource, srcWSDL, srcURL); err != nil {
					t.Errorf("Register: %v", err)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := ag.Plan("svc", PlanOptions{}); err != nil {
					t.Errorf("Plan: %v", err)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				p, err := ag.Plan("svc", PlanOptions{})
				if err != nil {
					t.Errorf("Plan: %v", err)
					continue
				}
				if _, err := ag.Execute("svc", p, netsim.Loopback()); err != nil {
					t.Errorf("Execute: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	// The plane settles consistent: a final plan+exchange works.
	p, err := ag.Plan("svc", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ag.Execute("svc", p, netsim.Loopback()); err != nil {
		t.Fatal(err)
	}
}
