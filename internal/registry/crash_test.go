package registry

// The process-kill arm of the fault matrix (ISSUE 8): a durable target
// endpoint dies mid-delivery — in-process via a connection-severing proxy,
// and for real via SIGKILL of a child xdxendpoint — restarts over the same
// WAL directory, and the reliable driver's existing SessionStatus probe +
// resume path completes the exchange with zero duplicate records and no
// re-shipped committed chunks.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"xdx/internal/core"
	"xdx/internal/durable"
	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/reliable"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

// tearReader severs a request body after budget bytes, the way a killed
// process tears an inbound stream: everything before the cut was really
// delivered, everything after never arrives.
type tearReader struct {
	r      io.Reader
	budget int64
	torn   bool
}

func (t *tearReader) Read(p []byte) (int, error) {
	if t.budget <= 0 {
		t.torn = true
		return 0, fmt.Errorf("injected process kill")
	}
	if int64(len(p)) > t.budget {
		p = p[:t.budget]
	}
	n, err := t.r.Read(p)
	t.budget -= int64(n)
	return n, err
}

// crashProxy fronts a durable endpoint and injects one process kill: once
// armed, the first request that streams past tearAfter body bytes is torn
// mid-read, its response is discarded, the connection is severed without
// a status line (http.ErrAbortHandler), and the backing endpoint is
// replaced via restart() — a SIGKILL plus restart, minus the process
// boundary.
type crashProxy struct {
	mu        sync.Mutex
	handler   http.Handler
	armed     bool
	crashed   bool
	tearAfter int64
	restart   func() http.Handler
}

func (p *crashProxy) arm(tearAfter int64, restart func() http.Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed, p.tearAfter, p.restart = true, tearAfter, restart
}

func (p *crashProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	h := p.handler
	fire := p.armed && !p.crashed
	tearAfter := p.tearAfter
	p.mu.Unlock()
	if !fire {
		h.ServeHTTP(w, r)
		return
	}
	tr := &tearReader{r: r.Body, budget: tearAfter}
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(tr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r2)
	if !tr.torn {
		// A small request (probe, WSDL fetch) finished under the budget;
		// relay its recorded response untouched.
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
		return
	}
	// The victim died mid-request: swap in the restarted endpoint, then
	// kill the connection with no response at all.
	p.mu.Lock()
	p.crashed = true
	p.handler = p.restart()
	p.mu.Unlock()
	panic(http.ErrAbortHandler)
}

// TestDurableEndpointRestartResumes is the in-process kill-restart e2e:
// a journaled target endpoint is killed mid-delivery (torn inbound stream,
// severed connection, all in-memory state discarded), rebuilt from its WAL
// directory over an empty store, and the reliable driver completes the
// exchange against the restarted endpoint — resumed from the journaled
// checkpoint, zero duplicate committed records, target contents
// byte-identical to an uninterrupted run. Runs once per durable fsync
// mode whose acks claim crash safety: the serial always path and the
// group-commit batch pipeline must satisfy the exact same matrix.
func TestDurableEndpointRestartResumes(t *testing.T) {
	for _, pol := range []durable.FsyncPolicy{durable.FsyncAlways, durable.FsyncBatch} {
		t.Run(pol.String(), func(t *testing.T) { testDurableEndpointRestartResumes(t, pol) })
	}
}

func testDurableEndpointRestartResumes(t *testing.T, pol durable.FsyncPolicy) {
	// Baseline: what the target must hold after an uninterrupted run.
	agA, planA, tgtA, _, doneA := startAuctionExchange(t)
	if _, err := agA.ExecuteOpts("Auction", planA, ExecOptions{Link: netsim.Loopback(), Streamed: true}); err != nil {
		t.Fatal(err)
	}
	want := assembleTarget(t, tgtA)
	doneA()

	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 60_000, Seed: 42})
	sFr := core.MostFragmented(sch)
	tFr := core.LeastFragmented(sch)
	srcStore, err := relstore.NewStore(sFr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcStore.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	srcEP := endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil)
	srcSrv := httptest.NewServer(srcEP.Handler())
	defer srcSrv.Close()

	// openTarget is "boot the endpoint process": fresh empty store (the
	// in-memory relstore died with the process), journal recovered from
	// the WAL directory.
	walDir := t.TempDir()
	openTarget := func() (*endpoint.Endpoint, *relstore.Store, *durable.Journal, int) {
		st, err := relstore.NewStore(tFr)
		if err != nil {
			t.Fatal(err)
		}
		j, err := durable.OpenJournal(walDir, durable.Options{Fsync: pol})
		if err != nil {
			t.Fatal(err)
		}
		ep := endpoint.New("T", &endpoint.RelBackend{Store: st, Speed: 1, CanCombine: true}, nil)
		restored := ep.SetJournal(j)
		return ep, st, j, restored
	}

	epA, _, jA, restored := openTarget()
	if restored != 0 {
		t.Fatalf("fresh WAL dir restored %d sessions", restored)
	}
	proxy := &crashProxy{handler: epA.Handler()}
	tgtSrv := httptest.NewServer(proxy)
	defer tgtSrv.Close()

	ag := New()
	if err := ag.Register("Auction", RoleSource, wsdlFor(t, sch, sFr, srcSrv.URL), srcSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("Auction", RoleTarget, wsdlFor(t, sch, tFr, tgtSrv.URL), tgtSrv.URL); err != nil {
		t.Fatal(err)
	}
	plan, err := ag.Plan("Auction", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}

	// Arm the kill: the delivery request dies after 20 KB of body — past
	// the program, mid-shipment, with a prefix of chunks journaled.
	var tgtStoreB *relstore.Store
	var recoveredNext int64
	var recoveredSessions int
	proxy.arm(20_000, func() http.Handler {
		jA.Close()
		epB, stB, jB, _ := openTarget()
		tgtStoreB = stB
		for _, js := range jB.Sessions() {
			recoveredSessions++
			recoveredNext = js.Next
		}
		return epB.Handler()
	})

	rep, err := ag.ExecuteOpts("Auction", plan, ExecOptions{
		Link:        netsim.Loopback(),
		Reliability: soakConfig(3),
	})
	if err != nil {
		t.Fatalf("exchange did not survive the endpoint kill: %v", err)
	}
	if recoveredSessions == 0 {
		t.Fatal("restart recovered no journaled session — the kill missed the delivery")
	}
	if recoveredNext < 1 {
		t.Fatalf("recovered checkpoint %d: no chunk was journaled before the kill", recoveredNext)
	}
	if rep.Resumes < 1 {
		t.Errorf("Resumes = %d, want >= 1 (delivery must resume from the recovered checkpoint)", rep.Resumes)
	}
	if rep.DedupedRecords != 0 {
		t.Errorf("DedupedRecords = %d, want 0 — resume re-shipped committed chunks", rep.DedupedRecords)
	}
	got := assembleTarget(t, tgtStoreB)
	if !xmltree.Equal(want, got) {
		t.Error("restarted target's contents differ from the uninterrupted run")
	}
}

// buildEndpointBinary compiles cmd/xdxendpoint once per test run.
func buildEndpointBinary(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "xdxendpoint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/xdxendpoint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/xdxendpoint: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves a free TCP port and releases it for the child to bind.
func freePort(t *testing.T) int {
	t.Helper()
	srv := httptest.NewServer(http.NotFoundHandler())
	port := srv.Listener.Addr().(*net.TCPAddr).Port
	srv.Close()
	return port
}

// waitHTTP polls url until it answers or the deadline passes.
func waitHTTP(t *testing.T, url string, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s not answering after %s", url, d)
}

var walAppendsRE = regexp.MustCompile(`"wal\.appends": (\d+)`)

// walAppends reads the wal.appends counter off a child's /metrics page.
func walAppends(metricsURL string) int64 {
	resp, err := http.Get(metricsURL)
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return -1
	}
	m := walAppendsRE.FindSubmatch(body)
	if m == nil {
		return -1
	}
	v, _ := strconv.ParseInt(string(m[1]), 10, 64)
	return v
}

// TestKillRestartChildEndpoint is the real-process arm: a child
// xdxendpoint serving the target is SIGKILLed mid-delivery (triggered by
// its own wal.appends metric), restarted against the same -wal-dir, and
// the exchange completes with a resume, no duplicates, and contents
// byte-identical to an uninterrupted in-process run. The shell twin of
// this test is scripts/crash_smoke.sh.
func TestKillRestartChildEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process e2e; skipped in -short")
	}
	bin := buildEndpointBinary(t)

	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 200_000, Seed: 42})
	sFr := core.MostFragmented(sch)
	tFr := core.LeastFragmented(sch)

	// Baseline: uninterrupted exchange into an in-process LF target.
	mkSource := func() *httptest.Server {
		st, err := relstore.NewStore(sFr)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.LoadDocument(doc.Clone()); err != nil {
			t.Fatal(err)
		}
		ep := endpoint.New("S", &endpoint.RelBackend{Store: st, Speed: 1, CanCombine: true}, nil)
		srv := httptest.NewServer(ep.Handler())
		t.Cleanup(srv.Close)
		return srv
	}
	baseTgt, err := relstore.NewStore(tFr)
	if err != nil {
		t.Fatal(err)
	}
	baseEP := endpoint.New("T0", &endpoint.RelBackend{Store: baseTgt, Speed: 1, CanCombine: true}, nil)
	baseSrv := httptest.NewServer(baseEP.Handler())
	defer baseSrv.Close()
	srcSrv := mkSource()
	agBase := New()
	if err := agBase.Register("Auction", RoleSource, wsdlFor(t, sch, sFr, srcSrv.URL), srcSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := agBase.Register("Auction", RoleTarget, wsdlFor(t, sch, tFr, baseSrv.URL), baseSrv.URL); err != nil {
		t.Fatal(err)
	}
	planBase, err := agBase.Plan("Auction", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agBase.ExecuteOpts("Auction", planBase, ExecOptions{Link: netsim.Loopback(), Streamed: true}); err != nil {
		t.Fatal(err)
	}
	// Read the baseline back out through the same LF->LF hop the child
	// will be read through, so both trees get identical wire treatment
	// (the shipment codec deliberately strips leaf IDs off big records).
	want := readBack(t, "base-back", sch, tFr, baseSrv.URL)

	// The durable child target.
	walDir := t.TempDir()
	soapPort, metricsPort := freePort(t), freePort(t)
	soapAddr := fmt.Sprintf("127.0.0.1:%d", soapPort)
	metricsAddr := fmt.Sprintf("127.0.0.1:%d", metricsPort)
	tgtURL := "http://" + soapAddr + "/soap"
	metricsURL := "http://" + metricsAddr + "/metrics"
	startChild := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-listen", soapAddr, "-layout", "LF", "-name", "T",
			"-wal-dir", walDir, "-fsync", "always", "-snapshot-every", "0",
			"-metrics-addr", metricsAddr)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitHTTP(t, "http://"+soapAddr+"/", 10*time.Second)
		return cmd
	}
	child := startChild()
	defer func() {
		if child.Process != nil {
			child.Process.Kill()
			child.Wait()
		}
	}()

	srcSrv2 := mkSource()
	ag := New()
	if err := ag.Register("Auction", RoleSource, wsdlFor(t, sch, sFr, srcSrv2.URL), srcSrv2.URL); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("Auction", RoleTarget, wsdlFor(t, sch, tFr, tgtURL), tgtURL); err != nil {
		t.Fatal(err)
	}
	plan, err := ag.Plan("Auction", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		rep *Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := ag.ExecuteOpts("Auction", plan, ExecOptions{
			Link: netsim.Loopback(),
			Reliability: &reliable.Config{
				Seed:      7,
				ChunkSize: 4,
				Policy: reliable.Policy{
					MaxAttempts: 12,
					BaseDelay:   20 * time.Millisecond,
					MaxDelay:    250 * time.Millisecond,
					Budget:      64,
				},
				Breaker: reliable.BreakerConfig{FailureThreshold: 50, Cooldown: 20 * time.Millisecond},
			},
		})
		done <- result{rep, err}
	}()

	// Kill once the child journaled a few chunk commits — mid-delivery by
	// construction (appends keep coming after the kill threshold).
	killed := false
	killDeadline := time.Now().Add(30 * time.Second)
	for !killed {
		select {
		case res := <-done:
			t.Fatalf("exchange finished before the kill (rep=%+v err=%v) — widen the kill window", res.rep, res.err)
		default:
		}
		if time.Now().After(killDeadline) {
			t.Fatal("child never journaled enough appends to trigger the kill")
		}
		if walAppends(metricsURL) >= 3 {
			if err := child.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			child.Wait()
			killed = true
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	child = startChild()

	var res result
	select {
	case res = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("exchange did not finish after the restart")
	}
	if res.err != nil {
		t.Fatalf("exchange did not survive SIGKILL+restart: %v", res.err)
	}
	if res.rep.Resumes < 1 {
		t.Errorf("Resumes = %d, want >= 1", res.rep.Resumes)
	}
	if res.rep.DedupedRecords != 0 {
		t.Errorf("DedupedRecords = %d, want 0", res.rep.DedupedRecords)
	}

	// Identical contents: flow the child's store back out into a fresh
	// in-process LF store and compare against the baseline read-back.
	got := readBack(t, "child-back", sch, tFr, tgtURL)
	if !xmltree.Equal(want, got) {
		t.Error("killed-and-restarted target's contents differ from the uninterrupted run")
	}
}

// readBack drains an LF endpoint at fromURL into a fresh in-process LF
// store via an LF->LF exchange and returns the assembled document.
func readBack(t *testing.T, svc string, sch *schema.Schema, tFr *core.Fragmentation, fromURL string) *xmltree.Node {
	t.Helper()
	st, err := relstore.NewStore(tFr)
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New("RB", &endpoint.RelBackend{Store: st, Speed: 1, CanCombine: true}, nil)
	srv := httptest.NewServer(ep.Handler())
	defer srv.Close()
	ag := New()
	if err := ag.Register(svc, RoleSource, wsdlFor(t, sch, tFr, fromURL), fromURL); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register(svc, RoleTarget, wsdlFor(t, sch, tFr, srv.URL), srv.URL); err != nil {
		t.Fatal(err)
	}
	plan, err := ag.Plan(svc, PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ag.ExecuteOpts(svc, plan, ExecOptions{Link: netsim.Loopback(), Streamed: true}); err != nil {
		t.Fatal(err)
	}
	return assembleTarget(t, st)
}
