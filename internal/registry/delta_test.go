package registry

// The delta-exchange property suite (ISSUE 10): repeat exchanges under
// seeded churn must ship only what changed, and the patched target must
// hold record-for-record what a full re-ship would have delivered —
// including when the target dies mid-delta and the agency falls back to a
// full re-ship against the restarted, base-less endpoint.

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"xdx/internal/core"
	"xdx/internal/durable"
	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/obs"
	"xdx/internal/relstore"
	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

// maxIntID returns the largest integer instance ID in the subtree, so
// churn can mint fresh IDs that never collide with live ones.
func maxIntID(n *xmltree.Node) int {
	m := 0
	var walk func(*xmltree.Node)
	walk = func(n *xmltree.Node) {
		if v, err := strconv.Atoi(n.ID); err == nil && v > m {
			m = v
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(n)
	return m
}

// cloneWithIDs deep-copies a subtree assigning fresh sequential IDs (and
// consistent Parent links), the way a real insert enters a store: new
// rows, new keys, existing rows untouched.
func cloneWithIDs(n *xmltree.Node, parent string, next *int) *xmltree.Node {
	*next++
	c := &xmltree.Node{Name: n.Name, Text: n.Text, ID: strconv.Itoa(*next), Parent: parent}
	for _, k := range n.Kids {
		c.AddKid(cloneWithIDs(k, c.ID, next))
	}
	return c
}

// churnAuction mutates an xmark auction document in place: of the item
// population, about frac/3 each are deleted, updated (idescription
// rewritten), and freshly inserted (cloned with new IDs) — at least one of
// each, so every round exercises records, updates, and tombstones. IDs of
// surviving nodes are never reassigned; stability of keys across rounds is
// what makes the reconciliation diff meaningful.
func churnAuction(doc *xmltree.Node, rng *rand.Rand, frac float64, round int) (dels, upds, adds int) {
	regions := doc.Find("regions")
	type slot struct{ region, item *xmltree.Node }
	var slots []slot
	for _, region := range regions.Kids {
		for _, it := range region.Kids {
			if it.Name == "item" {
				slots = append(slots, slot{region, it})
			}
		}
	}
	n := len(slots)
	per := int(frac * float64(n) / 3)
	if per < 1 {
		per = 1
	}
	if 3*per > n {
		per = n / 3
	}
	perm := rng.Perm(n)

	// Deletes: drop the first per items from their regions.
	doomed := map[*xmltree.Node]bool{}
	for _, i := range perm[:per] {
		doomed[slots[i].item] = true
	}
	for _, region := range regions.Kids {
		kept := region.Kids[:0]
		for _, k := range region.Kids {
			if !doomed[k] {
				kept = append(kept, k)
			}
		}
		region.Kids = kept
	}
	// Updates: rewrite the idescription text of the next per items (their
	// IDs stay put, so only the content hash moves).
	for _, i := range perm[per : 2*per] {
		it := slots[i].item
		if d := it.Find("idescription"); d != nil {
			d.Text = fmt.Sprintf("churned round %d item %s", round, it.ID)
		}
	}
	// Adds: clone the next per surviving items under fresh IDs.
	next := maxIntID(doc)
	for _, i := range perm[2*per : 3*per] {
		src := slots[i]
		fresh := cloneWithIDs(src.item, src.region.ID, &next)
		if d := fresh.Find("iname"); d != nil {
			d.Text = fmt.Sprintf("added round %d as %s", round, fresh.ID)
		}
		src.region.AddKid(fresh)
	}
	return per, per, per
}

// canonTree sorts every node's kids by integer instance ID (stable, so
// same-key siblings keep document order) and returns the tree. A delta
// patch appends changed records after the retained base while a full
// re-ship writes everything in shipment order; canonical order is what
// "record-for-record equal" compares.
func canonTree(n *xmltree.Node) *xmltree.Node {
	for _, k := range n.Kids {
		canonTree(k)
	}
	sort.SliceStable(n.Kids, func(i, j int) bool {
		a, _ := strconv.Atoi(n.Kids[i].ID)
		b, _ := strconv.Atoi(n.Kids[j].ID)
		return a < b
	})
	return n
}

// TestDeltaExchangeChurnProperty is the tentpole's property test: across
// seeded churn rounds, (previous snapshot + delta exchange) must equal
// (full snapshot) record-for-record. Two services share one churning
// source: "Churn" targets an endpoint that retains delta bases, "ChurnCtl"
// targets one with retention disabled, so the same ExecOptions produce a
// delta patch on one side and a cold full re-ship on the other — the
// control is the ground truth the patched target is held to, and its
// WireBytes are the full-ship cost the delta must undercut.
func TestDeltaExchangeChurnProperty(t *testing.T) {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 60_000, Seed: 42})
	sFr := core.MostFragmented(sch)
	tFr := core.LeastFragmented(sch)

	srcStore, err := relstore.NewStore(sFr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcStore.LoadDocument(doc.Clone()); err != nil {
		t.Fatal(err)
	}
	tgtD, err := relstore.NewStore(tFr)
	if err != nil {
		t.Fatal(err)
	}
	tgtC, err := relstore.NewStore(tFr)
	if err != nil {
		t.Fatal(err)
	}

	srcEP := endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil)
	epD := endpoint.New("TD", &endpoint.RelBackend{Store: tgtD, Speed: 1, CanCombine: true}, nil)
	epC := endpoint.New("TC", &endpoint.RelBackend{Store: tgtC, Speed: 1, CanCombine: true}, nil)
	epC.SetDeltaRetention(false)
	srcSrv := httptest.NewServer(srcEP.Handler())
	defer srcSrv.Close()
	srvD := httptest.NewServer(epD.Handler())
	defer srvD.Close()
	srvC := httptest.NewServer(epC.Handler())
	defer srvC.Close()

	ag := New()
	for _, reg := range []struct {
		svc, url string
		fr       *core.Fragmentation
		role     Role
	}{
		{"Churn", srcSrv.URL, sFr, RoleSource},
		{"Churn", srvD.URL, tFr, RoleTarget},
		{"ChurnCtl", srcSrv.URL, sFr, RoleSource},
		{"ChurnCtl", srvC.URL, tFr, RoleTarget},
	} {
		if err := ag.Register(reg.svc, reg.role, wsdlFor(t, sch, reg.fr, reg.url), reg.url); err != nil {
			t.Fatal(err)
		}
	}
	planD, err := ag.Plan("Churn", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}
	planC, err := ag.Plan("ChurnCtl", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}

	met := obs.NewRegistry()
	exec := func(svc string, plan *Plan, seed int64) *Report {
		t.Helper()
		rep, err := ag.ExecuteOpts(svc, plan, ExecOptions{
			Link:        netsim.Loopback(),
			Reliability: soakConfig(seed),
			Delta:       true,
			Metrics:     met,
		})
		if err != nil {
			t.Fatalf("%s exchange failed: %v", svc, err)
		}
		return rep
	}

	rng := rand.New(rand.NewSource(11))
	for round, frac := range []float64{0, 0.01, 0.10, 0.50} {
		var dels, upds, adds int
		if round > 0 {
			dels, upds, adds = churnAuction(doc, rng, frac, round)
			srcStore.Clear()
			if err := srcStore.LoadDocument(doc.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		repD := exec("Churn", planD, int64(round+1))
		repC := exec("ChurnCtl", planC, int64(round+100))

		if repC.Delta {
			t.Fatalf("round %d: control exchange ran in delta mode despite retention off", round)
		}
		if round == 0 {
			if repD.Delta {
				t.Fatalf("round 0: first exchange claimed delta mode with a cold index")
			}
		} else {
			if !repD.Delta {
				t.Fatalf("round %d (churn %.0f%%): warm repeat exchange did not run as a delta", round, frac*100)
			}
			if repD.DeltaRecords <= 0 {
				t.Errorf("round %d: delta shipped %d records, want > 0 (%d updates + %d adds churned)",
					round, repD.DeltaRecords, upds, adds)
			}
			if repD.TombstoneRecords < dels {
				t.Errorf("round %d: delta shipped %d tombstones, want >= %d deletions",
					round, repD.TombstoneRecords, dels)
			}
			if repD.WireBytes >= repC.WireBytes {
				t.Errorf("round %d (churn %.0f%%): delta wire bytes %d not below full re-ship %d",
					round, frac*100, repD.WireBytes, repC.WireBytes)
			}
			if frac <= 0.01 && repD.WireBytes*3 > repC.WireBytes {
				t.Errorf("round %d: 1%%-churn delta shipped %d wire bytes vs %d full — far too little savings",
					round, repD.WireBytes, repC.WireBytes)
			}
		}

		got := canonTree(assembleTarget(t, tgtD))
		want := canonTree(assembleTarget(t, tgtC))
		if !xmltree.Equal(want, got) {
			t.Fatalf("round %d (churn %.0f%%): delta-patched target differs from full re-ship", round, frac*100)
		}
	}
	if v := met.Counter("exchange.delta.exchanges").Value(); v < 3 {
		t.Errorf("exchange.delta.exchanges = %d, want >= 3 (one per warm churn round)", v)
	}
	if v := met.Counter("exchange.delta.cold").Value(); v < 1 {
		t.Errorf("exchange.delta.cold = %d, want >= 1 (round 0 starts cold)", v)
	}
	if v := met.Counter("exchange.delta.tombstones").Value(); v < 3 {
		t.Errorf("exchange.delta.tombstones = %d, want >= 3", v)
	}
}

// TestDeltaExchangeCrashRestartFallsBack is the mid-delta crash arm under
// group commit (-fsync=batch): the target dies while a 50%-churn delta is
// streaming in, restarts from its WAL directory with an empty store and no
// retained base, and the agency's retry must convert the ColdDelta fault
// into a full re-ship on a fresh session — ending with target contents
// identical to an uninterrupted full exchange of the churned document.
func TestDeltaExchangeCrashRestartFallsBack(t *testing.T) {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 60_000, Seed: 42})
	sFr := core.MostFragmented(sch)
	tFr := core.LeastFragmented(sch)

	srcStore, err := relstore.NewStore(sFr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcStore.LoadDocument(doc.Clone()); err != nil {
		t.Fatal(err)
	}
	srcEP := endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil)
	srcSrv := httptest.NewServer(srcEP.Handler())
	defer srcSrv.Close()

	walDir := t.TempDir()
	openTarget := func() (*endpoint.Endpoint, *relstore.Store, *durable.Journal) {
		st, err := relstore.NewStore(tFr)
		if err != nil {
			t.Fatal(err)
		}
		j, err := durable.OpenJournal(walDir, durable.Options{Fsync: durable.FsyncBatch})
		if err != nil {
			t.Fatal(err)
		}
		ep := endpoint.New("T", &endpoint.RelBackend{Store: st, Speed: 1, CanCombine: true}, nil)
		ep.SetJournal(j)
		return ep, st, j
	}
	epA, _, jA := openTarget()
	proxy := &crashProxy{handler: epA.Handler()}
	tgtSrv := httptest.NewServer(proxy)
	defer tgtSrv.Close()

	ag := New()
	if err := ag.Register("Churn", RoleSource, wsdlFor(t, sch, sFr, srcSrv.URL), srcSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("Churn", RoleTarget, wsdlFor(t, sch, tFr, tgtSrv.URL), tgtSrv.URL); err != nil {
		t.Fatal(err)
	}
	plan, err := ag.Plan("Churn", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}

	met := obs.NewRegistry()
	opts := func(seed int64) ExecOptions {
		return ExecOptions{Link: netsim.Loopback(), Reliability: soakConfig(seed), Delta: true, Metrics: met}
	}
	// Round 0: cold full ship warms the index and retains the base.
	rep0, err := ag.ExecuteOpts("Churn", plan, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Delta {
		t.Fatal("round 0 claimed delta mode with a cold index")
	}

	// Heavy churn, then arm the kill: the delta delivery (well past the
	// probe/status request sizes) tears mid-stream and the endpoint is
	// rebuilt over the same WAL with a fresh store and no delta bases.
	rng := rand.New(rand.NewSource(7))
	churnAuction(doc, rng, 0.5, 1)
	srcStore.Clear()
	if err := srcStore.LoadDocument(doc.Clone()); err != nil {
		t.Fatal(err)
	}
	var tgtB *relstore.Store
	proxy.arm(6_000, func() http.Handler {
		jA.Close()
		epB, stB, _ := openTarget()
		tgtB = stB
		return epB.Handler()
	})

	rep1, err := ag.ExecuteOpts("Churn", plan, opts(2))
	if err != nil {
		t.Fatalf("exchange did not survive the mid-delta kill: %v", err)
	}
	if tgtB == nil {
		t.Fatal("the kill never fired — the delta delivery stayed under the tear budget")
	}
	if rep1.Delta {
		t.Error("report still claims delta mode after the fallback full re-ship")
	}
	if rep1.DeltaRecords != 0 || rep1.TombstoneRecords != 0 {
		t.Errorf("fallback report kept delta counts: records=%d tombstones=%d", rep1.DeltaRecords, rep1.TombstoneRecords)
	}
	if v := met.Counter("exchange.delta.fallbacks").Value(); v < 1 {
		t.Errorf("exchange.delta.fallbacks = %d, want >= 1", v)
	}

	// Ground truth: an uninterrupted full exchange of the churned document
	// into a fresh target.
	ctlStore, err := relstore.NewStore(tFr)
	if err != nil {
		t.Fatal(err)
	}
	ctlEP := endpoint.New("C", &endpoint.RelBackend{Store: ctlStore, Speed: 1, CanCombine: true}, nil)
	ctlSrv := httptest.NewServer(ctlEP.Handler())
	defer ctlSrv.Close()
	if err := ag.Register("ChurnCtl", RoleSource, wsdlFor(t, sch, sFr, srcSrv.URL), srcSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("ChurnCtl", RoleTarget, wsdlFor(t, sch, tFr, ctlSrv.URL), ctlSrv.URL); err != nil {
		t.Fatal(err)
	}
	planCtl, err := ag.Plan("ChurnCtl", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ag.ExecuteOpts("ChurnCtl", planCtl, ExecOptions{Link: netsim.Loopback(), Reliability: soakConfig(9)}); err != nil {
		t.Fatal(err)
	}
	want := canonTree(assembleTarget(t, ctlStore))
	got := canonTree(assembleTarget(t, tgtB))
	if !xmltree.Equal(want, got) {
		t.Error("restarted target's contents differ from an uninterrupted full exchange")
	}
}

// TestPushdownFilterExchange drives the compiled-filter path end to end:
// a comparison filter ships only matching root records, a non-matching
// filter ships nothing, and a filter that fails schema checking fails at
// plan time, before any endpoint is probed with it.
func TestPushdownFilterExchange(t *testing.T) {
	ag, plan, tgtStore, done := startExchange(t, AlgGreedy)
	defer done()

	if _, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{
		Link: netsim.Loopback(), Filter: `CustName = "Nobody"`,
	}); err != nil {
		t.Fatal(err)
	}
	if tgtStore.Rows() != 0 {
		t.Errorf("non-matching pushdown filter delivered %d rows", tgtStore.Rows())
	}
	tgtStore.Clear()
	rep, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{
		Link: netsim.Loopback(), Filter: `CustName = "Ann"`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tgtStore.Rows() == 0 || rep.ShipBytes == 0 {
		t.Error("matching pushdown filter delivered nothing")
	}

	if _, err := ag.Plan("CustomerInfoService", PlanOptions{Algorithm: AlgGreedy, Filter: "NoSuchElem = 3"}); err == nil {
		t.Error("plan accepted a filter naming an element outside the schema")
	}
	// ServiceName is in the schema but not in the source's root fragment:
	// such a filter can never match a root record, so it would silently
	// ship nothing — Plan must refuse it loudly.
	if _, err := ag.Plan("CustomerInfoService", PlanOptions{Algorithm: AlgGreedy, Filter: "ServiceName = 'x'"}); err == nil {
		t.Error("plan accepted a filter outside the source root fragment")
	}
}

// TestPlanKeyCoversEveryPlanOption fails when a PlanOptions field (at any
// nesting depth) is not folded into the plan-cache key: two plans
// differing only in that field would silently collide in the cache and
// one caller would execute under the other's derivation. Adding a field
// to PlanOptions must extend planKey (and, if the kind is new here, this
// probe) in the same change.
func TestPlanKeyCoversEveryPlanOption(t *testing.T) {
	sch := xmark.Schema()
	src := &Party{URL: "http://src", Fragmentation: core.MostFragmented(sch)}
	tgt := &Party{URL: "http://tgt", Fragmentation: core.LeastFragmented(sch)}
	base := planKey(src, tgt, PlanOptions{})

	var opts PlanOptions
	var walk func(v reflect.Value, prefix string)
	walk = func(v reflect.Value, prefix string) {
		tp := v.Type()
		for i := 0; i < v.NumField(); i++ {
			f, ft := v.Field(i), tp.Field(i)
			name := prefix + ft.Name
			if f.Kind() == reflect.Struct {
				walk(f, name+".")
				continue
			}
			opts = PlanOptions{}
			switch f.Kind() {
			case reflect.String:
				f.SetString("plankey-probe")
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
				f.SetInt(7919)
			case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
				f.SetUint(7919)
			case reflect.Float32, reflect.Float64:
				f.SetFloat(2.25)
			case reflect.Bool:
				f.SetBool(true)
			default:
				t.Fatalf("PlanOptions.%s has kind %s this probe cannot mutate — extend the probe and planKey together", name, f.Kind())
			}
			if planKey(src, tgt, opts) == base {
				t.Errorf("PlanOptions.%s is not folded into the plan-cache key", name)
			}
		}
	}
	walk(reflect.ValueOf(&opts).Elem(), "")
}
