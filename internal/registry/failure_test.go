package registry

import (
	"net/http/httptest"
	"testing"

	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/wsdlx"
)

// Failure injection: the agency must surface endpoint and network failures
// as errors, never as silent partial exchanges.

func TestExecuteSourceDown(t *testing.T) {
	ag, plan, _, done := startExchange(t, AlgGreedy)
	defer done()
	// Point the source registration at a dead server.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	ag.Party("CustomerInfoService", RoleSource).URL = deadURL
	if _, err := ag.Execute("CustomerInfoService", plan, netsim.Loopback()); err == nil {
		t.Error("exchange with a dead source must fail")
	}
}

func TestExecuteTargetDown(t *testing.T) {
	ag, plan, _, done := startExchange(t, AlgGreedy)
	defer done()
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	ag.Party("CustomerInfoService", RoleTarget).URL = deadURL
	if _, err := ag.Execute("CustomerInfoService", plan, netsim.Loopback()); err == nil {
		t.Error("exchange with a dead target must fail")
	}
}

func TestExecuteSourceEmptyStore(t *testing.T) {
	// A source whose store was cleared after planning: the scans return no
	// rows; the exchange must surface the downstream failure (combining an
	// empty customer fragment leaves the document unassembled) or succeed
	// with zero rows — never panic or hang.
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	tFr := tFragmentation(t, sch)
	srcStore, err := relstore.NewStore(sFr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcStore.LoadDocument(customerDoc(t)); err != nil {
		t.Fatal(err)
	}
	tgtStore, err := relstore.NewStore(tFr)
	if err != nil {
		t.Fatal(err)
	}
	srcSrv := httptest.NewServer(endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil).Handler())
	defer srcSrv.Close()
	tgtSrv := httptest.NewServer(endpoint.New("T", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil).Handler())
	defer tgtSrv.Close()
	ag := New()
	ag.Register("svc", RoleSource, wsdlFor(t, sch, sFr, srcSrv.URL), srcSrv.URL)
	ag.Register("svc", RoleTarget, wsdlFor(t, sch, tFr, tgtSrv.URL), tgtSrv.URL)
	plan, err := ag.Plan("svc", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}
	srcStore.Clear()
	report, err := ag.Execute("svc", plan, netsim.Loopback())
	if err == nil && tgtStore.Rows() != 0 {
		t.Errorf("empty source produced %d target rows", tgtStore.Rows())
	}
	_ = report
}

func TestPlanIncompatibleSchemas(t *testing.T) {
	sch1 := schema.CustomerInfo()
	sch2 := schema.Auction()
	ag := New()
	srv := httptest.NewServer(nil)
	defer srv.Close()
	if err := ag.Register("svc", RoleSource, wsdlFor(t, sch1, sFragmentation(t, sch1), srv.URL), srv.URL); err != nil {
		t.Fatal(err)
	}
	d := &wsdlx.Definitions{
		Name: "Auction", TargetNamespace: "ns", ServiceName: "svc",
		PortName: "p", Address: srv.URL, Schema: sch2,
	}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("svc", RoleTarget, data, srv.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := ag.Plan("svc", PlanOptions{}); err == nil {
		t.Error("plan across different schemas must fail")
	}
}
