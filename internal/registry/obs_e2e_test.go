package registry

// End-to-end check of the observability layer: a fault-injected reliable
// exchange with a Logger and Metrics registry attached must surface its
// retries and resumes as counters, narrate them to the log, attach a
// populated trace to the Report, and expose everything over the /metrics
// endpoint the daemons mount.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xdx/internal/netsim"
	"xdx/internal/obs"
)

// kid returns the first child span with the given name, or nil.
func kid(s *obs.Span, name string) *obs.Span {
	for _, k := range s.Kids() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

func TestObservedReliableExchange(t *testing.T) {
	ag, plan, tgtStore, _, done := startAuctionExchange(t)
	defer done()

	const seed = 1 // every seed in faultSeeds injects at least one fault
	fl := netsim.NewFaultyLink(netsim.Loopback(), soakFaults(seed))
	met := obs.NewRegistry()
	fl.OnFault = func(kind string) { met.Counter("netsim.faults." + kind).Inc() }
	var logBuf bytes.Buffer
	logger := obs.NewTextLogger(&logBuf, obs.LevelDebug)

	rep, err := ag.ExecuteOpts("Auction", plan, ExecOptions{
		Link:        netsim.Loopback(),
		Transport:   fl.RoundTripper(nil),
		Reliability: soakConfig(seed),
		Logger:      logger,
		Metrics:     met,
	})
	if err != nil {
		t.Fatalf("exchange failed: %v (injected %+v)", err, fl.Counts())
	}
	if rep.Retries == 0 {
		t.Fatalf("seed injected no retries (injected %+v)", fl.Counts())
	}

	// Counters mirror the report.
	if got := met.Counter("exchange.total").Value(); got != 1 {
		t.Errorf("exchange.total = %d, want 1", got)
	}
	if got := met.Counter("exchange.errors").Value(); got != 0 {
		t.Errorf("exchange.errors = %d, want 0", got)
	}
	if got := met.Counter("exchange.retries").Value(); got != int64(rep.Retries) {
		t.Errorf("exchange.retries = %d, report says %d", got, rep.Retries)
	}
	if got := met.Counter("exchange.resumes").Value(); got != int64(rep.Resumes) {
		t.Errorf("exchange.resumes = %d, report says %d", got, rep.Resumes)
	}
	if got := met.Counter("exchange.wire_bytes").Value(); got != rep.WireBytes {
		t.Errorf("exchange.wire_bytes = %d, report says %d", got, rep.WireBytes)
	}
	if got := met.Histogram("exchange.millis").Count(); got != 1 {
		t.Errorf("exchange.millis count = %d, want 1", got)
	}
	c := fl.Counts()
	faults := met.Counter("netsim.faults.drop").Value() +
		met.Counter("netsim.faults.truncate").Value() +
		met.Counter("netsim.faults.http5xx").Value()
	if want := int64(c.Drops + c.Truncates + c.HTTP5xx); faults != want {
		t.Errorf("netsim.faults.* total = %d, link counted %d", faults, want)
	}

	// The retry hook narrated each backoff to the logger.
	if !strings.Contains(logBuf.String(), "retrying call") {
		t.Error("log has no 'retrying call' line despite retries")
	}
	if !strings.Contains(logBuf.String(), "exchange complete") {
		t.Error("log has no completion line")
	}

	// The trace covers the exchange: a root span with source and deliver
	// phases, attempt children under each, and a commit for EndSession.
	tr := rep.Trace
	if tr == nil || tr.Name != "exchange" {
		t.Fatalf("report trace = %+v", tr)
	}
	if tr.Attr("service") != "Auction" || tr.Attr("path") != "reliable" {
		t.Errorf("trace attrs: service=%q path=%q", tr.Attr("service"), tr.Attr("path"))
	}
	if tr.Duration() <= 0 {
		t.Error("trace has no duration")
	}
	src, del := kid(tr, "source"), kid(tr, "deliver")
	if src == nil || del == nil || kid(tr, "commit") == nil {
		t.Fatalf("trace missing phases; kids = %v", tr.Kids())
	}
	if kid(src, "attempt") == nil {
		t.Error("source span has no attempt children")
	}
	attempts := 0
	for _, k := range del.Kids() {
		if k.Name == "attempt" {
			attempts++
		}
	}
	if attempts == 0 {
		t.Error("deliver span has no attempt children")
	}
	if del.Attr("chunks") == "" {
		t.Error("deliver span missing chunks attr")
	}
	if tgtStore.Rows() == 0 {
		t.Error("observed exchange delivered nothing")
	}

	// The ops mux exports the same registry: /healthz is alive and
	// /metrics carries the counters as JSON.
	ops := httptest.NewServer(obs.Mux(met))
	defer ops.Close()
	hz, err := http.Get(ops.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", hz.StatusCode)
	}
	mr, err := http.Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, raw)
	}
	if got, ok := snap["exchange.retries"].(float64); !ok || int(got) != rep.Retries {
		t.Errorf("/metrics exchange.retries = %v, report says %d", snap["exchange.retries"], rep.Retries)
	}
}

// TestObservedExchangeFailure checks the error path keeps its books: a
// fault seed without reliability kills the exchange, and the metrics and
// trace still record the failed run.
func TestObservedExchangeFailure(t *testing.T) {
	ag, plan, _, _, done := startAuctionExchange(t)
	defer done()

	fl := netsim.NewFaultyLink(netsim.Loopback(), soakFaults(1))
	met := obs.NewRegistry()
	rep, err := ag.ExecuteOpts("Auction", plan, ExecOptions{
		Link:      netsim.Loopback(),
		Streamed:  true,
		Transport: fl.RoundTripper(nil),
		Metrics:   met,
	})
	if err == nil {
		t.Fatal("unreliable exchange survived the fault seed")
	}
	if got := met.Counter("exchange.total").Value(); got != 1 {
		t.Errorf("exchange.total = %d, want 1", got)
	}
	if got := met.Counter("exchange.errors").Value(); got != 1 {
		t.Errorf("exchange.errors = %d, want 1", got)
	}
	if rep == nil || rep.Trace == nil {
		t.Fatalf("failed exchange returned no trace (report %+v)", rep)
	}
	if rep.Trace.Attr("path") != "streamed" {
		t.Errorf("trace path = %q", rep.Trace.Attr("path"))
	}
}
