package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"xdx/internal/xmltree"
)

// This file persists the agency's registrations to disk so a discovery-
// agency daemon survives restarts: one WSDL document per registration plus
// an index file mapping service/role/URL to it.

const indexFile = "registry.xml"

// SetAutoSave makes the agency persist its registrations into dir after
// every Register call. Pass "" to disable.
func (a *Agency) SetAutoSave(dir string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.autosaveDir = dir
}

// Save writes all registrations to dir (created if needed).
func (a *Agency) Save(dir string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.saveLocked(dir)
}

func (a *Agency) saveLocked(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("registry: save: %w", err)
	}
	index := &xmltree.Node{Name: "registry"}
	var services []string
	for s := range a.services {
		services = append(services, s)
	}
	sort.Strings(services)
	for _, service := range services {
		for _, role := range []Role{RoleSource, RoleTarget} {
			p := a.services[service][role]
			if p == nil {
				continue
			}
			file := fmt.Sprintf("%s__%s.wsdl", sanitize(service), role)
			data, err := p.WSDL.Marshal()
			if err != nil {
				return fmt.Errorf("registry: save %s/%s: %w", service, role, err)
			}
			if err := os.WriteFile(filepath.Join(dir, file), data, 0o644); err != nil {
				return fmt.Errorf("registry: save: %w", err)
			}
			reg := &xmltree.Node{Name: "registration"}
			reg.SetAttr("service", service)
			reg.SetAttr("role", string(role))
			reg.SetAttr("url", p.URL)
			reg.SetAttr("file", file)
			index.AddKid(reg)
		}
	}
	f, err := os.Create(filepath.Join(dir, indexFile))
	if err != nil {
		return fmt.Errorf("registry: save: %w", err)
	}
	defer f.Close()
	return xmltree.Write(f, index, xmltree.WriteOptions{Indent: true})
}

// LoadAgency restores an agency persisted with Save. A missing directory
// or index yields an empty agency.
func LoadAgency(dir string) (*Agency, error) {
	a := New()
	f, err := os.Open(filepath.Join(dir, indexFile))
	if os.IsNotExist(err) {
		return a, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: load: %w", err)
	}
	defer f.Close()
	index, err := xmltree.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("registry: load: %w", err)
	}
	if index.Name != "registry" {
		return nil, fmt.Errorf("registry: load: unexpected index root %q", index.Name)
	}
	for _, reg := range index.Kids {
		if reg.Name != "registration" {
			continue
		}
		service, _ := reg.Attr("service")
		roleStr, _ := reg.Attr("role")
		url, _ := reg.Attr("url")
		file, _ := reg.Attr("file")
		if service == "" || file == "" {
			return nil, fmt.Errorf("registry: load: malformed registration entry")
		}
		data, err := os.ReadFile(filepath.Join(dir, filepath.Base(file)))
		if err != nil {
			return nil, fmt.Errorf("registry: load %s/%s: %w", service, roleStr, err)
		}
		role := RoleSource
		if roleStr == string(RoleTarget) {
			role = RoleTarget
		}
		if err := a.Register(service, role, data, url); err != nil {
			return nil, fmt.Errorf("registry: load %s/%s: %w", service, roleStr, err)
		}
	}
	return a, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
