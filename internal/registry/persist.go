package registry

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"xdx/internal/xmltree"
)

// This file persists the agency's registrations to disk so a discovery-
// agency daemon survives restarts: one WSDL document per registration plus
// an index file mapping service/role/URL to it.

const indexFile = "registry.xml"

// SetAutoSave makes the agency persist its registrations into dir after
// every Register call. Pass "" to disable.
func (a *Agency) SetAutoSave(dir string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.autosaveDir = dir
}

// Save writes all registrations to dir (created if needed).
func (a *Agency) Save(dir string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.saveLocked(dir)
}

// saveLocked persists every registration, atomically: each WSDL and the
// index are written to a temp file and renamed into place, so a crash
// mid-save leaves the directory with either the old or the new version of
// every file — never a torn index that fails LoadAgency. Stale WSDLs of
// deregistered services are removed afterwards; a crash before the removal
// leaves unreferenced files the loader ignores.
func (a *Agency) saveLocked(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("registry: save: %w", err)
	}
	index := &xmltree.Node{Name: "registry"}
	var services []string
	for s := range a.services {
		services = append(services, s)
	}
	sort.Strings(services)
	wanted := map[string]bool{indexFile: true}
	for _, service := range services {
		for _, role := range []Role{RoleSource, RoleTarget} {
			p := a.services[service][role]
			if p == nil {
				continue
			}
			file := fmt.Sprintf("%s__%s.wsdl", sanitize(service), role)
			wanted[file] = true
			data, err := p.WSDL.Marshal()
			if err != nil {
				return fmt.Errorf("registry: save %s/%s: %w", service, role, err)
			}
			if err := writeFileAtomic(filepath.Join(dir, file), data); err != nil {
				return fmt.Errorf("registry: save: %w", err)
			}
			reg := &xmltree.Node{Name: "registration"}
			reg.SetAttr("service", service)
			reg.SetAttr("role", string(role))
			reg.SetAttr("url", p.URL)
			reg.SetAttr("file", file)
			index.AddKid(reg)
		}
	}
	var b strings.Builder
	if err := xmltree.Write(&b, index, xmltree.WriteOptions{Indent: true}); err != nil {
		return fmt.Errorf("registry: save: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, indexFile), []byte(b.String())); err != nil {
		return fmt.Errorf("registry: save: %w", err)
	}
	// The new index is in place; WSDLs of deregistered services are now
	// unreferenced and can go.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("registry: save: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if !wanted[name] && strings.HasSuffix(name, ".wsdl") {
			os.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// writeFileAtomic writes data to path via a temp file + rename, so readers
// and crash recovery only ever see a complete file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadAgency restores an agency persisted with Save. A missing directory
// or index yields an empty agency. A single malformed entry — missing
// attributes, a WSDL file that is gone or no longer parses — is skipped
// with a logged warning instead of aborting the whole restore, so one bad
// registration never keeps a daemon from coming back up; an unparsable
// index is still an error (the atomic save should make that impossible).
func LoadAgency(dir string) (*Agency, error) {
	a := New()
	f, err := os.Open(filepath.Join(dir, indexFile))
	if os.IsNotExist(err) {
		return a, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: load: %w", err)
	}
	defer f.Close()
	index, err := xmltree.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("registry: load: %w", err)
	}
	if index.Name != "registry" {
		return nil, fmt.Errorf("registry: load: unexpected index root %q", index.Name)
	}
	for _, reg := range index.Kids {
		if reg.Name != "registration" {
			continue
		}
		service, _ := reg.Attr("service")
		roleStr, _ := reg.Attr("role")
		url, _ := reg.Attr("url")
		file, _ := reg.Attr("file")
		if service == "" || file == "" {
			log.Printf("registry: load: skipping malformed registration entry (service=%q file=%q)", service, file)
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, filepath.Base(file)))
		if err != nil {
			log.Printf("registry: load: skipping %s/%s: %v", service, roleStr, err)
			continue
		}
		role := RoleSource
		if roleStr == string(RoleTarget) {
			role = RoleTarget
		}
		if err := a.Register(service, role, data, url); err != nil {
			log.Printf("registry: load: skipping %s/%s: %v", service, roleStr, err)
			continue
		}
	}
	return a, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
