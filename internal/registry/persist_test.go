package registry

import (
	"os"
	"path/filepath"
	"testing"

	"xdx/internal/schema"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	tFr := tFragmentation(t, sch)
	ag := New()
	if err := ag.Register("svc", RoleSource, wsdlFor(t, sch, sFr, "http://src"), "http://src"); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("svc", RoleTarget, wsdlFor(t, sch, tFr, "http://tgt"), "http://tgt"); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("other", RoleSource, wsdlFor(t, sch, sFr, "http://o"), "http://o"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ag.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgency(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(back.Services()); got != 2 {
		t.Fatalf("restored %d services, want 2", got)
	}
	p := back.Party("svc", RoleTarget)
	if p == nil || p.URL != "http://tgt" {
		t.Fatalf("target registration lost: %+v", p)
	}
	if p.Fragmentation.Len() != 4 {
		t.Errorf("fragmentation lost: %d fragments", p.Fragmentation.Len())
	}
	if back.Party("svc", RoleSource).Fragmentation.Len() != 5 {
		t.Errorf("source fragmentation lost")
	}
}

func TestLoadAgencyMissingDir(t *testing.T) {
	a, err := LoadAgency(filepath.Join(t.TempDir(), "nothing-here"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Services()) != 0 {
		t.Error("missing dir should load empty")
	}
}

func TestLoadAgencyCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, indexFile), []byte("<junk/>"), 0o644)
	if _, err := LoadAgency(dir); err == nil {
		t.Error("corrupt index must fail")
	}
	os.WriteFile(filepath.Join(dir, indexFile), []byte(`<registry><registration service="s" role="source" url="u" file="missing.wsdl"/></registry>`), 0o644)
	if _, err := LoadAgency(dir); err == nil {
		t.Error("missing WSDL file must fail")
	}
}

func TestAutoSave(t *testing.T) {
	sch := schema.CustomerInfo()
	dir := t.TempDir()
	ag := New()
	ag.SetAutoSave(dir)
	if err := ag.Register("svc", RoleSource, wsdlFor(t, sch, sFragmentation(t, sch), "http://x"), "http://x"); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgency(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Party("svc", RoleSource) == nil {
		t.Error("autosave did not persist the registration")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a/b c:d"); got != "a_b_c_d" {
		t.Errorf("sanitize = %q", got)
	}
}
