package registry

import (
	"os"
	"path/filepath"
	"testing"

	"xdx/internal/schema"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	tFr := tFragmentation(t, sch)
	ag := New()
	if err := ag.Register("svc", RoleSource, wsdlFor(t, sch, sFr, "http://src"), "http://src"); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("svc", RoleTarget, wsdlFor(t, sch, tFr, "http://tgt"), "http://tgt"); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("other", RoleSource, wsdlFor(t, sch, sFr, "http://o"), "http://o"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ag.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgency(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(back.Services()); got != 2 {
		t.Fatalf("restored %d services, want 2", got)
	}
	p := back.Party("svc", RoleTarget)
	if p == nil || p.URL != "http://tgt" {
		t.Fatalf("target registration lost: %+v", p)
	}
	if p.Fragmentation.Len() != 4 {
		t.Errorf("fragmentation lost: %d fragments", p.Fragmentation.Len())
	}
	if back.Party("svc", RoleSource).Fragmentation.Len() != 5 {
		t.Errorf("source fragmentation lost")
	}
}

func TestLoadAgencyMissingDir(t *testing.T) {
	a, err := LoadAgency(filepath.Join(t.TempDir(), "nothing-here"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Services()) != 0 {
		t.Error("missing dir should load empty")
	}
}

func TestLoadAgencyCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, indexFile), []byte("<junk/>"), 0o644)
	if _, err := LoadAgency(dir); err == nil {
		t.Error("corrupt index must fail")
	}
	os.WriteFile(filepath.Join(dir, indexFile), []byte("<registry><registration "), 0o644)
	if _, err := LoadAgency(dir); err == nil {
		t.Error("unparsable index must fail")
	}
}

// A single bad registration — dangling WSDL reference, malformed entry,
// unparsable WSDL — is skipped with a warning; the rest of the directory
// still restores.
func TestLoadAgencySkipsBadEntries(t *testing.T) {
	sch := schema.CustomerInfo()
	ag := New()
	if err := ag.Register("good", RoleSource, wsdlFor(t, sch, sFragmentation(t, sch), "http://g"), "http://g"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ag.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Append bad entries around the good one.
	index, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte(`<registration service="gone" role="source" url="u" file="missing.wsdl"/>` +
		`<registration service="" role="source" url="u" file=""/>` +
		`<registration service="junk" role="source" url="u" file="junk.wsdl"/>` +
		`</registry>`)
	index = append(index[:len(index)-len("</registry>")], bad...)
	if err := os.WriteFile(filepath.Join(dir, indexFile), index, 0o644); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "junk.wsdl"), []byte("not a wsdl"), 0o644)
	back, err := LoadAgency(dir)
	if err != nil {
		t.Fatalf("bad entries must be skipped, not fatal: %v", err)
	}
	if back.Party("good", RoleSource) == nil {
		t.Error("good registration lost")
	}
	if got := len(back.Services()); got != 1 {
		t.Errorf("restored %d services, want 1", got)
	}
}

// A crashed save must never leave a torn index behind: the index is
// renamed into place, so a leftover temp file is ignored and the previous
// index still loads.
func TestSaveAtomicLeavesLoadableIndex(t *testing.T) {
	sch := schema.CustomerInfo()
	ag := New()
	if err := ag.Register("svc", RoleSource, wsdlFor(t, sch, sFragmentation(t, sch), "http://x"), "http://x"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ag.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-save: a torn temp index next to the real one.
	os.WriteFile(filepath.Join(dir, indexFile+".tmp"), []byte("<registry><regist"), 0o644)
	back, err := LoadAgency(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Party("svc", RoleSource) == nil {
		t.Error("registration lost")
	}
}

func TestAutoSave(t *testing.T) {
	sch := schema.CustomerInfo()
	dir := t.TempDir()
	ag := New()
	ag.SetAutoSave(dir)
	if err := ag.Register("svc", RoleSource, wsdlFor(t, sch, sFragmentation(t, sch), "http://x"), "http://x"); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgency(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Party("svc", RoleSource) == nil {
		t.Error("autosave did not persist the registration")
	}
}

// Deregistered services must stay gone after a restart: autosave rewrites
// the index without them and removes their now-unreferenced WSDL files.
func TestAutoSaveDeregisterRoundTrip(t *testing.T) {
	sch := schema.CustomerInfo()
	dir := t.TempDir()
	ag := New()
	ag.SetAutoSave(dir)
	if err := ag.Register("keep", RoleSource, wsdlFor(t, sch, sFragmentation(t, sch), "http://k"), "http://k"); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("drop", RoleSource, wsdlFor(t, sch, sFragmentation(t, sch), "http://d"), "http://d"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "drop__source.wsdl")); err != nil {
		t.Fatalf("expected persisted WSDL before deregister: %v", err)
	}
	if !ag.Deregister("drop", RoleSource) {
		t.Fatal("deregister reported nothing removed")
	}
	if _, err := os.Stat(filepath.Join(dir, "drop__source.wsdl")); !os.IsNotExist(err) {
		t.Errorf("deregistered WSDL file still on disk (err=%v)", err)
	}
	back, err := LoadAgency(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Party("drop", RoleSource) != nil {
		t.Error("deregistered service came back after load")
	}
	if back.Party("keep", RoleSource) == nil {
		t.Error("surviving service lost")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a/b c:d"); got != "a_b_c_d" {
		t.Errorf("sanitize = %q", got)
	}
}
