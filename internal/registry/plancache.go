package registry

// The plan-derivation cache. Deriving a plan costs a mapping construction,
// two stats-probe SOAP round trips, and an optimizer search — all of it a
// pure function of the registered fragmentation pair, the endpoint pair,
// and the plan options. At traffic scale the same service is exchanged
// thousands of times between registration changes, so the agency derives
// once per key and hands out the immutable *Plan template until the
// service's registration mutates.
//
// Entries are grouped by service name because that is the invalidation
// unit: Register/RegisterFromEndpoint/Deregister drop every entry of the
// touched service. The inner key carries everything the derivation read —
// fragment element sets, endpoint URLs, and the full PlanOptions — so a
// re-registration that somehow survives invalidation still cannot alias a
// stale entry (the key changes with the fragmentation).

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"xdx/internal/obs"
)

// planCache maps service -> derivation key -> immutable plan template
// behind its own RWMutex, so cache reads never touch the agency's
// registration lock and planning never serializes executes.
type planCache struct {
	mu      sync.RWMutex
	entries map[string]map[string]*Plan
	flights map[string]*planFlight
	off     bool

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	size      atomic.Int64
}

// planFlight is one in-progress derivation. Concurrent misses for the same
// key coalesce onto it instead of stampeding the endpoints with duplicate
// probe rounds: one leader derives, everyone else waits on done and reads
// p/err.
type planFlight struct {
	done chan struct{}
	p    *Plan
	err  error
}

func (c *planCache) init() {
	c.entries = make(map[string]map[string]*Plan)
	c.flights = make(map[string]*planFlight)
}

// setEnabled toggles caching; disabling drops every entry.
func (c *planCache) setEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.off = !on
	if c.off {
		for service, m := range c.entries {
			c.evictions.Add(int64(len(m)))
			c.size.Add(int64(-len(m)))
			delete(c.entries, service)
		}
	}
}

// join is the single-flight entry point. A cache hit returns the template.
// Otherwise the first caller for a key becomes the leader (counting the
// miss) and must derive then finish; later callers for the same key get the
// leader's flight back and wait on its done channel. A disabled cache
// coalesces nothing: every caller is a leader with a nil flight.
func (c *planCache) join(service, key string) (p *Plan, f *planFlight, leader bool) {
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return nil, nil, true
	}
	if p := c.entries[service][key]; p != nil {
		c.mu.Unlock()
		c.hits.Add(1)
		return p, nil, false
	}
	fk := service + "\x1f" + key
	if f := c.flights[fk]; f != nil {
		c.mu.Unlock()
		return nil, f, false
	}
	f = &planFlight{done: make(chan struct{})}
	c.flights[fk] = f
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, f, true
}

// finish publishes a leader's result and releases the flight's waiters.
func (c *planCache) finish(service, key string, f *planFlight, p *Plan, err error) {
	f.p, f.err = p, err
	c.mu.Lock()
	delete(c.flights, service+"\x1f"+key)
	c.mu.Unlock()
	close(f.done)
}

// coalescedHit counts a waiter served by another caller's derivation; hits
// count every plan handed out without performing a fresh derivation.
func (c *planCache) coalescedHit() {
	c.hits.Add(1)
}

// put stores a freshly derived template unless the cache is off or valid
// reports that the derivation raced a registration change.
func (c *planCache) put(service, key string, p *Plan, valid func() bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.off || (valid != nil && !valid()) {
		return
	}
	m := c.entries[service]
	if m == nil {
		m = make(map[string]*Plan)
		c.entries[service] = m
	}
	if _, exists := m[key]; !exists {
		c.size.Add(1)
	}
	m[key] = p
}

// invalidate drops every cached template of a service, counting evictions.
func (c *planCache) invalidate(service string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.entries[service]; len(m) > 0 {
		c.evictions.Add(int64(len(m)))
		c.size.Add(int64(-len(m)))
	}
	delete(c.entries, service)
}

// stats reads the lifetime counters and the current entry count.
func (c *planCache) stats() (hits, misses, evictions int64, size int) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), int(c.size.Load())
}

// export publishes the cache's counters on a metric registry as
// plan.cache.{hits,misses,evictions,size}.
func (c *planCache) export(m *obs.Registry) {
	if m == nil {
		return
	}
	m.Func("plan.cache.hits", func() any { return c.hits.Load() })
	m.Func("plan.cache.misses", func() any { return c.misses.Load() })
	m.Func("plan.cache.evictions", func() any { return c.evictions.Load() })
	m.Func("plan.cache.size", func() any { return c.size.Load() })
}

// planKey renders everything a derivation reads into a string key: both
// parties' fragment element sets (names alone could alias two different
// layouts), both endpoint URLs (the stats probes answer per endpoint), and
// the full PlanOptions including the codec (compression-aware ShipBytes
// changes placements).
func planKey(src, tgt *Party, opts PlanOptions) string {
	var b strings.Builder
	writeFragSig(&b, src)
	b.WriteByte('\x1f')
	writeFragSig(&b, tgt)
	b.WriteByte('\x1f')
	b.WriteString(string(opts.Algorithm))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(opts.WComp, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(opts.WComm, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(opts.Gen.MaxTreesPerTarget))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(opts.Gen.MaxPrograms))
	b.WriteByte('|')
	b.WriteString(opts.Codec)
	b.WriteByte('|')
	b.WriteString(opts.Filter)
	return b.String()
}

// writeFragSig writes one party's derivation-relevant identity: its URL
// and, per fragment in layout order, the root and sorted element set.
func writeFragSig(b *strings.Builder, p *Party) {
	b.WriteString(p.URL)
	b.WriteByte('\x1e')
	for _, f := range p.Fragmentation.Fragments {
		b.WriteString(f.Root)
		b.WriteByte('=')
		for i, e := range f.ElemList() {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e)
		}
		b.WriteByte(';')
	}
}
