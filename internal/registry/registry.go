// Package registry implements the discovery agency of Figure 2: the
// middle-ware where systems register WSDL descriptions with fragmentation
// extensions (step 1), where mappings and data-transfer programs are
// generated (step 2), where the systems' cost interfaces are probed
// (step 3), and which assigns operations to the source and target and
// drives the exchange (step 4). The agency sees only fragmentations and
// cost estimates — never the systems' internal data structures.
package registry

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xdx/internal/core"
	"xdx/internal/netsim"
	"xdx/internal/obs"
	"xdx/internal/reliable"
	"xdx/internal/soap"
	"xdx/internal/wire"
	"xdx/internal/wsdlx"
	"xdx/internal/xmltree"
)

// Role says which side of an exchange a registration plays.
type Role string

// Registration roles.
const (
	RoleSource Role = "source"
	RoleTarget Role = "target"
)

// Party is one registered system.
type Party struct {
	// Role is source or target.
	Role Role
	// URL is the endpoint's SOAP address.
	URL string
	// WSDL is the parsed service description.
	WSDL *wsdlx.Definitions
	// Fragmentation is the system's registered fragmentation; when the
	// WSDL carries none, the initial XML Schema is used by default, as in
	// publish&map (§1.1).
	Fragmentation *core.Fragmentation
}

// Agency is the discovery agency. Registration state lives behind a
// read-write lock: planning and executing only ever take read snapshots,
// so they never serialize on each other or on concurrent registrations —
// only Register/Deregister write. A *Party is immutable once published
// (re-registration installs a fresh Party), so a pointer copied out under
// the read lock stays valid forever.
type Agency struct {
	mu          sync.RWMutex
	services    map[string]map[Role]*Party
	autosaveDir string

	// epoch counts registration mutations; the plan cache uses it to
	// discard derivations that raced a Register/Deregister.
	epoch atomic.Int64
	plans planCache

	// recon remembers, per exchange stream, what the previous successful
	// delivery shipped (record hashes), so repeat exchanges under
	// ExecOptions.Delta ship only the difference.
	recon *reliable.ReconIndex

	log obs.Logger
	met *obs.Registry
}

// New returns an empty agency.
func New() *Agency {
	a := &Agency{services: make(map[string]map[Role]*Party), recon: reliable.NewReconIndex()}
	a.plans.init()
	return a
}

// SetMetrics exports the agency's control-plane metrics (plan-cache hits,
// misses, evictions, size) into m and makes m the sink for the agency's own
// counters (autosave errors). Call before serving traffic.
func (a *Agency) SetMetrics(m *obs.Registry) {
	a.met = m
	a.plans.export(m)
}

// SetLogger wires the agency's own control-plane logger (autosave failures
// and other background errors that have no caller to return to).
func (a *Agency) SetLogger(l obs.Logger) { a.log = l }

// PlanCacheStats reports the plan cache's lifetime counters and current
// entry count — the hit-rate source for load harnesses and tests.
func (a *Agency) PlanCacheStats() (hits, misses, evictions int64, size int) {
	return a.plans.stats()
}

// SetPlanCache enables or disables plan-template caching (on by default).
// Disabling re-derives the mapping and program on every Plan call — the
// pre-cache control-plane behavior, kept reachable as a load-test baseline.
func (a *Agency) SetPlanCache(enabled bool) { a.plans.setEnabled(enabled) }

// Register stores a party's WSDL document under a service name (step 1 of
// Figure 2). A missing fragmentation defaults to the whole XML Schema.
func (a *Agency) Register(service string, role Role, wsdlDoc []byte, url string) error {
	defs, err := wsdlx.Parse(bytes.NewReader(wsdlDoc))
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	p := &Party{Role: role, URL: url, WSDL: defs}
	if len(defs.Fragmentations) > 0 {
		p.Fragmentation = defs.Fragmentations[0]
	} else {
		p.Fragmentation = core.Trivial(defs.Schema)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.services[service] == nil {
		a.services[service] = make(map[Role]*Party)
	}
	a.services[service][role] = p
	a.epoch.Add(1)
	a.plans.invalidate(service)
	if a.autosaveDir != "" {
		if err := a.saveLocked(a.autosaveDir); err != nil {
			return err
		}
	}
	return nil
}

// RegisterFromEndpoint fetches the party's WSDL description from the
// endpoint's own GetWSDL operation and registers it — discovery without
// the party having to push its document (the UDDI-style flow of §2).
func (a *Agency) RegisterFromEndpoint(service string, role Role, url string) error {
	c := &soap.Client{URL: url}
	resp, err := c.Call("GetWSDL", &xmltree.Node{Name: "GetWSDL"})
	if err != nil {
		return fmt.Errorf("registry: fetching WSDL from %s: %w", url, err)
	}
	return a.Register(service, role, []byte(resp.Text), url)
}

// Party returns the registration for a role, or nil. The returned Party
// is an immutable snapshot — safe to read after the lock is released.
func (a *Agency) Party(service string, role Role) *Party {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.services[service][role]
}

// parties copies out both of a service's registrations under one read
// lock, so a plan or execute sees a coherent source/target pair even while
// registrations churn.
func (a *Agency) parties(service string) (src, tgt *Party) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	m := a.services[service]
	return m[RoleSource], m[RoleTarget]
}

// Deregister removes a party's registration (both roles when role is "").
// It reports whether anything was removed.
func (a *Agency) Deregister(service string, role Role) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.services[service]
	if m == nil {
		return false
	}
	removed := false
	if role == "" {
		removed = len(m) > 0
		delete(a.services, service)
	} else if _, ok := m[role]; ok {
		delete(m, role)
		removed = true
		if len(m) == 0 {
			delete(a.services, service)
		}
	}
	if removed {
		a.epoch.Add(1)
		a.plans.invalidate(service)
		if a.autosaveDir != "" {
			// Deregister has no error return its callers act on, but a
			// failed autosave means the directory on disk still lists this
			// service — silent persistence loss. Surface it.
			if err := a.saveLocked(a.autosaveDir); err != nil {
				a.met.Counter("registry.autosave.errors").Inc()
				obs.OrNop(a.log).Log(obs.LevelWarn, "registry autosave failed",
					"dir", a.autosaveDir, "service", service, "err", err.Error())
			}
		}
	}
	return removed
}

// Services lists registered service names.
func (a *Agency) Services() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []string
	for s := range a.services {
		out = append(out, s)
	}
	return out
}

// ServicesPage lists registered service names sorted lexicographically,
// keyset-paginated: up to limit names strictly after cursor, plus the
// cursor for the next page ("" when this page is the last). Pass cursor ""
// for the first page; limit <= 0 takes a default page.
func (a *Agency) ServicesPage(cursor string, limit int) (names []string, next string) {
	if limit <= 0 {
		limit = DefaultPageSize
	}
	all := a.Services()
	sort.Strings(all)
	for _, s := range all {
		if s <= cursor {
			continue
		}
		if len(names) == limit {
			return names, names[len(names)-1]
		}
		names = append(names, s)
	}
	return names, ""
}

// DefaultPageSize is the page size ServicesPage and the List SOAP op use
// when the caller names none.
const DefaultPageSize = 50

// Algorithm selects the program-generation strategy of §4.
type Algorithm string

// Optimization algorithms.
const (
	AlgOptimal Algorithm = "optimal" // §4.2: exhaustive orderings × Cost_Based_Optim
	AlgGreedy  Algorithm = "greedy"  // §4.3: cheapest-combine-first, greedy placement
)

// PlanOptions tune step 2/3.
type PlanOptions struct {
	// Algorithm defaults to AlgGreedy.
	Algorithm Algorithm
	// WComp and WComm weight the cost model; zero values default to 1.
	WComp, WComm float64
	// Gen bounds exhaustive enumeration.
	Gen core.GenOptions
	// Codec names the shipment encoding the exchange will travel under.
	// When set, the stats probes ask the endpoints for compression-
	// calibrated statistics, so the optimizer's comm term reflects true
	// wire bytes — a lean codec can flip placements toward shipping.
	Codec string
	// Filter is a pushdown predicate (§3.2 service arguments) in the small
	// XPath subset of core.CompileFilter: child steps plus a leaf value
	// comparison, e.g. "Account/AcctNum >= 100" or "CustName = 'Ann'". It
	// is compiled and schema-checked at plan time — a filter that does not
	// compile fails the plan — and evaluated source-side, so endpoints scan
	// and ship only matching root records and their descendants.
	Filter string
}

// Plan is the outcome of steps 2 and 3: a data-transfer program with its
// placement and estimated cost.
type Plan struct {
	Service   string
	Mapping   *core.Mapping
	Program   *core.Graph
	Assign    core.Assignment
	Estimated float64
	// PlanTime is how long optimization took (the §5.4.2 greedy-vs-optimal
	// runtime comparison).
	PlanTime time.Duration
}

// Plan generates and optimizes a data-transfer program for the service:
// it derives the mapping between the registered fragmentations, probes both
// endpoints' cost interfaces over SOAP, and runs the selected optimizer.
//
// Derivations are cached: the mapping and optimizer output depend only on
// the (source fragmentation, target fragmentation, endpoint pair, options)
// tuple, so repeated plans over the same pair return the cached immutable
// *Plan template without re-deriving or re-probing (Mahboubi & Darmont:
// fragmentation-derived artifacts are reusable across queries). The cache
// is invalidated whenever the service re-registers or deregisters. Callers
// must treat the returned Plan as read-only.
func (a *Agency) Plan(service string, opts PlanOptions) (*Plan, error) {
	epoch := a.epoch.Load()
	src, tgt := a.parties(service)
	if src == nil || tgt == nil {
		return nil, fmt.Errorf("registry: service %q needs both a source and a target registration", service)
	}
	key := planKey(src, tgt, opts)
	p, flight, leader := a.plans.join(service, key)
	if p != nil {
		return p, nil
	}
	if !leader {
		// Another caller is deriving this very key; wait for its answer
		// instead of stampeding the endpoints with duplicate probe rounds.
		<-flight.done
		if flight.err != nil {
			return nil, flight.err
		}
		a.plans.coalescedHit()
		return flight.p, nil
	}
	p, err := a.derivePlan(service, src, tgt, opts)
	if flight != nil {
		defer func() { a.plans.finish(service, key, flight, p, err) }()
	}
	if err != nil {
		return nil, err
	}
	// The epoch check drops derivations whose party snapshot predates a
	// registration change; waiters coalesced onto this flight still receive
	// the plan (they raced the change exactly as a lone caller would have).
	a.plans.put(service, key, p, func() bool { return a.epoch.Load() == epoch })
	return p, nil
}

// derivePlan is the uncached step 2/3 work: mapping derivation, stats
// probes against both live endpoints, and optimizer search.
func (a *Agency) derivePlan(service string, src, tgt *Party, opts PlanOptions) (*Plan, error) {
	// The two parties agreed on one XML Schema; align the target's
	// fragmentation onto the source's schema object.
	tgtFrag, err := realign(tgt.Fragmentation, src.Fragmentation)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMapping(src.Fragmentation, tgtFrag)
	if err != nil {
		return nil, err
	}
	if opts.Filter != "" {
		// The filter travels to the source at execute time; compiling it
		// here fails bad expressions at plan time, against the schema both
		// parties agreed on — including paths outside the source's root
		// fragment, which could only ever filter out every record.
		f, err := core.CompileFilter(opts.Filter, src.Fragmentation.Schema)
		if err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		if err := f.CheckRoot(src.Fragmentation); err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
	}
	model, err := a.probe(src, tgt, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var res core.OptimalResult
	switch opts.Algorithm {
	case AlgOptimal:
		res, err = core.Optimal(m, model, opts.Gen)
	default:
		res, err = core.Greedy(m, model)
	}
	if err != nil {
		return nil, err
	}
	return &Plan{
		Service:   service,
		Mapping:   m,
		Program:   res.Program,
		Assign:    res.Assign,
		Estimated: res.Cost,
		PlanTime:  time.Since(start),
	}, nil
}

// realign rebuilds fr against the schema owned by ref so fragment element
// checks share one schema object.
func realign(fr, ref *core.Fragmentation) (*core.Fragmentation, error) {
	if fr.Schema == ref.Schema {
		return fr, nil
	}
	if fr.Schema.Len() != ref.Schema.Len() {
		return nil, fmt.Errorf("registry: parties registered different schemas (%d vs %d elements)", fr.Schema.Len(), ref.Schema.Len())
	}
	var frags []*core.Fragment
	for _, f := range fr.Fragments {
		nf, err := core.NewFragment(ref.Schema, f.Name, f.ElemList())
		if err != nil {
			return nil, fmt.Errorf("registry: parties registered incompatible schemas: %w", err)
		}
		frags = append(frags, nf)
	}
	return core.NewFragmentation(ref.Schema, fr.Name, frags)
}

// probe queries both endpoints' ProbeStats interfaces and builds the
// two-system cost model (step 3 of Figure 2).
func (a *Agency) probe(src, tgt *Party, opts PlanOptions) (*core.Model, error) {
	sp, err := probeStats(src.URL, opts.Codec)
	if err != nil {
		return nil, fmt.Errorf("registry: probing source: %w", err)
	}
	tp, err := probeStats(tgt.URL, opts.Codec)
	if err != nil {
		return nil, fmt.Errorf("registry: probing target: %w", err)
	}
	model := core.NewModel(&duplexProvider{src: sp, tgt: tp})
	if opts.WComp > 0 {
		model.WComp = opts.WComp
	}
	if opts.WComm > 0 {
		model.WComm = opts.WComm
	}
	return model, nil
}

func probeStats(url, codec string) (*core.StatsProvider, error) {
	c := &soap.Client{URL: url}
	req := &xmltree.Node{Name: "ProbeStats"}
	if codec != "" {
		req.SetAttr("codec", codec)
	}
	resp, err := c.Call("ProbeStats", req)
	if err != nil {
		return nil, err
	}
	if len(resp.Kids) == 0 {
		return nil, fmt.Errorf("empty stats response")
	}
	return wire.DecodeStats(resp.Kids[0])
}

// duplexProvider routes cost queries to the owning system's estimates.
type duplexProvider struct {
	src, tgt *core.StatsProvider
}

// CompCost implements core.CostProvider.
func (d *duplexProvider) CompCost(kind core.OpKind, in []*core.Fragment, out *core.Fragment, loc core.Location) float64 {
	if loc == core.LocTarget {
		if kind == core.OpCombine && !d.tgt.TargetCombines {
			return math.Inf(1)
		}
		// Work is sized by the data flowing through the operation, which
		// lives at the source; speed is the target's.
		p := *d.src
		p.TargetSpeed = d.tgt.TargetSpeed
		p.TargetCombines = d.tgt.TargetCombines
		return p.CompCost(kind, in, out, core.LocTarget)
	}
	return d.src.CompCost(kind, in, out, core.LocSource)
}

// ShipBytes implements core.CostProvider.
func (d *duplexProvider) ShipBytes(f *core.Fragment) float64 { return d.src.ShipBytes(f) }

// ProbedCost is the result of one comp_cost probe against a live endpoint.
type ProbedCost struct {
	Op   *core.Op
	Loc  core.Location
	Cost float64
}

// VerifyPlan probes the live endpoints for the actual comp_cost of every
// placed operation of a plan (§4.1's per-operation probing, as opposed to
// the bulk statistics probe used during search) and returns the per-op
// answers together with their sum. It lets an operator check a plan's
// estimate against the systems' own current numbers before executing.
func (a *Agency) VerifyPlan(service string, plan *Plan) ([]ProbedCost, float64, error) {
	src, tgt := a.parties(service)
	if src == nil || tgt == nil {
		return nil, 0, fmt.Errorf("registry: service %q not fully registered", service)
	}
	var out []ProbedCost
	total := 0.0
	for _, op := range plan.Program.Ops {
		loc := plan.Assign[op.ID]
		url := src.URL
		if loc == core.LocTarget {
			url = tgt.URL
		}
		cost, err := probeCost(url, plan.Program, op, loc)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, ProbedCost{Op: op, Loc: loc, Cost: cost})
		total += cost
	}
	return out, total, nil
}

func probeCost(url string, g *core.Graph, op *core.Op, loc core.Location) (float64, error) {
	req := &xmltree.Node{Name: "ProbeCost"}
	req.SetAttr("kind", op.Kind.String())
	req.SetAttr("loc", loc.String())
	addFrag := func(f *core.Fragment) {
		fx := &xmltree.Node{Name: "fragment"}
		fx.SetAttr("name", f.Name)
		for _, e := range f.ElemList() {
			fx.AddKid(&xmltree.Node{Name: "e", Text: e})
		}
		req.AddKid(fx)
	}
	addFrag(op.Out)
	for _, e := range g.In(op) {
		addFrag(e.Frag)
	}
	c := &soap.Client{URL: url}
	resp, err := c.Call("ProbeCost", req)
	if err != nil {
		return 0, err
	}
	v, _ := resp.Attr("cost")
	if v == "Inf" {
		return math.Inf(1), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("registry: bad probed cost %q", v)
	}
	return f, nil
}

// Report aggregates the measurable steps of one executed exchange,
// mirroring §5.2's step list.
type Report struct {
	// Plan is the executed plan.
	Plan *Plan
	// SourceTime is step 1: executing the program parts assigned to the
	// source.
	SourceTime time.Duration
	// ShipBytes is the size of the shipped fragments; ShipTime the modeled
	// time over the configured link (step 2). ShipBytes equals WireBytes
	// and is kept for compatibility.
	ShipBytes int64
	ShipTime  time.Duration
	// WireBytes is what actually crossed the link: shipment framing,
	// codec encoding, compression and transfer text included — and, on
	// the reliable path, retransmitted attempts. PayloadBytes is the same
	// shipment measured in the universal tagged-XML tree codec, so the
	// two diverge exactly by what the negotiated codec saved (or framing
	// cost). PayloadBytes is zero on the buffered tree path, which
	// forwards the shipment without decoding it.
	WireBytes    int64
	PayloadBytes int64
	// Codec is the shipment codec the exchange actually traveled under —
	// the server's negotiation answer when one arrived, the requested
	// codec otherwise.
	Codec string
	// TargetTime is step 3: program parts executed at the target.
	TargetTime time.Duration
	// WriteTime is step 4: loading the target store.
	WriteTime time.Duration
	// IndexTime is step 5: updating target indexes.
	IndexTime time.Duration
	// Retries counts failed call attempts that were retried by the
	// reliability engine (zero on the plain paths).
	Retries int
	// Resumes counts target deliveries that resumed from a positive chunk
	// checkpoint instead of restarting the shipment.
	Resumes int
	// DedupedRecords is how many replayed records the target's idempotency
	// ledger dropped across resumed deliveries.
	DedupedRecords int64
	// Delta reports whether the delivery actually ran in delta mode (a
	// requested delta falls back to a full re-ship when the reconciliation
	// index or the target's base is cold, or the fragmentation epoch
	// changed). DeltaRecords is how many added/changed records the delta
	// shipped; TombstoneRecords how many deletions it announced.
	Delta            bool
	DeltaRecords     int
	TombstoneRecords int
	// Trace is the exchange's span tree — the root "exchange" span with
	// per-phase children (source attempts, delivery attempts, resume
	// probes, commit). Always populated by ExecuteOpts; End() has been
	// called on the root by the time the report is returned.
	Trace *obs.Span
}

// Total sums all steps.
func (r *Report) Total() time.Duration {
	return r.SourceTime + r.ShipTime + r.TargetTime + r.WriteTime + r.IndexTime
}

// ExecOptions tunes Execute.
type ExecOptions struct {
	// Link models the source→target connection.
	Link netsim.Link
	// Format selects the shipment encoding: "" or "xml" for XML trees,
	// "feed" for sorted feeds (flat fragments only; others fall back to
	// XML per instance). Superseded by Codec, which wins when both are
	// set.
	Format string
	// Codec names the shipment encoding for the exchange: "xml", "feed",
	// "bin", or "bin+flate". On the streamed paths the agency advertises
	// it (plus the universal "xml") on the request envelope and the
	// source endpoint answers with its pick; the shipment itself stays
	// self-describing either way.
	Codec string
	// FilterElem/FilterValue pass a service argument (§3.2) to the source:
	// only root-fragment records whose FilterElem leaf equals FilterValue
	// (and their descendants) are exchanged.
	FilterElem, FilterValue string
	// Filter is the compiled-pushdown generalization of FilterElem: a
	// core.CompileFilter expression (child steps + leaf comparison)
	// evaluated source-side. When both are set, Filter wins.
	Filter string
	// Delta asks for an incremental delivery: the agency diffs the fresh
	// shipment against its reconciliation index for this service and ships
	// only added/changed records plus tombstones for deletions, falling
	// back to a full re-ship whenever either side's state is cold or the
	// fragmentation epoch changed. Requires Reliability (deltas ride the
	// sessioned chunk protocol).
	Delta bool
	// Pipelined asks both endpoints to run their program slices on the
	// streaming executor (stages connected by channels) instead of the
	// batch one. Semantics are identical; scheduling overlaps.
	Pipelined bool
	// Streamed drives the exchange over the zero-materialization wire
	// path: the source serializes its shipment directly onto the HTTP
	// response as the slice executes, the agency decodes it incrementally
	// and pipes it onward, and the target decodes the request in one SAX
	// pass — no envelope tree is materialized anywhere. With Streamed,
	// ShipBytes reports actual wire bytes of the shipment (framing
	// included), where the tree path counts serialized records only.
	Streamed bool
	// Reliability, when set, drives the exchange through the reliable
	// subsystem: retried source execution with backoff and circuit
	// breaking, and a resumable chunked session for the target delivery.
	// It implies the streaming wire path; see executeReliable.
	Reliability *reliable.Config
	// Transport, when set, is installed into the SOAP clients driving the
	// exchange — the hook a fault-injecting netsim.FaultyLink plugs into.
	// With Reliability set it is used unless the config carries its own.
	Transport http.RoundTripper
	// Logger, when set, narrates the exchange: attempts, retries, breaker
	// transitions, and the final outcome. Nil is silent.
	Logger obs.Logger
	// Metrics, when set, receives exchange.* counters and latency
	// histograms from the drive. Nil records nothing.
	Metrics *obs.Registry
	// ParallelChunks dials the agency-side chunk codec pools (encode
	// renders and raw-chunk parses): 0 — the default — is one worker per
	// CPU, 1 or less runs the codecs in-line. The wire bytes and the
	// decoded instances are identical for every setting.
	ParallelChunks int
	// Scheduler, when set, routes the drive through the admission-
	// controlled exchange pool: the exchange waits for a worker under
	// Tenant's budgets and runs there, or is shed immediately with a
	// soap.CodeOverloaded fault (see Scheduler.Submit).
	Scheduler *Scheduler
	// Tenant names the admission-control bucket the exchange charges
	// against; empty defaults to the service name.
	Tenant string
}

// client builds a SOAP client for url honoring the configured transport.
func (o ExecOptions) client(url string) *soap.Client {
	c := &soap.Client{URL: url}
	if o.Transport != nil {
		c.HTTPClient = &http.Client{Transport: o.Transport}
	}
	return c
}

// effectiveCodec resolves the shipment codec the options ask for: Codec
// wins, the legacy Format field maps onto its codec, and the default is
// tagged XML.
func (o ExecOptions) effectiveCodec() (wire.Codec, error) {
	if o.Codec != "" {
		return wire.ParseCodec(o.Codec)
	}
	if o.Format == "feed" {
		return wire.Codec{Kind: wire.CodecFeed}, nil
	}
	return wire.Codec{}, nil
}

// advertise configures c to negotiate for codec: the client offers its
// preference plus the universal tagged-XML fallback.
func advertise(c *soap.Client, codec wire.Codec) {
	if codec.String() == wire.CodecXML {
		return
	}
	c.Codecs = []string{codec.String(), wire.CodecXML}
}

// Execute drives an exchange end-to-end (step 4 of Figure 2) with default
// options; see ExecuteOpts.
func (a *Agency) Execute(service string, plan *Plan, link netsim.Link) (*Report, error) {
	return a.ExecuteOpts(service, plan, ExecOptions{Link: link})
}

// ExecuteOpts drives an exchange end-to-end: the source executes its slice
// and returns the cross-edge shipment, which the agency forwards to the
// target together with the target slice. Communication time is modeled
// over the link from the actual shipment size. Every drive carries a span
// tree (Report.Trace) and, when opts wires a Logger/Metrics, emits
// exchange.* observability.
func (a *Agency) ExecuteOpts(service string, plan *Plan, opts ExecOptions) (*Report, error) {
	if opts.Scheduler != nil {
		sched, tenant := opts.Scheduler, opts.Tenant
		if tenant == "" {
			tenant = service
		}
		opts.Scheduler = nil
		var report *Report
		err := sched.Submit(tenant, func() error {
			var e error
			report, e = a.ExecuteOpts(service, plan, opts)
			return e
		})
		return report, err
	}
	if opts.Delta && opts.Reliability == nil {
		return nil, fmt.Errorf("registry: ExecOptions.Delta requires Reliability (deltas ride the sessioned chunk protocol)")
	}
	start := time.Now()
	met := opts.Metrics
	log := obs.OrNop(opts.Logger)
	met.Counter("exchange.total").Inc()

	var report *Report
	var err error
	switch {
	case opts.Reliability != nil:
		if opts.Reliability.Transport == nil && opts.Transport != nil {
			cfg := *opts.Reliability
			cfg.Transport = opts.Transport
			opts.Reliability = &cfg
		}
		report, err = a.executeReliable(service, plan, opts)
	case opts.Streamed:
		report, err = a.executeStreamed(service, plan, opts)
	default:
		report, err = a.executeTree(service, plan, opts)
	}

	met.Histogram("exchange.millis").ObserveSince(start)
	if report != nil {
		report.Trace.End()
	}
	if err != nil {
		met.Counter("exchange.errors").Inc()
		log.Log(obs.LevelWarn, "exchange failed", "service", service, "err", err.Error())
		return report, err
	}
	met.Counter("exchange.wire_bytes").Add(report.WireBytes)
	met.Counter("exchange.payload_bytes").Add(report.PayloadBytes)
	if log.Enabled(obs.LevelInfo) {
		log.Log(obs.LevelInfo, "exchange complete",
			"service", service, "codec", report.Codec,
			"wireBytes", report.WireBytes, "retries", report.Retries,
			"resumes", report.Resumes, "millis", time.Since(start).Milliseconds())
	}
	return report, nil
}

// newTrace roots an exchange's span tree.
func newTrace(service, path string) *obs.Span {
	sp := obs.NewSpan("exchange")
	sp.Set("service", service)
	sp.Set("path", path)
	return sp
}

// executeTree is the buffered tree path: materialize the source response,
// forward the shipment subtree, materialize the target response.
func (a *Agency) executeTree(service string, plan *Plan, opts ExecOptions) (*Report, error) {
	link := opts.Link
	src, tgt := a.parties(service)
	if src == nil || tgt == nil {
		return nil, fmt.Errorf("registry: service %q not fully registered", service)
	}
	progXML, err := wire.EncodeProgram(plan.Program, plan.Assign)
	if err != nil {
		return nil, err
	}
	codec, err := opts.effectiveCodec()
	if err != nil {
		return nil, err
	}
	trace := newTrace(service, "tree")
	report := &Report{Plan: plan, Codec: codec.String(), Trace: trace}

	reqS := &xmltree.Node{Name: "ExecuteSource"}
	if opts.Codec != "" {
		reqS.SetAttr("codec", opts.Codec)
	}
	if opts.Format != "" {
		reqS.SetAttr("format", opts.Format)
	}
	if opts.FilterElem != "" {
		reqS.SetAttr("filterElem", opts.FilterElem)
		reqS.SetAttr("filterValue", opts.FilterValue)
	}
	if opts.Filter != "" {
		reqS.SetAttr("filter", opts.Filter)
	}
	if opts.Pipelined {
		reqS.SetAttr("pipelined", "1")
	}
	reqS.AddKid(progXML)
	cs := opts.client(src.URL)
	srcSpan := trace.Child("source")
	respS, err := cs.Call("ExecuteSource", reqS)
	srcSpan.End()
	if err != nil {
		srcSpan.Set("err", err.Error())
		return report, fmt.Errorf("registry: source execution: %w", err)
	}
	if v, ok := respS.Attr("queryMillis"); ok {
		report.SourceTime = parseMillis(v)
	}
	var shipment *xmltree.Node
	for _, k := range respS.Kids {
		if k.Name == "shipment" {
			shipment = k
		}
	}
	if shipment == nil {
		return report, fmt.Errorf("registry: source returned no shipment")
	}
	for _, ix := range shipment.Kids {
		if format, _ := ix.Attr("format"); format != "" {
			// Encoded instances (feed, bin) carry their payload as text.
			report.WireBytes += int64(len(ix.Text))
			continue
		}
		for _, rec := range ix.Kids {
			report.WireBytes += xmltree.SizeWith(rec, xmltree.WriteOptions{EmitAllIDs: true})
		}
	}
	report.ShipBytes = report.WireBytes
	report.ShipTime = link.TransferTime(report.ShipBytes)

	reqT := &xmltree.Node{Name: "ExecuteTarget"}
	if opts.Pipelined {
		reqT.SetAttr("pipelined", "1")
	}
	// Re-encode the program for the target side.
	progXML2, err := wire.EncodeProgram(plan.Program, plan.Assign)
	if err != nil {
		return nil, err
	}
	reqT.AddKid(progXML2)
	reqT.AddKid(shipment)
	ct := opts.client(tgt.URL)
	tgtSpan := trace.Child("deliver")
	respT, err := ct.Call("ExecuteTarget", reqT)
	tgtSpan.End()
	if err != nil {
		tgtSpan.Set("err", err.Error())
		return report, fmt.Errorf("registry: target execution: %w", err)
	}
	if v, ok := respT.Attr("execMillis"); ok {
		report.TargetTime = parseMillis(v)
	}
	if v, ok := respT.Attr("writeMillis"); ok {
		report.WriteTime = parseMillis(v)
	}
	if v, ok := respT.Attr("indexMillis"); ok {
		report.IndexTime = parseMillis(v)
	}
	return report, nil
}

func parseMillis(s string) time.Duration {
	var f float64
	fmt.Sscanf(s, "%g", &f)
	return time.Duration(f * float64(time.Millisecond))
}
