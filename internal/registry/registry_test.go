package registry

import (
	"net/http/httptest"
	"strings"
	"testing"

	"xdx/internal/core"
	"xdx/internal/endpoint"
	"xdx/internal/ldapstore"
	"xdx/internal/netsim"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/wsdlx"
	"xdx/internal/xmltree"
)

const customerXML = `<Customer><CustName>Ann</CustName>` +
	`<Order><Service><ServiceName>local</ServiceName>` +
	`<Line><TelNo>555-0001</TelNo><Switch><SwitchID>sw1</SwitchID></Switch>` +
	`<Feature><FeatureID>callerID</FeatureID></Feature>` +
	`<Feature><FeatureID>voicemail</FeatureID></Feature></Line>` +
	`</Service></Order>` +
	`<Order><Service><ServiceName>ld</ServiceName>` +
	`<Line><TelNo>555-0003</TelNo><Switch><SwitchID>sw1</SwitchID></Switch>` +
	`<Feature><FeatureID>callerID</FeatureID></Feature></Line>` +
	`</Service></Order></Customer>`

func customerDoc(t testing.TB) *xmltree.Node {
	t.Helper()
	doc, err := xmltree.Parse(strings.NewReader(customerXML))
	if err != nil {
		t.Fatal(err)
	}
	core.AssignIDs(doc)
	return doc
}

func sFragmentation(t testing.TB, sch *schema.Schema) *core.Fragmentation {
	t.Helper()
	fr, err := core.FromPartition(sch, "S-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName"},
		{"Line", "TelNo", "Feature", "FeatureID"},
		{"Switch", "SwitchID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func tFragmentation(t testing.TB, sch *schema.Schema) *core.Fragmentation {
	t.Helper()
	fr, err := core.FromPartition(sch, "T-fragmentation", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func wsdlFor(t testing.TB, sch *schema.Schema, fr *core.Fragmentation, addr string) []byte {
	t.Helper()
	d := &wsdlx.Definitions{
		Name:            "CustomerInfo",
		TargetNamespace: "http://customers.wsdl",
		ServiceName:     "CustomerInfoService",
		PortName:        "CustomerInfoPort",
		Address:         addr,
		Schema:          sch,
		Fragmentations:  []*core.Fragmentation{fr},
	}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// startExchange wires a relational source and target into live endpoints
// and a registered agency.
func startExchange(t testing.TB, alg Algorithm) (*Agency, *Plan, *relstore.Store, func()) {
	t.Helper()
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	tFr := tFragmentation(t, sch)

	srcStore, err := relstore.NewStore(sFr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcStore.LoadDocument(customerDoc(t)); err != nil {
		t.Fatal(err)
	}
	tgtStore, err := relstore.NewStore(tFr)
	if err != nil {
		t.Fatal(err)
	}

	srcEP := endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil)
	tgtEP := endpoint.New("T", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil)
	srcSrv := httptest.NewServer(srcEP.Handler())
	tgtSrv := httptest.NewServer(tgtEP.Handler())

	ag := New()
	if err := ag.Register("CustomerInfoService", RoleSource, wsdlFor(t, sch, sFr, srcSrv.URL), srcSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("CustomerInfoService", RoleTarget, wsdlFor(t, sch, tFr, tgtSrv.URL), tgtSrv.URL); err != nil {
		t.Fatal(err)
	}
	plan, err := ag.Plan("CustomerInfoService", PlanOptions{Algorithm: alg})
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() { srcSrv.Close(); tgtSrv.Close() }
	return ag, plan, tgtStore, cleanup
}

func TestEndToEndExchangeGreedy(t *testing.T) {
	ag, plan, tgtStore, done := startExchange(t, AlgGreedy)
	defer done()
	if plan.Program == nil || !plan.Assign.Complete() {
		t.Fatal("plan incomplete")
	}
	report, err := ag.Execute("CustomerInfoService", plan, netsim.Loopback())
	if err != nil {
		t.Fatal(err)
	}
	if report.ShipBytes <= 0 {
		t.Errorf("no bytes shipped")
	}
	// The target store now holds the document; reassemble and compare.
	insts := map[string]*core.Instance{}
	for _, f := range tgtStore.Layout.Fragments {
		in, err := tgtStore.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		insts[f.Name] = in
	}
	back, err := core.Document(tgtStore.Layout, insts)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualShape(customerDoc(t), back) {
		t.Errorf("document changed in transit:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestEndToEndExchangePipelined(t *testing.T) {
	// The same exchange with both endpoints running the streaming slice
	// executor; target contents must be identical to the batch run.
	ag, plan, tgtStore, done := startExchange(t, AlgGreedy)
	defer done()
	report, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{Link: netsim.Loopback(), Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.ShipBytes <= 0 {
		t.Errorf("no bytes shipped")
	}
	insts := map[string]*core.Instance{}
	for _, f := range tgtStore.Layout.Fragments {
		in, err := tgtStore.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		insts[f.Name] = in
	}
	back, err := core.Document(tgtStore.Layout, insts)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualShape(customerDoc(t), back) {
		t.Errorf("document changed in pipelined transit:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestEndToEndExchangeFeedFormat(t *testing.T) {
	// The same exchange with sorted-feed shipments (§4.1's feed option):
	// smaller on the wire, identical target contents.
	ag, plan, tgtStore, done := startExchange(t, AlgGreedy)
	defer done()
	feedReport, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{Link: netsim.Loopback(), Format: "feed"})
	if err != nil {
		t.Fatal(err)
	}
	insts := map[string]*core.Instance{}
	for _, f := range tgtStore.Layout.Fragments {
		in, err := tgtStore.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		insts[f.Name] = in
	}
	back, err := core.Document(tgtStore.Layout, insts)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualShape(customerDoc(t), back) {
		t.Errorf("feed exchange changed the document")
	}
	// Compare against XML-format shipping volume on a fresh exchange.
	ag2, plan2, _, done2 := startExchange(t, AlgGreedy)
	defer done2()
	xmlReport, err := ag2.Execute("CustomerInfoService", plan2, netsim.Loopback())
	if err != nil {
		t.Fatal(err)
	}
	if feedReport.ShipBytes >= xmlReport.ShipBytes {
		t.Errorf("feed shipment (%d bytes) not smaller than XML (%d bytes)",
			feedReport.ShipBytes, xmlReport.ShipBytes)
	}
}

func TestEndToEndExchangeOptimal(t *testing.T) {
	ag, plan, tgtStore, done := startExchange(t, AlgOptimal)
	defer done()
	report, err := ag.Execute("CustomerInfoService", plan, netsim.PaperInternet())
	if err != nil {
		t.Fatal(err)
	}
	if report.ShipTime <= 0 {
		t.Errorf("paper link must model transfer time")
	}
	if report.Total() <= 0 {
		t.Errorf("total time empty")
	}
	if tgtStore.Rows() == 0 {
		t.Errorf("target store empty after exchange")
	}
}

func TestExchangeToLDAPDumbClient(t *testing.T) {
	// The §1.1 scenario: relational source, LDAP target that cannot
	// combine. All combines must be placed at the source.
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	tFr := tFragmentation(t, sch)
	srcStore, _ := relstore.NewStore(sFr)
	if err := srcStore.LoadDocument(customerDoc(t)); err != nil {
		t.Fatal(err)
	}
	dir := ldapstore.NewStore(tFr)
	srcEP := endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil)
	tgtEP := endpoint.New("T", &endpoint.LDAPBackend{Store: dir, Speed: 10}, nil)
	srcSrv := httptest.NewServer(srcEP.Handler())
	defer srcSrv.Close()
	tgtSrv := httptest.NewServer(tgtEP.Handler())
	defer tgtSrv.Close()

	ag := New()
	ag.Register("svc", RoleSource, wsdlFor(t, sch, sFr, srcSrv.URL), srcSrv.URL)
	ag.Register("svc", RoleTarget, wsdlFor(t, sch, tFr, tgtSrv.URL), tgtSrv.URL)
	plan, err := ag.Plan("svc", PlanOptions{Algorithm: AlgOptimal})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range plan.Program.Ops {
		if op.Kind == core.OpCombine && plan.Assign[op.ID] == core.LocTarget {
			t.Fatalf("combine placed at the dumb LDAP client")
		}
	}
	if _, err := ag.Execute("svc", plan, netsim.Loopback()); err != nil {
		t.Fatal(err)
	}
	if dir.Dir.Len() == 0 {
		t.Error("directory empty after exchange")
	}
	if got := len(dir.Dir.Search("", "CUSTOMER_T")); got != 1 {
		t.Errorf("customers in directory = %d, want 1", got)
	}
	if got := len(dir.Dir.Search("", "FEATURE_T")); got != 3 {
		t.Errorf("features in directory = %d, want 3", got)
	}
}

func TestExchangeWithServiceArgument(t *testing.T) {
	// §3.2: the service takes an argument that subsets the data; the source
	// filters before shipping. Filtering on a CustName that does not exist
	// must deliver nothing; filtering on "Ann" delivers everything (the
	// fixture has one customer).
	ag, plan, tgtStore, done := startExchange(t, AlgGreedy)
	defer done()
	if _, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{
		Link: netsim.Loopback(), FilterElem: "CustName", FilterValue: "Nobody",
	}); err != nil {
		t.Fatal(err)
	}
	if tgtStore.Rows() != 0 {
		t.Errorf("filter on missing customer delivered %d rows", tgtStore.Rows())
	}
	tgtStore.Clear()
	report, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{
		Link: netsim.Loopback(), FilterElem: "CustName", FilterValue: "Ann",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tgtStore.Rows() == 0 || report.ShipBytes == 0 {
		t.Errorf("filter on existing customer delivered nothing")
	}
}

func TestVerifyPlanProbesEndpoints(t *testing.T) {
	ag, plan, _, done := startExchange(t, AlgGreedy)
	defer done()
	probed, total, err := ag.VerifyPlan("CustomerInfoService", plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(probed) != len(plan.Program.Ops) {
		t.Fatalf("probed %d ops, want %d", len(probed), len(plan.Program.Ops))
	}
	if total <= 0 {
		t.Errorf("total probed cost = %v", total)
	}
	for _, p := range probed {
		if p.Cost < 0 {
			t.Errorf("op %s probed negative cost", p.Op)
		}
		if p.Loc != plan.Assign[p.Op.ID] {
			t.Errorf("op %s probed at wrong location", p.Op)
		}
	}
}

func TestRegisterDefaultsToTrivialFragmentation(t *testing.T) {
	sch := schema.CustomerInfo()
	d := &wsdlx.Definitions{
		Name: "x", TargetNamespace: "ns", ServiceName: "svc",
		PortName: "p", Address: "http://nowhere", Schema: sch,
	}
	data, _ := d.Marshal()
	ag := New()
	if err := ag.Register("svc", RoleSource, data, "http://nowhere"); err != nil {
		t.Fatal(err)
	}
	p := ag.Party("svc", RoleSource)
	if p.Fragmentation.Len() != 1 {
		t.Errorf("default fragmentation should be the whole schema, got %d fragments", p.Fragmentation.Len())
	}
	if got := ag.Services(); len(got) != 1 || got[0] != "svc" {
		t.Errorf("Services = %v", got)
	}
}

func TestRegisterFromEndpoint(t *testing.T) {
	// The agency pulls the WSDL (with its fragmentation) straight from the
	// endpoint — no document push needed.
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	srcStore, err := relstore.NewStore(sFr)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := wsdlx.Parse(strings.NewReader(string(wsdlFor(t, sch, sFr, "http://placeholder"))))
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, defs)
	srv := httptest.NewServer(ep.Handler())
	defer srv.Close()
	ag := New()
	if err := ag.RegisterFromEndpoint("svc", RoleSource, srv.URL); err != nil {
		t.Fatal(err)
	}
	p := ag.Party("svc", RoleSource)
	if p == nil || p.Fragmentation.Len() != 5 {
		t.Fatalf("fetched registration wrong: %+v", p)
	}
	// Fetching from a dead endpoint fails.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	if err := ag.RegisterFromEndpoint("svc2", RoleSource, deadURL); err == nil {
		t.Error("fetch from dead endpoint must fail")
	}
}

func TestPlanRequiresBothParties(t *testing.T) {
	ag := New()
	if _, err := ag.Plan("missing", PlanOptions{}); err == nil {
		t.Error("plan without registrations must fail")
	}
}

func TestDeregister(t *testing.T) {
	sch := schema.CustomerInfo()
	ag := New()
	data := wsdlFor(t, sch, sFragmentation(t, sch), "http://x")
	ag.Register("svc", RoleSource, data, "http://x")
	ag.Register("svc", RoleTarget, data, "http://x")
	if !ag.Deregister("svc", RoleSource) {
		t.Error("deregister source should report removal")
	}
	if ag.Party("svc", RoleSource) != nil {
		t.Error("source still registered")
	}
	if ag.Party("svc", RoleTarget) == nil {
		t.Error("target should remain")
	}
	if !ag.Deregister("svc", "") {
		t.Error("deregister all should report removal")
	}
	if len(ag.Services()) != 0 {
		t.Error("service should be gone")
	}
	if ag.Deregister("svc", RoleSource) || ag.Deregister("nope", "") {
		t.Error("deregister of missing entries should report false")
	}
}

func TestRegisterRejectsBadWSDL(t *testing.T) {
	ag := New()
	if err := ag.Register("svc", RoleSource, []byte("<junk/>"), "u"); err == nil {
		t.Error("bad WSDL must be rejected")
	}
}
