package registry

// Reliable exchange driving. The plain drivers treat every SOAP call as
// fire-once: a dropped connection, a stalled stream, or an injected 5xx
// aborts the whole exchange. With ExecOptions.Reliability set, the agency
// drives the exchange through internal/reliable instead:
//
//   - the source call is retried wholesale under backoff — it is idempotent
//     (the source recomputes its slice), so each attempt decodes into a
//     fresh map;
//   - the target delivery becomes a resumable session: the shipment travels
//     as seq-numbered chunks, a torn delivery is resumed from the chunk
//     checkpoint the target acked via SessionStatus, and the target's
//     ledger dedups any overlap, so the loaded instances are byte-identical
//     to a fault-free run;
//   - every attempt passes the endpoint's circuit breaker, and the whole
//     exchange shares one retry budget and deadline.
//
// Reliability implies the streaming wire path: resume granularity is the
// chunk, and chunks ride on the streaming shipment serialization.

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"xdx/internal/core"
	"xdx/internal/netsim"
	"xdx/internal/obs"
	"xdx/internal/reliable"
	"xdx/internal/soap"
	"xdx/internal/wire"
	"xdx/internal/xmltree"
)

// wireExchangeObs registers the retry and breaker hooks of one exchange
// onto the options' observability sinks. A shared breaker set (one the
// caller passed in via Config.Breakers) is left alone — its owner wires
// it once, so per-exchange callbacks don't stack up.
func wireExchangeObs(ex *reliable.Exchange, opts ExecOptions) {
	met, log := opts.Metrics, obs.OrNop(opts.Logger)
	if met == nil && opts.Logger == nil {
		return
	}
	ex.Retrier().OnRetry = func(op string, try int, delay time.Duration, err error) {
		met.Counter("exchange.retries").Inc()
		log.Log(obs.LevelWarn, "retrying call",
			"op", op, "try", try, "delayMillis", delay.Milliseconds(), "err", err.Error())
	}
	if !ex.SharedBreakers() {
		ex.Breakers().OnStateChange(func(url string, from, to reliable.BreakerState) {
			met.Counter("exchange.breaker.transitions").Inc()
			log.Log(obs.LevelInfo, "breaker state change",
				"url", url, "from", from.String(), "to", to.String())
		})
	}
}

// executeReliable drives an exchange end-to-end under the reliability
// config: retried source execution, resumable chunked target delivery.
func (a *Agency) executeReliable(service string, plan *Plan, opts ExecOptions) (*Report, error) {
	src, tgt := a.parties(service)
	if src == nil || tgt == nil {
		return nil, fmt.Errorf("registry: service %q not fully registered", service)
	}
	sch := src.Fragmentation.Schema
	progXML, err := wire.EncodeProgram(plan.Program, plan.Assign)
	if err != nil {
		return nil, err
	}
	codec, err := opts.effectiveCodec()
	if err != nil {
		return nil, err
	}
	trace := newTrace(service, "reliable")
	report := &Report{Plan: plan, Codec: codec.String(), Trace: trace}
	ex := reliable.NewExchange(opts.Reliability)
	wireExchangeObs(ex, opts)

	frags := map[string]*core.Fragment{}
	for _, op := range plan.Program.Ops {
		frags[op.Out.Name] = op.Out
		for _, p := range op.Parts {
			frags[p.Name] = p
		}
	}
	for _, ed := range plan.Program.Edges {
		frags[ed.Frag.Name] = ed.Frag
	}
	lookup := func(name string) *core.Fragment { return frags[name] }

	reqS := &xmltree.Node{Name: "ExecuteSource"}
	reqS.SetAttr("stream", "1")
	if opts.Codec != "" {
		reqS.SetAttr("codec", opts.Codec)
	}
	if opts.Format != "" {
		reqS.SetAttr("format", opts.Format)
	}
	if opts.FilterElem != "" {
		reqS.SetAttr("filterElem", opts.FilterElem)
		reqS.SetAttr("filterValue", opts.FilterValue)
	}
	if opts.Filter != "" {
		reqS.SetAttr("filter", opts.Filter)
	}
	if opts.Pipelined {
		reqS.SetAttr("pipelined", "1")
	}
	reqS.AddKid(progXML)

	// Phase 1: source execution, retried wholesale. The source recomputes
	// its slice on every attempt, so a fresh decoder per try keeps torn
	// partial shipments out of the result.
	var inbound map[string]*core.Instance
	var sourceMillis, answeredCodec string
	cs := ex.Client(src.URL)
	advertise(cs, codec)
	srcSpan := trace.Child("source")
	err = ex.Do("ExecuteSource", src.URL, func(try int) error {
		at := srcSpan.Child("attempt")
		at.Set("try", strconv.Itoa(try))
		defer at.End()
		dec := wire.NewShipmentDecoder(sch, lookup)
		dec.Workers = opts.ParallelChunks
		dec.Met = opts.Metrics
		scanS := &sourceRespScan{dec: dec}
		if err := cs.CallStream("ExecuteSource", func(w io.Writer) error {
			return xmltree.Write(w, reqS, xmltree.WriteOptions{EmitAllIDs: true})
		}, scanS); err != nil {
			at.Set("err", err.Error())
			return err
		}
		if !scanS.sawShipment {
			at.Set("err", "no shipment")
			return reliable.Permanent(fmt.Errorf("registry: source returned no shipment"))
		}
		m, err := dec.Result()
		if err != nil {
			// The response scan completed, so this is a protocol defect,
			// not a torn stream; retrying would repeat it.
			at.Set("err", err.Error())
			return reliable.Permanent(err)
		}
		inbound, sourceMillis, answeredCodec = m, scanS.queryMillis, scanS.codec
		return nil
	})
	srcSpan.End()
	if err != nil {
		report.Retries = ex.Retries()
		return report, fmt.Errorf("registry: source execution: %w", err)
	}
	if answeredCodec != "" {
		report.Codec = answeredCodec
	}
	report.SourceTime = parseMillis(sourceMillis)
	report.PayloadBytes = wire.ShipmentBytes(inbound)

	// Phase 2: resumable target delivery. The shipment is rechunked at the
	// configured granularity; each redelivery first asks the target which
	// chunk it acked last and resumes emission there. ShipBytes counts the
	// actual wire bytes across all attempts — retransmission is a real
	// communication cost.
	ct := ex.Client(tgt.URL)
	stream, epoch := service, deltaEpoch(src, tgt)

	// deliver drives one resumable session carrying the given record and
	// tombstone chunks; the delta and full re-ship paths share it.
	deliver := func(sessionID string, chunks []reliable.Chunk, tombs []tombChunk, delta bool) (*xmltree.Node, error) {
		open := `<ExecuteTarget session="` + sessionID + `"`
		if opts.Pipelined {
			open += ` pipelined="1"`
		}
		if opts.Delta {
			// Every sessioned delivery of a delta-enabled exchange names its
			// stream and epoch, so the target retains the applied snapshot
			// as the base the next delta patches.
			open += ` stream="` + attrEscape(stream) + `" epoch="` + epoch + `"`
		}
		if delta {
			open += ` delta="1"`
		}
		open += `>`
		var respT *xmltree.Node
		delSpan := trace.Child("deliver")
		defer delSpan.End()
		delSpan.Set("session", sessionID)
		delSpan.Set("chunks", strconv.Itoa(len(chunks)+len(tombs)))
		if delta {
			delSpan.Set("delta", "1")
		}
		next := int64(0)
		err := ex.Do("ExecuteTarget", tgt.URL, func(try int) error {
			at := delSpan.Child("attempt")
			at.Set("try", strconv.Itoa(try))
			defer at.End()
			if try > 0 {
				probe := at.Child("probe")
				next = resumePoint(ct.Call("SessionStatus", sessionStatusReq(sessionID)))
				probe.Set("next", strconv.FormatInt(next, 10))
				probe.End()
				if next > 0 {
					report.Resumes++
					opts.Metrics.Counter("exchange.resumes").Inc()
				}
			}
			tb := &xmltree.TreeBuilder{}
			if err := ct.CallStream("ExecuteTarget", func(w io.Writer) error {
				if _, err := io.WriteString(w, open); err != nil {
					return err
				}
				if err := xmltree.Write(w, progXML, xmltree.WriteOptions{EmitAllIDs: true}); err != nil {
					return err
				}
				m := netsim.NewMeter(w)
				// Accumulated on every exit path: an attempt torn mid-chunk
				// still spent its bytes on the wire, and WireBytes counts the
				// retransmission cost across all attempts.
				defer func() {
					report.WireBytes += m.Bytes()
					report.ShipBytes = report.WireBytes
				}()
				sw := wire.NewShipmentWriterCodec(m, sch, codec)
				sw.SetWorkers(opts.ParallelChunks)
				sw.SetObs(opts.Metrics)
				sw.SetDelta(delta)
				for _, c := range chunks {
					if c.Seq < next {
						continue // acked on a prior attempt
					}
					if err := sw.EmitChunk(c.Key, c.Frag, c.Recs, c.Seq); err != nil {
						sw.Close()
						return err
					}
				}
				for _, tc := range tombs {
					if tc.seq < next {
						continue
					}
					if err := sw.EmitTombstones(tc.key, tc.ids, tc.seq); err != nil {
						sw.Close()
						return err
					}
				}
				if err := sw.Close(); err != nil {
					return err
				}
				_, err := io.WriteString(w, `</ExecuteTarget>`)
				return err
			}, tb); err != nil {
				at.Set("err", err.Error())
				if soap.IsColdDelta(err) {
					// The target has no base to patch; no retry of this
					// session can warm it. Surface to the fallback below.
					return reliable.Permanent(err)
				}
				return err
			}
			if tb.Root() == nil || tb.Root().Name != "ExecuteTargetResponse" {
				at.Set("err", "no response")
				return reliable.Permanent(fmt.Errorf("registry: target returned no response"))
			}
			respT = tb.Root()
			return nil
		})
		if err != nil {
			return nil, err
		}
		// The response is in hand, so the target's session state (ledger,
		// stored replay response) has served its purpose; release it now
		// rather than holding it for the store's full idle window. Best
		// effort — the target's sweeper collects it if this call is lost.
		commit := trace.Child("commit")
		ct.Call("EndSession", endSessionReq(sessionID))
		commit.End()
		return respT, nil
	}

	fullChunks := func() []reliable.Chunk { return reliable.ChunkShipment(inbound, ex.ChunkSize()) }
	var respT *xmltree.Node
	var hashes map[string]reliable.EdgeHashes
	hashesOK := false
	log := obs.OrNop(opts.Logger)
	if opts.Delta {
		hashes, hashesOK = reliable.HashShipment(inbound)
	}
	switch {
	case !opts.Delta:
		respT, err = deliver(ex.SessionID(), fullChunks(), nil, false)
	case !hashesOK:
		// Records without IDs cannot be reconciled; this shipment shape is
		// never delta-able, so don't bother warming the index either.
		opts.Metrics.Counter("exchange.delta.unkeyed").Inc()
		log.Log(obs.LevelInfo, "delta disabled: shipment carries records without IDs", "service", service)
		respT, err = deliver(ex.SessionID(), fullChunks(), nil, false)
	default:
		base, warm := a.recon.Snapshot(stream, epoch)
		if warm {
			warm = targetDeltaWarm(ct, stream, epoch)
		}
		if !warm {
			// Cold on either side (first exchange, restart, or epoch
			// change): full re-ship, then warm the index for next time.
			opts.Metrics.Counter("exchange.delta.cold").Inc()
			respT, err = deliver(ex.SessionID(), fullChunks(), nil, false)
		} else {
			d := reliable.DiffShipment(inbound, base)
			chunks := reliable.ChunkShipment(d.Ship, ex.ChunkSize())
			seq := int64(len(chunks))
			var tombs []tombChunk
			for _, key := range sortedTombKeys(d.Tombs) {
				tombs = append(tombs, tombChunk{key: key, ids: d.Tombs[key], seq: seq})
				seq++
			}
			report.Delta, report.DeltaRecords, report.TombstoneRecords = true, d.Records, d.Tombstones
			respT, err = deliver(ex.SessionID(), chunks, tombs, true)
			if err != nil && soap.IsColdDelta(err) {
				// The target lost its base between the warm probe and the
				// delivery (sweep or restart mid-flight). Full re-ship on a
				// fresh session — the dead session's ledger state must not
				// skip chunks of a differently-numbered shipment.
				opts.Metrics.Counter("exchange.delta.fallbacks").Inc()
				log.Log(obs.LevelWarn, "delta fell back to full re-ship: target base cold", "service", service)
				report.Delta, report.DeltaRecords, report.TombstoneRecords = false, 0, 0
				respT, err = deliver(ex.SessionID(), fullChunks(), nil, false)
			} else if err == nil {
				opts.Metrics.Counter("exchange.delta.exchanges").Inc()
				opts.Metrics.Counter("exchange.delta.records").Add(int64(d.Records))
				opts.Metrics.Counter("exchange.delta.tombstones").Add(int64(d.Tombstones))
			}
		}
	}
	report.Retries = ex.Retries()
	if err != nil {
		return report, fmt.Errorf("registry: target execution: %w", err)
	}
	if opts.Delta && hashesOK {
		// The delivery succeeded, so the target's snapshot now equals the
		// fresh shipment: commit its hashes as the next exchange's base.
		a.recon.Commit(stream, epoch, hashes)
	}
	report.ShipTime = opts.Link.TransferTime(report.ShipBytes)
	if v, ok := respT.Attr("execMillis"); ok {
		report.TargetTime = parseMillis(v)
	}
	if v, ok := respT.Attr("writeMillis"); ok {
		report.WriteTime = parseMillis(v)
	}
	if v, ok := respT.Attr("indexMillis"); ok {
		report.IndexTime = parseMillis(v)
	}
	if v, ok := respT.Attr("deduped"); ok {
		report.DedupedRecords, _ = strconv.ParseInt(v, 10, 64)
	}
	return report, nil
}

// tombChunk is one pending tombstone emission: the deleted record IDs of
// an edge, sequenced after the delta's record chunks so the session ledger
// checkpoints deletions like any chunk.
type tombChunk struct {
	key string
	ids []string
	seq int64
}

// sortedTombKeys orders tombstone edges deterministically, matching
// ChunkShipment's sorted-key sequencing.
func sortedTombKeys(tombs map[string][]string) []string {
	keys := make([]string, 0, len(tombs))
	for k := range tombs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// deltaEpoch fingerprints the fragmentation agreement a reconciliation
// index is valid under: both parties' fragment signatures (and URLs). Any
// re-registration that changes a fragment set or endpoint changes the
// epoch, and both sides fall back to a full re-ship. The filter expression
// is deliberately NOT part of the epoch: a changed filter surfaces as
// adds/deletes in the content diff, which is exactly what a delta ships.
func deltaEpoch(src, tgt *Party) string {
	var b strings.Builder
	writeFragSig(&b, src)
	b.WriteByte('\x1f')
	writeFragSig(&b, tgt)
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return strconv.FormatUint(h.Sum64(), 16)
}

// targetDeltaWarm asks the target whether it holds a base snapshot for the
// stream at this epoch. Any failure reads as cold — the fallback is a full
// re-ship, which is always correct.
func targetDeltaWarm(ct *soap.Client, stream, epoch string) bool {
	req := &xmltree.Node{Name: "DeltaStatus"}
	req.SetAttr("stream", stream)
	req.SetAttr("epoch", epoch)
	resp, err := ct.Call("DeltaStatus", req)
	if err != nil || resp == nil {
		return false
	}
	v, _ := resp.Attr("warm")
	return v == "1"
}

// attrEscape escapes a string for embedding in a double-quoted XML
// attribute of a hand-built open tag.
var attrEscape = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;").Replace

// sessionStatusReq builds a SessionStatus probe for a session.
func sessionStatusReq(id string) *xmltree.Node {
	req := &xmltree.Node{Name: "SessionStatus"}
	req.SetAttr("session", id)
	return req
}

// endSessionReq builds the EndSession release for a session.
func endSessionReq(id string) *xmltree.Node {
	req := &xmltree.Node{Name: "EndSession"}
	req.SetAttr("session", id)
	return req
}

// resumePoint interprets a SessionStatus reply as the chunk to resume
// emission from. The reported checkpoint is adopted unconditionally —
// even when it is lower than what a previous attempt acked: a target
// that lost the session in between (idle sweep, endpoint restart)
// answers known="0" with a zero checkpoint, and resending chunks it
// already committed is safe (AdmitChunk and the record ledger dedup),
// whereas skipping chunks a reset ledger never saw would silently drop
// records while the exchange reports success. A failed or unparsable
// probe resumes from zero for the same reason.
func resumePoint(st *xmltree.Node, err error) int64 {
	if err != nil || st == nil {
		return 0
	}
	if v, _ := st.Attr("known"); v == "0" {
		return 0
	}
	v, _ := st.Attr("next")
	n, perr := strconv.ParseInt(v, 10, 64)
	if perr != nil || n < 0 {
		return 0
	}
	return n
}
