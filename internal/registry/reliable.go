package registry

// Reliable exchange driving. The plain drivers treat every SOAP call as
// fire-once: a dropped connection, a stalled stream, or an injected 5xx
// aborts the whole exchange. With ExecOptions.Reliability set, the agency
// drives the exchange through internal/reliable instead:
//
//   - the source call is retried wholesale under backoff — it is idempotent
//     (the source recomputes its slice), so each attempt decodes into a
//     fresh map;
//   - the target delivery becomes a resumable session: the shipment travels
//     as seq-numbered chunks, a torn delivery is resumed from the chunk
//     checkpoint the target acked via SessionStatus, and the target's
//     ledger dedups any overlap, so the loaded instances are byte-identical
//     to a fault-free run;
//   - every attempt passes the endpoint's circuit breaker, and the whole
//     exchange shares one retry budget and deadline.
//
// Reliability implies the streaming wire path: resume granularity is the
// chunk, and chunks ride on the streaming shipment serialization.

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"xdx/internal/core"
	"xdx/internal/netsim"
	"xdx/internal/obs"
	"xdx/internal/reliable"
	"xdx/internal/wire"
	"xdx/internal/xmltree"
)

// wireExchangeObs registers the retry and breaker hooks of one exchange
// onto the options' observability sinks. A shared breaker set (one the
// caller passed in via Config.Breakers) is left alone — its owner wires
// it once, so per-exchange callbacks don't stack up.
func wireExchangeObs(ex *reliable.Exchange, opts ExecOptions) {
	met, log := opts.Metrics, obs.OrNop(opts.Logger)
	if met == nil && opts.Logger == nil {
		return
	}
	ex.Retrier().OnRetry = func(op string, try int, delay time.Duration, err error) {
		met.Counter("exchange.retries").Inc()
		log.Log(obs.LevelWarn, "retrying call",
			"op", op, "try", try, "delayMillis", delay.Milliseconds(), "err", err.Error())
	}
	if !ex.SharedBreakers() {
		ex.Breakers().OnStateChange(func(url string, from, to reliable.BreakerState) {
			met.Counter("exchange.breaker.transitions").Inc()
			log.Log(obs.LevelInfo, "breaker state change",
				"url", url, "from", from.String(), "to", to.String())
		})
	}
}

// executeReliable drives an exchange end-to-end under the reliability
// config: retried source execution, resumable chunked target delivery.
func (a *Agency) executeReliable(service string, plan *Plan, opts ExecOptions) (*Report, error) {
	src, tgt := a.parties(service)
	if src == nil || tgt == nil {
		return nil, fmt.Errorf("registry: service %q not fully registered", service)
	}
	sch := src.Fragmentation.Schema
	progXML, err := wire.EncodeProgram(plan.Program, plan.Assign)
	if err != nil {
		return nil, err
	}
	codec, err := opts.effectiveCodec()
	if err != nil {
		return nil, err
	}
	trace := newTrace(service, "reliable")
	report := &Report{Plan: plan, Codec: codec.String(), Trace: trace}
	ex := reliable.NewExchange(opts.Reliability)
	wireExchangeObs(ex, opts)

	frags := map[string]*core.Fragment{}
	for _, op := range plan.Program.Ops {
		frags[op.Out.Name] = op.Out
		for _, p := range op.Parts {
			frags[p.Name] = p
		}
	}
	for _, ed := range plan.Program.Edges {
		frags[ed.Frag.Name] = ed.Frag
	}
	lookup := func(name string) *core.Fragment { return frags[name] }

	reqS := &xmltree.Node{Name: "ExecuteSource"}
	reqS.SetAttr("stream", "1")
	if opts.Codec != "" {
		reqS.SetAttr("codec", opts.Codec)
	}
	if opts.Format != "" {
		reqS.SetAttr("format", opts.Format)
	}
	if opts.FilterElem != "" {
		reqS.SetAttr("filterElem", opts.FilterElem)
		reqS.SetAttr("filterValue", opts.FilterValue)
	}
	if opts.Pipelined {
		reqS.SetAttr("pipelined", "1")
	}
	reqS.AddKid(progXML)

	// Phase 1: source execution, retried wholesale. The source recomputes
	// its slice on every attempt, so a fresh decoder per try keeps torn
	// partial shipments out of the result.
	var inbound map[string]*core.Instance
	var sourceMillis, answeredCodec string
	cs := ex.Client(src.URL)
	advertise(cs, codec)
	srcSpan := trace.Child("source")
	err = ex.Do("ExecuteSource", src.URL, func(try int) error {
		at := srcSpan.Child("attempt")
		at.Set("try", strconv.Itoa(try))
		defer at.End()
		dec := wire.NewShipmentDecoder(sch, lookup)
		dec.Workers = opts.ParallelChunks
		dec.Met = opts.Metrics
		scanS := &sourceRespScan{dec: dec}
		if err := cs.CallStream("ExecuteSource", func(w io.Writer) error {
			return xmltree.Write(w, reqS, xmltree.WriteOptions{EmitAllIDs: true})
		}, scanS); err != nil {
			at.Set("err", err.Error())
			return err
		}
		if !scanS.sawShipment {
			at.Set("err", "no shipment")
			return reliable.Permanent(fmt.Errorf("registry: source returned no shipment"))
		}
		m, err := dec.Result()
		if err != nil {
			// The response scan completed, so this is a protocol defect,
			// not a torn stream; retrying would repeat it.
			at.Set("err", err.Error())
			return reliable.Permanent(err)
		}
		inbound, sourceMillis, answeredCodec = m, scanS.queryMillis, scanS.codec
		return nil
	})
	srcSpan.End()
	if err != nil {
		report.Retries = ex.Retries()
		return report, fmt.Errorf("registry: source execution: %w", err)
	}
	if answeredCodec != "" {
		report.Codec = answeredCodec
	}
	report.SourceTime = parseMillis(sourceMillis)
	report.PayloadBytes = wire.ShipmentBytes(inbound)

	// Phase 2: resumable target delivery. The shipment is rechunked at the
	// configured granularity; each redelivery first asks the target which
	// chunk it acked last and resumes emission there. ShipBytes counts the
	// actual wire bytes across all attempts — retransmission is a real
	// communication cost.
	chunks := reliable.ChunkShipment(inbound, ex.ChunkSize())
	sessionID := ex.SessionID()
	open := `<ExecuteTarget session="` + sessionID + `"`
	if opts.Pipelined {
		open += ` pipelined="1"`
	}
	open += `>`
	ct := ex.Client(tgt.URL)
	var respT *xmltree.Node
	delSpan := trace.Child("deliver")
	delSpan.Set("session", sessionID)
	delSpan.Set("chunks", strconv.Itoa(len(chunks)))
	next := int64(0)
	err = ex.Do("ExecuteTarget", tgt.URL, func(try int) error {
		at := delSpan.Child("attempt")
		at.Set("try", strconv.Itoa(try))
		defer at.End()
		if try > 0 {
			probe := at.Child("probe")
			next = resumePoint(ct.Call("SessionStatus", sessionStatusReq(sessionID)))
			probe.Set("next", strconv.FormatInt(next, 10))
			probe.End()
			if next > 0 {
				report.Resumes++
				opts.Metrics.Counter("exchange.resumes").Inc()
			}
		}
		tb := &xmltree.TreeBuilder{}
		if err := ct.CallStream("ExecuteTarget", func(w io.Writer) error {
			if _, err := io.WriteString(w, open); err != nil {
				return err
			}
			if err := xmltree.Write(w, progXML, xmltree.WriteOptions{EmitAllIDs: true}); err != nil {
				return err
			}
			m := netsim.NewMeter(w)
			// Accumulated on every exit path: an attempt torn mid-chunk
			// still spent its bytes on the wire, and WireBytes counts the
			// retransmission cost across all attempts.
			defer func() {
				report.WireBytes += m.Bytes()
				report.ShipBytes = report.WireBytes
			}()
			sw := wire.NewShipmentWriterCodec(m, sch, codec)
			sw.SetWorkers(opts.ParallelChunks)
			sw.SetObs(opts.Metrics)
			for _, c := range chunks {
				if c.Seq < next {
					continue // acked on a prior attempt
				}
				if err := sw.EmitChunk(c.Key, c.Frag, c.Recs, c.Seq); err != nil {
					sw.Close()
					return err
				}
			}
			if err := sw.Close(); err != nil {
				return err
			}
			_, err := io.WriteString(w, `</ExecuteTarget>`)
			return err
		}, tb); err != nil {
			at.Set("err", err.Error())
			return err
		}
		if tb.Root() == nil || tb.Root().Name != "ExecuteTargetResponse" {
			at.Set("err", "no response")
			return reliable.Permanent(fmt.Errorf("registry: target returned no response"))
		}
		respT = tb.Root()
		return nil
	})
	delSpan.End()
	report.Retries = ex.Retries()
	if err != nil {
		return report, fmt.Errorf("registry: target execution: %w", err)
	}
	// The response is in hand, so the target's session state (ledger,
	// stored replay response) has served its purpose; release it now
	// rather than holding it for the store's full idle window. Best
	// effort — the target's sweeper collects it if this call is lost.
	commit := trace.Child("commit")
	ct.Call("EndSession", endSessionReq(sessionID))
	commit.End()
	report.ShipTime = opts.Link.TransferTime(report.ShipBytes)
	if v, ok := respT.Attr("execMillis"); ok {
		report.TargetTime = parseMillis(v)
	}
	if v, ok := respT.Attr("writeMillis"); ok {
		report.WriteTime = parseMillis(v)
	}
	if v, ok := respT.Attr("indexMillis"); ok {
		report.IndexTime = parseMillis(v)
	}
	if v, ok := respT.Attr("deduped"); ok {
		report.DedupedRecords, _ = strconv.ParseInt(v, 10, 64)
	}
	return report, nil
}

// sessionStatusReq builds a SessionStatus probe for a session.
func sessionStatusReq(id string) *xmltree.Node {
	req := &xmltree.Node{Name: "SessionStatus"}
	req.SetAttr("session", id)
	return req
}

// endSessionReq builds the EndSession release for a session.
func endSessionReq(id string) *xmltree.Node {
	req := &xmltree.Node{Name: "EndSession"}
	req.SetAttr("session", id)
	return req
}

// resumePoint interprets a SessionStatus reply as the chunk to resume
// emission from. The reported checkpoint is adopted unconditionally —
// even when it is lower than what a previous attempt acked: a target
// that lost the session in between (idle sweep, endpoint restart)
// answers known="0" with a zero checkpoint, and resending chunks it
// already committed is safe (AdmitChunk and the record ledger dedup),
// whereas skipping chunks a reset ledger never saw would silently drop
// records while the exchange reports success. A failed or unparsable
// probe resumes from zero for the same reason.
func resumePoint(st *xmltree.Node, err error) int64 {
	if err != nil || st == nil {
		return 0
	}
	if v, _ := st.Attr("known"); v == "0" {
		return 0
	}
	v, _ := st.Attr("next")
	n, perr := strconv.ParseInt(v, 10, 64)
	if perr != nil || n < 0 {
		return 0
	}
	return n
}
