package registry

import (
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"xdx/internal/core"
	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/reliable"
	"xdx/internal/relstore"
	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

// faultSeeds is the fixed seed matrix the fault-injection e2e runs over
// (make soak widens it via XDX_FAULT_SEEDS). Every seed here injects at
// least one fault into the unreliable run, so the with/without comparison
// is meaningful for each.
var faultSeeds = []int64{1, 7, 12}

// soakSeeds resolves the seed matrix, honoring the XDX_FAULT_SEEDS
// override (comma-separated integers).
func soakSeeds(t testing.TB) []int64 {
	env := os.Getenv("XDX_FAULT_SEEDS")
	if env == "" {
		return faultSeeds
	}
	var out []int64
	for _, s := range strings.Split(env, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			t.Fatalf("bad XDX_FAULT_SEEDS entry %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

// startAuctionExchange wires the auction workload (the paper's §5 data,
// generated XMark-style) into a most-fragmented source and a
// least-fragmented target, registers both, and plans the exchange. The
// target's endpoint rides along so tests can inspect its session store.
func startAuctionExchange(t testing.TB) (*Agency, *Plan, *relstore.Store, *endpoint.Endpoint, func()) {
	t.Helper()
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 60_000, Seed: 42})
	sFr := core.MostFragmented(sch)
	tFr := core.LeastFragmented(sch)

	srcStore, err := relstore.NewStore(sFr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcStore.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	tgtStore, err := relstore.NewStore(tFr)
	if err != nil {
		t.Fatal(err)
	}

	srcEP := endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil)
	tgtEP := endpoint.New("T", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil)
	srcSrv := httptest.NewServer(srcEP.Handler())
	tgtSrv := httptest.NewServer(tgtEP.Handler())

	ag := New()
	if err := ag.Register("Auction", RoleSource, wsdlFor(t, sch, sFr, srcSrv.URL), srcSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := ag.Register("Auction", RoleTarget, wsdlFor(t, sch, tFr, tgtSrv.URL), tgtSrv.URL); err != nil {
		t.Fatal(err)
	}
	plan, err := ag.Plan("Auction", PlanOptions{Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}
	return ag, plan, tgtStore, tgtEP, func() { srcSrv.Close(); tgtSrv.Close() }
}

// assembleTarget reassembles the document a target store holds.
func assembleTarget(t testing.TB, st *relstore.Store) *xmltree.Node {
	t.Helper()
	insts := map[string]*core.Instance{}
	for _, f := range st.Layout.Fragments {
		in, err := st.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		insts[f.Name] = in
	}
	back, err := core.Document(st.Layout, insts)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// soakFaults is the fault mix of the e2e: a fifth of the connections drop,
// streams tear mid-flight, and the occasional plain-text 503 appears.
func soakFaults(seed int64) netsim.Faults {
	return netsim.Faults{
		Seed:         seed,
		DropProb:     0.2,
		TruncateProb: 0.3,
		HTTP5xxProb:  0.1,
		MaxTruncate:  48 << 10,
	}
}

// soakConfig is the reliability config of the e2e: fast backoff so the
// test stays quick, generous attempts/budget so the fixed seeds converge,
// and a breaker tuned not to give up on a deliberately lossy link.
func soakConfig(seed int64) *reliable.Config {
	return &reliable.Config{
		Seed:      seed,
		ChunkSize: 8,
		Policy: reliable.Policy{
			MaxAttempts: 12,
			BaseDelay:   time.Millisecond,
			MaxDelay:    4 * time.Millisecond,
			Budget:      64,
		},
		Breaker: reliable.BreakerConfig{FailureThreshold: 50, Cooldown: time.Millisecond},
	}
}

// TestReliableExchangeUnderInjectedFaults is the subsystem's acceptance
// check: over a link that drops 20% of connections and tears streams
// mid-flight (fixed seeds), a streamed auction exchange with reliability
// completes with target contents byte-identical to a fault-free run and
// reports retries; the same seeds without reliability kill the exchange.
// The matrix runs over the shipment codecs so torn-chunk recovery is
// exercised on the binary (and compressed) encodings too.
func TestReliableExchangeUnderInjectedFaults(t *testing.T) {
	// Fault-free baseline: what the target must hold afterwards.
	agA, planA, tgtA, _, doneA := startAuctionExchange(t)
	if _, err := agA.ExecuteOpts("Auction", planA, ExecOptions{Link: netsim.Loopback(), Streamed: true}); err != nil {
		t.Fatal(err)
	}
	want := assembleTarget(t, tgtA)
	doneA()

	for _, codec := range []string{"xml", "bin", "bin+flate"} {
		codec := codec
		t.Run("codec="+codec, func(t *testing.T) {
			// Clean reliable run: the ShipBytes floor. The faulted runs below
			// use the same chunked framing, so retransmission can only add
			// bytes — a report below this floor means torn attempts went
			// unmetered.
			agR, planR, _, _, doneR := startAuctionExchange(t)
			repR, err := agR.ExecuteOpts("Auction", planR, ExecOptions{
				Link: netsim.Loopback(), Reliability: soakConfig(1), Codec: codec,
			})
			if err != nil {
				t.Fatal(err)
			}
			baseShipBytes := repR.ShipBytes
			doneR()

			totalResumes := 0
			for _, seed := range soakSeeds(t) {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					if codec == "xml" {
						// Without reliability the same fault seed is fatal.
						// (Checked on the XML arm only: where a fault cuts
						// depends on stream length, so a leaner codec could
						// dodge the exact tear the seed injects.)
						agC, planC, _, _, doneC := startAuctionExchange(t)
						defer doneC()
						flC := netsim.NewFaultyLink(netsim.Loopback(), soakFaults(seed))
						if _, err := agC.ExecuteOpts("Auction", planC, ExecOptions{
							Link: netsim.Loopback(), Streamed: true, Transport: flC.RoundTripper(nil),
						}); err == nil {
							t.Fatal("unreliable exchange survived the fault seed")
						}
						if c := flC.Counts(); c.Drops+c.Truncates+c.HTTP5xx == 0 {
							t.Fatal("exchange failed but no fault was injected")
						}
					}

					// With reliability it completes, and the report shows the
					// work.
					agB, planB, tgtB, _, doneB := startAuctionExchange(t)
					defer doneB()
					flB := netsim.NewFaultyLink(netsim.Loopback(), soakFaults(seed))
					rep, err := agB.ExecuteOpts("Auction", planB, ExecOptions{
						Link:        netsim.Loopback(),
						Transport:   flB.RoundTripper(nil),
						Reliability: soakConfig(seed),
						Codec:       codec,
						// Faulted runs drive the parallel chunk pipelines so
						// torn-prefix recovery, the idempotency ledger, and
						// resumes are soaked with concurrent renders/parses.
						ParallelChunks: 4,
					})
					if err != nil {
						t.Fatalf("reliable exchange failed: %v (injected %+v)", err, flB.Counts())
					}
					if rep.Retries == 0 {
						t.Errorf("report shows no retries (injected %+v)", flB.Counts())
					}
					if rep.ShipBytes < baseShipBytes {
						t.Errorf("ShipBytes = %d under faults, below the clean floor %d — torn attempts went unmetered",
							rep.ShipBytes, baseShipBytes)
					}
					totalResumes += rep.Resumes
					got := assembleTarget(t, tgtB)
					if !xmltree.Equal(want, got) {
						t.Error("faulted run's target differs from the fault-free run")
					}
				})
			}
			if totalResumes == 0 {
				t.Error("no delivery across the seed matrix resumed from a checkpoint")
			}
		})
	}
}

// TestReliableExchangeFaultFree checks the reliable driver is a no-op
// overlay on a clean link: no retries, no resumes, same target contents.
func TestReliableExchangeFaultFree(t *testing.T) {
	agA, planA, tgtA, _, doneA := startAuctionExchange(t)
	defer doneA()
	if _, err := agA.ExecuteOpts("Auction", planA, ExecOptions{Link: netsim.Loopback(), Streamed: true}); err != nil {
		t.Fatal(err)
	}
	want := assembleTarget(t, tgtA)

	agB, planB, tgtB, tgtEP, doneB := startAuctionExchange(t)
	defer doneB()
	rep, err := agB.ExecuteOpts("Auction", planB, ExecOptions{
		Link:        netsim.Loopback(),
		Reliability: soakConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 0 || rep.Resumes != 0 || rep.DedupedRecords != 0 {
		t.Errorf("clean link produced retries=%d resumes=%d deduped=%d",
			rep.Retries, rep.Resumes, rep.DedupedRecords)
	}
	if rep.ShipBytes <= 0 {
		t.Error("no bytes metered")
	}
	// The driver releases its session via EndSession before returning, so
	// the target holds no session state once the exchange is done.
	if n := tgtEP.Sessions().Len(); n != 0 {
		t.Errorf("target still holds %d sessions after the exchange", n)
	}
	got := assembleTarget(t, tgtB)
	if !xmltree.Equal(want, got) {
		t.Error("reliable driver changed the exchanged document")
	}
}

// TestFaultSweepExperiment is the EXPERIMENTS.md fault-injection sweep:
// completion rate, retries, wall time, and retransmission overhead of a
// reliable auction exchange as the per-connection drop probability grows.
// It only prints (the e2e above is the pass/fail gate); run it with
//
//	XDX_FAULT_SWEEP=1 go test ./internal/registry/ -run TestFaultSweepExperiment -v
func TestFaultSweepExperiment(t *testing.T) {
	if os.Getenv("XDX_FAULT_SWEEP") == "" {
		t.Skip("set XDX_FAULT_SWEEP=1 to run the sweep")
	}

	agA, planA, _, _, doneA := startAuctionExchange(t)
	repA, err := agA.ExecuteOpts("Auction", planA, ExecOptions{Link: netsim.Loopback(), Streamed: true})
	if err != nil {
		t.Fatal(err)
	}
	baseBytes := repA.ShipBytes
	doneA()

	const runs = 20
	for _, p := range []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40} {
		var ok, retries, resumes int
		var bytes int64
		var wall time.Duration
		for seed := int64(1); seed <= runs; seed++ {
			ag, plan, _, _, done := startAuctionExchange(t)
			fl := netsim.NewFaultyLink(netsim.Loopback(), netsim.Faults{Seed: seed, DropProb: p})
			start := time.Now()
			rep, err := ag.ExecuteOpts("Auction", plan, ExecOptions{
				Link:        netsim.Loopback(),
				Transport:   fl.RoundTripper(nil),
				Reliability: soakConfig(seed),
			})
			wall += time.Since(start)
			done()
			if err != nil {
				continue
			}
			ok++
			retries += rep.Retries
			resumes += rep.Resumes
			bytes += rep.ShipBytes
		}
		inflation := 0.0
		if ok > 0 {
			inflation = float64(bytes)/float64(int64(ok)*baseBytes) - 1
		}
		t.Logf("drop=%.2f completed=%d/%d retries=%.2f resumes=%.2f wall=%.1fms ship-overhead=%+.1f%%",
			p, ok, runs, float64(retries)/runs, float64(resumes)/runs,
			wall.Seconds()*1000/runs, inflation*100)
	}
}

// TestResumePoint pins the checkpoint-adoption rules: the target's answer
// is adopted unconditionally — in particular known="0" resets to zero even
// if a prior attempt acked further, because a target that lost the session
// (sweep, restart) has a reset ledger and skipping chunks it never saw
// would silently drop records. Probe failures and garbage also resume
// from zero; resending is always safe, skipping never is.
func TestResumePoint(t *testing.T) {
	status := func(known, next string) *xmltree.Node {
		st := &xmltree.Node{Name: "SessionStatusResponse"}
		if known != "" {
			st.SetAttr("known", known)
		}
		if next != "" {
			st.SetAttr("next", next)
		}
		return st
	}
	cases := []struct {
		name string
		st   *xmltree.Node
		err  error
		want int64
	}{
		{"probe failed", nil, fmt.Errorf("boom"), 0},
		{"nil response", nil, nil, 0},
		{"session lost", status("0", "5"), nil, 0},
		{"acked five", status("1", "5"), nil, 5},
		{"fresh session", status("1", "0"), nil, 0},
		{"garbage next", status("1", "many"), nil, 0},
		{"negative next", status("1", "-3"), nil, 0},
		{"missing next", status("1", ""), nil, 0},
	}
	for _, c := range cases {
		if got := resumePoint(c.st, c.err); got != c.want {
			t.Errorf("%s: resumePoint = %d, want %d", c.name, got, c.want)
		}
	}
}
