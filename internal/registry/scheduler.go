package registry

// The concurrent exchange scheduler: the agency's admission-controlled
// worker pool. One exchange is a chain of SOAP round trips — mostly wait —
// so a single-file agency wastes almost all of its wall clock. The
// scheduler runs a bounded pool of workers over a FIFO queue, with two
// per-tenant budgets in front of it:
//
//   - max in-flight: a tenant may hold at most TenantInFlight slots
//     (queued + executing) at once, so one hot tenant cannot occupy the
//     whole pool;
//   - token bucket: a tenant admits at most TenantRate exchanges/second
//     with TenantBurst of headroom, smoothing bursts into the pool.
//
// Work over budget — or arriving at a full queue — is shed immediately
// with a typed soap fault (soap.CodeOverloaded, HTTP 503) instead of
// queueing without bound: the client learns in microseconds that it must
// back off, and everyone else's latency stays flat.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xdx/internal/obs"
	"xdx/internal/soap"
)

// SchedulerConfig tunes the exchange worker pool and its admission
// control. The zero value is a usable default: GOMAXPROCS-scaled workers,
// a queue twice the pool, and no per-tenant budgets.
type SchedulerConfig struct {
	// Workers is the pool size. Exchanges spend most of their time waiting
	// on endpoint round trips, so the default over-subscribes the CPUs:
	// 8 x GOMAXPROCS, floor 8.
	Workers int
	// QueueDepth bounds the FIFO of admitted-but-not-running exchanges;
	// submissions beyond it are shed. 0 means 2 x Workers.
	QueueDepth int
	// TenantInFlight caps one tenant's queued+executing exchanges.
	// 0 means unlimited.
	TenantInFlight int
	// TenantRate is a per-tenant token-bucket refill rate in exchanges per
	// second; 0 means unlimited.
	TenantRate float64
	// TenantBurst is the bucket capacity — how many exchanges a tenant may
	// admit back-to-back before the rate applies. 0 means max(1, ceil(rate)).
	TenantBurst int
}

// DefaultWorkers resolves the pool size for a config.
func (c SchedulerConfig) DefaultWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	n := 8 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

func (c SchedulerConfig) defaultQueueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 2 * c.DefaultWorkers()
}

func (c SchedulerConfig) defaultBurst() int {
	if c.TenantBurst > 0 {
		return c.TenantBurst
	}
	if c.TenantRate <= 0 {
		return 0
	}
	b := int(c.TenantRate)
	if float64(b) < c.TenantRate {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// ErrSchedulerClosed is returned by Submit after Close.
var ErrSchedulerClosed = errors.New("registry: scheduler closed")

// schedJob is one queued exchange. claimed arbitrates the Close race: a
// worker claims the job before running it, the submitter claims it when
// abandoning the queue on shutdown — exactly one side wins, so the
// tenant's in-flight slot is released exactly once.
type schedJob struct {
	tenant   string
	fn       func() error
	done     chan error
	enqueued time.Time
	claimed  atomic.Bool
}

// tenantState is one tenant's admission bookkeeping, guarded by the
// scheduler mutex.
type tenantState struct {
	inFlight int
	tokens   float64
	last     time.Time
}

// Scheduler is the bounded, admission-controlled exchange pool. Create
// with NewScheduler, submit work with Submit, stop with Close.
type Scheduler struct {
	cfg     SchedulerConfig
	workers int
	burst   int
	queue   chan *schedJob
	quit    chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	tenants map[string]*tenantState
	closed  bool

	running atomic.Int64

	accepted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64

	met *obs.Registry
	log obs.Logger
}

// NewScheduler starts the worker pool.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	s := &Scheduler{
		cfg:     cfg,
		workers: cfg.DefaultWorkers(),
		burst:   cfg.defaultBurst(),
		quit:    make(chan struct{}),
		tenants: make(map[string]*tenantState),
	}
	s.queue = make(chan *schedJob, cfg.defaultQueueDepth())
	s.wg.Add(s.workers)
	for i := 0; i < s.workers; i++ {
		go s.worker()
	}
	return s
}

// SetObs attaches observability: queue-depth and in-flight gauges, shed
// and completion counters, queue-wait and per-tenant latency histograms.
// Call before submitting traffic; either argument may be nil.
func (s *Scheduler) SetObs(l obs.Logger, m *obs.Registry) {
	s.log = l
	s.met = m
	if m == nil {
		return
	}
	m.Func("sched.queue.depth", func() any { return len(s.queue) })
	m.Func("sched.inflight", func() any { return s.running.Load() })
	m.Func("sched.workers", func() any { return s.workers })
	m.Func("sched.accepted", func() any { return s.accepted.Load() })
	m.Func("sched.completed", func() any { return s.completed.Load() })
	m.Func("sched.failed", func() any { return s.failed.Load() })
	m.Func("sched.shed", func() any { return s.shed.Load() })
}

// Stats reports lifetime submission counters.
func (s *Scheduler) Stats() (accepted, completed, failed, shed int64) {
	return s.accepted.Load(), s.completed.Load(), s.failed.Load(), s.shed.Load()
}

// Workers reports the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// QueueDepth reports the FIFO capacity.
func (s *Scheduler) QueueDepth() int { return cap(s.queue) }

// Close stops the pool: no new submissions are accepted, and workers exit
// after their current job. Jobs still queued are failed back to their
// submitters with ErrSchedulerClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
}

// admit runs the per-tenant budgets, reserving an in-flight slot on
// success. The caller must releaseTenant on any later failure to enqueue.
func (s *Scheduler) admit(tenant string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSchedulerClosed
	}
	t := s.tenants[tenant]
	if t == nil {
		t = &tenantState{tokens: float64(s.burst), last: time.Now()}
		s.tenants[tenant] = t
	}
	if s.cfg.TenantInFlight > 0 && t.inFlight >= s.cfg.TenantInFlight {
		return soap.OverloadedFault(fmt.Sprintf("tenant %q over in-flight budget (%d)", tenant, s.cfg.TenantInFlight))
	}
	if s.cfg.TenantRate > 0 {
		now := time.Now()
		t.tokens += now.Sub(t.last).Seconds() * s.cfg.TenantRate
		t.last = now
		if max := float64(s.burst); t.tokens > max {
			t.tokens = max
		}
		if t.tokens < 1 {
			return soap.OverloadedFault(fmt.Sprintf("tenant %q over rate budget (%g/s)", tenant, s.cfg.TenantRate))
		}
		t.tokens--
	}
	t.inFlight++
	return nil
}

// releaseTenant returns a tenant's in-flight slot.
func (s *Scheduler) releaseTenant(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[tenant]
	if t == nil {
		return
	}
	t.inFlight--
	if t.inFlight <= 0 && t.tokens >= float64(s.burst) {
		// Idle tenant with a full bucket carries no state worth keeping.
		delete(s.tenants, tenant)
	}
}

// Submit runs fn on the pool under tenant's budgets and blocks until it
// finishes, returning its error. Over-budget or queue-full submissions are
// shed immediately with a soap.CodeOverloaded fault; soap.IsOverloaded
// classifies the error.
func (s *Scheduler) Submit(tenant string, fn func() error) error {
	if err := s.admit(tenant); err != nil {
		if soap.IsOverloaded(err) {
			s.shedOne(tenant, err)
		}
		return err
	}
	job := &schedJob{tenant: tenant, fn: fn, done: make(chan error, 1), enqueued: time.Now()}
	select {
	case s.queue <- job:
	default:
		s.releaseTenant(tenant)
		err := soap.OverloadedFault(fmt.Sprintf("exchange queue full (%d)", cap(s.queue)))
		s.shedOne(tenant, err)
		return err
	}
	s.accepted.Add(1)
	select {
	case err := <-job.done:
		return err
	case <-s.quit:
		if job.claimed.CompareAndSwap(false, true) {
			// The job was still queued; no worker will run it.
			s.releaseTenant(tenant)
			return ErrSchedulerClosed
		}
		// A worker claimed it before shutdown; it will finish and answer.
		return <-job.done
	}
}

// shedOne records one shed submission.
func (s *Scheduler) shedOne(tenant string, err error) {
	s.shed.Add(1)
	s.met.Counter("sched.shed.total").Inc()
	s.met.Counter("sched.shed." + tenant).Inc()
	obs.OrNop(s.log).Log(obs.LevelWarn, "exchange shed", "tenant", tenant, "err", err.Error())
}

// worker drains the FIFO until Close.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case job := <-s.queue:
			if job.claimed.CompareAndSwap(false, true) {
				s.run(job)
			}
		case <-s.quit:
			return
		}
	}
}

// run executes one job, recording queue wait and end-to-end latency.
func (s *Scheduler) run(job *schedJob) {
	s.running.Add(1)
	s.met.Histogram("sched.wait.millis").ObserveSince(job.enqueued)
	err := job.fn()
	s.running.Add(-1)
	s.releaseTenant(job.tenant)
	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	s.met.Histogram("exchange.tenant." + job.tenant + ".millis").ObserveSince(job.enqueued)
	job.done <- err
}
