package registry

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"

	"xdx/internal/netsim"
	"xdx/internal/obs"
	"xdx/internal/reliable"
	"xdx/internal/soap"
	"xdx/internal/wire"
	"xdx/internal/xmltree"
)

// Service exposes the agency itself over SOAP, so that systems can register
// and request exchanges remotely (the UDDI-like deployment of §2).
type Service struct {
	// Agency is the wrapped discovery agency.
	Agency *Agency
	// Link models the source→target connection used when executing.
	Link netsim.Link
	// Streamed selects the zero-materialization wire path for exchanges.
	Streamed bool
	// Codec is the default shipment codec for exchanges ("xml", "feed",
	// "bin", "bin+flate"); a codec attribute on the Plan/Exchange request
	// overrides it.
	Codec string
	// Reliability, when set, drives every exchange through the reliable
	// path (retries, resumable sessions, circuit breaking). Set
	// Reliability.Breakers to share breaker state across exchanges.
	Reliability *reliable.Config
	// ParallelChunks dials the chunk codec pools of every exchange the
	// service drives (ExecOptions.ParallelChunks): 0 is one worker per
	// CPU, 1 or less runs the codecs in-line.
	ParallelChunks int
	// Delta drives repeat exchanges in delta mode by default (requires
	// Reliability); a delta attribute on the Exchange request overrides it
	// per call.
	Delta bool
	// Filter is the service-wide pushdown filter expression applied
	// source-side to every exchange; a filter attribute on the request
	// overrides it per call.
	Filter string
	// Sched, when set, drives every Exchange request through the
	// admission-controlled worker pool: plan derivation and the drive both
	// run on a pool worker under the requesting service's tenant budgets,
	// and over-budget requests are shed with a soap.CodeOverloaded fault
	// (HTTP 503). Nil keeps the caller's goroutine driving the exchange
	// directly. Set before SetObs so the pool's gauges are exported.
	Sched *Scheduler

	srv *soap.Server
	log obs.Logger
	met *obs.Registry
}

// NewService wraps an agency.
func NewService(a *Agency, link netsim.Link) *Service {
	s := &Service{Agency: a, Link: link, srv: soap.NewServer()}
	s.srv.Handle("Register", s.register)
	s.srv.Handle("Discover", s.discover)
	s.srv.Handle("List", s.list)
	s.srv.Handle("Plan", s.plan)
	s.srv.Handle("Exchange", s.exchange)
	return s
}

// SetObs attaches observability: the SOAP server counts requests, every
// exchange the service drives carries the logger/metrics, and a shared
// breaker set (Reliability.Breakers) is wired here exactly once — the
// per-exchange wiring skips shared sets. Call before serving traffic.
func (s *Service) SetObs(l obs.Logger, m *obs.Registry) {
	s.log = l
	s.met = m
	s.srv.SetObs(l, m)
	s.Agency.SetMetrics(m)
	if s.Sched != nil {
		s.Sched.SetObs(l, m)
	}
	if s.Reliability == nil || s.Reliability.Breakers == nil || (l == nil && m == nil) {
		return
	}
	bs := s.Reliability.Breakers
	log := obs.OrNop(l)
	bs.OnStateChange(func(url string, from, to reliable.BreakerState) {
		m.Counter("exchange.breaker.transitions").Inc()
		log.Log(obs.LevelInfo, "breaker state change",
			"url", url, "from", from.String(), "to", to.String())
	})
	m.Func("exchange.breakers", func() any { return bs.States() })
}

// discover handles <Discover service=".." role=".." url=".."/>: the agency
// fetches the WSDL from the endpoint itself and registers it.
func (s *Service) discover(req *xmltree.Node) (*xmltree.Node, error) {
	service, _ := req.Attr("service")
	roleStr, _ := req.Attr("role")
	url, _ := req.Attr("url")
	if service == "" || url == "" {
		return nil, &soap.Fault{Code: "soap:Client", String: "Discover requires service and url attributes"}
	}
	role := RoleSource
	if roleStr == string(RoleTarget) {
		role = RoleTarget
	} else if roleStr != string(RoleSource) {
		return nil, &soap.Fault{Code: "soap:Client", String: "role must be source or target"}
	}
	if err := s.Agency.RegisterFromEndpoint(service, role, url); err != nil {
		return nil, err
	}
	resp := &xmltree.Node{Name: "DiscoverResponse"}
	resp.SetAttr("service", service)
	resp.SetAttr("role", string(role))
	return resp, nil
}

// Handler returns the HTTP handler.
func (s *Service) Handler() http.Handler { return s.srv }

// maxPageSize caps a List page so a tenant cannot request an unbounded
// body anyway.
const maxPageSize = 500

// list handles <List cursor=".." pageSize=".."/>: a keyset-paginated
// tenant listing. The response carries one <service> element per
// registered service on the page, each with its <party> registrations,
// and a nextCursor attribute to resume from ("" / absent on the last
// page) — bounded bodies no matter how many tenants are registered.
func (s *Service) list(req *xmltree.Node) (*xmltree.Node, error) {
	cursor, _ := req.Attr("cursor")
	limit := 0
	if v, ok := req.Attr("pageSize"); ok && v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, &soap.Fault{Code: "soap:Client", String: "pageSize must be a positive integer"}
		}
		limit = n
	}
	if limit > maxPageSize {
		limit = maxPageSize
	}
	names, next := s.Agency.ServicesPage(cursor, limit)
	resp := &xmltree.Node{Name: "ListResponse"}
	resp.SetAttr("count", strconv.Itoa(len(names)))
	if next != "" {
		resp.SetAttr("nextCursor", next)
	}
	for _, name := range names {
		sx := &xmltree.Node{Name: "service"}
		sx.SetAttr("name", name)
		for _, role := range []Role{RoleSource, RoleTarget} {
			p := s.Agency.Party(name, role)
			if p == nil {
				continue
			}
			px := &xmltree.Node{Name: "party"}
			px.SetAttr("role", string(role))
			px.SetAttr("url", p.URL)
			px.SetAttr("fragmentation", p.Fragmentation.Name)
			px.SetAttr("fragments", strconv.Itoa(p.Fragmentation.Len()))
			sx.AddKid(px)
		}
		resp.AddKid(sx)
	}
	return resp, nil
}

// register handles <Register service=".." role=".." url=".."> with the
// WSDL definitions document as its child.
func (s *Service) register(req *xmltree.Node) (*xmltree.Node, error) {
	service, _ := req.Attr("service")
	roleStr, _ := req.Attr("role")
	url, _ := req.Attr("url")
	if service == "" || url == "" {
		return nil, &soap.Fault{Code: "soap:Client", String: "Register requires service and url attributes"}
	}
	role := RoleSource
	if roleStr == string(RoleTarget) {
		role = RoleTarget
	} else if roleStr != string(RoleSource) {
		return nil, &soap.Fault{Code: "soap:Client", String: "role must be source or target"}
	}
	if len(req.Kids) == 0 {
		return nil, &soap.Fault{Code: "soap:Client", String: "Register requires an embedded WSDL document"}
	}
	var buf bytes.Buffer
	if err := xmltree.Write(&buf, req.Kids[0], xmltree.WriteOptions{}); err != nil {
		return nil, err
	}
	if err := s.Agency.Register(service, role, buf.Bytes(), url); err != nil {
		return nil, err
	}
	resp := &xmltree.Node{Name: "RegisterResponse"}
	resp.SetAttr("service", service)
	resp.SetAttr("role", string(role))
	return resp, nil
}

// plan handles <Plan service=".." algorithm="greedy|optimal"/> and returns
// the generated program with its placement and estimated cost.
func (s *Service) plan(req *xmltree.Node) (*xmltree.Node, error) {
	service, _ := req.Attr("service")
	algStr, _ := req.Attr("algorithm")
	alg := AlgGreedy
	if algStr == string(AlgOptimal) {
		alg = AlgOptimal
	}
	codec := s.reqCodec(req)
	plan, err := s.Agency.Plan(service, PlanOptions{Algorithm: alg, Codec: codec})
	if err != nil {
		return nil, err
	}
	progXML, err := wire.EncodeProgram(plan.Program, plan.Assign)
	if err != nil {
		return nil, err
	}
	resp := &xmltree.Node{Name: "PlanResponse"}
	resp.SetAttr("service", service)
	resp.SetAttr("estimatedCost", strconv.FormatFloat(plan.Estimated, 'g', -1, 64))
	resp.SetAttr("planMillis", fmt.Sprintf("%.3f", float64(plan.PlanTime.Microseconds())/1000))
	resp.AddKid(progXML)
	return resp, nil
}

// reqCodec resolves a request's shipment codec: its own codec attribute,
// falling back to the service-wide default.
func (s *Service) reqCodec(req *xmltree.Node) string {
	if v, ok := req.Attr("codec"); ok && v != "" {
		return v
	}
	return s.Codec
}

// exchange handles <Exchange service=".." algorithm=".." codec=".."/>:
// plan and run. With a scheduler installed the whole unit — plan
// derivation (cache-served after the first exchange of a pair) plus the
// drive — runs on a pool worker under the service's tenant budgets; the
// SOAP goroutine just waits for the answer or the shed fault.
func (s *Service) exchange(req *xmltree.Node) (*xmltree.Node, error) {
	if s.Sched != nil {
		service, _ := req.Attr("service")
		var resp *xmltree.Node
		err := s.Sched.Submit(service, func() error {
			var e error
			resp, e = s.exchangeNow(req)
			return e
		})
		return resp, err
	}
	return s.exchangeNow(req)
}

// exchangeNow plans and drives one exchange on the calling goroutine.
func (s *Service) exchangeNow(req *xmltree.Node) (*xmltree.Node, error) {
	service, _ := req.Attr("service")
	algStr, _ := req.Attr("algorithm")
	alg := AlgGreedy
	if algStr == string(AlgOptimal) {
		alg = AlgOptimal
	}
	codec := s.reqCodec(req)
	filter := s.Filter
	if v, ok := req.Attr("filter"); ok {
		filter = v
	}
	delta := s.Delta
	if v, ok := req.Attr("delta"); ok {
		delta = v == "1" || v == "true"
	}
	if delta && s.Reliability == nil {
		return nil, &soap.Fault{Code: "soap:Client", String: "delta exchanges require the reliable path"}
	}
	// Planning probes the live endpoints for statistics; under a
	// reliability config those probes deserve the same retry policy as the
	// exchange itself (planning is idempotent, so retry it wholesale).
	var plan *Plan
	planOnce := func() error {
		var perr error
		plan, perr = s.Agency.Plan(service, PlanOptions{Algorithm: alg, Codec: codec, Filter: filter})
		return perr
	}
	var err error
	if s.Reliability != nil {
		r := reliable.NewRetrier(s.Reliability.Policy, s.Reliability.Seed)
		err = r.Do("Plan", nil, func(int) error { return planOnce() })
	} else {
		err = planOnce()
	}
	if err != nil {
		return nil, err
	}
	report, err := s.Agency.ExecuteOpts(service, plan, ExecOptions{
		Link:           s.Link,
		Codec:          codec,
		Streamed:       s.Streamed,
		Reliability:    s.Reliability,
		Logger:         s.log,
		Metrics:        s.met,
		ParallelChunks: s.ParallelChunks,
		Delta:          delta,
		Filter:         filter,
	})
	if err != nil {
		return nil, err
	}
	resp := &xmltree.Node{Name: "ExchangeResponse"}
	resp.SetAttr("service", service)
	if s.Reliability != nil {
		resp.SetAttr("retries", strconv.Itoa(report.Retries))
		resp.SetAttr("resumes", strconv.Itoa(report.Resumes))
		resp.SetAttr("deduped", strconv.FormatInt(report.DedupedRecords, 10))
	}
	if delta {
		d := "0"
		if report.Delta {
			d = "1"
		}
		resp.SetAttr("delta", d)
		resp.SetAttr("deltaRecords", strconv.Itoa(report.DeltaRecords))
		resp.SetAttr("tombstoneRecords", strconv.Itoa(report.TombstoneRecords))
	}
	resp.SetAttr("codec", report.Codec)
	resp.SetAttr("shipBytes", strconv.FormatInt(report.ShipBytes, 10))
	resp.SetAttr("wireBytes", strconv.FormatInt(report.WireBytes, 10))
	resp.SetAttr("payloadBytes", strconv.FormatInt(report.PayloadBytes, 10))
	resp.SetAttr("sourceMillis", fmt.Sprintf("%.3f", report.SourceTime.Seconds()*1000))
	resp.SetAttr("shipMillis", fmt.Sprintf("%.3f", report.ShipTime.Seconds()*1000))
	resp.SetAttr("targetMillis", fmt.Sprintf("%.3f", report.TargetTime.Seconds()*1000))
	resp.SetAttr("writeMillis", fmt.Sprintf("%.3f", report.WriteTime.Seconds()*1000))
	resp.SetAttr("indexMillis", fmt.Sprintf("%.3f", report.IndexTime.Seconds()*1000))
	return resp, nil
}
