package registry

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"xdx/internal/core"
	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/soap"
	"xdx/internal/wsdlx"
	"xdx/internal/xmltree"
)

// startService stands up two relational endpoints and an agency SOAP
// service, returning a SOAP client bound to the agency and the target
// store for verification.
func startService(t *testing.T) (*soap.Client, *relstore.Store, func()) {
	t.Helper()
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	tFr := tFragmentation(t, sch)
	srcStore, err := relstore.NewStore(sFr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcStore.LoadDocument(customerDoc(t)); err != nil {
		t.Fatal(err)
	}
	tgtStore, err := relstore.NewStore(tFr)
	if err != nil {
		t.Fatal(err)
	}
	srcSrv := httptest.NewServer(endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil).Handler())
	tgtSrv := httptest.NewServer(endpoint.New("T", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil).Handler())
	agSrv := httptest.NewServer(NewService(New(), netsim.Loopback()).Handler())
	client := &soap.Client{URL: agSrv.URL}

	for _, reg := range []struct {
		role string
		fr   *core.Fragmentation
		url  string
	}{{"source", sFr, srcSrv.URL}, {"target", tFr, tgtSrv.URL}} {
		req := &xmltree.Node{Name: "Register"}
		req.SetAttr("service", "svc")
		req.SetAttr("role", reg.role)
		req.SetAttr("url", reg.url)
		wsdlTree, err := xmltree.Parse(strings.NewReader(string(wsdlFor(t, sch, reg.fr, reg.url))))
		if err != nil {
			t.Fatal(err)
		}
		req.AddKid(wsdlTree)
		if _, err := client.Call("Register", req); err != nil {
			t.Fatal(err)
		}
	}
	cleanup := func() { srcSrv.Close(); tgtSrv.Close(); agSrv.Close() }
	return client, tgtStore, cleanup
}

func TestServicePlanAndExchange(t *testing.T) {
	client, tgtStore, done := startService(t)
	defer done()

	planReq := &xmltree.Node{Name: "Plan"}
	planReq.SetAttr("service", "svc")
	planReq.SetAttr("algorithm", "optimal")
	planResp, err := client.Call("Plan", planReq)
	if err != nil {
		t.Fatal(err)
	}
	costStr, _ := planResp.Attr("estimatedCost")
	if cost, err := strconv.ParseFloat(costStr, 64); err != nil || cost <= 0 {
		t.Errorf("estimated cost = %q", costStr)
	}
	foundProgram := false
	for _, k := range planResp.Kids {
		if k.Name == "program" {
			foundProgram = true
		}
	}
	if !foundProgram {
		t.Error("plan response missing program")
	}

	exReq := &xmltree.Node{Name: "Exchange"}
	exReq.SetAttr("service", "svc")
	exResp, err := client.Call("Exchange", exReq)
	if err != nil {
		t.Fatal(err)
	}
	bytesStr, _ := exResp.Attr("shipBytes")
	if n, err := strconv.ParseInt(bytesStr, 10, 64); err != nil || n <= 0 {
		t.Errorf("shipBytes = %q", bytesStr)
	}
	if tgtStore.Rows() == 0 {
		t.Error("exchange did not populate the target")
	}
}

func TestServiceDiscover(t *testing.T) {
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	srcStore, err := relstore.NewStore(sFr)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := wsdlxParse(t, wsdlFor(t, sch, sFr, "http://placeholder"))
	if err != nil {
		t.Fatal(err)
	}
	ep := endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, defs)
	epSrv := httptest.NewServer(ep.Handler())
	defer epSrv.Close()
	ag := New()
	agSrv := httptest.NewServer(NewService(ag, netsim.Loopback()).Handler())
	defer agSrv.Close()
	client := &soap.Client{URL: agSrv.URL}
	req := &xmltree.Node{Name: "Discover"}
	req.SetAttr("service", "svc")
	req.SetAttr("role", "source")
	req.SetAttr("url", epSrv.URL)
	if _, err := client.Call("Discover", req); err != nil {
		t.Fatal(err)
	}
	p := ag.Party("svc", RoleSource)
	if p == nil || p.Fragmentation.Len() != 5 {
		t.Fatalf("discovery failed: %+v", p)
	}
	// Validation.
	bad := &xmltree.Node{Name: "Discover"}
	if _, err := client.Call("Discover", bad); err == nil {
		t.Error("missing attrs must fault")
	}
	bad.SetAttr("service", "s")
	bad.SetAttr("url", "http://x")
	bad.SetAttr("role", "sideways")
	if _, err := client.Call("Discover", bad); err == nil {
		t.Error("bad role must fault")
	}
}

func TestServiceRegisterValidation(t *testing.T) {
	agSrv := httptest.NewServer(NewService(New(), netsim.Loopback()).Handler())
	defer agSrv.Close()
	client := &soap.Client{URL: agSrv.URL}

	req := &xmltree.Node{Name: "Register"}
	if _, err := client.Call("Register", req); err == nil {
		t.Error("register without attributes must fault")
	}
	req.SetAttr("service", "svc")
	req.SetAttr("role", "sideways")
	req.SetAttr("url", "http://x")
	if _, err := client.Call("Register", req); err == nil {
		t.Error("bad role must fault")
	}
	req.SetAttr("role", "source")
	if _, err := client.Call("Register", req); err == nil {
		t.Error("missing WSDL must fault")
	}
}

func TestServicePlanUnknownService(t *testing.T) {
	agSrv := httptest.NewServer(NewService(New(), netsim.Loopback()).Handler())
	defer agSrv.Close()
	client := &soap.Client{URL: agSrv.URL}
	req := &xmltree.Node{Name: "Plan"}
	req.SetAttr("service", "missing")
	if _, err := client.Call("Plan", req); err == nil {
		t.Error("plan for unknown service must fault")
	}
}

// wsdlxParse parses marshaled WSDL bytes for test setup.
func wsdlxParse(t *testing.T, data []byte) (*wsdlx.Definitions, error) {
	t.Helper()
	return wsdlx.Parse(bytes.NewReader(data))
}
