package registry

// Streamed exchange driving. The tree path in ExecuteOpts materializes the
// source's whole response envelope, re-encodes the shipment into the
// target request, and buffers that request too — three copies of the
// exchange's dominant payload. The streamed path keeps exactly one: the
// source response is decoded incrementally into instances as it arrives
// (SAX events straight into the shipment decoder), and the target request
// flows through an io.Pipe with the shipment serialized directly from
// those instances, metered for the communication-cost report as it leaves.

import (
	"fmt"
	"io"

	"xdx/internal/core"
	"xdx/internal/netsim"
	"xdx/internal/wire"
	"xdx/internal/xmltree"
)

// scanAttr returns the named attribute from a reused scan-attrs slice.
func scanAttr(attrs []xmltree.Attr, name string) string {
	for _, a := range attrs {
		if a.Name == name {
			return a.Value
		}
	}
	return ""
}

// sourceRespScan consumes an ExecuteSourceResponse stream: the shipment
// subtree flows into the shipment decoder, the timing rides either on the
// trailing <timing> element (streamed endpoint) or on the root's
// queryMillis attribute (buffered endpoint).
type sourceRespScan struct {
	dec *wire.ShipmentDecoder

	depth int
	skip  int

	sub      bool
	subDepth int

	queryMillis string
	sawShipment bool
	codec       string
}

// ObserveEnvelope implements soap.EnvelopeObserver: the response
// envelope's codec attribute is the server's negotiation answer.
func (s *sourceRespScan) ObserveEnvelope(attrs []xmltree.Attr) {
	s.codec = scanAttr(attrs, "codec")
}

// StartElement implements xmltree.AttrHandler.
func (s *sourceRespScan) StartElement(name string, attrs []xmltree.Attr) error {
	if s.skip > 0 {
		s.skip++
		return nil
	}
	if s.sub {
		s.subDepth++
		return s.dec.StartElement(name, attrs)
	}
	s.depth++
	switch s.depth {
	case 1:
		if v := scanAttr(attrs, "queryMillis"); v != "" {
			s.queryMillis = v
		}
	case 2:
		switch name {
		case "shipment":
			s.sawShipment = true
			s.sub, s.subDepth = true, 1
			return s.dec.StartElement(name, attrs)
		case "timing":
			if v := scanAttr(attrs, "queryMillis"); v != "" {
				s.queryMillis = v
			}
			s.depth--
			s.skip = 1
		default:
			s.depth--
			s.skip = 1
		}
	}
	return nil
}

// Text implements xmltree.AttrHandler.
func (s *sourceRespScan) Text(data string) error {
	if s.skip > 0 || !s.sub {
		return nil
	}
	return s.dec.Text(data)
}

// TextBytes implements xmltree.TextBytesHandler, keeping the scanner's
// zero-copy text path intact through to the shipment decoder.
func (s *sourceRespScan) TextBytes(data []byte) error {
	if s.skip > 0 || !s.sub {
		return nil
	}
	return s.dec.TextBytes(data)
}

// EndElement implements xmltree.AttrHandler.
func (s *sourceRespScan) EndElement(name string) error {
	switch {
	case s.skip > 0:
		s.skip--
	case s.sub:
		s.subDepth--
		if s.subDepth == 0 {
			s.sub = false
			s.depth--
		}
		return s.dec.EndElement(name)
	default:
		s.depth--
	}
	return nil
}

// executeStreamed drives an exchange over the zero-materialization wire
// path: streamed source response, piped target request, no envelope trees
// on either hop. The shipment is counted by a meter as it is re-serialized
// toward the target, so ShipBytes reports actual wire bytes (shipment
// framing included — the tree path's per-record count omits the
// <shipment>/<instance> wrappers).
func (a *Agency) executeStreamed(service string, plan *Plan, opts ExecOptions) (*Report, error) {
	link := opts.Link
	src, tgt := a.parties(service)
	if src == nil || tgt == nil {
		return nil, fmt.Errorf("registry: service %q not fully registered", service)
	}
	sch := src.Fragmentation.Schema
	progXML, err := wire.EncodeProgram(plan.Program, plan.Assign)
	if err != nil {
		return nil, err
	}
	codec, err := opts.effectiveCodec()
	if err != nil {
		return nil, err
	}
	trace := newTrace(service, "streamed")
	report := &Report{Plan: plan, Codec: codec.String(), Trace: trace}

	reqS := &xmltree.Node{Name: "ExecuteSource"}
	reqS.SetAttr("stream", "1")
	if opts.Codec != "" {
		reqS.SetAttr("codec", opts.Codec)
	}
	if opts.Format != "" {
		reqS.SetAttr("format", opts.Format)
	}
	if opts.FilterElem != "" {
		reqS.SetAttr("filterElem", opts.FilterElem)
		reqS.SetAttr("filterValue", opts.FilterValue)
	}
	if opts.Filter != "" {
		reqS.SetAttr("filter", opts.Filter)
	}
	if opts.Pipelined {
		reqS.SetAttr("pipelined", "1")
	}
	reqS.AddKid(progXML)

	frags := map[string]*core.Fragment{}
	for _, op := range plan.Program.Ops {
		frags[op.Out.Name] = op.Out
		for _, p := range op.Parts {
			frags[p.Name] = p
		}
	}
	for _, ed := range plan.Program.Edges {
		frags[ed.Frag.Name] = ed.Frag
	}
	dec := wire.NewShipmentDecoder(sch, func(name string) *core.Fragment { return frags[name] })
	dec.Workers = opts.ParallelChunks
	dec.Met = opts.Metrics
	scanS := &sourceRespScan{dec: dec}

	cs := opts.client(src.URL)
	advertise(cs, codec)
	srcSpan := trace.Child("source")
	err = cs.CallStream("ExecuteSource", func(w io.Writer) error {
		return xmltree.Write(w, reqS, xmltree.WriteOptions{EmitAllIDs: true})
	}, scanS)
	srcSpan.End()
	if err != nil {
		srcSpan.Set("err", err.Error())
		return report, fmt.Errorf("registry: source execution: %w", err)
	}
	if !scanS.sawShipment {
		return report, fmt.Errorf("registry: source returned no shipment")
	}
	if scanS.codec != "" {
		report.Codec = scanS.codec
	}
	report.SourceTime = parseMillis(scanS.queryMillis)
	inbound, err := dec.Result()
	if err != nil {
		return report, fmt.Errorf("registry: source shipment: %w", err)
	}
	report.PayloadBytes = wire.ShipmentBytes(inbound)

	open := `<ExecuteTarget`
	if opts.Pipelined {
		open += ` pipelined="1"`
	}
	open += `>`
	tb := &xmltree.TreeBuilder{}
	ct := opts.client(tgt.URL)
	delSpan := trace.Child("deliver")
	err = ct.CallStream("ExecuteTarget", func(w io.Writer) error {
		if _, err := io.WriteString(w, open); err != nil {
			return err
		}
		if err := xmltree.Write(w, progXML, xmltree.WriteOptions{EmitAllIDs: true}); err != nil {
			return err
		}
		m := netsim.NewMeter(w)
		sw := wire.NewShipmentWriterCodec(m, sch, codec)
		sw.SetWorkers(opts.ParallelChunks)
		sw.SetObs(opts.Metrics)
		if err := wire.EmitShipment(sw, inbound); err != nil {
			sw.Close()
			return err
		}
		if err := sw.Close(); err != nil {
			return err
		}
		report.WireBytes = m.Bytes()
		report.ShipBytes = report.WireBytes
		_, err := io.WriteString(w, `</ExecuteTarget>`)
		return err
	}, tb)
	delSpan.End()
	if err != nil {
		delSpan.Set("err", err.Error())
		return report, fmt.Errorf("registry: target execution: %w", err)
	}
	report.ShipTime = link.TransferTime(report.ShipBytes)
	if respT := tb.Root(); respT != nil {
		if v, ok := respT.Attr("execMillis"); ok {
			report.TargetTime = parseMillis(v)
		}
		if v, ok := respT.Attr("writeMillis"); ok {
			report.WriteTime = parseMillis(v)
		}
		if v, ok := respT.Attr("indexMillis"); ok {
			report.IndexTime = parseMillis(v)
		}
	}
	return report, nil
}
