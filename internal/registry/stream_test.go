package registry

import (
	"testing"

	"xdx/internal/core"
	"xdx/internal/netsim"
	"xdx/internal/relstore"
	"xdx/internal/xmltree"
)

// streamedTargetDoc runs a full streamed exchange and reassembles the
// target store's contents into a document.
func streamedTargetDoc(t testing.TB, opts ExecOptions) (*Report, *xmltree.Node, *relstore.Store) {
	t.Helper()
	ag, plan, tgtStore, done := startExchange(t, AlgGreedy)
	defer done()
	report, err := ag.ExecuteOpts("CustomerInfoService", plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	insts := map[string]*core.Instance{}
	for _, f := range tgtStore.Layout.Fragments {
		in, err := tgtStore.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		insts[f.Name] = in
	}
	back, err := core.Document(tgtStore.Layout, insts)
	if err != nil {
		t.Fatal(err)
	}
	return report, back, tgtStore
}

func TestEndToEndExchangeStreamed(t *testing.T) {
	// The same exchange over the zero-materialization wire path: the
	// source's shipment streams onto its response as slices execute, the
	// agency decodes it incrementally and pipes it into the target request.
	report, back, _ := streamedTargetDoc(t, ExecOptions{Link: netsim.Loopback(), Streamed: true})
	if report.ShipBytes <= 0 {
		t.Errorf("no bytes shipped")
	}
	if !xmltree.EqualShape(customerDoc(t), back) {
		t.Errorf("document changed in streamed transit:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestEndToEndExchangeStreamedPipelined(t *testing.T) {
	// Streamed wire path with the pipelined executor on both endpoints:
	// records reach the wire while upstream operators still produce.
	report, back, _ := streamedTargetDoc(t, ExecOptions{Link: netsim.Loopback(), Streamed: true, Pipelined: true})
	if report.ShipBytes <= 0 {
		t.Errorf("no bytes shipped")
	}
	if !xmltree.EqualShape(customerDoc(t), back) {
		t.Errorf("document changed in streamed pipelined transit:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestEndToEndExchangeStreamedFeed(t *testing.T) {
	// Streamed wire path with sorted-feed shipments (§4.1).
	_, back, _ := streamedTargetDoc(t, ExecOptions{Link: netsim.Loopback(), Streamed: true, Format: "feed"})
	if !xmltree.EqualShape(customerDoc(t), back) {
		t.Errorf("document changed in streamed feed transit:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestStreamedMatchesBufferedReport(t *testing.T) {
	// Timing fields must be populated the same way on both paths; the
	// streamed ShipBytes includes shipment framing, so it is >= the tree
	// path's per-record count.
	ag, plan, _, done := startExchange(t, AlgGreedy)
	defer done()
	buffered, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{Link: netsim.Loopback()})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{Link: netsim.Loopback(), Streamed: true})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.ShipBytes < buffered.ShipBytes {
		t.Errorf("streamed ShipBytes %d < buffered %d; framing should only add bytes",
			streamed.ShipBytes, buffered.ShipBytes)
	}
}
