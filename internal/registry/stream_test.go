package registry

import (
	"testing"

	"xdx/internal/core"
	"xdx/internal/netsim"
	"xdx/internal/relstore"
	"xdx/internal/xmltree"
)

// streamedTargetDoc runs a full streamed exchange and reassembles the
// target store's contents into a document.
func streamedTargetDoc(t testing.TB, opts ExecOptions) (*Report, *xmltree.Node, *relstore.Store) {
	t.Helper()
	ag, plan, tgtStore, done := startExchange(t, AlgGreedy)
	defer done()
	report, err := ag.ExecuteOpts("CustomerInfoService", plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	insts := map[string]*core.Instance{}
	for _, f := range tgtStore.Layout.Fragments {
		in, err := tgtStore.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		insts[f.Name] = in
	}
	back, err := core.Document(tgtStore.Layout, insts)
	if err != nil {
		t.Fatal(err)
	}
	return report, back, tgtStore
}

func TestEndToEndExchangeStreamed(t *testing.T) {
	// The same exchange over the zero-materialization wire path: the
	// source's shipment streams onto its response as slices execute, the
	// agency decodes it incrementally and pipes it into the target request.
	report, back, _ := streamedTargetDoc(t, ExecOptions{Link: netsim.Loopback(), Streamed: true})
	if report.ShipBytes <= 0 {
		t.Errorf("no bytes shipped")
	}
	if !xmltree.EqualShape(customerDoc(t), back) {
		t.Errorf("document changed in streamed transit:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestEndToEndExchangeStreamedPipelined(t *testing.T) {
	// Streamed wire path with the pipelined executor on both endpoints:
	// records reach the wire while upstream operators still produce.
	report, back, _ := streamedTargetDoc(t, ExecOptions{Link: netsim.Loopback(), Streamed: true, Pipelined: true})
	if report.ShipBytes <= 0 {
		t.Errorf("no bytes shipped")
	}
	if !xmltree.EqualShape(customerDoc(t), back) {
		t.Errorf("document changed in streamed pipelined transit:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestEndToEndExchangeStreamedFeed(t *testing.T) {
	// Streamed wire path with sorted-feed shipments (§4.1).
	_, back, _ := streamedTargetDoc(t, ExecOptions{Link: netsim.Loopback(), Streamed: true, Format: "feed"})
	if !xmltree.EqualShape(customerDoc(t), back) {
		t.Errorf("document changed in streamed feed transit:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestEndToEndExchangeNegotiatedBin(t *testing.T) {
	// Streamed wire path with binary shipments negotiated per call: the
	// agency advertises the codec on the request envelope, the source
	// stamps its pick on the response envelope, and the report separates
	// what crossed the link from the tree-codec payload size. Run on the
	// auction workload — on a realistically sized shipment the dictionary
	// and delta coding must beat the tree codec despite the base64
	// transfer text.
	agA, planA, tgtA, _, doneA := startAuctionExchange(t)
	if _, err := agA.ExecuteOpts("Auction", planA, ExecOptions{Link: netsim.Loopback(), Streamed: true}); err != nil {
		t.Fatal(err)
	}
	want := assembleTarget(t, tgtA)
	doneA()

	for _, codec := range []string{"bin", "bin+flate"} {
		ag, plan, tgtStore, _, done := startAuctionExchange(t)
		report, err := ag.ExecuteOpts("Auction", plan, ExecOptions{Link: netsim.Loopback(), Streamed: true, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		if report.Codec != codec {
			t.Errorf("negotiation answered %q, want %q", report.Codec, codec)
		}
		if report.WireBytes <= 0 || report.PayloadBytes <= 0 {
			t.Fatalf("%s: wire=%d payload=%d; both must be metered", codec, report.WireBytes, report.PayloadBytes)
		}
		if report.WireBytes >= report.PayloadBytes {
			t.Errorf("%s: wire bytes %d >= tree-codec payload %d; the codec should save",
				codec, report.WireBytes, report.PayloadBytes)
		}
		got := assembleTarget(t, tgtStore)
		if !xmltree.Equal(want, got) {
			t.Errorf("%s: document changed in negotiated transit", codec)
		}
		done()
	}
}

func TestStreamedMatchesBufferedReport(t *testing.T) {
	// Timing fields must be populated the same way on both paths; the
	// streamed ShipBytes includes shipment framing, so it is >= the tree
	// path's per-record count.
	ag, plan, _, done := startExchange(t, AlgGreedy)
	defer done()
	buffered, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{Link: netsim.Loopback()})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := ag.ExecuteOpts("CustomerInfoService", plan, ExecOptions{Link: netsim.Loopback(), Streamed: true})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.ShipBytes < buffered.ShipBytes {
		t.Errorf("streamed ShipBytes %d < buffered %d; framing should only add bytes",
			streamed.ShipBytes, buffered.ShipBytes)
	}
}
