package registry

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"xdx/internal/endpoint"
	"xdx/internal/netsim"
	"xdx/internal/relstore"
	"xdx/internal/schema"
)

// The agency must serve many services and concurrent exchanges safely.
func TestConcurrentServices(t *testing.T) {
	sch := schema.CustomerInfo()
	sFr := sFragmentation(t, sch)
	tFr := tFragmentation(t, sch)
	ag := New()

	const n = 6
	type world struct {
		tgt  *relstore.Store
		stop []func()
	}
	worlds := make([]world, n)
	for i := 0; i < n; i++ {
		srcStore, err := relstore.NewStore(sFr)
		if err != nil {
			t.Fatal(err)
		}
		if err := srcStore.LoadDocument(customerDoc(t)); err != nil {
			t.Fatal(err)
		}
		tgtStore, err := relstore.NewStore(tFr)
		if err != nil {
			t.Fatal(err)
		}
		srcSrv := httptest.NewServer(endpoint.New("S", &endpoint.RelBackend{Store: srcStore, Speed: 1, CanCombine: true}, nil).Handler())
		tgtSrv := httptest.NewServer(endpoint.New("T", &endpoint.RelBackend{Store: tgtStore, Speed: 1, CanCombine: true}, nil).Handler())
		svc := fmt.Sprintf("svc-%d", i)
		if err := ag.Register(svc, RoleSource, wsdlFor(t, sch, sFr, srcSrv.URL), srcSrv.URL); err != nil {
			t.Fatal(err)
		}
		if err := ag.Register(svc, RoleTarget, wsdlFor(t, sch, tFr, tgtSrv.URL), tgtSrv.URL); err != nil {
			t.Fatal(err)
		}
		worlds[i] = world{tgt: tgtStore, stop: []func(){srcSrv.Close, tgtSrv.Close}}
	}
	defer func() {
		for _, w := range worlds {
			for _, s := range w.stop {
				s()
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc := fmt.Sprintf("svc-%d", i)
			plan, err := ag.Plan(svc, PlanOptions{Algorithm: AlgGreedy})
			if err != nil {
				errs <- fmt.Errorf("%s plan: %w", svc, err)
				return
			}
			if _, err := ag.Execute(svc, plan, netsim.Loopback()); err != nil {
				errs <- fmt.Errorf("%s execute: %w", svc, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i, w := range worlds {
		if w.tgt.Rows() == 0 {
			t.Errorf("world %d target empty", i)
		}
	}
	if got := len(ag.Services()); got != n {
		t.Errorf("services = %d, want %d", got, n)
	}
}

// One target store serving repeated exchanges (Clear between runs) must
// not race with cost probing.
func TestRepeatedExchangesSameTarget(t *testing.T) {
	ag, plan, tgtStore, done := startExchange(t, AlgGreedy)
	defer done()
	for i := 0; i < 5; i++ {
		tgtStore.Clear()
		if _, err := ag.Execute("CustomerInfoService", plan, netsim.Loopback()); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if tgtStore.Rows() == 0 {
			t.Fatalf("run %d: empty target", i)
		}
	}
}
