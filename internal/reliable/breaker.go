package reliable

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the circuit is open (or while
// the single half-open probe is in flight). It is not retryable: the
// caller should fail fast rather than queue on a known-bad endpoint.
var ErrOpen = errors.New("reliable: circuit open")

// BreakerState is the classic three-state circuit-breaker lifecycle.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed lets traffic through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome closes
	// or re-opens the circuit.
	BreakerHalfOpen
)

// String renders the state for logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a circuit breaker. Zero fields take defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive transient failures open the
	// circuit. Default 5.
	FailureThreshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe. Default 1s.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// Breaker is a per-endpoint circuit breaker. Only transient
// (Retryable) failures count toward opening it: a well-formed application
// fault proves the endpoint is alive, so it resets the failure streak just
// like a success.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
	now      func() time.Time
	onChange func(from, to BreakerState)
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// OnStateChange registers fn to observe state transitions (closed→open,
// open→half-open, half-open→closed, …). fn runs after the breaker's lock
// is released, so it may call back into the breaker; it must be safe for
// concurrent use. Only one hook is held — later calls replace it.
func (b *Breaker) OnStateChange(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onChange = fn
	b.mu.Unlock()
}

// setState moves the state machine while the lock is held and returns the
// notification to fire once the lock is released (nil when the state did
// not actually change or no hook is registered).
func (b *Breaker) setState(to BreakerState) func() {
	from := b.state
	b.state = to
	if from == to || b.onChange == nil {
		return nil
	}
	fn := b.onChange
	return func() { fn(from, to) }
}

// State reports the current state, advancing open→half-open when the
// cooldown has elapsed — the same transition Allow performs, so the two
// never disagree. Reading the state does not claim the half-open probe;
// the next Allow still admits exactly one.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	var fire func()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		fire = b.setState(BreakerHalfOpen)
	}
	st := b.state
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
	return st
}

// Allow asks permission for one call. In the open state it returns ErrOpen
// until the cooldown elapses, then admits exactly one half-open probe;
// concurrent callers during the probe get ErrOpen.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	var fire func()
	var err error
	switch b.state {
	case BreakerClosed:
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			err = ErrOpen
		} else {
			fire = b.setState(BreakerHalfOpen)
			b.probing = true
		}
	default: // half-open
		if b.probing {
			err = ErrOpen
		} else {
			b.probing = true
		}
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
	return err
}

// Record reports the outcome of an allowed call. nil or a non-transient
// error closes the circuit (the endpoint answered); a transient error
// increments the failure streak and opens the circuit at the threshold —
// immediately when it strikes the half-open probe.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	var fire func()
	transient := err != nil && Retryable(err)
	switch {
	case !transient:
		fire = b.setState(BreakerClosed)
		b.fails = 0
		b.probing = false
	default:
		b.fails++
		if b.state == BreakerHalfOpen || b.fails >= b.cfg.FailureThreshold {
			fire = b.setState(BreakerOpen)
			b.openedAt = b.now()
			b.fails = 0
			b.probing = false
		}
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// BreakerSet hands out one breaker per endpoint URL, so breaker state is
// shared across the exchanges of one agency but isolated between
// endpoints.
type BreakerSet struct {
	cfg BreakerConfig

	mu       sync.Mutex
	m        map[string]*Breaker
	onChange func(url string, from, to BreakerState)
}

// NewBreakerSet returns an empty set minting breakers with cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, m: make(map[string]*Breaker)}
}

// OnStateChange registers fn to observe every member breaker's transitions,
// keyed by endpoint URL. It covers breakers already minted and those minted
// later; fn must be safe for concurrent use.
func (s *BreakerSet) OnStateChange(fn func(url string, from, to BreakerState)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onChange = fn
	for url, b := range s.m {
		b.OnStateChange(s.hookFor(url))
	}
}

// hookFor binds the set-level hook to one member's URL. Callers hold s.mu.
func (s *BreakerSet) hookFor(url string) func(from, to BreakerState) {
	fn := s.onChange
	return func(from, to BreakerState) { fn(url, from, to) }
}

// For returns the endpoint's breaker, minting it on first sight.
func (s *BreakerSet) For(url string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[url]
	if b == nil {
		b = NewBreaker(s.cfg)
		if s.onChange != nil {
			b.OnStateChange(s.hookFor(url))
		}
		s.m[url] = b
	}
	return b
}

// States snapshots every member breaker's current state by URL — the
// /metrics export. Reading advances cooled-down breakers to half-open,
// exactly as Allow would.
func (s *BreakerSet) States() map[string]string {
	s.mu.Lock()
	members := make(map[string]*Breaker, len(s.m))
	for url, b := range s.m {
		members[url] = b
	}
	s.mu.Unlock()
	out := make(map[string]string, len(members))
	for url, b := range members {
		out[url] = b.State().String()
	}
	return out
}
