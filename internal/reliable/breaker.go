package reliable

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the circuit is open (or while
// the single half-open probe is in flight). It is not retryable: the
// caller should fail fast rather than queue on a known-bad endpoint.
var ErrOpen = errors.New("reliable: circuit open")

// BreakerState is the classic three-state circuit-breaker lifecycle.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed lets traffic through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome closes
	// or re-opens the circuit.
	BreakerHalfOpen
)

// String renders the state for logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a circuit breaker. Zero fields take defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive transient failures open the
	// circuit. Default 5.
	FailureThreshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe. Default 1s.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// Breaker is a per-endpoint circuit breaker. Only transient
// (Retryable) failures count toward opening it: a well-formed application
// fault proves the endpoint is alive, so it resets the failure streak just
// like a success.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
	now      func() time.Time
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// State reports the current state (advancing open→half-open if the
// cooldown elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow asks permission for one call. In the open state it returns ErrOpen
// until the cooldown elapses, then admits exactly one half-open probe;
// concurrent callers during the probe get ErrOpen.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return ErrOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrOpen
		}
		b.probing = true
		return nil
	}
}

// Record reports the outcome of an allowed call. nil or a non-transient
// error closes the circuit (the endpoint answered); a transient error
// increments the failure streak and opens the circuit at the threshold —
// immediately when it strikes the half-open probe.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	transient := err != nil && Retryable(err)
	if !transient {
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.cfg.FailureThreshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.fails = 0
		b.probing = false
	}
}

// BreakerSet hands out one breaker per endpoint URL, so breaker state is
// shared across the exchanges of one agency but isolated between
// endpoints.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet returns an empty set minting breakers with cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, m: make(map[string]*Breaker)}
}

// For returns the endpoint's breaker, minting it on first sight.
func (s *BreakerSet) For(url string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[url]
	if b == nil {
		b = NewBreaker(s.cfg)
		s.m[url] = b
	}
	return b
}
