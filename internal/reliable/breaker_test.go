package reliable

import (
	"errors"
	"io"
	"testing"
	"time"

	"xdx/internal/soap"
)

// tickBreaker returns a breaker on a manual clock.
func tickBreaker(cfg BreakerConfig) (*Breaker, *time.Time) {
	b := NewBreaker(cfg)
	clock := time.Unix(0, 0)
	b.now = func() time.Time { return clock }
	return b, &clock
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := tickBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second})
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(io.ErrUnexpectedEOF)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v before threshold", b.State())
	}
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clock := tickBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF) // opens
	*clock = clock.Add(2 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open refused the probe: %v", err)
	}
	// A second caller during the probe is rejected.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second probe admitted: %v", err)
	}
	b.Record(nil) // probe succeeded
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clock := tickBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	*clock = clock.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(io.ErrUnexpectedEOF) // probe failed: reopen immediately
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("reopened breaker admitted a call")
	}
}

func TestBreakerApplicationFaultResetsStreak(t *testing.T) {
	// A well-formed application fault proves the endpoint is alive: it must
	// reset the failure streak, not extend it.
	b, _ := tickBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Second})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	b.Allow()
	b.Record(&soap.Fault{Code: "soap:Server", String: "missing program", HTTPStatus: 500})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v; streak should have reset", b.State())
	}
}

func TestBreakerSetPerEndpoint(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour})
	a := s.For("http://a/soap")
	if a != s.For("http://a/soap") {
		t.Fatal("same URL minted two breakers")
	}
	a.Allow()
	a.Record(io.ErrUnexpectedEOF)
	if err := s.For("http://a/soap").Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("breaker state not shared per URL")
	}
	if err := s.For("http://b/soap").Allow(); err != nil {
		t.Fatalf("endpoint b affected by a's failures: %v", err)
	}
}

func TestRetrierRespectsOpenBreaker(t *testing.T) {
	b, _ := tickBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	r, _ := testRetrier(Policy{}, 1)
	calls := 0
	err := r.Do("op", b, func(int) error { calls++; return nil })
	if !errors.Is(err, ErrOpen) || calls != 0 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestBreakerStateString(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" || BreakerHalfOpen.String() != "half-open" {
		t.Error("state strings wrong")
	}
}
