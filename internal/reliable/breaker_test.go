package reliable

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdx/internal/soap"
)

// tickBreaker returns a breaker on a manual clock.
func tickBreaker(cfg BreakerConfig) (*Breaker, *time.Time) {
	b := NewBreaker(cfg)
	clock := time.Unix(0, 0)
	b.now = func() time.Time { return clock }
	return b, &clock
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := tickBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second})
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(io.ErrUnexpectedEOF)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v before threshold", b.State())
	}
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clock := tickBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF) // opens
	*clock = clock.Add(2 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open refused the probe: %v", err)
	}
	// A second caller during the probe is rejected.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second probe admitted: %v", err)
	}
	b.Record(nil) // probe succeeded
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clock := tickBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	*clock = clock.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(io.ErrUnexpectedEOF) // probe failed: reopen immediately
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("reopened breaker admitted a call")
	}
}

func TestBreakerApplicationFaultResetsStreak(t *testing.T) {
	// A well-formed application fault proves the endpoint is alive: it must
	// reset the failure streak, not extend it.
	b, _ := tickBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Second})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	b.Allow()
	b.Record(&soap.Fault{Code: "soap:Server", String: "missing program", HTTPStatus: 500})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v; streak should have reset", b.State())
	}
}

func TestBreakerSetPerEndpoint(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour})
	a := s.For("http://a/soap")
	if a != s.For("http://a/soap") {
		t.Fatal("same URL minted two breakers")
	}
	a.Allow()
	a.Record(io.ErrUnexpectedEOF)
	if err := s.For("http://a/soap").Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("breaker state not shared per URL")
	}
	if err := s.For("http://b/soap").Allow(); err != nil {
		t.Fatalf("endpoint b affected by a's failures: %v", err)
	}
}

func TestRetrierRespectsOpenBreaker(t *testing.T) {
	b, _ := tickBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	r, _ := testRetrier(Policy{}, 1)
	calls := 0
	err := r.Do("op", b, func(int) error { calls++; return nil })
	if !errors.Is(err, ErrOpen) || calls != 0 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestBreakerStateString(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" || BreakerHalfOpen.String() != "half-open" {
		t.Error("state strings wrong")
	}
}

func TestBreakerStateDoesNotClaimProbe(t *testing.T) {
	// State() used to claim the half-open probe slot, so a metrics export
	// polling state could starve the actual retry of its probe.
	b, clock := tickBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Allow()
	b.Record(io.ErrUnexpectedEOF)
	*clock = clock.Add(2 * time.Second)
	for i := 0; i < 3; i++ {
		if b.State() != BreakerHalfOpen {
			t.Fatalf("state = %v after cooldown", b.State())
		}
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe slot consumed by State(): %v", err)
	}
}

func TestBreakerOnStateChange(t *testing.T) {
	b, clock := tickBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	type hop struct{ from, to BreakerState }
	var hops []hop
	b.OnStateChange(func(from, to BreakerState) { hops = append(hops, hop{from, to}) })
	b.Allow()
	b.Record(io.ErrUnexpectedEOF) // closed -> open
	*clock = clock.Add(2 * time.Second)
	b.Allow()     // open -> half-open
	b.Record(nil) // half-open -> closed
	b.Allow()
	b.Record(nil) // no transition: stays closed, no callback
	want := []hop{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(hops) != len(want) {
		t.Fatalf("hops = %v", hops)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hop %d = %v, want %v", i, hops[i], want[i])
		}
	}
}

func TestBreakerSetOnStateChangeCoversFutureMembers(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour})
	pre := s.For("http://pre/soap")
	var urls []string
	s.OnStateChange(func(url string, from, to BreakerState) { urls = append(urls, url) })
	pre.Allow()
	pre.Record(io.ErrUnexpectedEOF)
	post := s.For("http://post/soap")
	post.Allow()
	post.Record(io.ErrUnexpectedEOF)
	if len(urls) != 2 || urls[0] != "http://pre/soap" || urls[1] != "http://post/soap" {
		t.Fatalf("hook urls = %v", urls)
	}
	states := s.States()
	if states["http://pre/soap"] != "open" || states["http://post/soap"] != "open" {
		t.Fatalf("states = %v", states)
	}
}

func TestBreakerConcurrentStateAndAllow(t *testing.T) {
	// Run under -race this is the State/Allow/Record consistency
	// regression: concurrent state reads (the /metrics exporter), hook
	// registration, and traffic must not race or deadlock — the hook fires
	// outside the lock and may itself read state.
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Microsecond})
	var transitions atomic.Int64
	b.OnStateChange(func(from, to BreakerState) {
		transitions.Add(1)
		_ = b.State() // re-entry from the hook must not deadlock
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					_ = b.State()
					continue
				}
				if err := b.Allow(); err != nil {
					continue
				}
				if i%3 == 0 {
					b.Record(io.ErrUnexpectedEOF)
				} else {
					b.Record(nil)
				}
			}
		}(g)
	}
	wg.Wait()
	if transitions.Load() == 0 {
		t.Error("no transitions observed under churn")
	}
}
