package reliable

import (
	"net/http"

	"xdx/internal/soap"
)

// Config switches an exchange onto the reliable path and tunes it. The
// zero value of every field selects a sane default, so &Config{} enables
// reliability as-is.
type Config struct {
	// Policy is the retry/backoff/deadline policy.
	Policy Policy
	// Breaker tunes the per-endpoint circuit breakers minted by this
	// config (ignored when Breakers is set).
	Breaker BreakerConfig
	// Breakers, when set, shares breaker state across exchanges (e.g. one
	// set per agency). Nil mints a private set per exchange.
	Breakers *BreakerSet
	// ChunkSize is the resume granularity: records per shipment chunk.
	// Default 64.
	ChunkSize int
	// Seed drives backoff jitter and session ID minting; equal seeds give
	// reproducible behaviour (fault-injection tests depend on it). Zero is
	// a valid seed.
	Seed int64
	// Transport, when set, is installed into every SOAP client the
	// exchange makes — the hook netsim.FaultyLink.RoundTripper plugs into,
	// also usable for instrumentation or custom dialing.
	Transport http.RoundTripper
}

// Exchange is the per-exchange engine the registry drives calls through:
// one retrier (shared budget and deadline), breakers per endpoint, and the
// HTTP client carrying the configured transport.
type Exchange struct {
	cfg      *Config
	retrier  *Retrier
	breakers *BreakerSet
	hc       *http.Client
}

// NewExchange prepares the reliability state for one exchange.
func NewExchange(cfg *Config) *Exchange {
	if cfg == nil {
		cfg = &Config{}
	}
	breakers := cfg.Breakers
	if breakers == nil {
		breakers = NewBreakerSet(cfg.Breaker)
	}
	var hc *http.Client
	if cfg.Transport != nil {
		hc = &http.Client{Transport: cfg.Transport}
	}
	return &Exchange{
		cfg:      cfg,
		retrier:  NewRetrier(cfg.Policy, cfg.Seed),
		breakers: breakers,
		hc:       hc,
	}
}

// Client builds a SOAP client for url under this exchange's transport and
// per-attempt timeout.
func (e *Exchange) Client(url string) *soap.Client {
	return &soap.Client{URL: url, HTTPClient: e.hc, Timeout: e.cfg.Policy.AttemptTimeout}
}

// Do runs one logical call against the endpoint at url with retries and
// its circuit breaker. attempt receives the 0-based try number.
func (e *Exchange) Do(op, url string, attempt func(try int) error) error {
	return e.retrier.Do(op, e.breakers.For(url), attempt)
}

// Retries reports retries spent so far across the exchange.
func (e *Exchange) Retries() int { return e.retrier.Retries() }

// Retrier exposes the exchange's retry engine so callers can register
// observability hooks (Retrier.OnRetry) before driving calls.
func (e *Exchange) Retrier() *Retrier { return e.retrier }

// Breakers exposes the exchange's breaker set (the configured shared set,
// or the private one minted for this exchange) for hook registration and
// state export.
func (e *Exchange) Breakers() *BreakerSet { return e.breakers }

// SharedBreakers reports whether the breaker set came from the config
// (shared across exchanges) rather than being minted privately — shared
// sets should be wired for observability once by their owner, not per
// exchange.
func (e *Exchange) SharedBreakers() bool { return e.cfg.Breakers != nil }

// ChunkSize resolves the configured resume granularity.
func (e *Exchange) ChunkSize() int {
	if e.cfg.ChunkSize > 0 {
		return e.cfg.ChunkSize
	}
	return 64
}

// SessionID mints a session identifier under this exchange's seed.
func (e *Exchange) SessionID() string { return NewSessionID(e.cfg.Seed) }
