// Package reliable is the fault-tolerance subsystem of the exchange path.
// The paper ships large XML volumes over a wide-area link (its 25 MB
// publish&map transfer ran at ~160 KB/s for 158.65 s); at that scale a
// transfer that aborts on any mid-stream error and restarts from byte zero
// is unusable. This package supplies the three pieces the exchange layers
// plug together:
//
//   - a retry policy engine (Policy/Retrier): exponential backoff with
//     full jitter, per-attempt timeouts, a whole-exchange deadline, and a
//     retry budget;
//   - per-endpoint circuit breakers (Breaker/BreakerSet) with the classic
//     closed/open/half-open lifecycle;
//   - resumable shipment sessions (Session/SessionStore/Ledger): the
//     target acks per-chunk checkpoints and keeps an idempotency ledger
//     keyed by (session, edge, record ID), so a reconnecting source
//     resumes from the last acked chunk and replayed records dedup.
//
// The soap, wire, endpoint, and registry layers wire these together; see
// registry.ExecOptions.Reliability.
package reliable

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"xdx/internal/soap"
)

// Policy tunes the retry engine. The zero value of each field selects the
// documented default, so Policy{} is a usable production policy.
type Policy struct {
	// MaxAttempts bounds tries per call (first attempt included).
	// Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; attempt n waits a
	// uniformly random duration in [0, min(MaxDelay, BaseDelay*2^n)] —
	// exponential backoff with full jitter. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff window. Default 2s.
	MaxDelay time.Duration
	// AttemptTimeout bounds one SOAP call, body included (it becomes
	// soap.Client.Timeout). Zero keeps soap.DefaultTimeout.
	AttemptTimeout time.Duration
	// Deadline bounds the whole exchange: once exceeded, no further retry
	// is scheduled (the in-flight attempt still finishes). Zero = none.
	Deadline time.Duration
	// Budget caps total retries across all calls of one exchange, so a
	// flapping link cannot multiply MaxAttempts across every hop.
	// Default 16.
	Budget int
}

// withDefaults resolves zero fields to the documented defaults.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 16
	}
	return p
}

// ErrBudgetExhausted reports that an exchange spent its whole retry
// budget; the last attempt's error is wrapped alongside it.
var ErrBudgetExhausted = errors.New("reliable: retry budget exhausted")

// ErrDeadline reports that the exchange deadline passed while a retry was
// still warranted.
var ErrDeadline = errors.New("reliable: exchange deadline exceeded")

// Retrier runs attempts under one exchange's policy, sharing the retry
// budget and deadline across every call it drives. It is safe for
// concurrent use.
type Retrier struct {
	p Policy

	// OnRetry, when set, observes every scheduled retry just before its
	// backoff sleep: the operation name, the 0-based try that failed, the
	// chosen delay, and the error that warranted the retry. Set it before
	// the retrier runs; it must be safe for concurrent use.
	OnRetry func(op string, try int, delay time.Duration, err error)

	mu      sync.Mutex
	rng     *rand.Rand
	start   time.Time
	retries int

	// sleep and now are swappable for tests.
	sleep func(time.Duration)
	now   func() time.Time
}

// NewRetrier starts an exchange clock with the given policy. The seed
// drives jitter; equal seeds give equal backoff sequences.
func NewRetrier(p Policy, seed int64) *Retrier {
	r := &Retrier{
		p:     p.withDefaults(),
		rng:   rand.New(rand.NewSource(seed)),
		sleep: time.Sleep,
		now:   time.Now,
	}
	r.start = r.now()
	return r
}

// Retries returns how many retries (attempts beyond each first) ran so
// far across all calls.
func (r *Retrier) Retries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// backoff draws the full-jitter delay before retry number n (0-based).
func (r *Retrier) backoff(n int) time.Duration {
	ceil := r.p.BaseDelay << uint(n)
	if ceil > r.p.MaxDelay || ceil <= 0 {
		ceil = r.p.MaxDelay
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(ceil) + 1))
}

// Do runs attempt until it succeeds, returns a non-retryable error, or the
// policy (attempts, budget, deadline) or breaker cuts it off. The breaker
// may be nil. attempt receives the 0-based try number.
func (r *Retrier) Do(op string, br *Breaker, attempt func(try int) error) error {
	for try := 0; ; try++ {
		if br != nil {
			if err := br.Allow(); err != nil {
				return fmt.Errorf("reliable: %s: %w", op, err)
			}
		}
		err := attempt(try)
		if br != nil {
			br.Record(err)
		}
		if err == nil {
			return nil
		}
		if !Retryable(err) {
			return err
		}
		if try+1 >= r.p.MaxAttempts {
			return fmt.Errorf("reliable: %s failed after %d attempts: %w", op, try+1, err)
		}
		r.mu.Lock()
		budgetLeft := r.retries < r.p.Budget
		if budgetLeft {
			r.retries++
		}
		deadlineOK := r.p.Deadline <= 0 || r.now().Sub(r.start) < r.p.Deadline
		r.mu.Unlock()
		if !budgetLeft {
			return fmt.Errorf("%w: %s: %w", ErrBudgetExhausted, op, err)
		}
		if !deadlineOK {
			return fmt.Errorf("%w: %s: %w", ErrDeadline, op, err)
		}
		delay := r.backoff(try)
		if r.OnRetry != nil {
			r.OnRetry(op, try, delay, err)
		}
		r.sleep(delay)
	}
}

// Permanent wraps err so Retryable classifies it as non-retryable.
// Protocol and decode failures from this codebase repeat identically on
// every attempt; marking them permanent fails the exchange fast instead
// of burning the backoff budget and tripping the endpoint's breaker on
// an error no retry can fix. Permanent(nil) is nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// permanentError is the marker Permanent attaches; errors.As unwraps
// through fmt.Errorf chains to find it.
type permanentError struct{ err error }

// Error implements error.
func (e *permanentError) Error() string { return e.err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *permanentError) Unwrap() error { return e.err }

// Retryable classifies an error as transient. Transport-level failures
// (connection drops, truncated streams, attempt timeouts — anything that
// is not a SOAP fault) are retryable; SOAP faults are retryable only when
// they are really HTTP-level outages: 502/503/504, or any 5xx that did
// not come with a well-formed fault body (soap:HTTP — e.g. a proxy error
// page). A 5xx carrying a proper soap:Server fault is an application
// error and retrying would just repeat it. Likewise non-retryable:
// errors marked Permanent, payload decode rejections (soap.PayloadError —
// the response arrived intact and was refused), and context.Canceled (the
// caller gave up; context.DeadlineExceeded stays retryable, it is how a
// stalled attempt's timeout surfaces).
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var pe *permanentError
	if errors.As(err, &pe) {
		return false
	}
	var de *soap.PayloadError
	if errors.As(err, &de) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var f *soap.Fault
	if errors.As(err, &f) {
		switch f.HTTPStatus {
		case 502, 503, 504:
			return true
		}
		if f.Code == "soap:HTTP" && f.HTTPStatus >= 500 {
			return true
		}
		return false
	}
	if errors.Is(err, ErrOpen) {
		return false
	}
	return true
}
