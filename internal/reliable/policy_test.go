package reliable

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"xdx/internal/soap"
)

// testRetrier returns a retrier whose sleeps are recorded, not taken.
func testRetrier(p Policy, seed int64) (*Retrier, *[]time.Duration) {
	r := NewRetrier(p, seed)
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }
	return r, &slept
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	r, slept := testRetrier(Policy{MaxAttempts: 5}, 1)
	calls := 0
	err := r.Do("op", nil, func(try int) error {
		if try != calls {
			t.Fatalf("try = %d, want %d", try, calls)
		}
		calls++
		if calls < 3 {
			return io.ErrUnexpectedEOF
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	if r.Retries() != 2 {
		t.Fatalf("Retries = %d", r.Retries())
	}
}

func TestRetryStopsAtMaxAttempts(t *testing.T) {
	r, _ := testRetrier(Policy{MaxAttempts: 3}, 1)
	calls := 0
	err := r.Do("op", nil, func(int) error { calls++; return io.ErrUnexpectedEOF })
	if err == nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("last error not wrapped: %v", err)
	}
}

func TestRetryDoesNotRetryApplicationFaults(t *testing.T) {
	r, _ := testRetrier(Policy{}, 1)
	calls := 0
	fault := &soap.Fault{Code: "soap:Server", String: "missing program", HTTPStatus: 500}
	err := r.Do("op", nil, func(int) error { calls++; return fault })
	if calls != 1 {
		t.Fatalf("application fault retried %d times", calls)
	}
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("fault lost: %v", err)
	}
}

func TestRetryBudgetShared(t *testing.T) {
	// Budget 3 across two calls: the second call gets only what the first
	// left over.
	r, _ := testRetrier(Policy{MaxAttempts: 10, Budget: 3}, 1)
	calls := 0
	r.Do("a", nil, func(try int) error {
		calls++
		if try < 2 {
			return io.ErrUnexpectedEOF
		}
		return nil
	}) // spends 2 retries
	err := r.Do("b", nil, func(int) error { calls++; return io.ErrUnexpectedEOF })
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want budget exhaustion, got %v", err)
	}
	if r.Retries() != 3 {
		t.Fatalf("Retries = %d, want 3", r.Retries())
	}
}

func TestRetryDeadline(t *testing.T) {
	r, _ := testRetrier(Policy{MaxAttempts: 10, Deadline: time.Minute}, 1)
	clock := time.Unix(0, 0)
	r.now = func() time.Time { return clock }
	r.start = clock
	calls := 0
	err := r.Do("op", nil, func(int) error {
		calls++
		clock = clock.Add(45 * time.Second)
		return io.ErrUnexpectedEOF
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (second attempt crossed the deadline)", calls)
	}
}

func TestBackoffFullJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	r := NewRetrier(p, 42)
	for n := 0; n < 10; n++ {
		ceil := p.BaseDelay << uint(n)
		if ceil > p.MaxDelay || ceil <= 0 {
			ceil = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			d := r.backoff(n)
			if d < 0 || d > ceil {
				t.Fatalf("backoff(%d) = %v outside [0, %v]", n, d, ceil)
			}
		}
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		r := NewRetrier(Policy{}, seed)
		var out []time.Duration
		for n := 0; n < 8; n++ {
			out = append(out, r.backoff(n))
		}
		return out
	}
	a, b := seq(9), seq(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded backoff diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"transport", io.ErrUnexpectedEOF, true},
		{"wrapped transport", fmt.Errorf("call: %w", io.ErrUnexpectedEOF), true},
		{"503 fault", &soap.Fault{Code: "soap:HTTP", String: "outage", HTTPStatus: 503}, true},
		{"502 soap fault", &soap.Fault{Code: "soap:Server", HTTPStatus: 502}, true},
		{"unparsable 500", &soap.Fault{Code: "soap:HTTP", HTTPStatus: 500}, true},
		{"application 500", &soap.Fault{Code: "soap:Server", HTTPStatus: 500}, false},
		{"client fault", &soap.Fault{Code: "soap:Client", HTTPStatus: 400}, false},
		{"server-side fault unsent", &soap.Fault{Code: "soap:Server"}, false},
		{"open circuit", ErrOpen, false},
		{"permanent transport", Permanent(io.ErrUnexpectedEOF), false},
		{"wrapped permanent", fmt.Errorf("call: %w", Permanent(io.ErrUnexpectedEOF)), false},
		{"payload rejection", &soap.PayloadError{Err: fmt.Errorf("unknown fragment")}, false},
		{"wrapped payload rejection", fmt.Errorf("scan: %w", &soap.PayloadError{Err: io.EOF}), false},
		{"caller canceled", context.Canceled, false},
		{"wrapped canceled", fmt.Errorf("call: %w", context.Canceled), false},
		{"attempt timeout", context.DeadlineExceeded, true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestExchangeDefaults(t *testing.T) {
	e := NewExchange(nil)
	if e.ChunkSize() != 64 {
		t.Errorf("ChunkSize = %d", e.ChunkSize())
	}
	c := e.Client("http://x/soap")
	if c.URL != "http://x/soap" || c.HTTPClient != nil {
		t.Errorf("client = %+v", c)
	}
	if id1, id2 := e.SessionID(), e.SessionID(); id1 == id2 {
		t.Errorf("session IDs collide: %s", id1)
	}
}
