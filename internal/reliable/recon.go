package reliable

// Delta-exchange reconciliation. The agency keeps, per exchange stream, a
// record-level index of what the previous successful session delivered:
// for every cross-edge instance, a map from record ID (the same IDs the
// target Ledger dedups on) to a content hash. A repeat exchange diffs the
// freshly computed shipment against the index and ships only added or
// changed records, plus tombstones for IDs that disappeared. The index is
// guarded by a fragmentation epoch — when the plan's fragment signatures
// change, the old per-edge keys are meaningless and the exchange falls
// back to a full re-ship.

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"xdx/internal/core"
	"xdx/internal/xmltree"
)

// EdgeHashes maps record ID to content hash for one cross-edge instance.
type EdgeHashes map[string]uint64

// ReconIndex is the agency-side reconciliation state, keyed by stream (one
// per service/plan exchange pair).
type ReconIndex struct {
	mu      sync.Mutex
	streams map[string]*reconStream
}

type reconStream struct {
	epoch string
	edges map[string]EdgeHashes
}

// NewReconIndex returns an empty (everywhere-cold) index.
func NewReconIndex() *ReconIndex {
	return &ReconIndex{streams: make(map[string]*reconStream)}
}

// Snapshot returns the committed hashes for a stream if the index is warm
// at this epoch. A cold stream or an epoch mismatch returns ok=false — the
// caller must full-reship. The returned maps are shared; callers must not
// mutate them.
func (r *ReconIndex) Snapshot(stream, epoch string) (map[string]EdgeHashes, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.streams[stream]
	if s == nil || s.epoch != epoch {
		return nil, false
	}
	return s.edges, true
}

// Commit replaces a stream's index with the hashes of a successfully
// delivered shipment at the given epoch.
func (r *ReconIndex) Commit(stream, epoch string, edges map[string]EdgeHashes) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.streams[stream] = &reconStream{epoch: epoch, edges: edges}
}

// Invalidate drops a stream's index, forcing the next exchange to
// full-reship.
func (r *ReconIndex) Invalidate(stream string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.streams, stream)
}

// HashRecord computes an FNV-1a content hash over a record subtree: names,
// IDs, attributes, text, and child order all contribute, so any visible
// change to the record changes its hash.
func HashRecord(rec *xmltree.Node) uint64 {
	h := fnv.New64a()
	var buf []byte
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		buf = buf[:0]
		buf = append(buf, n.Name...)
		buf = append(buf, 0)
		buf = append(buf, n.ID...)
		buf = append(buf, 0)
		buf = append(buf, n.Parent...)
		buf = append(buf, 0)
		buf = append(buf, n.Text...)
		buf = append(buf, 0)
		for _, a := range n.Attrs {
			buf = append(buf, a.Name...)
			buf = append(buf, '=')
			buf = append(buf, a.Value...)
			buf = append(buf, 0)
		}
		buf = strconv.AppendInt(buf, int64(len(n.Kids)), 10)
		buf = append(buf, 1)
		h.Write(buf)
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(rec)
	return h.Sum64()
}

// HashShipment hashes every record of a materialized shipment. The bool
// reports whether every record carries an ID: records without IDs cannot
// be reconciled (there is nothing to diff or tombstone by), so such
// shipments are not delta-able.
func HashShipment(out map[string]*core.Instance) (map[string]EdgeHashes, bool) {
	edges := make(map[string]EdgeHashes, len(out))
	complete := true
	for key, in := range out {
		eh := make(EdgeHashes, len(in.Records))
		for _, rec := range in.Records {
			if rec.ID == "" {
				complete = false
				continue
			}
			eh[rec.ID] = HashRecord(rec)
		}
		edges[key] = eh
	}
	return edges, complete
}

// Delta is the reconciled difference between a fresh shipment and the
// previous session's index.
type Delta struct {
	// Ship carries, per edge key, only the added or changed records, in
	// the fresh shipment's record order.
	Ship map[string]*core.Instance
	// Tombs carries, per edge key, the sorted record IDs present in the
	// index but absent from the fresh shipment.
	Tombs map[string][]string
	// Records and Tombstones count the shipped and deleted records.
	Records, Tombstones int
}

// DiffShipment reconciles a fresh shipment against a base index. Every
// edge of the fresh shipment appears in Ship (possibly with zero records —
// the edge still has to announce itself so the target patches it); edges
// that vanished entirely from the shipment contribute all their base IDs
// as tombstones.
func DiffShipment(out map[string]*core.Instance, base map[string]EdgeHashes) *Delta {
	d := &Delta{Ship: make(map[string]*core.Instance, len(out)), Tombs: make(map[string][]string)}
	for key, in := range out {
		prev := base[key]
		kept := &core.Instance{Frag: in.Frag}
		fresh := make(map[string]bool, len(in.Records))
		for _, rec := range in.Records {
			fresh[rec.ID] = true
			if h, ok := prev[rec.ID]; ok && h == HashRecord(rec) {
				continue
			}
			kept.Records = append(kept.Records, rec)
		}
		d.Ship[key] = kept
		d.Records += len(kept.Records)
		var dead []string
		for id := range prev {
			if !fresh[id] {
				dead = append(dead, id)
			}
		}
		if len(dead) > 0 {
			sort.Strings(dead)
			d.Tombs[key] = dead
			d.Tombstones += len(dead)
		}
	}
	for key, prev := range base {
		if _, live := out[key]; live || len(prev) == 0 {
			continue
		}
		dead := make([]string, 0, len(prev))
		for id := range prev {
			dead = append(dead, id)
		}
		sort.Strings(dead)
		d.Tombs[key] = dead
		d.Tombstones += len(dead)
	}
	return d
}
