package reliable

import (
	"testing"

	"xdx/internal/core"
	"xdx/internal/xmltree"
)

func reconRec(id, text string) *xmltree.Node {
	return &xmltree.Node{Name: "item", ID: id, Kids: []*xmltree.Node{{Name: "v", Text: text}}}
}

func reconShipment(edge string, recs ...*xmltree.Node) map[string]*core.Instance {
	return map[string]*core.Instance{edge: {Records: recs}}
}

func TestHashRecordSensitivity(t *testing.T) {
	base := HashRecord(reconRec("a", "1"))
	if HashRecord(reconRec("a", "1")) != base {
		t.Error("hash not deterministic")
	}
	for name, mut := range map[string]*xmltree.Node{
		"text":   reconRec("a", "2"),
		"id":     reconRec("b", "1"),
		"name":   {Name: "item2", ID: "a", Kids: []*xmltree.Node{{Name: "v", Text: "1"}}},
		"kid":    {Name: "item", ID: "a", Kids: []*xmltree.Node{{Name: "v", Text: "1"}, {Name: "w"}}},
		"attr":   {Name: "item", ID: "a", Attrs: []xmltree.Attr{{Name: "x", Value: "y"}}, Kids: []*xmltree.Node{{Name: "v", Text: "1"}}},
		"parent": {Name: "item", ID: "a", Parent: "p", Kids: []*xmltree.Node{{Name: "v", Text: "1"}}},
	} {
		if HashRecord(mut) == base {
			t.Errorf("%s change did not change hash", name)
		}
	}
	// Shape boundaries must not alias: one kid with text "ab" vs text "a"
	// plus sibling content.
	a := &xmltree.Node{Name: "n", Kids: []*xmltree.Node{{Name: "k", Text: "ab"}}}
	b := &xmltree.Node{Name: "n", Kids: []*xmltree.Node{{Name: "k", Text: "a"}, {Name: "b"}}}
	if HashRecord(a) == HashRecord(b) {
		t.Error("sibling boundary aliased")
	}
}

func TestHashShipmentFlagsMissingIDs(t *testing.T) {
	edges, ok := HashShipment(reconShipment("e", reconRec("a", "1"), reconRec("b", "2")))
	if !ok || len(edges["e"]) != 2 {
		t.Fatalf("complete shipment hashed as %v ok=%v", edges, ok)
	}
	if _, ok := HashShipment(reconShipment("e", &xmltree.Node{Name: "item"})); ok {
		t.Error("ID-less record reported as reconcilable")
	}
}

func TestDiffShipment(t *testing.T) {
	base, _ := HashShipment(reconShipment("e", reconRec("a", "1"), reconRec("b", "2"), reconRec("c", "3")))
	// a unchanged, b updated, c deleted, d added.
	d := DiffShipment(reconShipment("e", reconRec("a", "1"), reconRec("b", "20"), reconRec("d", "4")), base)
	if d.Records != 2 {
		t.Fatalf("Records = %d, want 2 (update+add)", d.Records)
	}
	got := map[string]bool{}
	for _, r := range d.Ship["e"].Records {
		got[r.ID] = true
	}
	if !got["b"] || !got["d"] || got["a"] {
		t.Fatalf("shipped %v, want b and d only", got)
	}
	if d.Tombstones != 1 || len(d.Tombs["e"]) != 1 || d.Tombs["e"][0] != "c" {
		t.Fatalf("tombstones %v, want [c]", d.Tombs)
	}
}

func TestDiffShipmentNoChange(t *testing.T) {
	ship := reconShipment("e", reconRec("a", "1"))
	base, _ := HashShipment(ship)
	d := DiffShipment(ship, base)
	if d.Records != 0 || d.Tombstones != 0 {
		t.Fatalf("no-op churn produced %d records %d tombstones", d.Records, d.Tombstones)
	}
	if in := d.Ship["e"]; in == nil || len(in.Records) != 0 {
		t.Fatal("edge must still announce itself with an empty instance")
	}
}

func TestDiffShipmentVanishedEdge(t *testing.T) {
	base := map[string]EdgeHashes{"gone": {"x": 1, "y": 2}, "empty": {}}
	d := DiffShipment(reconShipment("e", reconRec("a", "1")), base)
	if len(d.Tombs["gone"]) != 2 || d.Tombs["gone"][0] != "x" {
		t.Fatalf("vanished edge tombstones %v", d.Tombs)
	}
	if _, ok := d.Tombs["empty"]; ok {
		t.Error("empty vanished edge produced tombstones")
	}
}

func TestReconIndexEpochGuard(t *testing.T) {
	r := NewReconIndex()
	if _, ok := r.Snapshot("s", "e1"); ok {
		t.Fatal("cold index reported warm")
	}
	r.Commit("s", "e1", map[string]EdgeHashes{"e": {"a": 1}})
	if snap, ok := r.Snapshot("s", "e1"); !ok || snap["e"]["a"] != 1 {
		t.Fatal("committed index not visible")
	}
	if _, ok := r.Snapshot("s", "e2"); ok {
		t.Fatal("epoch mismatch reported warm")
	}
	r.Invalidate("s")
	if _, ok := r.Snapshot("s", "e1"); ok {
		t.Fatal("invalidated index reported warm")
	}
}
