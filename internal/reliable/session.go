package reliable

// Resumable shipment sessions. A cross-edge shipment travels as a sequence
// of <instance> chunks (chunk boundaries ride on the batches
// core.SliceIO.Emit already produces, or on ChunkShipment's re-batching of
// a materialized map). Each exchange transfer gets a session ID; the
// target keeps a Ledger per session that (a) checkpoints the highest
// contiguously received chunk — the ack a reconnecting source resumes
// from — and (b) remembers every (edge, record ID) pair it committed, so
// records replayed by an overlapping resume dedup instead of doubling.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xdx/internal/core"
	"xdx/internal/xmltree"
)

// Ledger is the target-side idempotency state of one shipment session.
// Its methods match the wire.ShipmentDecoder hooks (AdmitChunk/KeepRecord/
// ChunkDone), so an endpoint plugs a ledger straight into the decoder.
type Ledger struct {
	mu      sync.Mutex
	next    int64           // lowest chunk seq not yet fully received
	seen    map[string]bool // edge\x00recordID pairs committed
	deduped int64
}

// NewLedger returns an empty ledger expecting chunk 0.
func NewLedger() *Ledger {
	return &Ledger{seen: make(map[string]bool)}
}

// AdmitChunk reports whether a chunk with this seq should be consumed:
// chunks below the checkpoint were already committed and are skipped
// wholesale. Chunks without a seq (-1) are always admitted — they carry
// their own record-level dedup.
func (l *Ledger) AdmitChunk(seq int64) bool {
	if seq < 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return seq >= l.next
}

// ChunkDone advances the checkpoint past a fully received chunk.
func (l *Ledger) ChunkDone(seq int64) {
	if seq < 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq >= l.next {
		l.next = seq + 1
	}
}

// KeepRecord implements record-level idempotency: the first time an
// (edge, ID) pair is committed it is remembered and kept; replays are
// dropped and counted. Records without IDs pass through — the chunk
// checkpoint already covers them.
func (l *Ledger) KeepRecord(edge string, rec *xmltree.Node) bool {
	if rec.ID == "" {
		return true
	}
	key := edge + "\x00" + rec.ID
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seen[key] {
		l.deduped++
		return false
	}
	l.seen[key] = true
	return true
}

// Restore seeds the chunk checkpoint from recovered durable state. It is
// for rebuilding a ledger on boot, before the session sees traffic; it
// never moves the checkpoint backwards.
func (l *Ledger) Restore(next int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if next > l.next {
		l.next = next
	}
}

// MarkSeen seeds one committed (edge, record ID) pair from recovered
// durable state — unlike KeepRecord it neither filters nor counts a
// dedup, it only remembers.
func (l *Ledger) MarkSeen(edge, id string) {
	if id == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen[edge+"\x00"+id] = true
}

// Unmark forgets a committed (edge, record ID) pair. It is the rollback
// for a commit whose durable journaling failed after KeepRecord already
// marked its records: without it the retry of that chunk would dedup the
// records away and lose them.
func (l *Ledger) Unmark(edge, id string) {
	if id == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.seen, edge+"\x00"+id)
}

// Checkpoint returns the next chunk seq the session expects — the ack a
// resuming source skips to.
func (l *Ledger) Checkpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Deduped returns how many replayed records the ledger dropped.
func (l *Ledger) Deduped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deduped
}

// Session is one resumable transfer tracked by a SessionStore. Owners
// (the endpoint) attach their protocol state to Data under Mu.
type Session struct {
	// ID names the session on the wire.
	ID string
	// Ledger is the session's idempotency state.
	Ledger *Ledger
	// Created is when the session first appeared.
	Created time.Time
	// touched is the last store access — the idleness clock Sweep runs
	// on, so a session in active use is never collected mid-transfer.
	// Guarded by the store's mutex.
	touched time.Time

	// Mu guards Data against a status probe racing a late request.
	Mu sync.Mutex
	// Data is owner-attached state (the endpoint keeps its decoded
	// program, accumulating instances, and the execute-once response
	// here).
	Data any
}

// SessionStore tracks the live sessions of one endpoint.
type SessionStore struct {
	// MaxAge is how long an idle session survives before Sweep collects
	// it. Default 10 minutes.
	MaxAge time.Duration

	// OnChange, when set, observes every change to the live-session
	// population: the live count after the change and how many idle
	// sessions the change swept (zero for mints and deletes). It runs
	// outside the store's lock and must be safe for concurrent use; set it
	// before the store sees traffic.
	OnChange func(live, swept int)

	// OnEvict, when set, receives the IDs of every session leaving the
	// store — explicit deletes and idle sweeps alike — so a durable
	// endpoint can release their journaled state. It runs outside the
	// store's lock, after the sessions are gone, and must be safe for
	// concurrent use; set it before the store sees traffic.
	OnEvict func(ids []string)

	mu  sync.Mutex
	m   map[string]*Session
	now func() time.Time
}

// NewSessionStore returns an empty store.
func NewSessionStore() *SessionStore {
	return &SessionStore{MaxAge: 10 * time.Minute, m: make(map[string]*Session), now: time.Now}
}

// Get returns the session, or nil when unknown. Access refreshes the
// session's idleness clock.
func (s *SessionStore) Get(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess := s.m[id]; sess != nil {
		sess.touched = s.now()
		return sess
	}
	return nil
}

// GetOrCreate returns the session, minting (and sweeping idle peers) on
// first sight.
func (s *SessionStore) GetOrCreate(id string) *Session {
	s.mu.Lock()
	now := s.now()
	if sess := s.m[id]; sess != nil {
		sess.touched = now
		s.mu.Unlock()
		return sess
	}
	gone := s.sweepLocked(now)
	sess := &Session{ID: id, Ledger: NewLedger(), Created: now, touched: now}
	s.m[id] = sess
	live := len(s.m)
	s.mu.Unlock()
	s.notify(live, gone)
	return sess
}

// notify fires OnChange and OnEvict outside the lock.
func (s *SessionStore) notify(live int, gone []string) {
	if s.OnEvict != nil && len(gone) > 0 {
		s.OnEvict(gone)
	}
	if s.OnChange != nil {
		s.OnChange(live, len(gone))
	}
}

// Sweep collects sessions idle past MaxAge and reports how many went.
// GetOrCreate sweeps opportunistically as new sessions arrive; an endpoint
// that stops receiving sessions should also run Sweep in the background
// (StartSweeper) so completed state is not held indefinitely.
func (s *SessionStore) Sweep() int {
	s.mu.Lock()
	gone := s.sweepLocked(s.now())
	live := len(s.m)
	s.mu.Unlock()
	if len(gone) > 0 {
		s.notify(live, gone)
	}
	return len(gone)
}

func (s *SessionStore) sweepLocked(now time.Time) []string {
	var gone []string
	for k, v := range s.m {
		if now.Sub(v.touched) > s.MaxAge {
			delete(s.m, k)
			gone = append(gone, k)
		}
	}
	return gone
}

// StartSweeper sweeps the store every interval (MaxAge/2 when zero) until
// the returned stop function is called.
func (s *SessionStore) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = s.MaxAge / 2
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Sweep()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Delete drops a session.
func (s *SessionStore) Delete(id string) {
	s.mu.Lock()
	_, had := s.m[id]
	delete(s.m, id)
	live := len(s.m)
	s.mu.Unlock()
	if had {
		if s.OnEvict != nil {
			s.OnEvict([]string{id})
		}
		if s.OnChange != nil {
			// Deletes report zero swept: sweeping is idle collection only.
			s.OnChange(live, 0)
		}
	}
}

// Len reports the live session count.
func (s *SessionStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// sessionCounter disambiguates session IDs minted in the same process.
var sessionCounter atomic.Int64

// NewSessionID mints a wire-safe session identifier. The seed folds in the
// exchange's reliability seed so ID sequences are reproducible per config;
// the process-wide counter keeps concurrent exchanges distinct.
func NewSessionID(seed int64) string {
	return fmt.Sprintf("x%x-%d", uint64(seed)&0xffffff, sessionCounter.Add(1))
}

// Chunk is one resumable unit of a shipment: a batch of records of one
// cross-edge instance, with its global sequence number.
type Chunk struct {
	Seq  int64
	Key  string
	Frag *core.Fragment
	Recs []*xmltree.Node
}

// ChunkShipment slices a materialized shipment into resumable chunks of at
// most size records, in deterministic (sorted edge key) order. Every edge
// key yields at least one chunk — an empty instance still has to announce
// itself to the target.
func ChunkShipment(out map[string]*core.Instance, size int) []Chunk {
	if size <= 0 {
		size = 64
	}
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var chunks []Chunk
	var seq int64
	for _, key := range keys {
		in := out[key]
		recs := in.Records
		if len(recs) == 0 {
			chunks = append(chunks, Chunk{Seq: seq, Key: key, Frag: in.Frag})
			seq++
			continue
		}
		for start := 0; start < len(recs); start += size {
			end := start + size
			if end > len(recs) {
				end = len(recs)
			}
			chunks = append(chunks, Chunk{Seq: seq, Key: key, Frag: in.Frag, Recs: recs[start:end]})
			seq++
		}
	}
	return chunks
}
