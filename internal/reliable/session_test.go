package reliable

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"xdx/internal/core"
	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

func TestLedgerChunkCheckpoint(t *testing.T) {
	l := NewLedger()
	if l.Checkpoint() != 0 {
		t.Fatalf("fresh checkpoint = %d", l.Checkpoint())
	}
	if !l.AdmitChunk(0) {
		t.Fatal("chunk 0 rejected")
	}
	l.ChunkDone(0)
	l.ChunkDone(1)
	if l.Checkpoint() != 2 {
		t.Fatalf("checkpoint = %d, want 2", l.Checkpoint())
	}
	if l.AdmitChunk(1) {
		t.Fatal("replayed chunk 1 admitted")
	}
	if !l.AdmitChunk(2) {
		t.Fatal("next chunk rejected")
	}
	if !l.AdmitChunk(-1) {
		t.Fatal("unsequenced chunk rejected")
	}
	l.ChunkDone(-1)
	if l.Checkpoint() != 2 {
		t.Fatal("unsequenced chunk moved the checkpoint")
	}
}

func TestLedgerRecordDedup(t *testing.T) {
	l := NewLedger()
	r1 := &xmltree.Node{Name: "Customer", ID: "c1"}
	r2 := &xmltree.Node{Name: "Customer", ID: "c2"}
	anon := &xmltree.Node{Name: "Customer"}
	if !l.KeepRecord("e1", r1) || !l.KeepRecord("e1", r2) {
		t.Fatal("first sighting dropped")
	}
	if l.KeepRecord("e1", r1) {
		t.Fatal("replayed record kept")
	}
	if !l.KeepRecord("e2", r1) {
		t.Fatal("same ID on a different edge must be distinct")
	}
	if !l.KeepRecord("e1", anon) || !l.KeepRecord("e1", anon) {
		t.Fatal("ID-less records must always pass")
	}
	if l.Deduped() != 1 {
		t.Fatalf("Deduped = %d, want 1", l.Deduped())
	}
}

func TestSessionStoreLifecycle(t *testing.T) {
	s := NewSessionStore()
	clock := time.Unix(0, 0)
	s.now = func() time.Time { return clock }
	if s.Get("a") != nil {
		t.Fatal("unknown session returned")
	}
	a := s.GetOrCreate("a")
	if a == nil || s.GetOrCreate("a") != a {
		t.Fatal("GetOrCreate not idempotent")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Expired sessions are swept when a new one is minted.
	clock = clock.Add(time.Hour)
	b := s.GetOrCreate("b")
	if b == nil || s.Get("a") != nil {
		t.Fatal("expired session survived the sweep")
	}
	s.Delete("b")
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete", s.Len())
	}
}

func TestNewSessionIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewSessionID(7)
		if seen[id] {
			t.Fatalf("duplicate session ID %s", id)
		}
		seen[id] = true
	}
}

func TestChunkShipment(t *testing.T) {
	sch := schema.CustomerInfo()
	frag, err := core.NewFragment(sch, "F", []string{"Customer", "CustName"})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*xmltree.Node, 10)
	for i := range recs {
		recs[i] = &xmltree.Node{Name: "Customer", ID: string(rune('a' + i))}
	}
	out := map[string]*core.Instance{
		"1:F": {Frag: frag, Records: recs},
		"0:F": {Frag: frag, Records: recs[:1]},
		"2:F": {Frag: frag}, // empty instance still announces itself
	}
	chunks := ChunkShipment(out, 4)
	// 0:F -> 1 chunk, 1:F -> 3 chunks (4+4+2), 2:F -> 1 empty chunk.
	if len(chunks) != 5 {
		t.Fatalf("chunks = %d, want 5", len(chunks))
	}
	for i, c := range chunks {
		if c.Seq != int64(i) {
			t.Fatalf("chunk %d has seq %d", i, c.Seq)
		}
	}
	if chunks[0].Key != "0:F" || len(chunks[0].Recs) != 1 {
		t.Fatalf("chunk 0 = %+v", chunks[0])
	}
	if chunks[1].Key != "1:F" || len(chunks[1].Recs) != 4 || len(chunks[3].Recs) != 2 {
		t.Fatal("1:F not split 4/4/2")
	}
	if chunks[4].Key != "2:F" || len(chunks[4].Recs) != 0 {
		t.Fatalf("empty instance chunk = %+v", chunks[4])
	}
	total := 0
	for _, c := range chunks {
		if c.Key == "1:F" {
			total += len(c.Recs)
		}
	}
	if total != 10 {
		t.Fatalf("records lost in chunking: %d", total)
	}
}

func TestChunkShipmentDefaultSize(t *testing.T) {
	sch := schema.CustomerInfo()
	frag, err := core.NewFragment(sch, "F", []string{"Customer", "CustName"})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*xmltree.Node, 130)
	for i := range recs {
		recs[i] = &xmltree.Node{Name: "Customer"}
	}
	chunks := ChunkShipment(map[string]*core.Instance{"k": {Frag: frag, Records: recs}}, 0)
	if len(chunks) != 3 { // 64+64+2
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
}

// TestSessionStoreSweep pins the idle-collection rules: Sweep collects
// sessions idle past MaxAge, any store access (Get or GetOrCreate)
// refreshes a session's idleness clock so an active transfer is never
// collected mid-flight, and GetOrCreate sweeps opportunistically as new
// sessions arrive.
func TestSessionStoreSweep(t *testing.T) {
	s := NewSessionStore()
	s.MaxAge = 10 * time.Minute
	clock := time.Unix(0, 0)
	s.now = func() time.Time { return clock }

	s.GetOrCreate("idle")
	s.GetOrCreate("active")
	clock = clock.Add(6 * time.Minute)
	s.Get("active") // refreshes the idleness clock
	clock = clock.Add(6 * time.Minute)

	// "idle" is 12 minutes untouched, "active" only 6.
	if n := s.Sweep(); n != 1 {
		t.Fatalf("Sweep collected %d sessions, want 1", n)
	}
	if s.Get("idle") != nil {
		t.Fatal("idle session survived the sweep")
	}
	if s.Get("active") == nil {
		t.Fatal("recently touched session was collected")
	}

	// Minting a new session sweeps opportunistically.
	clock = clock.Add(11 * time.Minute)
	s.GetOrCreate("fresh")
	if s.Len() != 1 {
		t.Fatalf("GetOrCreate did not sweep: %d sessions live", s.Len())
	}
	if s.Get("fresh") == nil {
		t.Fatal("freshly minted session missing")
	}
}

// TestSessionStoreSweeper checks the background sweeper: completed state is
// collected without any further store traffic, and stop is idempotent.
func TestSessionStoreSweeper(t *testing.T) {
	s := NewSessionStore()
	s.MaxAge = time.Millisecond
	s.GetOrCreate("done")
	stop := s.StartSweeper(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for s.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never collected the idle session (%d live)", s.Len())
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // stopping twice must not panic
}

// TestPermanentNil checks the wrapper's degenerate case.
func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	base := fmt.Errorf("boom")
	p := Permanent(base)
	if p.Error() != "boom" || !errors.Is(p, base) {
		t.Fatalf("Permanent wrapper mangled the cause: %v", p)
	}
}
