package relstore

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"xdx/internal/wire"
)

// This file implements the paper's shred-to-files/LOAD pipeline (§5.1):
// the store's contents travel as one sorted-feed file per fragment, and an
// empty store bulk-loads from such files — the ASCII files + SQL LOAD of
// the original experiments.

// ExportFeeds writes one feed file per layout fragment into dir (created
// if needed), named <fragment>.feed.
func (s *Store) ExportFeeds(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("relstore: export: %w", err)
	}
	for _, f := range s.Layout.Fragments {
		in, err := s.ScanFragment(f.Name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, feedFileName(f.Name))
		w, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("relstore: export: %w", err)
		}
		if err := wire.WriteFeed(w, in, s.Layout.Schema); err != nil {
			w.Close()
			return fmt.Errorf("relstore: export %q: %w", f.Name, err)
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ImportFeeds bulk-loads every layout fragment from its feed file in dir
// (the SQL LOAD step). Missing files are errors; the store need not be
// empty, rows append.
func (s *Store) ImportFeeds(dir string) error {
	for _, f := range s.Layout.Fragments {
		path := filepath.Join(dir, feedFileName(f.Name))
		r, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("relstore: import: %w", err)
		}
		in, err := wire.ReadFeed(r, f, s.Layout.Schema)
		r.Close()
		if err != nil {
			return fmt.Errorf("relstore: import %q: %w", f.Name, err)
		}
		if err := s.Load(in); err != nil {
			return err
		}
	}
	return nil
}

// feedFileName keeps file names filesystem-safe even for long derived
// fragment names; truncated names get a hash suffix to stay unique.
func feedFileName(frag string) string {
	if len(frag) > 100 {
		h := fnv.New32a()
		h.Write([]byte(frag))
		frag = fmt.Sprintf("%s-%08x", frag[:91], h.Sum32())
	}
	return frag + ".feed"
}
