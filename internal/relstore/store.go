package relstore

import (
	"fmt"
	"sync"

	"xdx/internal/core"
	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

// Store maps a fragmentation onto relational tables: one table per
// fragment. Columns are, per member element in schema pre-order, an
// identifier column "<elem>$id" and — for leaf elements — a text column
// "<elem>$txt", plus "$parent" holding the foreign key to the parent
// fragment instance. This captures document structure through keys exactly
// as the paper's schemas S, MF and LF do.
//
// A fragment with no internal repetition stores one row per fragment-root
// instance. A fragment with exactly one internally repeated subtree — such
// as §1.1's denormalized LINE_FEATURE relation, one row per (line, feature)
// pair — stores one row per repeated-subtree instance (or a single row with
// empty repeat columns when none exist). Fragments with more than one
// internal repetition are rejected.
type Store struct {
	// Layout is the fragmentation the store is organized by.
	Layout *core.Fragmentation

	mu     sync.RWMutex
	tables map[string]*Table
	descs  map[string]*tableDesc
}

// tableDesc records how a fragment maps onto its table.
type tableDesc struct {
	frag *core.Fragment
	// rootElems are the fragment elements outside the repeated subtree, in
	// schema pre-order.
	rootElems []string
	// repRoot is the internally repeated element ("" when the fragment is
	// flat); repElems its subtree within the fragment, in pre-order.
	repRoot  string
	repElems []string
}

// NewStore creates an empty store laid out per fr.
func NewStore(fr *core.Fragmentation) (*Store, error) {
	s := &Store{
		Layout: fr,
		tables: make(map[string]*Table, fr.Len()),
		descs:  make(map[string]*tableDesc, fr.Len()),
	}
	for _, f := range fr.Fragments {
		desc, err := describeFragment(fr.Schema, f)
		if err != nil {
			return nil, err
		}
		t, err := NewTable(f.Name, desc.columns(fr.Schema))
		if err != nil {
			return nil, err
		}
		s.tables[f.Name] = t
		s.descs[f.Name] = desc
	}
	return s, nil
}

// describeFragment analyses internal repetition.
func describeFragment(sch *schema.Schema, f *core.Fragment) (*tableDesc, error) {
	d := &tableDesc{frag: f}
	for _, e := range sch.Names() {
		if !f.Elems[e] || e == f.Root {
			continue
		}
		repeated := sch.ByName(e).Repeated || len(sch.Parents(e)) > 1
		if !repeated {
			continue
		}
		if d.repRoot != "" {
			return nil, fmt.Errorf("relstore: fragment %q repeats both %q and %q internally; at most one denormalized repetition is supported", f.Name, d.repRoot, e)
		}
		if len(sch.Parents(e)) > 1 {
			return nil, fmt.Errorf("relstore: fragment %q denormalizes multi-parent element %q; not supported", f.Name, e)
		}
		d.repRoot = e
	}
	inRep := func(e string) bool {
		if d.repRoot == "" {
			return false
		}
		if e == d.repRoot {
			return true
		}
		return sch.IsAncestor(d.repRoot, e)
	}
	for _, e := range sch.Names() {
		if !f.Elems[e] {
			continue
		}
		if inRep(e) {
			if e != d.repRoot && (sch.ByName(e).Repeated || len(sch.Parents(e)) > 1) {
				return nil, fmt.Errorf("relstore: fragment %q has nested repetition under %q", f.Name, d.repRoot)
			}
			d.repElems = append(d.repElems, e)
		} else {
			d.rootElems = append(d.rootElems, e)
		}
	}
	return d, nil
}

func (d *tableDesc) columns(sch *schema.Schema) []string {
	cols := []string{"$parent"}
	add := func(elems []string) {
		for _, e := range elems {
			cols = append(cols, e+"$id")
			if sch.ByName(e).IsLeaf() {
				cols = append(cols, e+"$txt")
			}
		}
	}
	add(d.rootElems)
	add(d.repElems)
	return cols
}

// Table returns the table backing the named fragment, or nil.
func (s *Store) Table(fragName string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[fragName]
}

// Tables returns the fragment names in layout order.
func (s *Store) Tables() []string {
	out := make([]string, 0, len(s.tables))
	for _, f := range s.Layout.Fragments {
		out = append(out, f.Name)
	}
	return out
}

// Load shreds a fragment instance into its table (the store-side Write of
// Definition 3.9). The instance's fragment must match a layout fragment by
// element set.
func (s *Store) Load(in *core.Instance) error {
	name := s.layoutName(in.Frag)
	if name == "" {
		return fmt.Errorf("relstore: no layout fragment matching %q", in.Frag.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tables[name]
	d := s.descs[name]
	sh := &shredder{t: t, d: d, slab: rowSlab{width: len(t.Cols)}, base: make([]string, len(t.Cols))}
	rows := make([][]string, 0, len(in.Records))
	var err error
	for _, rec := range in.Records {
		if rows, err = sh.record(rec, rows); err != nil {
			return err
		}
	}
	return t.BulkLoad(rows)
}

func (s *Store) layoutName(f *core.Fragment) string {
	for _, lf := range s.Layout.Fragments {
		if lf.SameElems(f) {
			return lf.Name
		}
	}
	return ""
}

// rowSlabRows sizes the shared backing arrays rowSlab carves rows from:
// large enough to amortize the allocation across a load, small enough not
// to overcommit on tiny instances.
const rowSlabRows = 256

// rowSlab carves fixed-width rows out of large shared backing arrays.
// Rows of one Load are retained — and later dropped — together by their
// table, so sharing backing slabs leaks nothing, and shredding stops
// paying one allocation per row.
type rowSlab struct {
	buf   []string
	width int
}

func (sl *rowSlab) row() []string {
	if len(sl.buf) < sl.width {
		sl.buf = make([]string, sl.width*rowSlabRows)
	}
	r := sl.buf[:sl.width:sl.width]
	sl.buf = sl.buf[sl.width:]
	return r
}

// shredder flattens record trees into table rows. One shredder serves a
// whole Load: the base scratch row and the rep list are reused across
// records, and finished rows come from the shared slab, so the per-record
// allocation count is (amortized) zero.
type shredder struct {
	t    *Table
	d    *tableDesc
	slab rowSlab
	base []string // scratch for the non-repeated part, cleared per record
	reps []*xmltree.Node
}

// record flattens one record tree and appends its rows.
func (sh *shredder) record(rec *xmltree.Node, rows [][]string) ([][]string, error) {
	if rec.Name != sh.d.frag.Root {
		return nil, fmt.Errorf("relstore: record root %q does not match fragment root %q", rec.Name, sh.d.frag.Root)
	}
	clear(sh.base)
	sh.reps = sh.reps[:0]
	sh.base[sh.t.ColIndex("$parent")] = rec.Parent
	if err := sh.walkBase(rec); err != nil {
		return nil, err
	}
	if len(sh.reps) == 0 {
		row := sh.slab.row()
		copy(row, sh.base)
		return append(rows, row), nil
	}
	for _, rep := range sh.reps {
		row := sh.slab.row()
		copy(row, sh.base)
		if err := sh.walkRep(row, rep); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (sh *shredder) fill(row []string, n *xmltree.Node) error {
	ci := sh.t.ColIndex(n.Name + "$id")
	if ci < 0 {
		return fmt.Errorf("relstore: record for %q contains unexpected element %q", sh.d.frag.Name, n.Name)
	}
	if row[ci] != "" {
		return fmt.Errorf("relstore: record for %q repeats element %q", sh.d.frag.Name, n.Name)
	}
	id := n.ID
	if id == "" {
		id = "-"
	}
	row[ci] = id
	if ti := sh.t.ColIndex(n.Name + "$txt"); ti >= 0 {
		row[ti] = n.Text
	}
	return nil
}

// walkBase fills the scratch row from the non-repeated part of the tree,
// collecting repeated-subtree roots for walkRep.
func (sh *shredder) walkBase(n *xmltree.Node) error {
	if n.Name == sh.d.repRoot {
		sh.reps = append(sh.reps, n)
		return nil
	}
	if err := sh.fill(sh.base, n); err != nil {
		return err
	}
	for _, k := range n.Kids {
		if err := sh.walkBase(k); err != nil {
			return err
		}
	}
	return nil
}

func (sh *shredder) walkRep(row []string, n *xmltree.Node) error {
	if err := sh.fill(row, n); err != nil {
		return err
	}
	for _, k := range n.Kids {
		if err := sh.walkRep(row, k); err != nil {
			return err
		}
	}
	return nil
}

// ScanFragment materializes the instance of the named layout fragment from
// its table (the store-side Scan of Definition 3.6). Rows of a denormalized
// fragment are regrouped by their root identifier (rows of one root are
// stored contiguously by Load).
func (s *Store) ScanFragment(fragName string) (*core.Instance, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f := s.Layout.ByName(fragName)
	if f == nil {
		return nil, fmt.Errorf("relstore: unknown fragment %q", fragName)
	}
	t := s.tables[fragName]
	d := s.descs[fragName]
	sch := s.Layout.Schema
	inst := &core.Instance{Frag: f, Records: make([]*xmltree.Node, 0, t.Len())}
	// The attachment point of repeated subtrees is a fixed element per
	// fragment; resolve it once instead of building a name→node map per row.
	attachElem := ""
	if d.repRoot != "" {
		attachElem = sch.ParentOf(d.repRoot)
	}
	// All records of one scan share an arena: the instance is the decode
	// unit, so its nodes live and die together.
	var arena xmltree.Arena
	var curRoot *xmltree.Node
	var curRootID string
	var attach *xmltree.Node   // the current root's attachment-point node
	var fixups []*xmltree.Node // nodes whose kid order needs restoring
	err := t.Scan(func(row []string) error {
		rootID := row[t.ColIndex(f.Root+"$id")]
		if curRoot == nil || rootID != curRootID {
			rec, at, err := buildPart(sch, d, t, row, f.Root, row[t.ColIndex("$parent")], false, attachElem, &arena)
			if err != nil {
				return err
			}
			curRoot, curRootID, attach = rec, rootID, at
			inst.Records = append(inst.Records, rec)
		}
		if d.repRoot == "" {
			return nil
		}
		repID := row[t.ColIndex(d.repRoot+"$id")]
		if repID == "" {
			return nil // root instance without repeated children
		}
		if attach == nil {
			return fmt.Errorf("relstore: fragment %q: no attachment point %q for %q", f.Name, attachElem, d.repRoot)
		}
		rep, _, err := buildPart(sch, d, t, row, d.repRoot, attach.ID, true, "", &arena)
		if err != nil {
			return err
		}
		if len(attach.Kids) == 0 || attach.Kids[len(attach.Kids)-1].Name != d.repRoot {
			fixups = append(fixups, attach)
		}
		attach.AddKid(rep)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, n := range fixups {
		core.SortKids(sch, n)
	}
	return inst, nil
}

// buildPart reconstructs either the base part (fromRep=false, stopping at
// the repeated subtree) or the repeated part of one row. It returns the
// subtree root and, when wantNode names an element, that element's node
// (the repeated subtree's attachment point — recording one pointer replaced
// a per-row name→node map).
func buildPart(sch *schema.Schema, d *tableDesc, t *Table, row []string, elem, parentID string, fromRep bool, wantNode string, arena *xmltree.Arena) (*xmltree.Node, *xmltree.Node, error) {
	var want *xmltree.Node
	var build func(elem, parentID string) (*xmltree.Node, error)
	build = func(elem, parentID string) (*xmltree.Node, error) {
		if !fromRep && elem == d.repRoot {
			return nil, nil // attached per-row later
		}
		id := row[t.ColIndex(elem+"$id")]
		if id == "" {
			return nil, nil // optional element absent
		}
		if id == "-" {
			id = ""
		}
		n := arena.New()
		n.Name, n.ID, n.Parent = elem, id, parentID
		if elem == wantNode {
			want = n
		}
		if ti := t.ColIndex(elem + "$txt"); ti >= 0 {
			n.Text = row[ti]
		}
		for _, c := range sch.AllChildren(elem) {
			if !d.frag.Elems[c] {
				continue
			}
			if fromRep && !inElems(d.repElems, c) {
				continue
			}
			k, err := build(c, id)
			if err != nil {
				return nil, err
			}
			if k != nil {
				n.AddKid(k)
			}
		}
		return n, nil
	}
	root, err := build(elem, parentID)
	if err != nil {
		return nil, nil, err
	}
	if root == nil {
		return nil, nil, fmt.Errorf("relstore: row has empty identifier for %q", elem)
	}
	return root, want, nil
}

func inElems(list []string, e string) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

// ScanFragmentWhere is ScanFragment restricted to records whose leaf
// element equals value — the store-side push-down of a service argument
// (§3.2). When the column is indexed and matches the fragment root's
// identifier semantics the index is used; otherwise the scan filters.
func (s *Store) ScanFragmentWhere(fragName, leafElem, value string) (*core.Instance, error) {
	in, err := s.ScanFragment(fragName)
	if err != nil {
		return nil, err
	}
	f := in.Frag
	if !f.Elems[leafElem] {
		return nil, fmt.Errorf("relstore: fragment %q has no element %q", fragName, leafElem)
	}
	if !s.Layout.Schema.ByName(leafElem).IsLeaf() {
		return nil, fmt.Errorf("relstore: predicate element %q is not a leaf", leafElem)
	}
	kept := in.Records[:0:0]
	for _, rec := range in.Records {
		n := rec.Find(leafElem)
		if n != nil && n.Text == value {
			kept = append(kept, rec)
		}
	}
	return &core.Instance{Frag: f, Records: kept}, nil
}

// BuildIndexes creates hash indexes on the root identifier and the parent
// foreign key of every table — the paper's "update indexes at the target"
// step (Table 4).
func (s *Store) BuildIndexes() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.Layout.Fragments {
		t := s.tables[f.Name]
		if _, err := t.CreateIndex(f.Root + "$id"); err != nil {
			return err
		}
		if _, err := t.CreateIndex("$parent"); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the total number of rows across all tables.
func (s *Store) Rows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, t := range s.tables {
		n += t.Len()
	}
	return n
}

// ByteSize returns the total stored bytes across all tables.
func (s *Store) ByteSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, t := range s.tables {
		n += t.ByteSize()
	}
	return n
}

// Clear drops all rows and indexes, keeping the layout ("the target
// database was initially empty", §5).
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, t := range s.tables {
		nt, _ := NewTable(t.Name, t.Cols)
		s.tables[name] = nt
	}
}

// LoadDocument shreds a whole document into the store by splitting it per
// the layout; a convenience for fixtures and tests.
func (s *Store) LoadDocument(doc *xmltree.Node) error {
	insts, err := core.FromDocument(s.Layout, doc)
	if err != nil {
		return err
	}
	for _, f := range s.Layout.Fragments {
		if err := s.Load(insts[f.Name]); err != nil {
			return err
		}
	}
	return nil
}

// Stats computes per-element cardinalities and average serialized sizes
// from the stored data, which back the endpoint's cost interface.
func (s *Store) Stats() (card, bytes map[string]float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	card = make(map[string]float64)
	bytes = make(map[string]float64)
	for _, f := range s.Layout.Fragments {
		t := s.tables[f.Name]
		d := s.descs[f.Name]
		for e := range f.Elems {
			n := 0
			var sz float64
			idCol := t.ColIndex(e + "$id")
			txtCol := t.ColIndex(e + "$txt")
			lastRoot := ""
			rootCol := t.ColIndex(f.Root + "$id")
			inRep := inElems(d.repElems, e)
			for i := 0; i < t.Len(); i++ {
				row := t.Row(i)
				if row[idCol] == "" {
					continue
				}
				// Base-part values repeat across denormalized rows; count
				// them once per root instance.
				if !inRep && d.repRoot != "" {
					if row[rootCol] == lastRoot {
						continue
					}
				}
				if !inRep {
					lastRoot = row[rootCol]
				}
				n++
				sz += float64(2*len(e) + 5)
				if txtCol >= 0 {
					sz += float64(len(row[txtCol]))
				}
			}
			card[e] = float64(n)
			if n > 0 {
				bytes[e] = sz / float64(n)
			} else {
				bytes[e] = float64(2*len(e) + 5)
			}
		}
	}
	return card, bytes
}
