package relstore

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xdx/internal/core"
	"xdx/internal/schema"
	"xdx/internal/xmltree"
)

func customerDoc() *xmltree.Node {
	doc, err := xmltree.Parse(strings.NewReader(docXML))
	if err != nil {
		panic(err)
	}
	core.AssignIDs(doc)
	return doc
}

const docXML = `<Customer><CustName>Ann</CustName>` +
	`<Order><Service><ServiceName>local</ServiceName>` +
	`<Line><TelNo>555-0001</TelNo><Switch><SwitchID>sw1</SwitchID></Switch>` +
	`<Feature><FeatureID>callerID</FeatureID></Feature>` +
	`<Feature><FeatureID>voicemail</FeatureID></Feature></Line>` +
	`<Line><TelNo>555-0002</TelNo><Switch><SwitchID>sw2</SwitchID></Switch></Line>` +
	`</Service></Order>` +
	`<Order><Service><ServiceName>ld</ServiceName>` +
	`<Line><TelNo>555-0003</TelNo><Switch><SwitchID>sw1</SwitchID></Switch>` +
	`<Feature><FeatureID>callerID</FeatureID></Feature></Line>` +
	`</Service></Order></Customer>`

func TestTableBasics(t *testing.T) {
	tb, err := NewTable("t", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert([]string{"1", "x"}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert([]string{"1"}); err == nil {
		t.Error("short row must fail")
	}
	if tb.Len() != 1 || tb.Row(0)[1] != "x" {
		t.Errorf("table contents wrong")
	}
	if _, err := NewTable("t", []string{"a", "a"}); err == nil {
		t.Error("duplicate column must fail")
	}
	if tb.ColIndex("zz") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestIndexAndLookup(t *testing.T) {
	tb, _ := NewTable("t", []string{"k", "v"})
	tb.BulkLoad([][]string{{"a", "1"}, {"b", "2"}, {"a", "3"}})
	if _, err := tb.Lookup("k", "a"); err == nil {
		t.Error("lookup without index must fail")
	}
	if _, err := tb.CreateIndex("zz"); err == nil {
		t.Error("index on missing column must fail")
	}
	if _, err := tb.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	rows, err := tb.Lookup("k", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("lookup(a) = %d rows, want 2", len(rows))
	}
	// Insert maintains the index.
	tb.Insert([]string{"a", "4"})
	rows, _ = tb.Lookup("k", "a")
	if len(rows) != 3 {
		t.Errorf("index not maintained on insert: %d rows", len(rows))
	}
	// BulkLoad drops indexes.
	tb.BulkLoad([][]string{{"c", "5"}})
	if len(tb.Indexes()) != 0 {
		t.Errorf("bulk load should drop indexes: %v", tb.Indexes())
	}
}

func TestHashJoin(t *testing.T) {
	orders, _ := NewTable("orders", []string{"oid", "cid"})
	orders.BulkLoad([][]string{{"o1", "c1"}, {"o2", "c1"}, {"o3", "c2"}})
	custs, _ := NewTable("custs", []string{"cid", "name"})
	custs.BulkLoad([][]string{{"c1", "Ann"}, {"c2", "Bob"}})
	j, err := HashJoin(custs, orders, "cid", "cid", "j")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("join rows = %d, want 3", j.Len())
	}
	// Duplicate column renamed.
	if j.ColIndex("orders.cid") < 0 {
		t.Errorf("expected renamed column, cols = %v", j.Cols)
	}
	if _, err := HashJoin(custs, orders, "zz", "cid", "j"); err == nil {
		t.Error("bad join column must fail")
	}
}

func TestProject(t *testing.T) {
	tb, _ := NewTable("t", []string{"a", "b", "c"})
	tb.BulkLoad([][]string{{"1", "2", "3"}})
	p, err := tb.Project("p", []string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Row(0)[0] != "3" || p.Row(0)[1] != "1" {
		t.Errorf("projection wrong: %v", p.Row(0))
	}
	if _, err := tb.Project("p", []string{"zz"}); err == nil {
		t.Error("bad projection column must fail")
	}
}

func tFrag(t *testing.T, sch *schema.Schema) *core.Fragmentation {
	t.Helper()
	fr, err := core.FromPartition(sch, "T", [][]string{
		{"Customer", "CustName"},
		{"Order", "Service", "ServiceName"},
		{"Line", "TelNo", "Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestStoreLoadScanRoundTrip(t *testing.T) {
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	st, err := NewStore(fr)
	if err != nil {
		t.Fatal(err)
	}
	doc := customerDoc()
	if err := st.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	// Row counts match instance counts.
	wantRows := map[string]int{"Customer": 1, "Order": 2, "Line": 3, "Feature": 3}
	total := 0
	for _, f := range fr.Fragments {
		in, err := st.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got := in.Rows(); got != wantRows[f.Root] {
			t.Errorf("fragment %q rows = %d, want %d", f.Name, got, wantRows[f.Root])
		}
		total += in.Rows()
	}
	if st.Rows() != total {
		t.Errorf("store rows = %d, want %d", st.Rows(), total)
	}
	// Reassemble the document from scanned instances.
	insts := map[string]*core.Instance{}
	for _, f := range fr.Fragments {
		in, _ := st.ScanFragment(f.Name)
		insts[f.Name] = in
	}
	back, err := core.Document(fr, insts)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualShape(customerDoc(), back) {
		t.Errorf("store round trip changed document:\n%s", xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestStoreDenormalizedFragment(t *testing.T) {
	// §1.1's LINE_FEATURE: one row per (line, feature) pair.
	sch := schema.CustomerInfo()
	fr, err := core.FromPartition(sch, "S", [][]string{
		{"Customer", "CustName"},
		{"Order"},
		{"Service", "ServiceName"},
		{"Line", "TelNo", "Feature", "FeatureID"},
		{"Switch", "SwitchID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(fr)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadDocument(customerDoc()); err != nil {
		t.Fatal(err)
	}
	// 3 lines with 2+0+1 features -> 2+1+1 = 4 rows (a feature-less line
	// still has one row).
	lf := st.Table(fr.FragmentOf("TelNo").Name)
	if lf.Len() != 4 {
		t.Errorf("LINE_FEATURE rows = %d, want 4", lf.Len())
	}
	// Scanning regroups rows into 3 line records with their features.
	in, err := st.ScanFragment(fr.FragmentOf("TelNo").Name)
	if err != nil {
		t.Fatal(err)
	}
	if in.Rows() != 3 {
		t.Fatalf("line records = %d, want 3", in.Rows())
	}
	feats := 0
	for _, rec := range in.Records {
		feats += len(rec.FindAll("Feature", nil))
	}
	if feats != 3 {
		t.Errorf("features after regroup = %d, want 3", feats)
	}
	// Full round trip through the denormalized store.
	insts := map[string]*core.Instance{}
	for _, f := range fr.Fragments {
		i2, err := st.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		insts[f.Name] = i2
	}
	back, err := core.Document(fr, insts)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualShape(customerDoc(), back) {
		t.Errorf("denormalized round trip changed document:\n%s",
			xmltree.Marshal(back, xmltree.WriteOptions{}))
	}
}

func TestStoreRejectsDoubleRepetition(t *testing.T) {
	sch := schema.CustomerInfo()
	// Order and Line both repeat inside one fragment: unsupported.
	fr, err := core.FromPartition(sch, "bad", [][]string{
		{"Customer", "CustName", "Order", "Service", "ServiceName", "Line", "TelNo"},
		{"Switch", "SwitchID"},
		{"Feature", "FeatureID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(fr); err == nil {
		t.Error("store must reject fragments with two internal repetitions")
	}
}

func TestStoreMFAndLF(t *testing.T) {
	sch := schema.Auction()
	for _, fr := range []*core.Fragmentation{core.MostFragmented(sch), core.LeastFragmented(sch)} {
		if _, err := NewStore(fr); err != nil {
			t.Errorf("store for %s: %v", fr.Name, err)
		}
	}
}

func TestStoreIndexesAndClear(t *testing.T) {
	sch := schema.CustomerInfo()
	st, _ := NewStore(tFrag(t, sch))
	if err := st.LoadDocument(customerDoc()); err != nil {
		t.Fatal(err)
	}
	if err := st.BuildIndexes(); err != nil {
		t.Fatal(err)
	}
	for _, name := range st.Tables() {
		if got := len(st.Table(name).Indexes()); got != 2 {
			t.Errorf("table %q has %d indexes, want 2", name, got)
		}
	}
	if st.ByteSize() <= 0 {
		t.Error("ByteSize should be positive")
	}
	st.Clear()
	if st.Rows() != 0 {
		t.Errorf("Clear left %d rows", st.Rows())
	}
}

func TestStoreStats(t *testing.T) {
	sch := schema.CustomerInfo()
	st, _ := NewStore(tFrag(t, sch))
	st.LoadDocument(customerDoc())
	card, bytes := st.Stats()
	if card["Line"] != 3 || card["Customer"] != 1 {
		t.Errorf("cardinalities wrong: %v", card)
	}
	if bytes["TelNo"] <= 0 {
		t.Errorf("byte estimate wrong: %v", bytes)
	}
}

func TestStoreLoadMismatchedFragment(t *testing.T) {
	sch := schema.CustomerInfo()
	st, _ := NewStore(tFrag(t, sch))
	f, _ := core.NewFragment(sch, "", []string{"Order"})
	err := st.Load(&core.Instance{Frag: f})
	if err == nil {
		t.Error("loading a non-layout fragment must fail")
	}
}

func TestExportImportFeeds(t *testing.T) {
	// The paper's shred-to-ASCII-files + LOAD pipeline: a store's contents
	// travel as feed files into an empty store.
	sch := schema.Auction()
	lf := core.LeastFragmented(sch)
	src, err := NewStore(lf)
	if err != nil {
		t.Fatal(err)
	}
	doc := auctionDoc(t)
	if err := src.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := src.ExportFeeds(dir); err != nil {
		t.Fatal(err)
	}
	dst, err := NewStore(lf)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportFeeds(dir); err != nil {
		t.Fatal(err)
	}
	if dst.Rows() != src.Rows() {
		t.Fatalf("imported %d rows, want %d", dst.Rows(), src.Rows())
	}
	insts := map[string]*core.Instance{}
	for _, f := range lf.Fragments {
		in, err := dst.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		insts[f.Name] = in
	}
	back, err := core.Document(lf, insts)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualShape(doc, back) {
		t.Error("feed files changed the document")
	}
	// Long LF fragment names truncate with a hash suffix.
	for _, f := range lf.Fragments {
		if len(feedFileName(f.Name)) > 110 {
			t.Errorf("feed file name too long: %q", feedFileName(f.Name))
		}
	}
	// Import from an empty dir fails.
	if err := dst.ImportFeeds(t.TempDir()); err == nil {
		t.Error("import without files must fail")
	}
}

func auctionDoc(t *testing.T) *xmltree.Node {
	t.Helper()
	// A tiny auction document.
	doc, err := xmltree.Parse(strings.NewReader(
		`<site><regions><africa><item><location>x</location><quantity>1</quantity>` +
			`<iname>i1</iname><payment>p</payment><idescription>d</idescription>` +
			`<shipping>s</shipping><mailbox>m</mailbox></item></africa>` +
			`<asia/><australia/><europe/><namerica/><samerica/></regions>` +
			`<categories><category><cname>c</cname><cdescription>cd</cdescription></category></categories>` +
			`<catgraph>g</catgraph><people>p</people><openauctions>o</openauctions>` +
			`<closedauctions>ca</closedauctions></site>`))
	if err != nil {
		t.Fatal(err)
	}
	core.AssignIDs(doc)
	return doc
}

func TestScanFragmentWhere(t *testing.T) {
	sch := schema.CustomerInfo()
	fr := tFrag(t, sch)
	st, _ := NewStore(fr)
	if err := st.LoadDocument(customerDoc()); err != nil {
		t.Fatal(err)
	}
	lineFrag := fr.FragmentOf("TelNo")
	in, err := st.ScanFragmentWhere(lineFrag.Name, "TelNo", "555-0002")
	if err != nil {
		t.Fatal(err)
	}
	if in.Rows() != 1 {
		t.Fatalf("filtered rows = %d, want 1", in.Rows())
	}
	if got := in.Records[0].Find("SwitchID").Text; got != "sw2" {
		t.Errorf("wrong record selected: switch %q", got)
	}
	// No match.
	in, err = st.ScanFragmentWhere(lineFrag.Name, "TelNo", "none")
	if err != nil || in.Rows() != 0 {
		t.Errorf("no-match filter: %v, %d rows", err, in.Rows())
	}
	// Errors.
	if _, err := st.ScanFragmentWhere(lineFrag.Name, "CustName", "x"); err == nil {
		t.Error("predicate on element outside the fragment must fail")
	}
	if _, err := st.ScanFragmentWhere(lineFrag.Name, "Switch", "x"); err == nil {
		t.Error("predicate on non-leaf must fail")
	}
	if _, err := st.ScanFragmentWhere("nope", "TelNo", "x"); err == nil {
		t.Error("unknown fragment must fail")
	}
}

func TestStoreRandomDocsProperty(t *testing.T) {
	sch := schema.Balanced(2, 3)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fr := core.MostFragmented(sch)
		st, err := NewStore(fr)
		if err != nil {
			t.Fatal(err)
		}
		doc := randomDoc(sch, rng)
		if err := st.LoadDocument(doc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		insts := map[string]*core.Instance{}
		for _, f := range fr.Fragments {
			in, err := st.ScanFragment(f.Name)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			insts[f.Name] = in
		}
		back, err := core.Document(fr, insts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !xmltree.EqualShape(doc, back) {
			t.Errorf("seed %d: document changed through store", seed)
		}
	}
}

func randomDoc(sch *schema.Schema, rng *rand.Rand) *xmltree.Node {
	var build func(n *schema.Node) *xmltree.Node
	build = func(n *schema.Node) *xmltree.Node {
		e := &xmltree.Node{Name: n.Name}
		if n.IsLeaf() {
			e.Text = fmt.Sprintf("v%d", rng.Intn(100))
		}
		for _, c := range n.Children {
			reps := 1
			if c.Repeated {
				reps = 1 + rng.Intn(3)
			}
			for i := 0; i < reps; i++ {
				e.AddKid(build(c))
			}
		}
		return e
	}
	doc := build(sch.Root())
	core.AssignIDs(doc)
	return doc
}
