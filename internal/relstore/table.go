// Package relstore is an in-memory relational engine standing in for the
// MySQL back-ends of the paper's experiments (§5). It provides tables,
// bulk loading, hash indexes and hash joins with realistic relative costs:
// joins dominate scans, and index builds are separate, measurable steps.
//
// A Store maps a fragmentation onto a table layout: one table per fragment,
// one row per fragment-root instance, with identifier and text columns for
// every member element. This mirrors how the paper's relational schemas S,
// MF and LF capture document structure through keys and foreign keys.
package relstore

import (
	"fmt"
	"sort"
)

// Table is an in-memory relation.
type Table struct {
	// Name is the table name.
	Name string
	// Cols are the column names, in declaration order.
	Cols []string

	colIdx  map[string]int
	rows    [][]string
	indexes map[string]*Index
}

// NewTable creates an empty table with the given columns.
func NewTable(name string, cols []string) (*Table, error) {
	t := &Table{Name: name, Cols: append([]string(nil), cols...), colIdx: make(map[string]int), indexes: make(map[string]*Index)}
	for i, c := range cols {
		if _, dup := t.colIdx[c]; dup {
			return nil, fmt.Errorf("relstore: table %q: duplicate column %q", name, c)
		}
		t.colIdx[c] = i
	}
	return t, nil
}

// ColIndex returns the position of col, or -1.
func (t *Table) ColIndex(col string) int {
	i, ok := t.colIdx[col]
	if !ok {
		return -1
	}
	return i
}

// Insert appends one row; the row length must match the column count.
func (t *Table) Insert(row []string) error {
	if len(row) != len(t.Cols) {
		return fmt.Errorf("relstore: table %q: row has %d values, want %d", t.Name, len(row), len(t.Cols))
	}
	t.rows = append(t.rows, row)
	for _, idx := range t.indexes {
		idx.add(row, len(t.rows)-1)
	}
	return nil
}

// BulkLoad appends rows without per-row index maintenance; indexes are
// dropped and must be rebuilt, mirroring the paper's load-then-index steps
// (Table 4).
func (t *Table) BulkLoad(rows [][]string) error {
	for _, r := range rows {
		if len(r) != len(t.Cols) {
			return fmt.Errorf("relstore: table %q: row has %d values, want %d", t.Name, len(r), len(t.Cols))
		}
	}
	t.indexes = make(map[string]*Index)
	t.rows = append(t.rows, rows...)
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th row (shared storage; callers must not mutate).
func (t *Table) Row(i int) []string { return t.rows[i] }

// Scan calls fn for every row, stopping on error.
func (t *Table) Scan(fn func(row []string) error) error {
	for _, r := range t.rows {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// ByteSize estimates the stored size of the relation: the sum of value
// lengths plus a small per-row overhead. It backs cost probing.
func (t *Table) ByteSize() int64 {
	var n int64
	for _, r := range t.rows {
		n += 8
		for _, v := range r {
			n += int64(len(v))
		}
	}
	return n
}

// Index is a hash index over one column.
type Index struct {
	Col string

	col int
	m   map[string][]int
}

// CreateIndex builds (or rebuilds) a hash index over col. The build walks
// every row, which is what makes index creation a distinct measurable step.
func (t *Table) CreateIndex(col string) (*Index, error) {
	ci := t.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Name, col)
	}
	idx := &Index{Col: col, col: ci, m: make(map[string][]int, len(t.rows))}
	for i, r := range t.rows {
		idx.m[r[ci]] = append(idx.m[r[ci]], i)
	}
	t.indexes[col] = idx
	return idx, nil
}

// Indexes lists the indexed column names, sorted.
func (t *Table) Indexes() []string {
	var out []string
	for c := range t.indexes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the rows whose indexed column equals key, using the index
// on col; it returns an error if no such index exists.
func (t *Table) Lookup(col, key string) ([][]string, error) {
	idx, ok := t.indexes[col]
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: column %q not indexed", t.Name, col)
	}
	var out [][]string
	for _, i := range idx.m[key] {
		out = append(out, t.rows[i])
	}
	return out, nil
}

func (idx *Index) add(row []string, at int) {
	idx.m[row[idx.col]] = append(idx.m[row[idx.col]], at)
}

// HashJoin joins left and right on left.leftCol = right.rightCol and
// returns a new table whose columns are left's followed by right's
// (right join column prefixed to stay unique). It builds a hash table on
// the smaller input, probing with the larger — the combine workhorse.
func HashJoin(left, right *Table, leftCol, rightCol, resultName string) (*Table, error) {
	li, ri := left.ColIndex(leftCol), right.ColIndex(rightCol)
	if li < 0 {
		return nil, fmt.Errorf("relstore: join: no column %q in %q", leftCol, left.Name)
	}
	if ri < 0 {
		return nil, fmt.Errorf("relstore: join: no column %q in %q", rightCol, right.Name)
	}
	cols := make([]string, 0, len(left.Cols)+len(right.Cols))
	cols = append(cols, left.Cols...)
	for _, c := range right.Cols {
		name := c
		if _, dup := left.colIdx[c]; dup {
			name = right.Name + "." + c
		}
		cols = append(cols, name)
	}
	out, err := NewTable(resultName, cols)
	if err != nil {
		return nil, err
	}
	// Build on the smaller side.
	build, probe := left, right
	bi, pi := li, ri
	buildIsLeft := true
	if right.Len() < left.Len() {
		build, probe, bi, pi = right, left, ri, li
		buildIsLeft = false
	}
	ht := make(map[string][]int, build.Len())
	for i, r := range build.rows {
		ht[r[bi]] = append(ht[r[bi]], i)
	}
	for _, pr := range probe.rows {
		for _, i := range ht[pr[pi]] {
			br := build.rows[i]
			lrow, rrow := br, pr
			if !buildIsLeft {
				lrow, rrow = pr, br
			}
			row := make([]string, 0, len(cols))
			row = append(row, lrow...)
			row = append(row, rrow...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// Project returns a new table with only the named columns.
func (t *Table) Project(resultName string, cols []string) (*Table, error) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		ci := t.ColIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("relstore: project: no column %q in %q", c, t.Name)
		}
		idxs[i] = ci
	}
	out, err := NewTable(resultName, cols)
	if err != nil {
		return nil, err
	}
	out.rows = make([][]string, len(t.rows))
	for i, r := range t.rows {
		row := make([]string, len(idxs))
		for j, ci := range idxs {
			row[j] = r[ci]
		}
		out.rows[i] = row
	}
	return out, nil
}
