package schema

import (
	"fmt"
	"strings"
)

// ParseDTD parses a simplified DTD of the kind shown in Figure 7 of the
// paper: a series of <!ELEMENT name (content)> declarations, where content
// is a comma-separated list of child references, each optionally suffixed
// with *, + or ?. ATTLIST declarations and comments are ignored, as are the
// pseudo-contents "#PCDATA" and "id ID" used in the figure for leaf
// elements. The first declared element is taken to be the document root.
func ParseDTD(src string) (*Schema, error) {
	decls, order, err := scanDTD(src)
	if err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	root := order[0]
	built := make(map[string]bool)
	type extra struct{ child, parent string }
	var extras []extra
	var build func(name string) (*Node, error)
	build = func(name string) (*Node, error) {
		built[name] = true
		n := &Node{Name: name}
		for _, ref := range decls[name] {
			if built[ref.name] {
				// Multi-parent element (e.g. XMark item under six regions):
				// keep the first tree position, record the extra parent.
				extras = append(extras, extra{child: ref.name, parent: name})
				continue
			}
			c, err := build(ref.name)
			if err != nil {
				return nil, err
			}
			c.Repeated = ref.repeated
			c.Optional = ref.optional
			n.Children = append(n.Children, c)
		}
		return n, nil
	}
	rn, err := build(root)
	if err != nil {
		return nil, err
	}
	s, err := New(rn)
	if err != nil {
		return nil, err
	}
	for _, e := range extras {
		if err := s.AddExtraParent(e.child, e.parent); err != nil {
			return nil, err
		}
	}
	return s, nil
}

type childRef struct {
	name     string
	repeated bool
	optional bool
}

func scanDTD(src string) (map[string][]childRef, []string, error) {
	decls := make(map[string][]childRef)
	var order []string
	rest := src
	for {
		i := strings.Index(rest, "<!")
		if i < 0 {
			break
		}
		rest = rest[i+2:]
		j := strings.Index(rest, ">")
		if j < 0 {
			return nil, nil, fmt.Errorf("dtd: unterminated declaration")
		}
		decl := rest[:j]
		rest = rest[j+1:]
		fields := strings.Fields(decl)
		if len(fields) < 2 || fields[0] != "ELEMENT" {
			continue // ATTLIST, comments, etc.
		}
		name := fields[1]
		if _, dup := decls[name]; dup {
			return nil, nil, fmt.Errorf("dtd: duplicate declaration of %q", name)
		}
		content := strings.TrimSpace(strings.TrimPrefix(decl, "ELEMENT"))
		content = strings.TrimSpace(strings.TrimPrefix(content, name))
		refs, err := parseContent(name, content)
		if err != nil {
			return nil, nil, err
		}
		decls[name] = refs
		order = append(order, name)
	}
	// References to undeclared elements are leaves: declare them implicitly.
	for _, name := range order {
		for _, ref := range decls[name] {
			if _, ok := decls[ref.name]; !ok {
				decls[ref.name] = nil
				order = append(order, ref.name)
			}
		}
	}
	return decls, order, nil
}

func parseContent(owner, content string) ([]childRef, error) {
	content = strings.TrimSpace(content)
	if content == "" || content == "EMPTY" || content == "ANY" {
		return nil, nil
	}
	if !strings.HasPrefix(content, "(") {
		return nil, fmt.Errorf("dtd: element %q: content model %q must be parenthesized", owner, content)
	}
	// Group suffix, e.g. (item)* — distribute onto every child.
	groupRepeated, groupOptional := false, false
	if strings.HasSuffix(content, "*") {
		groupRepeated, groupOptional = true, true
		content = strings.TrimSuffix(content, "*")
	} else if strings.HasSuffix(content, "+") {
		groupRepeated = true
		content = strings.TrimSuffix(content, "+")
	} else if strings.HasSuffix(content, "?") {
		groupOptional = true
		content = strings.TrimSuffix(content, "?")
	}
	content = strings.TrimSpace(content)
	if !strings.HasSuffix(content, ")") {
		return nil, fmt.Errorf("dtd: element %q: unbalanced content model", owner)
	}
	inner := content[1 : len(content)-1]
	var refs []childRef
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// Figure 7 writes leaves as "(id ID)"; treat multi-word parts and
		// #PCDATA as character content, i.e. no child element.
		if strings.HasPrefix(part, "#") || strings.ContainsAny(part, " \t") {
			continue
		}
		ref := childRef{repeated: groupRepeated, optional: groupOptional}
		switch {
		case strings.HasSuffix(part, "*"):
			ref.repeated, ref.optional = true, true
			part = strings.TrimSuffix(part, "*")
		case strings.HasSuffix(part, "+"):
			ref.repeated = true
			part = strings.TrimSuffix(part, "+")
		case strings.HasSuffix(part, "?"):
			ref.optional = true
			part = strings.TrimSuffix(part, "?")
		}
		ref.name = strings.TrimSpace(part)
		refs = append(refs, ref)
	}
	return refs, nil
}
