package schema

// This file holds the two fixed schemas used throughout the paper: the
// CustomerInfo schema of the WSDL specification in Figure 1 (§1.1) and the
// XMark auction DTD subset of Figure 7 (§5).

// CustomerInfo returns the schema of the CustomerInfoService WSDL
// specification (Figure 1): customers with orders, services, lines,
// switches and features.
func CustomerInfo() *Schema {
	return MustNew(
		Elem("Customer",
			Elem("CustName"),
			Rep(Elem("Order",
				Elem("Service",
					Elem("ServiceName"),
					Rep(Elem("Line",
						Elem("TelNo"),
						Elem("Switch",
							Elem("SwitchID"),
						),
						Rep(Elem("Feature",
							Elem("FeatureID"),
						)),
					)),
				),
			)),
		),
	)
}

// AuctionDTD is the DTD text of Figure 7 (the XMark subset used in the
// experiments), normalized to well-formed declarations.
const AuctionDTD = `
<!-- DTD for subset of auction database -->
<!ELEMENT site (regions, categories, catgraph, people, openauctions, closedauctions)>
<!ELEMENT categories (category+)>
<!ELEMENT category (cname, cdescription)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT cdescription (id ID)>
<!ELEMENT catgraph (id ID)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT item (location, quantity, iname, payment, idescription, shipping, mailbox)>
<!ATTLIST item id ID #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT idescription (id ID)>
<!ELEMENT mailbox (id ID)>
<!ELEMENT people (id ID)>
<!ELEMENT openauctions (id ID)>
<!ELEMENT closedauctions (id ID)>
`

// Auction returns the XMark auction schema parsed from AuctionDTD. Only the
// six region elements repeat items; the remaining structure is one-to-one,
// which is what makes the paper's Least-Fragmented layout collapse to three
// fragments.
func Auction() *Schema {
	s, err := ParseDTD(AuctionDTD)
	if err != nil {
		panic("schema: bad built-in auction DTD: " + err.Error())
	}
	// items repeat under every region; category repeats under categories.
	return s
}
