// Package schema models XML Schemas and DTDs as trees of named elements,
// the structural substrate of the data-exchange architecture (paper §3.1).
//
// The paper views an XML Schema as a tree whose nodes are elements; a
// fragment is any subtree of that tree. Element names are required to be
// unique across the schema (true of the paper's running examples and of the
// XMark DTD subset of Figure 7), which lets fragments and fragmentations
// reference elements by name alone.
package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Node is one element declaration in a schema tree.
type Node struct {
	// Name is the element name, unique across the schema.
	Name string
	// Repeated reports whether the element may occur more than once under
	// its parent (DTD * or +, XML Schema maxOccurs="unbounded").
	Repeated bool
	// Optional reports whether the element may be absent (DTD ? or *).
	Optional bool
	// Children are the element's child declarations, in document order.
	Children []*Node

	parent *Node
	path   string
	depth  int
}

// Parent returns the node's parent declaration, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Path returns the slash-separated path from the root, e.g.
// "site/regions/africa/item".
func (n *Node) Path() string { return n.path }

// Depth returns the node's depth; the root has depth 0.
func (n *Node) Depth() int { return n.depth }

// IsLeaf reports whether the element has no child elements (it carries
// character data only).
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Schema is a validated, indexed element tree.
//
// An element may be referenced by more than one parent declaration (the
// XMark DTD's item element is a child of all six region elements). Such an
// element appears in the tree once, under its first referencing parent; the
// remaining referencing parents are recorded as extra parents and reported
// by Parents.
type Schema struct {
	root         *Node
	byName       map[string]*Node
	names        []string // pre-order
	extraParents map[string][]string

	orderMu       sync.RWMutex
	orderCache    map[string]map[string]int
	childrenCache map[string][]string
	interiorCache map[string]bool
}

// New validates the element tree rooted at root and builds an indexed
// Schema. It returns an error if any element name appears more than once.
func New(root *Node) (*Schema, error) {
	if root == nil {
		return nil, fmt.Errorf("schema: nil root")
	}
	s := &Schema{root: root, byName: make(map[string]*Node), extraParents: make(map[string][]string)}
	var walk func(n *Node, parent *Node, depth int) error
	walk = func(n *Node, parent *Node, depth int) error {
		if n.Name == "" {
			return fmt.Errorf("schema: element with empty name under %q", parentName(parent))
		}
		if _, dup := s.byName[n.Name]; dup {
			return fmt.Errorf("schema: duplicate element name %q", n.Name)
		}
		n.parent = parent
		n.depth = depth
		if parent == nil {
			n.path = n.Name
		} else {
			n.path = parent.path + "/" + n.Name
		}
		s.byName[n.Name] = n
		s.names = append(s.names, n.Name)
		for _, c := range n.Children {
			if err := walk(c, n, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, nil, 0); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNew is like New but panics on error; intended for fixtures.
func MustNew(root *Node) *Schema {
	s, err := New(root)
	if err != nil {
		panic(err)
	}
	return s
}

func parentName(p *Node) string {
	if p == nil {
		return "<root>"
	}
	return p.Name
}

// Root returns the schema's root element.
func (s *Schema) Root() *Node { return s.root }

// ByName returns the element with the given name, or nil.
func (s *Schema) ByName(name string) *Node { return s.byName[name] }

// Names returns all element names in pre-order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Len returns the number of elements in the schema.
func (s *Schema) Len() int { return len(s.names) }

// ParentOf returns the name of the primary parent of the named element, or
// "" for the root or an unknown element.
func (s *Schema) ParentOf(name string) string {
	n := s.byName[name]
	if n == nil || n.parent == nil {
		return ""
	}
	return n.parent.Name
}

// Parents returns all elements that may be the parent of name in a document:
// the primary parent followed by any extra parents (multi-parent elements
// such as XMark's item). The result is empty for the root.
func (s *Schema) Parents(name string) []string {
	var out []string
	if p := s.ParentOf(name); p != "" {
		out = append(out, p)
	}
	out = append(out, s.extraParents[name]...)
	return out
}

// AllChildren returns the names of all elements that may occur as children
// of name in documents: the primary children followed by extra children
// (elements recording name as an extra parent), in declaration order. The
// slice is computed once per element and shared across callers — it must
// not be mutated. (Record reconstruction consults it per node per row, so
// an uncached build dominated fragment scans.)
func (s *Schema) AllChildren(name string) []string {
	s.orderMu.RLock()
	out, ok := s.childrenCache[name]
	s.orderMu.RUnlock()
	if ok {
		return out
	}
	n := s.byName[name]
	if n == nil {
		return nil
	}
	out = []string{}
	for _, c := range n.Children {
		out = append(out, c.Name)
	}
	for _, child := range s.names {
		for _, p := range s.extraParents[child] {
			if p == name {
				out = append(out, child)
			}
		}
	}
	s.orderMu.Lock()
	if s.childrenCache == nil {
		s.childrenCache = make(map[string][]string)
	}
	s.childrenCache[name] = out
	s.orderMu.Unlock()
	return out
}

// ChildOrder returns the position of child among parent's possible children
// (for recovering document order after a Combine), or -1 if child may not
// occur under parent.
func (s *Schema) ChildOrder(parent, child string) int {
	for i, c := range s.AllChildren(parent) {
		if c == child {
			return i
		}
	}
	return -1
}

// ChildOrderMap returns a map from child element name to its position among
// name's possible children (AllChildren order), cached per element — Combine
// consults it for every parent instance that receives children, and
// rebuilding the map per touched parent dominated chained merges. The
// returned map is shared across callers and must not be mutated.
func (s *Schema) ChildOrderMap(name string) map[string]int {
	s.orderMu.RLock()
	m := s.orderCache[name]
	s.orderMu.RUnlock()
	if m != nil {
		return m
	}
	m = make(map[string]int)
	for i, c := range s.AllChildren(name) {
		m[c] = i
	}
	s.orderMu.Lock()
	if s.orderCache == nil {
		s.orderCache = make(map[string]map[string]int)
	}
	s.orderCache[name] = m
	s.orderMu.Unlock()
	return m
}

// InteriorElems returns the set of element names that may contain child
// elements in documents (AllChildren non-empty, counting extra children).
// Only these elements can be the join parent of a Combine, so instance join
// indexes restrict themselves to this set. The returned map is cached,
// shared across callers, and must not be mutated.
func (s *Schema) InteriorElems() map[string]bool {
	s.orderMu.RLock()
	m := s.interiorCache
	s.orderMu.RUnlock()
	if m != nil {
		return m
	}
	m = make(map[string]bool)
	for _, name := range s.names {
		if len(s.AllChildren(name)) > 0 {
			m[name] = true
		}
	}
	s.orderMu.Lock()
	s.interiorCache = m
	s.orderMu.Unlock()
	return m
}

// AddExtraParent records that parent may also contain name in documents,
// in addition to name's primary tree position. Both elements must exist.
func (s *Schema) AddExtraParent(name, parent string) error {
	if s.byName[name] == nil {
		return fmt.Errorf("schema: unknown element %q", name)
	}
	if s.byName[parent] == nil {
		return fmt.Errorf("schema: unknown element %q", parent)
	}
	for _, p := range s.Parents(name) {
		if p == parent {
			return nil
		}
	}
	s.extraParents[name] = append(s.extraParents[name], parent)
	s.orderMu.Lock()
	delete(s.orderCache, parent)
	s.interiorCache = nil
	s.orderMu.Unlock()
	return nil
}

// IsAncestor reports whether anc is a proper ancestor of name.
func (s *Schema) IsAncestor(anc, name string) bool {
	n := s.byName[name]
	if n == nil {
		return false
	}
	for p := n.parent; p != nil; p = p.parent {
		if p.Name == anc {
			return true
		}
	}
	return false
}

// Subtree returns the names of all elements in the subtree rooted at name
// (including name itself), in pre-order, or nil if name is unknown.
func (s *Schema) Subtree(name string) []string {
	n := s.byName[name]
	if n == nil {
		return nil
	}
	var out []string
	var walk func(m *Node)
	walk = func(m *Node) {
		out = append(out, m.Name)
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// String renders the schema as an indented tree, for debugging and golden
// tests.
func (s *Schema) String() string {
	var b strings.Builder
	var walk func(n *Node, indent int)
	walk = func(n *Node, indent int) {
		b.WriteString(strings.Repeat("  ", indent))
		b.WriteString(n.Name)
		if n.Repeated {
			b.WriteString("*")
		} else if n.Optional {
			b.WriteString("?")
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			walk(c, indent+1)
		}
	}
	walk(s.root, 0)
	return b.String()
}

// Elem is a convenience constructor for a schema node.
func Elem(name string, children ...*Node) *Node {
	return &Node{Name: name, Children: children}
}

// Rep marks a node as repeated (maxOccurs unbounded) and returns it.
func Rep(n *Node) *Node { n.Repeated = true; return n }

// Opt marks a node as optional and returns it.
func Opt(n *Node) *Node { n.Optional = true; return n }

// Balanced builds a complete tree of the given depth and fan-out with
// generated element names (root "e0", then "e1"... in pre-order).
// depth 0 yields a single root. Leaf elements carry text; all generated
// non-root elements are repeated, mirroring the simulator setups in §5.4.
func Balanced(depth, fanout int) *Schema {
	if depth < 0 || fanout < 1 {
		panic(fmt.Sprintf("schema: invalid Balanced(%d,%d)", depth, fanout))
	}
	id := 0
	next := func() string { n := fmt.Sprintf("e%d", id); id++; return n }
	var build func(d int) *Node
	build = func(d int) *Node {
		n := &Node{Name: next()}
		if d == 0 {
			return n
		}
		for i := 0; i < fanout; i++ {
			c := build(d - 1)
			c.Repeated = true
			n.Children = append(n.Children, c)
		}
		return n
	}
	return MustNew(build(depth))
}

// SortedNames returns all element names sorted lexicographically; useful for
// deterministic iteration over element sets.
func (s *Schema) SortedNames() []string {
	out := s.Names()
	sort.Strings(out)
	return out
}
