package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIndexesTree(t *testing.T) {
	s := MustNew(Elem("a", Elem("b", Elem("c")), Rep(Elem("d"))))
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if got := s.ByName("c").Path(); got != "a/b/c" {
		t.Errorf("path of c = %q, want a/b/c", got)
	}
	if got := s.ParentOf("d"); got != "a" {
		t.Errorf("ParentOf(d) = %q, want a", got)
	}
	if got := s.ParentOf("a"); got != "" {
		t.Errorf("ParentOf(root) = %q, want empty", got)
	}
	if !s.ByName("d").Repeated {
		t.Errorf("d should be repeated")
	}
	if !s.IsAncestor("a", "c") || s.IsAncestor("c", "a") {
		t.Errorf("IsAncestor wrong for a/c")
	}
	if s.IsAncestor("c", "c") {
		t.Errorf("IsAncestor must be proper")
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	_, err := New(Elem("a", Elem("b"), Elem("b")))
	if err == nil {
		t.Fatal("want error for duplicate element name")
	}
}

func TestNewRejectsNilAndEmpty(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("want error for nil root")
	}
	if _, err := New(Elem("a", Elem(""))); err == nil {
		t.Error("want error for empty child name")
	}
}

func TestSubtree(t *testing.T) {
	s := MustNew(Elem("a", Elem("b", Elem("c")), Elem("d")))
	got := s.Subtree("b")
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("Subtree(b) = %v, want [b c]", got)
	}
	if s.Subtree("zzz") != nil {
		t.Errorf("Subtree(unknown) should be nil")
	}
}

func TestBalancedShape(t *testing.T) {
	s := Balanced(2, 3)
	if want := 1 + 3 + 9; s.Len() != want {
		t.Fatalf("Balanced(2,3) has %d nodes, want %d", s.Len(), want)
	}
	if s.Root().Name != "e0" {
		t.Errorf("root = %q, want e0", s.Root().Name)
	}
	// Paper's Table 5 setup: height 2, fan-out 5 => 31 nodes.
	if got := Balanced(2, 5).Len(); got != 31 {
		t.Errorf("Balanced(2,5) = %d nodes, want 31", got)
	}
}

func TestBalancedDepths(t *testing.T) {
	s := Balanced(3, 4)
	maxDepth := 0
	for _, name := range s.Names() {
		if d := s.ByName(name).Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 3 {
		t.Errorf("max depth = %d, want 3", maxDepth)
	}
}

func TestExtraParents(t *testing.T) {
	s := MustNew(Elem("a", Elem("b", Elem("x")), Elem("c")))
	if err := s.AddExtraParent("x", "c"); err != nil {
		t.Fatal(err)
	}
	got := s.Parents("x")
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("Parents(x) = %v, want [b c]", got)
	}
	// Idempotent.
	if err := s.AddExtraParent("x", "c"); err != nil {
		t.Fatal(err)
	}
	if len(s.Parents("x")) != 2 {
		t.Errorf("AddExtraParent not idempotent: %v", s.Parents("x"))
	}
	if err := s.AddExtraParent("nope", "c"); err == nil {
		t.Error("want error for unknown child")
	}
	if err := s.AddExtraParent("x", "nope"); err == nil {
		t.Error("want error for unknown parent")
	}
}

func TestStringRendering(t *testing.T) {
	s := MustNew(Elem("a", Rep(Elem("b")), Opt(Elem("c"))))
	out := s.String()
	for _, want := range []string{"a\n", "  b*", "  c?"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
}

func TestAuctionFixture(t *testing.T) {
	s := Auction()
	if s.Root().Name != "site" {
		t.Fatalf("auction root = %q, want site", s.Root().Name)
	}
	// 6 regions + site,regions,categories,category,cname,cdescription,
	// catgraph,people,openauctions,closedauctions + item + 7 item children.
	if s.ByName("item") == nil {
		t.Fatal("item missing")
	}
	parents := s.Parents("item")
	if len(parents) != 6 {
		t.Fatalf("item has %d parents (%v), want 6 regions", len(parents), parents)
	}
	seen := map[string]bool{}
	for _, p := range parents {
		seen[p] = true
	}
	for _, r := range []string{"africa", "asia", "australia", "europe", "namerica", "samerica"} {
		if !seen[r] {
			t.Errorf("item parents missing region %q (have %v)", r, parents)
		}
	}
	if !s.ByName("item").Repeated {
		t.Errorf("item should be repeated")
	}
	if !s.ByName("category").Repeated {
		t.Errorf("category should be repeated")
	}
	if s.ByName("location").Parent().Name != "item" {
		t.Errorf("location parent = %q, want item", s.ByName("location").Parent().Name)
	}
}

func TestCustomerInfoFixture(t *testing.T) {
	s := CustomerInfo()
	if s.Root().Name != "Customer" {
		t.Fatalf("root = %q", s.Root().Name)
	}
	for _, name := range []string{"CustName", "Order", "Service", "ServiceName", "Line", "TelNo", "Switch", "SwitchID", "Feature", "FeatureID"} {
		if s.ByName(name) == nil {
			t.Errorf("missing element %q", name)
		}
	}
	if !s.ByName("Order").Repeated || !s.ByName("Line").Repeated || !s.ByName("Feature").Repeated {
		t.Errorf("Order, Line, Feature must be repeated")
	}
	if s.ParentOf("Feature") != "Line" {
		t.Errorf("ParentOf(Feature) = %q, want Line", s.ParentOf("Feature"))
	}
}

func TestParseDTDBasics(t *testing.T) {
	s, err := ParseDTD(`<!ELEMENT r (a, b*)> <!ELEMENT a (#PCDATA)> <!ELEMENT b (c+)>`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Root().Name != "r" {
		t.Errorf("root = %q", s.Root().Name)
	}
	b := s.ByName("b")
	if b == nil || !b.Repeated || !b.Optional {
		t.Errorf("b should be repeated+optional: %+v", b)
	}
	c := s.ByName("c")
	if c == nil || !c.Repeated || c.Optional {
		t.Errorf("c should be repeated, not optional: %+v", c)
	}
	if !s.ByName("a").IsLeaf() {
		t.Errorf("a should be a leaf")
	}
}

func TestParseDTDGroupSuffix(t *testing.T) {
	s, err := ParseDTD(`<!ELEMENT r (a, b)*>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		e := s.ByName(n)
		if !e.Repeated || !e.Optional {
			t.Errorf("%s should inherit group * suffix", n)
		}
	}
}

func TestParseDTDErrors(t *testing.T) {
	cases := []string{
		``,                                  // no declarations
		`<!ELEMENT a (b)`,                   // unterminated
		`<!ELEMENT a (b)> <!ELEMENT a (c)>`, // duplicate
		`<!ELEMENT a b>`,                    // unparenthesized
	}
	for _, src := range cases {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("ParseDTD(%q): want error", src)
		}
	}
}

func TestParseDTDIgnoresAttlistAndComments(t *testing.T) {
	s, err := ParseDTD(`<!-- hi --> <!ELEMENT r (a)> <!ATTLIST r id ID #REQUIRED> <!ELEMENT a (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestAllChildrenAndChildOrder(t *testing.T) {
	s := Auction()
	kids := s.AllChildren("africa")
	if len(kids) != 1 || kids[0] != "item" {
		t.Errorf("AllChildren(africa) = %v", kids)
	}
	// asia has item only through the extra-parent edge.
	kids = s.AllChildren("asia")
	if len(kids) != 1 || kids[0] != "item" {
		t.Errorf("AllChildren(asia) = %v", kids)
	}
	if got := s.ChildOrder("item", "quantity"); got != 1 {
		t.Errorf("ChildOrder(item, quantity) = %d, want 1", got)
	}
	if got := s.ChildOrder("item", "site"); got != -1 {
		t.Errorf("ChildOrder of non-child = %d, want -1", got)
	}
	if s.AllChildren("nope") != nil {
		t.Error("AllChildren(unknown) should be nil")
	}
}

func TestSortedNames(t *testing.T) {
	s := MustNew(Elem("b", Elem("a"), Elem("c")))
	got := s.SortedNames()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedNames = %v", got)
	}
}

func TestParseDTDEmptyAndAny(t *testing.T) {
	s, err := ParseDTD(`<!ELEMENT r (a, b)> <!ELEMENT a EMPTY> <!ELEMENT b ANY>`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.ByName("a").IsLeaf() || !s.ByName("b").IsLeaf() {
		t.Error("EMPTY/ANY should be leaves")
	}
}

func TestBalancedPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Balanced(-1, 0) should panic")
		}
	}()
	Balanced(-1, 0)
}

// Property: every non-root element's primary parent contains it among its
// children, and paths are prefix-consistent.
func TestParentChildConsistencyProperty(t *testing.T) {
	check := func(depth, fanout uint8) bool {
		d := int(depth%3) + 1
		f := int(fanout%3) + 1
		s := Balanced(d, f)
		for _, name := range s.Names() {
			n := s.ByName(name)
			if n.Parent() == nil {
				if n != s.Root() {
					return false
				}
				continue
			}
			found := false
			for _, c := range n.Parent().Children {
				if c == n {
					found = true
				}
			}
			if !found {
				return false
			}
			if !strings.HasPrefix(n.Path(), n.Parent().Path()+"/") {
				return false
			}
			if n.Depth() != n.Parent().Depth()+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
