// Package shred implements the streaming stack shredder of §5.1: a single
// pass over an XML document that cuts it into the records of a target
// fragmentation, minting instance identifiers along the way and discarding
// parser state as soon as records are complete — the role played by the
// expat-based SAX shredder in the paper.
package shred

import (
	"fmt"
	"io"
	"strconv"

	"xdx/internal/core"
	"xdx/internal/xmltree"
)

// Sink receives completed fragment records as they are flushed.
type Sink func(frag *core.Fragment, rec *xmltree.Node) error

// To streams the document in r into sink, shredded per layout. Every
// element instance receives a fresh Dewey identifier; fragment-root records
// carry their parent instance's identifier in PARENT.
func To(r io.Reader, layout *core.Fragmentation, sink Sink) error {
	type entry struct {
		name string
		id   string
		node *xmltree.Node  // the node in the current fragment record
		frag *core.Fragment // the fragment owning this element
		kids int            // children seen, for Dewey numbering
	}
	// Entries live in a value stack (popped slots are reused on the next
	// push) and record nodes come from an arena, so the shredder allocates
	// per slab rather than per element. The arena spans one document — the
	// shred's decode unit — and slabs whose records have all been flushed
	// and dropped become collectable again, keeping pipelines bounded.
	var stack []entry
	var arena xmltree.Arena
	h := xmltree.FuncHandler{
		Start: func(name, _, _ string) error {
			frag := layout.FragmentOf(name)
			if frag == nil {
				return fmt.Errorf("shred: element %q not covered by layout %q", name, layout.Name)
			}
			var id, parentID string
			if len(stack) > 0 {
				top := &stack[len(stack)-1]
				top.kids++
				id = top.id + "." + strconv.Itoa(top.kids)
				parentID = top.id
			} else {
				id = "1"
			}
			node := arena.New()
			node.Name, node.ID, node.Parent = name, id, parentID
			if frag.Root != name {
				// Interior element: its document parent must be the open
				// element just below it on the stack, in the same fragment.
				if len(stack) == 0 || stack[len(stack)-1].frag != frag || stack[len(stack)-1].node == nil {
					return fmt.Errorf("shred: element %q is interior to fragment %q but its parent is not open in that fragment", name, frag.Name)
				}
				stack[len(stack)-1].node.AddKid(node)
			}
			stack = append(stack, entry{name: name, id: id, node: node, frag: frag})
			return nil
		},
		Data: func(text string) error {
			if len(stack) == 0 {
				return nil
			}
			stack[len(stack)-1].node.Text += text
			return nil
		},
		End: func(name string) error {
			if len(stack) == 0 {
				return fmt.Errorf("shred: unbalanced end element %q", name)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.frag.Root == top.name {
				return sink(top.frag, top.node)
			}
			return nil
		},
	}
	return xmltree.Scan(r, h)
}

// Loader accepts fragment instances; relstore.Store and ldapstore.Store
// satisfy it.
type Loader interface {
	Load(in *core.Instance) error
}

// Into streams the document in r straight into a store, flushing batches
// of batchSize records per fragment as they complete — the bounded-memory
// pipeline of §5.1 ("discarded the content of the stack as soon as tuples
// were flushed"). batchSize <= 0 selects a default of 512. Records flush in
// completion order (children before their parents), which suits relational
// stores; order-sensitive stores like the LDAP directory should use Shred
// and load fragment by fragment instead.
func Into(r io.Reader, layout *core.Fragmentation, dst Loader, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 512
	}
	pending := make(map[string]*core.Instance, layout.Len())
	flush := func(in *core.Instance) error {
		if in.Rows() == 0 {
			return nil
		}
		if err := dst.Load(in); err != nil {
			return err
		}
		in.Records = in.Records[:0]
		return nil
	}
	err := To(r, layout, func(frag *core.Fragment, rec *xmltree.Node) error {
		in := pending[frag.Name]
		if in == nil {
			in = &core.Instance{Frag: frag}
			pending[frag.Name] = in
		}
		in.Records = append(in.Records, rec)
		if in.Rows() >= batchSize {
			return flush(in)
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Flush remainders in layout order.
	for _, f := range layout.Fragments {
		if in := pending[f.Name]; in != nil {
			if err := flush(in); err != nil {
				return err
			}
		}
	}
	return nil
}

// Shred consumes the document in r and returns one instance per layout
// fragment (possibly empty).
func Shred(r io.Reader, layout *core.Fragmentation) (map[string]*core.Instance, error) {
	out := make(map[string]*core.Instance, layout.Len())
	for _, f := range layout.Fragments {
		out[f.Name] = &core.Instance{Frag: f}
	}
	err := To(r, layout, func(frag *core.Fragment, rec *xmltree.Node) error {
		in := out[frag.Name]
		in.Records = append(in.Records, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
