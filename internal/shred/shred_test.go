package shred

import (
	"bytes"
	"strings"
	"testing"

	"xdx/internal/core"
	"xdx/internal/publish"
	"xdx/internal/relstore"
	"xdx/internal/schema"
	"xdx/internal/xmark"
	"xdx/internal/xmltree"
)

func TestShredAuctionMFAndLF(t *testing.T) {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 30_000, Seed: 5})
	var buf bytes.Buffer
	if err := xmltree.Write(&buf, doc, xmltree.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	want, _ := xmark.Stats(doc)
	for _, layout := range []*core.Fragmentation{core.MostFragmented(sch), core.LeastFragmented(sch)} {
		insts, err := Shred(bytes.NewReader(buf.Bytes()), layout)
		if err != nil {
			t.Fatalf("%s: %v", layout.Name, err)
		}
		if len(insts) != layout.Len() {
			t.Fatalf("%s: %d instances, want %d", layout.Name, len(insts), layout.Len())
		}
		for _, f := range layout.Fragments {
			if got := insts[f.Name].Rows(); float64(got) != want[f.Root] {
				t.Errorf("%s: fragment %q rows = %d, want %v", layout.Name, f.Name, got, want[f.Root])
			}
		}
	}
}

func TestShredRecordsReassemble(t *testing.T) {
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 20_000, Seed: 11})
	var buf bytes.Buffer
	xmltree.Write(&buf, doc, xmltree.WriteOptions{})
	lf := core.LeastFragmented(sch)
	insts, err := Shred(&buf, lf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Document(lf, insts)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualShape(doc, back) {
		t.Error("shredded records do not reassemble into the document")
	}
}

func TestShredIntoStore(t *testing.T) {
	// The publish&map pipeline: publish at source, shred at target, load.
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 25_000, Seed: 2})
	srcStore, err := relstore.NewStore(core.LeastFragmented(sch))
	if err != nil {
		t.Fatal(err)
	}
	if err := srcStore.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	var shipped bytes.Buffer
	if _, err := publish.Publish(srcStore, &shipped); err != nil {
		t.Fatal(err)
	}
	tgtLayout := core.MostFragmented(sch)
	tgtStore, err := relstore.NewStore(tgtLayout)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := Shred(&shipped, tgtLayout)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tgtLayout.Fragments {
		if err := tgtStore.Load(insts[f.Name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tgtStore.BuildIndexes(); err != nil {
		t.Fatal(err)
	}
	// End-to-end: the document reassembled at the target matches.
	out := map[string]*core.Instance{}
	for _, f := range tgtLayout.Fragments {
		in, err := tgtStore.ScanFragment(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		out[f.Name] = in
	}
	back, err := core.Document(tgtLayout, out)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualShape(doc, back) {
		t.Error("publish&map end-to-end changed the document")
	}
}

func TestShredIntoStreaming(t *testing.T) {
	// Into must produce the same store contents as Shred+Load, with small
	// batches forcing many flushes.
	sch := xmark.Schema()
	doc := xmark.Generate(xmark.Config{TargetBytes: 30_000, Seed: 13})
	var buf bytes.Buffer
	xmltree.Write(&buf, doc, xmltree.WriteOptions{})
	layout := core.MostFragmented(sch)

	streamed, err := relstore.NewStore(layout)
	if err != nil {
		t.Fatal(err)
	}
	if err := Into(bytes.NewReader(buf.Bytes()), layout, streamed, 7); err != nil {
		t.Fatal(err)
	}
	batch, err := relstore.NewStore(layout)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := Shred(bytes.NewReader(buf.Bytes()), layout)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range layout.Fragments {
		if err := batch.Load(insts[f.Name]); err != nil {
			t.Fatal(err)
		}
	}
	if streamed.Rows() != batch.Rows() {
		t.Errorf("streamed %d rows, batch %d", streamed.Rows(), batch.Rows())
	}
	for _, name := range layout.Fragments {
		a, err := streamed.ScanFragment(name.Name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := batch.ScanFragment(name.Name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rows() != b.Rows() {
			t.Errorf("fragment %q: %d vs %d rows", name.Name, a.Rows(), b.Rows())
		}
	}
}

func TestShredIntoPropagatesLoadErrors(t *testing.T) {
	sch := schema.CustomerInfo()
	lf := core.LeastFragmented(sch)
	// A store laid out differently rejects the instances.
	other, err := relstore.NewStore(core.MostFragmented(sch))
	if err != nil {
		t.Fatal(err)
	}
	doc := `<Customer><CustName>A</CustName></Customer>`
	if err := Into(strings.NewReader(doc), lf, other, 1); err == nil {
		t.Error("mismatched store must surface the load error")
	}
}

func TestShredErrors(t *testing.T) {
	sch := schema.CustomerInfo()
	lf := core.LeastFragmented(sch)
	if _, err := Shred(strings.NewReader("<Unknown/>"), lf); err == nil {
		t.Error("unknown element must fail")
	}
	if _, err := Shred(strings.NewReader("<Customer><CustName>x</CustName>"), lf); err == nil {
		t.Error("unterminated document must fail")
	}
}

func TestShredMintsDeweyIDs(t *testing.T) {
	sch := schema.CustomerInfo()
	mf := core.MostFragmented(sch)
	doc := `<Customer><CustName>A</CustName><Order><Service><ServiceName>s</ServiceName></Service></Order></Customer>`
	insts, err := Shred(strings.NewReader(doc), mf)
	if err != nil {
		t.Fatal(err)
	}
	var orderInst *core.Instance
	for _, in := range insts {
		if in.Frag.Root == "Order" {
			orderInst = in
		}
	}
	rec := orderInst.Records[0]
	if rec.ID != "1.2" || rec.Parent != "1" {
		t.Errorf("order record id/parent = %q/%q, want 1.2/1", rec.ID, rec.Parent)
	}
}

func TestSinkStreaming(t *testing.T) {
	// The sink sees records as soon as their subtree closes, in document
	// order of the closing tags.
	sch := schema.CustomerInfo()
	lf := core.LeastFragmented(sch)
	doc := `<Customer><CustName>A</CustName><Order><Service><ServiceName>s</ServiceName>` +
		`<Line><TelNo>1</TelNo><Switch><SwitchID>w</SwitchID></Switch>` +
		`<Feature><FeatureID>f</FeatureID></Feature></Line></Service></Order></Customer>`
	var order []string
	err := To(strings.NewReader(doc), lf, func(f *core.Fragment, rec *xmltree.Node) error {
		order = append(order, rec.Name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Feature", "Line", "Order", "Customer"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("flush order = %v, want %v", order, want)
	}
}
