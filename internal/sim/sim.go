// Package sim is the simulator of §5.4: it builds synthetic exchange
// configurations — balanced DTDs, random source/target fragmentations,
// analytic per-element statistics and per-system speed factors — and
// evaluates data-exchange programs against publishing under the §4.1 cost
// model. All §5.4 experiments (Figures 10 and 11, Table 5) run on top of
// this package, using the same code base for every algorithm, as the paper
// stresses.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"xdx/internal/core"
	"xdx/internal/schema"
)

// Config describes one simulated exchange setup.
type Config struct {
	// Depth and Fanout shape the balanced DTD (Figure 10 uses 3/4,
	// Table 5 uses 2/5).
	Depth, Fanout int
	// Rep is the number of instances each repeated element has per parent
	// (default 3).
	Rep float64
	// ElemBytes is the average serialized size of one element instance
	// (default 20).
	ElemBytes float64
	// SourceSpeed and TargetSpeed are the systems' relative processing
	// speeds (default 1). Figure 11 sets TargetSpeed = 10.
	SourceSpeed, TargetSpeed float64
	// DumbTarget forbids combines at the target (§4.1).
	DumbTarget bool
	// WComp and WComm weight the cost model; §5.4 assumes a fast
	// interconnect, so WComm defaults to a small 0.1.
	WComp, WComm float64
	// FragsPerSide is the number of fragments in each random fragmentation
	// (default 11, as in §5.4.1).
	FragsPerSide int
	// Seed drives all random choices.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = 3
	}
	if c.Fanout == 0 {
		c.Fanout = 4
	}
	if c.Rep == 0 {
		c.Rep = 3
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 20
	}
	if c.SourceSpeed == 0 {
		c.SourceSpeed = 1
	}
	if c.TargetSpeed == 0 {
		c.TargetSpeed = 1
	}
	if c.WComp == 0 {
		c.WComp = 1
	}
	if c.WComm == 0 {
		c.WComm = 0.1
	}
	if c.FragsPerSide == 0 {
		c.FragsPerSide = 11
	}
	return c
}

// Scenario is an instantiated configuration.
type Scenario struct {
	Config Config
	Schema *schema.Schema
	// Source and Target are the randomly selected fragmentations of the
	// two systems.
	Source, Target *core.Fragmentation
	// Model is the §4.1 cost model over the two systems.
	Model *core.Model
	// Provider exposes the underlying statistics.
	Provider *core.StatsProvider
}

// New builds a scenario.
func New(cfg Config) *Scenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sch := schema.Balanced(cfg.Depth, cfg.Fanout)
	src := core.Random(sch, rng, cfg.FragsPerSide)
	src.Name = "source"
	tgt := core.Random(sch, rng, cfg.FragsPerSide)
	tgt.Name = "target"
	card := make(map[string]float64, sch.Len())
	bytes := make(map[string]float64, sch.Len())
	for _, e := range sch.Names() {
		card[e] = math.Pow(cfg.Rep, float64(sch.ByName(e).Depth()))
		bytes[e] = cfg.ElemBytes
	}
	p := &core.StatsProvider{
		Card: card, Bytes: bytes,
		Unit:        core.DefaultUnitCosts(),
		SourceSpeed: cfg.SourceSpeed, TargetSpeed: cfg.TargetSpeed,
		TargetCombines: !cfg.DumbTarget,
	}
	m := core.NewModel(p)
	m.WComp, m.WComm = cfg.WComp, cfg.WComm
	return &Scenario{Config: cfg, Schema: sch, Source: src, Target: tgt, Model: m, Provider: p}
}

// Comparison holds the Figure 10/11 measurement: the cost components of
// the optimized data-exchange program and of publishing only.
type Comparison struct {
	Exchange core.CostBreakdown
	Publish  core.CostBreakdown
	// Reduction is 1 - exchange/publish on total cost.
	Reduction float64
	// CombinesAtTarget counts exchange combines placed at the target
	// (Figure 11's "places all combines there").
	CombinesAtTarget int
	// CombinesTotal counts all combines in the exchange program.
	CombinesTotal int
}

// CompareWithPublish evaluates the optimized (greedy, as the schemas here
// exceed the exhaustive search's reach) data-exchange program against
// publishing the full document at the source — the §5.4.1 experiment.
// Publishing uses a single program with every operation at the source and
// the whole document shipped, and does not account for tagging, exactly as
// the paper describes.
func (s *Scenario) CompareWithPublish() (Comparison, error) {
	var cmp Comparison
	m, err := core.NewMapping(s.Source, s.Target)
	if err != nil {
		return cmp, err
	}
	res, err := core.Greedy(m, s.Model)
	if err != nil {
		return cmp, err
	}
	cmp.Exchange, err = s.Model.Breakdown(res.Program, res.Assign)
	if err != nil {
		return cmp, err
	}
	for _, op := range res.Program.Ops {
		if op.Kind == core.OpCombine {
			cmp.CombinesTotal++
			if res.Assign[op.ID] == core.LocTarget {
				cmp.CombinesAtTarget++
			}
		}
	}
	pub, err := s.publishCost()
	if err != nil {
		return cmp, err
	}
	cmp.Publish = pub
	et := cmp.Exchange.Computation + cmp.Exchange.Communication
	pt := cmp.Publish.Computation + cmp.Publish.Communication
	if pt > 0 {
		cmp.Reduction = 1 - et/pt
	}
	return cmp, nil
}

// publishCost builds the publishing program (source fragmentation to the
// whole XML Schema, all operations at the source) and evaluates it.
func (s *Scenario) publishCost() (core.CostBreakdown, error) {
	pm, err := core.NewMapping(s.Source, core.Trivial(s.Schema))
	if err != nil {
		return core.CostBreakdown{}, err
	}
	g, err := core.CanonicalProgram(pm)
	if err != nil {
		return core.CostBreakdown{}, err
	}
	a := core.NewAssignment(g)
	for _, op := range g.Ops {
		if op.Kind == core.OpWrite {
			a[op.ID] = core.LocTarget
		} else {
			a[op.ID] = core.LocSource
		}
	}
	return s.Model.Breakdown(g, a)
}

// GreedyEval is one row of Table 5 plus the §5.4.2 runtime comparison.
type GreedyEval struct {
	// SpeedRatio is source speed / target speed, e.g. "5/1".
	SpeedRatio string
	// WorstOverOptimal and GreedyOverOptimal are cost ratios averaged over
	// the runs.
	WorstOverOptimal  float64
	GreedyOverOptimal float64
	// OptimalTime and GreedyTime are the average per-run optimizer
	// runtimes.
	OptimalTime, GreedyTime time.Duration
	// Runs is the number of random setups averaged.
	Runs int
}

// EvaluateGreedy reproduces one Table 5 row: for the given speeds it
// builds `runs` random DTD/fragmentation setups (varying the seed),
// computes optimal, worst-case and greedy programs, and averages the cost
// ratios. Setups whose program space exceeds the exhaustive search's
// limits are skipped (and not counted), mirroring the paper's restriction
// of the exhaustive algorithm to small schemas.
func EvaluateGreedy(base Config, runs int) (GreedyEval, error) {
	base = base.withDefaults()
	ev := GreedyEval{SpeedRatio: fmt.Sprintf("%g/%g", base.SourceSpeed, base.TargetSpeed)}
	var sumWorst, sumGreedy float64
	var sumOptTime, sumGreedyTime time.Duration
	for seed := int64(0); ev.Runs < runs && seed < int64(runs*10); seed++ {
		cfg := base
		cfg.Seed = base.Seed + seed
		scn := New(cfg)
		m, err := core.NewMapping(scn.Source, scn.Target)
		if err != nil {
			return ev, err
		}
		t0 := time.Now()
		opt, err := core.Optimal(m, scn.Model, core.GenOptions{})
		optTime := time.Since(t0)
		if err != nil {
			continue // program space too large for the exhaustive search
		}
		worst, err := core.WorstCase(m, scn.Model, core.GenOptions{})
		if err != nil {
			continue
		}
		t1 := time.Now()
		gr, err := core.Greedy(m, scn.Model)
		greedyTime := time.Since(t1)
		if err != nil {
			return ev, err
		}
		if opt.Cost <= 0 {
			continue
		}
		sumWorst += worst.Cost / opt.Cost
		sumGreedy += gr.Cost / opt.Cost
		sumOptTime += optTime
		sumGreedyTime += greedyTime
		ev.Runs++
	}
	if ev.Runs == 0 {
		return ev, fmt.Errorf("sim: no feasible setups for exhaustive evaluation")
	}
	n := float64(ev.Runs)
	ev.WorstOverOptimal = sumWorst / n
	ev.GreedyOverOptimal = sumGreedy / n
	ev.OptimalTime = sumOptTime / time.Duration(ev.Runs)
	ev.GreedyTime = sumGreedyTime / time.Duration(ev.Runs)
	return ev, nil
}
