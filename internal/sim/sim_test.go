package sim

import (
	"testing"

	"xdx/internal/core"
)

func TestNewScenarioDefaults(t *testing.T) {
	s := New(Config{Seed: 1})
	if s.Schema.Len() != 85 { // 1+4+16+64, the Figure 10 DTD
		t.Errorf("schema has %d nodes, want 85", s.Schema.Len())
	}
	if s.Source.Len() != 11 || s.Target.Len() != 11 {
		t.Errorf("fragmentations = %d/%d, want 11/11", s.Source.Len(), s.Target.Len())
	}
	if s.Provider.Card["e0"] != 1 {
		t.Errorf("root cardinality = %v", s.Provider.Card["e0"])
	}
	// Depth-3 elements have Rep^3 = 27 instances.
	found := false
	for _, e := range s.Schema.Names() {
		if s.Schema.ByName(e).Depth() == 3 {
			if s.Provider.Card[e] != 27 {
				t.Errorf("depth-3 cardinality = %v, want 27", s.Provider.Card[e])
			}
			found = true
			break
		}
	}
	if !found {
		t.Error("no depth-3 element")
	}
}

func TestCompareWithPublishEqualSystems(t *testing.T) {
	// Figure 10: equal systems; the paper reports ~65% reduction. Require
	// a substantial reduction and a sane breakdown.
	var reductions []float64
	for seed := int64(0); seed < 5; seed++ {
		s := New(Config{Seed: seed})
		cmp, err := s.CompareWithPublish()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cmp.Exchange.Computation <= 0 || cmp.Publish.Computation <= 0 {
			t.Fatalf("seed %d: empty breakdown %+v", seed, cmp)
		}
		if cmp.Reduction <= 0 {
			t.Errorf("seed %d: exchange (%.0f) not cheaper than publish (%.0f)",
				seed,
				cmp.Exchange.Computation+cmp.Exchange.Communication,
				cmp.Publish.Computation+cmp.Publish.Communication)
		}
		reductions = append(reductions, cmp.Reduction)
	}
	avg := 0.0
	for _, r := range reductions {
		avg += r
	}
	avg /= float64(len(reductions))
	if avg < 0.3 || avg > 0.95 {
		t.Errorf("average reduction %.2f outside the plausible band around the paper's 0.65", avg)
	}
}

func TestCompareWithPublishFastTarget(t *testing.T) {
	// Figure 11: a 10x faster target increases the saving (paper: 85%)
	// because combines move to the target.
	var equalSum, fastSum float64
	var combinesMoved bool
	for seed := int64(0); seed < 5; seed++ {
		eq, err := New(Config{Seed: seed}).CompareWithPublish()
		if err != nil {
			t.Fatal(err)
		}
		fast, err := New(Config{Seed: seed, TargetSpeed: 10}).CompareWithPublish()
		if err != nil {
			t.Fatal(err)
		}
		equalSum += eq.Reduction
		fastSum += fast.Reduction
		if fast.CombinesAtTarget > 0 {
			combinesMoved = true
		}
	}
	if fastSum <= equalSum {
		t.Errorf("fast target reduction %.2f not larger than equal systems %.2f", fastSum/5, equalSum/5)
	}
	if !combinesMoved {
		t.Error("fast target never attracted combines")
	}
}

func TestDumbTargetKeepsCombinesAtSource(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		s := New(Config{Seed: seed, TargetSpeed: 10, DumbTarget: true})
		cmp, err := s.CompareWithPublish()
		if err != nil {
			t.Fatal(err)
		}
		if cmp.CombinesAtTarget != 0 {
			t.Errorf("seed %d: %d combines at a dumb target", seed, cmp.CombinesAtTarget)
		}
	}
}

func TestEvaluateGreedyTable5Shape(t *testing.T) {
	// Table 5's qualitative findings on the 31-node DTD: greedy within a
	// few percent of optimal, worst-case noticeably above optimal, and
	// greedy much faster than exhaustive search.
	cfg := Config{Depth: 2, Fanout: 5, FragsPerSide: 6, SourceSpeed: 5, TargetSpeed: 1}
	ev, err := EvaluateGreedy(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Runs == 0 {
		t.Fatal("no runs")
	}
	if ev.GreedyOverOptimal < 1-1e-9 {
		t.Errorf("greedy/optimal = %.4f < 1", ev.GreedyOverOptimal)
	}
	if ev.GreedyOverOptimal > 1.3 {
		t.Errorf("greedy/optimal = %.4f, far from the paper's ~1.01", ev.GreedyOverOptimal)
	}
	if ev.WorstOverOptimal < ev.GreedyOverOptimal-1e-9 {
		t.Errorf("worst (%.4f) below greedy (%.4f)", ev.WorstOverOptimal, ev.GreedyOverOptimal)
	}
	if ev.GreedyTime > ev.OptimalTime {
		t.Errorf("greedy (%v) slower than exhaustive (%v)", ev.GreedyTime, ev.OptimalTime)
	}
	if ev.SpeedRatio != "5/1" {
		t.Errorf("speed ratio = %q", ev.SpeedRatio)
	}
}

func TestWorstWindowGrowsWithSpeedSkew(t *testing.T) {
	// Table 5: the optimization window is larger at skewed speeds than at
	// equal speeds.
	cfg := Config{Depth: 2, Fanout: 5, FragsPerSide: 6}
	eq := cfg
	eq.SourceSpeed, eq.TargetSpeed = 1, 1
	sk := cfg
	sk.SourceSpeed, sk.TargetSpeed = 5, 1
	evEq, err := EvaluateGreedy(eq, 4)
	if err != nil {
		t.Fatal(err)
	}
	evSk, err := EvaluateGreedy(sk, 4)
	if err != nil {
		t.Fatal(err)
	}
	if evSk.WorstOverOptimal <= evEq.WorstOverOptimal {
		t.Errorf("skewed window %.4f not larger than equal-speed window %.4f",
			evSk.WorstOverOptimal, evEq.WorstOverOptimal)
	}
}

func TestScenarioMappingExecutable(t *testing.T) {
	// The simulated scenario's programs are real programs: validate one.
	s := New(Config{Seed: 3, Depth: 2, Fanout: 3, FragsPerSide: 5})
	m, err := core.NewMapping(s.Source, s.Target)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.CanonicalProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
