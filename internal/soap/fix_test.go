package soap

// Regression tests for the status/header correctness fixes: non-2xx
// responses with parseable non-fault bodies, mustUnderstand enforcement
// (SOAP 1.1 §4.2.3) on both sides, header-entry exposure, and truncated
// response accounting.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xdx/internal/obs"
	"xdx/internal/xmltree"
)

// envelopeWith renders an envelope with the given header entries and body.
func envelopeWith(t *testing.T, headers []*xmltree.Node, body *xmltree.Node) string {
	t.Helper()
	var buf bytes.Buffer
	if err := xmltree.Write(&buf, EnvelopeWithHeader(headers, body), xmltree.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCallNon2xxWithParseableNonFaultBody(t *testing.T) {
	// A proxy can substitute a well-formed (even SOAP-shaped) body while
	// the status still says the call failed. Before the fix the client
	// returned the payload as a success; it must surface a fault carrying
	// the status so retry policies see the failure.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "text/xml")
		w.WriteHeader(http.StatusBadGateway)
		io.WriteString(w, envPrefix+"<OpResponse>stale</OpResponse>"+envSuffix)
	}))
	defer srv.Close()
	c := &Client{URL: srv.URL}

	payload, err := c.Call("Op", &xmltree.Node{Name: "Op"})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Call: want *Fault, got payload=%v err=%v", payload, err)
	}
	if f.Code != "soap:HTTP" || f.HTTPStatus != http.StatusBadGateway {
		t.Errorf("Call fault = %+v", f)
	}

	tb := &xmltree.TreeBuilder{}
	err = c.CallStream("Op", func(w io.Writer) error {
		_, err := io.WriteString(w, "<Op/>")
		return err
	}, tb)
	f = nil
	if !errors.As(err, &f) {
		t.Fatalf("CallStream: want *Fault, got %v", err)
	}
	if f.Code != "soap:HTTP" || f.HTTPStatus != http.StatusBadGateway {
		t.Errorf("CallStream fault = %+v", f)
	}
}

func TestServerFaultsOnUnrecognizedMustUnderstandHeader(t *testing.T) {
	srv := NewServer()
	srv.Handle("Echo", func(req *xmltree.Node) (*xmltree.Node, error) {
		return &xmltree.Node{Name: "EchoResponse"}, nil
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	hdr := &xmltree.Node{Name: "Transaction", Text: "tx-1"}
	hdr.SetAttr("mustUnderstand", "1")
	body := envelopeWith(t, []*xmltree.Node{hdr}, &xmltree.Node{Name: "Echo"})
	resp, err := http.Post(hs.URL, "text/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	env, err := xmltree.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, err = OpenEnvelope(env)
	f, ok := err.(*Fault)
	if !ok || f.Code != "soap:MustUnderstand" {
		t.Fatalf("want soap:MustUnderstand fault, got %v", err)
	}

	// The same entry without the flag is informational and must not fault.
	hdr2 := &xmltree.Node{Name: "Transaction", Text: "tx-2"}
	body = envelopeWith(t, []*xmltree.Node{hdr2}, &xmltree.Node{Name: "Echo"})
	resp2, err := http.Post(hs.URL, "text/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("optional header: status = %d, want 200", resp2.StatusCode)
	}
}

func TestServerHonorsCodecsHeaderEntry(t *testing.T) {
	// The codecs entry is part of the server's vocabulary: mandatory or
	// not, it negotiates instead of faulting — an alternative carrier for
	// the envelope's codecs attribute.
	srv := NewServer()
	var got []string
	var entries []*xmltree.Node
	srv.HandleStream("Op", func(env Header, attrs []xmltree.Attr) (xmltree.AttrHandler, RespondFunc, error) {
		got = env.Codecs
		entries = env.Entries
		return &xmltree.TreeBuilder{}, func(w io.Writer) error {
			_, err := io.WriteString(w, "<OpResponse/>")
			return err
		}, nil
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	hdr := &xmltree.Node{Name: "codecs", Text: "bin xml"}
	hdr.SetAttr("mustUnderstand", "1")
	body := envelopeWith(t, []*xmltree.Node{hdr}, &xmltree.Node{Name: "Op"})
	resp, err := http.Post(hs.URL, "text/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (codecs entry is understood)", resp.StatusCode)
	}
	if len(got) != 2 || got[0] != "bin" || got[1] != "xml" {
		t.Errorf("negotiated codecs = %v", got)
	}
	if len(entries) != 1 || entries[0].Name != "codecs" || entries[0].Text != "bin xml" {
		t.Errorf("handler saw entries = %+v", entries)
	}
}

func TestClientFaultsOnMustUnderstandResponseHeader(t *testing.T) {
	// A response header entry the client cannot understand but must is a
	// protocol breach; before the fix both bindings skipped headers
	// silently.
	respEnv := envelopeWith(t,
		[]*xmltree.Node{func() *xmltree.Node {
			h := &xmltree.Node{Name: "Expires", Text: "soon"}
			h.SetAttr("soap:mustUnderstand", "1")
			return h
		}()},
		&xmltree.Node{Name: "OpResponse"})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "text/xml")
		io.WriteString(w, respEnv)
	}))
	defer srv.Close()
	c := &Client{URL: srv.URL}

	_, err := c.Call("Op", &xmltree.Node{Name: "Op"})
	var f *Fault
	if !errors.As(err, &f) || f.Code != "soap:MustUnderstand" {
		t.Fatalf("Call: want soap:MustUnderstand, got %v", err)
	}

	err = c.CallStream("Op", func(w io.Writer) error {
		_, err := io.WriteString(w, "<Op/>")
		return err
	}, &xmltree.TreeBuilder{})
	f = nil
	if !errors.As(err, &f) || f.Code != "soap:MustUnderstand" {
		t.Fatalf("CallStream: want soap:MustUnderstand, got %v", err)
	}
}

// failAfterWriter is a ResponseWriter whose connection dies after n bytes.
type failAfterWriter struct {
	hdr  http.Header
	n    int
	code int
}

func (f *failAfterWriter) Header() http.Header {
	if f.hdr == nil {
		f.hdr = make(http.Header)
	}
	return f.hdr
}

func (f *failAfterWriter) WriteHeader(code int) { f.code = code }

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("connection torn")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, fmt.Errorf("connection torn")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestTruncatedResponsesCounted(t *testing.T) {
	srv := NewServer()
	srv.HandleStream("Big", func(env Header, attrs []xmltree.Attr) (xmltree.AttrHandler, RespondFunc, error) {
		return &xmltree.TreeBuilder{}, func(w io.Writer) error {
			_, err := io.WriteString(w, "<BigResponse>"+strings.Repeat("x", 256)+"</BigResponse>")
			return err
		}, nil
	})
	met := obs.NewRegistry()
	srv.SetObs(nil, met)

	req := func() *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/soap", strings.NewReader(envPrefix+"<Big/>"+envSuffix))
		r.Header.Set("Content-Type", "text/xml")
		return r
	}

	// Mid-payload failure: the envelope is already flowing, so the only
	// signal left is the metric (and the peer's parse error).
	srv.ServeHTTP(&failAfterWriter{n: 100}, req())
	if got := met.Counter("soap.server.truncated").Value(); got != 1 {
		t.Fatalf("truncated after mid-payload tear = %d, want 1", got)
	}

	// The closing </soap:Envelope> failing must be counted too — before
	// the fix finish() dropped the write error on the floor.
	srv.ServeHTTP(&failAfterWriter{n: len(envPrefix) + 300}, req())
	if got := met.Counter("soap.server.truncated").Value(); got != 2 {
		t.Fatalf("truncated after suffix tear = %d, want 2", got)
	}

	// A healthy response leaves the counter alone.
	srv.ServeHTTP(httptest.NewRecorder(), req())
	if got := met.Counter("soap.server.truncated").Value(); got != 2 {
		t.Fatalf("healthy response bumped truncated to %d", got)
	}
}
