package soap

import (
	"errors"
	"net/http/httptest"
	"testing"

	"xdx/internal/xmltree"
)

// An overload fault must travel the wire as HTTP 503 with its typed code
// intact, so clients can classify shedding without string matching.
func TestOverloadedFaultOverHTTP(t *testing.T) {
	srv := NewServer()
	srv.Handle("Poke", func(req *xmltree.Node) (*xmltree.Node, error) {
		return nil, OverloadedFault("pool saturated")
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	c := &Client{URL: hs.URL}
	_, err := c.Call("Poke", &xmltree.Node{Name: "Poke"})
	if err == nil {
		t.Fatal("overloaded handler answered without error")
	}
	if !IsOverloaded(err) {
		t.Fatalf("IsOverloaded(%v) = false", err)
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error %T is not a *Fault", err)
	}
	if f.Code != CodeOverloaded {
		t.Errorf("fault code %q, want %q", f.Code, CodeOverloaded)
	}
	if f.HTTPStatus != 503 {
		t.Errorf("fault carried HTTP %d, want 503", f.HTTPStatus)
	}
	if f.Detail != "pool saturated" {
		t.Errorf("fault detail %q lost in transit", f.Detail)
	}
}

// Other faults keep their existing statuses: a plain server fault is not
// classified as overload.
func TestIsOverloadedRejectsOtherErrors(t *testing.T) {
	if IsOverloaded(errors.New("boom")) {
		t.Error("plain error classified as overload")
	}
	if IsOverloaded(&Fault{Code: "soap:Server", String: "x"}) {
		t.Error("generic server fault classified as overload")
	}
	if !IsOverloaded(OverloadedFault("d")) {
		t.Error("OverloadedFault not classified as overload")
	}
}
