// Package soap implements the SOAP 1.1 over HTTP binding the paper's WSDL
// services deploy on (§1.1): envelope construction and parsing, fault
// handling, a client, and an http.Handler server that dispatches on the
// body's root element.
package soap

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"xdx/internal/obs"
	"xdx/internal/xmltree"
)

// EnvelopeNS is the SOAP 1.1 envelope namespace.
const EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// Fault is a SOAP 1.1 fault, usable as a Go error.
type Fault struct {
	Code   string
	String string
	Detail string
	// HTTPStatus is the HTTP status the fault arrived with, when it came
	// back through a client call (zero otherwise — e.g. server-side faults
	// about to be sent).
	HTTPStatus int
}

// Error implements error.
func (f *Fault) Error() string {
	if f.HTTPStatus != 0 {
		return fmt.Sprintf("soap: fault %s (HTTP %d): %s", f.Code, f.HTTPStatus, f.String)
	}
	return fmt.Sprintf("soap: fault %s: %s", f.Code, f.String)
}

// CodeOverloaded is the fault code a server sheds load with: the request
// was admissible but the server is over its concurrency or rate budget.
// Shed faults travel as HTTP 503 so intermediaries and retry policies see
// a standard transient-overload signal.
const CodeOverloaded = "soap:Server.Overloaded"

// OverloadedFault builds a load-shed fault. The detail string names the
// exhausted budget ("tenant svc over in-flight budget", "queue full") so
// clients can distinguish their own overdrive from global pressure.
func OverloadedFault(detail string) *Fault {
	return &Fault{
		Code:       CodeOverloaded,
		String:     "server over capacity",
		Detail:     detail,
		HTTPStatus: http.StatusServiceUnavailable,
	}
}

// IsOverloaded reports whether err is (or wraps) a load-shed fault.
func IsOverloaded(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Code == CodeOverloaded
}

// CodeColdDelta is the fault code a target answers a delta delivery with
// when it has no warm base snapshot for the exchange stream (endpoint
// restart, swept state, or a fragmentation-epoch change): the agency must
// fall back to a full re-ship. Retrying the delta cannot help, so the
// fault is permanent for the session that received it.
const CodeColdDelta = "xdx:ColdDelta"

// ColdDeltaFault builds the cold-base answer to a delta delivery.
func ColdDeltaFault(detail string) *Fault {
	return &Fault{Code: CodeColdDelta, String: "no warm delta base for stream", Detail: detail}
}

// IsColdDelta reports whether err is (or wraps) a cold-delta fault.
func IsColdDelta(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Code == CodeColdDelta
}

// faultStatus picks the HTTP status a server-side fault is sent under: the
// fault's own HTTPStatus when a handler set one (e.g. 503 on load shed),
// 500 otherwise.
func faultStatus(f *Fault) int {
	if f.HTTPStatus >= 400 && f.HTTPStatus < 600 {
		return f.HTTPStatus
	}
	return http.StatusInternalServerError
}

// Envelope wraps a body payload in a SOAP envelope.
func Envelope(body *xmltree.Node) *xmltree.Node {
	return EnvelopeWithHeader(nil, body)
}

// EnvelopeWithHeader wraps a body payload, preceded by header entries when
// any are given.
func EnvelopeWithHeader(headers []*xmltree.Node, body *xmltree.Node) *xmltree.Node {
	env := &xmltree.Node{Name: "soap:Envelope"}
	env.SetAttr("xmlns:soap", EnvelopeNS)
	if len(headers) > 0 {
		h := &xmltree.Node{Name: "soap:Header"}
		for _, e := range headers {
			h.AddKid(e)
		}
		env.AddKid(h)
	}
	b := &xmltree.Node{Name: "soap:Body"}
	if body != nil {
		b.AddKid(body)
	}
	env.AddKid(b)
	return env
}

// Headers returns the header entries of a parsed envelope (possibly nil).
// Entries marked mustUnderstand="1" that the caller does not recognize
// should produce a soap:MustUnderstand fault, per SOAP 1.1 §4.2.3 —
// MustUnderstandFault implements the check.
func Headers(env *xmltree.Node) []*xmltree.Node {
	if env == nil {
		return nil
	}
	for _, k := range env.Kids {
		if k.Name == "Header" || k.Name == "soap:Header" {
			return k.Kids
		}
	}
	return nil
}

// headerEntries unwraps a collected soap:Header tree into its entry list
// (nil tree or empty header reads nil).
func headerEntries(root *xmltree.Node) []*xmltree.Node {
	if root == nil {
		return nil
	}
	return root.Kids
}

// localName strips a namespace prefix from an element name.
func localName(name string) string {
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// mustUnderstand reads a header entry's mustUnderstand flag (prefixed or
// not; SOAP 1.1 uses "1"/"0").
func mustUnderstand(e *xmltree.Node) bool {
	for _, a := range e.Attrs {
		if localName(a.Name) == "mustUnderstand" && a.Value == "1" {
			return true
		}
	}
	return false
}

// MustUnderstandFault enforces SOAP 1.1 §4.2.3 over parsed header
// entries: any entry marked mustUnderstand="1" whose local name recognize
// does not accept yields a soap:MustUnderstand fault; nil means every
// mandatory entry was understood. recognize may be nil (nothing is
// understood).
func MustUnderstandFault(entries []*xmltree.Node, recognize func(local string) bool) *Fault {
	for _, e := range entries {
		if !mustUnderstand(e) {
			continue
		}
		if recognize != nil && recognize(localName(e.Name)) {
			continue
		}
		return &Fault{
			Code:   "soap:MustUnderstand",
			String: "soap: mandatory header entry not understood: " + e.Name,
		}
	}
	return nil
}

// serverRecognizes is the header-entry vocabulary this server's dispatch
// understands: the codecs negotiation entry (an alternative carrier for
// the envelope's codecs attribute).
func serverRecognizes(local string) bool { return local == "codecs" }

// FaultEnvelope wraps a fault in an envelope.
func FaultEnvelope(f *Fault) *xmltree.Node {
	n := &xmltree.Node{Name: "soap:Fault"}
	n.AddKid(&xmltree.Node{Name: "faultcode", Text: f.Code})
	n.AddKid(&xmltree.Node{Name: "faultstring", Text: f.String})
	if f.Detail != "" {
		n.AddKid(&xmltree.Node{Name: "detail", Text: f.Detail})
	}
	return Envelope(n)
}

// OpenEnvelope extracts the body payload from a parsed envelope; a fault
// body is returned as a *Fault error.
func OpenEnvelope(env *xmltree.Node) (*xmltree.Node, error) {
	if env == nil || env.Name != "Envelope" && env.Name != "soap:Envelope" {
		return nil, fmt.Errorf("soap: not an envelope: %v", nodeName(env))
	}
	var body *xmltree.Node
	for _, k := range env.Kids {
		if k.Name == "Body" || k.Name == "soap:Body" {
			body = k
		}
	}
	if body == nil {
		return nil, fmt.Errorf("soap: envelope has no body")
	}
	if len(body.Kids) == 0 {
		return nil, nil
	}
	payload := body.Kids[0]
	if payload.Name == "Fault" || payload.Name == "soap:Fault" {
		f := &Fault{}
		for _, k := range payload.Kids {
			switch k.Name {
			case "faultcode":
				f.Code = k.Text
			case "faultstring":
				f.String = k.Text
			case "detail":
				f.Detail = k.Text
			}
		}
		return nil, f
	}
	return payload, nil
}

func nodeName(n *xmltree.Node) string {
	if n == nil {
		return "<nil>"
	}
	return n.Name
}

// Client calls a SOAP endpoint.
type Client struct {
	// URL is the service address (the soap:address location of the WSDL
	// port).
	URL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds one call, body included. Zero means DefaultTimeout;
	// negative disables the bound.
	Timeout time.Duration
	// Codecs advertises the shipment codecs this caller accepts, in
	// preference order, as a codecs attribute on the request envelope —
	// the Content-Encoding-style half of content negotiation. The server
	// picks the first it supports and stamps its choice on the response
	// envelope. Empty means no negotiation (the peer answers in the
	// universal tagged-XML format unless told otherwise in the payload).
	Codecs []string
	// Logger, when set, narrates calls at debug level and failures at
	// warn. Nil is silent.
	Logger obs.Logger
	// Metrics, when set, receives per-call counters (calls, faults,
	// request/response bytes) and a call-duration histogram under
	// soap.client.*. Nil records nothing.
	Metrics *obs.Registry
}

// observe records one finished call on the client's logger and metrics.
func (c *Client) observe(action string, start time.Time, reqBytes, respBytes int64, err error) {
	m := c.Metrics
	m.Counter("soap.client.calls").Inc()
	m.Counter("soap.client.req_bytes").Add(reqBytes)
	m.Counter("soap.client.resp_bytes").Add(respBytes)
	m.Histogram("soap.client.millis").ObserveSince(start)
	if err != nil {
		m.Counter("soap.client.errors").Inc()
		obs.OrNop(c.Logger).Log(obs.LevelWarn, "soap call failed",
			"action", action, "url", c.URL, "err", err)
		return
	}
	if l := obs.OrNop(c.Logger); l.Enabled(obs.LevelDebug) {
		l.Log(obs.LevelDebug, "soap call",
			"action", action, "url", c.URL,
			"reqBytes", reqBytes, "respBytes", respBytes,
			"millis", fmt.Sprintf("%.3f", float64(time.Since(start))/float64(time.Millisecond)))
	}
}

// countingReader counts bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

// Read implements io.Reader.
func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Call posts the payload as a SOAP request with the given SOAPAction and
// returns the response payload. The request is buffered, so it travels
// with an explicit Content-Length. SOAP faults come back as *Fault errors
// carrying the HTTP status.
func (c *Client) Call(action string, payload *xmltree.Node) (*xmltree.Node, error) {
	start := time.Now()
	env := Envelope(payload)
	if len(c.Codecs) > 0 {
		env.SetAttr("codecs", strings.Join(c.Codecs, " "))
	}
	var buf bytes.Buffer
	if err := xmltree.Write(&buf, env, xmltree.WriteOptions{EmitAllIDs: true}); err != nil {
		return nil, fmt.Errorf("soap: marshal request: %w", err)
	}
	ctx, cancel := c.callContext()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, &buf)
	if err != nil {
		return nil, err
	}
	reqBytes := int64(buf.Len())
	req.ContentLength = reqBytes
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	req.Header.Set("SOAPAction", `"`+action+`"`)
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		c.observe(action, start, reqBytes, 0, err)
		return nil, err
	}
	defer func() {
		// Drain (bounded) before close so the keep-alive connection stays
		// reusable even when the body was not consumed to EOF.
		drainBody(resp.Body)
		resp.Body.Close()
	}()
	cr := &countingReader{r: resp.Body}
	env, err = xmltree.Parse(cr)
	if err != nil {
		err = httpStatusError(resp.StatusCode, err)
		c.observe(action, start, reqBytes, cr.n, err)
		return nil, err
	}
	payload, err = OpenEnvelope(env)
	if f, ok := err.(*Fault); ok {
		f.HTTPStatus = resp.StatusCode
	}
	if err == nil {
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			// A non-2xx status is a failed call even when the body parses as
			// a non-fault envelope (a proxy substituting an error page, a
			// half-written response behind a broken gateway). Surface it as
			// a fault carrying the status so retry policies can classify it.
			payload, err = nil, &Fault{
				Code:       "soap:HTTP",
				String:     fmt.Sprintf("HTTP %s with non-fault body", http.StatusText(resp.StatusCode)),
				HTTPStatus: resp.StatusCode,
			}
		} else if f := MustUnderstandFault(Headers(env), nil); f != nil {
			// This client recognizes no header vocabulary, so any mandatory
			// response header entry is a protocol breach (SOAP 1.1 §4.2.3).
			payload, err = nil, f
		}
	}
	c.observe(action, start, reqBytes, cr.n, err)
	return payload, err
}

// maxDrain bounds how much of an unconsumed response body Call reads
// before closing, trading connection reuse against unbounded garbage.
const maxDrain = 256 << 10

// drainBody consumes at most maxDrain leftover bytes of a response body.
func drainBody(r io.Reader) {
	io.Copy(io.Discard, io.LimitReader(r, maxDrain))
}

// httpStatusError converts a response that failed envelope parsing into
// the most useful error: on a non-2xx status the failure is the HTTP
// outage itself (a proxy error page, an injected 503 — bodies that were
// never SOAP), surfaced as a *Fault carrying the status so retry policies
// can classify it; on a 2xx it is a genuine malformed envelope.
func httpStatusError(status int, err error) error {
	if status < 200 || status >= 300 {
		return &Fault{
			Code:       "soap:HTTP",
			String:     fmt.Sprintf("HTTP %s with unparsable body", http.StatusText(status)),
			Detail:     err.Error(),
			HTTPStatus: status,
		}
	}
	return fmt.Errorf("soap: parse response (HTTP %d): %w", status, err)
}

// HandlerFunc processes one request payload and returns the response
// payload. Returning an error produces a SOAP fault.
type HandlerFunc func(req *xmltree.Node) (*xmltree.Node, error)

// Server dispatches SOAP requests to handlers by the body's root element
// name. Handlers come in two flavors: tree handlers (Handle), which get
// the materialized payload, and stream handlers (HandleStream), which
// consume the payload as parse events and write the response directly to
// the connection. Dispatch itself is streaming either way — see
// ServeHTTP in stream.go.
type Server struct {
	handlers map[string]HandlerFunc
	streams  map[string]StreamHandlerFunc
	logger   obs.Logger
	metrics  *obs.Registry
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]HandlerFunc),
		streams:  make(map[string]StreamHandlerFunc),
	}
}

// Handle registers a handler for requests whose body root is elem.
func (s *Server) Handle(elem string, h HandlerFunc) { s.handlers[elem] = h }

// SetObs attaches a logger and metric registry to the server; requests are
// counted and timed under soap.server.*. Either may be nil ("off"). Call
// before serving — the fields are read without locks.
func (s *Server) SetObs(l obs.Logger, m *obs.Registry) {
	s.logger = l
	s.metrics = m
}

func (s *Server) fault(w http.ResponseWriter, status int, f *Fault) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(status)
	xmltree.Write(w, FaultEnvelope(f), xmltree.WriteOptions{})
}

func (s *Server) reply(w http.ResponseWriter, env *xmltree.Node) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	xmltree.Write(w, env, xmltree.WriteOptions{EmitAllIDs: true})
}

// WritePayload streams an already-serialized payload body as a complete
// envelope; used for large fragment shipments where building a tree first
// would double memory.
func WritePayload(w io.Writer, inner []byte) error {
	if _, err := io.WriteString(w, envPrefix); err != nil {
		return err
	}
	if _, err := w.Write(inner); err != nil {
		return err
	}
	_, err := io.WriteString(w, envSuffix)
	return err
}
