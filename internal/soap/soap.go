// Package soap implements the SOAP 1.1 over HTTP binding the paper's WSDL
// services deploy on (§1.1): envelope construction and parsing, fault
// handling, a client, and an http.Handler server that dispatches on the
// body's root element.
package soap

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"xdx/internal/xmltree"
)

// EnvelopeNS is the SOAP 1.1 envelope namespace.
const EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// Fault is a SOAP 1.1 fault, usable as a Go error.
type Fault struct {
	Code   string
	String string
	Detail string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap: fault %s: %s", f.Code, f.String)
}

// Envelope wraps a body payload in a SOAP envelope.
func Envelope(body *xmltree.Node) *xmltree.Node {
	return EnvelopeWithHeader(nil, body)
}

// EnvelopeWithHeader wraps a body payload, preceded by header entries when
// any are given.
func EnvelopeWithHeader(headers []*xmltree.Node, body *xmltree.Node) *xmltree.Node {
	env := &xmltree.Node{Name: "soap:Envelope"}
	env.SetAttr("xmlns:soap", EnvelopeNS)
	if len(headers) > 0 {
		h := &xmltree.Node{Name: "soap:Header"}
		for _, e := range headers {
			h.AddKid(e)
		}
		env.AddKid(h)
	}
	b := &xmltree.Node{Name: "soap:Body"}
	if body != nil {
		b.AddKid(body)
	}
	env.AddKid(b)
	return env
}

// Headers returns the header entries of a parsed envelope (possibly nil).
// Entries marked mustUnderstand="1" that the caller does not recognize
// should produce a soap:MustUnderstand fault, per SOAP 1.1 §4.2.3.
func Headers(env *xmltree.Node) []*xmltree.Node {
	if env == nil {
		return nil
	}
	for _, k := range env.Kids {
		if k.Name == "Header" || k.Name == "soap:Header" {
			return k.Kids
		}
	}
	return nil
}

// FaultEnvelope wraps a fault in an envelope.
func FaultEnvelope(f *Fault) *xmltree.Node {
	n := &xmltree.Node{Name: "soap:Fault"}
	n.AddKid(&xmltree.Node{Name: "faultcode", Text: f.Code})
	n.AddKid(&xmltree.Node{Name: "faultstring", Text: f.String})
	if f.Detail != "" {
		n.AddKid(&xmltree.Node{Name: "detail", Text: f.Detail})
	}
	return Envelope(n)
}

// OpenEnvelope extracts the body payload from a parsed envelope; a fault
// body is returned as a *Fault error.
func OpenEnvelope(env *xmltree.Node) (*xmltree.Node, error) {
	if env == nil || env.Name != "Envelope" && env.Name != "soap:Envelope" {
		return nil, fmt.Errorf("soap: not an envelope: %v", nodeName(env))
	}
	var body *xmltree.Node
	for _, k := range env.Kids {
		if k.Name == "Body" || k.Name == "soap:Body" {
			body = k
		}
	}
	if body == nil {
		return nil, fmt.Errorf("soap: envelope has no body")
	}
	if len(body.Kids) == 0 {
		return nil, nil
	}
	payload := body.Kids[0]
	if payload.Name == "Fault" || payload.Name == "soap:Fault" {
		f := &Fault{}
		for _, k := range payload.Kids {
			switch k.Name {
			case "faultcode":
				f.Code = k.Text
			case "faultstring":
				f.String = k.Text
			case "detail":
				f.Detail = k.Text
			}
		}
		return nil, f
	}
	return payload, nil
}

func nodeName(n *xmltree.Node) string {
	if n == nil {
		return "<nil>"
	}
	return n.Name
}

// Client calls a SOAP endpoint.
type Client struct {
	// URL is the service address (the soap:address location of the WSDL
	// port).
	URL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// Call posts the payload as a SOAP request with the given SOAPAction and
// returns the response payload. SOAP faults come back as *Fault errors.
func (c *Client) Call(action string, payload *xmltree.Node) (*xmltree.Node, error) {
	var buf bytes.Buffer
	if err := xmltree.Write(&buf, Envelope(payload), xmltree.WriteOptions{EmitAllIDs: true}); err != nil {
		return nil, fmt.Errorf("soap: marshal request: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, c.URL, &buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	req.Header.Set("SOAPAction", `"`+action+`"`)
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	env, err := xmltree.Parse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("soap: parse response (HTTP %d): %w", resp.StatusCode, err)
	}
	return OpenEnvelope(env)
}

// HandlerFunc processes one request payload and returns the response
// payload. Returning an error produces a SOAP fault.
type HandlerFunc func(req *xmltree.Node) (*xmltree.Node, error)

// Server dispatches SOAP requests to handlers by the body's root element
// name.
type Server struct {
	handlers map[string]HandlerFunc
}

// NewServer returns an empty server.
func NewServer() *Server { return &Server{handlers: make(map[string]HandlerFunc)} }

// Handle registers a handler for requests whose body root is elem.
func (s *Server) Handle(elem string, h HandlerFunc) { s.handlers[elem] = h }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint requires POST", http.StatusMethodNotAllowed)
		return
	}
	env, err := xmltree.Parse(r.Body)
	if err != nil {
		s.fault(w, http.StatusBadRequest, &Fault{Code: "soap:Client", String: "malformed envelope", Detail: err.Error()})
		return
	}
	payload, err := OpenEnvelope(env)
	if err != nil {
		s.fault(w, http.StatusBadRequest, &Fault{Code: "soap:Client", String: err.Error()})
		return
	}
	if payload == nil {
		s.fault(w, http.StatusBadRequest, &Fault{Code: "soap:Client", String: "empty body"})
		return
	}
	h, ok := s.handlers[payload.Name]
	if !ok {
		s.fault(w, http.StatusNotFound, &Fault{Code: "soap:Client", String: "no handler for " + payload.Name})
		return
	}
	resp, err := h(payload)
	if err != nil {
		if f, ok := err.(*Fault); ok {
			s.fault(w, http.StatusInternalServerError, f)
			return
		}
		s.fault(w, http.StatusInternalServerError, &Fault{Code: "soap:Server", String: err.Error()})
		return
	}
	s.reply(w, Envelope(resp))
}

func (s *Server) fault(w http.ResponseWriter, status int, f *Fault) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(status)
	xmltree.Write(w, FaultEnvelope(f), xmltree.WriteOptions{})
}

func (s *Server) reply(w http.ResponseWriter, env *xmltree.Node) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	xmltree.Write(w, env, xmltree.WriteOptions{EmitAllIDs: true})
}

// WritePayload streams an already-serialized payload body as a complete
// envelope; used for large fragment shipments where building a tree first
// would double memory.
func WritePayload(w io.Writer, inner []byte) error {
	if _, err := io.WriteString(w, `<soap:Envelope xmlns:soap="`+EnvelopeNS+`"><soap:Body>`); err != nil {
		return err
	}
	if _, err := w.Write(inner); err != nil {
		return err
	}
	_, err := io.WriteString(w, `</soap:Body></soap:Envelope>`)
	return err
}
