package soap

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xdx/internal/xmltree"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := &xmltree.Node{Name: "Ping", Text: "hello"}
	env := Envelope(payload)
	var buf bytes.Buffer
	if err := xmltree.Write(&buf, env, xmltree.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	parsed, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenEnvelope(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Ping" || got.Text != "hello" {
		t.Errorf("payload = %+v", got)
	}
}

func TestOpenEnvelopeFault(t *testing.T) {
	env := FaultEnvelope(&Fault{Code: "soap:Server", String: "boom", Detail: "stack"})
	var buf bytes.Buffer
	xmltree.Write(&buf, env, xmltree.WriteOptions{})
	parsed, _ := xmltree.Parse(&buf)
	_, err := OpenEnvelope(parsed)
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("want *Fault, got %v", err)
	}
	if f.Code != "soap:Server" || f.String != "boom" || f.Detail != "stack" {
		t.Errorf("fault = %+v", f)
	}
	if !strings.Contains(f.Error(), "boom") {
		t.Errorf("Error() = %q", f.Error())
	}
}

func TestEnvelopeWithHeader(t *testing.T) {
	hdr := &xmltree.Node{Name: "TxID", Text: "tx-42"}
	hdr.SetAttr("mustUnderstand", "1")
	env := EnvelopeWithHeader([]*xmltree.Node{hdr}, &xmltree.Node{Name: "Ping"})
	var buf bytes.Buffer
	xmltree.Write(&buf, env, xmltree.WriteOptions{})
	parsed, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hs := Headers(parsed)
	if len(hs) != 1 || hs[0].Name != "TxID" || hs[0].Text != "tx-42" {
		t.Fatalf("headers = %+v", hs)
	}
	if v, _ := hs[0].Attr("mustUnderstand"); v != "1" {
		t.Errorf("mustUnderstand lost")
	}
	// The body is still reachable.
	body, err := OpenEnvelope(parsed)
	if err != nil || body.Name != "Ping" {
		t.Errorf("body = %v, %v", body, err)
	}
	// No headers cases.
	if Headers(Envelope(&xmltree.Node{Name: "x"})) != nil {
		t.Error("headerless envelope should report nil")
	}
	if Headers(nil) != nil {
		t.Error("nil envelope should report nil")
	}
}

func TestOpenEnvelopeErrors(t *testing.T) {
	if _, err := OpenEnvelope(nil); err == nil {
		t.Error("nil envelope must fail")
	}
	if _, err := OpenEnvelope(&xmltree.Node{Name: "NotAnEnvelope"}); err == nil {
		t.Error("wrong root must fail")
	}
	if _, err := OpenEnvelope(&xmltree.Node{Name: "Envelope"}); err == nil {
		t.Error("missing body must fail")
	}
}

func TestClientServerEcho(t *testing.T) {
	srv := NewServer()
	srv.Handle("Echo", func(req *xmltree.Node) (*xmltree.Node, error) {
		return &xmltree.Node{Name: "EchoResponse", Text: req.Text}, nil
	})
	srv.Handle("Fail", func(req *xmltree.Node) (*xmltree.Node, error) {
		return nil, fmt.Errorf("kaput")
	})
	srv.Handle("FailTyped", func(req *xmltree.Node) (*xmltree.Node, error) {
		return nil, &Fault{Code: "soap:Client", String: "bad input"}
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &Client{URL: hs.URL}

	resp, err := c.Call("echo", &xmltree.Node{Name: "Echo", Text: "xyzzy"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "EchoResponse" || resp.Text != "xyzzy" {
		t.Errorf("resp = %+v", resp)
	}

	_, err = c.Call("fail", &xmltree.Node{Name: "Fail"})
	if f, ok := err.(*Fault); !ok || f.Code != "soap:Server" {
		t.Errorf("want server fault, got %v", err)
	}
	_, err = c.Call("fail", &xmltree.Node{Name: "FailTyped"})
	if f, ok := err.(*Fault); !ok || f.Code != "soap:Client" {
		t.Errorf("want typed fault, got %v", err)
	}
	_, err = c.Call("x", &xmltree.Node{Name: "Unknown"})
	if err == nil {
		t.Error("unknown action must fault")
	}
}

func TestServerRejectsGet(t *testing.T) {
	hs := httptest.NewServer(NewServer())
	defer hs.Close()
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestServerMalformedEnvelope(t *testing.T) {
	hs := httptest.NewServer(NewServer())
	defer hs.Close()
	resp, err := http.Post(hs.URL, "text/xml", strings.NewReader("<broken"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestWritePayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePayload(&buf, []byte("<Data>42</Data>")); err != nil {
		t.Fatal(err)
	}
	env, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := OpenEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if payload.Name != "Data" || payload.Text != "42" {
		t.Errorf("payload = %+v", payload)
	}
}

func TestCallSurfacesHTTPStatusOnUnparsableBody(t *testing.T) {
	// A 503 with a plain-text body (proxy error page, injected outage) is
	// not a SOAP fault, but the client must still surface the status so
	// retry policies can classify the failure.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "service melting", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := &Client{URL: srv.URL}
	_, err := c.Call("Op", &xmltree.Node{Name: "Op"})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %T: %v", err, err)
	}
	if f.HTTPStatus != http.StatusServiceUnavailable || f.Code != "soap:HTTP" {
		t.Fatalf("fault = %+v", f)
	}
	if !strings.Contains(f.Detail, "") { // detail carries the parse error
		t.Fatalf("fault detail empty: %+v", f)
	}
}

func TestCallStreamSurfacesHTTPStatusOnUnparsableBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()
	c := &Client{URL: srv.URL}
	err := c.CallStream("Op", func(w io.Writer) error {
		_, err := io.WriteString(w, "<Op/>")
		return err
	}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %T: %v", err, err)
	}
	if f.HTTPStatus != http.StatusBadGateway || f.Code != "soap:HTTP" {
		t.Fatalf("fault = %+v", f)
	}
}

func TestCallParseErrorOn200StaysPlainError(t *testing.T) {
	// Malformed XML on a 200 is a protocol bug, not an HTTP outage: it must
	// not come back as a Fault (which retry policies could misread).
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "<not-an-envelope")
	}))
	defer srv.Close()
	c := &Client{URL: srv.URL}
	_, err := c.Call("Op", &xmltree.Node{Name: "Op"})
	if err == nil {
		t.Fatal("malformed body accepted")
	}
	var f *Fault
	if errors.As(err, &f) {
		t.Fatalf("parse error on 200 misreported as fault: %+v", f)
	}
}

func TestCallDrainsBodyForConnectionReuse(t *testing.T) {
	// After an envelope parse error the client must drain (bounded) the
	// rest of the body before closing, so the keep-alive connection is
	// reusable: both calls here should arrive over the same connection.
	var remotes []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		remotes = append(remotes, r.RemoteAddr)
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, "garbage after the point the parser gives up <<<<")
		io.WriteString(w, strings.Repeat("x", 8192))
	}))
	defer srv.Close()
	c := &Client{URL: srv.URL}
	for i := 0; i < 2; i++ {
		if _, err := c.Call("Op", &xmltree.Node{Name: "Op"}); err == nil {
			t.Fatal("garbage body accepted")
		}
	}
	if len(remotes) != 2 {
		t.Fatalf("served %d requests", len(remotes))
	}
	if remotes[0] != remotes[1] {
		t.Errorf("connection not reused: %s then %s", remotes[0], remotes[1])
	}
}
