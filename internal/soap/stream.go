package soap

// Streaming SOAP binding. The tree binding in soap.go buffers whole
// envelopes on both sides; for fragment shipments — the dominant payloads
// of an exchange — that re-materializes data the wire codec already
// streams. This file adds the zero-materialization path: requests flow
// through an io.Pipe (chunked transfer, no full-request buffer), responses
// are consumed by SAX handlers, and the server dispatches payloads to
// stream handlers that read the body as events and write the reply
// directly to the connection. Both bindings speak the same envelopes, so
// buffered and streaming peers interoperate.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"xdx/internal/bufpool"
	"xdx/internal/obs"
	"xdx/internal/xmltree"
)

const (
	envPrefix = `<soap:Envelope xmlns:soap="` + EnvelopeNS + `"><soap:Body>`
	envSuffix = `</soap:Body></soap:Envelope>`
)

// attrEscaper covers the characters that must not appear raw in an
// attribute value.
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

// envOpen renders an envelope open (through <soap:Body>) carrying extra
// envelope attributes — the channel content negotiation rides on.
func envOpen(attrs []xmltree.Attr) string {
	if len(attrs) == 0 {
		return envPrefix
	}
	var b strings.Builder
	b.WriteString(`<soap:Envelope xmlns:soap="` + EnvelopeNS + `"`)
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		attrEscaper.WriteString(&b, a.Value)
		b.WriteByte('"')
	}
	b.WriteString(`><soap:Body>`)
	return b.String()
}

// Header is the envelope-level request context a stream handler may
// consult — the codec half of content negotiation plus any SOAP Header
// entries the request carried.
type Header struct {
	// Codecs is the client's advertised shipment codecs, in preference
	// order; empty when the request did not negotiate. It may arrive as an
	// envelope attribute or as a codecs header entry.
	Codecs []string
	// Entries holds the request's parsed soap:Header entries in document
	// order (nil when the request carried none). Entries marked
	// mustUnderstand="1" that dispatch does not recognize have already
	// faulted by the time a handler runs.
	Entries []*xmltree.Node
}

// EnvelopeAttrWriter is implemented by the response writer handed to
// stream responders: attributes set before the first body write travel on
// the response envelope — the server's half of content negotiation.
type EnvelopeAttrWriter interface {
	// SetEnvelopeAttr stamps an attribute onto the response envelope. It
	// fails once the envelope has started flowing.
	SetEnvelopeAttr(name, value string) error
}

// EnvelopeObserver may additionally be implemented by a CallStream
// response handler to see the response envelope's own attributes (the
// server's negotiation answer) before any payload events arrive.
type EnvelopeObserver interface {
	ObserveEnvelope(attrs []xmltree.Attr)
}

// DefaultTimeout bounds a Client call when Client.Timeout is zero.
const DefaultTimeout = 2 * time.Minute

// callContext derives the request context from the client's timeout
// policy: zero means DefaultTimeout, negative disables the bound.
func (c *Client) callContext() (context.Context, context.CancelFunc) {
	d := c.Timeout
	if d == 0 {
		d = DefaultTimeout
	}
	if d < 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), d)
}

// CallStream posts a SOAP request whose body is produced by writeBody
// directly onto the wire (chunked, never buffered whole) and feeds the
// response payload's parse events to h. h may be nil to ignore a non-fault
// response. SOAP faults come back as *Fault errors carrying the HTTP
// status.
func (c *Client) CallStream(action string, writeBody func(io.Writer) error, h xmltree.AttrHandler) error {
	start := time.Now()
	ctx, cancel := c.callContext()
	defer cancel()
	pr, pw := io.Pipe()
	var envAttrs []xmltree.Attr
	if len(c.Codecs) > 0 {
		envAttrs = []xmltree.Attr{{Name: "codecs", Value: strings.Join(c.Codecs, " ")}}
	}
	reqCount := &countingWriter{w: pw}
	errc := make(chan error, 1)
	go func() {
		// The pooled buffer coalesces the body producer's small writes into
		// pipe-sized chunks; without it every framing fragment crosses the
		// pipe (and the chunked transfer encoding) on its own.
		bw := bufpool.Writer(reqCount)
		_, err := bw.WriteString(envOpen(envAttrs))
		if err == nil {
			err = writeBody(bw)
		}
		if err == nil {
			_, err = bw.WriteString(envSuffix)
		}
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
		bufpool.PutWriter(bw)
		pw.CloseWithError(err)
		errc <- err
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, pr)
	if err != nil {
		pr.Close()
		<-errc
		return err
	}
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	req.Header.Set("SOAPAction", `"`+action+`"`)
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		pr.CloseWithError(err)
		if werr := <-errc; werr != nil && !errors.Is(werr, io.ErrClosedPipe) {
			err = fmt.Errorf("soap: write request: %w", werr)
		}
		c.observe(action, start, reqCount.n, 0, err)
		return err
	}
	defer func() {
		drainBody(resp.Body)
		resp.Body.Close()
	}()
	respCount := &countingReader{r: resp.Body}
	fault, scanErr := ScanEnvelope(respCount, h)
	pr.CloseWithError(io.ErrClosedPipe)
	werr := <-errc
	var callErr error
	switch {
	case fault != nil:
		fault.HTTPStatus = resp.StatusCode
		callErr = fault
	case scanErr != nil:
		var pe *PayloadError
		var f *Fault
		if !errors.As(scanErr, &pe) && errors.As(scanErr, &f) {
			// The scanner itself faulted (an un-understood mandatory header
			// entry); carry the status like a wire fault.
			f.HTTPStatus = resp.StatusCode
			callErr = f
		} else {
			callErr = httpStatusError(resp.StatusCode, scanErr)
		}
	case resp.StatusCode < 200 || resp.StatusCode >= 300:
		// The body scanned as a non-fault envelope, but the status says the
		// call failed (proxy substitution, broken gateway). Surface it as a
		// fault carrying the status so retry policies can classify it.
		callErr = &Fault{
			Code:       "soap:HTTP",
			String:     fmt.Sprintf("HTTP %s with non-fault body", http.StatusText(resp.StatusCode)),
			HTTPStatus: resp.StatusCode,
		}
	case werr != nil && !errors.Is(werr, io.ErrClosedPipe):
		callErr = fmt.Errorf("soap: write request: %w", werr)
	}
	c.observe(action, start, reqCount.n, respCount.n, callErr)
	return callErr
}

// countingWriter counts bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

// Write implements io.Writer.
func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// PayloadError marks an error raised by the caller's payload handler
// while a response envelope was being scanned: the envelope itself
// arrived and parsed, so the failure is an application-level decode
// rejecting the payload's contents — a permanent condition, unlike the
// tokenizer errors a truncated stream raises. Retry policies use the
// distinction to fail fast instead of re-requesting a payload that will
// be rejected identically every time.
type PayloadError struct{ Err error }

// Error implements error.
func (e *PayloadError) Error() string { return e.Err.Error() }

// Unwrap exposes the handler's error to errors.Is/As.
func (e *PayloadError) Unwrap() error { return e.Err }

// ScanEnvelope consumes a serialized envelope from r in one SAX pass,
// delegating the payload element's events (including its own start/end) to
// h. A soap:Fault payload is collected and returned instead of being
// delegated. h may be nil to discard a non-fault payload. Errors raised by
// h come back wrapped in *PayloadError; parse errors come back as-is.
func ScanEnvelope(r io.Reader, h xmltree.AttrHandler) (*Fault, error) {
	v := &envelopeScanner{h: h}
	if err := xmltree.ScanAttrs(r, v); err != nil {
		return v.fault, err
	}
	if !v.sawEnvelope {
		// Plain-text bodies (proxy error pages) scan to EOF without ever
		// opening an element; that is not a SOAP response.
		return v.fault, fmt.Errorf("soap: response carried no envelope")
	}
	return v.fault, nil
}

// payloadErr wraps a delegated handler's error in *PayloadError.
func payloadErr(err error) error {
	if err == nil {
		return nil
	}
	return &PayloadError{Err: err}
}

// envelopeScanner walks Envelope/Body framing around a delegated payload.
type envelopeScanner struct {
	h xmltree.AttrHandler

	depth       int
	skip        int
	inPayload   int
	payloadSeen bool
	sawEnvelope bool

	inHeader int
	hdr      *xmltree.TreeBuilder

	fault      *Fault
	inFault    int
	faultField string
}

// StartElement implements xmltree.AttrHandler.
func (v *envelopeScanner) StartElement(name string, attrs []xmltree.Attr) error {
	if v.skip > 0 {
		v.skip++
		return nil
	}
	if v.inHeader > 0 {
		v.inHeader++
		return v.hdr.StartElement(name, attrs)
	}
	if v.inFault > 0 {
		v.inFault++
		if v.inFault == 2 {
			v.faultField = name
		}
		return nil
	}
	if v.inPayload > 0 {
		v.inPayload++
		return payloadErr(v.h.StartElement(name, attrs))
	}
	v.depth++
	switch v.depth {
	case 1:
		if name != "Envelope" {
			return fmt.Errorf("soap: not an envelope: %s", name)
		}
		v.sawEnvelope = true
		if o, ok := v.h.(EnvelopeObserver); ok {
			o.ObserveEnvelope(attrs)
		}
	case 2:
		if name != "Body" {
			if name == "Header" {
				// Collect header entries so mandatory ones can be enforced
				// (SOAP 1.1 §4.2.3) instead of silently skipped.
				v.depth--
				v.inHeader = 1
				v.hdr = &xmltree.TreeBuilder{}
				return v.hdr.StartElement(name, attrs)
			}
			// Foreign envelope siblings are not the payload.
			v.depth--
			v.skip = 1
		}
	case 3:
		if v.payloadSeen {
			// Like the tree binding, only the first payload element counts.
			v.depth--
			v.skip = 1
			return nil
		}
		v.payloadSeen = true
		if name == "Fault" {
			v.fault = &Fault{}
			v.inFault = 1
			return nil
		}
		if v.h == nil {
			v.depth--
			v.skip = 1
			return nil
		}
		v.inPayload = 1
		return payloadErr(v.h.StartElement(name, attrs))
	}
	return nil
}

// Text implements xmltree.AttrHandler.
func (v *envelopeScanner) Text(data string) error {
	switch {
	case v.skip > 0:
	case v.inHeader > 0:
		return v.hdr.Text(data)
	case v.inFault > 1:
		switch v.faultField {
		case "faultcode":
			v.fault.Code += data
		case "faultstring":
			v.fault.String += data
		case "detail":
			v.fault.Detail += data
		}
	case v.inPayload > 0:
		return payloadErr(v.h.Text(data))
	}
	return nil
}

// TextBytes implements xmltree.TextBytesHandler so a payload handler with
// a zero-copy text path (the shipment decoder) keeps it through the
// envelope walk; header and fault text take the string path.
func (v *envelopeScanner) TextBytes(data []byte) error {
	switch {
	case v.skip > 0:
		return nil
	case v.inPayload > 0:
		if tb, ok := v.h.(xmltree.TextBytesHandler); ok {
			return payloadErr(tb.TextBytes(data))
		}
	}
	return v.Text(string(data))
}

// EndElement implements xmltree.AttrHandler.
func (v *envelopeScanner) EndElement(name string) error {
	switch {
	case v.skip > 0:
		v.skip--
	case v.inHeader > 0:
		v.inHeader--
		if err := v.hdr.EndElement(name); err != nil {
			return err
		}
		if v.inHeader == 0 {
			entries := headerEntries(v.hdr.Root())
			v.hdr = nil
			// This caller recognizes no response-header vocabulary, so any
			// mandatory entry aborts the scan as a protocol breach.
			if f := MustUnderstandFault(entries, nil); f != nil {
				return f
			}
		}
	case v.inFault > 0:
		v.inFault--
		if v.inFault == 0 {
			v.depth--
		}
	case v.inPayload > 0:
		v.inPayload--
		if err := v.h.EndElement(name); err != nil {
			return payloadErr(err)
		}
		if v.inPayload == 0 {
			v.depth--
		}
	default:
		v.depth--
	}
	return nil
}

// RespondFunc writes a response payload body. The first write opens the
// response envelope; writing nothing yields an empty body.
type RespondFunc func(w io.Writer) error

// StreamHandlerFunc accepts one request payload as a stream. It receives
// the envelope-level header (content negotiation) and the payload root's
// attributes, and returns a handler for the payload's parse events (the
// root's own start/end included) plus the responder that runs once the
// request is fully consumed. Returning an error — here or from the event
// handler — produces a SOAP fault.
type StreamHandlerFunc func(env Header, attrs []xmltree.Attr) (xmltree.AttrHandler, RespondFunc, error)

// HandleStream registers a streaming handler for requests whose body root
// is elem. Stream handlers take precedence over Handle handlers for the
// same element.
func (s *Server) HandleStream(elem string, h StreamHandlerFunc) { s.streams[elem] = h }

// handlerError marks an error raised by application handler code during
// the request scan, so dispatch can distinguish it from a malformed
// envelope.
type handlerError struct{ err error }

func (e *handlerError) Error() string { return e.err.Error() }
func (e *handlerError) Unwrap() error { return e.err }

// reqFault aborts the request scan with a specific fault and HTTP status.
type reqFault struct {
	status int
	f      *Fault
}

func (e *reqFault) Error() string { return e.f.String }

// serverWalker is the server's request-side envelope scanner: it enforces
// the Envelope/Body framing and routes the payload subtree to the
// dispatched handler without materializing the envelope.
type serverWalker struct {
	s *Server

	depth int
	skip  int

	env         Header
	sawBody     bool
	payloadName string
	notFound    bool

	inHeader int
	hdr      *xmltree.TreeBuilder

	inPayload int
	delegate  xmltree.AttrHandler
	respond   RespondFunc
	legacy    HandlerFunc
	tree      *xmltree.TreeBuilder
}

// closeHeader runs once the request's soap:Header closes: enforce
// mustUnderstand (SOAP 1.1 §4.2.3), expose the entries to handlers, and
// honor a codecs entry as the negotiation carrier when the envelope
// attribute did not already negotiate.
func (v *serverWalker) closeHeader() error {
	entries := headerEntries(v.hdr.Root())
	v.hdr = nil
	v.env.Entries = entries
	if f := MustUnderstandFault(entries, serverRecognizes); f != nil {
		return &reqFault{status: http.StatusInternalServerError, f: f}
	}
	for _, e := range entries {
		if localName(e.Name) == "codecs" && len(v.env.Codecs) == 0 {
			v.env.Codecs = strings.Fields(e.Text)
		}
	}
	return nil
}

// StartElement implements xmltree.AttrHandler.
func (v *serverWalker) StartElement(name string, attrs []xmltree.Attr) error {
	if v.skip > 0 {
		v.skip++
		return nil
	}
	if v.inHeader > 0 {
		v.inHeader++
		return v.hdr.StartElement(name, attrs)
	}
	if v.inPayload > 0 {
		v.inPayload++
		if err := v.delegate.StartElement(name, attrs); err != nil {
			return &handlerError{err}
		}
		return nil
	}
	v.depth++
	switch v.depth {
	case 1:
		if name != "Envelope" {
			return &reqFault{status: http.StatusBadRequest,
				f: &Fault{Code: "soap:Client", String: "soap: not an envelope: " + name}}
		}
		for _, a := range attrs {
			if a.Name == "codecs" {
				v.env.Codecs = strings.Fields(a.Value)
			}
		}
	case 2:
		if name == "Body" {
			v.sawBody = true
		} else if name == "Header" {
			// Collect entries instead of silently skipping them, so
			// mandatory ones are enforced and handlers can read the rest.
			v.depth--
			v.inHeader = 1
			v.hdr = &xmltree.TreeBuilder{}
			return v.hdr.StartElement(name, attrs)
		} else {
			v.depth--
			v.skip = 1
		}
	case 3:
		if v.payloadName != "" {
			v.depth--
			v.skip = 1
			return nil
		}
		v.payloadName = name
		switch {
		case v.s.streams[name] != nil:
			h, respond, err := v.s.streams[name](v.env, attrs)
			if err != nil {
				return &handlerError{err}
			}
			v.delegate, v.respond = h, respond
		case v.s.handlers[name] != nil:
			v.legacy = v.s.handlers[name]
			v.tree = &xmltree.TreeBuilder{}
			v.delegate = v.tree
		default:
			// Keep scanning so a malformed body still reports 400, like the
			// tree dispatch which parsed before looking up handlers.
			v.notFound = true
			v.depth--
			v.skip = 1
			return nil
		}
		v.inPayload = 1
		if err := v.delegate.StartElement(name, attrs); err != nil {
			return &handlerError{err}
		}
	}
	return nil
}

// Text implements xmltree.AttrHandler.
func (v *serverWalker) Text(data string) error {
	if v.skip > 0 {
		return nil
	}
	if v.inHeader > 0 {
		return v.hdr.Text(data)
	}
	if v.inPayload == 0 {
		return nil
	}
	if err := v.delegate.Text(data); err != nil {
		return &handlerError{err}
	}
	return nil
}

// TextBytes implements xmltree.TextBytesHandler: the server side of the
// same fast path — a streaming request handler (the endpoint's target
// scan) that accepts raw bytes gets them without a string per event.
func (v *serverWalker) TextBytes(data []byte) error {
	switch {
	case v.skip > 0:
		return nil
	case v.inHeader == 0 && v.inPayload > 0:
		if tb, ok := v.delegate.(xmltree.TextBytesHandler); ok {
			if err := tb.TextBytes(data); err != nil {
				return &handlerError{err}
			}
			return nil
		}
	}
	return v.Text(string(data))
}

// EndElement implements xmltree.AttrHandler.
func (v *serverWalker) EndElement(name string) error {
	switch {
	case v.skip > 0:
		v.skip--
	case v.inHeader > 0:
		v.inHeader--
		if err := v.hdr.EndElement(name); err != nil {
			return err
		}
		if v.inHeader == 0 {
			return v.closeHeader()
		}
	case v.inPayload > 0:
		v.inPayload--
		if err := v.delegate.EndElement(name); err != nil {
			return &handlerError{err}
		}
		if v.inPayload == 0 {
			v.depth--
		}
	default:
		v.depth--
	}
	return nil
}

// envelopeWriter lazily opens the response envelope on first write, so a
// responder that fails before producing output can still get a clean SOAP
// fault instead of a half-written envelope — and so envelope attributes
// (the negotiation answer) can still be stamped before anything flows.
type envelopeWriter struct {
	w       http.ResponseWriter
	attrs   []xmltree.Attr
	started bool
}

// SetEnvelopeAttr implements EnvelopeAttrWriter.
func (e *envelopeWriter) SetEnvelopeAttr(name, value string) error {
	if e.started {
		return fmt.Errorf("soap: envelope already started, cannot set %s", name)
	}
	for i, a := range e.attrs {
		if a.Name == name {
			e.attrs[i].Value = value
			return nil
		}
	}
	e.attrs = append(e.attrs, xmltree.Attr{Name: name, Value: value})
	return nil
}

func (e *envelopeWriter) open() error {
	e.started = true
	e.w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	_, err := io.WriteString(e.w, envOpen(e.attrs))
	return err
}

// Write implements io.Writer.
func (e *envelopeWriter) Write(p []byte) (int, error) {
	if !e.started {
		if err := e.open(); err != nil {
			return 0, err
		}
	}
	return e.w.Write(p)
}

// finish closes the envelope (emitting an empty one if nothing was
// written). A non-nil error means the peer saw a truncated response —
// the write failed and the framing never completed.
func (e *envelopeWriter) finish() error {
	if !e.started {
		if err := e.open(); err != nil {
			return err
		}
	}
	_, err := io.WriteString(e.w, envSuffix)
	return err
}

// countingResponseWriter wraps an http.ResponseWriter to record the status
// line and the bytes that actually reached the connection.
type countingResponseWriter struct {
	http.ResponseWriter
	status int
	n      int64
}

// WriteHeader implements http.ResponseWriter.
func (c *countingResponseWriter) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

// Write implements io.Writer.
func (c *countingResponseWriter) Write(p []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}

// truncated records a response that was cut off after its envelope started
// flowing — the only remaining failure signal once headers are gone, so it
// must at least reach the metrics.
func (s *Server) truncated(payload string, err error) {
	s.metrics.Counter("soap.server.truncated").Inc()
	obs.OrNop(s.logger).Log(obs.LevelWarn, "soap response truncated",
		"payload", payload, "err", err)
}

// ServeHTTP implements http.Handler. Requests are consumed in one SAX
// pass: payloads with a registered stream handler flow through it
// event-by-event and the response is written directly to the connection;
// payloads with a tree handler are materialized (payload only — never the
// envelope) and dispatched as before.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint requires POST", http.StatusMethodNotAllowed)
		return
	}
	walk := &serverWalker{s: s}
	body := io.Reader(r.Body)
	if s.metrics != nil || s.logger != nil {
		// Wrapping only when observability is on keeps the default path
		// allocation-identical to the unobserved server.
		cr := &countingReader{r: r.Body}
		cw := &countingResponseWriter{ResponseWriter: w}
		body, w = cr, cw
		start := time.Now()
		defer func() {
			status := cw.status
			if status == 0 {
				status = http.StatusOK
			}
			m := s.metrics
			m.Counter("soap.server.requests").Inc()
			m.Counter("soap.server.req_bytes").Add(cr.n)
			m.Counter("soap.server.resp_bytes").Add(cw.n)
			if status >= 400 {
				m.Counter("soap.server.faults").Inc()
			}
			m.Histogram("soap.server.millis").ObserveSince(start)
			if l := obs.OrNop(s.logger); l.Enabled(obs.LevelDebug) {
				l.Log(obs.LevelDebug, "soap request",
					"payload", walk.payloadName, "status", status,
					"reqBytes", cr.n, "respBytes", cw.n)
			}
		}()
	}
	if err := xmltree.ScanAttrs(body, walk); err != nil {
		var rf *reqFault
		var he *handlerError
		switch {
		case errors.As(err, &rf):
			s.fault(w, rf.status, rf.f)
		case errors.As(err, &he):
			if f, ok := he.err.(*Fault); ok {
				s.fault(w, faultStatus(f), f)
			} else {
				s.fault(w, http.StatusInternalServerError, &Fault{Code: "soap:Server", String: he.err.Error()})
			}
		default:
			s.fault(w, http.StatusBadRequest, &Fault{Code: "soap:Client", String: "malformed envelope", Detail: err.Error()})
		}
		return
	}
	switch {
	case !walk.sawBody:
		s.fault(w, http.StatusBadRequest, &Fault{Code: "soap:Client", String: "soap: envelope has no body"})
	case walk.payloadName == "":
		s.fault(w, http.StatusBadRequest, &Fault{Code: "soap:Client", String: "empty body"})
	case walk.notFound:
		s.fault(w, http.StatusNotFound, &Fault{Code: "soap:Client", String: "no handler for " + walk.payloadName})
	case walk.respond != nil:
		ew := &envelopeWriter{w: w}
		if err := walk.respond(ew); err != nil {
			if !ew.started {
				if f, ok := err.(*Fault); ok {
					s.fault(w, faultStatus(f), f)
				} else {
					s.fault(w, http.StatusInternalServerError, &Fault{Code: "soap:Server", String: err.Error()})
				}
				return
			}
			// The envelope is already flowing; truncating it is the only way
			// left to signal failure — the client's parser will report it.
			s.truncated(walk.payloadName, err)
			return
		}
		if err := ew.finish(); err != nil {
			s.truncated(walk.payloadName, err)
		}
	default:
		resp, err := walk.legacy(walk.tree.Root())
		if err != nil {
			if f, ok := err.(*Fault); ok {
				s.fault(w, faultStatus(f), f)
				return
			}
			s.fault(w, http.StatusInternalServerError, &Fault{Code: "soap:Server", String: err.Error()})
			return
		}
		s.reply(w, Envelope(resp))
	}
}
